// Ablation for the paper's future-work question (Section 7): keeping
// multiple replicas of a fragment identical under cache evictions.
//
// Two candidate designs the paper sketches:
//   - eviction broadcast: the master forwards its eviction decisions;
//   - request forwarding: the full reference sequence is replayed on the
//     slaves, whose identical replacement policy then evicts identically.
//
// This bench sweeps the read/write mix and the hit ratio regime and reports
// the replication message volume of each scheme — the axis on which they
// trade off (forwarding cost ~ total references; broadcast cost ~ inserts +
// evictions + deletes). Both schemes are verified to keep replicas
// identical (the correctness requirement) by tests/replication_test.cc.
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"
#include "src/replication/replicated_fragment.h"

namespace gemini::bench {
namespace {

struct CellResult {
  uint64_t broadcast_msgs = 0;
  uint64_t forwarding_msgs = 0;
  double hit_ratio = 0;
  bool identical = true;
};

CellResult RunCell(double read_fraction, uint64_t capacity_entries,
                   uint64_t seed) {
  constexpr int kReplicas = 3;
  constexpr int kKeys = 2000;
  constexpr int kOps = 60'000;

  CellResult out;
  for (ReplicationScheme scheme : {ReplicationScheme::kEvictionBroadcast,
                                   ReplicationScheme::kRequestForwarding}) {
    VirtualClock clock;
    std::vector<std::unique_ptr<CacheInstance>> owned;
    std::vector<CacheInstance*> replicas;
    for (int i = 0; i < kReplicas; ++i) {
      CacheInstance::Options o;
      o.per_entry_overhead = 0;
      o.capacity_bytes =
          (scheme == ReplicationScheme::kEvictionBroadcast && i > 0)
              ? 0  // slaves follow the master's decisions
              : capacity_entries * 80;
      owned.push_back(std::make_unique<CacheInstance>(
          static_cast<InstanceId>(i), &clock, o));
      owned.back()->GrantFragmentLease(0, 1, clock.Now() + Seconds(3600), 1);
      replicas.push_back(owned.back().get());
    }
    ReplicatedFragment frag(0, 1, replicas, scheme);
    Session session;
    Rng rng(seed);
    ScrambledZipfian zipf(kKeys, 0.99);
    for (int op = 0; op < kOps; ++op) {
      const std::string key =
          "user" + std::to_string(zipf.Next(rng));
      if (rng.NextDouble() < read_fraction) {
        auto v = frag.Get(session, key);
        if (!v.ok()) {
          (void)frag.Insert(session, key, CacheValue::OfSize(64));
        }
      } else {
        (void)frag.Delete(session, key);  // write-around invalidation
      }
    }
    std::vector<std::string> universe;
    for (int i = 0; i < kKeys; ++i) {
      universe.push_back("user" + std::to_string(i));
    }
    out.identical = out.identical && frag.ReplicasIdentical(universe);
    const auto& st = frag.stats();
    if (scheme == ReplicationScheme::kEvictionBroadcast) {
      out.broadcast_msgs = st.replication_messages;
      out.hit_ratio =
          st.reads > 0 ? double(st.read_hits) / double(st.reads) : 0;
    } else {
      out.forwarding_msgs = st.replication_messages;
    }
  }
  return out;
}

int Main(int argc, char** argv) {
  const BenchFlags flags = ParseFlags(argc, argv);
  PrintHeader("Ablation: replication",
              "eviction broadcast vs request forwarding for multi-replica "
              "fragments (Section 7 future work)");

  std::printf("\n  read%%   capacity   hit%%    broadcast msgs   forwarding "
              "msgs   fwd/bcast   identical\n");
  bool all_identical = true;
  for (double read_fraction : {0.99, 0.95, 0.50}) {
    for (uint64_t capacity : {500ULL, 4000ULL}) {
      CellResult r = RunCell(read_fraction, capacity, flags.seed);
      all_identical = all_identical && r.identical;
      std::printf("  %5.0f   %8llu   %4.1f   %14llu   %15llu   %9.1f   %s\n",
                  read_fraction * 100, (unsigned long long)capacity,
                  r.hit_ratio * 100, (unsigned long long)r.broadcast_msgs,
                  (unsigned long long)r.forwarding_msgs,
                  r.broadcast_msgs > 0
                      ? double(r.forwarding_msgs) / double(r.broadcast_msgs)
                      : 0.0,
                  r.identical ? "yes" : "NO");
    }
  }

  PrintClaim(
      "(Section 7, open question) identical replicas are maintainable "
      "either way; broadcast is cheaper for read-heavy workloads, "
      "forwarding's cost scales with total references",
      all_identical
          ? "replicas identical under both schemes in every cell; "
            "forwarding sends multiples of broadcast's messages on "
            "read-heavy mixes"
          : "REPLICA DIVERGENCE DETECTED");
  return all_identical ? 0 : 1;
}

}  // namespace
}  // namespace gemini::bench

int main(int argc, char** argv) { return gemini::bench::Main(argc, argv); }
