// Shared plumbing for the figure/table benches.
//
// Every bench binary regenerates one table or figure from the paper's
// evaluation (Section 5) and prints the same rows/series the paper plots,
// followed by a PAPER vs MEASURED summary of the qualitative claim.
//
// Scale: the paper's testbed is an 11-node cluster running multi-hundred-
// second experiments against a 10M-record database. The default bench
// parameters replay the same experiments on a proportionally scaled
// database (300k records) so the whole suite finishes in minutes on one
// core; pass --full for a scale closer to the paper's (slower). The *shapes*
// (who wins, by what factor, where crossovers fall) are preserved; absolute
// numbers are not expected to match (see EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/sim/cluster_sim.h"
#include "src/workload/facebook.h"
#include "src/workload/ycsb.h"

namespace gemini::bench {

struct BenchFlags {
  bool full = false;   // closer to paper scale
  bool quick = false;  // CI-sized smoke run
  uint64_t seed = 42;
};

inline BenchFlags ParseFlags(int argc, char** argv) {
  BenchFlags flags;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--full") == 0) flags.full = true;
    if (std::strcmp(argv[i], "--quick") == 0) flags.quick = true;
    if (std::strncmp(argv[i], "--seed=", 7) == 0) {
      flags.seed = std::strtoull(argv[i] + 7, nullptr, 10);
    }
  }
  return flags;
}

inline void PrintHeader(const char* id, const char* title) {
  std::printf("==================================================================\n");
  std::printf("%s: %s\n", id, title);
  std::printf("==================================================================\n");
}

inline void PrintClaim(const char* paper, const char* measured) {
  std::printf("  PAPER:    %s\n  MEASURED: %s\n", paper, measured);
}

// ---- Machine-readable results (BENCH_*.json) --------------------------------
//
// Alongside its human-readable table, a bench can emit its series as a flat
// JSON document — the format CI smoke-validates and the committed baselines
// at the repo root (BENCH_<suite>.json) use:
//
//   { "bench": "<suite>",
//     "results": [ { "name": "...", "params": { "k": v, ... },
//                    "ops_per_sec": ..., "p50_us": ..., "p99_us": ... } ] }

struct BenchResult {
  std::string name;
  /// Ordered (key, value) parameter pairs identifying the configuration.
  std::vector<std::pair<std::string, double>> params;
  double ops_per_sec = 0;
  double p50_us = 0;
  double p99_us = 0;
};

inline std::string JsonNumber(double v) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.6g", v);
  return buf;
}

inline std::string ResultsToJson(const std::string& suite,
                                 const std::vector<BenchResult>& results) {
  // Names and param keys are plain identifiers by convention, so no string
  // escaping is needed here.
  std::string out = "{\n  \"bench\": \"" + suite + "\",\n  \"results\": [";
  for (size_t i = 0; i < results.size(); ++i) {
    const BenchResult& r = results[i];
    out += i == 0 ? "\n" : ",\n";
    out += "    {\"name\": \"" + r.name + "\", \"params\": {";
    for (size_t j = 0; j < r.params.size(); ++j) {
      if (j > 0) out += ", ";
      out += "\"" + r.params[j].first + "\": " + JsonNumber(r.params[j].second);
    }
    out += "}, \"ops_per_sec\": " + JsonNumber(r.ops_per_sec);
    out += ", \"p50_us\": " + JsonNumber(r.p50_us);
    out += ", \"p99_us\": " + JsonNumber(r.p99_us) + "}";
  }
  out += "\n  ]\n}\n";
  return out;
}

inline bool WriteResultsJson(const std::string& path, const std::string& suite,
                             const std::vector<BenchResult>& results) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) return false;
  const std::string doc = ResultsToJson(suite, results);
  const bool wrote = std::fwrite(doc.data(), 1, doc.size(), f) == doc.size();
  return std::fclose(f) == 0 && wrote;
}

// ---- The paper's YCSB cluster (Section 5.2), proportionally scaled ----------

struct YcsbClusterParams {
  size_t records = 300'000;   // paper: 10M
  size_t instances = 5;       // paper: 5
  size_t fragments = 5000;    // paper: 5000 (1000 per instance)
  size_t low_threads = 40;    // paper: 5 clients x 8 threads
  size_t high_threads = 200;  // paper: 5 clients x 40 threads
  double warmup_seconds = 40;
  NetParams net;              // per-bench latency/queueing overrides
};

inline YcsbClusterParams YcsbParams(const BenchFlags& flags) {
  YcsbClusterParams p;
  if (flags.full) {
    p.records = 2'000'000;
    p.warmup_seconds = 120;
  } else if (flags.quick) {
    p.records = 60'000;
    p.fragments = 1000;
    p.warmup_seconds = 15;
  }
  return p;
}

inline std::unique_ptr<ClusterSim> MakeYcsbSim(
    const BenchFlags& flags, const YcsbClusterParams& p, RecoveryPolicy policy,
    double update_fraction, bool high_load,
    YcsbWorkload::Evolution evolution = YcsbWorkload::Evolution::kStatic) {
  YcsbWorkload::Options wo;
  wo.num_records = p.records;
  wo.update_fraction = update_fraction;
  wo.evolution = evolution;
  SimOptions so;
  so.num_instances = p.instances;
  so.num_fragments = p.fragments;
  so.num_client_objects = 5;
  so.closed_loop_threads = high_load ? p.high_threads : p.low_threads;
  so.num_recovery_workers = 4;
  so.policy = policy;
  so.net = p.net;
  so.seed = flags.seed;
  return std::make_unique<ClusterSim>(so, std::make_shared<YcsbWorkload>(wo));
}

// ---- The paper's Facebook-like cluster (Section 5.1), scaled ----------------

// Scaling note: the request rate is scaled with the database so that the
// ops-per-record ratio (and hence the LRU eviction horizon relative to the
// failure duration) stays within a few x of the paper's 52k ops/s over 10M
// records. Oversubscribing load per record makes dirty lists evict in
// seconds — a behaviour the protocol handles (marker detection + discard)
// but which the paper's configuration does not trigger.
struct FacebookClusterParams {
  size_t records = 300'000;         // paper: 10M
  size_t instances = 20;            // paper: 100 (20% still fail)
  size_t fragments = 5000;          // paper: 5000
  Duration interarrival = Micros(120);  // paper: 19us at 10M records
  double warmup_seconds = 80;
};

inline FacebookClusterParams FacebookParams(const BenchFlags& flags) {
  FacebookClusterParams p;
  if (flags.full) {
    p.records = 2'000'000;
    p.instances = 100;
    p.interarrival = Micros(50);
    p.warmup_seconds = 200;
  } else if (flags.quick) {
    p.records = 100'000;
    p.instances = 10;
    p.fragments = 1000;
    p.interarrival = Micros(250);
    p.warmup_seconds = 30;
  }
  return p;
}

inline std::unique_ptr<ClusterSim> MakeFacebookSim(
    const BenchFlags& flags, const FacebookClusterParams& p,
    RecoveryPolicy policy) {
  FacebookWorkload::Options wo;
  wo.num_records = p.records;
  wo.mean_interarrival = p.interarrival;
  auto workload = std::make_shared<FacebookWorkload>(wo);
  SimOptions so;
  so.num_instances = p.instances;
  so.num_fragments = p.fragments;
  so.num_client_objects = 5;
  so.closed_loop_threads = 0;  // open loop, trace-driven
  so.num_recovery_workers = 8;
  so.policy = policy;
  so.seed = flags.seed;
  // Section 5.1: cache memory = 50% of the database size.
  so.instance_capacity_bytes =
      workload->ApproxDatabaseBytes() / 2 / p.instances;
  return std::make_unique<ClusterSim>(so, std::move(workload));
}

}  // namespace gemini::bench
