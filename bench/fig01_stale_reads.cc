// Figure 1: number of stale reads per second observed after 20 of 100 cache
// instances recover from a 10-second and a 100-second failure, using the
// StaleCache baseline (persistent content reused verbatim) on the synthetic
// Facebook-like trace. Gemini (any variant) reduces the series to zero.
//
// Paper shape: the stale-read rate peaks immediately after recovery (~6% of
// reads for the 100-second failure) and decays as application writes delete
// entries that happen to be stale.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace gemini::bench {
namespace {

struct RunResult {
  std::vector<double> stale_per_sec;  // from failure-start, per second
  uint64_t total_stale = 0;
  uint64_t total_reads_after_recovery = 0;
  double peak_stale = 0;
  double peak_fraction = 0;  // stale / reads in the peak second
};

RunResult RunOnce(const BenchFlags& flags, RecoveryPolicy policy,
                  double fail_seconds, double observe_seconds) {
  FacebookClusterParams p = FacebookParams(flags);
  auto sim = MakeFacebookSim(flags, p, policy);
  const Timestamp fail_at = Seconds(p.warmup_seconds);
  const size_t failed = std::max<size_t>(1, p.instances / 5);  // 20 of 100
  std::vector<InstanceId> group;
  for (size_t i = 0; i < failed; ++i) {
    group.push_back(static_cast<InstanceId>(i));
  }
  sim->ScheduleGroupFailure(group, fail_at, Seconds(fail_seconds));
  const Timestamp end =
      fail_at + Seconds(fail_seconds) + Seconds(observe_seconds);
  sim->Run(end);

  RunResult out;
  const auto& stale = sim->metrics().stale.stale_per_interval().buckets();
  const auto& reads = sim->metrics().stale.reads_per_interval().buckets();
  const size_t recover_sec =
      static_cast<size_t>(p.warmup_seconds + fail_seconds);
  const auto fail_sec = static_cast<size_t>(p.warmup_seconds);
  for (size_t s = fail_sec; s < stale.size(); ++s) {
    out.stale_per_sec.push_back(static_cast<double>(stale[s]));
    out.total_stale += stale[s];
    if (s >= recover_sec) {
      out.total_reads_after_recovery += s < reads.size() ? reads[s] : 0;
      const auto st = static_cast<double>(stale[s]);
      if (st > out.peak_stale) {
        out.peak_stale = st;
        const double rd = s < reads.size() ? double(reads[s]) : 0.0;
        out.peak_fraction = rd > 0 ? st / rd : 0.0;
      }
    }
  }
  return out;
}

int Main(int argc, char** argv) {
  const BenchFlags flags = ParseFlags(argc, argv);
  PrintHeader("Figure 1",
              "stale reads/second after 20% of instances recover "
              "(StaleCache baseline vs Gemini)");

  const double observe = flags.quick ? 30 : 100;
  RunResult stale10 =
      RunOnce(flags, RecoveryPolicy::StaleCache(), 10, observe);
  RunResult stale100 =
      RunOnce(flags, RecoveryPolicy::StaleCache(), flags.quick ? 30 : 100,
              observe);
  RunResult gemini =
      RunOnce(flags, RecoveryPolicy::GeminiOW(), flags.quick ? 30 : 100,
              observe);

  std::printf("\nStale reads/second (x-axis: seconds since failure start)\n");
  std::vector<double> g(gemini.stale_per_sec);
  std::printf("%s\n",
              FormatSeriesTable({"stale10s", "stale100s", "gemini-O+W"},
                                {stale10.stale_per_sec,
                                 stale100.stale_per_sec, g})
                  .c_str());

  std::printf("Summary\n");
  std::printf("  StaleCache 10s  failure: total stale=%llu peak=%.0f/s\n",
              (unsigned long long)stale10.total_stale, stale10.peak_stale);
  std::printf(
      "  StaleCache 100s failure: total stale=%llu peak=%.0f/s "
      "(%.1f%% of reads at peak)\n",
      (unsigned long long)stale100.total_stale, stale100.peak_stale,
      stale100.peak_fraction * 100);
  std::printf("  Gemini-O+W: total stale=%llu\n",
              (unsigned long long)gemini.total_stale);

  PrintClaim(
      "stale reads peak right after recovery (~6% of reads for the 100s "
      "failure), higher for longer failures, and decay; Gemini serves zero",
      (std::string("peak fraction=") +
       std::to_string(stale100.peak_fraction * 100) +
       "% ; 100s-failure total (" + std::to_string(stale100.total_stale) +
       ") > 10s-failure total (" + std::to_string(stale10.total_stale) +
       ") ; Gemini total = " + std::to_string(gemini.total_stale))
          .c_str());
  return gemini.total_stale == 0 && stale100.total_stale > 0 ? 0 : 1;
}

}  // namespace
}  // namespace gemini::bench

int main(int argc, char** argv) { return gemini::bench::Main(argc, argv); }
