// Ablation: write-around (the paper's policy) vs write-through (our
// extension, Section 2's "its implementation with write-through is
// different").
//
// Trade-off measured here: write-around turns every write into a future
// cache miss (the entry is deleted), so read-back traffic hits the data
// store; write-through installs the new value under the same Q lease, so
// recently written keys stay hits — at the cost of pushing every write's
// value through the cache. With Gemini-O, write-through also makes the
// recovery overwrite repopulate real values instead of re-invalidations.
#include <cstdio>

#include "bench/bench_common.h"
#include "src/recovery/write_back_flusher.h"

namespace gemini::bench {
namespace {

struct RunResult {
  double hit_ratio = 0;        // steady state
  uint64_t store_queries = 0;  // read-back load on the data store
  double write_ack_us = 0;     // mean latency until a write is acknowledged
  double post_recovery_hit = 0;
  uint64_t stale = 0;
};

RunResult RunOnce(const BenchFlags& flags, WritePolicy policy,
                  double update_fraction) {
  // This ablation drives the protocol stack directly (the DES harness does
  // not parameterize the write policy): one policy-aware client against a
  // 5-instance cluster, a warm-up phase, a measured steady-state phase, and
  // one failure episode.
  VirtualClock clock;
  DataStore store;
  std::vector<std::unique_ptr<CacheInstance>> owned;
  std::vector<CacheInstance*> raw;
  for (InstanceId i = 0; i < 5; ++i) {
    owned.push_back(std::make_unique<CacheInstance>(i, &clock));
    raw.push_back(owned.back().get());
  }
  Coordinator::Options copts;
  copts.policy = RecoveryPolicy::GeminiO();
  Coordinator coordinator(&clock, raw, 1000, copts);
  GeminiClient::Options cl;
  cl.write_policy = policy;
  GeminiClient client(&clock, &coordinator, raw, &store, cl);
  RecoveryWorker worker(&clock, &coordinator, raw);
  WriteBackFlusher flusher(&clock, raw, &store);
  StaleReadChecker checker(&store);
  CostModel model(NetParams{}, 5);
  Session session;

  const uint64_t records = flags.quick ? 5'000 : 30'000;
  YcsbWorkload::Options gen_opts;
  gen_opts.num_records = records;
  gen_opts.update_fraction = update_fraction;
  YcsbWorkload workload(gen_opts);
  workload.LoadStore(store);
  Rng rng(flags.seed);

  const int kWarm = flags.quick ? 30'000 : 150'000;
  const int kMeasure = flags.quick ? 30'000 : 150'000;
  Histogram write_lat;
  auto run_ops = [&](int n, uint64_t* hits, uint64_t* reads) {
    for (int i = 0; i < n; ++i) {
      clock.Advance(Micros(30));
      Operation op = workload.Next(rng);
      if (op.is_read) {
        auto r = client.Read(session, op.key);
        if (r.ok()) {
          if (reads != nullptr) ++*reads;
          if (hits != nullptr && r->cache_hit) ++*hits;
          (void)checker.OnRead(clock.Now(), op.key, r->value.version);
        }
      } else {
        Session ws(&model, clock.Now());
        (void)client.Write(ws, op.key, "w");
        write_lat.Record(ws.Elapsed());
      }
      // The background flusher keeps the write-back backlog bounded.
      if (policy == WritePolicy::kWriteBack && i % 256 == 0) {
        (void)flusher.FlushOnce(session);
      }
    }
  };

  run_ops(kWarm, nullptr, nullptr);
  store.ResetCounters();
  uint64_t hits = 0, reads = 0;
  run_ops(kMeasure, &hits, &reads);

  RunResult out;
  out.hit_ratio = reads > 0 ? double(hits) / double(reads) : 0;
  out.store_queries = store.stats().queries;
  out.write_ack_us = write_lat.Mean();

  // Failure episode: measure read-back hits right after recovery. For
  // write-back, flush the backlog first (an unflushed backlog would show as
  // the failure-window staleness the write-back tests quantify).
  if (policy == WritePolicy::kWriteBack) {
    while (flusher.FlushOnce(session) > 0) {
    }
  }
  coordinator.OnInstanceFailed(0);
  run_ops(flags.quick ? 10'000 : 40'000, nullptr, nullptr);
  coordinator.OnInstanceRecovered(0);
  Session ws;
  for (int guard = 0; guard < 20000; ++guard) {
    if (!worker.has_work() && !worker.TryAdoptFragment(ws).has_value()) break;
    (void)worker.Step(ws);
  }
  uint64_t post_hits = 0, post_reads = 0;
  run_ops(flags.quick ? 10'000 : 30'000, &post_hits, &post_reads);
  out.post_recovery_hit =
      post_reads > 0 ? double(post_hits) / double(post_reads) : 0;
  if (policy == WritePolicy::kWriteBack) {
    while (flusher.FlushOnce(session) > 0) {
    }
  }
  out.stale = checker.total_stale();
  return out;
}

int Main(int argc, char** argv) {
  const BenchFlags flags = ParseFlags(argc, argv);
  PrintHeader("Ablation: write policy",
              "write-around (paper) vs write-through (extension), "
              "steady-state and post-recovery behaviour");

  std::printf("\n  update%%   policy         hit%%    store queries   "
              "write-ack us   post-recovery hit%%   stale\n");
  bool ok = true;
  for (double update : {0.05, 0.2}) {
    RunResult wa = RunOnce(flags, WritePolicy::kWriteAround, update);
    RunResult wt = RunOnce(flags, WritePolicy::kWriteThrough, update);
    RunResult wb = RunOnce(flags, WritePolicy::kWriteBack, update);
    std::printf(
        "  %7.0f   write-around   %5.2f   %13llu   %12.0f   %18.2f   %5llu\n",
        update * 100, wa.hit_ratio * 100, (unsigned long long)wa.store_queries,
        wa.write_ack_us, wa.post_recovery_hit * 100,
        (unsigned long long)wa.stale);
    std::printf(
        "  %7.0f   write-through  %5.2f   %13llu   %12.0f   %18.2f   %5llu\n",
        update * 100, wt.hit_ratio * 100, (unsigned long long)wt.store_queries,
        wt.write_ack_us, wt.post_recovery_hit * 100,
        (unsigned long long)wt.stale);
    std::printf(
        "  %7.0f   write-back     %5.2f   %13llu   %12.0f   %18.2f   %5llu\n",
        update * 100, wb.hit_ratio * 100, (unsigned long long)wb.store_queries,
        wb.write_ack_us, wb.post_recovery_hit * 100,
        (unsigned long long)wb.stale);
    // Write-through must trade store read-backs for cache installs, and
    // every policy must stay consistent (write-back: because the backlog
    // was flushed before the failure here; the unflushed-failure hole is
    // quantified by tests/write_back_test.cc).
    ok = ok && wt.store_queries <= wa.store_queries &&
         wt.hit_ratio >= wa.hit_ratio && wa.stale == 0 && wt.stale == 0 &&
         wb.stale == 0 && wb.hit_ratio >= wa.hit_ratio &&
         wb.write_ack_us < wa.write_ack_us;
  }

  PrintClaim(
      "(Section 2, unevaluated) write-through avoids the read-back misses "
      "write-around creates; write-back additionally acknowledges writes "
      "without a synchronous store update",
      ok ? "write-through/back: higher hit ratio, fewer store queries; "
           "write-back acks fastest; zero stale reads across all policies "
           "(write-back with its backlog flushed before the failure)"
         : "UNEXPECTED ORDERING");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace gemini::bench

int main(int argc, char** argv) { return gemini::bench::Main(argc, argv); }
