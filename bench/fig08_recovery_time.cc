// Figure 8: (a) elapsed time for VolatileCache to restore the recovering
// instance's cache hit ratio as a function of the update percentage, at low
// and high system load; (b) and (c) Gemini-O's recovery time (time to drain
// all dirty lists and return every fragment to normal mode) for 1 s, 10 s,
// and 100 s failures, at low and high load.
//
// Paper shape: VolatileCache takes hundreds of seconds (less under high load
// because a loaded system re-materializes entries faster); Gemini-O
// completes recovery in single-digit seconds at low load and at most tens of
// seconds at high load, growing with failure duration and update rate.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace gemini::bench {
namespace {

double VolatileRestoreSeconds(const BenchFlags& flags,
                              const YcsbClusterParams& p, double update_pct,
                              bool high_load) {
  auto sim = MakeYcsbSim(flags, p, RecoveryPolicy::VolatileCache(),
                         update_pct / 100.0, high_load);
  const double fail_at = p.warmup_seconds;
  const double fail_for = flags.quick ? 10 : 100;
  sim->ScheduleFailure(0, Seconds(fail_at), Seconds(fail_for));
  const double cap = flags.quick ? 120 : 600;
  // Run in stages until the hit ratio is restored (or the cap).
  double restored = -1;
  double t = fail_at + fail_for;
  while (t < fail_at + fail_for + cap) {
    t += 20;
    sim->Run(Seconds(t));
    restored = sim->SecondsToRestoreHitRatio(0);
    if (restored >= 0) break;
  }
  return restored;
}

double GeminiRecoverySeconds(const BenchFlags& flags,
                             const YcsbClusterParams& p, double update_pct,
                             double fail_for, bool high_load) {
  auto sim = MakeYcsbSim(flags, p, RecoveryPolicy::GeminiO(),
                         update_pct / 100.0, high_load);
  const double fail_at = p.warmup_seconds;
  sim->ScheduleFailure(0, Seconds(fail_at), Seconds(fail_for));
  double t = fail_at + fail_for;
  double duration = -1;
  while (t < fail_at + fail_for + 300) {
    t += 10;
    sim->Run(Seconds(t));
    duration = sim->RecoveryDurationSeconds(0);
    if (duration >= 0) break;
  }
  return duration;
}

int Main(int argc, char** argv) {
  const BenchFlags flags = ParseFlags(argc, argv);
  PrintHeader("Figure 8",
              "time to restore hit ratio (VolatileCache) and recovery time "
              "(Gemini-O) vs update %% (YCSB-B sweep)");
  YcsbClusterParams p = YcsbParams(flags);

  const std::vector<double> updates =
      flags.full ? std::vector<double>{1, 2, 4, 6, 8, 10}
                 : (flags.quick ? std::vector<double>{1, 10}
                                : std::vector<double>{1, 5, 10});
  const std::vector<double> durations =
      flags.quick ? std::vector<double>{1, 10}
                  : std::vector<double>{1, 10, 100};

  std::printf("\n(a) VolatileCache: elapsed seconds to restore the "
              "recovering instance's hit ratio (100s failure)\n");
  std::printf("  update%%   low-load   high-load\n");
  double vol_low_1 = -1, vol_high_1 = -1;
  for (double u : updates) {
    const double lo = VolatileRestoreSeconds(flags, p, u, false);
    const double hi = VolatileRestoreSeconds(flags, p, u, true);
    if (u == updates.front()) {
      vol_low_1 = lo;
      vol_high_1 = hi;
    }
    std::printf("  %7.0f   %8.1f   %9.1f\n", u, lo, hi);
  }

  double gem_low_100 = -1, gem_high_100 = -1;
  for (bool high : {false, true}) {
    std::printf("\n(%s) Gemini-O recovery time (seconds) vs update%%, "
                "%s load\n",
                high ? "c" : "b", high ? "high" : "low");
    std::printf("  update%%");
    for (double d : durations) std::printf("   %5.0fs-fail", d);
    std::printf("\n");
    for (double u : updates) {
      std::printf("  %7.0f", u);
      for (double d : durations) {
        const double r = GeminiRecoverySeconds(flags, p, u, d, high);
        if (u == updates.front() && d == durations.back()) {
          (high ? gem_high_100 : gem_low_100) = r;
        }
        std::printf("   %10.1f", r);
      }
      std::printf("\n");
    }
  }

  std::printf("\nSummary (update%%=%.0f, %0.fs failure): VolatileCache "
              "restore low/high = %.1f/%.1f s ; Gemini-O recovery "
              "low/high = %.1f/%.1f s\n",
              updates.front(), durations.back(), vol_low_1, vol_high_1,
              gem_low_100, gem_high_100);
  PrintClaim(
      "VolatileCache needs hundreds of seconds (fewer under high load); "
      "Gemini-O recovers in seconds (order ~5s low load, ~20s high load at "
      "10% updates), >= 2 orders of magnitude faster",
      (std::string("VolatileCache/Gemini-O ratio at low load = ") +
       std::to_string(vol_low_1 / std::max(0.1, gem_low_100)) + "x")
          .c_str());
  const bool ok = gem_low_100 >= 0 && vol_low_1 > 5 * gem_low_100;
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace gemini::bench

int main(int argc, char** argv) { return gemini::bench::Main(argc, argv); }
