// bench_transport: throughput and latency of the pipelined TCP transport vs
// the in-flight window, over loopback against a real TransportServer (the
// geminid event loop).
//
// One closed-loop submitter issues small GETs through TcpConnection's async
// window: window=1 reproduces the old strict request/response alternation
// (one frame in flight, one round trip per op), larger windows let the
// writer coalesce frames into single send(2) calls and the server answer
// whole bursts per epoll wakeup. Prints an ops/sec + p50/p99 table and
// writes the machine-readable series (bench_common.h JSON schema) to
// BENCH_transport.json; the committed file at the repo root is the loopback
// baseline backing the ROADMAP pipelining claim.
//
// Flags: --quick (CI smoke), --full, --ops=N (per window), --value-bytes=B,
//        --keys=K, --json=PATH.
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "src/cache/cache_instance.h"
#include "src/common/clock.h"
#include "src/common/histogram.h"
#include "src/transport/server.h"
#include "src/transport/tcp_backend.h"
#include "src/transport/tcp_connection.h"
#include "src/transport/wire.h"

namespace gemini {
namespace {

using SteadyClock = std::chrono::steady_clock;

std::string KeyName(size_t k) { return "key" + std::to_string(k); }

struct WindowRun {
  size_t window = 0;
  double ops_per_sec = 0;
  double p50_us = 0;
  double p99_us = 0;
  uint64_t errors = 0;
};

/// Runs `ops` GETs closed-loop at in-flight depth `window` on a fresh
/// connection (constructed directly, not via the Acquire pool, so every
/// window size gets its own options).
WindowRun RunWindow(uint16_t port, size_t window, size_t ops,
                    const std::vector<std::string>& bodies) {
  TcpConnection::Options copts;
  copts.max_inflight = window;
  TcpConnection conn("127.0.0.1", port, wire::kAnyInstance, copts);

  std::mutex mu;
  std::condition_variable cv;
  Histogram hist;
  uint64_t errors = 0;
  size_t completed = 0;

  const auto submit_all = [&](size_t n, bool record) {
    {
      std::lock_guard<std::mutex> lock(mu);
      completed = 0;
    }
    for (size_t i = 0; i < n; ++i) {
      const auto start = SteadyClock::now();
      // SubmitAsync blocks while the window is full, so the submitter is
      // the closed loop and the connection enforces the depth.
      conn.SubmitAsync(wire::Op::kGet, bodies[i % bodies.size()],
                       [&, start, record, n](Status s, std::string) {
                         const int64_t us =
                             std::chrono::duration_cast<
                                 std::chrono::microseconds>(
                                 SteadyClock::now() - start)
                                 .count();
                         std::lock_guard<std::mutex> lock(mu);
                         if (record) {
                           hist.Record(us > 0 ? us : 1);
                           if (!s.ok()) ++errors;
                         }
                         if (++completed == n) cv.notify_one();
                       });
    }
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return completed == n; });
  };

  submit_all(std::min<size_t>(ops / 10 + 1, 2000), /*record=*/false);
  const auto t0 = SteadyClock::now();
  submit_all(ops, /*record=*/true);
  const double secs =
      std::chrono::duration<double>(SteadyClock::now() - t0).count();

  WindowRun out;
  out.window = window;
  out.ops_per_sec = secs > 0 ? static_cast<double>(ops) / secs : 0;
  out.p50_us = hist.Percentile(0.50);
  out.p99_us = hist.Percentile(0.99);
  out.errors = errors;
  return out;
}

int Run(int argc, char** argv) {
  const bench::BenchFlags flags = bench::ParseFlags(argc, argv);
  size_t ops = flags.full ? 200'000 : 50'000;
  if (flags.quick) ops = 2'000;
  size_t value_bytes = 100;
  size_t num_keys = 1'000;
  std::string json_path = "BENCH_transport.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--ops=", 6) == 0) {
      ops = std::strtoull(argv[i] + 6, nullptr, 10);
    } else if (std::strncmp(argv[i], "--value-bytes=", 14) == 0) {
      value_bytes = std::strtoull(argv[i] + 14, nullptr, 10);
    } else if (std::strncmp(argv[i], "--keys=", 7) == 0) {
      num_keys = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }
  if (ops == 0 || num_keys == 0) {
    std::fprintf(stderr, "bench_transport: --ops and --keys must be > 0\n");
    return 2;
  }

  bench::PrintHeader("bench_transport",
                     "pipelined TCP transport: ops/sec vs in-flight window "
                     "(loopback geminid)");
  std::printf("  ops/window=%zu  value=%zuB  keys=%zu\n\n", ops, value_bytes,
              num_keys);

  SystemClock& clock = SystemClock::Global();
  CacheInstance instance(0, &clock);
  TransportServer server(&instance, TransportServer::Options{});
  if (Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // Preload the working set and pre-encode the GET request bodies so the
  // timed loop measures the transport, not the codec.
  const OpContext ctx{kInternalConfigId, kInvalidFragment};
  {
    TcpCacheBackend seeder("127.0.0.1", server.port());
    const std::string payload(value_bytes, 'x');
    for (size_t k = 0; k < num_keys; ++k) {
      if (Status s = seeder.Set(ctx, KeyName(k), CacheValue::OfData(payload));
          !s.ok()) {
        std::fprintf(stderr, "preload failed: %s\n", s.ToString().c_str());
        return 1;
      }
    }
  }
  std::vector<std::string> bodies(num_keys);
  for (size_t k = 0; k < num_keys; ++k) {
    wire::PutContext(bodies[k], ctx);
    wire::PutKey(bodies[k], KeyName(k));
  }

  const std::vector<size_t> windows = {1, 2, 4, 8, 16, 32, 64};
  std::vector<WindowRun> runs;
  std::printf("  %8s %12s %10s %10s\n", "window", "ops/sec", "p50 us",
              "p99 us");
  uint64_t total_errors = 0;
  for (const size_t w : windows) {
    runs.push_back(RunWindow(server.port(), w, ops, bodies));
    const WindowRun& r = runs.back();
    std::printf("  %8zu %12.0f %10.1f %10.1f\n", r.window, r.ops_per_sec,
                r.p50_us, r.p99_us);
    total_errors += r.errors;
  }
  server.Stop();
  if (total_errors > 0) {
    std::fprintf(stderr, "bench_transport: %llu ops failed\n",
                 static_cast<unsigned long long>(total_errors));
    return 1;
  }

  double base = 0, at32 = 0;
  std::vector<bench::BenchResult> results;
  for (const WindowRun& r : runs) {
    if (r.window == 1) base = r.ops_per_sec;
    if (r.window == 32) at32 = r.ops_per_sec;
    bench::BenchResult br;
    br.name = "transport_get";
    br.params = {{"window", static_cast<double>(r.window)},
                 {"ops", static_cast<double>(ops)},
                 {"value_bytes", static_cast<double>(value_bytes)},
                 {"keys", static_cast<double>(num_keys)}};
    br.ops_per_sec = r.ops_per_sec;
    br.p50_us = r.p50_us;
    br.p99_us = r.p99_us;
    results.push_back(std::move(br));
  }
  std::printf("\n  window 32 vs 1 speedup: %.1fx\n",
              base > 0 ? at32 / base : 0.0);
  if (!bench::WriteResultsJson(json_path, "transport", results)) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("  results written to %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace gemini

int main(int argc, char** argv) { return gemini::Run(argc, argv); }
