// bench_transport: throughput and latency of the pipelined TCP transport,
// over loopback against a real TransportServer (the geminid event loops).
//
// Two modes:
//
//  Default — window sweep. One closed-loop submitter issues small GETs
//  through TcpConnection's async window: window=1 reproduces the old strict
//  request/response alternation (one frame in flight, one round trip per
//  op), larger windows let the writer coalesce frames into single send(2)
//  calls and the server answer whole bursts per epoll wakeup. Writes
//  BENCH_transport.json; the committed file at the repo root is the
//  loopback baseline backing the ROADMAP pipelining claim.
//
//  --scaling — server scaling sweep. For each event-loop count in {1,2,4},
//  starts a fresh server with that many loops (and a lock-striped
//  CacheInstance), drives it with the same number of client connections —
//  one closed-loop submitter thread each at window 32 — and reports the
//  aggregate GET throughput. Writes BENCH_server_scaling.json; the params
//  record `cpus` (hardware threads of the machine that produced the file)
//  because the loops>1 rows can only beat the loops=1 row when the server
//  actually has cores to spread across.
//
//  --chaos — the same window sweep through a FaultProxy injecting mild,
//  seeded per-frame delays (plus hold bursts) on both directions. Results go
//  to a separate name/file (BENCH_transport_chaos.json) so the committed
//  clean-path baseline and tools/check_bench.py are untouched; the point is
//  a quick read on how much a lossy-ish network costs the pipeline, and a
//  standing proof that the retry layer adds nothing to the healthy path
//  (compare BENCH_transport.json before/after: the default sweep runs with
//  retry enabled but never exercised).
//
//  --bulk — pipelined bulk-write comparison. Writes the same keys two ways:
//  32 individual kSet frames pipelined through a window-32 connection
//  (bulk=0, the anchor) versus one 32-key kMultiSet frame per burst
//  (bulk=1). One frame per burst beats 32 frames even when both ride one
//  sendmsg: the server decodes, executes, and answers once. Writes
//  BENCH_transport_bulk.json; tools/check_bench.py --min-point pins the
//  bulk=1 speedup floor in CI.
//
// Every mode's params record the io backend (0=poll, 1=epoll, 2=uring) and
// kernel (major*1000+minor) that produced the numbers — backend choice moves
// transport throughput, so baselines must be compared like-for-like.
//
// Flags: --quick (CI smoke), --full, --scaling, --chaos, --chaos-seed=N,
//        --bulk, --ops=N (per connection), --value-bytes=B, --keys=K,
//        --json=PATH.
#include <sys/utsname.h>

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/cache/cache_instance.h"
#include "src/common/clock.h"
#include "src/common/histogram.h"
#include "src/transport/fault_proxy.h"
#include "src/transport/server.h"
#include "src/transport/tcp_backend.h"
#include "src/transport/tcp_connection.h"
#include "src/transport/wire.h"

namespace gemini {
namespace {

using SteadyClock = std::chrono::steady_clock;

std::string KeyName(size_t k) { return "key" + std::to_string(k); }

/// Kernel version as major*1000+minor (e.g. 6.18 -> 6018), 0 if unknown.
double KernelCode() {
  struct utsname u {};
  if (::uname(&u) != 0) return 0;
  int major = 0, minor = 0;
  if (std::sscanf(u.release, "%d.%d", &major, &minor) < 1) return 0;
  return static_cast<double>(major * 1000 + minor);
}

/// The server's active io backend as a param code: 0=poll, 1=epoll, 2=uring.
double BackendCode(const TransportServer& server) {
  const std::string name = server.io_backend_name();
  if (name == "uring") return 2;
  if (name == "epoll") return 1;
  return 0;
}

/// Issues `n` pipelined GETs closed-loop on `conn`, recording latencies and
/// errors when `record` is set. Returns when every response arrived.
void SubmitClosedLoop(TcpConnection& conn, size_t n,
                      const std::vector<std::string>& bodies, bool record,
                      Histogram& hist, uint64_t& errors) {
  std::mutex mu;
  std::condition_variable cv;
  size_t completed = 0;
  for (size_t i = 0; i < n; ++i) {
    const auto start = SteadyClock::now();
    // SubmitAsync blocks while the window is full, so the submitter is the
    // closed loop and the connection enforces the depth.
    conn.SubmitAsync(wire::Op::kGet, bodies[i % bodies.size()],
                     [&, start, record, n](Status s, std::string) {
                       const int64_t us =
                           std::chrono::duration_cast<
                               std::chrono::microseconds>(SteadyClock::now() -
                                                          start)
                               .count();
                       std::lock_guard<std::mutex> lock(mu);
                       if (record) {
                         hist.Record(us > 0 ? us : 1);
                         if (!s.ok()) ++errors;
                       }
                       if (++completed == n) cv.notify_one();
                     });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return completed == n; });
}

struct WindowRun {
  size_t window = 0;
  double ops_per_sec = 0;
  double p50_us = 0;
  double p99_us = 0;
  uint64_t errors = 0;
};

/// Runs `ops` GETs closed-loop at in-flight depth `window` on a fresh
/// connection (constructed directly, not via the Acquire pool, so every
/// window size gets its own options).
WindowRun RunWindow(uint16_t port, size_t window, size_t ops,
                    const std::vector<std::string>& bodies) {
  TcpConnection::Options copts;
  copts.max_inflight = window;
  TcpConnection conn("127.0.0.1", port, wire::kAnyInstance, copts);

  Histogram hist;
  uint64_t errors = 0;
  SubmitClosedLoop(conn, std::min<size_t>(ops / 10 + 1, 2000), bodies,
                   /*record=*/false, hist, errors);
  const auto t0 = SteadyClock::now();
  SubmitClosedLoop(conn, ops, bodies, /*record=*/true, hist, errors);
  const double secs =
      std::chrono::duration<double>(SteadyClock::now() - t0).count();

  WindowRun out;
  out.window = window;
  out.ops_per_sec = secs > 0 ? static_cast<double>(ops) / secs : 0;
  out.p50_us = hist.Percentile(0.50);
  out.p99_us = hist.Percentile(0.99);
  out.errors = errors;
  return out;
}

// ---- Server scaling mode ----------------------------------------------------

struct ScalingRun {
  size_t loops = 0;
  double ops_per_sec = 0;  // aggregate across all connections
  double p50_us = 0;
  double p99_us = 0;
  uint64_t errors = 0;
  double backend = 0;  // io backend code of the server that produced the row
};

/// Starts a fresh `loops`-shard server over a striped instance, preloads the
/// working set, then drives it with `loops` connections (one submitter
/// thread each, window `window`, `ops` GETs per connection) released
/// together so the timed region measures concurrent load on every shard.
ScalingRun RunScalingPoint(size_t loops, size_t window, size_t ops,
                           size_t value_bytes, size_t num_keys,
                           uint32_t stripes,
                           const std::vector<std::string>& bodies) {
  SystemClock& clock = SystemClock::Global();
  CacheInstance::Options copts;
  copts.num_stripes = stripes;
  CacheInstance instance(0, &clock, copts);
  TransportServer::Options sopts;
  sopts.num_loops = static_cast<uint32_t>(loops);
  TransportServer server(&instance, sopts);
  ScalingRun out;
  out.loops = loops;
  if (Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
    out.errors = 1;
    return out;
  }
  {
    TcpCacheBackend seeder("127.0.0.1", server.port());
    const OpContext ctx{kInternalConfigId, kInvalidFragment};
    const std::string payload(value_bytes, 'x');
    for (size_t k = 0; k < num_keys; ++k) {
      if (Status s = seeder.Set(ctx, KeyName(k), CacheValue::OfData(payload));
          !s.ok()) {
        std::fprintf(stderr, "preload failed: %s\n", s.ToString().c_str());
        out.errors = 1;
        return out;
      }
    }
  }

  std::vector<Histogram> hists(loops);
  std::vector<uint64_t> errors(loops, 0);
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  size_t warmed = 0;
  bool go = false;

  std::vector<std::thread> clients;
  clients.reserve(loops);
  for (size_t c = 0; c < loops; ++c) {
    clients.emplace_back([&, c] {
      TcpConnection::Options copts2;
      copts2.max_inflight = window;
      TcpConnection conn("127.0.0.1", server.port(), wire::kAnyInstance,
                         copts2);
      SubmitClosedLoop(conn, std::min<size_t>(ops / 10 + 1, 2000), bodies,
                       /*record=*/false, hists[c], errors[c]);
      {
        std::unique_lock<std::mutex> lock(gate_mu);
        if (++warmed == loops) gate_cv.notify_all();
        gate_cv.wait(lock, [&] { return go; });
      }
      SubmitClosedLoop(conn, ops, bodies, /*record=*/true, hists[c],
                       errors[c]);
    });
  }

  // Release every warmed-up client at once and time the concurrent region.
  std::chrono::steady_clock::time_point t0;
  {
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return warmed == loops; });
    go = true;
    t0 = SteadyClock::now();
    gate_cv.notify_all();
  }
  for (auto& t : clients) t.join();
  const double secs =
      std::chrono::duration<double>(SteadyClock::now() - t0).count();
  out.backend = BackendCode(server);
  server.Stop();

  Histogram merged;
  for (size_t c = 0; c < loops; ++c) {
    merged.Merge(hists[c]);
    out.errors += errors[c];
  }
  out.ops_per_sec =
      secs > 0 ? static_cast<double>(ops * loops) / secs : 0;
  out.p50_us = merged.Percentile(0.50);
  out.p99_us = merged.Percentile(0.99);
  return out;
}

int RunScaling(size_t ops, size_t value_bytes, size_t num_keys,
               const std::string& json_path) {
  constexpr size_t kWindow = 32;
  constexpr uint32_t kStripes = 16;
  bench::PrintHeader("bench_transport --scaling",
                     "sharded server: aggregate GET ops/sec vs event loops "
                     "(connections = loops, window 32, loopback geminid)");
  const unsigned cpus = std::max(1u, std::thread::hardware_concurrency());
  std::printf("  ops/connection=%zu  value=%zuB  keys=%zu  stripes=%u  "
              "cpus=%u\n\n",
              ops, value_bytes, num_keys, kStripes, cpus);

  const OpContext ctx{kInternalConfigId, kInvalidFragment};
  std::vector<std::string> bodies(num_keys);
  for (size_t k = 0; k < num_keys; ++k) {
    wire::PutContext(bodies[k], ctx);
    wire::PutKey(bodies[k], KeyName(k));
  }

  const std::vector<size_t> loop_counts = {1, 2, 4};
  std::vector<ScalingRun> runs;
  std::printf("  %6s %6s %12s %10s %10s\n", "loops", "conns", "ops/sec",
              "p50 us", "p99 us");
  uint64_t total_errors = 0;
  for (const size_t loops : loop_counts) {
    runs.push_back(RunScalingPoint(loops, kWindow, ops, value_bytes, num_keys,
                                   kStripes, bodies));
    const ScalingRun& r = runs.back();
    std::printf("  %6zu %6zu %12.0f %10.1f %10.1f\n", r.loops, r.loops,
                r.ops_per_sec, r.p50_us, r.p99_us);
    total_errors += r.errors;
  }
  if (total_errors > 0) {
    std::fprintf(stderr, "bench_transport: %llu ops failed\n",
                 static_cast<unsigned long long>(total_errors));
    return 1;
  }

  double base = 0, at4 = 0;
  std::vector<bench::BenchResult> results;
  for (const ScalingRun& r : runs) {
    if (r.loops == 1) base = r.ops_per_sec;
    if (r.loops == 4) at4 = r.ops_per_sec;
    bench::BenchResult br;
    br.name = "server_scaling";
    br.params = {{"loops", static_cast<double>(r.loops)},
                 {"connections", static_cast<double>(r.loops)},
                 {"window", static_cast<double>(kWindow)},
                 {"ops", static_cast<double>(ops)},
                 {"value_bytes", static_cast<double>(value_bytes)},
                 {"keys", static_cast<double>(num_keys)},
                 {"stripes", static_cast<double>(kStripes)},
                 {"cpus", static_cast<double>(cpus)},
                 {"backend", r.backend},
                 {"kernel", KernelCode()}};
    br.ops_per_sec = r.ops_per_sec;
    br.p50_us = r.p50_us;
    br.p99_us = r.p99_us;
    results.push_back(std::move(br));
  }
  std::printf("\n  4 loops vs 1 loop aggregate speedup: %.2fx (on %u cpus)\n",
              base > 0 ? at4 / base : 0.0, cpus);
  if (!bench::WriteResultsJson(json_path, "server_scaling", results)) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("  results written to %s\n", json_path.c_str());
  return 0;
}

// ---- Bulk write mode --------------------------------------------------------

struct BulkRun {
  bool bulk = false;
  double ops_per_sec = 0;  // keys written per second
  double p50_us = 0;       // per-burst latency
  double p99_us = 0;
  uint64_t errors = 0;
};

/// One client thread's share of a bulk-mode side: `bursts` bursts of `burst`
/// keys each against the server on `port`, submitted continuously through a
/// window-`window` connection (max_inflight counts frames, exactly as a real
/// client's). bulk=false ships each key as its own pipelined kSet frame —
/// the best a client without the bulk opcodes can do; bulk=true ships each
/// burst as one pipelined kMultiSet frame. Latency is per frame, so the
/// bulk=1 histogram reads per-burst.
void RunBulkClient(uint16_t port, bool bulk, size_t bursts, size_t burst,
                   size_t window, size_t value_bytes, size_t num_keys,
                   Histogram& hist, uint64_t& errors) {
  const OpContext ctx{kInternalConfigId, kInvalidFragment};
  const std::string payload(value_bytes, 'x');

  // Both sides pre-encode their request bodies so the timed loop measures
  // the transport, not the codec — mirroring the GET sweep.
  wire::Op op;
  std::vector<std::string> bodies;
  size_t frames = 0;
  if (bulk) {
    op = wire::Op::kMultiSet;
    frames = bursts;
    const size_t groups = std::max<size_t>(1, num_keys / burst);
    bodies.resize(groups);
    for (size_t g = 0; g < groups; ++g) {
      wire::PutU32(bodies[g], static_cast<uint32_t>(burst));
      for (size_t i = 0; i < burst; ++i) {
        wire::PutContext(bodies[g], ctx);
        wire::PutKey(bodies[g], KeyName((g * burst + i) % num_keys));
        wire::PutValue(bodies[g], CacheValue::OfData(payload));
      }
    }
  } else {
    op = wire::Op::kSet;
    frames = bursts * burst;
    bodies.resize(num_keys);
    for (size_t k = 0; k < num_keys; ++k) {
      wire::PutContext(bodies[k], ctx);
      wire::PutKey(bodies[k], KeyName(k));
      wire::PutValue(bodies[k], CacheValue::OfData(payload));
    }
  }

  TcpConnection::Options copts;
  copts.max_inflight = window;
  TcpConnection conn("127.0.0.1", port, wire::kAnyInstance, copts);
  std::mutex mu;
  std::condition_variable cv;
  const auto submit = [&](size_t n, bool record) {
    size_t completed = 0;
    for (size_t i = 0; i < n; ++i) {
      const auto start = SteadyClock::now();
      conn.SubmitAsync(op, bodies[i % bodies.size()],
                       [&, start, record, n](Status s, std::string) {
                         const int64_t us =
                             std::chrono::duration_cast<
                                 std::chrono::microseconds>(
                                 SteadyClock::now() - start)
                                 .count();
                         std::lock_guard<std::mutex> lock(mu);
                         if (record) {
                           hist.Record(us > 0 ? us : 1);
                           if (!s.ok()) ++errors;
                         }
                         if (++completed == n) cv.notify_one();
                       });
    }
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return completed == n; });
  };
  submit(frames / 10 + 1, /*record=*/false);
  submit(frames, /*record=*/true);
}

/// Drives one side of the bulk comparison with `clients` concurrent
/// connections so the single server loop — not loopback round-trip
/// latency — is the bottleneck; that is where the per-frame overhead the
/// bulk opcodes remove actually lives.
BulkRun RunBulkSide(uint16_t port, bool bulk, size_t clients, size_t bursts,
                    size_t burst, size_t window, size_t value_bytes,
                    size_t num_keys) {
  BulkRun out;
  out.bulk = bulk;
  std::vector<Histogram> hists(clients);
  std::vector<uint64_t> errors(clients, 0);
  std::vector<std::thread> threads;
  threads.reserve(clients);
  const auto t0 = SteadyClock::now();
  for (size_t c = 0; c < clients; ++c) {
    threads.emplace_back([&, c] {
      RunBulkClient(port, bulk, bursts, burst, window, value_bytes, num_keys,
                    hists[c], errors[c]);
    });
  }
  for (auto& t : threads) t.join();
  const double secs =
      std::chrono::duration<double>(SteadyClock::now() - t0).count();

  Histogram merged;
  for (size_t c = 0; c < clients; ++c) {
    merged.Merge(hists[c]);
    out.errors += errors[c];
  }
  out.ops_per_sec =
      secs > 0 ? static_cast<double>(clients * bursts * burst) / secs : 0;
  out.p50_us = merged.Percentile(0.50);
  out.p99_us = merged.Percentile(0.99);
  return out;
}

int RunBulk(size_t ops, size_t value_bytes, size_t num_keys,
            const std::string& json_path) {
  constexpr size_t kBurst = 32;
  constexpr size_t kWindow = 32;
  constexpr size_t kClients = 1;
  const size_t bursts = ops / kBurst / kClients + 1;
  bench::PrintHeader(
      "bench_transport --bulk",
      "bulk writes: 32-key kMultiSet frames vs individual kSet frames, "
      "both pipelined through a window-32 connection (loopback geminid)");

  SystemClock& clock = SystemClock::Global();
  CacheInstance instance(0, &clock);
  TransportServer::Options sopts;
  sopts.num_loops = 1;
  TransportServer server(&instance, sopts);
  if (Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("  clients=%zu  bursts/client=%zu  burst=32  value=%zuB  "
              "keys=%zu  io=%s\n\n",
              kClients, bursts, value_bytes, num_keys,
              server.io_backend_name());

  std::vector<BulkRun> runs;
  std::printf("  %8s %14s %10s %10s\n", "bulk", "keys/sec", "p50 us",
              "p99 us");
  uint64_t total_errors = 0;
  for (const bool bulk : {false, true}) {
    runs.push_back(RunBulkSide(server.port(), bulk, kClients, bursts, kBurst,
                               kWindow, value_bytes, num_keys));
    const BulkRun& r = runs.back();
    std::printf("  %8d %14.0f %10.1f %10.1f\n", r.bulk ? 1 : 0, r.ops_per_sec,
                r.p50_us, r.p99_us);
    total_errors += r.errors;
  }
  const double backend_code = BackendCode(server);
  server.Stop();
  if (total_errors > 0) {
    std::fprintf(stderr, "bench_transport: %llu ops failed\n",
                 static_cast<unsigned long long>(total_errors));
    return 1;
  }

  std::vector<bench::BenchResult> results;
  for (const BulkRun& r : runs) {
    bench::BenchResult br;
    br.name = "transport_bulk_set";
    br.params = {{"bulk", r.bulk ? 1.0 : 0.0},
                 {"burst", static_cast<double>(kBurst)},
                 {"window", static_cast<double>(kWindow)},
                 {"connections", static_cast<double>(kClients)},
                 {"ops", static_cast<double>(kClients * bursts * kBurst)},
                 {"value_bytes", static_cast<double>(value_bytes)},
                 {"keys", static_cast<double>(num_keys)},
                 {"backend", backend_code},
                 {"kernel", KernelCode()}};
    br.ops_per_sec = r.ops_per_sec;
    br.p50_us = r.p50_us;
    br.p99_us = r.p99_us;
    results.push_back(std::move(br));
  }
  std::printf("\n  MultiSet vs pipelined Sets speedup: %.2fx\n",
              runs[0].ops_per_sec > 0
                  ? runs[1].ops_per_sec / runs[0].ops_per_sec
                  : 0.0);
  if (!bench::WriteResultsJson(json_path, "transport_bulk", results)) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("  results written to %s\n", json_path.c_str());
  return 0;
}

int Run(int argc, char** argv) {
  const bench::BenchFlags flags = bench::ParseFlags(argc, argv);
  size_t ops = flags.full ? 200'000 : 50'000;
  if (flags.quick) ops = 2'000;
  size_t value_bytes = 100;
  size_t num_keys = 1'000;
  bool scaling = false;
  bool chaos = false;
  bool bulk = false;
  uint64_t chaos_seed = 1;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--ops=", 6) == 0) {
      ops = std::strtoull(argv[i] + 6, nullptr, 10);
    } else if (std::strncmp(argv[i], "--value-bytes=", 14) == 0) {
      value_bytes = std::strtoull(argv[i] + 14, nullptr, 10);
    } else if (std::strncmp(argv[i], "--keys=", 7) == 0) {
      num_keys = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--chaos-seed=", 13) == 0) {
      chaos_seed = std::strtoull(argv[i] + 13, nullptr, 10);
    } else if (std::strcmp(argv[i], "--scaling") == 0) {
      scaling = true;
    } else if (std::strcmp(argv[i], "--chaos") == 0) {
      chaos = true;
    } else if (std::strcmp(argv[i], "--bulk") == 0) {
      bulk = true;
    }
  }
  if (ops == 0 || num_keys == 0) {
    std::fprintf(stderr, "bench_transport: --ops and --keys must be > 0\n");
    return 2;
  }
  if (json_path.empty()) {
    json_path = scaling ? "BENCH_server_scaling.json"
                : chaos ? "BENCH_transport_chaos.json"
                : bulk  ? "BENCH_transport_bulk.json"
                        : "BENCH_transport.json";
  }
  if (scaling) {
    return RunScaling(ops, value_bytes, num_keys, json_path);
  }
  if (bulk) {
    return RunBulk(ops, value_bytes, num_keys, json_path);
  }

  bench::PrintHeader(chaos ? "bench_transport --chaos" : "bench_transport",
                     chaos ? "pipelined TCP transport through a seeded "
                             "delay/hold FaultProxy: ops/sec vs window"
                           : "pipelined TCP transport: ops/sec vs in-flight "
                             "window (loopback geminid)");
  std::printf("  ops/window=%zu  value=%zuB  keys=%zu\n\n", ops, value_bytes,
              num_keys);

  SystemClock& clock = SystemClock::Global();
  CacheInstance instance(0, &clock);
  TransportServer::Options sopts;
  sopts.num_loops = 1;  // the window sweep isolates the client pipeline
  TransportServer server(&instance, sopts);
  if (Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // Preload the working set and pre-encode the GET request bodies so the
  // timed loop measures the transport, not the codec.
  const OpContext ctx{kInternalConfigId, kInvalidFragment};
  {
    TcpCacheBackend seeder("127.0.0.1", server.port());
    const std::string payload(value_bytes, 'x');
    for (size_t k = 0; k < num_keys; ++k) {
      if (Status s = seeder.Set(ctx, KeyName(k), CacheValue::OfData(payload));
          !s.ok()) {
        std::fprintf(stderr, "preload failed: %s\n", s.ToString().c_str());
        return 1;
      }
    }
  }
  std::vector<std::string> bodies(num_keys);
  for (size_t k = 0; k < num_keys; ++k) {
    wire::PutContext(bodies[k], ctx);
    wire::PutKey(bodies[k], KeyName(k));
  }

  // Under --chaos, clients dial the proxy instead of the server. Mild,
  // purely additive-latency faults (no cuts): every op still completes, so
  // the sweep measures degradation rather than error handling.
  std::unique_ptr<FaultProxy> proxy;
  uint16_t target_port = server.port();
  if (chaos) {
    FaultProxy::Options popts;
    popts.seed = chaos_seed;
    for (auto* p : {&popts.client_to_server, &popts.server_to_client}) {
      p->skip_frames = 1;
      p->delay_prob = 0.2;
      p->delay_min = 0;
      p->delay_max = Millis(1);
      p->hold_every = 32;
      p->hold_count = 4;
    }
    proxy = std::make_unique<FaultProxy>("127.0.0.1", server.port(), popts);
    if (Status s = proxy->Start(); !s.ok()) {
      std::fprintf(stderr, "proxy start failed: %s\n", s.ToString().c_str());
      return 1;
    }
    target_port = proxy->port();
    std::printf("  chaos seed=%llu (delays<=1ms p=0.2 both ways, hold 4/32)\n",
                static_cast<unsigned long long>(chaos_seed));
  }

  const std::vector<size_t> windows = {1, 2, 4, 8, 16, 32, 64};
  std::vector<WindowRun> runs;
  std::printf("  %8s %12s %10s %10s\n", "window", "ops/sec", "p50 us",
              "p99 us");
  uint64_t total_errors = 0;
  for (const size_t w : windows) {
    runs.push_back(RunWindow(target_port, w, ops, bodies));
    const WindowRun& r = runs.back();
    std::printf("  %8zu %12.0f %10.1f %10.1f\n", r.window, r.ops_per_sec,
                r.p50_us, r.p99_us);
    total_errors += r.errors;
  }
  if (proxy) proxy->Stop();
  server.Stop();
  if (total_errors > 0) {
    std::fprintf(stderr, "bench_transport: %llu ops failed\n",
                 static_cast<unsigned long long>(total_errors));
    return 1;
  }

  double base = 0, at32 = 0;
  std::vector<bench::BenchResult> results;
  for (const WindowRun& r : runs) {
    if (r.window == 1) base = r.ops_per_sec;
    if (r.window == 32) at32 = r.ops_per_sec;
    bench::BenchResult br;
    br.name = chaos ? "transport_get_chaos" : "transport_get";
    br.params = {{"window", static_cast<double>(r.window)},
                 {"ops", static_cast<double>(ops)},
                 {"value_bytes", static_cast<double>(value_bytes)},
                 {"keys", static_cast<double>(num_keys)},
                 {"backend", BackendCode(server)},
                 {"kernel", KernelCode()}};
    if (chaos) br.params.push_back({"seed", static_cast<double>(chaos_seed)});
    br.ops_per_sec = r.ops_per_sec;
    br.p50_us = r.p50_us;
    br.p99_us = r.p99_us;
    results.push_back(std::move(br));
  }
  std::printf("\n  window 32 vs 1 speedup: %.1fx\n",
              base > 0 ? at32 / base : 0.0);
  if (!bench::WriteResultsJson(json_path, chaos ? "transport_chaos" : "transport",
                               results)) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("  results written to %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace gemini

int main(int argc, char** argv) { return gemini::Run(argc, argv); }
