// bench_transport: throughput and latency of the pipelined TCP transport,
// over loopback against a real TransportServer (the geminid event loops).
//
// Two modes:
//
//  Default — window sweep. One closed-loop submitter issues small GETs
//  through TcpConnection's async window: window=1 reproduces the old strict
//  request/response alternation (one frame in flight, one round trip per
//  op), larger windows let the writer coalesce frames into single send(2)
//  calls and the server answer whole bursts per epoll wakeup. Writes
//  BENCH_transport.json; the committed file at the repo root is the
//  loopback baseline backing the ROADMAP pipelining claim.
//
//  --scaling — server scaling sweep. For each event-loop count in {1,2,4},
//  starts a fresh server with that many loops (and a lock-striped
//  CacheInstance), drives it with the same number of client connections —
//  one closed-loop submitter thread each at window 32 — and reports the
//  aggregate GET throughput. Writes BENCH_server_scaling.json; the params
//  record `cpus` (hardware threads of the machine that produced the file)
//  because the loops>1 rows can only beat the loops=1 row when the server
//  actually has cores to spread across.
//
//  --chaos — the same window sweep through a FaultProxy injecting mild,
//  seeded per-frame delays (plus hold bursts) on both directions. Results go
//  to a separate name/file (BENCH_transport_chaos.json) so the committed
//  clean-path baseline and tools/check_bench.py are untouched; the point is
//  a quick read on how much a lossy-ish network costs the pipeline, and a
//  standing proof that the retry layer adds nothing to the healthy path
//  (compare BENCH_transport.json before/after: the default sweep runs with
//  retry enabled but never exercised).
//
// Flags: --quick (CI smoke), --full, --scaling, --chaos, --chaos-seed=N,
//        --ops=N (per connection), --value-bytes=B, --keys=K, --json=PATH.
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "src/cache/cache_instance.h"
#include "src/common/clock.h"
#include "src/common/histogram.h"
#include "src/transport/fault_proxy.h"
#include "src/transport/server.h"
#include "src/transport/tcp_backend.h"
#include "src/transport/tcp_connection.h"
#include "src/transport/wire.h"

namespace gemini {
namespace {

using SteadyClock = std::chrono::steady_clock;

std::string KeyName(size_t k) { return "key" + std::to_string(k); }

/// Issues `n` pipelined GETs closed-loop on `conn`, recording latencies and
/// errors when `record` is set. Returns when every response arrived.
void SubmitClosedLoop(TcpConnection& conn, size_t n,
                      const std::vector<std::string>& bodies, bool record,
                      Histogram& hist, uint64_t& errors) {
  std::mutex mu;
  std::condition_variable cv;
  size_t completed = 0;
  for (size_t i = 0; i < n; ++i) {
    const auto start = SteadyClock::now();
    // SubmitAsync blocks while the window is full, so the submitter is the
    // closed loop and the connection enforces the depth.
    conn.SubmitAsync(wire::Op::kGet, bodies[i % bodies.size()],
                     [&, start, record, n](Status s, std::string) {
                       const int64_t us =
                           std::chrono::duration_cast<
                               std::chrono::microseconds>(SteadyClock::now() -
                                                          start)
                               .count();
                       std::lock_guard<std::mutex> lock(mu);
                       if (record) {
                         hist.Record(us > 0 ? us : 1);
                         if (!s.ok()) ++errors;
                       }
                       if (++completed == n) cv.notify_one();
                     });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return completed == n; });
}

struct WindowRun {
  size_t window = 0;
  double ops_per_sec = 0;
  double p50_us = 0;
  double p99_us = 0;
  uint64_t errors = 0;
};

/// Runs `ops` GETs closed-loop at in-flight depth `window` on a fresh
/// connection (constructed directly, not via the Acquire pool, so every
/// window size gets its own options).
WindowRun RunWindow(uint16_t port, size_t window, size_t ops,
                    const std::vector<std::string>& bodies) {
  TcpConnection::Options copts;
  copts.max_inflight = window;
  TcpConnection conn("127.0.0.1", port, wire::kAnyInstance, copts);

  Histogram hist;
  uint64_t errors = 0;
  SubmitClosedLoop(conn, std::min<size_t>(ops / 10 + 1, 2000), bodies,
                   /*record=*/false, hist, errors);
  const auto t0 = SteadyClock::now();
  SubmitClosedLoop(conn, ops, bodies, /*record=*/true, hist, errors);
  const double secs =
      std::chrono::duration<double>(SteadyClock::now() - t0).count();

  WindowRun out;
  out.window = window;
  out.ops_per_sec = secs > 0 ? static_cast<double>(ops) / secs : 0;
  out.p50_us = hist.Percentile(0.50);
  out.p99_us = hist.Percentile(0.99);
  out.errors = errors;
  return out;
}

// ---- Server scaling mode ----------------------------------------------------

struct ScalingRun {
  size_t loops = 0;
  double ops_per_sec = 0;  // aggregate across all connections
  double p50_us = 0;
  double p99_us = 0;
  uint64_t errors = 0;
};

/// Starts a fresh `loops`-shard server over a striped instance, preloads the
/// working set, then drives it with `loops` connections (one submitter
/// thread each, window `window`, `ops` GETs per connection) released
/// together so the timed region measures concurrent load on every shard.
ScalingRun RunScalingPoint(size_t loops, size_t window, size_t ops,
                           size_t value_bytes, size_t num_keys,
                           uint32_t stripes,
                           const std::vector<std::string>& bodies) {
  SystemClock& clock = SystemClock::Global();
  CacheInstance::Options copts;
  copts.num_stripes = stripes;
  CacheInstance instance(0, &clock, copts);
  TransportServer::Options sopts;
  sopts.num_loops = static_cast<uint32_t>(loops);
  TransportServer server(&instance, sopts);
  ScalingRun out;
  out.loops = loops;
  if (Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
    out.errors = 1;
    return out;
  }
  {
    TcpCacheBackend seeder("127.0.0.1", server.port());
    const OpContext ctx{kInternalConfigId, kInvalidFragment};
    const std::string payload(value_bytes, 'x');
    for (size_t k = 0; k < num_keys; ++k) {
      if (Status s = seeder.Set(ctx, KeyName(k), CacheValue::OfData(payload));
          !s.ok()) {
        std::fprintf(stderr, "preload failed: %s\n", s.ToString().c_str());
        out.errors = 1;
        return out;
      }
    }
  }

  std::vector<Histogram> hists(loops);
  std::vector<uint64_t> errors(loops, 0);
  std::mutex gate_mu;
  std::condition_variable gate_cv;
  size_t warmed = 0;
  bool go = false;

  std::vector<std::thread> clients;
  clients.reserve(loops);
  for (size_t c = 0; c < loops; ++c) {
    clients.emplace_back([&, c] {
      TcpConnection::Options copts2;
      copts2.max_inflight = window;
      TcpConnection conn("127.0.0.1", server.port(), wire::kAnyInstance,
                         copts2);
      SubmitClosedLoop(conn, std::min<size_t>(ops / 10 + 1, 2000), bodies,
                       /*record=*/false, hists[c], errors[c]);
      {
        std::unique_lock<std::mutex> lock(gate_mu);
        if (++warmed == loops) gate_cv.notify_all();
        gate_cv.wait(lock, [&] { return go; });
      }
      SubmitClosedLoop(conn, ops, bodies, /*record=*/true, hists[c],
                       errors[c]);
    });
  }

  // Release every warmed-up client at once and time the concurrent region.
  std::chrono::steady_clock::time_point t0;
  {
    std::unique_lock<std::mutex> lock(gate_mu);
    gate_cv.wait(lock, [&] { return warmed == loops; });
    go = true;
    t0 = SteadyClock::now();
    gate_cv.notify_all();
  }
  for (auto& t : clients) t.join();
  const double secs =
      std::chrono::duration<double>(SteadyClock::now() - t0).count();
  server.Stop();

  Histogram merged;
  for (size_t c = 0; c < loops; ++c) {
    merged.Merge(hists[c]);
    out.errors += errors[c];
  }
  out.ops_per_sec =
      secs > 0 ? static_cast<double>(ops * loops) / secs : 0;
  out.p50_us = merged.Percentile(0.50);
  out.p99_us = merged.Percentile(0.99);
  return out;
}

int RunScaling(size_t ops, size_t value_bytes, size_t num_keys,
               const std::string& json_path) {
  constexpr size_t kWindow = 32;
  constexpr uint32_t kStripes = 16;
  bench::PrintHeader("bench_transport --scaling",
                     "sharded server: aggregate GET ops/sec vs event loops "
                     "(connections = loops, window 32, loopback geminid)");
  const unsigned cpus = std::max(1u, std::thread::hardware_concurrency());
  std::printf("  ops/connection=%zu  value=%zuB  keys=%zu  stripes=%u  "
              "cpus=%u\n\n",
              ops, value_bytes, num_keys, kStripes, cpus);

  const OpContext ctx{kInternalConfigId, kInvalidFragment};
  std::vector<std::string> bodies(num_keys);
  for (size_t k = 0; k < num_keys; ++k) {
    wire::PutContext(bodies[k], ctx);
    wire::PutKey(bodies[k], KeyName(k));
  }

  const std::vector<size_t> loop_counts = {1, 2, 4};
  std::vector<ScalingRun> runs;
  std::printf("  %6s %6s %12s %10s %10s\n", "loops", "conns", "ops/sec",
              "p50 us", "p99 us");
  uint64_t total_errors = 0;
  for (const size_t loops : loop_counts) {
    runs.push_back(RunScalingPoint(loops, kWindow, ops, value_bytes, num_keys,
                                   kStripes, bodies));
    const ScalingRun& r = runs.back();
    std::printf("  %6zu %6zu %12.0f %10.1f %10.1f\n", r.loops, r.loops,
                r.ops_per_sec, r.p50_us, r.p99_us);
    total_errors += r.errors;
  }
  if (total_errors > 0) {
    std::fprintf(stderr, "bench_transport: %llu ops failed\n",
                 static_cast<unsigned long long>(total_errors));
    return 1;
  }

  double base = 0, at4 = 0;
  std::vector<bench::BenchResult> results;
  for (const ScalingRun& r : runs) {
    if (r.loops == 1) base = r.ops_per_sec;
    if (r.loops == 4) at4 = r.ops_per_sec;
    bench::BenchResult br;
    br.name = "server_scaling";
    br.params = {{"loops", static_cast<double>(r.loops)},
                 {"connections", static_cast<double>(r.loops)},
                 {"window", static_cast<double>(kWindow)},
                 {"ops", static_cast<double>(ops)},
                 {"value_bytes", static_cast<double>(value_bytes)},
                 {"keys", static_cast<double>(num_keys)},
                 {"stripes", static_cast<double>(kStripes)},
                 {"cpus", static_cast<double>(cpus)}};
    br.ops_per_sec = r.ops_per_sec;
    br.p50_us = r.p50_us;
    br.p99_us = r.p99_us;
    results.push_back(std::move(br));
  }
  std::printf("\n  4 loops vs 1 loop aggregate speedup: %.2fx (on %u cpus)\n",
              base > 0 ? at4 / base : 0.0, cpus);
  if (!bench::WriteResultsJson(json_path, "server_scaling", results)) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("  results written to %s\n", json_path.c_str());
  return 0;
}

int Run(int argc, char** argv) {
  const bench::BenchFlags flags = bench::ParseFlags(argc, argv);
  size_t ops = flags.full ? 200'000 : 50'000;
  if (flags.quick) ops = 2'000;
  size_t value_bytes = 100;
  size_t num_keys = 1'000;
  bool scaling = false;
  bool chaos = false;
  uint64_t chaos_seed = 1;
  std::string json_path;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--ops=", 6) == 0) {
      ops = std::strtoull(argv[i] + 6, nullptr, 10);
    } else if (std::strncmp(argv[i], "--value-bytes=", 14) == 0) {
      value_bytes = std::strtoull(argv[i] + 14, nullptr, 10);
    } else if (std::strncmp(argv[i], "--keys=", 7) == 0) {
      num_keys = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    } else if (std::strncmp(argv[i], "--chaos-seed=", 13) == 0) {
      chaos_seed = std::strtoull(argv[i] + 13, nullptr, 10);
    } else if (std::strcmp(argv[i], "--scaling") == 0) {
      scaling = true;
    } else if (std::strcmp(argv[i], "--chaos") == 0) {
      chaos = true;
    }
  }
  if (ops == 0 || num_keys == 0) {
    std::fprintf(stderr, "bench_transport: --ops and --keys must be > 0\n");
    return 2;
  }
  if (json_path.empty()) {
    json_path = scaling ? "BENCH_server_scaling.json"
                : chaos ? "BENCH_transport_chaos.json"
                        : "BENCH_transport.json";
  }
  if (scaling) {
    return RunScaling(ops, value_bytes, num_keys, json_path);
  }

  bench::PrintHeader(chaos ? "bench_transport --chaos" : "bench_transport",
                     chaos ? "pipelined TCP transport through a seeded "
                             "delay/hold FaultProxy: ops/sec vs window"
                           : "pipelined TCP transport: ops/sec vs in-flight "
                             "window (loopback geminid)");
  std::printf("  ops/window=%zu  value=%zuB  keys=%zu\n\n", ops, value_bytes,
              num_keys);

  SystemClock& clock = SystemClock::Global();
  CacheInstance instance(0, &clock);
  TransportServer::Options sopts;
  sopts.num_loops = 1;  // the window sweep isolates the client pipeline
  TransportServer server(&instance, sopts);
  if (Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // Preload the working set and pre-encode the GET request bodies so the
  // timed loop measures the transport, not the codec.
  const OpContext ctx{kInternalConfigId, kInvalidFragment};
  {
    TcpCacheBackend seeder("127.0.0.1", server.port());
    const std::string payload(value_bytes, 'x');
    for (size_t k = 0; k < num_keys; ++k) {
      if (Status s = seeder.Set(ctx, KeyName(k), CacheValue::OfData(payload));
          !s.ok()) {
        std::fprintf(stderr, "preload failed: %s\n", s.ToString().c_str());
        return 1;
      }
    }
  }
  std::vector<std::string> bodies(num_keys);
  for (size_t k = 0; k < num_keys; ++k) {
    wire::PutContext(bodies[k], ctx);
    wire::PutKey(bodies[k], KeyName(k));
  }

  // Under --chaos, clients dial the proxy instead of the server. Mild,
  // purely additive-latency faults (no cuts): every op still completes, so
  // the sweep measures degradation rather than error handling.
  std::unique_ptr<FaultProxy> proxy;
  uint16_t target_port = server.port();
  if (chaos) {
    FaultProxy::Options popts;
    popts.seed = chaos_seed;
    for (auto* p : {&popts.client_to_server, &popts.server_to_client}) {
      p->skip_frames = 1;
      p->delay_prob = 0.2;
      p->delay_min = 0;
      p->delay_max = Millis(1);
      p->hold_every = 32;
      p->hold_count = 4;
    }
    proxy = std::make_unique<FaultProxy>("127.0.0.1", server.port(), popts);
    if (Status s = proxy->Start(); !s.ok()) {
      std::fprintf(stderr, "proxy start failed: %s\n", s.ToString().c_str());
      return 1;
    }
    target_port = proxy->port();
    std::printf("  chaos seed=%llu (delays<=1ms p=0.2 both ways, hold 4/32)\n",
                static_cast<unsigned long long>(chaos_seed));
  }

  const std::vector<size_t> windows = {1, 2, 4, 8, 16, 32, 64};
  std::vector<WindowRun> runs;
  std::printf("  %8s %12s %10s %10s\n", "window", "ops/sec", "p50 us",
              "p99 us");
  uint64_t total_errors = 0;
  for (const size_t w : windows) {
    runs.push_back(RunWindow(target_port, w, ops, bodies));
    const WindowRun& r = runs.back();
    std::printf("  %8zu %12.0f %10.1f %10.1f\n", r.window, r.ops_per_sec,
                r.p50_us, r.p99_us);
    total_errors += r.errors;
  }
  if (proxy) proxy->Stop();
  server.Stop();
  if (total_errors > 0) {
    std::fprintf(stderr, "bench_transport: %llu ops failed\n",
                 static_cast<unsigned long long>(total_errors));
    return 1;
  }

  double base = 0, at32 = 0;
  std::vector<bench::BenchResult> results;
  for (const WindowRun& r : runs) {
    if (r.window == 1) base = r.ops_per_sec;
    if (r.window == 32) at32 = r.ops_per_sec;
    bench::BenchResult br;
    br.name = chaos ? "transport_get_chaos" : "transport_get";
    br.params = {{"window", static_cast<double>(r.window)},
                 {"ops", static_cast<double>(ops)},
                 {"value_bytes", static_cast<double>(value_bytes)},
                 {"keys", static_cast<double>(num_keys)}};
    if (chaos) br.params.push_back({"seed", static_cast<double>(chaos_seed)});
    br.ops_per_sec = r.ops_per_sec;
    br.p50_us = r.p50_us;
    br.p99_us = r.p99_us;
    results.push_back(std::move(br));
  }
  std::printf("\n  window 32 vs 1 speedup: %.1fx\n",
              base > 0 ? at32 / base : 0.0);
  if (!bench::WriteResultsJson(json_path, chaos ? "transport_chaos" : "transport",
                               results)) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("  results written to %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace gemini

int main(int argc, char** argv) { return gemini::Run(argc, argv); }
