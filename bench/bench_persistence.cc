// bench_persistence: what durability costs on the write path, and what it
// buys back at restart.
//
// Three result groups, one JSON file (BENCH_persistence.json):
//
//  persist_set — closed-loop SETs at window 32 through a real loopback
//  TransportServer, once against a plain CacheInstance (wal=0) and once
//  against an instance recording through a PersistentStore with the default
//  fsync policy (wal=1, batched syncs + the background 50ms cadence; eager
//  syncs never fire because plain SETs are miss-on-loss records). The
//  wal=1/wal=0 ratio is the WAL overhead; tools/check_bench.py enforces a
//  floor on it in CI via --min-point persist_set:wal=1:FLOOR.
//
//  restore_warm — the payoff curve. For each working-set size, populate a
//  persistent instance, close the store (a graceful close syncs but does
//  not checkpoint, so restart replays the full WAL — the worst case), then
//  time PersistentStore::Open() into a fresh instance. ops_per_sec is
//  entries restored per second; the first-pass hit ratio after Open() is
//  asserted to be 100%, which is the whole point: a warm restart reaches
//  hit-ratio 1.0 after Open() returns, with zero backend traffic.
//
//  restore_cold — the alternative a persistence-less restart faces: every
//  key must be re-fetched and re-filled over the network. Modeled as one
//  GET (miss) + one SET per key through the loopback transport, which is a
//  *lower bound* on real refill cost — an actual backend adds its own
//  storage and network latency on top, and the paper's Figure 6 shows the
//  hit-ratio dip lasting minutes at production scale.
//
// Flags: --quick (CI smoke: shrinks persist_set ops only — restore sweeps
//        keep their sizes so curves stay comparable to the committed
//        baseline), --full, --ops=N, --keys=K, --value-bytes=B, --json=PATH.
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include <ftw.h>
#include <sys/stat.h>
#include <unistd.h>

#include "bench/bench_common.h"
#include "src/cache/cache_instance.h"
#include "src/common/clock.h"
#include "src/common/histogram.h"
#include "src/persist/persistent_store.h"
#include "src/transport/server.h"
#include "src/transport/tcp_backend.h"
#include "src/transport/tcp_connection.h"
#include "src/transport/wire.h"

namespace gemini {
namespace {

using SteadyClock = std::chrono::steady_clock;

constexpr OpContext kCtx{kInternalConfigId, kInvalidFragment};

std::string KeyName(size_t k) { return "key" + std::to_string(k); }

int RemoveVisit(const char* path, const struct stat*, int, struct FTW*) {
  return ::remove(path);
}

void RemoveTree(const std::string& dir) {
  ::nftw(dir.c_str(), RemoveVisit, 16, FTW_DEPTH | FTW_PHYS);
}

/// Issues `n` pipelined SETs closed-loop on `conn` (same shape as the
/// bench_transport submitter, but with kSet bodies).
void SubmitClosedLoop(TcpConnection& conn, size_t n,
                      const std::vector<std::string>& bodies, bool record,
                      Histogram& hist, uint64_t& errors) {
  std::mutex mu;
  std::condition_variable cv;
  size_t completed = 0;
  for (size_t i = 0; i < n; ++i) {
    const auto start = SteadyClock::now();
    conn.SubmitAsync(wire::Op::kSet, bodies[i % bodies.size()],
                     [&, start, record, n](Status s, std::string) {
                       const int64_t us =
                           std::chrono::duration_cast<
                               std::chrono::microseconds>(SteadyClock::now() -
                                                          start)
                               .count();
                       std::lock_guard<std::mutex> lock(mu);
                       if (record) {
                         hist.Record(us > 0 ? us : 1);
                         if (!s.ok()) ++errors;
                       }
                       if (++completed == n) cv.notify_one();
                     });
  }
  std::unique_lock<std::mutex> lock(mu);
  cv.wait(lock, [&] { return completed == n; });
}

// ---- persist_set: write-path overhead ---------------------------------------

struct SetRun {
  bool wal = false;
  double ops_per_sec = 0;
  double p50_us = 0;
  double p99_us = 0;
  uint64_t errors = 0;
  uint64_t fsyncs = 0;  // wal=1 only
};

/// Runs `ops` SETs at window 32 against a fresh loopback server; with `wal`
/// set, the instance records through a PersistentStore in `dir`.
SetRun RunSetPoint(bool wal, const std::string& dir, size_t ops,
                   size_t value_bytes, size_t num_keys,
                   const std::vector<std::string>& bodies) {
  constexpr size_t kWindow = 32;
  SetRun out;
  out.wal = wal;

  SystemClock& clock = SystemClock::Global();
  std::unique_ptr<PersistentStore> store;
  CacheInstance::Options copts;
  if (wal) {
    RemoveTree(dir);
    store = std::make_unique<PersistentStore>(dir);
    copts.persistence = store.get();
  }
  CacheInstance instance(0, &clock, copts);
  if (wal) {
    if (Status s = store->Open(instance); !s.ok()) {
      std::fprintf(stderr, "store open failed: %s\n", s.ToString().c_str());
      out.errors = 1;
      return out;
    }
  }
  TransportServer::Options sopts;
  sopts.num_loops = 1;  // one event loop: the sweep isolates the log cost
  TransportServer server(&instance, sopts);
  if (Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "server start failed: %s\n", s.ToString().c_str());
    out.errors = 1;
    return out;
  }

  {
    TcpConnection::Options cc;
    cc.max_inflight = kWindow;
    TcpConnection conn("127.0.0.1", server.port(), wire::kAnyInstance, cc);
    Histogram hist;
    SubmitClosedLoop(conn, std::min<size_t>(ops / 10 + 1, 2000), bodies,
                     /*record=*/false, hist, out.errors);
    const auto t0 = SteadyClock::now();
    SubmitClosedLoop(conn, ops, bodies, /*record=*/true, hist, out.errors);
    const double secs =
        std::chrono::duration<double>(SteadyClock::now() - t0).count();
    out.ops_per_sec = secs > 0 ? static_cast<double>(ops) / secs : 0;
    out.p50_us = hist.Percentile(0.50);
    out.p99_us = hist.Percentile(0.99);
  }
  server.Stop();
  if (wal) {
    if (!store->error().ok()) {
      std::fprintf(stderr, "wal error: %s\n",
                   store->error().ToString().c_str());
      ++out.errors;
    }
    out.fsyncs = store->stats().fsyncs;
    store->Close();
  }
  (void)value_bytes;
  (void)num_keys;
  return out;
}

// ---- restore_warm / restore_cold: restart cost ------------------------------

struct RestoreRun {
  size_t entries = 0;
  double ops_per_sec = 0;  // entries re-resident per second
  double millis = 0;
  double hit_ratio = 0;  // first full pass over the working set, post-restart
  uint64_t errors = 0;
};

/// Populates a persistent instance with `n` entries, closes the store
/// (sync, no checkpoint — restart replays the whole WAL), then times
/// Open() into a fresh instance and takes a first-pass hit census.
RestoreRun RunWarmPoint(const std::string& dir, size_t n, size_t value_bytes) {
  RestoreRun out;
  out.entries = n;
  SystemClock& clock = SystemClock::Global();
  RemoveTree(dir);
  const std::string payload(value_bytes, 'w');
  {
    auto store = std::make_unique<PersistentStore>(dir);
    CacheInstance::Options copts;
    copts.persistence = store.get();
    CacheInstance instance(0, &clock, copts);
    if (Status s = store->Open(instance); !s.ok()) {
      out.errors = 1;
      return out;
    }
    for (size_t k = 0; k < n; ++k) {
      if (!instance.Set(kCtx, KeyName(k), CacheValue::OfData(payload)).ok()) {
        ++out.errors;
      }
    }
    store->Close();
  }

  auto store = std::make_unique<PersistentStore>(dir);
  CacheInstance::Options copts;
  copts.persistence = store.get();
  CacheInstance instance(0, &clock, copts);
  const auto t0 = SteadyClock::now();
  if (Status s = store->Open(instance); !s.ok()) {
    std::fprintf(stderr, "warm reopen failed: %s\n", s.ToString().c_str());
    out.errors = 1;
    return out;
  }
  const double secs =
      std::chrono::duration<double>(SteadyClock::now() - t0).count();

  size_t hits = 0;
  for (size_t k = 0; k < n; ++k) {
    if (instance.ContainsRaw(KeyName(k))) ++hits;
  }
  out.hit_ratio = n > 0 ? static_cast<double>(hits) / n : 0;
  out.millis = secs * 1e3;
  out.ops_per_sec = secs > 0 ? static_cast<double>(n) / secs : 0;
  if (hits != n) ++out.errors;
  store->Close();
  RemoveTree(dir);
  return out;
}

/// The persistence-less restart: an empty instance behind a loopback server,
/// re-warmed by one GET (miss) + one SET per key from a client — the
/// cheapest possible stand-in for re-fetching the working set.
RestoreRun RunColdPoint(size_t n, size_t value_bytes) {
  RestoreRun out;
  out.entries = n;
  SystemClock& clock = SystemClock::Global();
  CacheInstance instance(0, &clock);
  TransportServer::Options sopts;
  sopts.num_loops = 1;
  TransportServer server(&instance, sopts);
  if (Status s = server.Start(); !s.ok()) {
    out.errors = 1;
    return out;
  }
  const std::string payload(value_bytes, 'c');
  {
    TcpCacheBackend client("127.0.0.1", server.port());
    const auto t0 = SteadyClock::now();
    for (size_t k = 0; k < n; ++k) {
      const std::string key = KeyName(k);
      if (client.Get(kCtx, key).ok()) ++out.errors;  // must be a miss
      if (!client.Set(kCtx, key, CacheValue::OfData(payload)).ok()) {
        ++out.errors;
      }
    }
    const double secs =
        std::chrono::duration<double>(SteadyClock::now() - t0).count();
    out.millis = secs * 1e3;
    out.ops_per_sec = secs > 0 ? static_cast<double>(n) / secs : 0;
  }
  out.hit_ratio = 0;  // nothing was resident when the first pass began
  if (instance.stats().entry_count != n) ++out.errors;
  server.Stop();
  return out;
}

int Run(int argc, char** argv) {
  const bench::BenchFlags flags = bench::ParseFlags(argc, argv);
  size_t ops = flags.full ? 200'000 : 50'000;
  if (flags.quick) ops = 2'000;
  size_t value_bytes = 100;
  size_t num_keys = 1'000;
  std::string json_path = "BENCH_persistence.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--ops=", 6) == 0) {
      ops = std::strtoull(argv[i] + 6, nullptr, 10);
    } else if (std::strncmp(argv[i], "--value-bytes=", 14) == 0) {
      value_bytes = std::strtoull(argv[i] + 14, nullptr, 10);
    } else if (std::strncmp(argv[i], "--keys=", 7) == 0) {
      num_keys = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }
  if (ops == 0 || num_keys == 0 || value_bytes == 0) {
    std::fprintf(stderr,
                 "bench_persistence: --ops, --keys, --value-bytes must be "
                 "> 0\n");
    return 2;
  }
  // The restore sweep is the same in every mode so fresh curves line up
  // point-for-point with the committed baseline (check_bench matches on the
  // entries value); --quick shrinks only the persist_set op count.
  const std::vector<size_t> restore_entries = {500, 2000, 8000};
  constexpr size_t kRestoreValueBytes = 256;
  constexpr size_t kWindow = 32;

  char scratch_template[] = "/tmp/bench_persist_XXXXXX";
  const char* scratch_c = ::mkdtemp(scratch_template);
  if (scratch_c == nullptr) {
    std::fprintf(stderr, "bench_persistence: mkdtemp failed\n");
    return 1;
  }
  const std::string scratch = scratch_c;

  bench::PrintHeader(
      "bench_persistence",
      "WAL overhead on the SET path (loopback geminid, window 32) and "
      "warm-vs-cold restart: WAL replay vs per-key network refill");
  std::printf("  ops=%zu  value=%zuB  keys=%zu  scratch=%s\n\n", ops,
              value_bytes, num_keys, scratch.c_str());

  // Pre-encode the SET bodies once; both sweeps replay the same byte
  // streams so the wal=0/wal=1 delta is exactly the persistence layer.
  std::vector<std::string> bodies(num_keys);
  {
    const std::string payload(value_bytes, 'x');
    for (size_t k = 0; k < num_keys; ++k) {
      wire::PutContext(bodies[k], kCtx);
      wire::PutKey(bodies[k], KeyName(k));
      wire::PutValue(bodies[k], CacheValue::OfData(payload));
    }
  }

  std::vector<bench::BenchResult> results;
  uint64_t total_errors = 0;

  std::printf("  persist_set (SETs, window %zu):\n", kWindow);
  std::printf("  %6s %12s %10s %10s %8s\n", "wal", "ops/sec", "p50 us",
              "p99 us", "fsyncs");
  double tput_off = 0, tput_on = 0;
  // Best of N: each point is a fresh server + client + (for wal=1) writer
  // and fsync threads time-slicing one core with the kernel's writeback
  // workers, so single runs swing by 2x on small machines. The fastest
  // repeat is the run least disturbed by scheduling noise — that is the
  // intrinsic speed of the configuration, which is what the wal=1/wal=0
  // ratio is meant to compare.
  constexpr int kSetRepeats = 5;
  for (const bool wal : {false, true}) {
    SetRun r;
    for (int rep = 0; rep < kSetRepeats; ++rep) {
      SetRun attempt = RunSetPoint(wal, scratch + "/set_wal", ops,
                                   value_bytes, num_keys, bodies);
      attempt.errors += r.errors;  // errors accumulate across repeats
      if (rep == 0 || attempt.ops_per_sec > r.ops_per_sec) {
        r = attempt;
      } else {
        r.errors = attempt.errors;
      }
    }
    std::printf("  %6d %12.0f %10.1f %10.1f %8llu\n", wal ? 1 : 0,
                r.ops_per_sec, r.p50_us, r.p99_us,
                static_cast<unsigned long long>(r.fsyncs));
    (wal ? tput_on : tput_off) = r.ops_per_sec;
    total_errors += r.errors;
    bench::BenchResult br;
    br.name = "persist_set";
    br.params = {{"wal", wal ? 1.0 : 0.0},
                 {"window", static_cast<double>(kWindow)},
                 {"ops", static_cast<double>(ops)},
                 {"value_bytes", static_cast<double>(value_bytes)},
                 {"keys", static_cast<double>(num_keys)}};
    br.ops_per_sec = r.ops_per_sec;
    br.p50_us = r.p50_us;
    br.p99_us = r.p99_us;
    results.push_back(std::move(br));
  }
  if (tput_off > 0) {
    std::printf("  WAL overhead at window %zu: %.1f%% (wal=1 runs at %.2fx "
                "of wal=0)\n\n",
                kWindow, 100.0 * (1.0 - tput_on / tput_off),
                tput_on / tput_off);
  }

  std::printf("  restore (value %zuB; warm = WAL replay, cold = GET+SET "
              "refill over loopback):\n",
              kRestoreValueBytes);
  std::printf("  %6s %8s %12s %10s %10s\n", "mode", "entries", "entries/s",
              "millis", "hit%");
  for (const bool warm : {true, false}) {
    for (const size_t n : restore_entries) {
      // Best of kSetRepeats, same as persist_set: a restore point is dominated by
      // a fixed per-run cost (open + checkpoint + server setup), so one
      // descheduling blip early in the run swings entries/s wildly.
      RestoreRun r;
      for (int rep = 0; rep < kSetRepeats; ++rep) {
        RestoreRun attempt =
            warm ? RunWarmPoint(scratch + "/warm", n, kRestoreValueBytes)
                 : RunColdPoint(n, kRestoreValueBytes);
        attempt.errors += r.errors;
        if (rep == 0 || attempt.ops_per_sec > r.ops_per_sec) {
          r = attempt;
        } else {
          r.errors = attempt.errors;
        }
      }
      std::printf("  %6s %8zu %12.0f %10.2f %9.1f%%\n",
                  warm ? "warm" : "cold", r.entries, r.ops_per_sec, r.millis,
                  100.0 * r.hit_ratio);
      total_errors += r.errors;
      bench::BenchResult br;
      br.name = warm ? "restore_warm" : "restore_cold";
      br.params = {{"entries", static_cast<double>(n)},
                   {"value_bytes", static_cast<double>(kRestoreValueBytes)}};
      br.ops_per_sec = r.ops_per_sec;
      br.p50_us = r.millis * 1e3;  // total time-to-warm, in us
      br.p99_us = r.millis * 1e3;
      results.push_back(std::move(br));
    }
  }

  RemoveTree(scratch);
  if (total_errors > 0) {
    std::fprintf(stderr, "bench_persistence: %llu check(s) failed\n",
                 static_cast<unsigned long long>(total_errors));
    return 1;
  }
  if (!bench::WriteResultsJson(json_path, "persistence", results)) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\n  results written to %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace gemini

int main(int argc, char** argv) { return gemini::Run(argc, argv); }
