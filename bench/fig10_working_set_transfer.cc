// Figure 10: cache hit ratio improvement of Gemini-I+W over Gemini-I on the
// recovering instance, for a 20% and a 100% access-pattern change during the
// failure, at low and high system load (Section 5.4.4).
//
// Paper shape: the working set transfer yields a significant positive hit
// ratio difference right after recovery; the difference is larger for the
// 100% change and persists longer under high load (the transfer and the
// hits on transferred entries both ride the larger request stream, while
// Gemini-I must fetch the entire new working set from the slow data store).
#include <cstdio>
#include <memory>
#include <vector>

#include "bench/bench_common.h"

namespace gemini::bench {
namespace {

std::vector<double> RecoveringInstanceHit(const BenchFlags& flags,
                                          const YcsbClusterParams& p,
                                          RecoveryPolicy policy,
                                          YcsbWorkload::Evolution evolution,
                                          bool high_load, double observe) {
  auto sim = MakeYcsbSim(flags, p, policy, 0.05, high_load, evolution);
  const double fail_at = p.warmup_seconds;
  const double fail_for = flags.quick ? 20 : 100;
  sim->ScheduleFailure(0, Seconds(fail_at), Seconds(fail_for));
  // The failure triggers the access-pattern switch (Section 5.4.4).
  sim->SchedulePhaseChange(Seconds(fail_at), 1);
  sim->Run(Seconds(fail_at + fail_for + observe));

  const auto ratios = sim->metrics().instance_hit[0].Ratios();
  const auto rec = static_cast<size_t>(fail_at + fail_for);
  std::vector<double> out;
  for (size_t s = rec; s < rec + static_cast<size_t>(observe); ++s) {
    out.push_back(s < ratios.size() ? ratios[s] * 100.0 : 0.0);
  }
  return out;
}

int Main(int argc, char** argv) {
  const BenchFlags flags = ParseFlags(argc, argv);
  PrintHeader("Figure 10",
              "hit-ratio improvement of Gemini-I+W over Gemini-I after "
              "recovery, 20%/100% access-pattern change, low & high load");
  YcsbClusterParams p = YcsbParams(flags);
  // The benefit of the transfer is fetching the new working set from the
  // (fast) secondaries instead of the (slow) data store. The paper's store
  // is ~10M records behind a single MongoDB server; scale its refill
  // bandwidth with our smaller database so the effect's *duration* is
  // preserved, not just its peak.
  p.net.store_servers = 6;
  p.net.store_query_service = Micros(3000);
  const double observe = flags.quick ? 20 : 50;

  struct Cell {
    const char* name;
    YcsbWorkload::Evolution evo;
    bool high;
  };
  const std::vector<Cell> cells = {
      {"20%-low", YcsbWorkload::Evolution::kSwitch20, false},
      {"20%-high", YcsbWorkload::Evolution::kSwitch20, true},
      {"100%-low", YcsbWorkload::Evolution::kSwitch100, false},
      {"100%-high", YcsbWorkload::Evolution::kSwitch100, true},
  };

  std::vector<std::string> names;
  std::vector<std::vector<double>> diffs;
  std::vector<double> early_gain;  // mean diff over first 10s
  for (const auto& cell : cells) {
    auto with_wst = RecoveringInstanceHit(flags, p, RecoveryPolicy::GeminiIW(),
                                          cell.evo, cell.high, observe);
    auto without = RecoveringInstanceHit(flags, p, RecoveryPolicy::GeminiI(),
                                         cell.evo, cell.high, observe);
    std::vector<double> diff;
    for (size_t s = 0; s < with_wst.size() && s < without.size(); ++s) {
      diff.push_back(with_wst[s] - without[s]);
    }
    double sum = 0;
    const size_t horizon = std::min<size_t>(diff.size(), 10);
    for (size_t s = 0; s < horizon; ++s) sum += diff[s];
    early_gain.push_back(horizon > 0 ? sum / double(horizon) : 0.0);
    names.emplace_back(cell.name);
    diffs.push_back(std::move(diff));
  }

  std::printf("\nHit-ratio difference Gemini-I+W minus Gemini-I "
              "(percentage points; x-axis: seconds after recovery)\n");
  std::printf("%s\n", FormatSeriesTable(names, diffs).c_str());

  std::printf("Summary: mean improvement over the first 10s after recovery\n");
  for (size_t i = 0; i < names.size(); ++i) {
    std::printf("  %-10s %+6.1f pp\n", names[i].c_str(), early_gain[i]);
  }

  PrintClaim(
      "working set transfer significantly improves the recovering "
      "instance's hit ratio; larger for the 100% change",
      (std::string("early gains (pp): 20%-low=") +
       std::to_string(early_gain[0]) + " 20%-high=" +
       std::to_string(early_gain[1]) + " 100%-low=" +
       std::to_string(early_gain[2]) + " 100%-high=" +
       std::to_string(early_gain[3]))
          .c_str());
  const bool ok = early_gain[2] > 0 && early_gain[3] > 0;
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace gemini::bench

int main(int argc, char** argv) { return gemini::bench::Main(argc, argv); }
