// Figure 9: elapsed time to restore the recovering instance's cache hit
// ratio with Gemini-I (invalidate dirty keys) vs Gemini-O (overwrite them
// with the latest value from the secondary replica), after a 100-second
// failure, at low and high system load, sweeping the update percentage.
//
// Paper shape: Gemini-O is considerably faster than Gemini-I — Gemini-I
// turns every dirty key into a future cache miss that must be recomputed
// from the data store, and the gap widens with the update percentage.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace gemini::bench {
namespace {

double RestoreSeconds(const BenchFlags& flags, const YcsbClusterParams& p,
                      RecoveryPolicy policy, double update_pct,
                      bool high_load) {
  auto sim = MakeYcsbSim(flags, p, policy, update_pct / 100.0, high_load);
  const double fail_at = p.warmup_seconds;
  const double fail_for = flags.quick ? 20 : 100;
  sim->ScheduleFailure(0, Seconds(fail_at), Seconds(fail_for));
  const double cap = flags.quick ? 120 : 400;
  double restored = -1;
  double t = fail_at + fail_for;
  while (t < fail_at + fail_for + cap) {
    t += 10;
    sim->Run(Seconds(t));
    restored = sim->SecondsToRestoreHitRatio(0);
    if (restored >= 0) break;
  }
  return restored;
}

int Main(int argc, char** argv) {
  const BenchFlags flags = ParseFlags(argc, argv);
  PrintHeader("Figure 9",
              "time to restore hit ratio after a 100s failure: Gemini-I "
              "(invalidate) vs Gemini-O (overwrite)");
  YcsbClusterParams p = YcsbParams(flags);

  const std::vector<double> updates =
      flags.full ? std::vector<double>{1, 2, 4, 6, 8, 10}
                 : (flags.quick ? std::vector<double>{5}
                                : std::vector<double>{1, 5, 10});

  std::printf("\n  update%%   I-low    O-low    I-high   O-high   (seconds)\n");
  double i_low_last = -1, o_low_last = -1;
  for (double u : updates) {
    const double il =
        RestoreSeconds(flags, p, RecoveryPolicy::GeminiI(), u, false);
    const double ol =
        RestoreSeconds(flags, p, RecoveryPolicy::GeminiO(), u, false);
    const double ih =
        RestoreSeconds(flags, p, RecoveryPolicy::GeminiI(), u, true);
    const double oh =
        RestoreSeconds(flags, p, RecoveryPolicy::GeminiO(), u, true);
    std::printf("  %7.0f   %6.1f   %6.1f   %6.1f   %6.1f\n", u, il, ol, ih,
                oh);
    i_low_last = il;
    o_low_last = ol;
  }

  PrintClaim(
      "Gemini-O restores the hit ratio considerably faster than Gemini-I "
      "(deleted dirty keys force data store queries on future references)",
      (std::string("at ") + std::to_string(updates.back()) +
       "% updates, low load: Gemini-I=" + std::to_string(i_low_last) +
       "s vs Gemini-O=" + std::to_string(o_low_last) + "s")
          .c_str());
  const bool ok = o_low_last >= 0 && i_low_last >= 0 &&
                  o_low_last <= i_low_last;
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace gemini::bench

int main(int argc, char** argv) { return gemini::bench::Main(argc, argv); }
