// Ablations for the design choices DESIGN.md calls out (not paper figures —
// these quantify why Gemini's mechanisms are designed the way they are):
//
//  A. Rejig O(1) discard (bump the fragment's config id; entries die lazily)
//     vs eager scan-and-delete of every key — the cost of discarding a
//     fragment as a function of its size (Section 3.2.4's motivation:
//     "discard millions and billions of cache entries").
//
//  B. Dirty-list growth: bytes of dirty list per fragment as a function of
//     failure duration and update rate — the overhead transition (4)'s byte
//     budget trades against, and the marker mechanism protects.
//
//  C. Recovery-worker scaling: time to drain the dirty lists of a failed
//     instance vs the number of workers (one worker per fragment via
//     Redlease; more workers parallelize across fragments).
//
//  D. Working-set-transfer termination threshold: epsilon of the h
//     threshold vs how long the transfer stays active and the hit ratio it
//     delivers.
#include <chrono>
#include <cstdio>

#include "bench/bench_common.h"

namespace gemini::bench {
namespace {

// ---- A: Rejig discard vs eager delete --------------------------------------

void AblationRejigDiscard() {
  std::printf("\n[A] Discarding a fragment: Rejig id-bump vs eager "
              "scan-and-delete\n");
  std::printf("  entries   id-bump (cache ops, wall us)   eager-delete "
              "(cache ops, wall us)\n");
  for (uint64_t n : {10'000ULL, 100'000ULL, 1'000'000ULL}) {
    VirtualClock clock;
    CacheInstance inst(0, &clock);
    inst.GrantFragmentLease(0, 1, clock.Now() + Seconds(3600), 1);
    OpContext ctx{1, 0};
    for (uint64_t i = 0; i < n; ++i) {
      (void)inst.Set(ctx, "user" + std::to_string(i), CacheValue::OfSize(64));
    }

    // Rejig: one lease update; entries die lazily on access.
    auto t0 = std::chrono::steady_clock::now();
    inst.GrantFragmentLease(0, /*min_valid_config=*/2,
                            clock.Now() + Seconds(3600), 2);
    auto t1 = std::chrono::steady_clock::now();
    const double bump_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count();

    // Eager: delete every key individually (what a system without per-entry
    // config ids must do).
    t0 = std::chrono::steady_clock::now();
    OpContext ctx2{2, 0};
    for (uint64_t i = 0; i < n; ++i) {
      (void)inst.Delete(ctx2, "user" + std::to_string(i));
    }
    t1 = std::chrono::steady_clock::now();
    const double eager_us =
        std::chrono::duration<double, std::micro>(t1 - t0).count();

    std::printf("  %7llu   %10s %12.1f        %8llu %14.1f\n",
                (unsigned long long)n, "1", bump_us, (unsigned long long)n,
                eager_us);
  }
  std::printf("  -> the id bump is O(1) regardless of fragment size; eager "
              "deletion scales linearly (and would be billions of ops at "
              "datacenter scale).\n");
}

// ---- B: dirty-list growth ----------------------------------------------------

void AblationDirtyListGrowth(const BenchFlags& flags) {
  std::printf("\n[B] Dirty-list size vs failure duration and update rate "
              "(bytes per fragment, max across fragments)\n");
  std::printf("  update%%   10s-failure   30s-failure\n");
  YcsbClusterParams p = YcsbParams(flags);
  p.records = 60'000;
  p.warmup_seconds = 10;
  for (double update_pct : {1.0, 10.0, 50.0}) {
    std::printf("  %7.0f", update_pct);
    for (double fail_for : {10.0, 30.0}) {
      auto sim = MakeYcsbSim(flags, p, RecoveryPolicy::GeminiO(),
                             update_pct / 100.0, /*high_load=*/true);
      sim->ScheduleFailure(0, Seconds(p.warmup_seconds), Seconds(fail_for));
      sim->Run(Seconds(p.warmup_seconds + fail_for - 0.5));
      uint64_t max_bytes = 0;
      auto cfg = sim->coordinator().GetConfiguration();
      OpContext internal{kInternalConfigId, kInvalidFragment};
      for (FragmentId f = 0; f < cfg->num_fragments(); ++f) {
        const auto& a = cfg->fragment(f);
        if (a.mode != FragmentMode::kTransient) continue;
        auto v = sim->instance(a.secondary).Get(internal, DirtyListKey(f));
        if (v.ok()) {
          max_bytes = std::max<uint64_t>(max_bytes, v->data.size());
        }
      }
      std::printf("   %11llu", (unsigned long long)max_bytes);
    }
    std::printf("\n");
  }
  std::printf("  -> growth is linear in failure duration x write rate; the "
              "coordinator's byte budget (EnforceDirtyListBudget) caps it "
              "via transition (4).\n");
}

// ---- C: recovery-worker scaling ----------------------------------------------

void AblationWorkerScaling(const BenchFlags& flags) {
  std::printf("\n[C] Recovery time vs number of recovery workers "
              "(Gemini-O, 10%% updates, 30s failure)\n");
  std::printf("  workers   recovery seconds\n");
  for (size_t workers : {1u, 2u, 4u, 8u}) {
    YcsbWorkload::Options wo;
    wo.num_records = 100'000;
    wo.update_fraction = 0.10;
    SimOptions so;
    so.num_instances = 5;
    so.num_fragments = 1000;
    so.closed_loop_threads = 40;
    so.num_recovery_workers = workers;
    so.policy = RecoveryPolicy::GeminiO();
    so.seed = flags.seed;
    ClusterSim sim(so, std::make_shared<YcsbWorkload>(wo));
    sim.ScheduleFailure(0, Seconds(15), Seconds(30));
    double t = 45;
    double dur = -1;
    while (t < 200) {
      t += 5;
      sim.Run(Seconds(t));
      dur = sim.RecoveryDurationSeconds(0);
      if (dur >= 0) break;
    }
    std::printf("  %7zu   %16.1f\n", workers, dur);
  }
  std::printf("  -> the Redlease gives one worker per fragment; extra "
              "workers parallelize across the instance's fragments until "
              "the primaries' ingest bound.\n");
}

// ---- D: WST termination threshold ---------------------------------------------

void AblationWstThreshold(const BenchFlags& flags) {
  std::printf("\n[D] Working-set-transfer h-threshold (epsilon below the "
              "pre-failure hit ratio) vs transfer volume and hit ratio\n");
  std::printf("  epsilon   wst copies   recovering-instance hit (first 10s) "
              "  recovery seconds\n");
  for (double eps : {0.005, 0.02, 0.10}) {
    YcsbWorkload::Options wo;
    wo.num_records = 100'000;
    wo.update_fraction = 0.05;
    wo.evolution = YcsbWorkload::Evolution::kSwitch100;
    SimOptions so;
    so.num_instances = 5;
    so.num_fragments = 1000;
    so.closed_loop_threads = 40;
    so.policy = RecoveryPolicy::GeminiOW();
    so.wst_epsilon = eps;
    so.seed = flags.seed;
    ClusterSim sim(so, std::make_shared<YcsbWorkload>(wo));
    sim.ScheduleFailure(0, Seconds(15), Seconds(30));
    sim.SchedulePhaseChange(Seconds(15), 1);
    sim.Run(Seconds(120));
    uint64_t copies = 0;
    for (size_t c = 0; c < sim.num_clients(); ++c) {
      copies += sim.client(c).stats().wst_copies;
    }
    const double hit = sim.metrics().InstanceHitBetween(0, 45, 55);
    std::printf("  %7.3f   %10llu   %34.3f   %16.1f\n", eps,
                (unsigned long long)copies, hit,
                sim.RecoveryDurationSeconds(0));
  }
  std::printf("  -> a tighter epsilon keeps the transfer alive longer "
              "(more copies) for a marginally higher hit ratio; the paper's "
              "h = prefailure - epsilon balances the two.\n");
}

int Main(int argc, char** argv) {
  const BenchFlags flags = ParseFlags(argc, argv);
  PrintHeader("Ablations",
              "design-choice studies: Rejig discards, dirty-list growth, "
              "worker scaling, WST thresholds");
  AblationRejigDiscard();
  AblationDirtyListGrowth(flags);
  if (!flags.quick) {
    AblationWorkerScaling(flags);
    AblationWstThreshold(flags);
  }
  return 0;
}

}  // namespace
}  // namespace gemini::bench

int main(int argc, char** argv) { return gemini::bench::Main(argc, argv); }
