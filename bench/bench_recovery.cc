// bench_recovery: what ±W buys on the real stack — time-to-restore-hit-ratio
// after a primary loses its disk, measured against live geminid processes.
//
// The experiment (run twice, once per coordinator policy):
//
//   1. Spawn geminicoordd (+W: gemini-ow, baseline: gemini-o) and two
//      geminids, each durably backed by a WAL data dir, plus two in-process
//      recovery workers (working-set streaming enabled only under +W).
//   2. Seed the data store, warm every key into the cluster through the
//      client, and measure the steady-state windowed hit ratio under a
//      scrambled-Zipfian read load.
//   3. kill -9 instance 0 mid-serve. The coordinator fails it over; Zipfian
//      load continues against the transient-mode secondary, which re-fills
//      the hot working set one miss at a time — exactly the state the paper
//      says a recovering primary should inherit instead of rebuilding.
//   4. WIPE instance 0's data dir (disk loss: WAL replay cannot help) and
//      restart it. From the moment the restarted daemon answers, drive the
//      same Zipfian read load and clock how long the windowed hit ratio
//      takes to climb back to 90% of steady state.
//
// Under gemini-o the restarted primary returns to normal mode empty and
// every hot key is re-fetched from the store a second time. Under gemini-ow
// the fragments stay in recovery mode while the workers stream the
// secondary's working set back hottest-first (kWorkingSetScan pages, rate-
// throttled), and clients are served from the warm secondary the whole
// time — reads never stop. The wst=1/wst=0 ratio of 1/time_to_90 is the
// headline; tools/check_bench.py pins a floor on it in CI via
// --min-point recovery_time_to_90:wst=1:FLOOR. p50/p99 are read latencies
// observed during the recovery window, bounding what the throttled
// transfer does to foreground traffic.
//
// Flags: --quick (CI smoke: smaller key space, shorter phases), --full,
//        --keys=K, --value-bytes=B, --wst-mbps=M (throttle, +W only),
//        --store-us=L (backing-store round trip), --seed=S, --json=PATH.
#include <atomic>
#include <cerrno>
#include <chrono>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <ftw.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include "bench/bench_common.h"
#include "src/client/gemini_client.h"
#include "src/cluster/remote_coordinator.h"
#include "src/common/clock.h"
#include "src/common/histogram.h"
#include "src/common/rng.h"
#include "src/coordinator/configuration.h"
#include "src/recovery/recovery_worker.h"
#include "src/store/data_store.h"
#include "src/transport/tcp_backend.h"

#ifndef GEMINID_PATH
#error "GEMINID_PATH must point at the geminid binary"
#endif
#ifndef GEMINICOORDD_PATH
#error "GEMINICOORDD_PATH must point at the geminicoordd binary"
#endif

namespace gemini {
namespace {

using SteadyClock = std::chrono::steady_clock;

constexpr size_t kInstances = 2;
constexpr size_t kFragments = 16;
constexpr size_t kRecoveryWorkers = 8;
constexpr uint64_t kHeartbeatMs = 50;
constexpr double kTargetFraction = 0.90;  // "recovered" = 90% of steady

int RemoveVisit(const char* path, const struct stat*, int, struct FTW*) {
  return ::remove(path);
}

void RemoveTree(const std::string& dir) {
  ::nftw(dir.c_str(), RemoveVisit, 16, FTW_DEPTH | FTW_PHYS);
}

// ---- Child processes (same shape as tools/gemini_cluster.cc) ----------------

struct Child {
  pid_t pid = -1;
  int stdout_fd = -1;
};

Child Spawn(const char* path, const std::vector<std::string>& args) {
  int pipefd[2];
  if (::pipe(pipefd) != 0) {
    std::perror("pipe");
    std::exit(1);
  }
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::dup2(pipefd[1], STDOUT_FILENO);
    ::close(pipefd[0]);
    ::close(pipefd[1]);
    std::vector<char*> argv;
    std::string bin = path;
    argv.push_back(bin.data());
    std::vector<std::string> owned = args;
    for (auto& a : owned) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(path, argv.data());
    std::perror("execv");
    ::_exit(127);
  }
  ::close(pipefd[1]);
  return {pid, pipefd[0]};
}

std::string ReadUntil(int fd, const std::string& needle) {
  std::string out;
  char buf[512];
  const Timestamp start = SystemClock::Global().Now();
  while (out.find(needle) == std::string::npos) {
    if (SystemClock::Global().Now() - start > Seconds(15)) break;
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  return out;
}

uint16_t PortFromBanner(const std::string& banner) {
  const std::string marker = "on 127.0.0.1:";
  const size_t at = banner.find(marker);
  if (at == std::string::npos) return 0;
  return static_cast<uint16_t>(std::atoi(banner.c_str() + at + marker.size()));
}

int WaitForExit(pid_t pid) {
  int wstatus = 0;
  if (::waitpid(pid, &wstatus, 0) != pid) return -1;
  return WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -WTERMSIG(wstatus);
}

struct Node {
  InstanceId id = 0;
  std::string data_dir;
  uint16_t port = 0;  // 0 = first spawn picks one; fixed afterwards
  Child child;
};

bool SpawnNode(Node& node, uint16_t coord_port) {
  std::vector<std::string> args = {
      "--port",        std::to_string(node.port),
      "--instance",    std::to_string(node.id),
      "--data-dir",    node.data_dir,
      "--coordinator", "127.0.0.1:" + std::to_string(coord_port),
      "--heartbeat-interval-ms", std::to_string(kHeartbeatMs),
      "--threads",     "2"};
  node.child = Spawn(GEMINID_PATH, args);
  if (node.child.pid <= 0) return false;
  const uint16_t port =
      PortFromBanner(ReadUntil(node.child.stdout_fd, "serving on"));
  if (port == 0) {
    std::fprintf(stderr, "bench_recovery: geminid %u printed no banner\n",
                 node.id);
    return false;
  }
  node.port = port;
  return true;
}

bool AllFragmentsNormal(const ConfigurationPtr& config) {
  if (config == nullptr) return false;
  for (FragmentId f = 0; f < kFragments; ++f) {
    const FragmentAssignment& a = config->fragment(f);
    if (a.mode != FragmentMode::kNormal || a.primary == kInvalidInstance) {
      return false;
    }
  }
  return true;
}

template <typename Pred>
bool WaitFor(Pred pred, Duration timeout) {
  const Timestamp start = SystemClock::Global().Now();
  while (!pred()) {
    if (SystemClock::Global().Now() - start > timeout) return false;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return true;
}

// ---- One measured run -------------------------------------------------------

struct RunParams {
  size_t keys = 150'000;
  size_t value_bytes = 64;
  size_t window_ops = 2'000;    // hit-ratio sample window
  /// Zipfian ops against the failed-over cluster. Sized so the windowed hit
  /// ratio is back above the recovery target before the restart: the
  /// transient-mode secondary must actually hold the working set, or there
  /// is nothing for ±W to preserve and both policies just climb the Zipf
  /// tail from the store.
  size_t outage_ops = 200'000;
  size_t warm_threads = 4;
  size_t wst_mbps = 32;         // working-set streaming throttle (+W only)
  /// Per-operation round trip of the backing store (a database across a
  /// network hop — the paper's MongoDB). This is the asymmetry the bench
  /// measures: +W restores warmth from the secondary's cache in bulk pages,
  /// the cold baseline re-fetches every hot key from the store at this
  /// price. Applied after the bulk warm-up so seeding stays fast.
  Duration store_latency = Micros(500);
  /// Milder than YCSB's 0.99: the working set worth restoring is thousands
  /// of keys, not a few hundred, so a cold refill pays a real bill instead
  /// of re-reading a handful of ultra-hot keys in one window.
  double zipf_theta = 0.90;
  uint64_t seed = 42;
  double recovery_timeout_s = 240;
};

struct RunResult {
  double steady_ratio = 0;      // windowed hit ratio before the kill
  double outage_ratio = 0;      // windowed ratio at the end of the outage
  double first_window_ratio = 0;  // hit ratio of the first post-restart window
  double time_to_90_us = 0;     // restart banner -> windowed ratio >= target
  double time_to_normal_us = 0;  // restart banner -> every fragment normal
  double read_p50_us = 0;       // read latency during the recovery window
  double read_p99_us = 0;
  uint64_t recovery_reads = 0;
  uint64_t read_errors = 0;     // failed reads during recovery (must be 0)
  uint64_t errors = 0;
  RecoveryWorker::Stats workers;
};

std::string KeyName(uint64_t k) { return "k" + std::to_string(k); }

/// Runs the full kill -> wipe -> restart -> re-warm experiment against a
/// fresh daemon set under the given coordinator policy.
RunResult RunMode(bool wst, const RunParams& p, const std::string& workspace) {
  RunResult out;
  auto fail = [&](const char* what) {
    std::fprintf(stderr, "bench_recovery[%s]: %s\n", wst ? "+W" : "-W", what);
    ++out.errors;
    return out;
  };

  // ---- Cluster up -----------------------------------------------------------
  Child coord = Spawn(
      GEMINICOORDD_PATH,
      {"--port", "0", "--cluster-size", std::to_string(kInstances),
       "--fragments", std::to_string(kFragments), "--heartbeat-interval-ms",
       std::to_string(kHeartbeatMs), "--miss-threshold", "3",
       "--lease-ttl-ms", "3000", "--policy", wst ? "gemini-ow" : "gemini-o"});
  const uint16_t coord_port =
      PortFromBanner(ReadUntil(coord.stdout_fd, "coordinating"));
  if (coord_port == 0) return fail("geminicoordd printed no banner");

  std::vector<Node> nodes(kInstances);
  for (size_t i = 0; i < kInstances; ++i) {
    nodes[i].id = static_cast<InstanceId>(i);
    nodes[i].data_dir = workspace + "/" + (wst ? "w" : "o") + "_node_" +
                        std::to_string(i);
    if (!SpawnNode(nodes[i], coord_port)) return fail("geminid spawn failed");
  }

  DataStore store;
  RemoteCoordinator coordinator("127.0.0.1", coord_port,
                                RemoteCoordinator::Options());
  std::vector<std::unique_ptr<TcpCacheBackend>> backends;
  std::vector<CacheBackend*> backend_ptrs;
  for (const Node& node : nodes) {
    backends.push_back(std::make_unique<TcpCacheBackend>(
        "127.0.0.1", node.port, node.id, TcpCacheBackend::Options()));
    backend_ptrs.push_back(backends.back().get());
  }
  if (!WaitFor(
          [&] {
            (void)coordinator.Refresh();
            return AllFragmentsNormal(coordinator.GetConfiguration());
          },
          Seconds(20))) {
    return fail("cluster never converged at bootstrap");
  }

  GeminiClient::Options copts;
  copts.follow_config_pushes = true;
  GeminiClient client(&SystemClock::Global(), &coordinator, backend_ptrs,
                      &store, copts);

  for (size_t k = 0; k < p.keys; ++k) {
    store.Put(KeyName(k), std::string(p.value_bytes, 'v'));
  }

  // Recovery workers run for the whole experiment; they idle until the
  // coordinator hands them recovery-mode fragments. Working-set streaming is
  // the +W policy's worker half — mandatory under gemini-ow (recovery mode
  // does not end until a worker reports the transfer terminated).
  std::atomic<bool> workers_stop{false};
  std::vector<std::thread> workers;
  std::vector<RecoveryWorker::Stats> worker_stats(kRecoveryWorkers);
  for (size_t w = 0; w < kRecoveryWorkers; ++w) {
    workers.emplace_back([&, w] {
      // Each worker owns its connections, as a real worker process would —
      // streaming must not queue behind foreground reads on a shared socket.
      std::vector<std::unique_ptr<TcpCacheBackend>> own;
      std::vector<CacheBackend*> own_ptrs;
      for (const Node& node : nodes) {
        own.push_back(std::make_unique<TcpCacheBackend>(
            "127.0.0.1", node.port, node.id, TcpCacheBackend::Options()));
        own_ptrs.push_back(own.back().get());
      }
      RecoveryWorker::Options wopts;
      wopts.working_set_transfer = wst;
      // The scan walks the secondary's whole table filtering by fragment, so
      // a page visits max_keys entries but returns ~1/fragments of them:
      // bulk pages keep the round-trip count proportional to the data, not
      // to the table.
      wopts.wst_page_keys = 2048;
      wopts.wst_bytes_per_sec = wst ? p.wst_mbps * (1 << 20) : 0;
      RecoveryWorker worker(&SystemClock::Global(), &coordinator,
                            own_ptrs, wopts);
      Session session;
      while (!workers_stop.load(std::memory_order_acquire)) {
        if (worker.TryAdoptFragment(session).has_value()) {
          while (!worker.Step(session)) {
          }
        } else {
          std::this_thread::sleep_for(std::chrono::milliseconds(5));
        }
      }
      worker_stats[w] = worker.stats();
    });
  }
  auto stop_workers = [&] {
    workers_stop.store(true, std::memory_order_release);
    for (auto& th : workers) th.join();
    for (const RecoveryWorker::Stats& s : worker_stats) {
      out.workers.fragments_recovered += s.fragments_recovered;
      out.workers.fragments_abandoned += s.fragments_abandoned;
      out.workers.keys_overwritten += s.keys_overwritten;
      out.workers.wst_keys_copied += s.wst_keys_copied;
      out.workers.wst_keys_skipped += s.wst_keys_skipped;
      out.workers.wst_bytes_copied += s.wst_bytes_copied;
      out.workers.wst_pages += s.wst_pages;
      out.workers.wst_completed += s.wst_completed;
      out.workers.wst_aborts += s.wst_aborts;
    }
  };
  auto teardown = [&] {
    stop_workers();
    ::kill(coord.pid, SIGTERM);
    (void)WaitForExit(coord.pid);
    ::close(coord.stdout_fd);
    for (Node& node : nodes) {
      if (node.child.pid > 0) {
        ::kill(node.child.pid, SIGTERM);
        (void)WaitForExit(node.child.pid);
        ::close(node.child.stdout_fd);
      }
    }
  };

  // ---- Warm every key, then measure the steady windowed hit ratio -----------
  {
    std::vector<std::thread> warmers;
    std::atomic<uint64_t> warm_errors{0};
    for (size_t t = 0; t < p.warm_threads; ++t) {
      warmers.emplace_back([&, t] {
        Session session;
        for (size_t k = t; k < p.keys; k += p.warm_threads) {
          if (!client.Read(session, KeyName(k)).ok()) {
            warm_errors.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& th : warmers) th.join();
    if (warm_errors.load() != 0) {
      teardown();
      return fail("warm phase saw read errors");
    }
  }
  store.set_synthetic_latency(p.store_latency);

  ScrambledZipfian zipf(p.keys, p.zipf_theta);
  Rng rng(p.seed * 31 + (wst ? 1 : 0));
  Session session;
  auto window_ratio = [&](Histogram* hist, uint64_t* failed) {
    size_t hits = 0;
    for (size_t i = 0; i < p.window_ops; ++i) {
      const auto t0 = SteadyClock::now();
      auto r = client.Read(session, KeyName(zipf.Next(rng)));
      if (hist != nullptr) {
        const int64_t us = std::chrono::duration_cast<std::chrono::microseconds>(
                               SteadyClock::now() - t0)
                               .count();
        hist->Record(us > 0 ? us : 1);
      }
      if (!r.ok()) {
        if (failed != nullptr) ++*failed;
      } else if (r->cache_hit) {
        ++hits;
      }
    }
    return static_cast<double>(hits) / static_cast<double>(p.window_ops);
  };

  {
    double sum = 0;
    constexpr int kSteadyWindows = 3;
    for (int i = 0; i < kSteadyWindows; ++i) sum += window_ratio(nullptr, nullptr);
    out.steady_ratio = sum / kSteadyWindows;
  }

  // ---- Kill, serve through the outage, wipe the disk ------------------------
  ::kill(nodes[0].child.pid, SIGKILL);
  (void)WaitForExit(nodes[0].child.pid);
  ::close(nodes[0].child.stdout_fd);
  nodes[0].child.pid = -1;
  const ConfigId before = coordinator.latest_id();
  if (!WaitFor([&] { return coordinator.latest_id() > before; }, Seconds(10))) {
    teardown();
    return fail("coordinator never failed over the killed instance");
  }

  // The outage load is what charges the secondary with the working set:
  // every transient-mode miss re-fetches the key and installs it there.
  // Writes ride along so recovery also has dirty lists to drain. The outage
  // runs long enough that the windowed ratio is back above target *before*
  // the restart — so a sub-target window afterwards means the recovery
  // policy lost warmth, not that the outage left the cluster cold.
  {
    std::vector<std::thread> loaders;
    for (size_t t = 0; t < p.warm_threads; ++t) {
      loaders.emplace_back([&, t] {
        Rng trng(p.seed * 131 + t * 17 + (wst ? 1 : 0));
        Session tsession;
        for (size_t i = 0; i < p.outage_ops / p.warm_threads; ++i) {
          const std::string key = KeyName(zipf.Next(trng));
          if (i % 100 == 99) {
            if (client.Write(tsession, key, "w" + std::to_string(i)).code() ==
                Code::kSuspended) {
              std::this_thread::sleep_for(std::chrono::milliseconds(2));
            }
          } else {
            (void)client.Read(tsession, key);
          }
        }
      });
    }
    for (auto& th : loaders) th.join();
  }
  out.outage_ratio = window_ratio(nullptr, nullptr);

  // Disk loss: the restarted instance must not be able to re-warm itself
  // from its own WAL — what comes back is exactly what ±W streams over.
  RemoveTree(nodes[0].data_dir);

  // ---- Restart and clock the climb back to 90% of steady --------------------
  const auto restart_t0 = SteadyClock::now();
  if (!SpawnNode(nodes[0], coord_port)) {
    teardown();
    return fail("victim restart failed");
  }

  // Drive load until the hit ratio is back at target AND every fragment has
  // returned to normal, tracking the *last* window that fell below target.
  // Immediately after the restart the fragments are still transient — the
  // warm secondary is serving, so the ratio starts high in both modes; the
  // cold run's dip only arrives when gemini-o hands the (empty) primary back.
  // "Restored" therefore means restored-and-stayed-restored: the clock stops
  // at the end of the last sub-target window. Under +W the ratio never
  // drops — recovery-mode reads are served from the warm secondary while the
  // workers stream — so the cost is one sample window, the measurement floor.
  Histogram recovery_hist;
  const double target = kTargetFraction * out.steady_ratio;
  bool first = true;
  double last_below_end_us = 0;
  double first_window_end_us = 0;
  while (true) {
    const double ratio = window_ratio(&recovery_hist, &out.read_errors);
    const double elapsed_us =
        std::chrono::duration<double>(SteadyClock::now() - restart_t0).count() *
        1e6;
    if (first) {
      out.first_window_ratio = ratio;
      first_window_end_us = elapsed_us;
      first = false;
    }
    if (ratio < target) last_below_end_us = elapsed_us;
    const bool normal = AllFragmentsNormal(coordinator.GetConfiguration());
    if (normal && out.time_to_normal_us == 0) out.time_to_normal_us = elapsed_us;
    if (ratio >= target && normal) break;
    if (elapsed_us > p.recovery_timeout_s * 1e6) {
      teardown();
      return fail("hit ratio never recovered to 90% of steady");
    }
  }
  out.time_to_90_us =
      last_below_end_us > 0 ? last_below_end_us : first_window_end_us;
  out.recovery_reads = recovery_hist.count();
  out.read_p50_us = recovery_hist.Percentile(0.50);
  out.read_p99_us = recovery_hist.Percentile(0.99);
  teardown();
  return out;
}

int Run(int argc, char** argv) {
  const bench::BenchFlags flags = bench::ParseFlags(argc, argv);
  RunParams p;
  p.seed = flags.seed;
  if (flags.quick) {
    p.keys = 60'000;
    p.outage_ops = 90'000;
  } else if (flags.full) {
    p.keys = 400'000;
    p.outage_ops = 500'000;
  }
  std::string json_path = "BENCH_recovery.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--keys=", 7) == 0) {
      p.keys = std::strtoull(argv[i] + 7, nullptr, 10);
    } else if (std::strncmp(argv[i], "--value-bytes=", 14) == 0) {
      p.value_bytes = std::strtoull(argv[i] + 14, nullptr, 10);
    } else if (std::strncmp(argv[i], "--wst-mbps=", 11) == 0) {
      p.wst_mbps = std::strtoull(argv[i] + 11, nullptr, 10);
    } else if (std::strncmp(argv[i], "--store-us=", 11) == 0) {
      p.store_latency = Micros(std::strtoll(argv[i] + 11, nullptr, 10));
    } else if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }
  if (p.keys == 0 || p.value_bytes == 0) {
    std::fprintf(stderr, "bench_recovery: --keys and --value-bytes must be > 0\n");
    return 2;
  }

  char ws_template[] = "/tmp/bench_recovery_XXXXXX";
  const char* workspace = ::mkdtemp(ws_template);
  if (workspace == nullptr) {
    std::fprintf(stderr, "bench_recovery: mkdtemp failed\n");
    return 1;
  }

  bench::PrintHeader(
      "bench_recovery",
      "time-to-restore-hit-ratio after disk loss: gemini-ow working-set "
      "streaming vs gemini-o cold refill, on live geminid processes");
  std::printf("  keys=%zu  value=%zuB  window=%zu  outage_ops=%zu  "
              "store=%lldus  theta=%.2f  wst_throttle=%zuMiB/s  seed=%llu\n\n",
              p.keys, p.value_bytes, p.window_ops, p.outage_ops,
              static_cast<long long>(p.store_latency), p.zipf_theta,
              p.wst_mbps, static_cast<unsigned long long>(p.seed));

  std::vector<bench::BenchResult> results;
  uint64_t total_errors = 0;
  double t_cold_us = 0, t_warm_us = 0;

  std::printf("  %4s %8s %8s %8s %12s %10s %10s %10s %10s\n", "wst", "steady",
              "outage", "dip", "t90 ms", "normal ms", "p50 us", "p99 us",
              "copied");
  for (const bool wst : {false, true}) {
    const RunResult r = RunMode(wst, p, workspace);
    total_errors += r.errors + r.read_errors;
    if (r.errors != 0) break;
    std::printf("  %4d %7.1f%% %7.1f%% %7.1f%% %12.1f %10.1f %10.1f %10.1f "
                "%10llu\n",
                wst ? 1 : 0, 100.0 * r.steady_ratio, 100.0 * r.outage_ratio,
                100.0 * r.first_window_ratio, r.time_to_90_us / 1e3,
                r.time_to_normal_us / 1e3, r.read_p50_us, r.read_p99_us,
                static_cast<unsigned long long>(r.workers.wst_keys_copied));
    std::printf("       workers: %llu drained, %llu abandoned, %llu wst done, "
                "%llu wst aborts, %llu pages, %llu skipped\n",
                static_cast<unsigned long long>(r.workers.fragments_recovered),
                static_cast<unsigned long long>(r.workers.fragments_abandoned),
                static_cast<unsigned long long>(r.workers.wst_completed),
                static_cast<unsigned long long>(r.workers.wst_aborts),
                static_cast<unsigned long long>(r.workers.wst_pages),
                static_cast<unsigned long long>(r.workers.wst_keys_skipped));
    (wst ? t_warm_us : t_cold_us) = r.time_to_90_us;
    bench::BenchResult br;
    br.name = "recovery_time_to_90";
    br.params = {{"wst", wst ? 1.0 : 0.0},
                 {"keys", static_cast<double>(p.keys)},
                 {"value_bytes", static_cast<double>(p.value_bytes)}};
    // 1 / time-to-recover, in per-second units: check_bench's higher-is-
    // better convention, so normalized(wst=1) is the cold/warm speedup the
    // CI floor pins.
    br.ops_per_sec = r.time_to_90_us > 0 ? 1e6 / r.time_to_90_us : 0;
    br.p50_us = r.read_p50_us;
    br.p99_us = r.read_p99_us;
    results.push_back(std::move(br));
  }

  RemoveTree(workspace);
  if (total_errors > 0) {
    std::fprintf(stderr, "bench_recovery: %llu check(s) failed\n",
                 static_cast<unsigned long long>(total_errors));
    return 1;
  }
  if (t_warm_us > 0 && t_cold_us > 0) {
    std::printf("\n");
    bench::PrintClaim(
        "working-set transfer restores the hit ratio several times faster "
        "than cold refill after an instance loses its cache (Fig. 10)",
        ("time to 90% of steady hit ratio: " +
         std::to_string(t_cold_us / 1e3) + " ms cold vs " +
         std::to_string(t_warm_us / 1e3) + " ms with +W streaming (" +
         std::to_string(t_cold_us / t_warm_us) + "x)")
            .c_str());
  }
  if (!bench::WriteResultsJson(json_path, "recovery", results)) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::printf("\n  results written to %s\n", json_path.c_str());
  return 0;
}

}  // namespace
}  // namespace gemini

int main(int argc, char** argv) { return gemini::Run(argc, argv); }
