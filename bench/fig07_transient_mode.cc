// Figure 7: (a) cache hit ratio of the failed instance, (b) overall system
// throughput, and (c) 90th-percentile read latency before, during, and after
// a 10-second failure of one of 5 instances, YCSB workload B with 1%
// updates, low system load (Section 5.3 transient mode + Section 5.4.1).
//
// Paper shape: in transient mode the failed instance serves nothing (0% hit
// ratio) while overall throughput is identical across techniques — the
// dirty-list append is masked by the much slower data store write. After
// recovery, StaleCache restores latency/hit ratio immediately (but stale),
// Gemini-O is marginally behind it, and VolatileCache is worst because every
// read of the recovering instance goes to the data store.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace gemini::bench {
namespace {

struct RunResult {
  std::vector<double> failed_hit;  // % per second (plot window)
  std::vector<double> throughput;  // kops/s per second
  std::vector<double> p90_read;    // us per second
  double transient_tput = 0;       // mean during the failure
  double post_p90 = 0;             // p90 over 5s after recovery
  double post_hit = 0;
  uint64_t stale = 0;
};

RunResult RunOnce(const BenchFlags& flags, RecoveryPolicy policy,
                  double update_fraction) {
  YcsbClusterParams p = YcsbParams(flags);
  auto sim = MakeYcsbSim(flags, p, policy, update_fraction,
                         /*high_load=*/false);
  const double plot_start = p.warmup_seconds;
  const double fail_at = plot_start + 10;
  const double fail_for = 10;
  const double plot_end = plot_start + 60;
  sim->ScheduleFailure(0, Seconds(fail_at), Seconds(fail_for));
  sim->Run(Seconds(plot_end));

  RunResult out;
  const auto hit = sim->metrics().instance_hit[0].Ratios();
  const auto& ops = sim->metrics().ops.buckets();
  const auto p90 = sim->metrics().read_latency.Percentiles(0.90);
  const auto s0 = static_cast<size_t>(plot_start);
  const auto s_end = static_cast<size_t>(plot_end);
  for (size_t s = s0; s < s_end; ++s) {
    out.failed_hit.push_back(s < hit.size() ? hit[s] * 100.0 : 0.0);
    out.throughput.push_back(s < ops.size() ? double(ops[s]) / 1000.0 : 0.0);
    out.p90_read.push_back(s < p90.size() ? p90[s] : 0.0);
  }
  const auto f0 = static_cast<size_t>(fail_at) + 1;
  const auto rec = static_cast<size_t>(fail_at + fail_for);
  double sum = 0;
  for (size_t s = f0; s < rec; ++s) {
    sum += s < ops.size() ? double(ops[s]) : 0.0;
  }
  out.transient_tput = sum / double(rec - f0);
  Histogram post;
  for (size_t s = rec; s < rec + 5; ++s) {
    if (const Histogram* h = sim->metrics().read_latency.Bucket(s)) {
      post.Merge(*h);
    }
  }
  out.post_p90 = post.Percentile(0.90);
  out.post_hit = sim->metrics().InstanceHitBetween(0, rec, rec + 5) * 100.0;
  out.stale = sim->metrics().stale.total_stale();
  return out;
}

int Main(int argc, char** argv) {
  const BenchFlags flags = ParseFlags(argc, argv);
  PrintHeader("Figure 7",
              "hit ratio of the failed instance, throughput, p90 read "
              "latency around a 10s failure (YCSB-B, 1% updates, low load)");

  RunResult vol = RunOnce(flags, RecoveryPolicy::VolatileCache(), 0.01);
  RunResult stale = RunOnce(flags, RecoveryPolicy::StaleCache(), 0.01);
  RunResult gem = RunOnce(flags, RecoveryPolicy::GeminiO(), 0.01);

  std::printf("\n(a) Cache hit ratio of the failed instance (%%); failure at "
              "t=10s, recovery at t=20s\n");
  std::printf("%s\n",
              FormatSeriesTable({"VolatileCache", "StaleCache", "Gemini-O"},
                                {vol.failed_hit, stale.failed_hit,
                                 gem.failed_hit})
                  .c_str());
  std::printf("(b) Throughput (thousand ops/s)\n");
  std::printf("%s\n",
              FormatSeriesTable({"VolatileCache", "StaleCache", "Gemini-O"},
                                {vol.throughput, stale.throughput,
                                 gem.throughput})
                  .c_str());
  std::printf("(c) 90th percentile read latency (us)\n");
  std::printf("%s\n",
              FormatSeriesTable({"VolatileCache", "StaleCache", "Gemini-O"},
                                {vol.p90_read, stale.p90_read, gem.p90_read})
                  .c_str());

  std::printf("Summary\n");
  std::printf("  transient-mode throughput (ops/s): Volatile=%.0f "
              "Stale=%.0f Gemini-O=%.0f\n",
              vol.transient_tput, stale.transient_tput, gem.transient_tput);
  std::printf("  post-recovery p90 read latency (us): Volatile=%.0f "
              "Stale=%.0f Gemini-O=%.0f\n",
              vol.post_p90, stale.post_p90, gem.post_p90);
  std::printf("  post-recovery hit ratio of failed instance (%%): "
              "Volatile=%.1f Stale=%.1f Gemini-O=%.1f (Gemini stale "
              "reads=%llu)\n",
              vol.post_hit, stale.post_hit, gem.post_hit,
              (unsigned long long)gem.stale);

  PrintClaim(
      "transient-mode throughput identical across techniques (dirty-list "
      "appends masked by store writes); after recovery StaleCache best "
      "latency, Gemini-O slightly worse, VolatileCache worst",
      (std::string("transient tput within ") +
       std::to_string(
           100.0 *
           (std::max({vol.transient_tput, stale.transient_tput,
                      gem.transient_tput}) -
            std::min({vol.transient_tput, stale.transient_tput,
                      gem.transient_tput})) /
           std::max(1.0, gem.transient_tput)) +
       "% across techniques; post-recovery p90 Gemini < Volatile: " +
       (gem.post_p90 < vol.post_p90 ? "yes" : "no"))
          .c_str());
  const bool ok = gem.stale == 0 && gem.post_p90 <= vol.post_p90 * 1.05 &&
                  gem.post_hit > vol.post_hit;
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace gemini::bench

int main(int argc, char** argv) { return gemini::bench::Main(argc, argv); }
