// Table 3: number of cache entries discarded when the instance hosting a
// fragment's secondary replica fails while the primary is still down
// (Section 5.4.3). Two instances (cache-1, then cache-2) fail one after the
// other; every fragment of cache-1 whose secondary landed on cache-2 loses
// its dirty list and is discarded by bumping its configuration id.
//
// Paper shape: with F total fragments over n instances, at most
// ceil(F / (n*(n-1))) * c entries are discarded (c = entries per fragment):
// all of a fragment's resident entries, for every doubly-unlucky fragment.
// The measured number is below the maximum because some entries were deleted
// by writes (or never cached).
#include <cmath>
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace gemini::bench {
namespace {

struct CellResult {
  double mean = 0;
  double stddev = 0;
  uint64_t theoretical_max = 0;
  size_t discarded_fragments = 0;
};

CellResult RunCell(const BenchFlags& flags, size_t total_fragments,
                   int trials) {
  YcsbClusterParams p = YcsbParams(flags);
  p.fragments = total_fragments;
  std::vector<double> counts;
  CellResult out;
  for (int trial = 0; trial < trials; ++trial) {
    BenchFlags f = flags;
    f.seed = flags.seed + static_cast<uint64_t>(trial) * 101;
    // High system load, 1% update ratio (Section 5.4.3).
    auto sim = MakeYcsbSim(f, p, RecoveryPolicy::GeminiO(), 0.01,
                           /*high_load=*/true);
    const double w = p.warmup_seconds;
    sim->Run(Seconds(w));

    // cache-1 fails; its fragments get secondaries on the other instances.
    sim->ScheduleFailure(1, Seconds(w + 1), Seconds(60));
    sim->Run(Seconds(w + 2));
    auto mid = sim->coordinator().GetConfiguration();
    // The second victim is the instance hosting the secondary of cache-1's
    // first fragment (the paper's "cache-2").
    InstanceId victim2 = kInvalidInstance;
    std::vector<FragmentId> unlucky;  // secondaries on the second victim
    for (FragmentId fr = 0; fr < mid->num_fragments(); ++fr) {
      const auto& a = mid->fragment(fr);
      if (a.mode != FragmentMode::kTransient || a.primary != 1) continue;
      if (victim2 == kInvalidInstance) victim2 = a.secondary;
      if (a.secondary == victim2) unlucky.push_back(fr);
    }

    // The second victim fails before cache-1 recovers: those fragments are
    // discarded.
    sim->ScheduleFailure(victim2, Seconds(w + 3), Seconds(60));
    sim->Run(Seconds(w + 4));
    auto cfg = sim->coordinator().GetConfiguration();

    // Count cache-1-resident entries of the discarded fragments whose
    // config id is now below the fragment's minimum (the entries clients
    // will discard hits for).
    uint64_t discarded = 0;
    auto& wl = sim->workload();
    for (uint64_t r = 0; r < wl.num_records(); ++r) {
      const std::string key = wl.KeyOfRecord(r);
      const FragmentId fr = cfg->FragmentOf(key);
      bool is_unlucky = false;
      for (FragmentId u : unlucky) {
        if (u == fr) {
          is_unlucky = true;
          break;
        }
      }
      if (!is_unlucky) continue;
      auto stamp = sim->instance(1).RawConfigIdOf(key);
      if (stamp.has_value() && *stamp < cfg->fragment(fr).config_id) {
        ++discarded;
      }
    }
    counts.push_back(static_cast<double>(discarded));
    out.discarded_fragments = unlucky.size();
  }

  for (double c : counts) out.mean += c;
  out.mean /= static_cast<double>(counts.size());
  for (double c : counts) {
    out.stddev += (c - out.mean) * (c - out.mean);
  }
  out.stddev = std::sqrt(out.stddev / static_cast<double>(counts.size()));

  const size_t n = p.instances;
  const uint64_t c_per_fragment = p.records / total_fragments;
  out.theoretical_max =
      static_cast<uint64_t>(
          std::ceil(static_cast<double>(total_fragments) /
                    static_cast<double>(n * (n - 1)))) *
      c_per_fragment;
  return out;
}

int Main(int argc, char** argv) {
  const BenchFlags flags = ParseFlags(argc, argv);
  PrintHeader("Table 3",
              "discarded keys vs total number of fragments after cascaded "
              "failure of two instances (high load, 1% updates)");

  const std::vector<size_t> fragment_counts =
      flags.quick ? std::vector<size_t>{10, 100}
                  : std::vector<size_t>{10, 100, 1000};
  const int trials = flags.quick ? 1 : 3;

  std::printf("\n  fragments   discarded keys (mean +- std)   theoretical "
              "max   doubly-failed fragments\n");
  bool ok = true;
  for (size_t fc : fragment_counts) {
    CellResult r = RunCell(flags, fc, trials);
    std::printf("  %9zu   %14.0f +- %-8.0f   %15llu   %10zu\n", fc, r.mean,
                r.stddev, (unsigned long long)r.theoretical_max,
                r.discarded_fragments);
    if (r.mean > static_cast<double>(r.theoretical_max)) ok = false;
    if (r.discarded_fragments > 0 && r.mean <= 0) ok = false;
  }

  PrintClaim(
      "discarded keys bounded by ceil(F/(n*(n-1))) * c and slightly below "
      "it in practice (writes already deleted some entries)",
      ok ? "all cells within the theoretical bound, non-trivial counts"
         : "BOUND VIOLATED");
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace gemini::bench

int main(int argc, char** argv) { return gemini::bench::Main(argc, argv); }
