// Microbenchmarks (google-benchmark) for the building blocks whose costs the
// paper argues are negligible or O(1):
//  - cache instance data-path operations (get/set, IQ sessions, qareg/dar);
//  - the dirty-list append a transient-mode write adds (Section 5.3 claims
//    the overhead is masked by the store write — here is the raw cost);
//  - dirty-list parsing as a function of list size (recovery-path cost);
//  - configuration serialization as a function of fragment count
//    (coordinator publish cost);
//  - the Rejig validity check (entry config id vs fragment minimum), which
//    is what makes discarding a fragment O(1);
//  - Zipfian sampling and FNV hashing (workload/routing substrate).
#include <benchmark/benchmark.h>

#include <string>

#include "src/cache/cache_instance.h"
#include "src/cache/dirty_list.h"
#include "src/common/hash.h"
#include "src/common/rng.h"
#include "src/coordinator/configuration.h"
#include "src/lease/lease_table.h"

namespace gemini {
namespace {

OpContext Ctx() { return OpContext{1, 0}; }

std::unique_ptr<CacheInstance> MakeInstance(VirtualClock& clock) {
  auto inst = std::make_unique<CacheInstance>(0, &clock);
  inst->GrantFragmentLease(0, 1, clock.Now() + Seconds(3600), 1);
  return inst;
}

void BM_CacheSet(benchmark::State& state) {
  VirtualClock clock;
  auto inst = MakeInstance(clock);
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        inst->Set(Ctx(), "user" + std::to_string(i++ % 100000),
                  CacheValue::OfSize(1024)));
  }
}
BENCHMARK(BM_CacheSet);

void BM_CacheGetHit(benchmark::State& state) {
  VirtualClock clock;
  auto inst = MakeInstance(clock);
  for (int i = 0; i < 10000; ++i) {
    (void)inst->Set(Ctx(), "user" + std::to_string(i),
                    CacheValue::OfSize(1024));
  }
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        inst->Get(Ctx(), "user" + std::to_string(i++ % 10000)));
  }
}
BENCHMARK(BM_CacheGetHit);

void BM_IqMissFillSession(benchmark::State& state) {
  // Full IQ read-miss session: iqget (grants I) + iqset (insert, release).
  VirtualClock clock;
  auto inst = MakeInstance(clock);
  uint64_t i = 0;
  for (auto _ : state) {
    const std::string key = "user" + std::to_string(i++);
    auto rg = inst->IqGet(Ctx(), key);
    benchmark::DoNotOptimize(
        inst->IqSet(Ctx(), key, CacheValue::OfSize(1024), rg->i_token));
  }
}
BENCHMARK(BM_IqMissFillSession);

void BM_QaregDarSession(benchmark::State& state) {
  // Full write-around session against the cache: qareg + dar.
  VirtualClock clock;
  auto inst = MakeInstance(clock);
  for (int i = 0; i < 10000; ++i) {
    (void)inst->Set(Ctx(), "user" + std::to_string(i),
                    CacheValue::OfSize(64));
  }
  uint64_t i = 0;
  for (auto _ : state) {
    const std::string key = "user" + std::to_string(i++ % 10000);
    auto q = inst->Qareg(Ctx(), key);
    benchmark::DoNotOptimize(inst->Dar(Ctx(), key, *q));
  }
}
BENCHMARK(BM_QaregDarSession);

void BM_DirtyListAppend(benchmark::State& state) {
  // The per-write overhead a secondary pays in transient mode.
  VirtualClock clock;
  auto inst = MakeInstance(clock);
  OpContext internal{kInternalConfigId, kInvalidFragment};
  (void)inst->Set(internal, DirtyListKey(0),
                  CacheValue::OfData(DirtyList::InitialPayload()));
  uint64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(inst->Append(
        internal, DirtyListKey(0),
        DirtyList::EncodeRecord("user" + std::to_string(i++ % 100000))));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_DirtyListAppend);

void BM_DirtyListParse(benchmark::State& state) {
  std::string payload = DirtyList::InitialPayload();
  for (int64_t i = 0; i < state.range(0); ++i) {
    payload += DirtyList::EncodeRecord("user" + std::to_string(i));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(DirtyList::Parse(payload));
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_DirtyListParse)->Arg(100)->Arg(10000)->Arg(100000);

void BM_ConfigSerialize(benchmark::State& state) {
  std::vector<FragmentAssignment> frags(state.range(0));
  for (size_t f = 0; f < frags.size(); ++f) {
    frags[f] = {static_cast<InstanceId>(f % 100), kInvalidInstance, 42,
                FragmentMode::kNormal};
  }
  Configuration cfg(1000, std::move(frags));
  for (auto _ : state) {
    benchmark::DoNotOptimize(cfg.Serialize());
  }
}
BENCHMARK(BM_ConfigSerialize)->Arg(100)->Arg(1000)->Arg(5000);

void BM_ConfigDeserialize(benchmark::State& state) {
  std::vector<FragmentAssignment> frags(state.range(0));
  Configuration cfg(1000, std::move(frags));
  const std::string wire = cfg.Serialize();
  for (auto _ : state) {
    benchmark::DoNotOptimize(Configuration::Deserialize(wire));
  }
}
BENCHMARK(BM_ConfigDeserialize)->Arg(1000)->Arg(5000);

void BM_RejigValidityCheck(benchmark::State& state) {
  // A get whose entry fails the config-id validation (discard path) vs one
  // that passes: both are O(1) — that is the point of the scheme.
  VirtualClock clock;
  auto inst = MakeInstance(clock);
  (void)inst->Set(OpContext{5, 0}, "valid", CacheValue::OfSize(64));
  for (auto _ : state) {
    benchmark::DoNotOptimize(inst->Get(OpContext{5, 0}, "valid"));
  }
}
BENCHMARK(BM_RejigValidityCheck);

void BM_LeaseAcquireReleaseI(benchmark::State& state) {
  VirtualClock clock;
  LeaseTable table(&clock);
  for (auto _ : state) {
    auto t = table.AcquireI("key");
    table.ReleaseI("key", *t);
  }
}
BENCHMARK(BM_LeaseAcquireReleaseI);

void BM_ZipfianNext(benchmark::State& state) {
  Zipfian z(10'000'000, 0.99);
  Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(z.Next(rng));
  }
}
BENCHMARK(BM_ZipfianNext);

void BM_Fnv1aRouting(benchmark::State& state) {
  const std::string key = "user0000000000001234";
  for (auto _ : state) {
    benchmark::DoNotOptimize(Fnv1a64(key) % 5000);
  }
}
BENCHMARK(BM_Fnv1aRouting);

}  // namespace
}  // namespace gemini

BENCHMARK_MAIN();
