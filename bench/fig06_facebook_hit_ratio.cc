// Figure 6: overall cache hit ratio of a 100-instance configuration before,
// during, and after 20 instances fail for 100 seconds, on the synthetic
// Facebook-like workload (Section 5.1). Compares VolatileCache, StaleCache,
// and Gemini-O+W.
//
// Paper shape: the hit ratio drops when the secondaries start empty; at
// recovery, Gemini-O+W restores its hit ratio immediately (slightly below
// StaleCache, which cheats by serving stale data), while VolatileCache stays
// depressed until it re-materializes content from the data store.
#include <cstdio>
#include <vector>

#include "bench/bench_common.h"

namespace gemini::bench {
namespace {

struct RunResult {
  std::vector<double> hit_ratio;  // per second, from t=0 of the plot window
  double post_recovery_hit = 0;   // mean over first 5s after recovery
  double during_failure_hit = 0;  // mean over the failure window
  uint64_t stale = 0;
};

RunResult RunOnce(const BenchFlags& flags, RecoveryPolicy policy,
                  double pre_seconds, double fail_seconds,
                  double post_seconds) {
  FacebookClusterParams p = FacebookParams(flags);
  auto sim = MakeFacebookSim(flags, p, policy);
  // Plot window starts pre_seconds before the failure (paper: failure at
  // t=50s of a 250s plot).
  const double plot_start = p.warmup_seconds;
  const double fail_at = plot_start + pre_seconds;
  const size_t failed = std::max<size_t>(1, p.instances / 5);
  std::vector<InstanceId> group;
  for (size_t i = 0; i < failed; ++i) {
    group.push_back(static_cast<InstanceId>(i));
  }
  sim->ScheduleGroupFailure(group, Seconds(fail_at), Seconds(fail_seconds));
  sim->Run(Seconds(fail_at + fail_seconds + post_seconds));

  RunResult out;
  const auto ratios = sim->metrics().overall_hit.Ratios();
  const auto s0 = static_cast<size_t>(plot_start);
  for (size_t s = s0; s < ratios.size(); ++s) {
    out.hit_ratio.push_back(ratios[s] * 100.0);
  }
  const auto rec = static_cast<size_t>(fail_at + fail_seconds);
  out.post_recovery_hit =
      sim->metrics().overall_hit.RatioBetween(rec, rec + 5) * 100.0;
  out.during_failure_hit =
      sim->metrics().overall_hit.RatioBetween(
          static_cast<size_t>(fail_at) + 1, rec) *
      100.0;
  out.stale = sim->metrics().stale.total_stale();
  return out;
}

int Main(int argc, char** argv) {
  const BenchFlags flags = ParseFlags(argc, argv);
  PrintHeader("Figure 6",
              "cache hit ratio before/during/after 20% of instances fail "
              "for 100s (Facebook-like workload)");

  const double pre = flags.quick ? 15 : 50;
  const double fail = flags.quick ? 30 : 100;
  const double post = flags.quick ? 40 : 100;

  RunResult vol = RunOnce(flags, RecoveryPolicy::VolatileCache(), pre, fail,
                          post);
  RunResult stale = RunOnce(flags, RecoveryPolicy::StaleCache(), pre, fail,
                            post);
  RunResult gem = RunOnce(flags, RecoveryPolicy::GeminiOW(), pre, fail, post);

  std::printf("\nCache hit ratio (%%), failure at t=%.0fs, recovery at "
              "t=%.0fs\n",
              pre, pre + fail);
  std::printf("%s\n",
              FormatSeriesTable({"VolatileCache", "StaleCache", "Gemini-O+W"},
                                {vol.hit_ratio, stale.hit_ratio,
                                 gem.hit_ratio})
                  .c_str());

  std::printf("Summary (hit ratio %%): during-failure / first 5s after "
              "recovery\n");
  std::printf("  VolatileCache: %.1f / %.1f   (stale reads: %llu)\n",
              vol.during_failure_hit, vol.post_recovery_hit,
              (unsigned long long)vol.stale);
  std::printf("  StaleCache:    %.1f / %.1f   (stale reads: %llu)\n",
              stale.during_failure_hit, stale.post_recovery_hit,
              (unsigned long long)stale.stale);
  std::printf("  Gemini-O+W:    %.1f / %.1f   (stale reads: %llu)\n",
              gem.during_failure_hit, gem.post_recovery_hit,
              (unsigned long long)gem.stale);

  PrintClaim(
      "comparable hit ratio in normal and transient modes; at recovery "
      "Gemini-O+W restores immediately (close to StaleCache, but with zero "
      "stale reads) while VolatileCache has the lowest hit ratio",
      (std::string("post-recovery hit: Gemini=") +
       std::to_string(gem.post_recovery_hit) + "% vs VolatileCache=" +
       std::to_string(vol.post_recovery_hit) + "% vs StaleCache=" +
       std::to_string(stale.post_recovery_hit) + "%; Gemini stale=" +
       std::to_string(gem.stale))
          .c_str());
  const bool ok = gem.stale == 0 &&
                  gem.post_recovery_hit > vol.post_recovery_hit;
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace gemini::bench

int main(int argc, char** argv) { return gemini::bench::Main(argc, argv); }
