// Section 5.5: Gemini's worst case — the entire working set changes during
// the instance's failure, so both recovery mechanisms do work that provides
// no benefit: recovery workers overwrite dirty keys that will never be
// referenced, and every working-set-transfer probe of the secondary misses.
//
// Paper shape (high load, 100% working-set change): average read latency
// +10% (extra secondary lookup), average update latency +21% (processed in
// both replicas), ~50% more client work during recovery, recovery lasting
// tens of seconds (70 s in the paper), with hundreds of thousands of dirty
// keys generated at paper scale.
#include <cstdio>

#include "bench/bench_common.h"

namespace gemini::bench {
namespace {

uint64_t InstanceOps(ClusterSim& sim) {
  uint64_t total = 0;
  for (size_t i = 0; i < sim.options().num_instances; ++i) {
    const auto s = sim.instance(static_cast<InstanceId>(i)).stats();
    total += s.hits + s.misses + s.inserts + s.deletes;
  }
  return total;
}

int Main(int argc, char** argv) {
  const BenchFlags flags = ParseFlags(argc, argv);
  PrintHeader("Section 5.5",
              "Gemini-O+W worst case: 100% working-set change during a "
              "100s failure, high load");
  YcsbClusterParams p = YcsbParams(flags);

  auto sim = MakeYcsbSim(flags, p, RecoveryPolicy::GeminiOW(), 0.05,
                         /*high_load=*/true,
                         YcsbWorkload::Evolution::kSwitch100);
  const double fail_at = p.warmup_seconds;
  const double fail_for = flags.quick ? 20 : 100;
  sim->ScheduleFailure(0, Seconds(fail_at), Seconds(fail_for));
  // Worst case (Section 5.5): the working set changes completely *at the
  // recovery boundary* — the primary's persistent content, the secondary's
  // content, and every dirty key belong to the old set; all recovery work
  // is pure overhead.
  sim->SchedulePhaseChange(Seconds(fail_at + fail_for), 1);

  // Baseline window: steady state before the failure.
  sim->Run(Seconds(fail_at));
  const auto base_from = static_cast<size_t>(fail_at) - 10;
  const auto base_to = static_cast<size_t>(fail_at);

  // Run through the failure; capture per-instance op counts at recovery.
  sim->Run(Seconds(fail_at + fail_for));
  const uint64_t cache_ops_at_recovery = InstanceOps(*sim);
  const uint64_t app_ops_at_recovery = sim->metrics().ops.Total();

  // Run until recovery completes (cap at +300s).
  double t = fail_at + fail_for;
  double recovery_seconds = -1;
  while (t < fail_at + fail_for + 300) {
    t += 10;
    sim->Run(Seconds(t));
    recovery_seconds = sim->RecoveryDurationSeconds(0);
    if (recovery_seconds >= 0) break;
  }
  const uint64_t cache_ops_after = InstanceOps(*sim);
  const uint64_t app_ops_after = sim->metrics().ops.Total();

  // Latency comparison: pre-failure baseline vs the recovery window.
  const auto rec_from = static_cast<size_t>(fail_at + fail_for);
  const auto rec_to =
      rec_from + static_cast<size_t>(std::max(1.0, recovery_seconds));
  Histogram base_read, base_write, rec_read, rec_write;
  for (size_t s = base_from; s < base_to; ++s) {
    if (const auto* h = sim->metrics().read_latency.Bucket(s)) {
      base_read.Merge(*h);
    }
    if (const auto* h = sim->metrics().write_latency.Bucket(s)) {
      base_write.Merge(*h);
    }
  }
  for (size_t s = rec_from; s < rec_to; ++s) {
    if (const auto* h = sim->metrics().read_latency.Bucket(s)) {
      rec_read.Merge(*h);
    }
    if (const auto* h = sim->metrics().write_latency.Bucket(s)) {
      rec_write.Merge(*h);
    }
  }

  uint64_t overwritten = 0, deleted = 0;
  for (size_t w = 0; w < sim->num_workers(); ++w) {
    overwritten += sim->worker(w).stats().keys_overwritten;
    deleted += sim->worker(w).stats().keys_deleted;
  }
  uint64_t dirty_hits = 0, wst_copies = 0;
  for (size_t c = 0; c < sim->num_clients(); ++c) {
    dirty_hits += sim->client(c).stats().dirty_hits;
    wst_copies += sim->client(c).stats().wst_copies;
  }

  const double read_increase =
      base_read.Mean() > 0 ? (rec_read.Mean() / base_read.Mean() - 1) * 100
                           : 0;
  const double write_increase =
      base_write.Mean() > 0
          ? (rec_write.Mean() / base_write.Mean() - 1) * 100
          : 0;
  const double base_amplification =
      app_ops_at_recovery > 0
          ? double(cache_ops_at_recovery) / double(app_ops_at_recovery)
          : 0;
  const uint64_t d_cache = cache_ops_after - cache_ops_at_recovery;
  const uint64_t d_app = app_ops_after - app_ops_at_recovery;
  const double rec_amplification =
      d_app > 0 ? double(d_cache) / double(d_app) : 0;

  std::printf("\n  recovery duration: %.1f s\n", recovery_seconds);
  std::printf("  dirty keys replayed by workers: %llu overwritten + %llu "
              "deleted (all wasted: the new working set never references "
              "them)\n",
              (unsigned long long)overwritten, (unsigned long long)deleted);
  std::printf("  WST copies (expected ~0: the secondary only has the old "
              "working set): %llu; dirty-key read hits: %llu\n",
              (unsigned long long)wst_copies,
              (unsigned long long)dirty_hits);
  std::printf("  avg read latency:   %.0f us -> %.0f us (%+.1f%%)\n",
              base_read.Mean(), rec_read.Mean(), read_increase);
  std::printf("  avg update latency: %.0f us -> %.0f us (%+.1f%%)\n",
              base_write.Mean(), rec_write.Mean(), write_increase);
  std::printf("  cache ops per app op: %.2f (steady) -> %.2f (recovery, "
              "%+.1f%%) [client+worker work proxy]\n",
              base_amplification, rec_amplification,
              base_amplification > 0
                  ? (rec_amplification / base_amplification - 1) * 100
                  : 0);

  PrintClaim(
      "read latency +10%, update latency +21%, ~50% extra work during "
      "recovery, recovery ~70s; overwrites and transfers provide no benefit",
      (std::string("read ") + std::to_string(read_increase) + "% / update " +
       std::to_string(write_increase) + "% / recovery " +
       std::to_string(recovery_seconds) + "s / wasted replays " +
       std::to_string(overwritten + deleted))
          .c_str());
  const bool ok = recovery_seconds >= 0 && read_increase > 0 &&
                  write_increase > 0;
  return ok ? 0 : 1;
}

}  // namespace
}  // namespace gemini::bench

int main(int argc, char** argv) { return gemini::bench::Main(argc, argv); }
