// Coordinator tests: the fragment lifecycle of Figure 4, configuration
// publication (Section 2.1), and the Rejig discard rule (Section 3.2.4,
// Example 3.1).
#include "src/coordinator/coordinator.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "src/cache/dirty_list.h"

namespace gemini {
namespace {

class CoordinatorTest : public ::testing::Test {
 protected:
  static constexpr size_t kInstances = 4;
  static constexpr size_t kFragments = 8;

  void Build(Coordinator::Options opts = {}) {
    instances_.clear();
    raw_.clear();
    for (size_t i = 0; i < kInstances; ++i) {
      instances_.push_back(std::make_unique<CacheInstance>(
          static_cast<InstanceId>(i), &clock_));
      raw_.push_back(instances_.back().get());
    }
    coordinator_ =
        std::make_unique<Coordinator>(&clock_, raw_, kFragments, opts);
  }

  CacheInstance& inst(InstanceId i) { return *raw_[i]; }

  VirtualClock clock_;
  std::vector<std::unique_ptr<CacheInstance>> instances_;
  std::vector<CacheInstance*> raw_;
  std::unique_ptr<Coordinator> coordinator_;
};

TEST_F(CoordinatorTest, InitialConfigAssignsRoundRobin) {
  Build();
  auto cfg = coordinator_->GetConfiguration();
  ASSERT_NE(cfg, nullptr);
  EXPECT_EQ(cfg->num_fragments(), kFragments);
  for (FragmentId f = 0; f < kFragments; ++f) {
    EXPECT_EQ(cfg->fragment(f).primary, f % kInstances);
    EXPECT_EQ(cfg->fragment(f).secondary, kInvalidInstance);
    EXPECT_EQ(cfg->fragment(f).mode, FragmentMode::kNormal);
  }
}

TEST_F(CoordinatorTest, InitialPublishInsertsConfigEntry) {
  Build();
  OpContext internal{kInternalConfigId, kInvalidFragment};
  for (size_t i = 0; i < kInstances; ++i) {
    auto entry = inst(static_cast<InstanceId>(i)).Get(internal, ConfigKey());
    ASSERT_TRUE(entry.ok()) << "instance " << i;
    auto parsed = Configuration::Deserialize(entry->data);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->id(), coordinator_->latest_id());
  }
}

TEST_F(CoordinatorTest, FailureCreatesSecondariesAndDirtyLists) {
  Build();
  const ConfigId before = coordinator_->latest_id();
  coordinator_->OnInstanceFailed(0);
  auto cfg = coordinator_->GetConfiguration();
  EXPECT_GT(cfg->id(), before);
  OpContext internal{kInternalConfigId, kInvalidFragment};
  for (FragmentId f = 0; f < kFragments; ++f) {
    const auto& a = cfg->fragment(f);
    if (f % kInstances == 0) {  // fragments of the failed instance
      EXPECT_EQ(a.mode, FragmentMode::kTransient);
      ASSERT_NE(a.secondary, kInvalidInstance);
      EXPECT_NE(a.secondary, 0u);
      EXPECT_EQ(a.config_id, cfg->id());
      // Marker-bearing dirty list initialized in the secondary.
      auto list = inst(a.secondary).Get(internal, DirtyListKey(f));
      ASSERT_TRUE(list.ok());
      EXPECT_TRUE(DirtyList::Parse(list->data).has_value());
    } else {
      EXPECT_EQ(a.mode, FragmentMode::kNormal);
    }
  }
}

TEST_F(CoordinatorTest, SecondariesSpreadAcrossSurvivors) {
  Build();
  coordinator_->OnInstanceFailed(0);
  auto cfg = coordinator_->GetConfiguration();
  std::vector<int> counts(kInstances, 0);
  for (FragmentId f = 0; f < kFragments; ++f) {
    const auto& a = cfg->fragment(f);
    if (a.mode == FragmentMode::kTransient) ++counts[a.secondary];
  }
  EXPECT_EQ(counts[0], 0);
  // 2 fragments spread round-robin over 3 survivors: max 1 apart.
  for (size_t i = 1; i < kInstances; ++i) {
    EXPECT_GE(counts[i], 0);
    EXPECT_LE(counts[i], 1 + 2 / 3 + 1);
  }
}

TEST_F(CoordinatorTest, EmulatedFailureRevokesStragglerLeases) {
  // The paper emulates failures by config removal: the "failed" instance is
  // still reachable but must stop serving its fragments.
  Build();
  coordinator_->OnInstanceFailed(0);
  OpContext ctx{coordinator_->latest_id(), /*fragment=*/0};
  EXPECT_EQ(inst(0).Get(ctx, "k").code(), Code::kWrongInstance);
}

TEST_F(CoordinatorTest, RecoveryWithDirtyListEntersRecoveryMode) {
  Build();
  auto pre = coordinator_->GetConfiguration();
  const ConfigId prefailure = pre->fragment(0).config_id;
  coordinator_->OnInstanceFailed(0);
  coordinator_->OnInstanceRecovered(0);
  auto cfg = coordinator_->GetConfiguration();
  const auto& a = cfg->fragment(0);
  EXPECT_EQ(a.mode, FragmentMode::kRecovery);
  EXPECT_EQ(a.primary, 0u);
  EXPECT_NE(a.secondary, kInvalidInstance);
  // Figure 4 transition (2): config id restored to the pre-failure value so
  // the primary's persistent entries validate.
  EXPECT_EQ(a.config_id, prefailure);
}

TEST_F(CoordinatorTest, RecoveryWithoutDirtyListDiscardsPrimary) {
  Build();
  coordinator_->OnInstanceFailed(0);
  // Simulate eviction of fragment 0's dirty list from its secondary.
  auto mid = coordinator_->GetConfiguration();
  const InstanceId sec = mid->fragment(0).secondary;
  OpContext internal{kInternalConfigId, kInvalidFragment};
  ASSERT_TRUE(inst(sec).Delete(internal, DirtyListKey(0)).ok());

  coordinator_->OnInstanceRecovered(0);
  auto cfg = coordinator_->GetConfiguration();
  // Fragment 0: unrecoverable -> discarded (config id bumped to latest),
  // back on the recovered instance in normal mode.
  EXPECT_EQ(cfg->fragment(0).mode, FragmentMode::kNormal);
  EXPECT_EQ(cfg->fragment(0).primary, 0u);
  EXPECT_EQ(cfg->fragment(0).config_id, cfg->id());
  EXPECT_EQ(coordinator_->discarded_fragment_count(), 1u);
  // Fragment 4 (also on instance 0) kept its dirty list -> recovery mode.
  EXPECT_EQ(cfg->fragment(4).mode, FragmentMode::kRecovery);
}

TEST_F(CoordinatorTest, PartialDirtyListAlsoDiscards) {
  Build();
  coordinator_->OnInstanceFailed(0);
  auto mid = coordinator_->GetConfiguration();
  const InstanceId sec = mid->fragment(0).secondary;
  OpContext internal{kInternalConfigId, kInvalidFragment};
  // Replace the list with a marker-less (partial) payload.
  ASSERT_TRUE(inst(sec)
                  .Set(internal, DirtyListKey(0),
                       CacheValue::OfData(DirtyList::EncodeRecord("k")))
                  .ok());
  coordinator_->OnInstanceRecovered(0);
  EXPECT_EQ(coordinator_->ModeOf(0), FragmentMode::kNormal);
  EXPECT_EQ(coordinator_->discarded_fragment_count(), 1u);
}

TEST_F(CoordinatorTest, DirtyProcessedAndWstTerminatedCompleteRecovery) {
  Coordinator::Options opts;
  opts.policy = RecoveryPolicy::GeminiOW();
  Build(opts);
  coordinator_->OnInstanceFailed(0);
  coordinator_->OnInstanceRecovered(0);
  ASSERT_EQ(coordinator_->ModeOf(0), FragmentMode::kRecovery);

  coordinator_->OnDirtyListProcessed(0);
  // WST still running: not yet normal (Figure 4 transition (3)).
  EXPECT_EQ(coordinator_->ModeOf(0), FragmentMode::kRecovery);
  coordinator_->OnWorkingSetTransferTerminated(0);
  EXPECT_EQ(coordinator_->ModeOf(0), FragmentMode::kNormal);
  auto cfg = coordinator_->GetConfiguration();
  EXPECT_EQ(cfg->fragment(0).secondary, kInvalidInstance);
}

TEST_F(CoordinatorTest, WithoutWstDirtyProcessedSuffices) {
  Coordinator::Options opts;
  opts.policy = RecoveryPolicy::GeminiO();
  Build(opts);
  coordinator_->OnInstanceFailed(0);
  coordinator_->OnInstanceRecovered(0);
  coordinator_->OnDirtyListProcessed(0);
  EXPECT_EQ(coordinator_->ModeOf(0), FragmentMode::kNormal);
}

TEST_F(CoordinatorTest, PrimaryFailingAgainReturnsToTransient) {
  Build();
  coordinator_->OnInstanceFailed(0);
  coordinator_->OnInstanceRecovered(0);
  ASSERT_EQ(coordinator_->ModeOf(0), FragmentMode::kRecovery);
  // Figure 4 transition (5).
  coordinator_->OnInstanceFailed(0);
  EXPECT_EQ(coordinator_->ModeOf(0), FragmentMode::kTransient);
  auto cfg = coordinator_->GetConfiguration();
  EXPECT_NE(cfg->fragment(0).secondary, kInvalidInstance);
}

TEST_F(CoordinatorTest, SecondaryFailureInTransientReassignsFragment) {
  Build();
  coordinator_->OnInstanceFailed(0);
  auto mid = coordinator_->GetConfiguration();
  const InstanceId sec = mid->fragment(0).secondary;
  coordinator_->OnInstanceFailed(sec);
  auto cfg = coordinator_->GetConfiguration();
  const auto& a = cfg->fragment(0);
  // Dirty list lost while the primary is down: discard + move to a live host.
  EXPECT_EQ(a.mode, FragmentMode::kNormal);
  EXPECT_NE(a.primary, 0u);
  EXPECT_NE(a.primary, sec);
  EXPECT_EQ(a.config_id, cfg->id());
  EXPECT_GE(coordinator_->discarded_fragment_count(), 1u);
}

TEST_F(CoordinatorTest, SecondaryFailureInRecoveryDropsSecondary) {
  Build();
  coordinator_->OnInstanceFailed(0);
  coordinator_->OnInstanceRecovered(0);
  auto mid = coordinator_->GetConfiguration();
  const InstanceId sec = mid->fragment(0).secondary;
  ASSERT_EQ(mid->fragment(0).mode, FragmentMode::kRecovery);
  coordinator_->OnInstanceFailed(sec);
  auto cfg = coordinator_->GetConfiguration();
  // Section 3.3: fragment stays in recovery; the secondary is gone and WST
  // is terminated, so completing the dirty list finishes recovery.
  EXPECT_EQ(cfg->fragment(0).mode, FragmentMode::kRecovery);
  EXPECT_EQ(cfg->fragment(0).secondary, kInvalidInstance);
  coordinator_->OnDirtyListProcessed(0);
  EXPECT_EQ(coordinator_->ModeOf(0), FragmentMode::kNormal);
}

TEST_F(CoordinatorTest, OnDirtyListUnavailableDiscardsMidRecovery) {
  Build();
  coordinator_->OnInstanceFailed(0);
  coordinator_->OnInstanceRecovered(0);
  ASSERT_EQ(coordinator_->ModeOf(0), FragmentMode::kRecovery);
  coordinator_->OnDirtyListUnavailable(0);
  auto cfg = coordinator_->GetConfiguration();
  EXPECT_EQ(cfg->fragment(0).mode, FragmentMode::kNormal);
  EXPECT_EQ(cfg->fragment(0).config_id, cfg->id());
  EXPECT_EQ(coordinator_->discarded_fragment_count(), 1u);
  // No-op when the fragment is not in recovery mode.
  coordinator_->OnDirtyListUnavailable(0);
  EXPECT_EQ(coordinator_->discarded_fragment_count(), 1u);
}

TEST_F(CoordinatorTest, StaleCachePolicyRestoresContentWithoutRecovery) {
  Coordinator::Options opts;
  opts.policy = RecoveryPolicy::StaleCache();
  Build(opts);
  auto pre = coordinator_->GetConfiguration();
  const ConfigId prefailure = pre->fragment(0).config_id;
  coordinator_->OnInstanceFailed(0);
  coordinator_->OnInstanceRecovered(0);
  auto cfg = coordinator_->GetConfiguration();
  EXPECT_EQ(cfg->fragment(0).mode, FragmentMode::kNormal);
  EXPECT_EQ(cfg->fragment(0).primary, 0u);
  // Content reused verbatim: config id restored (stale reads possible).
  EXPECT_EQ(cfg->fragment(0).config_id, prefailure);
}

TEST_F(CoordinatorTest, VolatileCachePolicyBumpsConfigId) {
  Coordinator::Options opts;
  opts.policy = RecoveryPolicy::VolatileCache();
  Build(opts);
  coordinator_->OnInstanceFailed(0);
  inst(0).RecoverVolatile();
  coordinator_->OnInstanceRecovered(0);
  auto cfg = coordinator_->GetConfiguration();
  EXPECT_EQ(cfg->fragment(0).mode, FragmentMode::kNormal);
  EXPECT_EQ(cfg->fragment(0).config_id, cfg->id());
}

TEST_F(CoordinatorTest, DirtyListBudgetDiscardsOversizedLists) {
  Coordinator::Options opts;
  opts.dirty_list_byte_budget = 64;
  Build(opts);
  coordinator_->OnInstanceFailed(0);
  auto mid = coordinator_->GetConfiguration();
  const InstanceId sec = mid->fragment(0).secondary;
  // Under budget: nothing happens.
  EXPECT_FALSE(coordinator_->EnforceDirtyListBudget(0));
  // Blow the budget.
  OpContext internal{kInternalConfigId, kInvalidFragment};
  ASSERT_TRUE(
      inst(sec).Append(internal, DirtyListKey(0), std::string(200, 'k')).ok());
  EXPECT_TRUE(coordinator_->EnforceDirtyListBudget(0));
  auto cfg = coordinator_->GetConfiguration();
  // Figure 4 transition (4): secondary promoted to primary, normal mode.
  EXPECT_EQ(cfg->fragment(0).mode, FragmentMode::kNormal);
  EXPECT_EQ(cfg->fragment(0).primary, sec);
  EXPECT_EQ(cfg->fragment(0).config_id, cfg->id());
}

// Example 3.1 from the paper, reproduced end to end.
TEST_F(CoordinatorTest, ExampleThreeDotOne) {
  Build();
  // Two fragments on instance 0: 0 and 4. Give fragment 4's dirty list a
  // different fate than fragment 0's.
  auto pre = coordinator_->GetConfiguration();
  const ConfigId id_at_assignment = pre->fragment(0).config_id;

  coordinator_->OnInstanceFailed(0);
  auto transient_cfg = coordinator_->GetConfiguration();
  // Assignment changed in this configuration: ids updated.
  EXPECT_EQ(transient_cfg->fragment(0).config_id, transient_cfg->id());
  EXPECT_EQ(transient_cfg->fragment(4).config_id, transient_cfg->id());

  // Fragment 4's dirty list is evicted and lost.
  const InstanceId sec4 = transient_cfg->fragment(4).secondary;
  OpContext internal{kInternalConfigId, kInvalidFragment};
  ASSERT_TRUE(inst(sec4).Delete(internal, DirtyListKey(4)).ok());

  coordinator_->OnInstanceRecovered(0);
  auto cfg = coordinator_->GetConfiguration();
  // Fragment 0 transitions to recovery with its pre-failure id restored...
  EXPECT_EQ(cfg->fragment(0).mode, FragmentMode::kRecovery);
  EXPECT_EQ(cfg->fragment(0).config_id, id_at_assignment);
  // ...while fragment 4's id is bumped to the latest, discarding every entry
  // of its primary replica on the recovered instance.
  EXPECT_EQ(cfg->fragment(4).mode, FragmentMode::kNormal);
  EXPECT_EQ(cfg->fragment(4).config_id, cfg->id());
}

TEST_F(CoordinatorTest, PublishedConfigEntryTracksLatest) {
  Build();
  coordinator_->OnInstanceFailed(0);
  coordinator_->OnInstanceRecovered(0);
  OpContext internal{kInternalConfigId, kInvalidFragment};
  auto entry = inst(0).Get(internal, ConfigKey());
  ASSERT_TRUE(entry.ok());
  auto parsed = Configuration::Deserialize(entry->data);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->id(), coordinator_->latest_id());
}

TEST_F(CoordinatorTest, FragmentsInModeAndWithPrimary) {
  Build();
  coordinator_->OnInstanceFailed(0);
  auto transient = coordinator_->FragmentsInMode(FragmentMode::kTransient);
  EXPECT_EQ(transient.size(), kFragments / kInstances);
  auto of0 = coordinator_->FragmentsWithPrimary(0);
  EXPECT_EQ(of0.size(), kFragments / kInstances);
}

}  // namespace
}  // namespace gemini
