#include "src/common/logging.h"

#include <gtest/gtest.h>

namespace gemini {
namespace {

TEST(Logging, LevelRoundTrips) {
  const LogLevel before = LogState::Level();
  LogState::SetLevel(LogLevel::kDebug);
  EXPECT_EQ(LogState::Level(), LogLevel::kDebug);
  LogState::SetLevel(LogLevel::kError);
  EXPECT_EQ(LogState::Level(), LogLevel::kError);
  LogState::SetLevel(before);
}

TEST(Logging, MacroCompilesAndFiltersBelowLevel) {
  const LogLevel before = LogState::Level();
  LogState::SetLevel(LogLevel::kError);
  // Suppressed: argument side effects must still not run.
  int evaluations = 0;
  auto touch = [&evaluations] {
    ++evaluations;
    return "x";
  };
  LOG_DEBUG << touch();
  LOG_INFO << touch();
  EXPECT_EQ(evaluations, 0);
  LOG_ERROR << "visible at error level (stderr)";
  LogState::SetLevel(before);
}

}  // namespace
}  // namespace gemini
