// Workload generator tests: YCSB mixes and evolving patterns (Sections 5.2,
// 5.4.4) and the Facebook-like trace models (Section 5.1).
#include <gtest/gtest.h>

#include <set>

#include "src/workload/facebook.h"
#include "src/workload/ycsb.h"

namespace gemini {
namespace {

// ---- YCSB ---------------------------------------------------------------------

class YcsbUpdateFractionTest : public ::testing::TestWithParam<double> {};

TEST_P(YcsbUpdateFractionTest, MixMatchesParameter) {
  YcsbWorkload::Options o;
  o.num_records = 1000;
  o.update_fraction = GetParam();
  YcsbWorkload w(o);
  Rng rng(1);
  int writes = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (!w.Next(rng).is_read) ++writes;
  }
  EXPECT_NEAR(double(writes) / n, GetParam(), 0.01);
}

// The paper sweeps 1%..10% update ratios (Figures 8, 9) and uses
// workloads A (50%) and B (5%).
INSTANTIATE_TEST_SUITE_P(PaperSweep, YcsbUpdateFractionTest,
                         ::testing::Values(0.01, 0.05, 0.10, 0.5));

TEST(YcsbWorkload, KeysStableAndInRange) {
  YcsbWorkload::Options o;
  o.num_records = 500;
  YcsbWorkload w(o);
  EXPECT_EQ(w.KeyOfRecord(7), w.KeyOfRecord(7));
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) {
    Operation op = w.Next(rng);
    EXPECT_LT(op.record, 500u);
    EXPECT_EQ(op.key, w.KeyOfRecord(op.record));
  }
}

TEST(YcsbWorkload, UniformKeyWidth) {
  YcsbWorkload::Options o;
  YcsbWorkload w(o);
  EXPECT_EQ(w.KeyOfRecord(0).size(), w.KeyOfRecord(99999).size());
}

TEST(YcsbWorkload, StaticPatternIgnoresPhase) {
  YcsbWorkload::Options o;
  o.num_records = 1000;
  YcsbWorkload w(o);
  Rng r1(3), r2(3);
  YcsbWorkload w2(o);
  w2.SetPhase(1);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(w.Next(r1).record, w2.Next(r2).record);
  }
}

TEST(YcsbWorkload, Switch100MovesAllReferences) {
  YcsbWorkload::Options o;
  o.num_records = 1000;
  o.evolution = YcsbWorkload::Evolution::kSwitch100;
  YcsbWorkload w(o);
  Rng rng(4);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_LT(w.Next(rng).record, 500u);  // phase 0: set A only
  }
  w.SetPhase(1);
  for (int i = 0; i < 2000; ++i) {
    EXPECT_GE(w.Next(rng).record, 500u);  // phase 1: set B only
  }
}

TEST(YcsbWorkload, Switch20MovesOnlyHotRanks) {
  YcsbWorkload::Options o;
  o.num_records = 1000;  // half = 500, hot window = 100
  o.evolution = YcsbWorkload::Evolution::kSwitch20;
  YcsbWorkload w(o);
  w.SetPhase(1);
  Rng rng(5);
  int in_b = 0, in_a = 0;
  for (int i = 0; i < 20000; ++i) {
    const uint64_t r = w.Next(rng).record;
    if (r >= 500) {
      ++in_b;
      EXPECT_LT(r, 600u);  // only the hottest 100 ranks moved
    } else {
      ++in_a;
      EXPECT_GE(r, 100u);  // cold ranks stay in A above the hot window
    }
  }
  // With theta=0.99 the hottest 20% of ranks carry most of the mass.
  EXPECT_GT(in_b, in_a);
}

TEST(YcsbWorkload, ClosedLoopByDefault) {
  YcsbWorkload::Options o;
  YcsbWorkload w(o);
  Rng rng(6);
  EXPECT_EQ(w.NextInterarrival(rng), 0);
}

TEST(YcsbWorkload, LoadStorePopulatesEveryRecord) {
  YcsbWorkload::Options o;
  o.num_records = 50;
  o.record_bytes = 256;
  YcsbWorkload w(o);
  DataStore store;
  w.LoadStore(store);
  EXPECT_EQ(store.size(), 50u);
  auto rec = store.Query(w.KeyOfRecord(49));
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->size_bytes, 256u);
}

// ---- Facebook-like -------------------------------------------------------------

TEST(FacebookWorkload, MeanSizesMatchPaper) {
  // Section 5.1: mean key size 36 B, mean value size 329 B.
  FacebookWorkload::Options o;
  o.num_records = 20000;
  FacebookWorkload w(o);
  double key_sum = 0, value_sum = 0;
  for (uint64_t r = 0; r < o.num_records; ++r) {
    key_sum += double(w.KeyOfRecord(r).size());
    value_sum += double(w.ValueSizeOfRecord(r));
  }
  EXPECT_NEAR(key_sum / double(o.num_records), 36.0, 4.0);
  EXPECT_NEAR(value_sum / double(o.num_records), 329.0, 40.0);
}

TEST(FacebookWorkload, ReadFractionMatches) {
  FacebookWorkload::Options o;
  o.num_records = 1000;
  FacebookWorkload w(o);
  Rng rng(7);
  int reads = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (w.Next(rng).is_read) ++reads;
  }
  EXPECT_NEAR(double(reads) / n, 0.95, 0.01);
}

TEST(FacebookWorkload, InterarrivalMeanMatches) {
  FacebookWorkload::Options o;
  o.num_records = 100;
  o.mean_interarrival = Micros(19);
  FacebookWorkload w(o);
  Rng rng(8);
  double sum = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += double(w.NextInterarrival(rng));
  EXPECT_NEAR(sum / n, 19.0, 1.0);
}

TEST(FacebookWorkload, KeysAreDistinctAndStable) {
  FacebookWorkload::Options o;
  o.num_records = 5000;
  FacebookWorkload w(o);
  std::set<std::string> keys;
  for (uint64_t r = 0; r < 5000; ++r) {
    EXPECT_EQ(w.KeyOfRecord(r), w.KeyOfRecord(r));
    keys.insert(w.KeyOfRecord(r));
  }
  EXPECT_EQ(keys.size(), 5000u);
}

TEST(FacebookWorkload, DatabaseBytesApproximation) {
  FacebookWorkload::Options o;
  o.num_records = 10000;
  FacebookWorkload w(o);
  const uint64_t approx = w.ApproxDatabaseBytes();
  // ~ (329 + 36) bytes per record.
  EXPECT_GT(approx, 10000ull * 250);
  EXPECT_LT(approx, 10000ull * 500);
}

}  // namespace
}  // namespace gemini
