// ALICE-style crash-point matrix: a seeded FaultFile schedule cuts,
// record-truncates, or torn-writes the WAL a killed process left behind,
// and recovery must — for EVERY mutation — either restore a consistent
// prefix of history or fail closed. The oracle is an independent test-local
// replay of the scanned records; silently divergent state (the one true
// failure: a stale lease or value nobody can detect) fails the test.
//
// Seeded via GEMINI_FAULT_SEED (echoed below so CI failures replay exactly);
// each base seed expands to a 21-seed x 3-kind matrix.
#include "src/persist/fault_file.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include <ftw.h>
#include <sys/stat.h>

#include "src/cache/cache_instance.h"
#include "src/persist/checkpoint.h"
#include "src/persist/persistent_store.h"
#include "src/persist/wal.h"

namespace gemini {
namespace {

constexpr OpContext kCtx{kInternalConfigId, kInvalidFragment};

int RemoveEntry(const char* path, const struct stat*, int, struct FTW*) {
  return ::remove(path);
}

void RemoveTree(const std::string& dir) {
  ::nftw(dir.c_str(), RemoveEntry, 16, FTW_DEPTH | FTW_PHYS);
}

void CopyFile(const std::string& from, const std::string& to) {
  std::ifstream in(from, std::ios::binary);
  ASSERT_TRUE(in.good()) << from;
  std::ofstream out(to, std::ios::binary | std::ios::trunc);
  out << in.rdbuf();
  // operator<<(streambuf*) sets failbit when zero characters transfer, but
  // an empty segment is a legal crash shape (killed right after rotation
  // opened — or preallocated — the next segment).
  ASSERT_TRUE(out.good() || in.peek() == std::ifstream::traits_type::eof())
      << to;
}

uint64_t BaseSeed() {
  uint64_t seed = 1;
  if (const char* env = std::getenv("GEMINI_FAULT_SEED");
      env != nullptr && env[0] != '\0') {
    seed = std::strtoull(env, nullptr, 10);
  }
  std::printf("[ crashpt  ] GEMINI_FAULT_SEED=%llu\n",
              static_cast<unsigned long long>(seed));
  return seed;
}

/// What the durable medium restored for one key.
struct EntryImage {
  std::string data;
  Version version = 0;
  ConfigId config_id = 0;
  bool pinned = false;

  bool operator==(const EntryImage& o) const {
    return data == o.data && version == o.version &&
           config_id == o.config_id && pinned == o.pinned;
  }
};

/// Independent replay of a scanned record sequence: last-writer-wins per
/// key, QBegin/QEnd counting with the crash-spanning drop rule, config-id
/// max. Deliberately re-implemented here (not shared with PersistentStore)
/// so the test checks the recovery code against a second opinion.
struct OracleState {
  std::map<std::string, EntryImage> entries;
  std::map<std::string, int64_t> qcount;
  ConfigId max_config = 0;

  void Apply(const WalRecord& rec) {
    switch (rec.type) {
      case WalRecordType::kUpsert:
        entries[rec.key] =
            EntryImage{rec.data, rec.version, rec.config_id, rec.pinned};
        break;
      case WalRecordType::kDelete:
        entries.erase(rec.key);
        break;
      case WalRecordType::kQBegin:
        ++qcount[rec.key];
        break;
      case WalRecordType::kQEnd:
        if (qcount[rec.key] > 0) --qcount[rec.key];
        break;
      case WalRecordType::kConfigId:
        max_config = std::max(max_config, rec.config_id);
        break;
      case WalRecordType::kQClear:
        qcount.clear();
        break;
      case WalRecordType::kWipe:
        entries.clear();
        qcount.clear();
        break;
    }
  }

  void Finish() {
    for (const auto& [key, count] : qcount) {
      if (count > 0) entries.erase(key);
    }
    for (const auto& [key, image] : entries) {
      max_config = std::max(max_config, image.config_id);
    }
  }
};

class CrashPointTest : public ::testing::Test {
 protected:
  static PersistentStore::Options StoreOptions() {
    PersistentStore::Options o;
    o.sync_interval = 0;
    return o;
  }

  std::string TempDir(const std::string& name) {
    const std::string dir = ::testing::TempDir() + "/crashpt_" + name;
    RemoveTree(dir);
    ::mkdir(dir.c_str(), 0755);
    dirs_.push_back(dir);
    return dir;
  }

  void TearDown() override {
    for (const auto& d : dirs_) RemoveTree(d);
  }

  /// Builds the base image a kill -9 would leave behind: one checkpoint
  /// (empty — taken at open) and one WAL segment holding a workload with
  /// every record type, including two quarantines still in flight at the
  /// "crash".
  void BuildBaseImage(const std::string& dir) {
    auto store = std::make_unique<PersistentStore>(dir, StoreOptions());
    CacheInstance::Options opts;
    opts.persistence = store.get();
    CacheInstance instance(1, &clock_, opts);
    ASSERT_TRUE(store->Open(instance).ok());
    wal_seq_ = store->wal_seq();

    // Q-protected overwrite cycles with increasing versions.
    for (int i = 0; i < 6; ++i) {
      const std::string key = "q" + std::to_string(i);
      for (Version v = 1; v <= 3; ++v) {
        auto t = instance.Qareg(kCtx, key);
        ASSERT_TRUE(t.ok());
        ASSERT_TRUE(instance
                        .Rar(kCtx, key,
                             CacheValue::OfData(
                                 key + "#" + std::to_string(v), v),
                             *t)
                        .ok());
      }
    }
    // Plain sets, an append chain, deletes, a config bump.
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(instance
                      .Set(kCtx, "s" + std::to_string(i),
                           CacheValue::OfData("sv" + std::to_string(i),
                                              static_cast<Version>(i)))
                      .ok());
    }
    ASSERT_TRUE(instance.Append(kCtx, "chain", "a;").ok());
    ASSERT_TRUE(instance.Append(kCtx, "chain", "b;").ok());
    ASSERT_TRUE(instance.Delete(kCtx, "s0").ok());
    instance.ObserveConfigId(5);
    // Write-around delete cycle.
    auto td = instance.Qareg(kCtx, "q0");
    ASSERT_TRUE(td.ok());
    ASSERT_TRUE(instance.Dar(kCtx, "q0", *td).ok());
    // Two quarantines left in flight at the crash: one over an existing
    // value (the dangerous stale-read shape) and one over a miss.
    auto t1 = instance.Qareg(kCtx, "q1");
    ASSERT_TRUE(t1.ok());
    auto t2 = instance.Qareg(kCtx, "fresh");
    ASSERT_TRUE(t2.ok());

    store.reset();  // kill: no checkpoint, the WAL is the only history
  }

  /// Runs recovery against one mutated copy and checks the oracle.
  /// Returns true when recovery succeeded (vs failed closed).
  bool RunCase(const std::string& base, const std::string& scratch,
               const FaultPlan& plan, const std::string& label) {
    RemoveTree(scratch);
    ::mkdir(scratch.c_str(), 0755);
    DirListing listing;
    CheckpointManager manager(base);
    EXPECT_TRUE(manager.List(listing).ok());
    for (uint64_t seq : listing.checkpoint_seqs) {
      CopyFile(manager.CheckpointPath(seq),
               CheckpointManager(scratch).CheckpointPath(seq));
    }
    for (uint64_t seq : listing.wal_seqs) {
      CopyFile(Wal::SegmentPath(base, seq), Wal::SegmentPath(scratch, seq));
    }
    const std::string target = Wal::SegmentPath(scratch, wal_seq_);
    EXPECT_TRUE(FaultFile::Apply(target, plan).ok()) << label;

    // The classification ScanFile reports is the contract recovery must
    // honor: corrupt => fail closed; clean or torn => recover exactly the
    // oracle's state.
    WalScanResult scan = Wal::ScanFile(target);

    PersistentStore store(scratch, StoreOptions());
    CacheInstance::Options opts;
    opts.persistence = &store;
    CacheInstance instance(1, &clock_, opts);
    const Status s = store.Open(instance);

    if (!scan.error.ok()) {
      EXPECT_FALSE(s.ok()) << label << ": recovery accepted a corrupt log";
      return false;
    }
    EXPECT_TRUE(s.ok()) << label << ": " << s.ToString();
    if (!s.ok()) return false;

    OracleState oracle;
    for (const WalRecord& rec : scan.records) oracle.Apply(rec);
    oracle.Finish();

    std::map<std::string, EntryImage> recovered;
    instance.ForEachEntry([&recovered](std::string_view key,
                                       const CacheValue& value,
                                       ConfigId config_id, bool pinned) {
      recovered[std::string(key)] =
          EntryImage{value.data, value.version, config_id, pinned};
    });
    EXPECT_EQ(recovered, oracle.entries) << label;
    EXPECT_EQ(instance.latest_config_id(), oracle.max_config) << label;

    // The zero-stale-read invariant, asserted directly: a key whose
    // quarantine count is unbalanced in the surviving prefix must be
    // absent — its cached value may disagree with the data store.
    for (const auto& [key, count] : oracle.qcount) {
      if (count > 0) {
        EXPECT_EQ(recovered.count(key), 0u)
            << label << ": quarantined key " << key << " served after crash";
      }
    }
    return true;
  }

  VirtualClock clock_;
  std::vector<std::string> dirs_;
  uint64_t wal_seq_ = 0;
};

TEST_F(CrashPointTest, PlansAreDeterministicAndSeedSensitive) {
  const std::vector<uint64_t> ends{10, 20, 30};
  const FaultPlan a =
      FaultFile::PlanFor(7, 3, FaultPlan::Kind::kTornWrite, 1000, ends);
  const FaultPlan b =
      FaultFile::PlanFor(7, 3, FaultPlan::Kind::kTornWrite, 1000, ends);
  EXPECT_EQ(a.truncate_to, b.truncate_to);
  EXPECT_EQ(a.garbage_len, b.garbage_len);
  EXPECT_EQ(a.garbage_seed, b.garbage_seed);

  bool differs = false;
  for (uint32_t i = 0; i < 8 && !differs; ++i) {
    const FaultPlan c =
        FaultFile::PlanFor(8, i, FaultPlan::Kind::kTornWrite, 1000, ends);
    const FaultPlan d =
        FaultFile::PlanFor(9, i, FaultPlan::Kind::kTornWrite, 1000, ends);
    differs = c.truncate_to != d.truncate_to || c.garbage_seed != d.garbage_seed;
  }
  EXPECT_TRUE(differs);
}

TEST_F(CrashPointTest, TruncateAtEveryRecordBoundaryRecoversThePrefix) {
  // Exhaustive, not sampled: every clean prefix of the log must recover.
  const std::string base = TempDir("prefix_base");
  BuildBaseImage(base);
  WalScanResult intact = Wal::ScanFile(Wal::SegmentPath(base, wal_seq_));
  ASSERT_TRUE(intact.error.ok());
  ASSERT_GT(intact.records.size(), 20u);

  const std::string scratch = TempDir("prefix_scratch");
  size_t recovered = 0;
  for (size_t i = 0; i <= intact.record_ends.size(); ++i) {
    FaultPlan plan;
    plan.kind = FaultPlan::Kind::kTruncateRecord;
    plan.truncate_to = i == 0 ? 0 : intact.record_ends[i - 1];
    if (RunCase(base, scratch, plan, "prefix=" + std::to_string(i))) {
      ++recovered;
    }
  }
  // Clean prefixes are valid logs: every single one must have recovered.
  EXPECT_EQ(recovered, intact.record_ends.size() + 1);
}

TEST_F(CrashPointTest, SeededMatrixRecoversOrFailsClosed) {
  const std::string base = TempDir("matrix_base");
  BuildBaseImage(base);
  const std::string wal_path = Wal::SegmentPath(base, wal_seq_);
  WalScanResult intact = Wal::ScanFile(wal_path);
  ASSERT_TRUE(intact.error.ok());

  const uint64_t base_seed = BaseSeed();
  const std::string scratch = TempDir("matrix_scratch");
  size_t cases = 0, recovered = 0;
  for (uint64_t seed = base_seed; seed < base_seed + 21; ++seed) {
    for (FaultPlan::Kind kind :
         {FaultPlan::Kind::kCut, FaultPlan::Kind::kTruncateRecord,
          FaultPlan::Kind::kTornWrite}) {
      const FaultPlan plan =
          FaultFile::PlanFor(seed, static_cast<uint32_t>(cases), kind,
                             intact.file_bytes, intact.record_ends);
      const std::string label = "seed=" + std::to_string(seed) + " kind=" +
                                std::to_string(static_cast<int>(plan.kind)) +
                                " cut=" + std::to_string(plan.truncate_to);
      if (RunCase(base, scratch, plan, label)) ++recovered;
      ++cases;
    }
  }
  EXPECT_EQ(cases, 63u);
  // Torn and truncated logs are legal crash shapes: the vast majority of
  // the matrix must recover (only torn-write garbage that happens to form a
  // complete-but-corrupt frame may fail closed).
  EXPECT_GT(recovered, cases / 2);
  std::printf("[ crashpt  ] %zu/%zu mutations recovered, %zu failed closed\n",
              recovered, cases, cases - recovered);
}

}  // namespace
}  // namespace gemini
