#include "src/common/time_series.h"

#include <gtest/gtest.h>

namespace gemini {
namespace {

TEST(CounterSeries, BucketsByInterval) {
  CounterSeries s(kSecond);
  s.Add(0);
  s.Add(Millis(999));
  s.Add(Seconds(1));
  s.Add(Seconds(2.5), 3);
  EXPECT_EQ(s.buckets().size(), 3u);
  EXPECT_EQ(s.buckets()[0], 2u);
  EXPECT_EQ(s.buckets()[1], 1u);
  EXPECT_EQ(s.buckets()[2], 3u);
  EXPECT_EQ(s.Total(), 6u);
}

TEST(CounterSeries, AtReadsBucketOfTimestamp) {
  CounterSeries s(kSecond);
  s.Add(Seconds(5), 7);
  EXPECT_EQ(s.At(Seconds(5.9)), 7u);
  EXPECT_EQ(s.At(Seconds(4)), 0u);
  EXPECT_EQ(s.At(Seconds(100)), 0u);
}

TEST(CounterSeries, NegativeTimeGoesToFirstBucket) {
  CounterSeries s(kSecond);
  s.Add(-5);
  EXPECT_EQ(s.buckets()[0], 1u);
}

TEST(RatioSeries, ComputesPerIntervalRatios) {
  RatioSeries r(kSecond);
  r.AddDenominator(0, 10);
  r.AddNumerator(0, 9);
  r.AddDenominator(Seconds(1), 4);
  r.AddNumerator(Seconds(1), 1);
  auto ratios = r.Ratios();
  ASSERT_EQ(ratios.size(), 2u);
  EXPECT_DOUBLE_EQ(ratios[0], 0.9);
  EXPECT_DOUBLE_EQ(ratios[1], 0.25);
}

TEST(RatioSeries, EmptyIntervalUsesSentinel) {
  RatioSeries r(kSecond);
  r.AddDenominator(Seconds(2), 2);
  r.AddNumerator(Seconds(2), 1);
  auto ratios = r.Ratios(-1.0);
  ASSERT_EQ(ratios.size(), 3u);
  EXPECT_DOUBLE_EQ(ratios[0], -1.0);
  EXPECT_DOUBLE_EQ(ratios[1], -1.0);
  EXPECT_DOUBLE_EQ(ratios[2], 0.5);
}

TEST(RatioSeries, RatioBetweenAggregates) {
  RatioSeries r(kSecond);
  for (int s = 0; s < 10; ++s) {
    r.AddDenominator(Seconds(s), 10);
    r.AddNumerator(Seconds(s), s);  // 0..9 hits out of 10
  }
  EXPECT_DOUBLE_EQ(r.RatioBetween(0, 10), 45.0 / 100.0);
  EXPECT_DOUBLE_EQ(r.RatioBetween(5, 6), 0.5);
  EXPECT_DOUBLE_EQ(r.RatioBetween(20, 30), 0.0);
}

TEST(LatencySeries, PerSecondPercentiles) {
  LatencySeries l(kSecond);
  for (int i = 1; i <= 100; ++i) l.Record(0, i);
  for (int i = 1; i <= 100; ++i) l.Record(Seconds(1), i * 10);
  auto p90 = l.Percentiles(0.90);
  ASSERT_EQ(p90.size(), 2u);
  EXPECT_NEAR(p90[0], 90, 10);
  EXPECT_NEAR(p90[1], 900, 90);
  auto means = l.Means();
  EXPECT_NEAR(means[0], 50.5, 1e-9);
}

TEST(FormatSeriesTable, AlignsColumnsAndRows) {
  std::string out = FormatSeriesTable({"a", "b"}, {{1.0, 2.0}, {3.0}});
  // Header + 2 rows.
  EXPECT_NE(out.find("a"), std::string::npos);
  EXPECT_NE(out.find("b"), std::string::npos);
  EXPECT_NE(out.find("1.000"), std::string::npos);
  EXPECT_NE(out.find("3.000"), std::string::npos);
  // Missing cell rendered as '-'.
  EXPECT_NE(out.find('-'), std::string::npos);
}

}  // namespace
}  // namespace gemini
