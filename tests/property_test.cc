// Property-based tests: randomized operation/failure schedules replayed
// against every Gemini policy variant, asserting the paper's core invariant
// (read-after-write consistency: zero stale reads) plus structural
// invariants of the fragment lifecycle.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "src/client/gemini_client.h"
#include "src/consistency/stale_read_checker.h"
#include "src/coordinator/coordinator.h"
#include "src/recovery/recovery_worker.h"
#include "src/sim/cluster_sim.h"
#include "src/workload/ycsb.h"

namespace gemini {
namespace {

// ---- Randomized protocol-level interleavings -----------------------------------

struct Params {
  uint64_t seed;
  bool overwrite;
  bool wst;
};

class RandomScheduleTest
    : public ::testing::TestWithParam<std::tuple<uint64_t, int>> {};

TEST_P(RandomScheduleTest, GeminiNeverServesStale) {
  const uint64_t seed = std::get<0>(GetParam());
  const int variant = std::get<1>(GetParam());
  RecoveryPolicy policy;
  WritePolicy write_policy = WritePolicy::kWriteAround;
  switch (variant) {
    case 0: policy = RecoveryPolicy::GeminiI(); break;
    case 1: policy = RecoveryPolicy::GeminiO(); break;
    case 2: policy = RecoveryPolicy::GeminiIW(); break;
    case 3: policy = RecoveryPolicy::GeminiOW(); break;
    case 4:
      policy = RecoveryPolicy::GeminiO();
      write_policy = WritePolicy::kWriteThrough;
      break;
    default:
      policy = RecoveryPolicy::GeminiOW();
      write_policy = WritePolicy::kWriteThrough;
      break;
  }

  constexpr size_t kInstances = 4;
  constexpr size_t kFragments = 16;
  constexpr int kKeys = 120;

  VirtualClock clock;
  DataStore store;
  std::vector<std::unique_ptr<CacheInstance>> instances;
  std::vector<CacheInstance*> raw;
  for (size_t i = 0; i < kInstances; ++i) {
    instances.push_back(std::make_unique<CacheInstance>(
        static_cast<InstanceId>(i), &clock));
    raw.push_back(instances.back().get());
  }
  Coordinator::Options copts;
  copts.policy = policy;
  Coordinator coordinator(&clock, raw, kFragments, copts);
  GeminiClient::Options cl;
  cl.working_set_transfer = policy.working_set_transfer;
  cl.write_policy = write_policy;
  GeminiClient client(&clock, &coordinator, raw, &store, cl);
  RecoveryState rs(kFragments);
  client.BindRecoveryState(&rs);
  RecoveryWorker::Options wo;
  wo.overwrite_dirty = policy.overwrite_dirty;
  wo.keys_per_step = 8;
  RecoveryWorker worker(&clock, &coordinator, raw, wo);
  StaleReadChecker checker(&store);
  Session session;

  for (int i = 0; i < kKeys; ++i) {
    store.Put("user" + std::to_string(i), "v");
  }

  Rng rng(seed);
  std::vector<bool> up(kInstances, true);
  size_t ups = kInstances;

  for (int step = 0; step < 3000; ++step) {
    clock.Advance(Micros(200));
    const uint64_t dice = rng.NextBounded(1000);
    const std::string key =
        "user" + std::to_string(rng.NextBounded(kKeys));
    if (dice < 600) {
      auto r = client.Read(session, key);
      if (r.ok()) {
        EXPECT_FALSE(checker.OnRead(clock.Now(), key, r->value.version))
            << "stale read of " << key << " at step " << step
            << " policy " << policy.Name() << " seed " << seed;
      }
    } else if (dice < 850) {
      Status s = client.Write(session, key);
      EXPECT_TRUE(s.ok() || s.code() == Code::kSuspended ||
                  s.code() == Code::kUnavailable)
          << s.ToString();
    } else if (dice < 920) {
      // Advance recovery.
      if (!worker.has_work()) (void)worker.TryAdoptFragment(session);
      if (worker.has_work()) (void)worker.Step(session);
    } else if (dice < 960 && ups > 2) {
      // Fail a random up instance (emulated: content retained).
      const auto victim =
          static_cast<InstanceId>(rng.NextBounded(kInstances));
      if (up[victim]) {
        up[victim] = false;
        --ups;
        coordinator.OnInstanceFailed(victim);
      }
    } else {
      // Recover a random down instance.
      for (InstanceId i = 0; i < kInstances; ++i) {
        if (!up[i]) {
          up[i] = true;
          ++ups;
          for (FragmentId f : coordinator.FragmentsWithPrimary(i)) {
            rs.ResetWst(f);
          }
          coordinator.OnInstanceRecovered(i);
          break;
        }
      }
    }
  }
  EXPECT_EQ(checker.total_stale(), 0u);

  // Structural invariants of the final configuration.
  auto cfg = coordinator.GetConfiguration();
  for (FragmentId f = 0; f < cfg->num_fragments(); ++f) {
    const auto& a = cfg->fragment(f);
    EXPECT_LE(a.config_id, cfg->id());
    if (a.mode == FragmentMode::kNormal) {
      EXPECT_EQ(a.secondary, kInvalidInstance);
    } else if (a.mode == FragmentMode::kTransient) {
      // A transient fragment always has a live secondary; a recovery-mode
      // fragment may have lost its secondary (Section 3.3) and is then
      // finished by workers replaying their fetched dirty lists.
      EXPECT_NE(a.secondary, kInvalidInstance);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    SeedsAndVariants, RandomScheduleTest,
    ::testing::Combine(::testing::Values(1u, 2u, 3u, 4u, 5u, 6u),
                       ::testing::Values(0, 1, 2, 3, 4, 5)));

// ---- Randomized end-to-end simulations ------------------------------------------

class RandomSimTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomSimTest, FullSimPreservesConsistencyAndConverges) {
  const uint64_t seed = GetParam();
  Rng rng(seed);

  YcsbWorkload::Options wo;
  wo.num_records = 1500;
  wo.update_fraction = 0.02 + 0.2 * rng.NextDouble();
  SimOptions so;
  so.num_instances = 3 + rng.NextBounded(3);
  so.num_fragments = 32;
  so.num_client_objects = 2;
  so.closed_loop_threads = 4 + rng.NextBounded(12);
  so.num_recovery_workers = 1 + rng.NextBounded(3);
  so.policy = rng.NextBounded(2) == 0 ? RecoveryPolicy::GeminiO()
                                      : RecoveryPolicy::GeminiOW();
  so.crash_failures = rng.NextBounded(2) == 0;
  so.audit_invariants = true;
  so.seed = seed * 31;
  ClusterSim sim(so, std::make_shared<YcsbWorkload>(wo));

  // 1-2 random failures.
  const int failures = 1 + static_cast<int>(rng.NextBounded(2));
  for (int i = 0; i < failures; ++i) {
    const auto victim =
        static_cast<InstanceId>(rng.NextBounded(so.num_instances));
    const auto at = Seconds(5.0 + 10.0 * i + rng.NextDouble() * 3.0);
    const auto down = Seconds(1.0 + rng.NextDouble() * 5.0);
    sim.ScheduleFailure(victim, at, down);
  }
  sim.Run(Seconds(60));

  EXPECT_EQ(sim.metrics().stale.total_stale(), 0u) << "seed " << seed;
  // The cluster converges: no fragment stuck outside normal mode.
  EXPECT_TRUE(
      sim.coordinator().FragmentsInMode(FragmentMode::kTransient).empty());
  EXPECT_TRUE(
      sim.coordinator().FragmentsInMode(FragmentMode::kRecovery).empty());
  // Load kept flowing.
  EXPECT_GT(sim.metrics().ops.Total(), 5000u);
  // Structural invariants held on every monitor tick.
  for (const auto& v : sim.invariant_violations()) {
    ADD_FAILURE() << v.invariant << ": " << v.detail;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomSimTest,
                         ::testing::Values(11u, 22u, 33u, 44u));

}  // namespace
}  // namespace gemini
