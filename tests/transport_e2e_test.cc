// End-to-end transport tests: a real TransportServer (the geminid event
// loop) on an ephemeral loopback port, driven through TcpCacheBackend over
// actual TCP sockets — SET/GET/DELETE/CAS, a full IQ-lease cycle, Redleases,
// dirty lists, config ids, snapshot triggers, protocol-error handling,
// reconnection, the poll(2) fallback loop, and an unmodified GeminiClient
// running its request protocol against remote instances.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/cache/cache_instance.h"
#include "src/cache/snapshot.h"
#include "src/client/gemini_client.h"
#include "src/coordinator/coordinator.h"
#include "src/store/data_store.h"
#include "src/transport/server.h"
#include "src/transport/tcp_backend.h"
#include "src/transport/wire.h"

namespace gemini {
namespace {

constexpr OpContext kInternalCtx{kInternalConfigId, kInvalidFragment};

class TransportE2eTest : public ::testing::Test {
 protected:
  void StartServer(TransportServer::Options options = {}) {
    instance_ = std::make_unique<CacheInstance>(7, &clock_);
    options.port = 0;  // ephemeral
    server_ = std::make_unique<TransportServer>(instance_.get(), options);
    ASSERT_TRUE(server_->Start().ok());
    backend_ =
        std::make_unique<TcpCacheBackend>("127.0.0.1", server_->port());
    ASSERT_TRUE(backend_->Connect().ok());
  }

  void TearDown() override {
    if (backend_ != nullptr) backend_->Disconnect();
    if (server_ != nullptr) server_->Stop();
  }

  VirtualClock clock_;
  std::unique_ptr<CacheInstance> instance_;
  std::unique_ptr<TransportServer> server_;
  std::unique_ptr<TcpCacheBackend> backend_;
};

TEST_F(TransportE2eTest, HelloNegotiatesInstanceId) {
  StartServer();
  EXPECT_EQ(backend_->id(), 7u);
  EXPECT_TRUE(backend_->Ping().ok());
}

TEST_F(TransportE2eTest, SetGetDeleteRoundTrip) {
  StartServer();
  CacheValue v = CacheValue::OfData("payload", /*v=*/3);
  ASSERT_TRUE(backend_->Set(kInternalCtx, "k1", v).ok());

  auto got = backend_->Get(kInternalCtx, "k1");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->data, "payload");
  EXPECT_EQ(got->version, 3u);
  // The write really landed in the server-side instance.
  EXPECT_TRUE(instance_->ContainsRaw("k1"));

  ASSERT_TRUE(backend_->Delete(kInternalCtx, "k1").ok());
  EXPECT_EQ(backend_->Get(kInternalCtx, "k1").code(), Code::kNotFound);
  EXPECT_FALSE(instance_->ContainsRaw("k1"));
}

TEST_F(TransportE2eTest, BinaryAndEmptyPayloadsSurviveTheWire) {
  StartServer();
  const std::string binary("\x00\xFF\x7F\n\r\x01gemini\x00", 14);
  ASSERT_TRUE(
      backend_->Set(kInternalCtx, "bin", CacheValue::OfData(binary)).ok());
  auto got = backend_->Get(kInternalCtx, "bin");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->data, binary);

  // Size-only value (simulator idiom): zero-length payload, nonzero charge.
  ASSERT_TRUE(
      backend_->Set(kInternalCtx, "sz", CacheValue::OfSize(329, 5)).ok());
  got = backend_->Get(kInternalCtx, "sz");
  ASSERT_TRUE(got.ok());
  EXPECT_TRUE(got->data.empty());
  EXPECT_EQ(got->charged_bytes, 329u);
  EXPECT_EQ(got->version, 5u);
}

TEST_F(TransportE2eTest, CasReplacesOnlyOnVersionMatch) {
  StartServer();
  ASSERT_TRUE(
      backend_->Set(kInternalCtx, "k", CacheValue::OfData("v1", 1)).ok());
  EXPECT_EQ(backend_->Cas(kInternalCtx, "k", 99, CacheValue::OfData("x", 2))
                .code(),
            Code::kLeaseInvalid);
  ASSERT_TRUE(
      backend_->Cas(kInternalCtx, "k", 1, CacheValue::OfData("v2", 2)).ok());
  auto got = backend_->Get(kInternalCtx, "k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->data, "v2");
  EXPECT_EQ(backend_->Cas(kInternalCtx, "miss", 0, CacheValue::OfData("y"))
                .code(),
            Code::kNotFound);
}

TEST_F(TransportE2eTest, IqLeaseCycleOverTcp) {
  StartServer();
  // Miss grants an I lease...
  auto miss = backend_->IqGet(kInternalCtx, "key");
  ASSERT_TRUE(miss.ok());
  EXPECT_FALSE(miss->value.has_value());
  ASSERT_NE(miss->i_token, kNoLease);

  // ...a second session colliding on the same key is told to back off...
  EXPECT_EQ(backend_->IqGet(kInternalCtx, "key").code(), Code::kBackoff);

  // ...the holder installs the computed value and releases the lease...
  ASSERT_TRUE(backend_->IqSet(kInternalCtx, "key",
                              CacheValue::OfData("computed", 1),
                              miss->i_token)
                  .ok());

  // ...after which reads hit.
  auto hit = backend_->IqGet(kInternalCtx, "key");
  ASSERT_TRUE(hit.ok());
  ASSERT_TRUE(hit->value.has_value());
  EXPECT_EQ(hit->value->data, "computed");

  // Write path: Q lease, delete-and-release invalidates the entry.
  auto q = backend_->Qareg(kInternalCtx, "key");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(backend_->Dar(kInternalCtx, "key", *q).ok());
  auto after = backend_->IqGet(kInternalCtx, "key");
  ASSERT_TRUE(after.ok());
  EXPECT_FALSE(after->value.has_value());
  ASSERT_NE(after->i_token, kNoLease);
  // Release so later tests see a clean lease table.
  EXPECT_TRUE(backend_->IDelete(kInternalCtx, "key", after->i_token).ok());
}

TEST_F(TransportE2eTest, IqSetWithVoidedLeaseIsIgnored) {
  StartServer();
  auto miss = backend_->IqGet(kInternalCtx, "key");
  ASSERT_TRUE(miss.ok());
  // A concurrent write voids the I lease (Lemma 2)...
  auto q = backend_->Qareg(kInternalCtx, "key");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(backend_->Dar(kInternalCtx, "key", *q).ok());
  // ...so the stale insert must be dropped server-side.
  EXPECT_EQ(backend_->IqSet(kInternalCtx, "key", CacheValue::OfData("stale"),
                            miss->i_token)
                .code(),
            Code::kLeaseInvalid);
  EXPECT_FALSE(instance_->ContainsRaw("key"));
}

TEST_F(TransportE2eTest, RarInstallsUnderQLease) {
  StartServer();
  ASSERT_TRUE(
      backend_->Set(kInternalCtx, "key", CacheValue::OfData("old", 1)).ok());
  auto q = backend_->Qareg(kInternalCtx, "key");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(
      backend_->Rar(kInternalCtx, "key", CacheValue::OfData("new", 2), *q)
          .ok());
  auto got = backend_->Get(kInternalCtx, "key");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->data, "new");
}

TEST_F(TransportE2eTest, RedleaseCycleOverTcp) {
  StartServer();
  auto red = backend_->AcquireRed("dirty-list-key");
  ASSERT_TRUE(red.ok());
  EXPECT_EQ(backend_->AcquireRed("dirty-list-key").code(), Code::kBackoff);
  EXPECT_TRUE(backend_->RenewRed("dirty-list-key", *red).ok());
  EXPECT_TRUE(backend_->ReleaseRed("dirty-list-key", *red).ok());
  EXPECT_TRUE(backend_->AcquireRed("dirty-list-key").ok());
}

TEST_F(TransportE2eTest, DirtyListOpsAndConfigIds) {
  StartServer();
  EXPECT_EQ(backend_->DirtyListGet(kInternalConfigId, 3).code(),
            Code::kNotFound);
  ASSERT_TRUE(backend_->DirtyListAppend(kInternalConfigId, 3, "rec1").ok());
  ASSERT_TRUE(backend_->DirtyListAppend(kInternalConfigId, 3, "rec2").ok());
  auto list = backend_->DirtyListGet(kInternalConfigId, 3);
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list->data, "rec1rec2");

  auto id = backend_->RemoteConfigId();
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 0u);
  ASSERT_TRUE(backend_->BumpConfigId(41).ok());
  id = backend_->RemoteConfigId();
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(*id, 41u);
  EXPECT_EQ(instance_->latest_config_id(), 41u);
}

TEST_F(TransportE2eTest, StaleConfigIsReportedOverTheWire) {
  StartServer();
  instance_->ObserveConfigId(10);
  // A client at config id 4 touching a fragment-scoped key must be bounced.
  const OpContext stale{4, 0};
  EXPECT_EQ(backend_->Get(stale, "k").code(), Code::kStaleConfig);
}

TEST_F(TransportE2eTest, SnapshotTriggerPersistsAndReloads) {
  const std::string path =
      ::testing::TempDir() + "/transport_e2e_snapshot.bin";
  std::remove(path.c_str());
  TransportServer::Options options;
  options.snapshot_path = path;
  StartServer(options);

  ASSERT_TRUE(
      backend_->Set(kInternalCtx, "persisted", CacheValue::OfData("v", 9))
          .ok());
  ASSERT_TRUE(backend_->TriggerSnapshot().ok());

  CacheInstance restored(8, &clock_);
  ASSERT_TRUE(Snapshot::LoadFromFile(restored, path).ok());
  auto v = restored.RawGet("persisted");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->data, "v");
  std::remove(path.c_str());
}

TEST_F(TransportE2eTest, SnapshotTriggerWithoutPathIsRejected) {
  StartServer();  // no snapshot_path configured
  EXPECT_EQ(backend_->TriggerSnapshot().code(), Code::kInvalidArgument);
  EXPECT_EQ(backend_->TriggerSnapshot("/tmp/evil").code(),
            Code::kInvalidArgument);  // remote paths disallowed by default
}

TEST_F(TransportE2eTest, UnavailableInstanceMapsToUnavailable) {
  StartServer();
  instance_->Fail();
  EXPECT_EQ(backend_->Get(kInternalCtx, "k").code(), Code::kUnavailable);
  instance_->RecoverPersistent();
  EXPECT_EQ(backend_->Get(kInternalCtx, "k").code(), Code::kNotFound);
}

TEST_F(TransportE2eTest, ReconnectsAfterServerSideDrop) {
  StartServer();
  ASSERT_TRUE(
      backend_->Set(kInternalCtx, "k", CacheValue::OfData("v")).ok());
  // Simulate a drop by tearing down the client side of the connection.
  backend_->Disconnect();
  EXPECT_FALSE(backend_->connected());
  // auto_reconnect redials (and re-runs HELLO) on the next call.
  auto got = backend_->Get(kInternalCtx, "k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->data, "v");
  EXPECT_EQ(backend_->id(), 7u);
}

TEST_F(TransportE2eTest, ServerStopUnblocksAndRejectsNewWork) {
  StartServer();
  ASSERT_TRUE(backend_->Ping().ok());
  server_->Stop();
  EXPECT_FALSE(server_->running());
  // The dead endpoint maps to kUnavailable, the same code a failed
  // in-process instance returns — GeminiClient's failover handles both.
  EXPECT_EQ(backend_->Ping().code(), Code::kUnavailable);
}

TEST_F(TransportE2eTest, PollFallbackLoopServesTraffic) {
  TransportServer::Options options;
  options.use_poll_fallback = true;
  StartServer(options);
  ASSERT_TRUE(
      backend_->Set(kInternalCtx, "k", CacheValue::OfData("poll")).ok());
  auto got = backend_->Get(kInternalCtx, "k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->data, "poll");
  auto miss = backend_->IqGet(kInternalCtx, "other");
  ASSERT_TRUE(miss.ok());
  EXPECT_NE(miss->i_token, kNoLease);
}

TEST_F(TransportE2eTest, ManySequentialOpsOverOneConnection) {
  StartServer();
  for (int i = 0; i < 500; ++i) {
    const std::string key = "key" + std::to_string(i);
    ASSERT_TRUE(backend_
                    ->Set(kInternalCtx, key,
                          CacheValue::OfData(std::string(i % 64, 'x'),
                                             static_cast<Version>(i)))
                    .ok());
  }
  for (int i = 0; i < 500; ++i) {
    auto got = backend_->Get(kInternalCtx, "key" + std::to_string(i));
    ASSERT_TRUE(got.ok());
    EXPECT_EQ(got->version, static_cast<Version>(i));
  }
  EXPECT_EQ(instance_->stats().entry_count, 500u);
}

TEST_F(TransportE2eTest, ConcurrentBackendsSeeOneCoherentInstance) {
  StartServer();
  constexpr int kThreads = 4, kOps = 100;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([this, t] {
      TcpCacheBackend local("127.0.0.1", server_->port());
      for (int i = 0; i < kOps; ++i) {
        const std::string key =
            "t" + std::to_string(t) + "-" + std::to_string(i);
        ASSERT_TRUE(
            local.Set(kInternalCtx, key, CacheValue::OfData("v")).ok());
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(instance_->stats().entry_count,
            static_cast<uint64_t>(kThreads * kOps));
}

// Opens a plain blocking TCP socket to the loopback port — a stand-in for a
// hostile or broken client the TcpCacheBackend API (deliberately) can't be.
int RawConnect(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// Sends `bytes`, then reports true iff the server closed the connection
// (recv sees EOF) instead of answering.
bool SendAndExpectEof(uint16_t port, const std::string& bytes) {
  int fd = RawConnect(port);
  if (fd < 0) return false;
  if (::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL) !=
      static_cast<ssize_t>(bytes.size())) {
    ::close(fd);
    return false;
  }
  // Drain whatever the server sends until EOF; a server that keeps the
  // connection open would block here until the 5s receive timeout trips.
  timeval tv{5, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  char buf[256];
  ssize_t n;
  while ((n = ::recv(fd, buf, sizeof(buf), 0)) > 0) {
  }
  ::close(fd);
  return n == 0;
}

TEST_F(TransportE2eTest, GarbageFramesCloseConnectionServerSurvives) {
  StartServer();

  // An absurd frame length is a framing violation: drop the connection.
  std::string oversized;
  wire::PutU32(oversized, wire::kMaxFrameLen + 7);
  oversized += "XXXX";
  EXPECT_TRUE(SendAndExpectEof(server_->port(), oversized));

  // A well-formed non-HELLO first frame violates the handshake: drop.
  std::string ping_first;
  wire::AppendRequest(ping_first, wire::Op::kPing, "");
  EXPECT_TRUE(SendAndExpectEof(server_->port(), ping_first));

  EXPECT_GE(server_->stats().protocol_errors, 2u);
  // The well-behaved backend is unaffected throughout.
  ASSERT_TRUE(backend_->Ping().ok());
}

// ---- The tentpole promise: GeminiClient runs unchanged over TCP ------------

class RemoteClientTest : public ::testing::Test {
 protected:
  static constexpr size_t kInstances = 2;
  static constexpr size_t kFragments = 4;

  void SetUp() override {
    for (size_t i = 0; i < kInstances; ++i) {
      instances_.push_back(std::make_unique<CacheInstance>(
          static_cast<InstanceId>(i), &clock_));
      raw_.push_back(instances_.back().get());
      servers_.push_back(std::make_unique<TransportServer>(
          instances_.back().get(), TransportServer::Options{}));
      ASSERT_TRUE(servers_.back()->Start().ok());
      backends_.push_back(std::make_unique<TcpCacheBackend>(
          "127.0.0.1", servers_.back()->port()));
      // Connect eagerly so backend->id() reflects the remote instance before
      // the client starts routing.
      ASSERT_TRUE(backends_.back()->Connect().ok());
      remote_.push_back(backends_.back().get());
    }
    // The coordinator manages the *same* instances the servers host (it is
    // co-located with them in this process); the client reaches them only
    // through TCP.
    coordinator_ =
        std::make_unique<Coordinator>(&clock_, raw_, kFragments);
    client_ = std::make_unique<GeminiClient>(&clock_, coordinator_.get(),
                                             remote_, &store_);
    for (int i = 0; i < 50; ++i) {
      store_.Put("user" + std::to_string(i), "v" + std::to_string(i));
    }
  }

  void TearDown() override {
    for (auto& b : backends_) b->Disconnect();
    for (auto& s : servers_) s->Stop();
  }

  VirtualClock clock_;
  DataStore store_;
  std::vector<std::unique_ptr<CacheInstance>> instances_;
  std::vector<CacheInstance*> raw_;
  std::vector<std::unique_ptr<TransportServer>> servers_;
  std::vector<std::unique_ptr<TcpCacheBackend>> backends_;
  std::vector<CacheBackend*> remote_;
  std::unique_ptr<Coordinator> coordinator_;
  std::unique_ptr<GeminiClient> client_;
  Session session_;
};

TEST_F(RemoteClientTest, ReadMissFillsRemoteCacheThenHits) {
  auto r1 = client_->Read(session_, "user1");
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(r1->cache_hit);
  EXPECT_EQ(r1->value.data, "v1");

  auto r2 = client_->Read(session_, "user1");
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->cache_hit);
  EXPECT_EQ(r2->value.data, "v1");

  // The fill landed in whichever *server-side* instance owns the fragment.
  bool present = false;
  for (auto& inst : instances_) present |= inst->ContainsRaw("user1");
  EXPECT_TRUE(present);
}

TEST_F(RemoteClientTest, WriteInvalidatesThroughTheWire) {
  ASSERT_TRUE(client_->Read(session_, "user2").ok());
  ASSERT_TRUE(client_->Write(session_, "user2", std::string("v2b")).ok());
  // Write-around: the entry was deleted remotely; the next read refills.
  auto r = client_->Read(session_, "user2");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->cache_hit);
  EXPECT_EQ(r->value.data, "v2b");
}

TEST_F(RemoteClientTest, FailoverToTransientModeOverTcp) {
  ASSERT_TRUE(client_->Read(session_, "user3").ok());
  // Kill the instance process state (not the server): remote ops now return
  // kUnavailable, the coordinator publishes a transient configuration, and
  // the client fails over — all through real sockets.
  auto cfg = coordinator_->GetConfiguration();
  const FragmentId f = cfg->FragmentOf("user3");
  const InstanceId primary = cfg->fragment(f).primary;
  instances_[primary]->Fail();
  coordinator_->OnInstanceFailed(primary);

  auto r = client_->Read(session_, "user3");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->value.data, "v3");
  ASSERT_TRUE(client_->Write(session_, "user3", std::string("v3b")).ok());
  // The transient write left the key on the fragment's dirty list in the
  // secondary replica, reachable over the wire.
  auto dl = backends_[1 - primary]->DirtyListGet(
      coordinator_->GetConfiguration()->id(), f);
  ASSERT_TRUE(dl.ok());
  EXPECT_NE(dl->data.find("user3"), std::string::npos);
}

}  // namespace
}  // namespace gemini
