#include "src/common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

namespace gemini {
namespace {

TEST(Rng, DeterministicForSeed) {
  Rng a(123), b(123), c(124);
  for (int i = 0; i < 100; ++i) {
    const uint64_t va = a.Next();
    EXPECT_EQ(va, b.Next());
    (void)c.Next();
  }
  Rng a2(123), c2(124);
  bool any_diff = false;
  for (int i = 0; i < 100; ++i) {
    if (a2.Next() != c2.Next()) any_diff = true;
  }
  EXPECT_TRUE(any_diff);
}

TEST(Rng, BoundedStaysInRange) {
  Rng rng(7);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, BoundedRoughlyUniform) {
  Rng rng(11);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.NextBounded(10)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
  }
}

TEST(Rng, ExponentialMeanMatches) {
  Rng rng(13);
  double sum = 0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.NextExponential(19.0);
  EXPECT_NEAR(sum / n, 19.0, 0.5);
}

TEST(Zipfian, RankZeroMostPopular) {
  Zipfian z(1000, 0.99);
  Rng rng(1);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 100000; ++i) ++counts[z.Next(rng)];
  EXPECT_GT(counts[0], counts[1]);
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[1], counts[100]);
}

TEST(Zipfian, StaysInRange) {
  Zipfian z(50, 0.8);
  Rng rng(2);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.Next(rng), 50u);
}

// Zipf(theta) frequency of the most popular item should be ~ 1/zeta(n,theta).
class ZipfianSkewTest : public ::testing::TestWithParam<double> {};

TEST_P(ZipfianSkewTest, HeadMassMatchesTheory) {
  const double theta = GetParam();
  const uint64_t n = 10000;
  Zipfian z(n, theta);
  Rng rng(42);
  const int draws = 200000;
  int head = 0;
  for (int i = 0; i < draws; ++i) {
    if (z.Next(rng) == 0) ++head;
  }
  double zeta = 0;
  for (uint64_t i = 1; i <= n; ++i) zeta += 1.0 / std::pow(double(i), theta);
  const double expected = 1.0 / zeta;
  EXPECT_NEAR(double(head) / draws, expected, expected * 0.15 + 0.002);
}

INSTANTIATE_TEST_SUITE_P(Thetas, ZipfianSkewTest,
                         ::testing::Values(0.5, 0.7, 0.9, 0.99));

TEST(ScrambledZipfian, SpreadsHotKeys) {
  // The hottest ranks should not map to adjacent ids.
  ScrambledZipfian z(1'000'000, 0.99);
  Rng rng(3);
  std::map<uint64_t, int> counts;
  for (int i = 0; i < 50000; ++i) ++counts[z.Next(rng)];
  // Find the two hottest ids; they should be far apart with high probability.
  uint64_t top1 = 0, top2 = 0;
  int c1 = -1, c2 = -1;
  for (auto& [id, c] : counts) {
    if (c > c1) {
      top2 = top1;
      c2 = c1;
      top1 = id;
      c1 = c;
    } else if (c > c2) {
      top2 = id;
      c2 = c;
    }
  }
  EXPECT_GT(top1 > top2 ? top1 - top2 : top2 - top1, 1000u);
}

TEST(GeneralizedPareto, MeanApproximatesModel) {
  // GPD mean = mu + sigma / (1 - xi) for xi < 1.
  GeneralizedPareto gpd(0.0, 214.476, 0.348238);
  Rng rng(5);
  double sum = 0;
  const int n = 300000;
  for (int i = 0; i < n; ++i) sum += gpd.Next(rng);
  const double expected = 214.476 / (1.0 - 0.348238);  // ~329 (paper's mean)
  EXPECT_NEAR(sum / n, expected, expected * 0.05);
}

TEST(GeneralizedExtremeValue, MeanApproximatesModel) {
  // GEV mean = mu + sigma * (Gamma(1-xi) - 1) / xi.
  GeneralizedExtremeValue gev(30.7984, 8.20449, 0.078688);
  Rng rng(6);
  double sum = 0;
  const int n = 300000;
  for (int i = 0; i < n; ++i) sum += gev.Next(rng);
  const double expected =
      30.7984 + 8.20449 * (std::tgamma(1.0 - 0.078688) - 1.0) / 0.078688;
  EXPECT_NEAR(sum / n, expected, expected * 0.05);  // ~36 (paper's mean)
}

TEST(Mix64, Bijective64BitMixing) {
  // Distinct inputs map to distinct outputs (spot check) and outputs spread.
  std::map<uint64_t, uint64_t> seen;
  for (uint64_t i = 0; i < 10000; ++i) {
    const uint64_t m = Mix64(i);
    EXPECT_EQ(seen.count(m), 0u);
    seen[m] = i;
  }
}

}  // namespace
}  // namespace gemini
