// Write-through policy tests (extension; the paper evaluates write-around
// and notes the write-through implementation "is different" — Section 2).
// A write-through write installs the post-update value in the cache under
// the same Q lease (replace-and-release) instead of deleting the entry.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/client/gemini_client.h"
#include "src/consistency/stale_read_checker.h"
#include "src/coordinator/coordinator.h"
#include "src/recovery/recovery_worker.h"

namespace gemini {
namespace {

// ---- Instance-level Rar primitive ---------------------------------------------

class RarTest : public ::testing::Test {
 protected:
  RarTest() : inst_(0, &clock_) {
    inst_.GrantFragmentLease(0, 1, clock_.Now() + Seconds(3600), 1);
  }
  OpContext Ctx() { return OpContext{1, 0}; }
  VirtualClock clock_;
  CacheInstance inst_;
};

TEST_F(RarTest, InstallsValueAndReleasesQ) {
  ASSERT_TRUE(inst_.Set(Ctx(), "k", CacheValue::OfData("old", 1)).ok());
  auto q = inst_.Qareg(Ctx(), "k");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(inst_.Rar(Ctx(), "k", CacheValue::OfData("new", 2), *q).ok());
  auto v = inst_.Get(Ctx(), "k");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->data, "new");
  EXPECT_EQ(v->version, 2u);
  // Q released: an I lease is grantable again.
  EXPECT_TRUE(inst_.IqGet(Ctx(), "missing").ok());
  EXPECT_TRUE(inst_.Qareg(Ctx(), "k").ok());
}

TEST_F(RarTest, ExpiredQLeaseRefusesInstall) {
  ASSERT_TRUE(inst_.Set(Ctx(), "k", CacheValue::OfData("old", 1)).ok());
  auto q = inst_.Qareg(Ctx(), "k");
  clock_.Advance(inst_.options().lease_options.q_lease_lifetime + 1);
  EXPECT_EQ(inst_.Rar(Ctx(), "k", CacheValue::OfData("new", 2), *q).code(),
            Code::kLeaseInvalid);
  // The expiry rule deleted the (potentially stale) entry.
  EXPECT_EQ(inst_.Get(Ctx(), "k").code(), Code::kNotFound);
}

TEST_F(RarTest, RarVoidsPendingReaderInsert) {
  // Same race as Lemma 2 Case II but with a value install instead of a
  // delete: the reader's stale insert must still be dropped.
  auto rg = inst_.IqGet(Ctx(), "k");
  ASSERT_TRUE(rg.ok());
  auto q = inst_.Qareg(Ctx(), "k");
  ASSERT_TRUE(inst_.Rar(Ctx(), "k", CacheValue::OfData("new", 2), *q).ok());
  EXPECT_EQ(
      inst_.IqSet(Ctx(), "k", CacheValue::OfData("stale", 1), rg->i_token)
          .code(),
      Code::kLeaseInvalid);
  EXPECT_EQ(inst_.Get(Ctx(), "k")->data, "new");
}

// ---- Full-stack write-through --------------------------------------------------

class WriteThroughTest : public ::testing::Test {
 protected:
  static constexpr size_t kInstances = 3;
  static constexpr size_t kFragments = 6;

  void Build(RecoveryPolicy policy = RecoveryPolicy::GeminiO()) {
    for (size_t i = 0; i < kInstances; ++i) {
      instances_.push_back(std::make_unique<CacheInstance>(
          static_cast<InstanceId>(i), &clock_));
      raw_.push_back(instances_.back().get());
    }
    Coordinator::Options opts;
    opts.policy = policy;
    coordinator_ =
        std::make_unique<Coordinator>(&clock_, raw_, kFragments, opts);
    GeminiClient::Options copts;
    copts.write_policy = WritePolicy::kWriteThrough;
    copts.working_set_transfer = policy.working_set_transfer;
    client_ = std::make_unique<GeminiClient>(&clock_, coordinator_.get(),
                                             raw_, &store_, copts);
    RecoveryWorker::Options wopts;
    wopts.overwrite_dirty = policy.overwrite_dirty;
    worker_ = std::make_unique<RecoveryWorker>(&clock_, coordinator_.get(),
                                               raw_, wopts);
    checker_ = std::make_unique<StaleReadChecker>(&store_);
    for (int i = 0; i < 200; ++i) {
      store_.Put("user" + std::to_string(i), "v0");
    }
  }

  std::string KeyOnInstance(InstanceId instance) {
    auto cfg = coordinator_->GetConfiguration();
    for (int i = 0; i < 200; ++i) {
      std::string key = "user" + std::to_string(i);
      if (cfg->fragment(cfg->FragmentOf(key)).primary == instance) return key;
    }
    ADD_FAILURE();
    return "";
  }

  void DrainWorker() {
    Session s;
    for (int guard = 0; guard < 10000; ++guard) {
      if (!worker_->has_work() &&
          !worker_->TryAdoptFragment(s).has_value()) {
        return;
      }
      (void)worker_->Step(s);
    }
    FAIL();
  }

  VirtualClock clock_;
  DataStore store_;
  std::vector<std::unique_ptr<CacheInstance>> instances_;
  std::vector<CacheInstance*> raw_;
  std::unique_ptr<Coordinator> coordinator_;
  std::unique_ptr<GeminiClient> client_;
  std::unique_ptr<RecoveryWorker> worker_;
  std::unique_ptr<StaleReadChecker> checker_;
  Session session_;
};

TEST_F(WriteThroughTest, WriteLeavesFreshValueCached) {
  Build();
  const std::string key = KeyOnInstance(0);
  ASSERT_TRUE(client_->Write(session_, key, "fresh").ok());
  // No store query needed: the write installed the value.
  const auto queries_before = store_.stats().queries;
  auto r = client_->Read(session_, key);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->cache_hit);
  EXPECT_EQ(r->value.data, "fresh");
  EXPECT_EQ(r->value.version, store_.VersionOf(key));
  EXPECT_EQ(store_.stats().queries, queries_before);
}

TEST_F(WriteThroughTest, TransientWritesInstallInSecondaryAndStayDirty) {
  Build();
  const std::string key = KeyOnInstance(0);
  (void)client_->Read(session_, key);  // stale copy persists in primary
  coordinator_->OnInstanceFailed(0);
  ASSERT_TRUE(client_->Write(session_, key, "during-failure").ok());
  // Served as a hit from the secondary without a store round trip.
  auto r = client_->Read(session_, key);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->cache_hit);
  EXPECT_EQ(r->value.data, "during-failure");
  // And recorded dirty for the primary's recovery.
  const FragmentId f = coordinator_->GetConfiguration()->FragmentOf(key);
  const InstanceId sec =
      coordinator_->GetConfiguration()->fragment(f).secondary;
  OpContext internal{kInternalConfigId, kInvalidFragment};
  auto payload = raw_[sec]->Get(internal, DirtyListKey(f));
  ASSERT_TRUE(payload.ok());
  EXPECT_TRUE(DirtyList::Parse(payload->data)->Contains(key));
}

TEST_F(WriteThroughTest, GeminiOOverwriteRestoresRealValues) {
  // The payoff of write-through + Gemini-O: the secondary holds the real
  // latest value, so the recovery worker's overwrite repopulates the
  // primary without any data store traffic.
  Build(RecoveryPolicy::GeminiO());
  const std::string key = KeyOnInstance(0);
  (void)client_->Read(session_, key);
  coordinator_->OnInstanceFailed(0);
  ASSERT_TRUE(client_->Write(session_, key, "newest").ok());
  coordinator_->OnInstanceRecovered(0);
  DrainWorker();
  const auto queries_before = store_.stats().queries;
  auto r = client_->Read(session_, key);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->cache_hit);
  EXPECT_EQ(r->value.data, "newest");
  EXPECT_EQ(store_.stats().queries, queries_before);
  EXPECT_FALSE(checker_->OnRead(clock_.Now(), key, r->value.version));
}

TEST_F(WriteThroughTest, RecoveryModeWriteInstallsInPrimary) {
  Build();
  const std::string key = KeyOnInstance(0);
  (void)client_->Read(session_, key);
  coordinator_->OnInstanceFailed(0);
  ASSERT_TRUE(client_->Write(session_, key).ok());
  coordinator_->OnInstanceRecovered(0);
  ASSERT_TRUE(client_->Write(session_, key, "recovery-write").ok());
  auto r = client_->Read(session_, key);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->cache_hit);
  EXPECT_EQ(r->value.data, "recovery-write");
  EXPECT_EQ(r->value.version, store_.VersionOf(key));
}

TEST_F(WriteThroughTest, ConsistentAcrossFailureEpisode) {
  Build();
  std::vector<std::string> keys;
  auto cfg = coordinator_->GetConfiguration();
  for (int i = 0; i < 200 && keys.size() < 8; ++i) {
    std::string key = "user" + std::to_string(i);
    if (cfg->fragment(cfg->FragmentOf(key)).primary == 0) {
      keys.push_back(std::move(key));
    }
  }
  for (const auto& k : keys) (void)client_->Read(session_, k);
  coordinator_->OnInstanceFailed(0);
  for (const auto& k : keys) {
    ASSERT_TRUE(client_->Write(session_, k, "w1-" + k).ok());
  }
  coordinator_->OnInstanceRecovered(0);
  for (const auto& k : keys) {
    auto r = client_->Read(session_, k);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(checker_->OnRead(clock_.Now(), k, r->value.version)) << k;
    EXPECT_EQ(r->value.data, "w1-" + k);
  }
  DrainWorker();
  EXPECT_EQ(checker_->total_stale(), 0u);
}

}  // namespace
}  // namespace gemini
