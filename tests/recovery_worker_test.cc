// RecoveryWorker tests (Algorithm 3): Redlease mutual exclusion, overwrite
// vs invalidate, completion notification, idempotent replay, abandonment.
#include "src/recovery/recovery_worker.h"

#include "src/coordinator/coordinator.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/client/gemini_client.h"

#include "src/coordinator/coordinator.h"

namespace gemini {
namespace {

class RecoveryWorkerTest : public ::testing::Test {
 protected:
  static constexpr size_t kInstances = 3;
  static constexpr size_t kFragments = 6;

  void Build(RecoveryPolicy policy, RecoveryWorker::Options wopts = {}) {
    policy_ = policy;
    instances_.clear();
    raw_.clear();
    for (size_t i = 0; i < kInstances; ++i) {
      instances_.push_back(std::make_unique<CacheInstance>(
          static_cast<InstanceId>(i), &clock_));
      raw_.push_back(instances_.back().get());
    }
    Coordinator::Options opts;
    opts.policy = policy;
    coordinator_ =
        std::make_unique<Coordinator>(&clock_, raw_, kFragments, opts);
    GeminiClient::Options copts;
    copts.working_set_transfer = policy.working_set_transfer;
    client_ = std::make_unique<GeminiClient>(&clock_, coordinator_.get(),
                                             raw_, &store_, copts);
    wopts.overwrite_dirty = policy.overwrite_dirty;
    worker_ = std::make_unique<RecoveryWorker>(&clock_, coordinator_.get(),
                                               raw_, wopts);
    for (int i = 0; i < 400; ++i) {
      store_.Put("user" + std::to_string(i), "v" + std::to_string(i));
    }
  }

  // Keys of instance-0 fragments, dirtied during an emulated failure.
  std::vector<std::string> DirtyInstance0Keys(int want) {
    std::vector<std::string> keys;
    auto cfg = coordinator_->GetConfiguration();
    for (int i = 0; i < 400 && static_cast<int>(keys.size()) < want; ++i) {
      std::string key = "user" + std::to_string(i);
      if (cfg->fragment(cfg->FragmentOf(key)).primary == 0) {
        keys.push_back(std::move(key));
      }
    }
    return keys;
  }

  // Runs the worker until it goes idle (nothing to adopt).
  void DrainWorker() {
    Session s;
    for (int guard = 0; guard < 10000; ++guard) {
      if (!worker_->has_work() &&
          !worker_->TryAdoptFragment(s).has_value()) {
        return;
      }
      (void)worker_->Step(s);
    }
    FAIL() << "worker did not drain";
  }

  RecoveryPolicy policy_;
  VirtualClock clock_;
  DataStore store_;
  std::vector<std::unique_ptr<CacheInstance>> instances_;
  std::vector<CacheInstance*> raw_;
  std::unique_ptr<Coordinator> coordinator_;
  std::unique_ptr<GeminiClient> client_;
  std::unique_ptr<RecoveryWorker> worker_;
  Session session_;
};

TEST_F(RecoveryWorkerTest, NothingToAdoptWithoutRecoveryFragments) {
  Build(RecoveryPolicy::GeminiO());
  EXPECT_FALSE(worker_->TryAdoptFragment(session_).has_value());
  EXPECT_TRUE(worker_->Step(session_));  // no work -> trivially done
}

TEST_F(RecoveryWorkerTest, DrainsDirtyListsAndCompletesRecovery) {
  Build(RecoveryPolicy::GeminiO());
  auto keys = DirtyInstance0Keys(5);
  ASSERT_FALSE(keys.empty());
  for (const auto& k : keys) (void)client_->Read(session_, k);  // warm primary
  coordinator_->OnInstanceFailed(0);
  for (const auto& k : keys) ASSERT_TRUE(client_->Write(session_, k).ok());
  // Repopulate the secondary with fresh values for some keys.
  for (const auto& k : keys) (void)client_->Read(session_, k);
  coordinator_->OnInstanceRecovered(0);
  ASSERT_FALSE(coordinator_->FragmentsInMode(FragmentMode::kRecovery).empty());

  DrainWorker();
  EXPECT_TRUE(coordinator_->FragmentsInMode(FragmentMode::kRecovery).empty());
  EXPECT_TRUE(coordinator_->FragmentsInMode(FragmentMode::kTransient).empty());
  EXPECT_GT(worker_->stats().fragments_recovered, 0u);
  // Dirty lists deleted from the secondaries.
  // (raw containment checked below)
  for (FragmentId f = 0; f < kFragments; ++f) {
    for (auto* inst : raw_) {
      EXPECT_FALSE(inst->ContainsRaw(DirtyListKey(f)));
    }
  }
}

TEST_F(RecoveryWorkerTest, OverwriteInstallsLatestSecondaryValue) {
  Build(RecoveryPolicy::GeminiO());
  auto keys = DirtyInstance0Keys(3);
  ASSERT_FALSE(keys.empty());
  const std::string key = keys[0];
  (void)client_->Read(session_, key);  // old value in primary
  coordinator_->OnInstanceFailed(0);
  ASSERT_TRUE(client_->Write(session_, key, "fresh").ok());
  (void)client_->Read(session_, key);  // fresh value into secondary
  coordinator_->OnInstanceRecovered(0);

  DrainWorker();
  EXPECT_GT(worker_->stats().keys_overwritten, 0u);
  // The primary now holds the fresh value; a client read hits it without a
  // store query.
  const auto queries_before = store_.stats().queries;
  auto r = client_->Read(session_, key);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->cache_hit);
  EXPECT_EQ(r->value.data, "fresh");
  EXPECT_EQ(r->value.version, store_.VersionOf(key));
  EXPECT_EQ(store_.stats().queries, queries_before);
}

TEST_F(RecoveryWorkerTest, OverwriteDeletesWhenSecondaryLacksValue) {
  Build(RecoveryPolicy::GeminiO());
  auto keys = DirtyInstance0Keys(3);
  ASSERT_FALSE(keys.empty());
  const std::string key = keys[0];
  (void)client_->Read(session_, key);
  coordinator_->OnInstanceFailed(0);
  ASSERT_TRUE(client_->Write(session_, key, "fresh").ok());
  // No read afterwards: the secondary holds no value for the key.
  coordinator_->OnInstanceRecovered(0);

  DrainWorker();
  EXPECT_GT(worker_->stats().keys_deleted, 0u);
  EXPECT_FALSE(raw_[0]->ContainsRaw(key));
  // A later read refills from the store with the fresh value.
  auto r = client_->Read(session_, key);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->value.data, "fresh");
}

TEST_F(RecoveryWorkerTest, InvalidateModeDeletesWithoutOverwrite) {
  Build(RecoveryPolicy::GeminiI());
  auto keys = DirtyInstance0Keys(3);
  ASSERT_FALSE(keys.empty());
  const std::string key = keys[0];
  (void)client_->Read(session_, key);
  coordinator_->OnInstanceFailed(0);
  ASSERT_TRUE(client_->Write(session_, key, "fresh").ok());
  (void)client_->Read(session_, key);  // secondary holds the fresh value
  coordinator_->OnInstanceRecovered(0);

  DrainWorker();
  EXPECT_EQ(worker_->stats().keys_overwritten, 0u);
  EXPECT_GT(worker_->stats().keys_deleted, 0u);
  EXPECT_FALSE(raw_[0]->ContainsRaw(key));
}

TEST_F(RecoveryWorkerTest, RedleaseKeepsSecondWorkerOut) {
  Build(RecoveryPolicy::GeminiO());
  auto keys = DirtyInstance0Keys(1);
  ASSERT_FALSE(keys.empty());
  (void)client_->Read(session_, keys[0]);
  coordinator_->OnInstanceFailed(0);
  ASSERT_TRUE(client_->Write(session_, keys[0]).ok());
  coordinator_->OnInstanceRecovered(0);

  auto adopted = worker_->TryAdoptFragment(session_);
  ASSERT_TRUE(adopted.has_value());

  RecoveryWorker second(&clock_, coordinator_.get(), raw_);
  Session s2;
  auto other = second.TryAdoptFragment(s2);
  // The second worker must not adopt the same fragment.
  if (other.has_value()) {
    EXPECT_NE(*other, *adopted);
  }
  EXPECT_GE(second.stats().redlease_conflicts +
                (other.has_value() ? 1u : 0u),
            1u);
}

TEST_F(RecoveryWorkerTest, ExpiredRedleaseAbandonsAndAnotherTakesOver) {
  RecoveryWorker::Options wopts;
  wopts.keys_per_step = 1;
  Build(RecoveryPolicy::GeminiO(), wopts);
  auto keys = DirtyInstance0Keys(4);
  ASSERT_GE(keys.size(), 2u);
  for (const auto& k : keys) (void)client_->Read(session_, k);
  coordinator_->OnInstanceFailed(0);
  for (const auto& k : keys) ASSERT_TRUE(client_->Write(session_, k).ok());
  coordinator_->OnInstanceRecovered(0);

  ASSERT_TRUE(worker_->TryAdoptFragment(session_).has_value());
  // Let the Redlease lapse mid-processing (worker crash emulation).
  clock_.Advance(Seconds(10));
  EXPECT_TRUE(worker_->Step(session_));  // abandons: lease renewal fails
  EXPECT_GE(worker_->stats().fragments_abandoned, 1u);

  // Replay by a fresh worker is idempotent and completes recovery.
  RecoveryWorker second(&clock_, coordinator_.get(), raw_);
  Session s2;
  for (int guard = 0; guard < 10000; ++guard) {
    if (!second.has_work() && !second.TryAdoptFragment(s2).has_value()) break;
    (void)second.Step(s2);
  }
  EXPECT_TRUE(coordinator_->FragmentsInMode(FragmentMode::kRecovery).empty());
}

TEST_F(RecoveryWorkerTest, AbandonsWhenPrimaryFailsAgain) {
  Build(RecoveryPolicy::GeminiO());
  auto keys = DirtyInstance0Keys(2);
  ASSERT_FALSE(keys.empty());
  (void)client_->Read(session_, keys[0]);
  coordinator_->OnInstanceFailed(0);
  ASSERT_TRUE(client_->Write(session_, keys[0]).ok());
  coordinator_->OnInstanceRecovered(0);
  ASSERT_TRUE(worker_->TryAdoptFragment(session_).has_value());

  // Transition (5): the primary fails again mid-recovery. The instance
  // actually crashes here so the worker's next touch observes kUnavailable.
  raw_[0]->Fail();
  coordinator_->OnInstanceFailed(0);
  EXPECT_TRUE(worker_->Step(session_));
  EXPECT_FALSE(worker_->has_work());
  EXPECT_GE(worker_->stats().fragments_abandoned, 1u);
}

TEST_F(RecoveryWorkerTest, MissingDirtyListReportsUnavailable) {
  Build(RecoveryPolicy::GeminiO());
  auto keys = DirtyInstance0Keys(1);
  ASSERT_FALSE(keys.empty());
  const FragmentId f =
      coordinator_->GetConfiguration()->FragmentOf(keys[0]);
  (void)client_->Read(session_, keys[0]);
  coordinator_->OnInstanceFailed(0);
  ASSERT_TRUE(client_->Write(session_, keys[0]).ok());
  coordinator_->OnInstanceRecovered(0);
  ASSERT_EQ(coordinator_->ModeOf(f), FragmentMode::kRecovery);

  // Evict the list before any worker adopts the fragment.
  auto cfg = coordinator_->GetConfiguration();
  const InstanceId sec = cfg->fragment(f).secondary;
  OpContext internal{kInternalConfigId, kInvalidFragment};
  ASSERT_TRUE(raw_[sec]->Delete(internal, DirtyListKey(f)).ok());

  DrainWorker();
  // The fragment was discarded rather than recovered.
  EXPECT_EQ(coordinator_->ModeOf(f), FragmentMode::kNormal);
  EXPECT_GE(coordinator_->discarded_fragment_count(), 1u);
}

TEST_F(RecoveryWorkerTest, StepsAreBoundedByKeysPerStep) {
  RecoveryWorker::Options wopts;
  wopts.keys_per_step = 2;
  Build(RecoveryPolicy::GeminiI(), wopts);
  auto keys = DirtyInstance0Keys(6);
  ASSERT_GE(keys.size(), 3u);
  for (const auto& k : keys) (void)client_->Read(session_, k);
  coordinator_->OnInstanceFailed(0);
  for (const auto& k : keys) ASSERT_TRUE(client_->Write(session_, k).ok());
  coordinator_->OnInstanceRecovered(0);

  // All 6 keys land on instance-0 fragments; at least one fragment has >= 2
  // dirty keys, so at least one Step() returns false (not finished).
  bool saw_unfinished = false;
  Session s;
  for (int guard = 0; guard < 1000; ++guard) {
    if (!worker_->has_work() && !worker_->TryAdoptFragment(s).has_value()) {
      break;
    }
    if (!worker_->Step(s)) saw_unfinished = true;
  }
  EXPECT_TRUE(coordinator_->FragmentsInMode(FragmentMode::kRecovery).empty());
  (void)saw_unfinished;  // property checked only when a fragment had >1 key
}

}  // namespace
}  // namespace gemini
