// RecoveryWorker tests (Algorithm 3): Redlease mutual exclusion, overwrite
// vs invalidate, completion notification, idempotent replay, abandonment,
// and the ±W working-set phase (Section 3.2.2): hottest-first restore
// order, termination reporting, and clean abort when the secondary dies
// mid-stream.
#include "src/recovery/recovery_worker.h"

#include "src/coordinator/coordinator.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/client/gemini_client.h"

#include "src/coordinator/coordinator.h"

namespace gemini {
namespace {

class RecoveryWorkerTest : public ::testing::Test {
 protected:
  static constexpr size_t kInstances = 3;
  static constexpr size_t kFragments = 6;

  void Build(RecoveryPolicy policy, RecoveryWorker::Options wopts = {}) {
    policy_ = policy;
    instances_.clear();
    raw_.clear();
    for (size_t i = 0; i < kInstances; ++i) {
      instances_.push_back(std::make_unique<CacheInstance>(
          static_cast<InstanceId>(i), &clock_));
      raw_.push_back(instances_.back().get());
    }
    Coordinator::Options opts;
    opts.policy = policy;
    coordinator_ =
        std::make_unique<Coordinator>(&clock_, raw_, kFragments, opts);
    GeminiClient::Options copts;
    copts.working_set_transfer = policy.working_set_transfer;
    client_ = std::make_unique<GeminiClient>(&clock_, coordinator_.get(),
                                             raw_, &store_, copts);
    wopts.overwrite_dirty = policy.overwrite_dirty;
    worker_ = std::make_unique<RecoveryWorker>(&clock_, coordinator_.get(),
                                               raw_, wopts);
    for (int i = 0; i < 400; ++i) {
      store_.Put("user" + std::to_string(i), "v" + std::to_string(i));
    }
  }

  // Keys of instance-0 fragments, dirtied during an emulated failure.
  std::vector<std::string> DirtyInstance0Keys(int want) {
    std::vector<std::string> keys;
    auto cfg = coordinator_->GetConfiguration();
    for (int i = 0; i < 400 && static_cast<int>(keys.size()) < want; ++i) {
      std::string key = "user" + std::to_string(i);
      if (cfg->fragment(cfg->FragmentOf(key)).primary == 0) {
        keys.push_back(std::move(key));
      }
    }
    return keys;
  }

  // Runs the worker until it goes idle (nothing to adopt).
  void DrainWorker() {
    Session s;
    for (int guard = 0; guard < 10000; ++guard) {
      if (!worker_->has_work() &&
          !worker_->TryAdoptFragment(s).has_value()) {
        return;
      }
      (void)worker_->Step(s);
    }
    FAIL() << "worker did not drain";
  }

  RecoveryPolicy policy_;
  VirtualClock clock_;
  DataStore store_;
  std::vector<std::unique_ptr<CacheInstance>> instances_;
  std::vector<CacheInstance*> raw_;
  std::unique_ptr<Coordinator> coordinator_;
  std::unique_ptr<GeminiClient> client_;
  std::unique_ptr<RecoveryWorker> worker_;
  Session session_;
};

TEST_F(RecoveryWorkerTest, NothingToAdoptWithoutRecoveryFragments) {
  Build(RecoveryPolicy::GeminiO());
  EXPECT_FALSE(worker_->TryAdoptFragment(session_).has_value());
  EXPECT_TRUE(worker_->Step(session_));  // no work -> trivially done
}

TEST_F(RecoveryWorkerTest, DrainsDirtyListsAndCompletesRecovery) {
  Build(RecoveryPolicy::GeminiO());
  auto keys = DirtyInstance0Keys(5);
  ASSERT_FALSE(keys.empty());
  for (const auto& k : keys) (void)client_->Read(session_, k);  // warm primary
  coordinator_->OnInstanceFailed(0);
  for (const auto& k : keys) ASSERT_TRUE(client_->Write(session_, k).ok());
  // Repopulate the secondary with fresh values for some keys.
  for (const auto& k : keys) (void)client_->Read(session_, k);
  coordinator_->OnInstanceRecovered(0);
  ASSERT_FALSE(coordinator_->FragmentsInMode(FragmentMode::kRecovery).empty());

  DrainWorker();
  EXPECT_TRUE(coordinator_->FragmentsInMode(FragmentMode::kRecovery).empty());
  EXPECT_TRUE(coordinator_->FragmentsInMode(FragmentMode::kTransient).empty());
  EXPECT_GT(worker_->stats().fragments_recovered, 0u);
  // Dirty lists deleted from the secondaries.
  // (raw containment checked below)
  for (FragmentId f = 0; f < kFragments; ++f) {
    for (auto* inst : raw_) {
      EXPECT_FALSE(inst->ContainsRaw(DirtyListKey(f)));
    }
  }
}

TEST_F(RecoveryWorkerTest, OverwriteInstallsLatestSecondaryValue) {
  Build(RecoveryPolicy::GeminiO());
  auto keys = DirtyInstance0Keys(3);
  ASSERT_FALSE(keys.empty());
  const std::string key = keys[0];
  (void)client_->Read(session_, key);  // old value in primary
  coordinator_->OnInstanceFailed(0);
  ASSERT_TRUE(client_->Write(session_, key, "fresh").ok());
  (void)client_->Read(session_, key);  // fresh value into secondary
  coordinator_->OnInstanceRecovered(0);

  DrainWorker();
  EXPECT_GT(worker_->stats().keys_overwritten, 0u);
  // The primary now holds the fresh value; a client read hits it without a
  // store query.
  const auto queries_before = store_.stats().queries;
  auto r = client_->Read(session_, key);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->cache_hit);
  EXPECT_EQ(r->value.data, "fresh");
  EXPECT_EQ(r->value.version, store_.VersionOf(key));
  EXPECT_EQ(store_.stats().queries, queries_before);
}

TEST_F(RecoveryWorkerTest, OverwriteDeletesWhenSecondaryLacksValue) {
  Build(RecoveryPolicy::GeminiO());
  auto keys = DirtyInstance0Keys(3);
  ASSERT_FALSE(keys.empty());
  const std::string key = keys[0];
  (void)client_->Read(session_, key);
  coordinator_->OnInstanceFailed(0);
  ASSERT_TRUE(client_->Write(session_, key, "fresh").ok());
  // No read afterwards: the secondary holds no value for the key.
  coordinator_->OnInstanceRecovered(0);

  DrainWorker();
  EXPECT_GT(worker_->stats().keys_deleted, 0u);
  EXPECT_FALSE(raw_[0]->ContainsRaw(key));
  // A later read refills from the store with the fresh value.
  auto r = client_->Read(session_, key);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->value.data, "fresh");
}

TEST_F(RecoveryWorkerTest, InvalidateModeDeletesWithoutOverwrite) {
  Build(RecoveryPolicy::GeminiI());
  auto keys = DirtyInstance0Keys(3);
  ASSERT_FALSE(keys.empty());
  const std::string key = keys[0];
  (void)client_->Read(session_, key);
  coordinator_->OnInstanceFailed(0);
  ASSERT_TRUE(client_->Write(session_, key, "fresh").ok());
  (void)client_->Read(session_, key);  // secondary holds the fresh value
  coordinator_->OnInstanceRecovered(0);

  DrainWorker();
  EXPECT_EQ(worker_->stats().keys_overwritten, 0u);
  EXPECT_GT(worker_->stats().keys_deleted, 0u);
  EXPECT_FALSE(raw_[0]->ContainsRaw(key));
}

TEST_F(RecoveryWorkerTest, RedleaseKeepsSecondWorkerOut) {
  Build(RecoveryPolicy::GeminiO());
  auto keys = DirtyInstance0Keys(1);
  ASSERT_FALSE(keys.empty());
  (void)client_->Read(session_, keys[0]);
  coordinator_->OnInstanceFailed(0);
  ASSERT_TRUE(client_->Write(session_, keys[0]).ok());
  coordinator_->OnInstanceRecovered(0);

  auto adopted = worker_->TryAdoptFragment(session_);
  ASSERT_TRUE(adopted.has_value());

  RecoveryWorker second(&clock_, coordinator_.get(), raw_);
  Session s2;
  auto other = second.TryAdoptFragment(s2);
  // The second worker must not adopt the same fragment.
  if (other.has_value()) {
    EXPECT_NE(*other, *adopted);
  }
  EXPECT_GE(second.stats().redlease_conflicts +
                (other.has_value() ? 1u : 0u),
            1u);
}

TEST_F(RecoveryWorkerTest, ExpiredRedleaseAbandonsAndAnotherTakesOver) {
  RecoveryWorker::Options wopts;
  wopts.keys_per_step = 1;
  Build(RecoveryPolicy::GeminiO(), wopts);
  auto keys = DirtyInstance0Keys(4);
  ASSERT_GE(keys.size(), 2u);
  for (const auto& k : keys) (void)client_->Read(session_, k);
  coordinator_->OnInstanceFailed(0);
  for (const auto& k : keys) ASSERT_TRUE(client_->Write(session_, k).ok());
  coordinator_->OnInstanceRecovered(0);

  ASSERT_TRUE(worker_->TryAdoptFragment(session_).has_value());
  // Let the Redlease lapse mid-processing (worker crash emulation).
  clock_.Advance(Seconds(10));
  EXPECT_TRUE(worker_->Step(session_));  // abandons: lease renewal fails
  EXPECT_GE(worker_->stats().fragments_abandoned, 1u);

  // Replay by a fresh worker is idempotent and completes recovery.
  RecoveryWorker second(&clock_, coordinator_.get(), raw_);
  Session s2;
  for (int guard = 0; guard < 10000; ++guard) {
    if (!second.has_work() && !second.TryAdoptFragment(s2).has_value()) break;
    (void)second.Step(s2);
  }
  EXPECT_TRUE(coordinator_->FragmentsInMode(FragmentMode::kRecovery).empty());
}

TEST_F(RecoveryWorkerTest, AbandonsWhenPrimaryFailsAgain) {
  Build(RecoveryPolicy::GeminiO());
  auto keys = DirtyInstance0Keys(2);
  ASSERT_FALSE(keys.empty());
  (void)client_->Read(session_, keys[0]);
  coordinator_->OnInstanceFailed(0);
  ASSERT_TRUE(client_->Write(session_, keys[0]).ok());
  coordinator_->OnInstanceRecovered(0);
  ASSERT_TRUE(worker_->TryAdoptFragment(session_).has_value());

  // Transition (5): the primary fails again mid-recovery. The instance
  // actually crashes here so the worker's next touch observes kUnavailable.
  raw_[0]->Fail();
  coordinator_->OnInstanceFailed(0);
  EXPECT_TRUE(worker_->Step(session_));
  EXPECT_FALSE(worker_->has_work());
  EXPECT_GE(worker_->stats().fragments_abandoned, 1u);
}

TEST_F(RecoveryWorkerTest, MissingDirtyListReportsUnavailable) {
  Build(RecoveryPolicy::GeminiO());
  auto keys = DirtyInstance0Keys(1);
  ASSERT_FALSE(keys.empty());
  const FragmentId f =
      coordinator_->GetConfiguration()->FragmentOf(keys[0]);
  (void)client_->Read(session_, keys[0]);
  coordinator_->OnInstanceFailed(0);
  ASSERT_TRUE(client_->Write(session_, keys[0]).ok());
  coordinator_->OnInstanceRecovered(0);
  ASSERT_EQ(coordinator_->ModeOf(f), FragmentMode::kRecovery);

  // Evict the list before any worker adopts the fragment.
  auto cfg = coordinator_->GetConfiguration();
  const InstanceId sec = cfg->fragment(f).secondary;
  OpContext internal{kInternalConfigId, kInvalidFragment};
  ASSERT_TRUE(raw_[sec]->Delete(internal, DirtyListKey(f)).ok());

  DrainWorker();
  // The fragment was discarded rather than recovered.
  EXPECT_EQ(coordinator_->ModeOf(f), FragmentMode::kNormal);
  EXPECT_GE(coordinator_->discarded_fragment_count(), 1u);
}

TEST_F(RecoveryWorkerTest, WorkingSetScanEnumeratesHottestFirstAndResumes) {
  // The enumeration the ±W phase rides on, tested directly: a single-stripe
  // instance yields exact global LRU order, two keys per page, and any
  // returned cursor resumes without re-emitting or skipping.
  CacheInstance instance(0, &clock_);
  instance.GrantFragmentLease(0, 1, clock_.Now() + Seconds(60), 1);
  const OpContext ctx{kInternalConfigId, 0};
  std::vector<std::string> keys;
  for (int i = 0; i < 6; ++i) {
    keys.push_back("wsk" + std::to_string(i));
    ASSERT_TRUE(
        instance.Set(ctx, keys.back(), CacheValue::OfData("v", 1)).ok());
  }
  // Recency order is the Set order: wsk5 is the hottest. Internal keys
  // (e.g. a dirty list riding in the same instance) must never surface.
  ASSERT_TRUE(
      instance.Set(ctx, DirtyListKey(0), CacheValue::OfData("m")).ok());

  std::vector<std::string> seen;
  uint64_t cursor = 0;
  size_t pages = 0;
  for (;; ++pages) {
    ASSERT_LT(pages, 10u) << "scan did not terminate";
    auto page = instance.WorkingSetScan(ctx, /*num_fragments=*/1, cursor,
                                        /*max_keys=*/2);
    ASSERT_TRUE(page.ok());
    for (const auto& item : page->items) seen.push_back(item.key);
    cursor = page->next_cursor;
    if (cursor == 0) break;
  }
  EXPECT_EQ(seen, (std::vector<std::string>{"wsk5", "wsk4", "wsk3", "wsk2",
                                            "wsk1", "wsk0"}));

  // The scan is a pure read: re-running it yields the identical sequence
  // (no LRU perturbation), and a mid-scan cursor replays its own tail.
  auto first = instance.WorkingSetScan(ctx, 1, 0, 2);
  ASSERT_TRUE(first.ok());
  ASSERT_EQ(first->items.size(), 2u);
  EXPECT_EQ(first->items[0].key, "wsk5");
  auto resumed = instance.WorkingSetScan(ctx, 1, first->next_cursor, 2);
  ASSERT_TRUE(resumed.ok());
  ASSERT_EQ(resumed->items.size(), 2u);
  EXPECT_EQ(resumed->items[0].key, "wsk3");
  EXPECT_EQ(resumed->items[1].key, "wsk2");
}

TEST_F(RecoveryWorkerTest, WorkingSetPhaseRestoresHottestFirstAndTerminates) {
  RecoveryWorker::Options wopts;
  wopts.working_set_transfer = true;
  wopts.wst_page_keys = 2;
  Build(RecoveryPolicy::GeminiOW(), wopts);

  // Six keys of one instance-0 fragment. They are read only *during* the
  // outage, so the secondary accumulates them (the outage working set) and
  // the restarted primary holds none of them.
  auto cfg = coordinator_->GetConfiguration();
  const FragmentId f = cfg->FragmentOf(DirtyInstance0Keys(1)[0]);
  std::vector<std::string> keys;
  for (int i = 0; i < 400 && keys.size() < 6; ++i) {
    std::string key = "user" + std::to_string(i);
    if (cfg->FragmentOf(key) == f) keys.push_back(std::move(key));
  }
  ASSERT_EQ(keys.size(), 6u);

  coordinator_->OnInstanceFailed(0);
  // Reads in order k0..k5 warm the (single-stripe) secondary: k5 hottest.
  for (const auto& k : keys) ASSERT_TRUE(client_->Read(session_, k).ok());
  coordinator_->OnInstanceRecovered(0);
  ASSERT_EQ(coordinator_->ModeOf(f), FragmentMode::kRecovery);

  // Recover the other instance-0 fragments first so fragment f's phase can
  // be stepped page by page in isolation.
  Session s;
  for (int guard = 0;; ++guard) {
    ASSERT_LT(guard, 10000) << "never adopted fragment " << f;
    if (!worker_->has_work()) {
      auto adopted = worker_->TryAdoptFragment(s);
      ASSERT_TRUE(adopted.has_value());
      if (*adopted == f) break;
    }
    (void)worker_->Step(s);
  }

  // Step 1 drains the (marker-only) dirty list and rolls into the
  // working-set phase instead of finishing the task.
  EXPECT_FALSE(worker_->Step(s));
  EXPECT_TRUE(worker_->has_work());

  // Each further step installs one priority page: hottest pair first.
  ASSERT_FALSE(worker_->Step(s));
  EXPECT_TRUE(raw_[0]->ContainsRaw(keys[5]));
  EXPECT_TRUE(raw_[0]->ContainsRaw(keys[4]));
  EXPECT_FALSE(raw_[0]->ContainsRaw(keys[3]));
  EXPECT_FALSE(raw_[0]->ContainsRaw(keys[0]));
  ASSERT_FALSE(worker_->Step(s));
  EXPECT_TRUE(raw_[0]->ContainsRaw(keys[3]));
  EXPECT_TRUE(raw_[0]->ContainsRaw(keys[2]));
  EXPECT_FALSE(worker_->Step(s));
  EXPECT_TRUE(raw_[0]->ContainsRaw(keys[1]));
  EXPECT_TRUE(raw_[0]->ContainsRaw(keys[0]));

  // The next (empty) page terminates the transfer: Redlease released,
  // coordinator notified, fragment back to normal.
  EXPECT_TRUE(worker_->Step(s));
  EXPECT_FALSE(worker_->has_work());
  EXPECT_EQ(worker_->stats().wst_keys_copied, 6u);
  EXPECT_GE(worker_->stats().wst_completed, 1u);
  EXPECT_EQ(worker_->stats().wst_aborts, 0u);
  EXPECT_EQ(coordinator_->ModeOf(f), FragmentMode::kNormal);

  // The restored primary serves the working set as cache hits, byte-exact.
  const auto queries_before = store_.stats().queries;
  for (const auto& k : keys) {
    auto r = client_->Read(session_, k);
    ASSERT_TRUE(r.ok());
    EXPECT_TRUE(r->cache_hit) << k;
    EXPECT_EQ(r->value.version, store_.VersionOf(k)) << k;
  }
  EXPECT_EQ(store_.stats().queries, queries_before);
}

TEST_F(RecoveryWorkerTest, WorkingSetAbortsCleanlyWhenSecondaryDiesMidStream) {
  RecoveryWorker::Options wopts;
  wopts.working_set_transfer = true;
  wopts.wst_page_keys = 2;
  Build(RecoveryPolicy::GeminiOW(), wopts);

  auto cfg = coordinator_->GetConfiguration();
  const FragmentId f = cfg->FragmentOf(DirtyInstance0Keys(1)[0]);
  std::vector<std::string> keys;
  for (int i = 0; i < 400 && keys.size() < 6; ++i) {
    std::string key = "user" + std::to_string(i);
    if (cfg->FragmentOf(key) == f) keys.push_back(std::move(key));
  }
  ASSERT_EQ(keys.size(), 6u);

  coordinator_->OnInstanceFailed(0);
  for (const auto& k : keys) ASSERT_TRUE(client_->Read(session_, k).ok());
  coordinator_->OnInstanceRecovered(0);
  // The replica serving fragment f through the outage, per the *current*
  // (recovery-mode) configuration.
  const InstanceId sec =
      coordinator_->GetConfiguration()->fragment(f).secondary;
  ASSERT_LT(sec, kInstances);

  Session s;
  for (int guard = 0;; ++guard) {
    ASSERT_LT(guard, 10000) << "never adopted fragment " << f;
    if (!worker_->has_work()) {
      auto adopted = worker_->TryAdoptFragment(s);
      ASSERT_TRUE(adopted.has_value());
      if (*adopted == f) break;
    }
    (void)worker_->Step(s);
  }
  EXPECT_FALSE(worker_->Step(s));  // drain -> working-set phase
  EXPECT_FALSE(worker_->Step(s));  // first page lands

  // The secondary dies mid-stream. The worker's next step must abort the
  // task cleanly — no retry loop against a corpse, no lease left behind.
  raw_[sec]->Fail();
  coordinator_->OnInstanceFailed(sec);
  EXPECT_TRUE(worker_->Step(s));
  EXPECT_FALSE(worker_->has_work());
  EXPECT_GE(worker_->stats().wst_aborts, 1u);

  // The coordinator's failure handling terminated the transfer; the worker
  // pool finds nothing stuck behind the dead secondary's Redlease and the
  // cluster converges out of recovery mode.
  DrainWorker();
  EXPECT_TRUE(coordinator_->FragmentsInMode(FragmentMode::kRecovery).empty());

  // Zero stale reads afterwards: every surviving or refilled value matches
  // the data store exactly.
  for (const auto& k : keys) {
    auto r = client_->Read(session_, k);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(r->value.version, store_.VersionOf(k)) << k;
  }
}

TEST_F(RecoveryWorkerTest, StepsAreBoundedByKeysPerStep) {
  RecoveryWorker::Options wopts;
  wopts.keys_per_step = 2;
  Build(RecoveryPolicy::GeminiI(), wopts);
  auto keys = DirtyInstance0Keys(6);
  ASSERT_GE(keys.size(), 3u);
  for (const auto& k : keys) (void)client_->Read(session_, k);
  coordinator_->OnInstanceFailed(0);
  for (const auto& k : keys) ASSERT_TRUE(client_->Write(session_, k).ok());
  coordinator_->OnInstanceRecovered(0);

  // All 6 keys land on instance-0 fragments; at least one fragment has >= 2
  // dirty keys, so at least one Step() returns false (not finished).
  bool saw_unfinished = false;
  Session s;
  for (int guard = 0; guard < 1000; ++guard) {
    if (!worker_->has_work() && !worker_->TryAdoptFragment(s).has_value()) {
      break;
    }
    if (!worker_->Step(s)) saw_unfinished = true;
  }
  EXPECT_TRUE(coordinator_->FragmentsInMode(FragmentMode::kRecovery).empty());
  (void)saw_unfinished;  // property checked only when a fragment had >1 key
}

}  // namespace
}  // namespace gemini
