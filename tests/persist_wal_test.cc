// WAL unit tests: record encode/decode roundtrips, the torn-tail vs
// corruption classification that recovery's fail-closed rule hangs on,
// fsync batching, segment rotation, and checkpoint-directory listing/GC.
#include "src/persist/wal.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <ftw.h>
#include <sys/stat.h>

#include "src/common/hash.h"
#include "src/persist/checkpoint.h"

namespace gemini {
namespace {

int RemoveEntry(const char* path, const struct stat*, int, struct FTW*) {
  return ::remove(path);
}

void RemoveTree(const std::string& dir) {
  ::nftw(dir.c_str(), RemoveEntry, 16, FTW_DEPTH | FTW_PHYS);
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good());
}

class WalTest : public ::testing::Test {
 protected:
  std::string TempDir(const std::string& name) {
    const std::string dir = ::testing::TempDir() + "/wal_" + name;
    RemoveTree(dir);
    ::mkdir(dir.c_str(), 0755);
    dirs_.push_back(dir);
    return dir;
  }

  void TearDown() override {
    for (const auto& d : dirs_) RemoveTree(d);
  }

  static WalRecord FullUpsert() {
    WalRecord rec;
    rec.type = WalRecordType::kUpsert;
    rec.origin = 4;
    rec.pinned = true;
    rec.key = "user42";
    rec.data = std::string("payload\0with\xffbytes", 18);
    rec.charged_bytes = 329;
    rec.version = 0x1122334455667788ull;
    rec.config_id = 7;
    return rec;
  }

  std::vector<std::string> dirs_;
};

TEST_F(WalTest, Crc32cMatchesKnownVector) {
  // The canonical CRC-32C check vector (RFC 3720 appendix B.4).
  EXPECT_EQ(Crc32c("123456789"), 0xE3069283u);
  EXPECT_EQ(Crc32c(""), 0u);
  // Incremental seeding composes.
  const uint32_t partial = Crc32c("12345");
  EXPECT_EQ(Crc32c("6789", partial), Crc32c("123456789"));

  // The dispatched implementation (hardware crc32 where the CPU has it)
  // must match the table reference bit for bit at every length, or logs
  // written on one machine would fail CRC on another.
  std::string buf;
  for (int i = 0; i < 300; ++i) {
    EXPECT_EQ(Crc32c(buf), Crc32cSoftware(buf)) << "len " << i;
    buf.push_back(static_cast<char>(i * 131 + 17));
  }
}

TEST_F(WalTest, RecordRoundTripsEveryType) {
  for (WalRecordType type :
       {WalRecordType::kUpsert, WalRecordType::kDelete, WalRecordType::kQBegin,
        WalRecordType::kQEnd, WalRecordType::kConfigId, WalRecordType::kQClear,
        WalRecordType::kWipe}) {
    WalRecord rec = FullUpsert();
    rec.type = type;
    std::string payload;
    rec.EncodeTo(payload);
    WalRecord out;
    ASSERT_TRUE(WalRecord::Decode(payload, out))
        << "type " << static_cast<int>(type);
    EXPECT_EQ(out.type, rec.type);
    switch (type) {
      case WalRecordType::kUpsert:
        EXPECT_EQ(out.origin, rec.origin);
        EXPECT_EQ(out.pinned, rec.pinned);
        EXPECT_EQ(out.key, rec.key);
        EXPECT_EQ(out.data, rec.data);
        EXPECT_EQ(out.charged_bytes, rec.charged_bytes);
        EXPECT_EQ(out.version, rec.version);
        EXPECT_EQ(out.config_id, rec.config_id);
        break;
      case WalRecordType::kDelete:
      case WalRecordType::kQBegin:
      case WalRecordType::kQEnd:
        EXPECT_EQ(out.key, rec.key);
        EXPECT_TRUE(out.data.empty());
        break;
      case WalRecordType::kConfigId:
        EXPECT_EQ(out.config_id, rec.config_id);
        EXPECT_TRUE(out.key.empty());
        break;
      case WalRecordType::kQClear:
      case WalRecordType::kWipe:
        EXPECT_TRUE(out.key.empty());
        break;
    }
  }
}

TEST_F(WalTest, DecodeRejectsMalformedPayloads) {
  WalRecord out;
  // Empty, unknown type, truncated fields, and trailing garbage all fail.
  EXPECT_FALSE(WalRecord::Decode("", out));
  EXPECT_FALSE(WalRecord::Decode(std::string(1, '\xff'), out));
  std::string payload;
  FullUpsert().EncodeTo(payload);
  for (size_t len = 1; len < payload.size(); ++len) {
    EXPECT_FALSE(WalRecord::Decode(payload.substr(0, len), out))
        << "prefix of length " << len << " decoded";
  }
  EXPECT_FALSE(WalRecord::Decode(payload + "x", out));
}

TEST_F(WalTest, AppendScanRoundTrip) {
  const std::string dir = TempDir("roundtrip");
  Wal wal;
  ASSERT_TRUE(wal.Open(dir, 0, {}).ok());
  std::vector<WalRecord> written;
  for (int i = 0; i < 20; ++i) {
    WalRecord rec = FullUpsert();
    rec.key = "k" + std::to_string(i);
    rec.version = static_cast<Version>(i);
    rec.pinned = (i % 2) == 0;
    written.push_back(rec);
    ASSERT_TRUE(wal.Append(rec, /*sync_now=*/false).ok());
  }
  wal.Close();

  WalScanResult scan = Wal::ScanFile(Wal::SegmentPath(dir, 0));
  ASSERT_TRUE(scan.error.ok()) << scan.error.ToString();
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.valid_bytes, scan.file_bytes);
  ASSERT_EQ(scan.records.size(), written.size());
  ASSERT_EQ(scan.record_ends.size(), written.size());
  EXPECT_EQ(scan.record_ends.back(), scan.valid_bytes);
  for (size_t i = 0; i < written.size(); ++i) {
    EXPECT_EQ(scan.records[i].key, written[i].key);
    EXPECT_EQ(scan.records[i].data, written[i].data);
    EXPECT_EQ(scan.records[i].version, written[i].version);
    EXPECT_EQ(scan.records[i].pinned, written[i].pinned);
  }
}

TEST_F(WalTest, EagerSyncBypassesBatchAndBatchedSyncAccumulates) {
  const std::string dir = TempDir("sync");
  Wal wal;
  Wal::Options options;
  options.sync_batch_bytes = 1 << 20;  // big batch: nothing syncs on its own
  ASSERT_TRUE(wal.Open(dir, 0, options).ok());
  const uint64_t base = wal.fsync_count();

  WalRecord rec = FullUpsert();
  ASSERT_TRUE(wal.Append(rec, /*sync_now=*/false).ok());
  ASSERT_TRUE(wal.Append(rec, /*sync_now=*/false).ok());
  EXPECT_EQ(wal.fsync_count(), base);  // still inside the batch

  ASSERT_TRUE(wal.Append(rec, /*sync_now=*/true).ok());
  EXPECT_EQ(wal.fsync_count(), base + 1);  // eager record paid one fsync

  ASSERT_TRUE(wal.Sync().ok());  // nothing unsynced: no extra fsync
  EXPECT_EQ(wal.fsync_count(), base + 1);

  ASSERT_TRUE(wal.Append(rec, /*sync_now=*/false).ok());
  ASSERT_TRUE(wal.Sync().ok());
  EXPECT_EQ(wal.fsync_count(), base + 2);
  wal.Close();
}

TEST_F(WalTest, SmallBatchTriggersSyncByBytes) {
  const std::string dir = TempDir("batch");
  Wal wal;
  Wal::Options options;
  options.sync_batch_bytes = 1;  // every append overflows the batch
  ASSERT_TRUE(wal.Open(dir, 0, options).ok());
  const uint64_t base = wal.fsync_count();
  ASSERT_TRUE(wal.Append(FullUpsert(), /*sync_now=*/false).ok());
  EXPECT_GT(wal.fsync_count(), base);
  wal.Close();
}

TEST_F(WalTest, TruncationMidFrameIsATornTailNotCorruption) {
  const std::string dir = TempDir("torn");
  Wal wal;
  ASSERT_TRUE(wal.Open(dir, 0, {}).ok());
  for (int i = 0; i < 5; ++i) {
    WalRecord rec = FullUpsert();
    rec.key = "k" + std::to_string(i);
    ASSERT_TRUE(wal.Append(rec, false).ok());
  }
  wal.Close();
  const std::string path = Wal::SegmentPath(dir, 0);
  WalScanResult intact = Wal::ScanFile(path);
  ASSERT_TRUE(intact.error.ok());
  ASSERT_EQ(intact.records.size(), 5u);

  // Cut inside the last frame: payload claims bytes past EOF.
  const std::string bytes = ReadFileBytes(path);
  const uint64_t third_end = intact.record_ends[2];
  WriteFileBytes(path, bytes.substr(0, third_end + 10));

  WalScanResult scan = Wal::ScanFile(path);
  EXPECT_TRUE(scan.error.ok()) << scan.error.ToString();
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_EQ(scan.records.size(), 3u);
  EXPECT_EQ(scan.valid_bytes, third_end);

  // Cut inside the frame *header* (fewer than 8 bytes left): still torn.
  WriteFileBytes(path, bytes.substr(0, third_end + 3));
  scan = Wal::ScanFile(path);
  EXPECT_TRUE(scan.error.ok());
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_EQ(scan.records.size(), 3u);

  // Cut exactly at a record boundary: clean, no torn tail.
  WriteFileBytes(path, bytes.substr(0, third_end));
  scan = Wal::ScanFile(path);
  EXPECT_TRUE(scan.error.ok());
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.records.size(), 3u);
}

TEST_F(WalTest, BitFlipInACompleteFrameIsCorruptionAndFailsClosed) {
  const std::string dir = TempDir("corrupt");
  Wal wal;
  ASSERT_TRUE(wal.Open(dir, 0, {}).ok());
  for (int i = 0; i < 4; ++i) {
    WalRecord rec = FullUpsert();
    rec.key = "k" + std::to_string(i);
    ASSERT_TRUE(wal.Append(rec, false).ok());
  }
  wal.Close();
  const std::string path = Wal::SegmentPath(dir, 0);
  WalScanResult intact = Wal::ScanFile(path);
  ASSERT_EQ(intact.records.size(), 4u);

  // Flip one payload byte of the second record: the frame is fully present,
  // so this is rot/overwrite damage — never a legal crash shape.
  std::string bytes = ReadFileBytes(path);
  bytes[intact.record_ends[0] + 8] ^= 0x01;
  WriteFileBytes(path, bytes);

  WalScanResult scan = Wal::ScanFile(path);
  EXPECT_FALSE(scan.error.ok());
  EXPECT_EQ(scan.error.code(), Code::kInternal);
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_EQ(scan.records.size(), 1u);  // the prefix before the damage
}

TEST_F(WalTest, UndecodablePayloadWithValidCrcIsCorruption) {
  const std::string dir = TempDir("undecodable");
  Wal wal;
  ASSERT_TRUE(wal.Open(dir, 0, {}).ok());
  ASSERT_TRUE(wal.Append(FullUpsert(), false).ok());
  wal.Close();
  const std::string path = Wal::SegmentPath(dir, 0);

  // Craft a frame whose CRC is right but whose payload has an unknown type:
  // a complete frame that cannot decode must fail closed, not be skipped.
  const std::string payload(1, '\xfe');
  const uint32_t crc = Crc32c(payload);
  std::string frame;
  const uint32_t len = static_cast<uint32_t>(payload.size());
  frame.append(reinterpret_cast<const char*>(&len), 4);
  frame.append(reinterpret_cast<const char*>(&crc), 4);
  frame += payload;
  WriteFileBytes(path, ReadFileBytes(path) + frame);

  WalScanResult scan = Wal::ScanFile(path);
  EXPECT_FALSE(scan.error.ok());
  EXPECT_EQ(scan.error.code(), Code::kInternal);
  EXPECT_EQ(scan.records.size(), 1u);
}

TEST_F(WalTest, OversizedLengthClaimingPastEofIsTorn) {
  const std::string dir = TempDir("oversized");
  Wal wal;
  ASSERT_TRUE(wal.Open(dir, 0, {}).ok());
  ASSERT_TRUE(wal.Append(FullUpsert(), false).ok());
  wal.Close();
  const std::string path = Wal::SegmentPath(dir, 0);

  // A garbage header whose length field claims far past EOF reads as a torn
  // append, because a real torn header is indistinguishable from it.
  std::string tail(8, '\0');
  const uint32_t huge = 0x7fffffffu;
  std::memcpy(tail.data(), &huge, 4);
  WriteFileBytes(path, ReadFileBytes(path) + tail);

  WalScanResult scan = Wal::ScanFile(path);
  EXPECT_TRUE(scan.error.ok()) << scan.error.ToString();
  EXPECT_TRUE(scan.torn_tail);
  EXPECT_EQ(scan.records.size(), 1u);
}

TEST_F(WalTest, RotateAdvancesSegmentsAndNamesParse) {
  const std::string dir = TempDir("rotate");
  Wal wal;
  ASSERT_TRUE(wal.Open(dir, 3, {}).ok());
  EXPECT_EQ(wal.seq(), 3u);
  ASSERT_TRUE(wal.Append(FullUpsert(), false).ok());
  ASSERT_TRUE(wal.Rotate().ok());
  EXPECT_EQ(wal.seq(), 4u);
  EXPECT_EQ(wal.segment_bytes(), 0u);
  ASSERT_TRUE(wal.Append(FullUpsert(), false).ok());
  ASSERT_TRUE(wal.Append(FullUpsert(), false).ok());
  wal.Close();

  EXPECT_EQ(Wal::ScanFile(Wal::SegmentPath(dir, 3)).records.size(), 1u);
  EXPECT_EQ(Wal::ScanFile(Wal::SegmentPath(dir, 4)).records.size(), 2u);

  uint64_t seq = 0;
  ASSERT_TRUE(Wal::ParseSegmentName("wal-0000000000000004.log", seq));
  EXPECT_EQ(seq, 4u);
  EXPECT_FALSE(Wal::ParseSegmentName("wal-xyz.log", seq));
  EXPECT_FALSE(Wal::ParseSegmentName("checkpoint-0000000000000004.snap", seq));

  DirListing listing;
  CheckpointManager manager(dir);
  ASSERT_TRUE(manager.List(listing).ok());
  EXPECT_EQ(listing.wal_seqs, (std::vector<uint64_t>{3, 4}));
  EXPECT_TRUE(listing.checkpoint_seqs.empty());
}

TEST_F(WalTest, PreallocateCreatesEmptyNextSegmentWithReservedBlocks) {
  const std::string dir = TempDir("prealloc");
  Wal wal;
  Wal::Options options;
  options.preallocate_bytes = 1 << 20;
  ASSERT_TRUE(wal.Open(dir, 0, options).ok());

  // The next segment exists, is zero-length (KEEP_SIZE), and scans as an
  // empty segment — the crash-after-rotation shape replay accepts.
  const std::string next = Wal::SegmentPath(dir, 1);
  struct stat st {};
  ASSERT_EQ(::stat(next.c_str(), &st), 0);
  EXPECT_EQ(st.st_size, 0);
  WalScanResult scan = Wal::ScanFile(next);
  EXPECT_TRUE(scan.error.ok());
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_TRUE(scan.records.empty());

  // Rotation lands on the reserved file, appends normally, and reserves the
  // one after — the preallocation keeps running ahead of the writer.
  ASSERT_TRUE(wal.Append(FullUpsert(), true).ok());
  ASSERT_TRUE(wal.Rotate().ok());
  EXPECT_EQ(wal.seq(), 1u);
  ASSERT_TRUE(wal.Append(FullUpsert(), true).ok());
  wal.Close();
  ASSERT_EQ(::stat(Wal::SegmentPath(dir, 2).c_str(), &st), 0);
  EXPECT_EQ(st.st_size, 0);
  EXPECT_EQ(Wal::ScanFile(Wal::SegmentPath(dir, 1)).records.size(), 1u);
}

TEST_F(WalTest, GarbageCollectDropsCoveredFilesOnly) {
  const std::string dir = TempDir("gc");
  Wal wal;
  ASSERT_TRUE(wal.Open(dir, 0, {}).ok());
  ASSERT_TRUE(wal.Rotate().ok());
  ASSERT_TRUE(wal.Rotate().ok());
  wal.Close();

  CheckpointManager manager(dir);
  ASSERT_TRUE(manager.GarbageCollect(2).ok());
  DirListing listing;
  ASSERT_TRUE(manager.List(listing).ok());
  EXPECT_EQ(listing.wal_seqs, (std::vector<uint64_t>{2}));
}

TEST_F(WalTest, EmptyAndMissingFilesScanClean) {
  const std::string dir = TempDir("empty");
  WriteFileBytes(dir + "/wal-0000000000000000.log", "");
  WalScanResult scan = Wal::ScanFile(Wal::SegmentPath(dir, 0));
  EXPECT_TRUE(scan.error.ok());
  EXPECT_FALSE(scan.torn_tail);
  EXPECT_TRUE(scan.records.empty());

  scan = Wal::ScanFile(dir + "/no-such-file.log");
  EXPECT_FALSE(scan.error.ok());
}

}  // namespace
}  // namespace gemini
