#include "src/coordinator/configuration.h"

#include <gtest/gtest.h>

namespace gemini {
namespace {

Configuration MakeConfig() {
  std::vector<FragmentAssignment> frags(3);
  frags[0] = {/*primary=*/1, /*secondary=*/kInvalidInstance, /*config_id=*/7,
              FragmentMode::kNormal};
  frags[1] = {2, 3, 9, FragmentMode::kTransient};
  frags[2] = {4, 5, 11, FragmentMode::kRecovery};
  return Configuration(42, std::move(frags));
}

TEST(Configuration, AccessorsReflectContents) {
  Configuration c = MakeConfig();
  EXPECT_EQ(c.id(), 42u);
  EXPECT_EQ(c.num_fragments(), 3u);
  EXPECT_EQ(c.fragment(1).primary, 2u);
  EXPECT_EQ(c.fragment(1).secondary, 3u);
  EXPECT_EQ(c.fragment(2).mode, FragmentMode::kRecovery);
}

TEST(Configuration, SerializeRoundTrips) {
  Configuration c = MakeConfig();
  auto parsed = Configuration::Deserialize(c.Serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(*parsed, c);
}

TEST(Configuration, RoundTripsInvalidInstanceSentinels) {
  std::vector<FragmentAssignment> frags(1);
  frags[0] = {kInvalidInstance, kInvalidInstance, 1, FragmentMode::kNormal};
  Configuration c(1, std::move(frags));
  auto parsed = Configuration::Deserialize(c.Serialize());
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->fragment(0).primary, kInvalidInstance);
}

TEST(Configuration, DeserializeRejectsGarbage) {
  EXPECT_FALSE(Configuration::Deserialize("").has_value());
  // Old/unknown wire versions.
  EXPECT_FALSE(Configuration::Deserialize("v1 1 0\n").has_value());
  EXPECT_FALSE(Configuration::Deserialize("v3 1 0\n").has_value());
  EXPECT_FALSE(Configuration::Deserialize("v2 junk").has_value());
  // Truncated fragment row.
  EXPECT_FALSE(Configuration::Deserialize("v2 5 1\n1 2\n").has_value());
  // Out-of-range mode.
  EXPECT_FALSE(
      Configuration::Deserialize("v2 5 1\n1 2 3 9 0\n").has_value());
}

TEST(Configuration, FragmentOfIsDeterministicAndInRange) {
  Configuration c = MakeConfig();
  for (int i = 0; i < 1000; ++i) {
    const std::string key = "user" + std::to_string(i);
    const FragmentId f = c.FragmentOf(key);
    EXPECT_LT(f, c.num_fragments());
    EXPECT_EQ(f, c.FragmentOf(key));  // stable
  }
}

TEST(Configuration, FragmentOfMatchesHashModF) {
  Configuration c = MakeConfig();
  EXPECT_EQ(c.FragmentOf("abc"), Fnv1a64("abc") % 3);
}

TEST(Configuration, ModeNamesHumanReadable) {
  EXPECT_EQ(FragmentModeName(FragmentMode::kNormal), "normal");
  EXPECT_EQ(FragmentModeName(FragmentMode::kTransient), "transient");
  EXPECT_EQ(FragmentModeName(FragmentMode::kRecovery), "recovery");
}

}  // namespace
}  // namespace gemini
