// CacheInstance tests: IQ data path, LRU/eviction, Rejig config-id
// validation, fragment leases, and persistence emulation.
#include "src/cache/cache_instance.h"

#include <gtest/gtest.h>

#include "src/common/clock.h"

namespace gemini {
namespace {

class CacheInstanceTest : public ::testing::Test {
 protected:
  CacheInstanceTest() : inst_(0, &clock_) {
    // Grant a fragment lease so fragment-scoped ops are servable.
    inst_.GrantFragmentLease(/*fragment=*/0, /*min_valid_config=*/1,
                             clock_.Now() + Seconds(3600),
                             /*latest_config=*/1);
  }

  OpContext Ctx(ConfigId id = 1, FragmentId f = 0) { return OpContext{id, f}; }

  VirtualClock clock_;
  CacheInstance inst_;
};

TEST_F(CacheInstanceTest, MissThenSetThenHit) {
  EXPECT_EQ(inst_.Get(Ctx(), "k").code(), Code::kNotFound);
  ASSERT_TRUE(inst_.Set(Ctx(), "k", CacheValue::OfData("v", 3)).ok());
  auto v = inst_.Get(Ctx(), "k");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->data, "v");
  EXPECT_EQ(v->version, 3u);
}

TEST_F(CacheInstanceTest, DeleteRemoves) {
  ASSERT_TRUE(inst_.Set(Ctx(), "k", CacheValue::OfData("v")).ok());
  ASSERT_TRUE(inst_.Delete(Ctx(), "k").ok());
  EXPECT_EQ(inst_.Get(Ctx(), "k").code(), Code::kNotFound);
}

TEST_F(CacheInstanceTest, IqGetMissGrantsILease) {
  auto r = inst_.IqGet(Ctx(), "k");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->value.has_value());
  EXPECT_NE(r->i_token, kNoLease);
}

TEST_F(CacheInstanceTest, SecondIqGetMissBacksOff) {
  (void)inst_.IqGet(Ctx(), "k");
  auto r2 = inst_.IqGet(Ctx(), "k");
  EXPECT_EQ(r2.code(), Code::kBackoff);
}

TEST_F(CacheInstanceTest, IqSetWithValidLeaseInserts) {
  auto r = inst_.IqGet(Ctx(), "k");
  ASSERT_TRUE(inst_.IqSet(Ctx(), "k", CacheValue::OfData("v"), r->i_token).ok());
  auto v = inst_.Get(Ctx(), "k");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->data, "v");
}

TEST_F(CacheInstanceTest, IqSetAfterQaregIsIgnored) {
  // The Q lease voids the I lease; the reader's insert must be dropped
  // (prevents caching a stale value over a concurrent write).
  auto r = inst_.IqGet(Ctx(), "k");
  auto q = inst_.Qareg(Ctx(), "k");
  ASSERT_TRUE(q.ok());
  EXPECT_EQ(inst_.IqSet(Ctx(), "k", CacheValue::OfData("stale"), r->i_token)
                .code(),
            Code::kLeaseInvalid);
  ASSERT_TRUE(inst_.Dar(Ctx(), "k", *q).ok());
  EXPECT_EQ(inst_.Get(Ctx(), "k").code(), Code::kNotFound);
}

TEST_F(CacheInstanceTest, IqSetAfterExpiryIsIgnored) {
  auto r = inst_.IqGet(Ctx(), "k");
  clock_.Advance(inst_.options().lease_options.i_lease_lifetime + 1);
  EXPECT_EQ(inst_.IqSet(Ctx(), "k", CacheValue::OfData("v"), r->i_token).code(),
            Code::kLeaseInvalid);
}

TEST_F(CacheInstanceTest, DarDeletesEntryAndReleasesQ) {
  ASSERT_TRUE(inst_.Set(Ctx(), "k", CacheValue::OfData("v")).ok());
  auto q = inst_.Qareg(Ctx(), "k");
  ASSERT_TRUE(inst_.Dar(Ctx(), "k", *q).ok());
  EXPECT_EQ(inst_.Get(Ctx(), "k").code(), Code::kNotFound);
  // Q released: a new I lease is grantable.
  EXPECT_TRUE(inst_.IqGet(Ctx(), "k").ok());
}

TEST_F(CacheInstanceTest, ExpiredQLeaseDeletesEntryOnNextTouch) {
  // Section 2.3: a Q lease that times out deletes its associated entry —
  // the writer may have died between the store update and the delete.
  ASSERT_TRUE(inst_.Set(Ctx(), "k", CacheValue::OfData("old")).ok());
  (void)inst_.Qareg(Ctx(), "k");
  clock_.Advance(inst_.options().lease_options.q_lease_lifetime + 1);
  EXPECT_EQ(inst_.Get(Ctx(), "k").code(), Code::kNotFound);
}

TEST_F(CacheInstanceTest, ISetDeletesAndGrantsI) {
  ASSERT_TRUE(inst_.Set(Ctx(), "k", CacheValue::OfData("old")).ok());
  auto t = inst_.ISet(Ctx(), "k");
  ASSERT_TRUE(t.ok());
  EXPECT_FALSE(inst_.ContainsRaw("k"));
  // Complete the overwrite as a recovery worker would.
  ASSERT_TRUE(inst_.IqSet(Ctx(), "k", CacheValue::OfData("new"), *t).ok());
  EXPECT_EQ(inst_.Get(Ctx(), "k")->data, "new");
}

TEST_F(CacheInstanceTest, ISetBacksOffUnderExistingLease) {
  (void)inst_.IqGet(Ctx(), "k");  // holds I
  EXPECT_EQ(inst_.ISet(Ctx(), "k").code(), Code::kBackoff);
}

TEST_F(CacheInstanceTest, IDeleteRemovesAndReleases) {
  ASSERT_TRUE(inst_.Set(Ctx(), "k", CacheValue::OfData("v")).ok());
  auto t = inst_.ISet(Ctx(), "k");
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(inst_.IDelete(Ctx(), "k", *t).ok());
  EXPECT_FALSE(inst_.ContainsRaw("k"));
  EXPECT_TRUE(inst_.IqGet(Ctx(), "k").ok());  // I released
}

TEST_F(CacheInstanceTest, AppendCreatesThenExtends) {
  OpContext internal{kInternalConfigId, kInvalidFragment};
  ASSERT_TRUE(inst_.Append(internal, "list", "a\n").ok());
  ASSERT_TRUE(inst_.Append(internal, "list", "b\n").ok());
  auto v = inst_.Get(internal, "list");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->data, "a\nb\n");
}

// ---- Rejig config-id validation (Section 3.2.4) ----------------------------

TEST_F(CacheInstanceTest, EntryBelowFragmentMinIsDiscarded) {
  ASSERT_TRUE(inst_.Set(Ctx(/*id=*/5), "k", CacheValue::OfData("v")).ok());
  // Raise the fragment's minimum-valid config id past the entry's stamp.
  inst_.GrantFragmentLease(0, /*min_valid_config=*/9,
                           clock_.Now() + Seconds(3600), /*latest=*/9);
  EXPECT_EQ(inst_.Get(Ctx(/*id=*/9), "k").code(), Code::kNotFound);
  EXPECT_EQ(inst_.stats().config_discards, 1u);
  EXPECT_FALSE(inst_.ContainsRaw("k"));  // lazily deleted on access
}

TEST_F(CacheInstanceTest, EntryAtOrAboveFragmentMinIsValid) {
  inst_.GrantFragmentLease(0, 5, clock_.Now() + Seconds(3600), 5);
  ASSERT_TRUE(inst_.Set(Ctx(5), "at", CacheValue::OfData("a")).ok());
  ASSERT_TRUE(inst_.Set(Ctx(7), "above", CacheValue::OfData("b")).ok());
  EXPECT_TRUE(inst_.Get(Ctx(7), "at").ok());
  EXPECT_TRUE(inst_.Get(Ctx(7), "above").ok());
}

TEST_F(CacheInstanceTest, RestoringFragmentMinRevalidatesEntries) {
  // Recovery (Figure 4 transition (2)): the fragment's id is restored to its
  // pre-failure value, making persisted entries servable again.
  ASSERT_TRUE(inst_.Set(Ctx(1), "k", CacheValue::OfData("v")).ok());
  inst_.GrantFragmentLease(0, 10, clock_.Now() + Seconds(3600), 10);
  // Not touched while invalid (no access), so still physically present.
  inst_.GrantFragmentLease(0, 1, clock_.Now() + Seconds(3600), 11);
  auto v = inst_.Get(Ctx(11), "k");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->data, "v");
}

TEST_F(CacheInstanceTest, StaleClientConfigRejected) {
  inst_.GrantFragmentLease(0, 1, clock_.Now() + Seconds(3600),
                           /*latest_config=*/7);
  EXPECT_EQ(inst_.Get(Ctx(/*id=*/3), "k").code(), Code::kStaleConfig);
  // Internal operations bypass the staleness check.
  OpContext internal{kInternalConfigId, kInvalidFragment};
  EXPECT_EQ(inst_.Get(internal, "k").code(), Code::kNotFound);
}

TEST_F(CacheInstanceTest, RawConfigIdExposesStamp) {
  ASSERT_TRUE(inst_.Set(Ctx(1), "k", CacheValue::OfData("v")).ok());
  auto id = inst_.RawConfigIdOf("k");
  ASSERT_TRUE(id.has_value());
  EXPECT_EQ(*id, 1u);
  EXPECT_FALSE(inst_.RawConfigIdOf("missing").has_value());
}

// ---- Fragment leases ---------------------------------------------------------

TEST_F(CacheInstanceTest, NoFragmentLeaseMeansWrongInstance) {
  EXPECT_EQ(inst_.Get(Ctx(1, /*fragment=*/42), "k").code(),
            Code::kWrongInstance);
}

TEST_F(CacheInstanceTest, RevokedFragmentLeaseStopsServing) {
  ASSERT_TRUE(inst_.Set(Ctx(), "k", CacheValue::OfData("v")).ok());
  inst_.RevokeFragmentLease(0, /*latest_config=*/2);
  EXPECT_EQ(inst_.Get(Ctx(2), "k").code(), Code::kWrongInstance);
}

TEST_F(CacheInstanceTest, ExpiredFragmentLeaseStopsServing) {
  inst_.GrantFragmentLease(0, 1, clock_.Now() + Seconds(1), 1);
  clock_.Advance(Seconds(2));
  EXPECT_EQ(inst_.Get(Ctx(), "k").code(), Code::kWrongInstance);
}

// ---- Eviction ----------------------------------------------------------------

CacheInstance::Options SmallCache(uint64_t bytes) {
  CacheInstance::Options o;
  o.capacity_bytes = bytes;
  o.per_entry_overhead = 0;
  return o;
}

TEST(CacheEviction, LruEvictsColdest) {
  VirtualClock clock;
  CacheInstance inst(0, &clock, SmallCache(30));
  inst.GrantFragmentLease(0, 1, clock.Now() + Seconds(3600), 1);
  OpContext ctx{1, 0};
  // Each entry: key 1 byte + 9 bytes payload = 10 bytes; capacity 3 entries.
  ASSERT_TRUE(inst.Set(ctx, "a", CacheValue::OfSize(9)).ok());
  ASSERT_TRUE(inst.Set(ctx, "b", CacheValue::OfSize(9)).ok());
  ASSERT_TRUE(inst.Set(ctx, "c", CacheValue::OfSize(9)).ok());
  // Touch "a" so "b" is coldest, then insert "d".
  EXPECT_TRUE(inst.Get(ctx, "a").ok());
  ASSERT_TRUE(inst.Set(ctx, "d", CacheValue::OfSize(9)).ok());
  EXPECT_TRUE(inst.ContainsRaw("a"));
  EXPECT_FALSE(inst.ContainsRaw("b"));
  EXPECT_TRUE(inst.ContainsRaw("c"));
  EXPECT_TRUE(inst.ContainsRaw("d"));
  EXPECT_EQ(inst.stats().evictions, 1u);
}

TEST(CacheEviction, OversizedValueRejected) {
  VirtualClock clock;
  CacheInstance inst(0, &clock, SmallCache(10));
  inst.GrantFragmentLease(0, 1, clock.Now() + Seconds(3600), 1);
  OpContext ctx{1, 0};
  EXPECT_EQ(inst.Set(ctx, "k", CacheValue::OfSize(100)).code(),
            Code::kInvalidArgument);
}

TEST(CacheEviction, DirtyListCanBeEvicted) {
  // The dirty list competes for memory like any entry (Section 3.1).
  VirtualClock clock;
  CacheInstance inst(0, &clock, SmallCache(64));
  inst.GrantFragmentLease(0, 1, clock.Now() + Seconds(3600), 1);
  OpContext ctx{1, 0};
  OpContext internal{kInternalConfigId, kInvalidFragment};
  const std::string list_key = DirtyListKey(0);
  ASSERT_TRUE(
      inst.Set(internal, list_key, CacheValue::OfData("\x01M\n")).ok());
  // Fill with hot application entries until the (cold) list is evicted.
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(inst.Set(ctx, "key" + std::to_string(i),
                         CacheValue::OfSize(10))
                    .ok());
  }
  EXPECT_FALSE(inst.ContainsRaw(list_key));
}

TEST(CacheEviction, UsedBytesTracksContent) {
  VirtualClock clock;
  CacheInstance inst(0, &clock, SmallCache(1000));
  inst.GrantFragmentLease(0, 1, clock.Now() + Seconds(3600), 1);
  OpContext ctx{1, 0};
  ASSERT_TRUE(inst.Set(ctx, "ab", CacheValue::OfSize(8)).ok());
  EXPECT_EQ(inst.stats().used_bytes, 10u);
  ASSERT_TRUE(inst.Set(ctx, "ab", CacheValue::OfSize(18)).ok());  // replace
  EXPECT_EQ(inst.stats().used_bytes, 20u);
  ASSERT_TRUE(inst.Delete(ctx, "ab").ok());
  EXPECT_EQ(inst.stats().used_bytes, 0u);
}

// ---- Availability & persistence ----------------------------------------------

TEST_F(CacheInstanceTest, FailedInstanceRejectsEverything) {
  ASSERT_TRUE(inst_.Set(Ctx(), "k", CacheValue::OfData("v")).ok());
  inst_.Fail();
  EXPECT_FALSE(inst_.available());
  EXPECT_EQ(inst_.Get(Ctx(), "k").code(), Code::kUnavailable);
  EXPECT_EQ(inst_.IqGet(Ctx(), "k").code(), Code::kUnavailable);
  EXPECT_EQ(inst_.Qareg(Ctx(), "k").code(), Code::kUnavailable);
  EXPECT_EQ(inst_.Set(Ctx(), "k", CacheValue::OfData("x")).code(),
            Code::kUnavailable);
  EXPECT_EQ(inst_.AcquireRed("d").code(), Code::kUnavailable);
}

TEST_F(CacheInstanceTest, PersistentRecoveryKeepsContent) {
  ASSERT_TRUE(inst_.Set(Ctx(), "k", CacheValue::OfData("v")).ok());
  inst_.Fail();
  inst_.RecoverPersistent();
  // Fragment leases are volatile: re-grant before serving.
  inst_.GrantFragmentLease(0, 1, clock_.Now() + Seconds(3600), 1);
  auto v = inst_.Get(Ctx(), "k");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->data, "v");
}

TEST_F(CacheInstanceTest, PersistentRecoveryDeletesQuarantinedEntries) {
  // A writer crashed us between its store update and Dar: the entry is
  // potentially stale and must not survive recovery.
  ASSERT_TRUE(inst_.Set(Ctx(), "k", CacheValue::OfData("old")).ok());
  (void)inst_.Qareg(Ctx(), "k");
  inst_.Fail();
  inst_.RecoverPersistent();
  inst_.GrantFragmentLease(0, 1, clock_.Now() + Seconds(3600), 1);
  EXPECT_EQ(inst_.Get(Ctx(), "k").code(), Code::kNotFound);
}

TEST_F(CacheInstanceTest, VolatileRecoveryWipesContent) {
  ASSERT_TRUE(inst_.Set(Ctx(), "k", CacheValue::OfData("v")).ok());
  inst_.Fail();
  inst_.RecoverVolatile();
  inst_.GrantFragmentLease(0, 1, clock_.Now() + Seconds(3600), 1);
  EXPECT_EQ(inst_.Get(Ctx(), "k").code(), Code::kNotFound);
  EXPECT_EQ(inst_.stats().entry_count, 0u);
}

TEST_F(CacheInstanceTest, RecoveryClearsLeases) {
  auto i = inst_.IqGet(Ctx(), "k");
  ASSERT_TRUE(i.ok());
  inst_.Fail();
  inst_.RecoverPersistent();
  inst_.GrantFragmentLease(0, 1, clock_.Now() + Seconds(3600), 1);
  // The old I token is gone; a new miss can acquire an I lease.
  EXPECT_EQ(inst_.IqSet(Ctx(), "k", CacheValue::OfData("v"), i->i_token).code(),
            Code::kLeaseInvalid);
  EXPECT_TRUE(inst_.IqGet(Ctx(), "k").ok());
}

TEST_F(CacheInstanceTest, StatsCountHitsMissesInsertsDeletes) {
  (void)inst_.Get(Ctx(), "k");                                  // miss
  ASSERT_TRUE(inst_.Set(Ctx(), "k", CacheValue::OfData("v")).ok());
  (void)inst_.Get(Ctx(), "k");                                  // hit
  ASSERT_TRUE(inst_.Delete(Ctx(), "k").ok());
  auto s = inst_.stats();
  EXPECT_EQ(s.misses, 1u);
  EXPECT_EQ(s.hits, 1u);
  EXPECT_EQ(s.inserts, 1u);
  EXPECT_EQ(s.deletes, 1u);
  inst_.ResetCounters();
  EXPECT_EQ(inst_.stats().hits, 0u);
}

TEST_F(CacheInstanceTest, LatestConfigIdMemoized) {
  EXPECT_EQ(inst_.latest_config_id(), 1u);
  inst_.GrantFragmentLease(3, 5, clock_.Now() + Seconds(3600), 5);
  EXPECT_EQ(inst_.latest_config_id(), 5u);
  inst_.RevokeFragmentLease(3, 9);
  EXPECT_EQ(inst_.latest_config_id(), 9u);
  // Never regresses.
  inst_.GrantFragmentLease(4, 2, clock_.Now() + Seconds(3600), 2);
  EXPECT_EQ(inst_.latest_config_id(), 9u);
}

}  // namespace
}  // namespace gemini
