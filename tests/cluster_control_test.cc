// Networked control plane, end to end in one process: a coordinator-only
// TransportServer hosting CoordinatorControl, instance TransportServers each
// running a CacheInstance, CoordinatorLinks registering and heartbeating
// over real TCP, a RemoteCoordinator consuming config pushes, and the full
// failure-detection cycle — kill a link, watch the coordinator fail the
// instance over missed beats and push the transient configuration; bring it
// back and watch recovery complete. Also covers the kStats introspection op
// (including InstanceOptions::extra_stats passthrough), cumulative server
// stats across Stop()/Start(), and the refusal paths (coordinator-only
// server vs data ops, plain geminid vs kCoord* ops).
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/cache/cache_instance.h"
#include "src/cluster/cluster_endpoint.h"
#include "src/cluster/coordinator_control.h"
#include "src/cluster/coordinator_link.h"
#include "src/cluster/remote_coordinator.h"
#include "src/common/clock.h"
#include "src/common/types.h"
#include "src/coordinator/configuration.h"
#include "src/transport/instance_registry.h"
#include "src/transport/server.h"
#include "src/transport/tcp_connection.h"
#include "src/transport/wire.h"

namespace gemini {
namespace {

/// Polls `pred` until it holds or `timeout` passes. Wall-clock based: the
/// cluster runs on SystemClock (real sockets, real threads).
bool WaitFor(const std::function<bool()>& pred,
             Duration timeout = Seconds(10)) {
  const Timestamp deadline = SystemClock::Global().Now() + timeout;
  while (SystemClock::Global().Now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

/// One in-process "geminid": a CacheInstance behind its own TransportServer,
/// with a CoordinatorLink beating at the cluster's interval.
struct InstanceNode {
  InstanceNode(InstanceId id, const Clock* clock,
               std::vector<std::pair<std::string, uint64_t>> extra_stats = {}) {
    instance = std::make_unique<CacheInstance>(id, clock);
    InstanceRegistry registry;
    InstanceOptions iopts;
    if (!extra_stats.empty()) {
      iopts.extra_stats = [extra_stats] { return extra_stats; };
    }
    EXPECT_TRUE(registry.Add(instance.get(), iopts).ok());
    server = std::make_unique<TransportServer>(std::move(registry),
                                               TransportServer::Options{});
    EXPECT_TRUE(server->Start().ok());
  }

  void StartLink(uint16_t coordinator_port, Duration interval) {
    CoordinatorLink::Options lopts;
    lopts.coordinator_host = "127.0.0.1";
    lopts.coordinator_port = coordinator_port;
    lopts.instance = instance->id();
    lopts.advertise_host = "127.0.0.1";
    lopts.advertise_port = server->port();
    lopts.heartbeat_interval = interval;
    lopts.on_config_id = [this](ConfigId latest) {
      instance->ObserveConfigId(latest);
    };
    link = std::make_unique<CoordinatorLink>(std::move(lopts));
    link->Start();
  }

  ~InstanceNode() {
    if (link) link->Stop();
    if (server) server->Stop();
  }

  std::unique_ptr<CacheInstance> instance;
  std::unique_ptr<TransportServer> server;
  std::unique_ptr<CoordinatorLink> link;
};

class ClusterControlTest : public ::testing::Test {
 protected:
  static constexpr Duration kBeat = Millis(20);

  void StartCluster(size_t num_instances, size_t num_fragments) {
    for (InstanceId i = 0; i < num_instances; ++i) {
      nodes_.push_back(
          std::make_unique<InstanceNode>(i, &SystemClock::Global()));
    }
    CoordinatorControl::Options copts;
    copts.num_instances = num_instances;
    copts.num_fragments = num_fragments;
    copts.heartbeat.interval = kBeat;
    copts.heartbeat.miss_threshold = 3;
    control_ = std::make_unique<CoordinatorControl>(&SystemClock::Global(),
                                                    copts);
    TransportServer::Options sopts;
    sopts.control = control_.get();
    coord_server_ = std::make_unique<TransportServer>(InstanceRegistry{},
                                                      sopts);
    ASSERT_TRUE(coord_server_->Start().ok());
    control_->Start(coord_server_.get());
    for (auto& node : nodes_) {
      node->StartLink(coord_server_->port(), kBeat);
    }
  }

  void TearDown() override {
    nodes_.clear();  // links stop before the coordinator goes away
    if (control_) control_->Stop();
    if (coord_server_) coord_server_->Stop();
  }

  /// Latest mode of `fragment` as a client would see it via `remote`.
  static FragmentMode ModeSeenBy(const RemoteCoordinator& remote,
                                 FragmentId fragment) {
    ConfigurationPtr c = remote.GetConfiguration();
    if (!c || fragment >= c->num_fragments()) return FragmentMode::kNormal;
    return c->fragment(fragment).mode;
  }

  std::vector<std::unique_ptr<InstanceNode>> nodes_;
  std::unique_ptr<CoordinatorControl> control_;
  std::unique_ptr<TransportServer> coord_server_;
};

TEST_F(ClusterControlTest, RegistersInstancesAndDistributesConfig) {
  StartCluster(/*num_instances=*/2, /*num_fragments=*/4);

  // Links register over TCP; the coordinator's recovery cycle for the
  // initial attach inserts the serialized configuration into each instance.
  ASSERT_TRUE(WaitFor([&] {
    return nodes_[0]->instance->ContainsRaw(ConfigKey()) &&
           nodes_[1]->instance->ContainsRaw(ConfigKey());
  }));
  EXPECT_TRUE(nodes_[0]->link->registered());
  EXPECT_TRUE(nodes_[1]->link->registered());

  // A remote client bootstraps the same configuration from the coordinator.
  RemoteCoordinator::Options ropts;
  ropts.rewatch_interval = 0;  // single explicit fetch
  RemoteCoordinator remote("127.0.0.1", coord_server_->port(), ropts);
  ASSERT_TRUE(remote.Refresh().ok());
  ConfigurationPtr config = remote.GetConfiguration();
  ASSERT_NE(config, nullptr);
  EXPECT_EQ(config->num_fragments(), 4u);
  EXPECT_GE(config->id(), 1u);
  for (FragmentId f = 0; f < 4; ++f) {
    EXPECT_EQ(config->fragment(f).mode, FragmentMode::kNormal);
  }
}

TEST_F(ClusterControlTest, MissedBeatsFailOverAndPushesReachSubscribers) {
  StartCluster(/*num_instances=*/2, /*num_fragments=*/2);
  ASSERT_TRUE(WaitFor([&] {
    return nodes_[0]->link->registered() && nodes_[1]->link->registered();
  }));

  // Subscribe once; every later advance must arrive by push alone.
  RemoteCoordinator::Options ropts;
  ropts.rewatch_interval = 0;
  RemoteCoordinator remote("127.0.0.1", coord_server_->port(), ropts);
  ASSERT_TRUE(remote.Refresh().ok());
  const ConfigId before = remote.latest_id();

  // Fragment 0 starts on instance 0 (f % M). Silence instance 0's link:
  // within interval * miss_threshold the coordinator must fail it over.
  nodes_[0]->link->Stop();
  ASSERT_TRUE(WaitFor([&] {
    return ModeSeenBy(remote, 0) == FragmentMode::kTransient;
  })) << "failover config never reached the subscribed client";
  EXPECT_GT(remote.latest_id(), before);
  ConfigurationPtr transient_config = remote.GetConfiguration();
  EXPECT_EQ(transient_config->fragment(0).secondary, 1u);

  // The secondary got the marker-bearing dirty list over the wire.
  EXPECT_TRUE(nodes_[1]->instance->ContainsRaw(DirtyListKey(0)));

  // The survivor keeps beating and stays untouched.
  EXPECT_EQ(transient_config->fragment(1).primary, 1u);
  EXPECT_EQ(transient_config->fragment(1).mode, FragmentMode::kNormal);

  // Bring instance 0 back: re-registration is the recovery edge. The dirty
  // list is intact, so the fragment enters recovery mode (transition (2)).
  nodes_[0]->link->Start();
  ASSERT_TRUE(WaitFor([&] {
    return ModeSeenBy(remote, 0) == FragmentMode::kRecovery;
  }));

  // Recovery-side reports travel as kCoordReport; the dirty-query answer
  // flips once the drain is recorded.
  EXPECT_FALSE(remote.DirtyProcessed(0));
  remote.OnDirtyListProcessed(0);
  ASSERT_TRUE(WaitFor([&] { return remote.DirtyProcessed(0); }));
  remote.OnWorkingSetTransferTerminated(0);
  ASSERT_TRUE(WaitFor([&] {
    return ModeSeenBy(remote, 0) == FragmentMode::kNormal;
  })) << "recovery never completed";
}

TEST_F(ClusterControlTest, HeartbeatRepliesCarryConfigIdAdvances) {
  StartCluster(/*num_instances=*/2, /*num_fragments=*/2);
  ASSERT_TRUE(WaitFor([&] {
    return nodes_[0]->link->registered() && nodes_[1]->link->registered();
  }));
  // Fail instance 0 -> the coordinator publishes a new id. Instance 1 must
  // observe the advance through its heartbeat replies alone (no push
  // subscription on the link path).
  const ConfigId before = control_->coordinator().latest_id();
  nodes_[0]->link->Stop();
  ASSERT_TRUE(WaitFor([&] {
    return control_->coordinator().latest_id() > before &&
           nodes_[1]->instance->latest_config_id() >
               before;
  }));
}

TEST(ClusterControlRefusalTest, CoordinatorOnlyServerRejectsDataOps) {
  CoordinatorControl::Options copts;
  copts.num_instances = 1;
  copts.num_fragments = 1;
  CoordinatorControl control(&SystemClock::Global(), copts);
  TransportServer::Options sopts;
  sopts.control = &control;
  TransportServer server(InstanceRegistry{}, sopts);
  ASSERT_TRUE(server.Start().ok());
  control.Start(&server);

  TcpConnection conn("127.0.0.1", server.port(), wire::kAnyInstance,
                     TcpConnection::Options{});
  ASSERT_TRUE(conn.Connect().ok());
  std::string resp;
  EXPECT_TRUE(conn.Transact(wire::Op::kPing, "", &resp).ok());

  // Data ops have no instance to land on.
  std::string body;
  wire::PutContext(body, OpContext{kInternalConfigId, kInvalidFragment});
  wire::PutKey(body, "k");
  EXPECT_EQ(conn.Transact(wire::Op::kGet, body, &resp).code(),
            Code::kUnavailable);

  // But the control plane answers.
  EXPECT_EQ(conn.Transact(wire::Op::kCoordConfigGet, "", &resp).code(),
            Code::kOk);

  control.Stop();
  server.Stop();
}

TEST(ClusterControlRefusalTest, PlainGeminidRejectsCoordinatorOps) {
  InstanceNode node(0, &SystemClock::Global());
  TcpConnection conn("127.0.0.1", node.server->port(), wire::kAnyInstance,
                     TcpConnection::Options{});
  ASSERT_TRUE(conn.Connect().ok());
  std::string resp;
  EXPECT_EQ(conn.Transact(wire::Op::kCoordConfigGet, "", &resp).code(),
            Code::kInvalidArgument);
}

TEST(ClusterStatsTest, StatsOpReportsServerCacheAndExtraCounters) {
  InstanceNode node(0, &SystemClock::Global(),
                    {{"persist.journal_commits", 7},
                     {"persist.appended_bytes", 4096}});
  TcpConnection conn("127.0.0.1", node.server->port(), wire::kAnyInstance,
                     TcpConnection::Options{});
  ASSERT_TRUE(conn.Connect().ok());

  std::string body;
  wire::PutContext(body, OpContext{kInternalConfigId, kInvalidFragment});
  wire::PutKey(body, "k");
  wire::PutValue(body, CacheValue::OfData("v"));
  std::string resp;
  ASSERT_TRUE(conn.Transact(wire::Op::kSet, body, &resp).ok());

  ASSERT_TRUE(conn.Transact(wire::Op::kStats, "", &resp).ok());
  wire::Reader r(resp);
  uint32_t count = 0;
  ASSERT_TRUE(r.GetU32(&count));
  std::map<std::string, uint64_t> stats;
  for (uint32_t i = 0; i < count; ++i) {
    std::string_view name;
    uint64_t value = 0;
    ASSERT_TRUE(r.GetBlob(&name));
    ASSERT_TRUE(r.GetU64(&value));
    stats[std::string(name)] = value;
  }
  EXPECT_TRUE(r.Done());

  EXPECT_GE(stats["server.frames_handled"], 1u);
  EXPECT_EQ(stats["cache.inserts"], 1u);
  EXPECT_EQ(stats["cache.entry_count"], 1u);
  // InstanceOptions::extra_stats rides along — how geminid surfaces its
  // PersistentStore counters without a transport -> persist dependency.
  EXPECT_EQ(stats["persist.journal_commits"], 7u);
  EXPECT_EQ(stats["persist.appended_bytes"], 4096u);
}

TEST(ClusterStatsTest, ServerStatsAccumulateAcrossRestart) {
  SystemClock clock;
  CacheInstance instance(0, &clock);
  InstanceRegistry registry;
  ASSERT_TRUE(registry.Add(&instance, InstanceOptions{}).ok());
  TransportServer server(std::move(registry), TransportServer::Options{});
  ASSERT_TRUE(server.Start().ok());

  {
    TcpConnection conn("127.0.0.1", server.port(), wire::kAnyInstance,
                       TcpConnection::Options{});
    ASSERT_TRUE(conn.Connect().ok());
    std::string resp;
    ASSERT_TRUE(conn.Transact(wire::Op::kPing, "", &resp).ok());
    ASSERT_TRUE(conn.Transact(wire::Op::kPing, "", &resp).ok());
    conn.Disconnect();
  }
  const TransportServer::Stats before = server.stats();
  EXPECT_GE(before.connections_accepted, 1u);
  EXPECT_GE(before.frames_handled, 2u);

  // Counters are cumulative across a restart: a monitoring scrape after a
  // rolling bounce must not watch the totals jump backwards.
  server.Stop();
  ASSERT_TRUE(server.Start().ok());
  TransportServer::Stats after = server.stats();
  EXPECT_GE(after.connections_accepted, before.connections_accepted);
  EXPECT_GE(after.frames_handled, before.frames_handled);

  // And they keep counting up from the preserved baseline.
  TcpConnection conn("127.0.0.1", server.port(), wire::kAnyInstance,
                     TcpConnection::Options{});
  ASSERT_TRUE(conn.Connect().ok());
  std::string resp;
  ASSERT_TRUE(conn.Transact(wire::Op::kPing, "", &resp).ok());
  conn.Disconnect();
  after = server.stats();
  EXPECT_GE(after.frames_handled, before.frames_handled + 1);
  server.Stop();
}

TEST(ClusterEndpointTest, UnattachedEndpointIsDownAndDropsOps) {
  ClusterEndpoint ep(0, ClusterEndpoint::Options{});
  EXPECT_FALSE(ep.available());
  ep.SetUp(true);
  EXPECT_FALSE(ep.available());  // gated up but no address yet
  auto got = ep.Get("k");
  EXPECT_EQ(got.code(), Code::kUnavailable);
  EXPECT_EQ(ep.Set("k", CacheValue::OfData("v")).code(), Code::kUnavailable);
  // Lease calls are fire-and-forget: they must not crash unattached.
  ep.GrantLease(0, 1, Seconds(1), 1);
  ep.RevokeLease(0, 1);
}

}  // namespace
}  // namespace gemini
