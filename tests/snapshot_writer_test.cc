// SnapshotWriter tests: periodic sweeps actually fire and persist every
// target, the shutdown path (Stop + final WriteAll — what geminid runs on
// SIGTERM) leaves authoritative snapshots behind, and concurrent writers
// never publish a torn file.
#include "src/cache/snapshot_writer.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <dirent.h>
#include <sys/stat.h>

#include "src/cache/cache_instance.h"
#include "src/cache/snapshot.h"
#include "src/common/clock.h"

namespace gemini {
namespace {

constexpr OpContext kCtx{kInternalConfigId, kInvalidFragment};

class SnapshotWriterTest : public ::testing::Test {
 protected:
  std::string TempPath(const std::string& name) {
    const std::string path = ::testing::TempDir() + "/" + name;
    std::remove(path.c_str());
    paths_.push_back(path);
    return path;
  }

  void TearDown() override {
    for (const auto& p : paths_) std::remove(p.c_str());
  }

  /// Empties and removes a single-level directory (test scratch space).
  static void RemoveAllIn(const std::string& dir) {
    if (DIR* dp = ::opendir(dir.c_str())) {
      while (struct dirent* e = ::readdir(dp)) {
        const std::string name = e->d_name;
        if (name != "." && name != "..") {
          std::remove((dir + "/" + name).c_str());
        }
      }
      ::closedir(dp);
      ::rmdir(dir.c_str());
    }
  }

  /// Loads `path` into a fresh instance; false when the file is missing or
  /// torn. The instance stays alive (in restored_) for content checks.
  bool LoadsCleanly(InstanceId id, const std::string& path,
                    CacheInstance** out = nullptr) {
    restored_ = std::make_unique<CacheInstance>(id, &clock_);
    if (!Snapshot::LoadFromFile(*restored_, path).ok()) return false;
    if (out != nullptr) *out = restored_.get();
    return true;
  }

  VirtualClock clock_;
  std::vector<std::string> paths_;
  std::unique_ptr<CacheInstance> restored_;
};

TEST_F(SnapshotWriterTest, StartRejectsMalformedTargets) {
  CacheInstance instance(1, &clock_);
  {
    SnapshotWriter writer({{nullptr, "x"}}, {});
    EXPECT_EQ(writer.Start().code(), Code::kInvalidArgument);
  }
  {
    SnapshotWriter writer({{&instance, ""}}, {});
    EXPECT_EQ(writer.Start().code(), Code::kInvalidArgument);
  }
}

TEST_F(SnapshotWriterTest, DisabledIntervalMeansNoThreadButWriteAllWorks) {
  CacheInstance instance(1, &clock_);
  const std::string path = TempPath("writer_manual.bin");
  ASSERT_TRUE(instance.Set(kCtx, "k", CacheValue::OfData("v")).ok());

  SnapshotWriter writer({{&instance, path}}, SnapshotWriter::Options{});
  ASSERT_TRUE(writer.Start().ok());
  EXPECT_FALSE(writer.running());

  ASSERT_TRUE(writer.WriteAll().ok());
  CacheInstance* restored = nullptr;
  ASSERT_TRUE(LoadsCleanly(1, path, &restored));
  EXPECT_TRUE(restored->ContainsRaw("k"));
  EXPECT_EQ(writer.stats().writes_ok, 1u);
}

TEST_F(SnapshotWriterTest, PeriodicSweepWritesEveryTarget) {
  CacheInstance a(1, &clock_), b(2, &clock_);
  const std::string path_a = TempPath("writer_periodic_a.bin");
  const std::string path_b = TempPath("writer_periodic_b.bin");
  ASSERT_TRUE(a.Set(kCtx, "ka", CacheValue::OfData("va")).ok());
  ASSERT_TRUE(b.Set(kCtx, "kb", CacheValue::OfData("vb")).ok());

  SnapshotWriter::Options options;
  options.interval = Millis(5);
  SnapshotWriter writer({{&a, path_a}, {&b, path_b}}, options);
  ASSERT_TRUE(writer.Start().ok());
  EXPECT_TRUE(writer.running());

  // Wait for at least one full sweep (bounded: ~2s worst case).
  for (int i = 0; i < 400 && writer.stats().sweeps < 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  ASSERT_GE(writer.stats().sweeps, 1u);
  writer.Stop();
  EXPECT_FALSE(writer.running());

  CacheInstance* restored = nullptr;
  ASSERT_TRUE(LoadsCleanly(1, path_a, &restored));
  EXPECT_TRUE(restored->ContainsRaw("ka"));
  ASSERT_TRUE(LoadsCleanly(2, path_b, &restored));
  EXPECT_TRUE(restored->ContainsRaw("kb"));
}

TEST_F(SnapshotWriterTest, ShutdownPathWritesFinalAuthoritativeSnapshot) {
  // The geminid SIGTERM sequence: mutate, Stop() the periodic thread, then
  // WriteAll() — the file on disk must reflect the *latest* state even if
  // no periodic sweep ever saw it.
  CacheInstance instance(3, &clock_);
  const std::string path = TempPath("writer_shutdown.bin");
  SnapshotWriter::Options options;
  options.interval = Seconds(3600);  // will never fire during the test
  SnapshotWriter writer({{&instance, path}}, options);
  ASSERT_TRUE(writer.Start().ok());

  ASSERT_TRUE(instance.Set(kCtx, "late", CacheValue::OfData("write")).ok());
  writer.Stop();
  ASSERT_TRUE(writer.WriteAll().ok());

  CacheInstance* restored = nullptr;
  ASSERT_TRUE(LoadsCleanly(3, path, &restored));
  EXPECT_TRUE(restored->ContainsRaw("late"));
}

TEST_F(SnapshotWriterTest, StopIsIdempotentAndSafeWithoutStart) {
  CacheInstance instance(1, &clock_);
  SnapshotWriter writer({{&instance, TempPath("writer_noop.bin")}}, {});
  writer.Stop();
  writer.Stop();
  ASSERT_TRUE(writer.Start().ok());
  writer.Stop();
  writer.Stop();
}

TEST_F(SnapshotWriterTest, ShutdownSweepSurfacesFailureButWritesEveryTarget) {
  // The SIGTERM sweep writes N instances; target 1 failing must not stop
  // target 2 from persisting (its entries are at stake too), and the sweep
  // must still report the failure so geminid exits non-zero rather than
  // pretend the state is safe on disk.
  CacheInstance broken(1, &clock_), healthy(2, &clock_);
  ASSERT_TRUE(healthy.Set(kCtx, "keep", CacheValue::OfData("me")).ok());
  const std::string bad_path =
      ::testing::TempDir() + "/no_such_dir_ever/snap.bin";
  const std::string good_path = TempPath("writer_partial_fail.bin");

  SnapshotWriter writer({{&broken, bad_path}, {&healthy, good_path}}, {});
  ASSERT_TRUE(writer.Start().ok());
  Status s = writer.WriteAll();
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(writer.stats().writes_failed, 1u);
  EXPECT_EQ(writer.stats().writes_ok, 1u);

  CacheInstance* restored = nullptr;
  ASSERT_TRUE(LoadsCleanly(2, good_path, &restored));
  EXPECT_TRUE(restored->ContainsRaw("keep"));
}

TEST_F(SnapshotWriterTest, PublishedSnapshotLeavesNoTempFilesBehind) {
  // The durable-publish sequence is write-temp, fsync, rename, fsync-dir:
  // after any number of sweeps the directory must hold exactly the final
  // snapshot name — a lingering ".tmp." file means a rename (and therefore
  // the dir-fsync that makes it durable) never happened for that write.
  const std::string dir = ::testing::TempDir() + "/writer_tmpscan";
  RemoveAllIn(dir);
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  const std::string path = dir + "/snap.bin";

  CacheInstance instance(4, &clock_);
  SnapshotWriter writer({{&instance, path}}, {});
  ASSERT_TRUE(writer.Start().ok());
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(instance.Set(kCtx, "k" + std::to_string(i),
                             CacheValue::OfData("v")).ok());
    ASSERT_TRUE(writer.WriteAll().ok());
  }

  std::vector<std::string> names;
  DIR* dp = ::opendir(dir.c_str());
  ASSERT_NE(dp, nullptr);
  while (struct dirent* e = ::readdir(dp)) {
    const std::string name = e->d_name;
    if (name != "." && name != "..") names.push_back(name);
  }
  ::closedir(dp);
  ASSERT_EQ(names.size(), 1u) << "leftover temp files in " << dir;
  EXPECT_EQ(names[0], "snap.bin");
  RemoveAllIn(dir);
}

TEST_F(SnapshotWriterTest, ConcurrentWritersNeverPublishATornSnapshot) {
  // A tiny interval keeps the periodic thread sweeping while the foreground
  // hammers WriteAll() and mutates the instance; every published file must
  // load cleanly (rename atomicity + unique temp names).
  CacheInstance instance(5, &clock_);
  const std::string path = TempPath("writer_race.bin");
  SnapshotWriter::Options options;
  options.interval = Micros(200);
  SnapshotWriter writer({{&instance, path}}, options);
  ASSERT_TRUE(writer.Start().ok());

  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(instance
                    .Set(kCtx, "k" + std::to_string(i),
                         CacheValue::OfData(std::string(256, 'x')))
                    .ok());
    ASSERT_TRUE(writer.WriteAll().ok());
    ASSERT_TRUE(LoadsCleanly(5, path)) << "torn snapshot at iteration " << i;
  }
  writer.Stop();
  ASSERT_TRUE(writer.WriteAll().ok());
  EXPECT_TRUE(LoadsCleanly(5, path));
  EXPECT_EQ(writer.stats().writes_failed, 0u);
}

}  // namespace
}  // namespace gemini
