// On-disk snapshot tests: round trips, LRU-order preservation, the
// crash-spanning quarantine rule, and fail-closed corruption handling.
#include "src/cache/snapshot.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

namespace gemini {
namespace {

class SnapshotTest : public ::testing::Test {
 protected:
  SnapshotTest() : inst_(0, &clock_), restored_(1, &clock_) {
    for (auto* i : {&inst_, &restored_}) {
      i->GrantFragmentLease(0, 1, clock_.Now() + Seconds(3600), 1);
    }
  }
  OpContext Ctx(ConfigId id = 1) { return OpContext{id, 0}; }

  VirtualClock clock_;
  CacheInstance inst_;
  CacheInstance restored_;
};

TEST_F(SnapshotTest, EmptyInstanceRoundTrips) {
  const std::string payload = Snapshot::Serialize(inst_);
  ASSERT_TRUE(Snapshot::Load(restored_, payload).ok());
  EXPECT_EQ(restored_.stats().entry_count, 0u);
}

TEST_F(SnapshotTest, EntriesRoundTripWithVersionsAndConfigIds) {
  ASSERT_TRUE(inst_.Set(Ctx(1), "a", CacheValue::OfData("va", 3)).ok());
  ASSERT_TRUE(inst_.Set(Ctx(5), "b", CacheValue::OfData("vb", 7)).ok());
  ASSERT_TRUE(inst_.Set(Ctx(5), "c", CacheValue::OfSize(512, 9)).ok());

  ASSERT_TRUE(Snapshot::Load(restored_, Snapshot::Serialize(inst_)).ok());
  auto a = restored_.Get(OpContext{5, 0}, "a");
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(a->data, "va");
  EXPECT_EQ(a->version, 3u);
  EXPECT_EQ(*restored_.RawConfigIdOf("a"), 1u);
  EXPECT_EQ(*restored_.RawConfigIdOf("b"), 5u);
  auto c = restored_.Get(OpContext{5, 0}, "c");
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(c->charged_bytes, 512u);
  EXPECT_EQ(c->version, 9u);
}

TEST_F(SnapshotTest, LruOrderSurvivesRestore) {
  // Restore into a bounded cache and check the eviction order matches the
  // original recency order.
  CacheInstance::Options small;
  small.capacity_bytes = 2 * (1 + 10 + small.per_entry_overhead);
  CacheInstance bounded(2, &clock_, small);
  bounded.GrantFragmentLease(0, 1, clock_.Now() + Seconds(3600), 1);

  ASSERT_TRUE(inst_.Set(Ctx(), "a", CacheValue::OfSize(10)).ok());
  ASSERT_TRUE(inst_.Set(Ctx(), "b", CacheValue::OfSize(10)).ok());
  ASSERT_TRUE(inst_.Set(Ctx(), "c", CacheValue::OfSize(10)).ok());
  ASSERT_TRUE(inst_.Get(Ctx(), "a").ok());  // recency: a, c, b

  ASSERT_TRUE(Snapshot::Load(bounded, Snapshot::Serialize(inst_)).ok());
  // Capacity of 2: the coldest ("b") must be the one evicted.
  EXPECT_TRUE(bounded.ContainsRaw("a"));
  EXPECT_TRUE(bounded.ContainsRaw("c"));
  EXPECT_FALSE(bounded.ContainsRaw("b"));
}

TEST_F(SnapshotTest, QuarantinedKeysAreNotRestored) {
  // The writer updated the store but never completed its delete: the entry
  // must not survive into the restored instance.
  ASSERT_TRUE(inst_.Set(Ctx(), "clean", CacheValue::OfData("v")).ok());
  ASSERT_TRUE(inst_.Set(Ctx(), "dirty", CacheValue::OfData("old")).ok());
  ASSERT_TRUE(inst_.Qareg(Ctx(), "dirty").ok());

  ASSERT_TRUE(Snapshot::Load(restored_, Snapshot::Serialize(inst_)).ok());
  EXPECT_TRUE(restored_.ContainsRaw("clean"));
  EXPECT_FALSE(restored_.ContainsRaw("dirty"));
}

TEST_F(SnapshotTest, CorruptionFailsClosed) {
  ASSERT_TRUE(inst_.Set(Ctx(), "a", CacheValue::OfData("va")).ok());
  std::string payload = Snapshot::Serialize(inst_);

  // Flip a byte in the middle: checksum mismatch.
  std::string corrupted = payload;
  corrupted[payload.size() / 2] ^= 0x5a;
  EXPECT_EQ(Snapshot::Load(restored_, corrupted).code(), Code::kInternal);

  // Truncation.
  EXPECT_EQ(
      Snapshot::Load(restored_, payload.substr(0, payload.size() - 3)).code(),
      Code::kInternal);

  // Wrong magic.
  std::string wrong = payload;
  wrong[0] = 'X';
  EXPECT_EQ(Snapshot::Load(restored_, wrong).code(), Code::kInternal);

  // Nothing was partially installed from the corrupt payloads.
  EXPECT_EQ(restored_.stats().entry_count, 0u);
}

TEST_F(SnapshotTest, FileRoundTrip) {
  ASSERT_TRUE(inst_.Set(Ctx(), "k", CacheValue::OfData("file-v", 2)).ok());
  const std::string path = ::testing::TempDir() + "/gemini_snapshot_test.bin";
  ASSERT_TRUE(Snapshot::WriteToFile(inst_, path).ok());
  ASSERT_TRUE(Snapshot::LoadFromFile(restored_, path).ok());
  auto v = restored_.Get(Ctx(), "k");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->data, "file-v");
  std::remove(path.c_str());
}

TEST_F(SnapshotTest, PinnedWriteBackEntriesSurviveSnapshot) {
  // The durability chain end to end: buffered write-back value -> snapshot
  // -> restore into a new process -> flush queue rebuilt.
  auto q = inst_.Qareg(Ctx(), "buffered");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(inst_.WriteBackInstall(Ctx(), "buffered",
                                     CacheValue::OfData("payload", 9), *q)
                  .ok());
  ASSERT_TRUE(Snapshot::Load(restored_, Snapshot::Serialize(inst_)).ok());
  EXPECT_EQ(restored_.pending_flush_count(), 1u);
  auto batch = restored_.TakePendingFlushes(10);
  ASSERT_EQ(batch.size(), 1u);
  EXPECT_EQ(batch[0].key, "buffered");
  EXPECT_EQ(batch[0].value.data, "payload");
  EXPECT_EQ(batch[0].value.version, 9u);
}

TEST_F(SnapshotTest, OnDiskCorruptionFailsClosed) {
  // File-level fail-closed check: a snapshot torn *on disk* (bit rot, a
  // crash mid-write that fsync ordering did not cover) must be rejected by
  // LoadFromFile, never partially installed.
  ASSERT_TRUE(inst_.Set(Ctx(), "k", CacheValue::OfData("payload", 4)).ok());
  const std::string path = ::testing::TempDir() + "/gemini_corrupt_test.bin";
  ASSERT_TRUE(Snapshot::WriteToFile(inst_, path).ok());

  // Flip one byte in the middle of the file.
  std::FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
  const long size = std::ftell(f);
  ASSERT_GT(size, 0);
  ASSERT_EQ(std::fseek(f, size / 2, SEEK_SET), 0);
  int byte = std::fgetc(f);
  ASSERT_NE(byte, EOF);
  ASSERT_EQ(std::fseek(f, size / 2, SEEK_SET), 0);
  ASSERT_NE(std::fputc(byte ^ 0x5a, f), EOF);
  ASSERT_EQ(std::fclose(f), 0);

  EXPECT_EQ(Snapshot::LoadFromFile(restored_, path).code(), Code::kInternal);
  EXPECT_EQ(restored_.stats().entry_count, 0u);
  std::remove(path.c_str());
}

TEST_F(SnapshotTest, MissingFileIsNotFound) {
  EXPECT_EQ(
      Snapshot::LoadFromFile(restored_, "/nonexistent/gemini.snap").code(),
      Code::kNotFound);
}

TEST_F(SnapshotTest, CrashRestartRecoveryEndToEnd) {
  // Full durability cycle: snapshot, destroy the process state, restore
  // into a brand-new instance, and verify Gemini-relevant state (config-id
  // stamps) is intact for the Rejig validity rule.
  ASSERT_TRUE(inst_.Set(Ctx(1), "old-epoch", CacheValue::OfData("v1")).ok());
  inst_.GrantFragmentLease(0, 1, clock_.Now() + Seconds(3600), 4);
  ASSERT_TRUE(
      inst_.Set(OpContext{4, 0}, "new-epoch", CacheValue::OfData("v4")).ok());
  const std::string path = ::testing::TempDir() + "/gemini_crash_test.bin";
  ASSERT_TRUE(Snapshot::WriteToFile(inst_, path).ok());

  CacheInstance reborn(7, &clock_);
  ASSERT_TRUE(Snapshot::LoadFromFile(reborn, path).ok());
  // A fragment lease with min-valid 3 must accept the new-epoch entry and
  // lazily discard the old-epoch one — stamps survived the restart.
  reborn.GrantFragmentLease(0, 3, clock_.Now() + Seconds(3600), 4);
  EXPECT_TRUE(reborn.Get(OpContext{4, 0}, "new-epoch").ok());
  EXPECT_EQ(reborn.Get(OpContext{4, 0}, "old-epoch").code(),
            Code::kNotFound);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace gemini
