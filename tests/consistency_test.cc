// Read-after-write consistency tests mapping to the paper's Appendix A
// proof: Lemma 2 (normal-mode I/Q races, Cases I and II), Lemma 4
// (recovery-mode miss paths), Lemma 5 (dirty keys treated as misses), plus
// the StaleReadChecker itself and the StaleCache anomaly it exists to catch.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/cache/cache_instance.h"
#include "src/client/gemini_client.h"
#include "src/consistency/stale_read_checker.h"
#include "src/coordinator/coordinator.h"
#include "src/store/data_store.h"

namespace gemini {
namespace {

// ---- StaleReadChecker ---------------------------------------------------------

TEST(StaleReadChecker, FlagsOldVersions) {
  DataStore store;
  store.Put("k", "v1");  // version 1
  StaleReadChecker checker(&store);
  EXPECT_FALSE(checker.OnRead(0, "k", 1));
  store.Update("k");  // version 2
  EXPECT_TRUE(checker.OnRead(Seconds(1), "k", 1));
  EXPECT_FALSE(checker.OnRead(Seconds(1), "k", 2));
  EXPECT_EQ(checker.total_reads(), 3u);
  EXPECT_EQ(checker.total_stale(), 1u);
  EXPECT_EQ(checker.stale_per_interval().At(Seconds(1)), 1u);
}

// ---- Lemma 2: normal mode, concurrent read-miss and write ---------------------

class LemmaFixture : public ::testing::Test {
 protected:
  LemmaFixture() : inst_(0, &clock_) {
    inst_.GrantFragmentLease(0, 1, clock_.Now() + Seconds(3600), 1);
    store_.Put("k", "v");
    ctx_ = OpContext{1, 0};
  }

  VirtualClock clock_;
  CacheInstance inst_;
  DataStore store_;
  OpContext ctx_;
};

TEST_F(LemmaFixture, Lemma2CaseI_InsertBeforeQ) {
  // r's insert happens before w acquires its Q lease: r is serialized
  // before w, and w's delete removes the inserted entry.
  auto rg = inst_.IqGet(ctx_, "k");
  ASSERT_TRUE(rg.ok());
  auto rec = store_.Query("k");
  ASSERT_TRUE(inst_.IqSet(ctx_, "k", CacheValue::OfData(rec->data, rec->version),
                          rg->i_token)
                  .ok());
  // Now the write runs.
  auto q = inst_.Qareg(ctx_, "k");
  store_.Update("k", "v2");
  ASSERT_TRUE(inst_.Dar(ctx_, "k", *q).ok());
  // The (now old) inserted entry is gone: no future read sees v.
  EXPECT_EQ(inst_.Get(ctx_, "k").code(), Code::kNotFound);
}

TEST_F(LemmaFixture, Lemma2CaseII_QBeforeInsert) {
  // w acquires Q before r's insert: the I lease is voided, the insert is
  // ignored, and the cache never holds the stale value.
  auto rg = inst_.IqGet(ctx_, "k");
  ASSERT_TRUE(rg.ok());
  auto rec = store_.Query("k");  // r read v from the store...
  auto q = inst_.Qareg(ctx_, "k");
  store_.Update("k", "v2");
  ASSERT_TRUE(inst_.Dar(ctx_, "k", *q).ok());
  // ...and its insert after w completes is dropped.
  EXPECT_EQ(inst_.IqSet(ctx_, "k",
                        CacheValue::OfData(rec->data, rec->version),
                        rg->i_token)
                .code(),
            Code::kLeaseInvalid);
  EXPECT_EQ(inst_.Get(ctx_, "k").code(), Code::kNotFound);
}

// ---- Lemmas 4/5 via the full client stack --------------------------------------

class RecoveryConsistency : public ::testing::Test {
 protected:
  static constexpr size_t kInstances = 3;
  static constexpr size_t kFragments = 6;

  void Build(RecoveryPolicy policy) {
    for (size_t i = 0; i < kInstances; ++i) {
      instances_.push_back(std::make_unique<CacheInstance>(
          static_cast<InstanceId>(i), &clock_));
      raw_.push_back(instances_.back().get());
    }
    Coordinator::Options opts;
    opts.policy = policy;
    coordinator_ =
        std::make_unique<Coordinator>(&clock_, raw_, kFragments, opts);
    GeminiClient::Options copts;
    copts.working_set_transfer = policy.working_set_transfer;
    client_ = std::make_unique<GeminiClient>(&clock_, coordinator_.get(),
                                             raw_, &store_, copts);
    checker_ = std::make_unique<StaleReadChecker>(&store_);
    for (int i = 0; i < 300; ++i) {
      store_.Put("user" + std::to_string(i), "v");
    }
  }

  bool AuditRead(const std::string& key) {
    auto r = client_->Read(session_, key);
    if (!r.ok()) return false;
    return checker_->OnRead(clock_.Now(), key, r->value.version);
  }

  std::vector<std::string> KeysOnInstance0(int want) {
    std::vector<std::string> keys;
    auto cfg = coordinator_->GetConfiguration();
    for (int i = 0; i < 300 && static_cast<int>(keys.size()) < want; ++i) {
      std::string key = "user" + std::to_string(i);
      if (cfg->fragment(cfg->FragmentOf(key)).primary == 0) {
        keys.push_back(std::move(key));
      }
    }
    return keys;
  }

  VirtualClock clock_;
  DataStore store_;
  std::vector<std::unique_ptr<CacheInstance>> instances_;
  std::vector<CacheInstance*> raw_;
  std::unique_ptr<Coordinator> coordinator_;
  std::unique_ptr<GeminiClient> client_;
  std::unique_ptr<StaleReadChecker> checker_;
  Session session_;
};

TEST_F(RecoveryConsistency, GeminiServesZeroStaleReadsAcrossFailure) {
  Build(RecoveryPolicy::GeminiOW());
  auto keys = KeysOnInstance0(10);
  ASSERT_GE(keys.size(), 3u);
  for (const auto& k : keys) EXPECT_FALSE(AuditRead(k));  // warm

  coordinator_->OnInstanceFailed(0);
  // Writes during the failure make the persisted primary entries stale.
  for (const auto& k : keys) ASSERT_TRUE(client_->Write(session_, k).ok());
  coordinator_->OnInstanceRecovered(0);

  // Every read after recovery observes the post-write state.
  for (const auto& k : keys) EXPECT_FALSE(AuditRead(k));
  // And again once everything is cached.
  for (const auto& k : keys) EXPECT_FALSE(AuditRead(k));
  EXPECT_EQ(checker_->total_stale(), 0u);
}

TEST_F(RecoveryConsistency, StaleCacheServesStaleReadsAfterRecovery) {
  // Figure 1's anomaly: reusing persistent content verbatim serves values
  // that writes during the failure have overwritten.
  Build(RecoveryPolicy::StaleCache());
  auto keys = KeysOnInstance0(10);
  ASSERT_GE(keys.size(), 3u);
  for (const auto& k : keys) EXPECT_FALSE(AuditRead(k));  // cache old values
  coordinator_->OnInstanceFailed(0);
  for (const auto& k : keys) ASSERT_TRUE(client_->Write(session_, k).ok());
  coordinator_->OnInstanceRecovered(0);

  uint64_t stale = 0;
  for (const auto& k : keys) {
    if (AuditRead(k)) ++stale;
  }
  EXPECT_GT(stale, 0u);
  EXPECT_EQ(checker_->total_stale(), stale);
}

TEST_F(RecoveryConsistency, VolatileCacheIsConsistentButCold) {
  Build(RecoveryPolicy::VolatileCache());
  auto keys = KeysOnInstance0(10);
  for (const auto& k : keys) EXPECT_FALSE(AuditRead(k));
  coordinator_->OnInstanceFailed(0);
  for (const auto& k : keys) ASSERT_TRUE(client_->Write(session_, k).ok());
  instances_[0]->RecoverVolatile();
  coordinator_->OnInstanceRecovered(0);
  for (const auto& k : keys) EXPECT_FALSE(AuditRead(k));
  EXPECT_EQ(checker_->total_stale(), 0u);
}

TEST_F(RecoveryConsistency, Lemma5CaseII_CleanKeyIsACacheHit) {
  Build(RecoveryPolicy::GeminiO());
  auto keys = KeysOnInstance0(2);
  ASSERT_GE(keys.size(), 2u);
  for (const auto& k : keys) (void)client_->Read(session_, k);
  coordinator_->OnInstanceFailed(0);
  // Dirty only keys[0]; keys[1] stays clean in the persistent primary.
  ASSERT_TRUE(client_->Write(session_, keys[0]).ok());
  coordinator_->OnInstanceRecovered(0);

  auto r = client_->Read(session_, keys[1]);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->cache_hit);  // k not in Dj: hit consumed directly
  EXPECT_FALSE(checker_->OnRead(clock_.Now(), keys[1], r->value.version));
}

TEST_F(RecoveryConsistency, Lemma4_DirtyKeyRefillObservesLatestWrite) {
  Build(RecoveryPolicy::GeminiOW());
  auto keys = KeysOnInstance0(1);
  ASSERT_GE(keys.size(), 1u);
  const std::string& k = keys[0];
  (void)client_->Read(session_, k);
  coordinator_->OnInstanceFailed(0);
  ASSERT_TRUE(client_->Write(session_, k).ok());   // k in Dj
  (void)client_->Read(session_, k);                // k in SR, current value
  coordinator_->OnInstanceRecovered(0);

  // Recovery-mode write streaks ahead of the read (Lemma 4 Case II): the
  // write deletes k in both replicas, so the read cannot resurrect the
  // pre-write value from the secondary.
  ASSERT_TRUE(client_->Write(session_, k).ok());
  EXPECT_FALSE(AuditRead(k));
  EXPECT_EQ(checker_->total_stale(), 0u);
}

TEST_F(RecoveryConsistency, QuarantinedEntryDoesNotSurviveCrash) {
  // The crash-spanning Q-lease rule: a write that updated the store but
  // crashed the instance before Dar leaves no stale entry behind.
  Build(RecoveryPolicy::GeminiO());
  auto keys = KeysOnInstance0(1);
  ASSERT_GE(keys.size(), 1u);
  const std::string& k = keys[0];
  (void)client_->Read(session_, k);  // cached, version 1
  auto cfg = coordinator_->GetConfiguration();
  OpContext ctx{cfg->id(), cfg->FragmentOf(k)};
  auto q = raw_[0]->Qareg(ctx, k);
  ASSERT_TRUE(q.ok());
  store_.Update(k);  // version 2 committed...
  raw_[0]->Fail();   // ...but the delete never reached the instance.
  raw_[0]->RecoverPersistent();
  coordinator_->OnInstanceFailed(0);  // (ordering irrelevant here)
  coordinator_->OnInstanceRecovered(0);

  EXPECT_FALSE(AuditRead(k));
  EXPECT_EQ(checker_->total_stale(), 0u);
}

}  // namespace
}  // namespace gemini
