// CoordinatorGroup tests (Section 2.1's master + shadow coordinators):
// state replication, failover promotion, and the protocol continuing
// consistently across a coordinator failure mid-recovery.
#include "src/coordinator/coordinator_group.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/cache/dirty_list.h"
#include "src/client/gemini_client.h"
#include "src/consistency/stale_read_checker.h"
#include "src/recovery/recovery_worker.h"

namespace gemini {
namespace {

class CoordinatorGroupTest : public ::testing::Test {
 protected:
  static constexpr size_t kInstances = 3;
  static constexpr size_t kFragments = 6;

  void Build(size_t shadows = 2,
             RecoveryPolicy policy = RecoveryPolicy::GeminiO()) {
    for (size_t i = 0; i < kInstances; ++i) {
      instances_.push_back(std::make_unique<CacheInstance>(
          static_cast<InstanceId>(i), &clock_));
      raw_.push_back(instances_.back().get());
    }
    Coordinator::Options opts;
    opts.policy = policy;
    group_ = std::make_unique<CoordinatorGroup>(&clock_, raw_, kFragments,
                                                shadows, opts);
    client_ = std::make_unique<GeminiClient>(&clock_, group_.get(), raw_,
                                             &store_);
    worker_ = std::make_unique<RecoveryWorker>(&clock_, group_.get(), raw_);
    checker_ = std::make_unique<StaleReadChecker>(&store_);
    for (int i = 0; i < 200; ++i) {
      store_.Put("user" + std::to_string(i), "v");
    }
  }

  std::string KeyOnInstance(InstanceId instance) {
    auto cfg = group_->GetConfiguration();
    for (int i = 0; i < 200; ++i) {
      std::string key = "user" + std::to_string(i);
      if (cfg->fragment(cfg->FragmentOf(key)).primary == instance) return key;
    }
    ADD_FAILURE();
    return "";
  }

  VirtualClock clock_;
  DataStore store_;
  std::vector<std::unique_ptr<CacheInstance>> instances_;
  std::vector<CacheInstance*> raw_;
  std::unique_ptr<CoordinatorGroup> group_;
  std::unique_ptr<GeminiClient> client_;
  std::unique_ptr<RecoveryWorker> worker_;
  std::unique_ptr<StaleReadChecker> checker_;
  Session session_;
};

TEST_F(CoordinatorGroupTest, ServesAsCoordinatorService) {
  Build();
  ASSERT_NE(group_->GetConfiguration(), nullptr);
  EXPECT_EQ(group_->latest_id(), group_->GetConfiguration()->id());
  const std::string key = KeyOnInstance(0);
  auto r = client_->Read(session_, key);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(client_->Write(session_, key).ok());
}

TEST_F(CoordinatorGroupTest, FailoverPreservesConfiguration) {
  Build(/*shadows=*/2);
  group_->OnInstanceFailed(0);
  const ConfigId before = group_->latest_id();
  auto cfg_before = group_->GetConfiguration();

  group_->FailMaster();
  EXPECT_FALSE(group_->master_available());
  EXPECT_EQ(group_->GetConfiguration(), nullptr);

  ASSERT_TRUE(group_->PromoteShadow());
  EXPECT_TRUE(group_->master_available());
  EXPECT_EQ(group_->shadows_remaining(), 1u);
  auto cfg_after = group_->GetConfiguration();
  ASSERT_NE(cfg_after, nullptr);
  // The promoted shadow re-publishes with a fresh id but identical
  // assignments.
  EXPECT_GE(cfg_after->id(), before);
  ASSERT_EQ(cfg_after->num_fragments(), cfg_before->num_fragments());
  for (FragmentId f = 0; f < cfg_before->num_fragments(); ++f) {
    EXPECT_EQ(cfg_after->fragment(f).primary, cfg_before->fragment(f).primary);
    EXPECT_EQ(cfg_after->fragment(f).secondary,
              cfg_before->fragment(f).secondary);
    EXPECT_EQ(cfg_after->fragment(f).mode, cfg_before->fragment(f).mode);
  }
}

TEST_F(CoordinatorGroupTest, NoPromotionWhileMasterUp) {
  Build(1);
  EXPECT_FALSE(group_->PromoteShadow());
  EXPECT_EQ(group_->shadows_remaining(), 1u);
}

TEST_F(CoordinatorGroupTest, RunsOutOfShadows) {
  Build(1);
  group_->FailMaster();
  EXPECT_TRUE(group_->PromoteShadow());
  group_->FailMaster();
  EXPECT_FALSE(group_->PromoteShadow());
  EXPECT_FALSE(group_->master_available());
}

TEST_F(CoordinatorGroupTest, ClientsRideThroughCoordinatorOutage) {
  Build();
  const std::string key = KeyOnInstance(0);
  (void)client_->Read(session_, key);  // cached config

  group_->FailMaster();
  // The client keeps serving from its cached configuration; operations that
  // need no coordinator round trip are unaffected.
  auto r = client_->Read(session_, key);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->cache_hit);
  EXPECT_TRUE(client_->Write(session_, key).ok());

  // A fresh client with no cached configuration cannot proceed...
  GeminiClient fresh(&clock_, group_.get(), raw_, &store_);
  Session s;
  EXPECT_FALSE(fresh.Read(s, key).ok());
  // ...until a shadow is promoted.
  ASSERT_TRUE(group_->PromoteShadow());
  auto r2 = fresh.Read(s, key);
  ASSERT_TRUE(r2.ok());
}

TEST_F(CoordinatorGroupTest, FailoverMidRecoveryStaysConsistent) {
  Build(/*shadows=*/2, RecoveryPolicy::GeminiO());
  const std::string key = KeyOnInstance(0);
  (void)client_->Read(session_, key);  // old value persists in primary
  group_->OnInstanceFailed(0);
  ASSERT_TRUE(client_->Write(session_, key, "fresh").ok());  // dirty
  group_->OnInstanceRecovered(0);
  const FragmentId f = group_->GetConfiguration()->FragmentOf(key);
  ASSERT_NE(group_->master(), nullptr);
  ASSERT_EQ(group_->master()->ModeOf(f), FragmentMode::kRecovery);

  // Coordinator dies mid-recovery; the promoted shadow remembers the
  // fragment's recovery state (pre-failure id, dirty-processed flags).
  group_->FailMaster();
  ASSERT_TRUE(group_->PromoteShadow());
  ASSERT_EQ(group_->master()->ModeOf(f), FragmentMode::kRecovery);

  // Reads remain consistent and recovery completes under the new master.
  auto r = client_->Read(session_, key);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(checker_->OnRead(clock_.Now(), key, r->value.version));
  Session ws;
  for (int guard = 0; guard < 10000; ++guard) {
    if (!worker_->has_work() && !worker_->TryAdoptFragment(ws).has_value()) {
      break;
    }
    (void)worker_->Step(ws);
  }
  EXPECT_EQ(group_->master()->ModeOf(f), FragmentMode::kNormal);
  auto r2 = client_->Read(session_, key);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(checker_->OnRead(clock_.Now(), key, r2->value.version));
  EXPECT_EQ(checker_->total_stale(), 0u);
}

TEST_F(CoordinatorGroupTest, FailureEventsDroppedWhileDownAreSafe) {
  // A failure detected while no master is up is lost until re-detected —
  // clients fall back to the store for the affected fragments (safe, slow).
  Build(1);
  const std::string key = KeyOnInstance(0);
  group_->FailMaster();
  group_->OnInstanceFailed(0);  // no-op: nobody to process it
  raw_[0]->Fail();
  GeminiClient fresh(&clock_, group_.get(), raw_, &store_);
  Session s;
  EXPECT_FALSE(fresh.Read(s, key).ok());  // no config at all
  ASSERT_TRUE(group_->PromoteShadow());
  group_->OnInstanceFailed(0);  // re-detected under the new master
  auto r = fresh.Read(s, key);
  ASSERT_TRUE(r.ok());  // served via the secondary now
}

TEST_F(CoordinatorGroupTest, LeaseLapseDuringLongOutageIsFailSafe) {
  // Fragment leases have a finite lifetime (Section 2.3: seconds to
  // minutes). If the whole coordinator group is down long enough for them
  // to lapse, instances stop serving — clients degrade to data-store reads
  // and suspended writes, never to stale answers.
  for (size_t i = 0; i < kInstances; ++i) {
    instances_.push_back(std::make_unique<CacheInstance>(
        static_cast<InstanceId>(i), &clock_));
    raw_.push_back(instances_.back().get());
  }
  Coordinator::Options opts;
  opts.fragment_lease_lifetime = Seconds(5);
  group_ = std::make_unique<CoordinatorGroup>(&clock_, raw_, kFragments,
                                              /*shadows=*/1, opts);
  client_ = std::make_unique<GeminiClient>(&clock_, group_.get(), raw_,
                                           &store_);
  for (int i = 0; i < 200; ++i) store_.Put("user" + std::to_string(i), "v");
  const std::string key = KeyOnInstance(0);
  Session s;
  (void)client_->Read(s, key);  // cached config + cached entry

  group_->FailMaster();
  clock_.Advance(Seconds(6));  // all fragment leases lapse

  // The cached entry is physically there, but the instance refuses to serve
  // it without a lease; the client falls back to the store (consistent).
  auto r = client_->Read(s, key);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->cache_hit);
  EXPECT_EQ(r->value.version, store_.VersionOf(key));
  // Writes are suspended rather than applied inconsistently.
  EXPECT_EQ(client_->Write(s, key).code(), Code::kSuspended);

  // Promotion re-grants leases; normal service resumes.
  ASSERT_TRUE(group_->PromoteShadow());
  auto r2 = client_->Read(s, key);
  ASSERT_TRUE(r2.ok());
  auto r3 = client_->Read(s, key);
  ASSERT_TRUE(r3.ok());
  EXPECT_TRUE(r3->cache_hit);
  EXPECT_TRUE(client_->Write(s, key).ok());
}

}  // namespace
}  // namespace gemini
