// Multi-instance transport tests: one TransportServer (the geminid event
// loop) hosting several CacheInstances behind a single ephemeral loopback
// port. HELLO-based instance selection, kInstanceList discovery, the v1
// HELLO compatibility fallback, clean handshake failure on unknown ids,
// connection sharing between backends, per-instance server stats and
// snapshot targets — and the payoff: an unmodified GeminiClient plus a
// RecoveryWorker running the full primary-failure → transient-mode →
// recovery cycle against two instances of one in-process geminid, entirely
// over real TCP sockets.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "src/cache/cache_instance.h"
#include "src/cache/dirty_list.h"
#include "src/cache/snapshot.h"
#include "src/client/gemini_client.h"
#include "src/coordinator/coordinator.h"
#include "src/recovery/recovery_worker.h"
#include "src/store/data_store.h"
#include "src/transport/instance_registry.h"
#include "src/transport/server.h"
#include "src/transport/tcp_backend.h"
#include "src/transport/wire.h"

namespace gemini {
namespace {

constexpr OpContext kInternalCtx{kInternalConfigId, kInvalidFragment};

// ---- Instance selection, discovery, and compatibility ----------------------

class MultiInstanceTest : public ::testing::Test {
 protected:
  /// Starts one server hosting instances with the given ids (in order; the
  /// first is the registry default). `snapshot_paths`, when non-empty,
  /// pairs up with `ids`.
  void StartServer(const std::vector<InstanceId>& ids,
                   const std::vector<std::string>& snapshot_paths = {}) {
    InstanceRegistry registry;
    for (size_t i = 0; i < ids.size(); ++i) {
      instances_.push_back(std::make_unique<CacheInstance>(ids[i], &clock_));
      InstanceOptions iopts;
      if (i < snapshot_paths.size()) iopts.snapshot_path = snapshot_paths[i];
      ASSERT_TRUE(registry.Add(instances_.back().get(), iopts).ok());
    }
    server_ = std::make_unique<TransportServer>(std::move(registry),
                                                TransportServer::Options{});
    ASSERT_TRUE(server_->Start().ok());
  }

  CacheInstance& instance(size_t i) { return *instances_[i]; }

  void TearDown() override {
    if (server_ != nullptr) server_->Stop();
  }

  VirtualClock clock_;
  std::vector<std::unique_ptr<CacheInstance>> instances_;
  std::unique_ptr<TransportServer> server_;
};

TEST_F(MultiInstanceTest, HelloRoutesToSelectedInstance) {
  StartServer({4, 9});
  TcpCacheBackend to4("127.0.0.1", server_->port(), 4);
  TcpCacheBackend to9("127.0.0.1", server_->port(), 9);
  ASSERT_TRUE(to4.Connect().ok());
  ASSERT_TRUE(to9.Connect().ok());
  EXPECT_EQ(to4.id(), 4u);
  EXPECT_EQ(to9.id(), 9u);

  // Writes land only on the instance the connection is bound to.
  ASSERT_TRUE(to4.Set(kInternalCtx, "only4", CacheValue::OfData("a")).ok());
  ASSERT_TRUE(to9.Set(kInternalCtx, "only9", CacheValue::OfData("b")).ok());
  EXPECT_TRUE(instance(0).ContainsRaw("only4"));
  EXPECT_FALSE(instance(0).ContainsRaw("only9"));
  EXPECT_TRUE(instance(1).ContainsRaw("only9"));
  EXPECT_FALSE(instance(1).ContainsRaw("only4"));
}

TEST_F(MultiInstanceTest, AnyInstanceSentinelBindsTheDefault) {
  StartServer({4, 9});
  // No explicit target: the backend asks for wire::kAnyInstance and gets
  // the registry default (the first instance added).
  TcpCacheBackend backend("127.0.0.1", server_->port());
  ASSERT_TRUE(backend.Connect().ok());
  EXPECT_EQ(backend.id(), 4u);
  ASSERT_TRUE(backend.Set(kInternalCtx, "k", CacheValue::OfData("v")).ok());
  EXPECT_TRUE(instance(0).ContainsRaw("k"));
}

TEST_F(MultiInstanceTest, UnknownInstanceFailsHandshakeCleanly) {
  StartServer({4, 9});
  TcpCacheBackend wrong("127.0.0.1", server_->port(), 7);
  EXPECT_EQ(wrong.Connect().code(), Code::kWrongInstance);
  EXPECT_FALSE(wrong.connected());

  // The refusal is per-connection: the server keeps serving everyone else.
  TcpCacheBackend right("127.0.0.1", server_->port(), 9);
  ASSERT_TRUE(right.Connect().ok());
  EXPECT_TRUE(right.Ping().ok());
  EXPECT_GE(server_->stats().protocol_errors, 1u);
}

TEST_F(MultiInstanceTest, InstanceListAdvertisesHostedIds) {
  StartServer({9, 4, 12});
  TcpCacheBackend backend("127.0.0.1", server_->port(), 4);
  ASSERT_TRUE(backend.Connect().ok());
  auto ids = backend.ListInstances();
  ASSERT_TRUE(ids.ok());
  EXPECT_EQ(*ids, (std::vector<InstanceId>{4, 9, 12}));  // ascending
}

TEST_F(MultiInstanceTest, BackendsOnOneEndpointShareTheConnection) {
  StartServer({4, 9});
  TcpCacheBackend a("127.0.0.1", server_->port(), 4);
  TcpCacheBackend b("127.0.0.1", server_->port(), 4);
  ASSERT_TRUE(a.Connect().ok());
  ASSERT_TRUE(b.Connect().ok());
  // Same endpoint + same instance: one socket, multiplexed.
  EXPECT_EQ(server_->stats().connections_accepted, 1u);

  ASSERT_TRUE(a.Set(kInternalCtx, "ka", CacheValue::OfData("va")).ok());
  auto got = b.Get(kInternalCtx, "ka");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->data, "va");

  // A different target instance cannot share (the binding is per-HELLO):
  // it gets its own connection.
  TcpCacheBackend c("127.0.0.1", server_->port(), 9);
  ASSERT_TRUE(c.Connect().ok());
  EXPECT_EQ(server_->stats().connections_accepted, 2u);
}

TEST_F(MultiInstanceTest, PerInstanceStatsAttributeTraffic) {
  StartServer({4, 9});
  TcpCacheBackend to4("127.0.0.1", server_->port(), 4);
  TcpCacheBackend to9("127.0.0.1", server_->port(), 9);
  ASSERT_TRUE(to4.Connect().ok());
  ASSERT_TRUE(to9.Connect().ok());
  ASSERT_TRUE(to4.Ping().ok());
  ASSERT_TRUE(to4.Ping().ok());
  ASSERT_TRUE(to9.Ping().ok());

  const TransportServer::Stats stats = server_->stats();
  ASSERT_EQ(stats.per_instance.count(4), 1u);
  ASSERT_EQ(stats.per_instance.count(9), 1u);
  EXPECT_GE(stats.per_instance.at(4).frames_handled, 2u);
  EXPECT_GE(stats.per_instance.at(9).frames_handled, 1u);
  EXPECT_GT(stats.per_instance.at(4).frames_handled,
            stats.per_instance.at(9).frames_handled);
}

TEST_F(MultiInstanceTest, SnapshotTriggersUsePerInstancePaths) {
  const std::string path4 = ::testing::TempDir() + "/multi_snap_4.bin";
  const std::string path9 = ::testing::TempDir() + "/multi_snap_9.bin";
  std::remove(path4.c_str());
  std::remove(path9.c_str());
  StartServer({4, 9}, {path4, path9});

  TcpCacheBackend to4("127.0.0.1", server_->port(), 4);
  TcpCacheBackend to9("127.0.0.1", server_->port(), 9);
  ASSERT_TRUE(to4.Set(kInternalCtx, "in4", CacheValue::OfData("a")).ok());
  ASSERT_TRUE(to9.Set(kInternalCtx, "in9", CacheValue::OfData("b")).ok());
  ASSERT_TRUE(to4.TriggerSnapshot().ok());
  ASSERT_TRUE(to9.TriggerSnapshot().ok());

  CacheInstance restored4(4, &clock_), restored9(9, &clock_);
  ASSERT_TRUE(Snapshot::LoadFromFile(restored4, path4).ok());
  ASSERT_TRUE(Snapshot::LoadFromFile(restored9, path9).ok());
  EXPECT_TRUE(restored4.ContainsRaw("in4"));
  EXPECT_FALSE(restored4.ContainsRaw("in9"));
  EXPECT_TRUE(restored9.ContainsRaw("in9"));
  EXPECT_FALSE(restored9.ContainsRaw("in4"));
  std::remove(path4.c_str());
  std::remove(path9.c_str());
}

// ---- v1 HELLO compatibility (raw socket: the pre-refactor client) ----------

int RawConnect(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  timeval tv{5, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  return fd;
}

bool SendAll(int fd, const std::string& bytes) {
  return ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL) ==
         static_cast<ssize_t>(bytes.size());
}

/// Reads exactly one frame (blocking); false on EOF/timeout/garbage.
bool ReadFrame(int fd, uint8_t* tag, std::string* body) {
  std::string buf;
  char chunk[512];
  for (;;) {
    size_t consumed = 0;
    std::string_view body_view;
    switch (wire::DecodeFrame(buf, &consumed, tag, &body_view)) {
      case wire::DecodeResult::kFrame:
        body->assign(body_view);
        return true;
      case wire::DecodeResult::kMalformed:
        return false;
      case wire::DecodeResult::kNeedMore:
        break;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;  // in-process io_uring kicks
    if (n <= 0) return false;
    buf.append(chunk, static_cast<size_t>(n));
  }
}

TEST_F(MultiInstanceTest, V1HelloBindsDefaultInstanceAndServes) {
  StartServer({4, 9});
  int fd = RawConnect(server_->port());
  ASSERT_GE(fd, 0);

  // A pre-refactor client's HELLO: just `u32 version`, no instance field.
  std::string hello_body;
  wire::PutU32(hello_body, 1);
  std::string out;
  wire::AppendRequest(out, wire::Op::kHello, hello_body);
  ASSERT_TRUE(SendAll(fd, out));

  uint8_t tag = 0xFF;
  std::string body;
  ASSERT_TRUE(ReadFrame(fd, &tag, &body));
  EXPECT_EQ(wire::CodeFromWire(tag), Code::kOk);
  wire::Reader r(body);
  uint32_t version = 0, bound = 0;
  ASSERT_TRUE(r.GetU32(&version));
  ASSERT_TRUE(r.GetU32(&bound));
  // The server echoes the *client's* version — a v1 client rejects anything
  // else — and binds it to the registry default.
  EXPECT_EQ(version, 1u);
  EXPECT_EQ(bound, 4u);

  // The handshake was real: ops on the connection reach the default.
  std::string set_body;
  wire::PutContext(set_body, kInternalCtx);
  wire::PutKey(set_body, "legacy");
  wire::PutValue(set_body, CacheValue::OfData("v"));
  out.clear();
  wire::AppendRequest(out, wire::Op::kSet, set_body);
  ASSERT_TRUE(SendAll(fd, out));
  ASSERT_TRUE(ReadFrame(fd, &tag, &body));
  EXPECT_EQ(wire::CodeFromWire(tag), Code::kOk);
  EXPECT_TRUE(instance(0).ContainsRaw("legacy"));
  EXPECT_FALSE(instance(1).ContainsRaw("legacy"));
  ::close(fd);
}

TEST_F(MultiInstanceTest, UnsupportedHelloVersionIsRejectedNotDropped) {
  StartServer({4});
  int fd = RawConnect(server_->port());
  ASSERT_GE(fd, 0);
  std::string hello_body;
  wire::PutU32(hello_body, wire::kProtocolVersion + 1);
  std::string out;
  wire::AppendRequest(out, wire::Op::kHello, hello_body);
  ASSERT_TRUE(SendAll(fd, out));
  uint8_t tag = 0xFF;
  std::string body;
  // The server answers (so the client can print a useful error), then
  // closes.
  ASSERT_TRUE(ReadFrame(fd, &tag, &body));
  EXPECT_EQ(wire::CodeFromWire(tag), Code::kInvalidArgument);
  char byte;
  EXPECT_EQ(::recv(fd, &byte, 1, 0), 0);  // EOF
  ::close(fd);
}

// ---- The payoff: full failure/recovery cycle against one geminid -----------

// Parameterized over the server's event-loop shard count: the failover
// cycle must be oblivious to whether the backends' connections share one
// loop or land on different shards.
class MultiInstanceClusterTest : public ::testing::TestWithParam<uint32_t> {
 protected:
  static constexpr size_t kInstances = 2;
  static constexpr size_t kFragments = 4;

  void SetUp() override {
    InstanceRegistry registry;
    for (size_t i = 0; i < kInstances; ++i) {
      instances_.push_back(std::make_unique<CacheInstance>(
          static_cast<InstanceId>(i), &clock_));
      raw_.push_back(instances_.back().get());
      ASSERT_TRUE(registry.Add(instances_.back().get()).ok());
    }
    // ONE server hosts the whole replica set.
    TransportServer::Options sopts;
    sopts.num_loops = GetParam();
    server_ = std::make_unique<TransportServer>(std::move(registry), sopts);
    ASSERT_TRUE(server_->Start().ok());
    for (size_t i = 0; i < kInstances; ++i) {
      backends_.push_back(std::make_unique<TcpCacheBackend>(
          "127.0.0.1", server_->port(), static_cast<InstanceId>(i)));
      // Connect eagerly so backend->id() reflects the remote instance
      // before the client starts routing.
      ASSERT_TRUE(backends_.back()->Connect().ok());
      remote_.push_back(backends_.back().get());
    }
    // The coordinator is co-located with the instances (it manages the same
    // objects the server hosts); client and recovery worker reach them only
    // through TCP.
    Coordinator::Options copts;
    copts.policy = RecoveryPolicy::GeminiO();
    coordinator_ = std::make_unique<Coordinator>(&clock_, raw_, kFragments,
                                                 copts);
    client_ = std::make_unique<GeminiClient>(&clock_, coordinator_.get(),
                                             remote_, &store_);
    for (int i = 0; i < 50; ++i) {
      store_.Put("user" + std::to_string(i), "v" + std::to_string(i));
    }
  }

  void TearDown() override {
    for (auto& b : backends_) b->Disconnect();
    server_->Stop();
  }

  /// A store key whose fragment has `id` as primary.
  std::string KeyOnPrimary(InstanceId id) {
    auto cfg = coordinator_->GetConfiguration();
    for (int i = 0; i < 50; ++i) {
      std::string key = "user" + std::to_string(i);
      if (cfg->fragment(cfg->FragmentOf(key)).primary == id) return key;
    }
    ADD_FAILURE() << "no key with primary " << id;
    return "user0";
  }

  VirtualClock clock_;
  DataStore store_;
  std::vector<std::unique_ptr<CacheInstance>> instances_;
  std::vector<CacheInstance*> raw_;
  std::unique_ptr<TransportServer> server_;
  std::vector<std::unique_ptr<TcpCacheBackend>> backends_;
  std::vector<CacheBackend*> remote_;
  std::unique_ptr<Coordinator> coordinator_;
  std::unique_ptr<GeminiClient> client_;
  Session session_;
};

TEST_P(MultiInstanceClusterTest, FullFailoverAndRecoveryCycleOverTcp) {
  const std::string key = KeyOnPrimary(0);
  const FragmentId f =
      coordinator_->GetConfiguration()->FragmentOf(key);

  // Warm the primary through the wire.
  auto r = client_->Read(session_, key);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->cache_hit);

  // Primary fails; the coordinator publishes a transient configuration,
  // which is when the fragment gets its secondary replica.
  instances_[0]->Fail();
  coordinator_->OnInstanceFailed(0);
  ASSERT_EQ(coordinator_->ModeOf(f), FragmentMode::kTransient);
  const InstanceId secondary =
      coordinator_->GetConfiguration()->fragment(f).secondary;
  ASSERT_NE(secondary, kInvalidInstance);

  // Transient reads and writes are served by the secondary — and the write
  // lands on the fragment's dirty list there, observable over the same
  // sockets.
  r = client_->Read(session_, key);
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(client_->Write(session_, key, std::string("fresh")).ok());
  auto dl = backends_[secondary]->DirtyListGet(
      coordinator_->GetConfiguration()->id(), f);
  ASSERT_TRUE(dl.ok());
  EXPECT_NE(dl->data.find(key), std::string::npos);
  // Refill the secondary so recovery has a fresh value to transfer.
  ASSERT_TRUE(client_->Read(session_, key).ok());

  // The primary restarts with its (persistent) content; its fragments enter
  // recovery mode.
  instances_[0]->RecoverPersistent();
  coordinator_->OnInstanceRecovered(0);
  ASSERT_EQ(coordinator_->ModeOf(f), FragmentMode::kRecovery);

  // A recovery worker drains the dirty lists — through the same TCP
  // backends the client uses, not in-process shortcuts.
  RecoveryWorker::Options wopts;
  wopts.overwrite_dirty = true;
  RecoveryWorker worker(&clock_, coordinator_.get(), remote_, wopts);
  Session wsession;
  for (int guard = 0; guard < 10000; ++guard) {
    if (!worker.has_work() &&
        !worker.TryAdoptFragment(wsession).has_value()) {
      break;
    }
    (void)worker.Step(wsession);
  }
  EXPECT_TRUE(coordinator_->FragmentsInMode(FragmentMode::kRecovery).empty());
  EXPECT_TRUE(coordinator_->FragmentsInMode(FragmentMode::kTransient).empty());
  EXPECT_GT(worker.stats().fragments_recovered, 0u);
  EXPECT_GT(worker.stats().keys_overwritten, 0u);

  // The recovered primary serves the fresh value as a hit, end to end.
  r = client_->Read(session_, key);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->cache_hit);
  EXPECT_EQ(r->value.data, "fresh");
  EXPECT_EQ(r->value.version, store_.VersionOf(key));
}

INSTANTIATE_TEST_SUITE_P(Loops, MultiInstanceClusterTest,
                         ::testing::Values(1u, 4u),
                         [](const ::testing::TestParamInfo<uint32_t>& info) {
                           return std::to_string(info.param) + "Loops";
                         });

}  // namespace
}  // namespace gemini
