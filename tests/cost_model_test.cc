// Queueing & latency model tests: the substrate that turns protocol steps
// into virtual time and separates the paper's low- and high-load regimes.
#include "src/net/cost_model.h"

#include <gtest/gtest.h>

namespace gemini {
namespace {

TEST(QueueingResource, IdleServerStartsImmediately) {
  QueueingResource q(1);
  EXPECT_EQ(q.Submit(100, 10), 110);
}

TEST(QueueingResource, BusyServerQueues) {
  QueueingResource q(1);
  EXPECT_EQ(q.Submit(0, 10), 10);
  EXPECT_EQ(q.Submit(0, 10), 20);  // waits for the first job
  EXPECT_EQ(q.Submit(5, 10), 30);
}

TEST(QueueingResource, MultipleServersDrainFaster) {
  QueueingResource q(2);
  EXPECT_EQ(q.Submit(0, 10), 10);
  // Fluid model: the second job waits backlog/k = 5 instead of a full 10.
  EXPECT_EQ(q.Submit(0, 10), 15);
  QueueingResource q1(1);
  (void)q1.Submit(0, 10);
  EXPECT_GT(q1.Submit(0, 10), 15);  // single server queues longer
}

TEST(QueueingResource, LateArrivalSkipsQueue) {
  QueueingResource q(1);
  (void)q.Submit(0, 10);
  EXPECT_EQ(q.Submit(100, 10), 110);  // backlog fully drained by t=100
}

TEST(QueueingResource, FutureBookingDoesNotBlockEarlierArrival) {
  // A session step booked far in the future (insert after a slow store
  // trip) must not stall an arrival with an earlier timestamp that the
  // event loop processes afterwards.
  QueueingResource q(1);
  (void)q.Submit(2000, 30);          // future booking
  const Timestamp done = q.Submit(600, 30);  // earlier arrival, same server
  EXPECT_LE(done, 2000 + 30 + 30);   // pays at most the committed backlog
  EXPECT_LT(done - 600, 1500);       // and is NOT pushed past the booking
}

TEST(QueueingResource, SaturationGrowsBacklog) {
  QueueingResource q(1);
  Timestamp completion = 0;
  for (int i = 0; i < 100; ++i) {
    completion = q.Submit(i, 10);  // arrivals 10x faster than service
  }
  // ~100 jobs x 10us service, arrivals within 100us: last completes ~1000.
  EXPECT_GT(completion, 900);
}

TEST(QueueingResource, ResetClearsBacklog) {
  QueueingResource q(1);
  (void)q.Submit(0, 1000);
  q.Reset();
  EXPECT_EQ(q.Submit(0, 10), 10);
}

TEST(Session, NullSessionBillsNothing) {
  Session s;
  s.BillCacheOp(0);
  s.BillStoreQuery();
  s.BillBackoff(Millis(5));
  EXPECT_EQ(s.Elapsed(), 0);
  EXPECT_EQ(s.counts().cache_ops, 1u);  // counters still track steps
}

TEST(Session, AccumulatesStepCosts) {
  NetParams p;
  p.client_instance_rtt = Micros(100);
  p.instance_service = Micros(30);
  p.client_store_rtt = Micros(300);
  p.store_query_service = Micros(1500);
  CostModel model(p, 2);
  Session s(&model, 0);
  s.BillCacheOp(0);
  EXPECT_EQ(s.Elapsed(), 130);  // rtt + service
  s.BillStoreQuery();
  EXPECT_EQ(s.Elapsed(), 130 + 1800);
  EXPECT_EQ(s.counts().cache_ops, 1u);
  EXPECT_EQ(s.counts().store_queries, 1u);
}

TEST(Session, QueueingDelaysShowUpInLatency) {
  NetParams p;
  p.client_instance_rtt = Micros(0);
  p.instance_service = Micros(100);
  CostModel model(p, 1);
  Session s1(&model, 0);
  s1.BillCacheOp(0);
  Session s2(&model, 0);
  s2.BillCacheOp(0);  // queues behind s1's job
  EXPECT_EQ(s1.Elapsed(), 100);
  EXPECT_EQ(s2.Elapsed(), 200);
}

TEST(Session, BackoffAdvancesCursor) {
  NetParams p;
  CostModel model(p, 1);
  Session s(&model, 1000);
  s.BillBackoff(Millis(2));
  EXPECT_EQ(s.cursor(), 1000 + Millis(2));
  EXPECT_EQ(s.counts().backoffs, 1u);
}

TEST(Session, StoreRoundTripIsMetadataOnly) {
  NetParams p;
  CostModel model(p, 1);
  Session meta(&model, 0), query(&model, Seconds(5));
  meta.BillStoreRoundTrip();
  query.BillStoreQuery();
  EXPECT_EQ(meta.Elapsed(), p.client_store_rtt);
  EXPECT_GT(query.Elapsed(), meta.Elapsed());  // no service time, no queue
  EXPECT_EQ(meta.counts().store_queries, 1u);
}

TEST(Session, StoreUpdateSlowerThanQuery) {
  NetParams p;  // defaults: update 2000us > query 1500us
  CostModel model(p, 1);
  Session q(&model, 0), u(&model, Seconds(10));
  q.BillStoreQuery();
  u.BillStoreUpdate();
  EXPECT_GT(u.Elapsed(), q.Elapsed());
}

TEST(CostModel, InstancesIndependentQueues) {
  NetParams p;
  p.client_instance_rtt = Micros(0);
  p.instance_service = Micros(100);
  CostModel model(p, 2);
  Session s1(&model, 0), s2(&model, 0);
  s1.BillCacheOp(0);
  s2.BillCacheOp(1);
  EXPECT_EQ(s1.Elapsed(), 100);
  EXPECT_EQ(s2.Elapsed(), 100);  // no cross-instance queueing
}

}  // namespace
}  // namespace gemini
