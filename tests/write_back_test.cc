// Write-back policy tests (extension): acknowledged-before-flush semantics,
// pinning, flusher commits, crash durability on persistent media, the
// failure-window staleness hole (quantified — the reason the paper uses
// write-around), and fallback behaviour outside normal mode.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/client/gemini_client.h"
#include "src/consistency/stale_read_checker.h"
#include "src/coordinator/coordinator.h"
#include "src/recovery/recovery_worker.h"
#include "src/recovery/write_back_flusher.h"

namespace gemini {
namespace {

class WriteBackTest : public ::testing::Test {
 protected:
  static constexpr size_t kInstances = 3;
  static constexpr size_t kFragments = 6;

  void Build() {
    for (size_t i = 0; i < kInstances; ++i) {
      instances_.push_back(std::make_unique<CacheInstance>(
          static_cast<InstanceId>(i), &clock_));
      raw_.push_back(instances_.back().get());
    }
    coordinator_ =
        std::make_unique<Coordinator>(&clock_, raw_, kFragments);
    GeminiClient::Options copts;
    copts.write_policy = WritePolicy::kWriteBack;
    client_ = std::make_unique<GeminiClient>(&clock_, coordinator_.get(),
                                             raw_, &store_, copts);
    flusher_ = std::make_unique<WriteBackFlusher>(&clock_, raw_, &store_);
    checker_ = std::make_unique<StaleReadChecker>(&store_);
    for (int i = 0; i < 200; ++i) {
      store_.Put("user" + std::to_string(i), "v0");
    }
  }

  std::string KeyOnInstance(InstanceId instance) {
    auto cfg = coordinator_->GetConfiguration();
    for (int i = 0; i < 200; ++i) {
      std::string key = "user" + std::to_string(i);
      if (cfg->fragment(cfg->FragmentOf(key)).primary == instance) return key;
    }
    ADD_FAILURE();
    return "";
  }

  VirtualClock clock_;
  DataStore store_;
  std::vector<std::unique_ptr<CacheInstance>> instances_;
  std::vector<CacheInstance*> raw_;
  std::unique_ptr<Coordinator> coordinator_;
  std::unique_ptr<GeminiClient> client_;
  std::unique_ptr<WriteBackFlusher> flusher_;
  std::unique_ptr<StaleReadChecker> checker_;
  Session session_;
};

TEST_F(WriteBackTest, AckBeforeFlushAndReadYourWrite) {
  Build();
  const std::string key = KeyOnInstance(0);
  const Version committed_before = store_.CommittedVersionOf(key);
  ASSERT_TRUE(client_->Write(session_, key, "buffered").ok());
  // Acknowledged without a store data write...
  EXPECT_EQ(store_.CommittedVersionOf(key), committed_before);
  EXPECT_GT(store_.VersionOf(key), committed_before);  // ...but reserved.
  // ...and the writer reads its own write from the cache, consistently.
  auto r = client_->Read(session_, key);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->cache_hit);
  EXPECT_EQ(r->value.data, "buffered");
  EXPECT_FALSE(checker_->OnRead(clock_.Now(), key, r->value.version));
}

TEST_F(WriteBackTest, FlusherCommitsAndUnpins) {
  Build();
  const std::string key = KeyOnInstance(0);
  ASSERT_TRUE(client_->Write(session_, key, "buffered").ok());
  EXPECT_EQ(raw_[0]->pending_flush_count(), 1u);
  EXPECT_EQ(flusher_->FlushOnce(session_), 1u);
  EXPECT_EQ(raw_[0]->pending_flush_count(), 0u);
  auto rec = store_.Query(key);
  ASSERT_TRUE(rec.ok());
  EXPECT_EQ(rec->data, "buffered");
  EXPECT_EQ(store_.CommittedVersionOf(key), store_.VersionOf(key));
  // Idempotent: flushing again moves nothing.
  EXPECT_EQ(flusher_->FlushOnce(session_), 0u);
}

TEST_F(WriteBackTest, PinnedEntriesSurviveEvictionPressure) {
  VirtualClock clock;
  CacheInstance::Options opts;
  opts.per_entry_overhead = 0;
  opts.capacity_bytes = 4 * 30;
  CacheInstance inst(0, &clock, opts);
  inst.GrantFragmentLease(0, 1, clock.Now() + Seconds(3600), 1);
  OpContext ctx{1, 0};
  auto q = inst.Qareg(ctx, "pinned");
  ASSERT_TRUE(inst.WriteBackInstall(ctx, "pinned",
                                    CacheValue::OfSize(20, 1), *q)
                  .ok());
  for (int i = 0; i < 20; ++i) {
    (void)inst.Set(ctx, "filler" + std::to_string(i), CacheValue::OfSize(20));
  }
  EXPECT_TRUE(inst.ContainsRaw("pinned"));  // never evicted while buffered
  inst.Unpin("pinned", 1);
  for (int i = 20; i < 40; ++i) {
    (void)inst.Set(ctx, "filler" + std::to_string(i), CacheValue::OfSize(20));
  }
  EXPECT_FALSE(inst.ContainsRaw("pinned"));  // evictable again after flush
}

TEST_F(WriteBackTest, BufferedWritesSurviveCrashOnPersistentMedia) {
  Build();
  const std::string key = KeyOnInstance(0);
  ASSERT_TRUE(client_->Write(session_, key, "durable").ok());
  // Crash before any flush. The pinned entry is persistent; the flush queue
  // is rebuilt from it at recovery.
  raw_[0]->Fail();
  EXPECT_EQ(flusher_->FlushOnce(session_), 0u);  // unreachable while down
  raw_[0]->RecoverPersistent();
  EXPECT_EQ(raw_[0]->pending_flush_count(), 1u);
  EXPECT_EQ(flusher_->FlushOnce(session_), 1u);
  EXPECT_EQ(store_.Query(key)->data, "durable");
}

TEST_F(WriteBackTest, VolatileCrashLosesBufferedWrites) {
  Build();
  const std::string key = KeyOnInstance(0);
  ASSERT_TRUE(client_->Write(session_, key, "doomed").ok());
  raw_[0]->Fail();
  raw_[0]->RecoverVolatile();
  EXPECT_EQ(raw_[0]->pending_flush_count(), 0u);
  EXPECT_EQ(flusher_->FlushOnce(session_), 0u);
  // The write is gone: the store still has v0 — write-back needs the
  // persistent medium to be safe.
  EXPECT_EQ(store_.Query(key)->data, "v0");
}

TEST_F(WriteBackTest, FailureWindowServesStaleUntilFlush) {
  // The hole that makes the paper choose write-around: an unflushed write
  // is invisible to the secondary replica, so reads during the failure
  // observe the pre-write value.
  Build();
  const std::string key = KeyOnInstance(0);
  ASSERT_TRUE(client_->Write(session_, key, "unflushed").ok());
  coordinator_->OnInstanceFailed(0);  // before any flush

  auto r = client_->Read(session_, key);  // served via secondary -> store
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->value.data, "v0");
  EXPECT_TRUE(checker_->OnRead(clock_.Now(), key, r->value.version))
      << "write-back's acknowledged write must be (measurably) invisible";

  // Recovery + flush restore consistency.
  coordinator_->OnInstanceRecovered(0);
  EXPECT_GE(flusher_->FlushOnce(session_), 1u);
  RecoveryWorker worker(&clock_, coordinator_.get(), raw_);
  Session s;
  for (int guard = 0; guard < 10000; ++guard) {
    if (!worker.has_work() && !worker.TryAdoptFragment(s).has_value()) break;
    (void)worker.Step(s);
  }
  auto r2 = client_->Read(session_, key);
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(checker_->OnRead(clock_.Now(), key, r2->value.version));
}

TEST_F(WriteBackTest, FallsBackToWriteThroughOutsideNormalMode) {
  Build();
  const std::string key = KeyOnInstance(0);
  coordinator_->OnInstanceFailed(0);
  // Transient-mode write: synchronous (write-through fallback) — committed
  // at the store immediately, nothing buffered.
  const Version committed_before = store_.CommittedVersionOf(key);
  ASSERT_TRUE(client_->Write(session_, key, "sync").ok());
  EXPECT_GT(store_.CommittedVersionOf(key), committed_before);
  for (auto* inst : raw_) {
    EXPECT_EQ(inst->pending_flush_count(), 0u);
  }
  // And it is on the dirty list for the primary's recovery.
  const FragmentId f = coordinator_->GetConfiguration()->FragmentOf(key);
  const InstanceId sec =
      coordinator_->GetConfiguration()->fragment(f).secondary;
  OpContext internal{kInternalConfigId, kInvalidFragment};
  auto payload = raw_[sec]->Get(internal, DirtyListKey(f));
  ASSERT_TRUE(payload.ok());
  EXPECT_TRUE(DirtyList::Parse(payload->data)->Contains(key));
}

TEST_F(WriteBackTest, LastWriterWinsAcrossBufferedWrites) {
  Build();
  const std::string key = KeyOnInstance(0);
  ASSERT_TRUE(client_->Write(session_, key, "first").ok());
  ASSERT_TRUE(client_->Write(session_, key, "second").ok());
  EXPECT_GE(flusher_->FlushOnce(session_), 2u);
  EXPECT_EQ(store_.Query(key)->data, "second");
  auto r = client_->Read(session_, key);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->value.data, "second");
  EXPECT_FALSE(checker_->OnRead(clock_.Now(), key, r->value.version));
}

TEST_F(WriteBackTest, SynchronousWriteSupersedesBufferedOne) {
  // write-back(v) then a write-through-style synchronous write must not be
  // clobbered by the late flush of the older buffered value.
  Build();
  const std::string key = KeyOnInstance(0);
  ASSERT_TRUE(client_->Write(session_, key, "buffered").ok());

  GeminiClient::Options sync_opts;
  sync_opts.write_policy = WritePolicy::kWriteThrough;
  GeminiClient sync_client(&clock_, coordinator_.get(), raw_, &store_,
                           sync_opts);
  Session s;
  ASSERT_TRUE(sync_client.Write(s, key, "synchronous").ok());

  EXPECT_GE(flusher_->FlushOnce(session_), 1u);  // late flush of "buffered"
  EXPECT_EQ(store_.Query(key)->data, "synchronous");
  auto r = client_->Read(session_, key);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->value.data, "synchronous");
  EXPECT_FALSE(checker_->OnRead(clock_.Now(), key, r->value.version));
}

}  // namespace
}  // namespace gemini
