// HeartbeatMonitor: missed-beat failure detection under a fake clock.
//
// Covers the threshold edges (fail at exactly interval*miss_threshold, not
// one microsecond earlier), flapping instances (each edge reported exactly
// once), and the coordinator-restart path: ExpectRegistration seeds grace
// for instances imported as up so a restarted coordinator does not
// spuriously fail a healthy cluster.
#include "src/coordinator/heartbeat.h"

#include <gtest/gtest.h>

#include "src/common/clock.h"

namespace gemini {
namespace {

HeartbeatMonitor::Options TestOptions() {
  HeartbeatMonitor::Options o;
  o.interval = Millis(100);
  o.miss_threshold = 3;
  return o;
}

TEST(HeartbeatMonitorTest, UnregisteredInstancesAreNeverFailed) {
  VirtualClock clock;
  HeartbeatMonitor mon(&clock, 4, TestOptions());
  clock.Advance(Seconds(10));
  auto t = mon.Tick(clock.Now());
  EXPECT_TRUE(t.failed.empty());
  EXPECT_TRUE(t.recovered.empty());
  EXPECT_FALSE(mon.alive(0));
}

TEST(HeartbeatMonitorTest, RegistrationIsARecoveryEdgeReportedByTick) {
  VirtualClock clock;
  HeartbeatMonitor mon(&clock, 2, TestOptions());
  EXPECT_TRUE(mon.Register(1));
  EXPECT_TRUE(mon.alive(1));
  auto t = mon.Tick(clock.Now());
  ASSERT_EQ(t.recovered.size(), 1u);
  EXPECT_EQ(t.recovered[0], 1u);
  EXPECT_TRUE(t.failed.empty());
  // The edge is consumed: the next tick is quiet.
  t = mon.Tick(clock.Now());
  EXPECT_TRUE(t.recovered.empty());
}

TEST(HeartbeatMonitorTest, FailsAtExactlyTheMissedBeatDeadline) {
  VirtualClock clock;
  HeartbeatMonitor mon(&clock, 1, TestOptions());
  mon.Register(0);
  (void)mon.Tick(clock.Now());

  // One microsecond before interval * miss_threshold: still alive.
  clock.Advance(Millis(300) - Micros(1));
  auto t = mon.Tick(clock.Now());
  EXPECT_TRUE(t.failed.empty());
  EXPECT_TRUE(mon.alive(0));

  // At the deadline: failed, exactly once.
  clock.Advance(Micros(1));
  t = mon.Tick(clock.Now());
  ASSERT_EQ(t.failed.size(), 1u);
  EXPECT_EQ(t.failed[0], 0u);
  EXPECT_FALSE(mon.alive(0));

  // Stays failed silently.
  clock.Advance(Seconds(5));
  t = mon.Tick(clock.Now());
  EXPECT_TRUE(t.failed.empty());
}

TEST(HeartbeatMonitorTest, BeatsKeepAnInstanceAliveIndefinitely) {
  VirtualClock clock;
  HeartbeatMonitor mon(&clock, 1, TestOptions());
  mon.Register(0);
  (void)mon.Tick(clock.Now());
  for (int i = 0; i < 50; ++i) {
    clock.Advance(Millis(100));
    mon.OnHeartbeat(0);
    EXPECT_TRUE(mon.Tick(clock.Now()).failed.empty());
  }
  EXPECT_TRUE(mon.alive(0));
}

TEST(HeartbeatMonitorTest, BeatsFromAFailedInstanceDoNotReviveIt) {
  VirtualClock clock;
  HeartbeatMonitor mon(&clock, 1, TestOptions());
  mon.Register(0);
  (void)mon.Tick(clock.Now());
  clock.Advance(Millis(300));
  ASSERT_EQ(mon.Tick(clock.Now()).failed.size(), 1u);

  // A stray beat (e.g. a delayed frame) must not mark the instance whole —
  // only re-registration does: the process may have restarted and lost its
  // leases, so recovery must run.
  mon.OnHeartbeat(0);
  EXPECT_FALSE(mon.alive(0));
  EXPECT_TRUE(mon.Tick(clock.Now()).recovered.empty());

  EXPECT_TRUE(mon.Register(0));
  auto t = mon.Tick(clock.Now());
  ASSERT_EQ(t.recovered.size(), 1u);
  EXPECT_EQ(t.recovered[0], 0u);
  EXPECT_TRUE(mon.alive(0));
}

TEST(HeartbeatMonitorTest, FlappingInstanceReportsEachEdgeExactlyOnce) {
  VirtualClock clock;
  HeartbeatMonitor mon(&clock, 1, TestOptions());
  mon.Register(0);
  (void)mon.Tick(clock.Now());

  size_t failures = 0;
  size_t recoveries = 0;
  for (int cycle = 0; cycle < 10; ++cycle) {
    // Silence past the deadline; several ticks in the failed window must
    // yield exactly one failure edge.
    for (int i = 0; i < 8; ++i) {
      clock.Advance(Millis(100));
      auto t = mon.Tick(clock.Now());
      failures += t.failed.size();
      recoveries += t.recovered.size();
    }
    // Restart: re-register, then several quiet-but-beating ticks must yield
    // exactly one recovery edge.
    mon.Register(0);
    for (int i = 0; i < 4; ++i) {
      auto t = mon.Tick(clock.Now());
      failures += t.failed.size();
      recoveries += t.recovered.size();
      clock.Advance(Millis(100));
      mon.OnHeartbeat(0);
    }
  }
  EXPECT_EQ(failures, 10u);
  EXPECT_EQ(recoveries, 10u);
}

TEST(HeartbeatMonitorTest, DoubleRegistrationBetweenTicksQueuesOneEdge) {
  VirtualClock clock;
  HeartbeatMonitor mon(&clock, 1, TestOptions());
  EXPECT_TRUE(mon.Register(0));
  EXPECT_FALSE(mon.Register(0));  // already alive: not an edge
  auto t = mon.Tick(clock.Now());
  EXPECT_EQ(t.recovered.size(), 1u);
}

TEST(HeartbeatMonitorTest, ExpectedInstanceGetsGraceThenFails) {
  VirtualClock clock;
  auto opts = TestOptions();
  opts.restart_grace = Millis(500);
  HeartbeatMonitor mon(&clock, 2, opts);
  mon.ExpectRegistration(0);
  mon.ExpectRegistration(1);
  EXPECT_TRUE(mon.alive(0));

  // Within grace: no spurious failures even with zero beats.
  clock.Advance(Millis(499));
  auto t = mon.Tick(clock.Now());
  EXPECT_TRUE(t.failed.empty());
  EXPECT_TRUE(t.recovered.empty());

  // Instance 0 checks in with a plain heartbeat (it never died — the
  // coordinator restarted): satisfied, no recovery cycle.
  mon.OnHeartbeat(0);
  clock.Advance(Millis(1));
  t = mon.Tick(clock.Now());
  ASSERT_EQ(t.failed.size(), 1u);  // instance 1 never appeared
  EXPECT_EQ(t.failed[0], 1u);
  EXPECT_TRUE(t.recovered.empty());
  EXPECT_TRUE(mon.alive(0));
  EXPECT_FALSE(mon.alive(1));
}

TEST(HeartbeatMonitorTest, ExpectedInstanceReRegisteringIsARecoveryEdge) {
  VirtualClock clock;
  HeartbeatMonitor mon(&clock, 1, TestOptions());
  mon.ExpectRegistration(0);
  // A *registration* during grace means the geminid process restarted (it
  // re-registers on reconnect): that is a recovery edge — leases were lost.
  EXPECT_TRUE(mon.Register(0));
  auto t = mon.Tick(clock.Now());
  ASSERT_EQ(t.recovered.size(), 1u);
}

TEST(HeartbeatMonitorTest, RestartGraceDefaultsToFailureDeadline) {
  VirtualClock clock;
  HeartbeatMonitor mon(&clock, 1, TestOptions());
  EXPECT_EQ(mon.failure_deadline(), Millis(300));
  mon.ExpectRegistration(0);
  clock.Advance(Millis(300) - Micros(1));
  EXPECT_TRUE(mon.Tick(clock.Now()).failed.empty());
  clock.Advance(Micros(1));
  EXPECT_EQ(mon.Tick(clock.Now()).failed.size(), 1u);
}

TEST(HeartbeatMonitorTest, OutOfRangeIdsAreIgnored) {
  VirtualClock clock;
  HeartbeatMonitor mon(&clock, 2, TestOptions());
  EXPECT_FALSE(mon.Register(7));
  mon.OnHeartbeat(7);
  mon.ExpectRegistration(7);
  EXPECT_FALSE(mon.alive(7));
  auto t = mon.Tick(clock.Now());
  EXPECT_TRUE(t.failed.empty());
  EXPECT_TRUE(t.recovered.empty());
}

}  // namespace
}  // namespace gemini
