// Pipelined-transport tests: window backpressure, write coalescing under
// concurrent submitters, FIFO response matching, batched MultiGet, and the
// failure half of the contract — a mid-pipeline connection loss fails every
// in-flight request with kUnavailable, Disconnect() interrupts blocked I/O
// promptly, and an auto-reconnect never mismatches requests and responses
// across sockets.
//
// Two servers appear here: the real TransportServer (the geminid event
// loop) for end-to-end behaviour, and StallServer — a hand-rolled wire
// speaker that answers HELLO and then releases responses only when told to
// — for the timing-sensitive cases (a real server answers too fast to hold
// a window full).
#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <cerrno>

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/cache/cache_instance.h"
#include "src/client/gemini_client.h"
#include "src/common/clock.h"
#include "src/coordinator/coordinator.h"
#include "src/store/data_store.h"
#include "src/transport/server.h"
#include "src/transport/tcp_backend.h"
#include "src/transport/tcp_connection.h"
#include "src/transport/wire.h"

namespace gemini {
namespace {

using std::chrono::steady_clock;

const OpContext kInternalCtx{kInternalConfigId, kInvalidFragment};

/// Polls `cond` for up to `deadline_ms`; true when it became true.
template <typename Cond>
bool WaitFor(Cond cond, int deadline_ms = 5000) {
  const auto deadline =
      steady_clock::now() + std::chrono::milliseconds(deadline_ms);
  while (steady_clock::now() < deadline) {
    if (cond()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  return cond();
}

// ---- StallServer: a wire speaker with a hand brake on its responses --------

class StallServer {
 public:
  StallServer() {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    EXPECT_GE(listen_fd_, 0);
    int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = 0;
    ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
    EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                     sizeof(addr)),
              0);
    EXPECT_EQ(::listen(listen_fd_, 8), 0);
    socklen_t len = sizeof(addr);
    ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len);
    port_ = ntohs(addr.sin_port);
    // A short accept/recv timeout doubles as the control-flag poll interval.
    timeval tv{0, 50 * 1000};
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    thread_ = std::thread(&StallServer::Run, this);
  }

  ~StallServer() { Stop(); }

  void Stop() {
    stop_.store(true);
    if (thread_.joinable()) thread_.join();
    if (listen_fd_ >= 0) {
      ::close(listen_fd_);
      listen_fd_ = -1;
    }
  }

  [[nodiscard]] uint16_t port() const { return port_; }

  [[nodiscard]] size_t requests_seen() {
    std::lock_guard<std::mutex> lock(mu_);
    return requests_seen_;
  }

  /// Releases `n` queued responses (each an empty kOk frame).
  void AllowResponses(size_t n) {
    std::lock_guard<std::mutex> lock(mu_);
    allowed_ += n;
  }

  /// Drops the accepted connection (the mid-pipeline kill).
  void CloseClient() {
    std::lock_guard<std::mutex> lock(mu_);
    close_client_ = true;
  }

 private:
  void Run() {
    while (!stop_.load()) {
      pollfd pfd{listen_fd_, POLLIN, 0};
      if (::poll(&pfd, 1, 50) <= 0) continue;
      const int cfd = ::accept(listen_fd_, nullptr, nullptr);
      if (cfd < 0) continue;
      timeval tv{0, 50 * 1000};
      ::setsockopt(cfd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
      ServeClient(cfd);
      ::close(cfd);
      std::lock_guard<std::mutex> lock(mu_);
      close_client_ = false;
    }
  }

  void ServeClient(int cfd) {
    std::string buf;
    bool saw_hello = false;
    while (!stop_.load()) {
      {
        std::lock_guard<std::mutex> lock(mu_);
        if (close_client_) return;
        while (allowed_ > 0 && pending_ > 0) {
          std::string out;
          wire::AppendResponse(out, Code::kOk, {});
          (void)::send(cfd, out.data(), out.size(), MSG_NOSIGNAL);
          --allowed_;
          --pending_;
        }
      }
      char chunk[4096];
      const ssize_t n = ::recv(cfd, chunk, sizeof(chunk), 0);
      if (n == 0) return;
      if (n < 0) {
        if (errno == EAGAIN || errno == EWOULDBLOCK || errno == EINTR) {
          continue;  // timeout tick: re-check the control flags
        }
        return;
      }
      buf.append(chunk, static_cast<size_t>(n));
      for (;;) {
        size_t consumed = 0;
        uint8_t tag = 0;
        std::string_view body;
        if (wire::DecodeFrame(buf, &consumed, &tag, &body) !=
            wire::DecodeResult::kFrame) {
          break;
        }
        if (!saw_hello) {
          saw_hello = true;
          wire::Reader r(body);
          uint32_t version = 0;
          ASSERT_TRUE(r.GetU32(&version));
          std::string hello;
          wire::PutU32(hello, version);
          wire::PutU32(hello, 0);  // instance id
          std::string out;
          wire::AppendResponse(out, Code::kOk, hello);
          (void)::send(cfd, out.data(), out.size(), MSG_NOSIGNAL);
        } else {
          std::lock_guard<std::mutex> lock(mu_);
          ++requests_seen_;
          ++pending_;
        }
        buf.erase(0, consumed);
      }
    }
  }

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::thread thread_;
  std::atomic<bool> stop_{false};
  std::mutex mu_;
  size_t requests_seen_ = 0;
  size_t pending_ = 0;
  size_t allowed_ = 0;
  bool close_client_ = false;
};

/// A counter for async completions.
struct CompletionLog {
  std::mutex mu;
  std::vector<Status> statuses;

  TcpConnection::Completion Slot() {
    return [this](Status s, std::string) {
      std::lock_guard<std::mutex> lock(mu);
      statuses.push_back(std::move(s));
    };
  }
  size_t count() {
    std::lock_guard<std::mutex> lock(mu);
    return statuses.size();
  }
  size_t CountCode(Code code) {
    std::lock_guard<std::mutex> lock(mu);
    size_t n = 0;
    for (const Status& s : statuses) n += s.code() == code ? 1 : 0;
    return n;
  }
};

// ---- Window backpressure ---------------------------------------------------

TEST(TransportPipelineTest, WindowBackpressureBlocksExtraSubmitter) {
  StallServer server;
  TcpConnection::Options opts;
  opts.max_inflight = 3;
  TcpConnection conn("127.0.0.1", server.port(), wire::kAnyInstance, opts);

  CompletionLog log;
  for (int i = 0; i < 3; ++i) {
    conn.SubmitAsync(wire::Op::kPing, {}, log.Slot());
  }
  ASSERT_TRUE(WaitFor([&] { return server.requests_seen() == 3; }));

  // The window is full: a fourth submitter must block until a slot frees.
  std::atomic<bool> fourth_submitted{false};
  std::thread extra([&] {
    conn.SubmitAsync(wire::Op::kPing, {}, log.Slot());
    fourth_submitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(150));
  EXPECT_FALSE(fourth_submitted.load());
  EXPECT_EQ(server.requests_seen(), 3u);

  server.AllowResponses(1);
  EXPECT_TRUE(WaitFor([&] { return fourth_submitted.load(); }));
  EXPECT_TRUE(WaitFor([&] { return server.requests_seen() == 4; }));

  server.AllowResponses(3);
  EXPECT_TRUE(WaitFor([&] { return log.count() == 4; }));
  EXPECT_EQ(log.CountCode(Code::kOk), 4u);
  extra.join();
}

// ---- Mid-pipeline connection loss ------------------------------------------

TEST(TransportPipelineTest, MidPipelineKillFailsAllInflightThenReconnects) {
  auto server = std::make_unique<StallServer>();
  const uint16_t port = server->port();
  TcpConnection::Options opts;
  opts.max_inflight = 8;
  TcpConnection conn("127.0.0.1", port, wire::kAnyInstance, opts);

  CompletionLog log;
  constexpr size_t kInflight = 5;
  for (size_t i = 0; i < kInflight; ++i) {
    conn.SubmitAsync(wire::Op::kPing, {}, log.Slot());
  }
  ASSERT_TRUE(WaitFor([&] { return server->requests_seen() == kInflight; }));

  // Kill the server side with all five in flight: every caller must
  // complete with kUnavailable — none may hang, none may see a stray
  // response.
  server->CloseClient();
  ASSERT_TRUE(WaitFor([&] { return log.count() == kInflight; }));
  EXPECT_EQ(log.CountCode(Code::kUnavailable), kInflight);
  EXPECT_FALSE(conn.connected());

  // Bring a *real* geminid up on the same port; the next calls redial
  // transparently. A fresh socket starts an empty FIFO, so pipelined
  // requests after the reconnect must match their own responses — verify by
  // writing distinct values and reading them back in one burst.
  server->Stop();
  server.reset();
  VirtualClock clock;
  CacheInstance instance(0, &clock);
  TransportServer::Options sopts;
  sopts.port = port;
  TransportServer real(&instance, sopts);
  Status started = Status(Code::kInternal);
  for (int i = 0; i < 100 && !started.ok(); ++i) {
    started = real.Start();
    if (!started.ok()) {
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
  }
  ASSERT_TRUE(started.ok()) << started.ToString();

  constexpr size_t kKeys = 24;  // deliberately wider than the window
  std::vector<TcpConnection::BatchRequest> sets(kKeys);
  for (size_t i = 0; i < kKeys; ++i) {
    sets[i].op = wire::Op::kSet;
    wire::PutContext(sets[i].body, kInternalCtx);
    wire::PutKey(sets[i].body, "k" + std::to_string(i));
    wire::PutValue(sets[i].body,
                   CacheValue::OfData("v" + std::to_string(i)));
  }
  for (const auto& resp : conn.TransactBatch(sets)) {
    ASSERT_TRUE(resp.status.ok()) << resp.status.ToString();
  }

  std::vector<TcpConnection::BatchRequest> gets(kKeys);
  for (size_t i = 0; i < kKeys; ++i) {
    gets[i].op = wire::Op::kGet;
    wire::PutContext(gets[i].body, kInternalCtx);
    wire::PutKey(gets[i].body, "k" + std::to_string(i));
  }
  const auto resps = conn.TransactBatch(gets);
  ASSERT_EQ(resps.size(), kKeys);
  for (size_t i = 0; i < kKeys; ++i) {
    ASSERT_TRUE(resps[i].status.ok()) << resps[i].status.ToString();
    wire::Reader r(resps[i].body);
    CacheValue value;
    ASSERT_TRUE(r.GetValue(&value) && r.Done());
    EXPECT_EQ(value.data, "v" + std::to_string(i));  // FIFO: no mismatch
  }
  real.Stop();
}

// ---- Disconnect() promptness -----------------------------------------------

TEST(TransportPipelineTest, DisconnectInterruptsBlockedIoPromptly) {
  StallServer server;
  TcpConnection::Options opts;
  opts.max_inflight = 4;
  opts.io_timeout = Seconds(30);  // the old code would block this long
  TcpConnection conn("127.0.0.1", server.port(), wire::kAnyInstance, opts);

  CompletionLog log;
  conn.SubmitAsync(wire::Op::kPing, {}, log.Slot());
  conn.SubmitAsync(wire::Op::kPing, {}, log.Slot());
  ASSERT_TRUE(WaitFor([&] { return server.requests_seen() == 2; }));

  // The reader thread is now parked in recv() with no response coming.
  const auto t0 = steady_clock::now();
  conn.Disconnect();
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      steady_clock::now() - t0);
  EXPECT_LT(elapsed.count(), 2000) << "Disconnect blocked behind io_timeout";
  EXPECT_TRUE(WaitFor([&] { return log.count() == 2; }));
  EXPECT_EQ(log.CountCode(Code::kUnavailable), 2u);
  EXPECT_FALSE(conn.connected());
}

TEST(TransportPipelineTest, DisconnectFailsSubmitterBlockedOnWindow) {
  StallServer server;
  TcpConnection::Options opts;
  opts.max_inflight = 1;
  TcpConnection conn("127.0.0.1", server.port(), wire::kAnyInstance, opts);

  CompletionLog log;
  conn.SubmitAsync(wire::Op::kPing, {}, log.Slot());
  ASSERT_TRUE(WaitFor([&] { return server.requests_seen() == 1; }));

  std::atomic<bool> second_submitted{false};
  std::thread blocked([&] {
    conn.SubmitAsync(wire::Op::kPing, {}, log.Slot());
    second_submitted.store(true);
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  EXPECT_FALSE(second_submitted.load());

  conn.Disconnect();
  EXPECT_TRUE(WaitFor([&] { return second_submitted.load(); }));
  blocked.join();
  // Both the in-flight request and the window-blocked one fail.
  EXPECT_TRUE(WaitFor([&] { return log.count() == 2; }));
  EXPECT_EQ(log.CountCode(Code::kUnavailable), 2u);
}

// ---- End-to-end against the real server ------------------------------------

class PipelineE2eTest : public ::testing::Test {
 protected:
  void SetUp() override {
    instance_ = std::make_unique<CacheInstance>(0, &clock_);
    server_ = std::make_unique<TransportServer>(instance_.get(),
                                                TransportServer::Options{});
    ASSERT_TRUE(server_->Start().ok());
    backend_ = std::make_unique<TcpCacheBackend>("127.0.0.1", server_->port());
  }

  void TearDown() override {
    backend_.reset();
    if (server_ != nullptr) server_->Stop();
  }

  VirtualClock clock_;
  std::unique_ptr<CacheInstance> instance_;
  std::unique_ptr<TransportServer> server_;
  std::unique_ptr<TcpCacheBackend> backend_;
};

TEST_F(PipelineE2eTest, MultiGetMixesHitsMissesAndLocalErrors) {
  for (int i = 0; i < 10; i += 2) {
    ASSERT_TRUE(backend_
                    ->Set(kInternalCtx, "key" + std::to_string(i),
                          CacheValue::OfData("value" + std::to_string(i)))
                    .ok());
  }
  std::vector<GetRequest> reqs;
  for (int i = 0; i < 10; ++i) {
    reqs.push_back({kInternalCtx, "key" + std::to_string(i)});
  }
  reqs.push_back({kInternalCtx, std::string(wire::kMaxKeyLen + 1, 'x')});

  auto results = backend_->MultiGet(reqs);
  ASSERT_EQ(results.size(), reqs.size());
  for (int i = 0; i < 10; ++i) {
    if (i % 2 == 0) {
      ASSERT_TRUE(results[i].ok()) << i;
      EXPECT_EQ(results[i]->data, "value" + std::to_string(i));
    } else {
      EXPECT_EQ(results[i].code(), Code::kNotFound) << i;
    }
  }
  // The oversized key fails locally without poisoning the rest of the batch.
  EXPECT_EQ(results.back().code(), Code::kInvalidArgument);
}

TEST_F(PipelineE2eTest, ConcurrentSubmittersNeverMismatchResponses) {
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 200;
  for (int t = 0; t < kThreads; ++t) {
    for (int i = 0; i < kOpsPerThread; ++i) {
      const std::string suffix = std::to_string(t) + "_" + std::to_string(i);
      ASSERT_TRUE(backend_
                      ->Set(kInternalCtx, "key" + suffix,
                            CacheValue::OfData("value" + suffix))
                      .ok());
    }
  }
  // All threads share the backend (and thus one pipelined connection); each
  // verifies every response against its own key — a FIFO mix-up anywhere
  // surfaces as a wrong value here.
  std::atomic<int> mismatches{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string suffix =
            std::to_string(t) + "_" + std::to_string(i);
        auto r = backend_->Get(kInternalCtx, "key" + suffix);
        if (!r.ok() || r->data != "value" + suffix) mismatches.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mismatches.load(), 0);
}

// ---- WarmUp over the in-process backend ------------------------------------

TEST(WarmUpTest, ProbesThenFillsOnlyMisses) {
  VirtualClock clock;
  std::vector<std::unique_ptr<CacheInstance>> instances;
  std::vector<CacheInstance*> raw;
  for (InstanceId i = 0; i < 2; ++i) {
    instances.push_back(std::make_unique<CacheInstance>(i, &clock));
    raw.push_back(instances.back().get());
  }
  Coordinator coordinator(&clock, raw, /*num_fragments=*/8);
  DataStore store;
  std::vector<std::string> keys;
  for (int i = 0; i < 20; ++i) {
    keys.push_back("user" + std::to_string(i));
    store.Put(keys.back(), "v" + std::to_string(i));
  }
  GeminiClient client(&clock, &coordinator, raw, &store);
  Session session;

  // Cold cache: nothing is cached yet; WarmUp fills every key via Read().
  EXPECT_EQ(client.WarmUp(session, keys), 0u);
  const auto after_fill = client.stats();
  EXPECT_EQ(after_fill.reads, keys.size());

  // Warm cache: every probe hits, no Read() happens at all.
  EXPECT_EQ(client.WarmUp(session, keys), keys.size());
  EXPECT_EQ(client.stats().reads, after_fill.reads);

  // Reads after warm-up are cache hits.
  auto r = client.Read(session, keys[3]);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->cache_hit);
  EXPECT_EQ(r->value.data, "v3");
}

}  // namespace
}  // namespace gemini
