// GeminiClient tests: per-mode request processing (normal / transient /
// recovery), write suspension, configuration refresh, bootstrap, dirty-list
// handling, and the working set transfer (Algorithms 1 and 2).
#include "src/client/gemini_client.h"

#include "src/coordinator/coordinator.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/cache/dirty_list.h"

namespace gemini {
namespace {

class ClientTest : public ::testing::Test {
 protected:
  static constexpr size_t kInstances = 3;
  static constexpr size_t kFragments = 6;

  void Build(RecoveryPolicy policy = RecoveryPolicy::GeminiOW(),
             GeminiClient::Options copts = {}) {
    instances_.clear();
    raw_.clear();
    for (size_t i = 0; i < kInstances; ++i) {
      instances_.push_back(std::make_unique<CacheInstance>(
          static_cast<InstanceId>(i), &clock_));
      raw_.push_back(instances_.back().get());
    }
    Coordinator::Options opts;
    opts.policy = policy;
    coordinator_ =
        std::make_unique<Coordinator>(&clock_, raw_, kFragments, opts);
    copts.working_set_transfer = policy.working_set_transfer;
    client_ = std::make_unique<GeminiClient>(&clock_, coordinator_.get(),
                                             raw_, &store_, copts);
    recovery_state_ = std::make_unique<RecoveryState>(kFragments);
    client_->BindRecoveryState(recovery_state_.get());
    for (int i = 0; i < 200; ++i) {
      store_.Put("user" + std::to_string(i), "v" + std::to_string(i));
    }
  }

  // A store-backed key that maps to a fragment whose primary is `instance`.
  std::string KeyOnInstance(InstanceId instance) {
    auto cfg = coordinator_->GetConfiguration();
    for (int i = 0; i < 200; ++i) {
      std::string key = "user" + std::to_string(i);
      if (cfg->fragment(cfg->FragmentOf(key)).primary == instance) return key;
    }
    ADD_FAILURE() << "no key found for instance " << instance;
    return "";
  }

  FragmentId FragmentOf(const std::string& key) {
    return coordinator_->GetConfiguration()->FragmentOf(key);
  }

  void Build2ndClient(GeminiClient::Options copts) {
    client2_ = std::make_unique<GeminiClient>(&clock_, coordinator_.get(),
                                              raw_, &store_, copts);
  }

  VirtualClock clock_;
  DataStore store_;
  std::vector<std::unique_ptr<CacheInstance>> instances_;
  std::vector<CacheInstance*> raw_;
  std::unique_ptr<Coordinator> coordinator_;
  std::unique_ptr<GeminiClient> client_;
  std::unique_ptr<GeminiClient> client2_;
  std::unique_ptr<RecoveryState> recovery_state_;
  Session session_;  // null session: no cost model in unit tests
};

TEST_F(ClientTest, ReadMissFillsCacheThenHits) {
  Build();
  const std::string key = KeyOnInstance(0);
  auto r1 = client_->Read(session_, key);
  ASSERT_TRUE(r1.ok());
  EXPECT_FALSE(r1->cache_hit);
  EXPECT_EQ(r1->value.data, store_.Query(key)->data);
  auto r2 = client_->Read(session_, key);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->cache_hit);
  EXPECT_EQ(r2->instance, 0u);
  EXPECT_EQ(r2->routed, 0u);
  auto stats = client_->stats();
  EXPECT_EQ(stats.reads, 2u);
  EXPECT_EQ(stats.cache_hits, 1u);
  EXPECT_EQ(stats.store_reads, 1u);
}

TEST_F(ClientTest, ReadUnknownKeyIsNotFound) {
  Build();
  EXPECT_EQ(client_->Read(session_, "user9999999").code(), Code::kNotFound);
}

TEST_F(ClientTest, WriteInvalidatesCachedEntry) {
  Build();
  const std::string key = KeyOnInstance(0);
  (void)client_->Read(session_, key);  // populate
  const Version before = store_.VersionOf(key);
  ASSERT_TRUE(client_->Write(session_, key, "new-value").ok());
  EXPECT_EQ(store_.VersionOf(key), before + 1);
  auto r = client_->Read(session_, key);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->cache_hit);  // entry was deleted (write-around)
  EXPECT_EQ(r->value.data, "new-value");
  EXPECT_EQ(r->value.version, before + 1);
}

TEST_F(ClientTest, TransientModeServesFromSecondaryAndTracksDirty) {
  Build();
  const std::string key = KeyOnInstance(0);
  const FragmentId f = FragmentOf(key);
  (void)client_->Read(session_, key);  // warm primary

  coordinator_->OnInstanceFailed(0);
  auto cfg = coordinator_->GetConfiguration();
  const InstanceId sec = cfg->fragment(f).secondary;

  // Read populates the secondary.
  auto r = client_->Read(session_, key);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->cache_hit);
  EXPECT_EQ(r->routed, sec);
  auto r2 = client_->Read(session_, key);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->cache_hit);
  EXPECT_EQ(r2->instance, sec);

  // Write goes to the secondary and lands on the dirty list.
  ASSERT_TRUE(client_->Write(session_, key).ok());
  OpContext internal{kInternalConfigId, kInvalidFragment};
  auto payload = raw_[sec]->Get(internal, DirtyListKey(f));
  ASSERT_TRUE(payload.ok());
  auto list = DirtyList::Parse(payload->data);
  ASSERT_TRUE(list.has_value());
  EXPECT_TRUE(list->Contains(key));
}

TEST_F(ClientTest, RecoveryModeServesValidPrimaryEntriesImmediately) {
  Build();
  const std::string key = KeyOnInstance(0);
  (void)client_->Read(session_, key);  // persist in primary
  coordinator_->OnInstanceFailed(0);
  coordinator_->OnInstanceRecovered(0);
  ASSERT_EQ(coordinator_->ModeOf(FragmentOf(key)), FragmentMode::kRecovery);
  auto r = client_->Read(session_, key);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->cache_hit);
  EXPECT_EQ(r->instance, 0u);  // still-valid persistent entry, no store trip
}

TEST_F(ClientTest, RecoveryModeDirtyKeyNotServedStale) {
  Build(RecoveryPolicy::GeminiI());  // no WST: dirty keys refill from store
  const std::string key = KeyOnInstance(0);
  (void)client_->Read(session_, key);  // old value cached in primary
  coordinator_->OnInstanceFailed(0);
  ASSERT_TRUE(client_->Write(session_, key, "fresh").ok());  // dirty
  coordinator_->OnInstanceRecovered(0);

  auto r = client_->Read(session_, key);
  ASSERT_TRUE(r.ok());
  // Algorithm 1: k in Dj -> deleted in primary, refilled from the store.
  EXPECT_EQ(r->value.data, "fresh");
  EXPECT_EQ(r->value.version, store_.VersionOf(key));
  EXPECT_FALSE(r->cache_hit);
  EXPECT_GE(client_->stats().dirty_hits, 1u);
}

TEST_F(ClientTest, WorkingSetTransferCopiesFromSecondary) {
  Build(RecoveryPolicy::GeminiOW());
  const std::string key = KeyOnInstance(0);
  const FragmentId f = FragmentOf(key);
  coordinator_->OnInstanceFailed(0);
  // Populate the *secondary* during the failure (primary never saw the key).
  (void)client_->Read(session_, key);
  coordinator_->OnInstanceRecovered(0);
  ASSERT_EQ(coordinator_->ModeOf(f), FragmentMode::kRecovery);

  auto r = client_->Read(session_, key);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->cache_hit);
  EXPECT_TRUE(r->from_secondary);
  EXPECT_TRUE(r->secondary_probed);
  EXPECT_EQ(r->routed, 0u);
  EXPECT_EQ(client_->stats().wst_copies, 1u);
  // The copy landed in the primary: next read hits there.
  auto r2 = client_->Read(session_, key);
  ASSERT_TRUE(r2.ok());
  EXPECT_TRUE(r2->cache_hit);
  EXPECT_EQ(r2->instance, 0u);
}

TEST_F(ClientTest, TerminatedWstSkipsSecondary) {
  Build(RecoveryPolicy::GeminiOW());
  const std::string key = KeyOnInstance(0);
  const FragmentId f = FragmentOf(key);
  coordinator_->OnInstanceFailed(0);
  (void)client_->Read(session_, key);  // in secondary
  coordinator_->OnInstanceRecovered(0);
  recovery_state_->TerminateWst(f);

  auto r = client_->Read(session_, key);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->from_secondary);
  EXPECT_FALSE(r->secondary_probed);
  EXPECT_FALSE(r->cache_hit);  // filled from the store instead
}

TEST_F(ClientTest, RecoveryWriteCleansDirtyKeyEverywhere) {
  Build(RecoveryPolicy::GeminiOW());
  const std::string key = KeyOnInstance(0);
  const FragmentId f = FragmentOf(key);
  (void)client_->Read(session_, key);
  coordinator_->OnInstanceFailed(0);
  ASSERT_TRUE(client_->Write(session_, key).ok());    // dirty
  (void)client_->Read(session_, key);                 // repopulate secondary
  coordinator_->OnInstanceRecovered(0);
  auto cfg = coordinator_->GetConfiguration();
  const InstanceId sec = cfg->fragment(f).secondary;

  // Fetch the dirty list (via a read of another key of the same fragment is
  // not guaranteed; just write the dirty key directly).
  ASSERT_TRUE(client_->Write(session_, key, "newest").ok());
  // Algorithm 2 + Lemma 4: the key was deleted in both replicas.
  // (replica state checked via ContainsRaw below)
  EXPECT_FALSE(raw_[0]->ContainsRaw(key));
  EXPECT_FALSE(raw_[sec]->ContainsRaw(key));
  // And a subsequent read returns the newest value.
  auto r = client_->Read(session_, key);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->value.data, "newest");
}

TEST_F(ClientTest, CrashFailureSuspendsWritesUntilNewConfig) {
  Build();
  const std::string key = KeyOnInstance(0);
  raw_[0]->Fail();
  // Coordinator has not noticed yet: reads fall through to the store,
  // writes are suspended (Section 2.2).
  auto r = client_->Read(session_, key);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->cache_hit);
  EXPECT_EQ(r->instance, kInvalidInstance);
  Status w = client_->Write(session_, key);
  EXPECT_EQ(w.code(), Code::kSuspended);
  EXPECT_EQ(client_->stats().suspended_writes, 1u);

  // Once the coordinator publishes the secondary, the write goes through.
  coordinator_->OnInstanceFailed(0);
  EXPECT_TRUE(client_->Write(session_, key).ok());
}

TEST_F(ClientTest, StaleConfigTriggersRefreshAndRetry) {
  Build();
  const std::string key = KeyOnInstance(0);
  (void)client_->Read(session_, key);  // client caches config id 1
  // Configuration moves on (failure of another instance).
  coordinator_->OnInstanceFailed(2);
  coordinator_->OnInstanceRecovered(2);
  // The instance rejects the stale id; the client refreshes transparently.
  auto r = client_->Read(session_, key);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->cache_hit);
  EXPECT_EQ(client_->config()->id(), coordinator_->latest_id());
}

TEST_F(ClientTest, BootstrapFromInstanceConfigEntry) {
  Build();
  Session s;
  const ConfigId id = client_->Bootstrap(s, /*via_instance=*/1);
  EXPECT_EQ(id, coordinator_->latest_id());
  ASSERT_NE(client_->config(), nullptr);
  EXPECT_EQ(client_->config()->id(), id);
}

TEST_F(ClientTest, BootstrapFallsBackToCoordinator) {
  Build();
  OpContext internal{kInternalConfigId, kInvalidFragment};
  ASSERT_TRUE(raw_[1]->Delete(internal, ConfigKey()).ok());  // entry evicted
  Session s;
  const ConfigId id = client_->Bootstrap(s, 1);
  EXPECT_EQ(id, coordinator_->latest_id());
}

TEST_F(ClientTest, ForgetStateDropsConfigAndRecovers) {
  Build();
  const std::string key = KeyOnInstance(0);
  (void)client_->Read(session_, key);
  client_->ForgetState();
  EXPECT_EQ(client_->config(), nullptr);
  auto r = client_->Read(session_, key);  // re-fetches configuration
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->cache_hit);
}

TEST_F(ClientTest, EvictedDirtyListDiscardsFragmentOnRead) {
  Build(RecoveryPolicy::GeminiO());
  const std::string key = KeyOnInstance(0);
  const FragmentId f = FragmentOf(key);
  (void)client_->Read(session_, key);
  coordinator_->OnInstanceFailed(0);
  ASSERT_TRUE(client_->Write(session_, key).ok());
  coordinator_->OnInstanceRecovered(0);
  ASSERT_EQ(coordinator_->ModeOf(f), FragmentMode::kRecovery);

  // Evict the dirty list after the transition to recovery mode.
  auto cfg = coordinator_->GetConfiguration();
  const InstanceId sec = cfg->fragment(f).secondary;
  OpContext internal{kInternalConfigId, kInvalidFragment};
  ASSERT_TRUE(raw_[sec]->Delete(internal, DirtyListKey(f)).ok());

  // The client cannot validate primary entries: the fragment is discarded
  // and the read is still served consistently (from the store).
  auto r = client_->Read(session_, key);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->value.version, store_.VersionOf(key));
  EXPECT_EQ(coordinator_->ModeOf(f), FragmentMode::kNormal);
  EXPECT_GE(coordinator_->discarded_fragment_count(), 1u);
}

TEST_F(ClientTest, ReadBackoffFallsThroughToStore) {
  Build();
  const std::string key = KeyOnInstance(0);
  const FragmentId f = FragmentOf(key);
  // Hold an I lease on the key so the client's iqget backs off.
  OpContext ctx{coordinator_->latest_id(), f};
  auto held = raw_[0]->IqGet(ctx, key);
  ASSERT_TRUE(held.ok());

  GeminiClient::Options copts;
  copts.max_backoff_retries = 2;
  Build2ndClient(copts);
  auto r = client2_->Read(session_, key);
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->cache_hit);
  EXPECT_EQ(r->value.data, store_.Query(key)->data);
}

}  // namespace
}  // namespace gemini
