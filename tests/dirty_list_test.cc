// Dirty-list codec tests (Section 3.1): marker semantics, dedup, parsing.
#include "src/cache/dirty_list.h"

#include <gtest/gtest.h>

namespace gemini {
namespace {

TEST(DirtyList, FreshListIsEmptyAndValid) {
  auto list = DirtyList::Parse(DirtyList::InitialPayload());
  ASSERT_TRUE(list.has_value());
  EXPECT_TRUE(list->empty());
  EXPECT_EQ(list->size(), 0u);
}

TEST(DirtyList, AppendedKeysParse) {
  std::string payload = DirtyList::InitialPayload();
  payload += DirtyList::EncodeRecord("user1");
  payload += DirtyList::EncodeRecord("user2");
  auto list = DirtyList::Parse(payload);
  ASSERT_TRUE(list.has_value());
  EXPECT_EQ(list->size(), 2u);
  EXPECT_TRUE(list->Contains("user1"));
  EXPECT_TRUE(list->Contains("user2"));
  EXPECT_FALSE(list->Contains("user3"));
}

TEST(DirtyList, DuplicateAppendsDeduplicated) {
  std::string payload = DirtyList::InitialPayload();
  for (int i = 0; i < 5; ++i) payload += DirtyList::EncodeRecord("k");
  auto list = DirtyList::Parse(payload);
  ASSERT_TRUE(list.has_value());
  EXPECT_EQ(list->size(), 1u);
  EXPECT_EQ(list->raw_record_count(), 5u);
}

TEST(DirtyList, KeysPreserveFirstAppendOrder) {
  std::string payload = DirtyList::InitialPayload();
  payload += DirtyList::EncodeRecord("b");
  payload += DirtyList::EncodeRecord("a");
  payload += DirtyList::EncodeRecord("b");
  auto list = DirtyList::Parse(payload);
  ASSERT_TRUE(list.has_value());
  ASSERT_EQ(list->keys().size(), 2u);
  EXPECT_EQ(list->keys()[0], "b");
  EXPECT_EQ(list->keys()[1], "a");
}

TEST(DirtyList, MissingMarkerMeansPartial) {
  // Section 3.1: a list re-created by append after an eviction lacks the
  // marker and must be detected as partial.
  std::string payload = DirtyList::EncodeRecord("user1");
  EXPECT_FALSE(DirtyList::Parse(payload).has_value());
}

TEST(DirtyList, EmptyPayloadIsPartial) {
  EXPECT_FALSE(DirtyList::Parse("").has_value());
}

TEST(DirtyList, MarkerMustBeFirstRecord) {
  std::string payload = DirtyList::EncodeRecord("user1");
  payload += DirtyList::InitialPayload();
  EXPECT_FALSE(DirtyList::Parse(payload).has_value());
}

TEST(DirtyList, RemoveMarksHandled) {
  std::string payload = DirtyList::InitialPayload();
  payload += DirtyList::EncodeRecord("a");
  payload += DirtyList::EncodeRecord("b");
  auto list = DirtyList::Parse(payload);
  ASSERT_TRUE(list.has_value());
  list->Remove("a");
  EXPECT_FALSE(list->Contains("a"));
  EXPECT_TRUE(list->Contains("b"));
  EXPECT_EQ(list->size(), 1u);
  // Removing twice is a no-op.
  list->Remove("a");
  EXPECT_EQ(list->size(), 1u);
}

TEST(DirtyList, TruncatedTrailingRecordIgnored) {
  std::string payload = DirtyList::InitialPayload();
  payload += DirtyList::EncodeRecord("ok");
  payload += "trunc";  // no trailing newline
  auto list = DirtyList::Parse(payload);
  ASSERT_TRUE(list.has_value());
  EXPECT_EQ(list->size(), 1u);
  EXPECT_TRUE(list->Contains("ok"));
}

TEST(DirtyList, LargeListRoundTrip) {
  std::string payload = DirtyList::InitialPayload();
  constexpr int kKeys = 50000;
  for (int i = 0; i < kKeys; ++i) {
    payload += DirtyList::EncodeRecord("user" + std::to_string(i));
  }
  auto list = DirtyList::Parse(payload);
  ASSERT_TRUE(list.has_value());
  EXPECT_EQ(list->size(), static_cast<size_t>(kKeys));
  EXPECT_TRUE(list->Contains("user0"));
  EXPECT_TRUE(list->Contains("user49999"));
}

}  // namespace
}  // namespace gemini
