// Rejig configuration-id semantics across full fragment lifecycles
// (Section 3.2.4 and the Rejig report the paper defers to). These tests
// exercise the interplay of per-entry stamps, per-fragment minimum-valid
// ids, pre-failure restoration, and replica re-use across episodes — the
// machinery that makes "discard a million entries" an O(1) id bump.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/client/gemini_client.h"
#include "src/consistency/stale_read_checker.h"
#include "src/coordinator/coordinator.h"
#include "src/recovery/recovery_worker.h"

namespace gemini {
namespace {

class RejigTest : public ::testing::Test {
 protected:
  static constexpr size_t kInstances = 3;
  static constexpr size_t kFragments = 3;  // fragment i on instance i

  void Build(RecoveryPolicy policy = RecoveryPolicy::GeminiO()) {
    for (size_t i = 0; i < kInstances; ++i) {
      instances_.push_back(std::make_unique<CacheInstance>(
          static_cast<InstanceId>(i), &clock_));
      raw_.push_back(instances_.back().get());
    }
    Coordinator::Options opts;
    opts.policy = policy;
    coordinator_ =
        std::make_unique<Coordinator>(&clock_, raw_, kFragments, opts);
    GeminiClient::Options copts;
    copts.working_set_transfer = policy.working_set_transfer;
    client_ = std::make_unique<GeminiClient>(&clock_, coordinator_.get(),
                                             raw_, &store_, copts);
    worker_ = std::make_unique<RecoveryWorker>(&clock_, coordinator_.get(),
                                               raw_);
    checker_ = std::make_unique<StaleReadChecker>(&store_);
    for (int i = 0; i < 300; ++i) {
      store_.Put("user" + std::to_string(i), "v");
    }
  }

  std::string KeyOnInstance(InstanceId instance) {
    auto cfg = coordinator_->GetConfiguration();
    for (int i = 0; i < 300; ++i) {
      std::string key = "user" + std::to_string(i);
      if (cfg->fragment(cfg->FragmentOf(key)).primary == instance) return key;
    }
    ADD_FAILURE();
    return "";
  }

  void DrainWorkers() {
    Session s;
    for (int guard = 0; guard < 10000; ++guard) {
      if (!worker_->has_work() &&
          !worker_->TryAdoptFragment(s).has_value()) {
        return;
      }
      (void)worker_->Step(s);
    }
    FAIL() << "workers did not drain";
  }

  bool ReadIsStale(const std::string& key) {
    auto r = client_->Read(session_, key);
    if (!r.ok()) return false;
    return checker_->OnRead(clock_.Now(), key, r->value.version);
  }

  VirtualClock clock_;
  DataStore store_;
  std::vector<std::unique_ptr<CacheInstance>> instances_;
  std::vector<CacheInstance*> raw_;
  std::unique_ptr<Coordinator> coordinator_;
  std::unique_ptr<GeminiClient> client_;
  std::unique_ptr<RecoveryWorker> worker_;
  std::unique_ptr<StaleReadChecker> checker_;
  Session session_;
};

TEST_F(RejigTest, EntryStampsFollowClientConfigId) {
  Build();
  const std::string key = KeyOnInstance(0);
  (void)client_->Read(session_, key);
  auto stamp = raw_[0]->RawConfigIdOf(key);
  ASSERT_TRUE(stamp.has_value());
  EXPECT_EQ(*stamp, coordinator_->latest_id());
}

TEST_F(RejigTest, PrefailureRestoreRevalidatesPrimaryEntries) {
  Build();
  const std::string key = KeyOnInstance(0);
  (void)client_->Read(session_, key);
  const auto stamp = *raw_[0]->RawConfigIdOf(key);

  coordinator_->OnInstanceFailed(0);
  coordinator_->OnInstanceRecovered(0);
  const FragmentId f =
      coordinator_->GetConfiguration()->FragmentOf(key);
  // Fragment id restored at/below the entry's stamp: entry servable.
  EXPECT_LE(coordinator_->GetConfiguration()->fragment(f).config_id, stamp);
  auto r = client_->Read(session_, key);
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r->cache_hit);
  EXPECT_EQ(r->instance, 0u);
}

TEST_F(RejigTest, ReusedSecondaryLeftoversNeverServeStale) {
  // The episode-crossing scenario the property tests originally caught:
  // 1. episode 1: instance 0 fails; secondary S caches k.
  // 2. recovery completes; S keeps its (now retired) copy physically.
  // 3. k is written in normal mode (primary invalidated; S's copy is stale).
  // 4. instance 0 fails again and S becomes the secondary again.
  // 5. instance 0 recovers; the fragment id is restored for the primary —
  //    S's stale leftover must NOT be re-validated for WST/overwrite reads.
  Build(RecoveryPolicy::GeminiOW());
  const std::string key = KeyOnInstance(0);
  const FragmentId f = coordinator_->GetConfiguration()->FragmentOf(key);

  // Episode 1.
  coordinator_->OnInstanceFailed(0);
  (void)client_->Read(session_, key);  // S caches k
  const InstanceId s1 =
      coordinator_->GetConfiguration()->fragment(f).secondary;
  ASSERT_TRUE(raw_[s1]->ContainsRaw(key));
  coordinator_->OnInstanceRecovered(0);
  DrainWorkers();
  // Terminate WST to finish the episode.
  coordinator_->OnWorkingSetTransferTerminated(f);
  ASSERT_EQ(coordinator_->ModeOf(f), FragmentMode::kNormal);

  // Stale leftover in S.
  ASSERT_TRUE(client_->Write(session_, key).ok());

  // Episode 2 — keep failing until S is the secondary again.
  for (int attempt = 0; attempt < 8; ++attempt) {
    coordinator_->OnInstanceFailed(0);
    const InstanceId s2 =
        coordinator_->GetConfiguration()->fragment(f).secondary;
    coordinator_->OnInstanceRecovered(0);
    if (s2 == s1) break;
    // Finish this episode cleanly and try again.
    DrainWorkers();
    coordinator_->OnWorkingSetTransferTerminated(f);
  }
  ASSERT_EQ(coordinator_->ModeOf(f), FragmentMode::kRecovery);

  // The dirty list of episode 2 is empty; the read misses the primary (the
  // write deleted k there) and probes the secondary: the leftover must be
  // invisible, forcing a store fill.
  EXPECT_FALSE(ReadIsStale(key));
  EXPECT_EQ(checker_->total_stale(), 0u);
}

TEST_F(RejigTest, DiscardIsOrderOneIdBump) {
  Build();
  // Cache plenty of entries for instance 0's fragment.
  std::vector<std::string> keys;
  auto cfg = coordinator_->GetConfiguration();
  for (int i = 0; i < 300; ++i) {
    std::string key = "user" + std::to_string(i);
    if (cfg->fragment(cfg->FragmentOf(key)).primary == 0) {
      (void)client_->Read(session_, key);
      keys.push_back(std::move(key));
    }
  }
  ASSERT_GT(keys.size(), 10u);

  // Lose the dirty list mid-failure: discard.
  coordinator_->OnInstanceFailed(0);
  auto mid = coordinator_->GetConfiguration();
  const FragmentId f = mid->FragmentOf(keys[0]);
  const InstanceId sec = mid->fragment(f).secondary;
  OpContext internal{kInternalConfigId, kInvalidFragment};
  ASSERT_TRUE(raw_[sec]->Delete(internal, DirtyListKey(f)).ok());
  coordinator_->OnInstanceRecovered(0);

  // All entries still physically present (the discard touched none)...
  size_t resident = 0;
  for (const auto& k : keys) {
    if (raw_[0]->ContainsRaw(k)) ++resident;
  }
  EXPECT_EQ(resident, keys.size());
  // ...but none are servable; they are deleted lazily on access.
  const auto discards_before = raw_[0]->stats().config_discards;
  for (const auto& k : keys) {
    auto r = client_->Read(session_, k);
    ASSERT_TRUE(r.ok());
    EXPECT_FALSE(r->cache_hit) << k;
  }
  EXPECT_EQ(raw_[0]->stats().config_discards - discards_before, keys.size());
}

TEST_F(RejigTest, StaleDirtyListFromOlderEpochIsNotReused) {
  // A client that never observes the intermediate transient window must not
  // keep its dirty list from the previous recovery episode: keys dirtied in
  // the NEW episode would be missing from it and served stale.
  Build(RecoveryPolicy::GeminiO());
  const std::string key = KeyOnInstance(0);
  const FragmentId f = coordinator_->GetConfiguration()->FragmentOf(key);
  (void)client_->Read(session_, key);  // cached in the primary

  // Episode 1: fail, no writes, recover. The client fetches the (empty)
  // dirty list while the fragment is in recovery mode.
  coordinator_->OnInstanceFailed(0);
  coordinator_->OnInstanceRecovered(0);
  ASSERT_EQ(coordinator_->ModeOf(f), FragmentMode::kRecovery);
  (void)client_->Read(session_, key);  // fetches Dj (empty)

  // Episode 2 begins while the fragment is still in recovery (transition
  // (5)): the primary fails again and `key` is dirtied via a SECOND client
  // whose write the first client never sees.
  coordinator_->OnInstanceFailed(0);
  GeminiClient other(&clock_, coordinator_.get(), raw_, &store_);
  Session s2;
  ASSERT_TRUE(other.Write(s2, key, "fresh-epoch-2").ok());
  coordinator_->OnInstanceRecovered(0);
  ASSERT_EQ(coordinator_->ModeOf(f), FragmentMode::kRecovery);

  // The first client reads `key` without ever having refreshed through the
  // transient window: its cached episode-1 dirty list must be invalidated
  // (fragment epoch changed), forcing a refetch that contains `key`.
  EXPECT_FALSE(ReadIsStale(key));
  EXPECT_EQ(checker_->total_stale(), 0u);
}

TEST_F(RejigTest, ConfigIdsAreMonotonic) {
  Build();
  ConfigId last = coordinator_->latest_id();
  for (int round = 0; round < 5; ++round) {
    coordinator_->OnInstanceFailed(0);
    ConfigId id = coordinator_->latest_id();
    EXPECT_GT(id, last);
    last = id;
    coordinator_->OnInstanceRecovered(0);
    id = coordinator_->latest_id();
    EXPECT_GT(id, last);
    last = id;
    DrainWorkers();
    EXPECT_GE(coordinator_->latest_id(), last);
    last = coordinator_->latest_id();
  }
}

TEST_F(RejigTest, StragglerClientCannotWriteThroughOldPrimary) {
  // A client that never observed the failure keeps its old configuration;
  // the (emulated-failed, still reachable) old primary must reject it.
  Build();
  const std::string key = KeyOnInstance(0);
  (void)client_->Read(session_, key);  // caches config + entry

  GeminiClient straggler(&clock_, coordinator_.get(), raw_, &store_);
  Session s;
  (void)straggler.Read(s, key);  // straggler caches the old config

  coordinator_->OnInstanceFailed(0);

  // The straggler's next write must not land on the revoked primary; the
  // client library refreshes transparently and the write reaches the
  // secondary's dirty list.
  ASSERT_TRUE(straggler.Write(s, key).ok());
  const FragmentId f = coordinator_->GetConfiguration()->FragmentOf(key);
  const InstanceId sec =
      coordinator_->GetConfiguration()->fragment(f).secondary;
  OpContext internal{kInternalConfigId, kInvalidFragment};
  auto payload = raw_[sec]->Get(internal, DirtyListKey(f));
  ASSERT_TRUE(payload.ok());
  auto list = DirtyList::Parse(payload->data);
  ASSERT_TRUE(list.has_value());
  EXPECT_TRUE(list->Contains(key));
}

TEST_F(RejigTest, BatchedFailureAvoidsDoomedSecondaries) {
  Build();
  // Failing 0 and 1 together must place every secondary on instance 2.
  coordinator_->OnInstancesFailed({0, 1});
  auto cfg = coordinator_->GetConfiguration();
  for (FragmentId f = 0; f < cfg->num_fragments(); ++f) {
    const auto& a = cfg->fragment(f);
    if (a.mode == FragmentMode::kTransient) {
      EXPECT_EQ(a.secondary, 2u);
    }
  }
  EXPECT_EQ(coordinator_->discarded_fragment_count(), 0u);
}

TEST_F(RejigTest, SequentialFailureDiscardsDoomedSecondaries) {
  Build();
  coordinator_->OnInstanceFailed(0);
  auto mid = coordinator_->GetConfiguration();
  // Find where fragment 0's secondary landed, then fail that instance.
  const InstanceId sec = mid->fragment(0).secondary;
  coordinator_->OnInstanceFailed(sec);
  EXPECT_GE(coordinator_->discarded_fragment_count(), 1u);
}

}  // namespace
}  // namespace gemini
