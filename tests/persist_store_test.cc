// PersistentStore tests: kill-and-restart roundtrips restore byte-exact
// entries and metadata, the crash-spanning Q rule drops in-flight writes,
// write-back pins and their flush queue survive, checkpoints truncate the
// log, damage fails closed, and a SIGKILL'd primary rejoins the cluster
// through the normal failover -> transient -> recovery cycle with zero
// stale reads and a warm cache.
#include "src/persist/persistent_store.h"

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include <ftw.h>
#include <sys/stat.h>
#include <unistd.h>

#include "src/cache/cache_instance.h"
#include "src/client/gemini_client.h"
#include "src/consistency/stale_read_checker.h"
#include "src/coordinator/coordinator.h"
#include "src/persist/wal.h"
#include "src/recovery/recovery_worker.h"

namespace gemini {
namespace {

constexpr OpContext kCtx{kInternalConfigId, kInvalidFragment};

int RemoveEntry(const char* path, const struct stat*, int, struct FTW*) {
  return ::remove(path);
}

void RemoveTree(const std::string& dir) {
  ::nftw(dir.c_str(), RemoveEntry, 16, FTW_DEPTH | FTW_PHYS);
}

/// Everything the durable medium promises to restore for one entry.
struct EntryImage {
  std::string data;
  uint32_t charged_bytes = 0;
  Version version = 0;
  ConfigId config_id = 0;
  bool pinned = false;

  bool operator==(const EntryImage& o) const {
    return data == o.data && charged_bytes == o.charged_bytes &&
           version == o.version && config_id == o.config_id &&
           pinned == o.pinned;
  }
};

std::map<std::string, EntryImage> ImageOf(const CacheInstance& instance) {
  std::map<std::string, EntryImage> image;
  instance.ForEachEntry([&image](std::string_view key, const CacheValue& value,
                                 ConfigId config_id, bool pinned) {
    image[std::string(key)] =
        EntryImage{value.data, value.charged_bytes, value.version, config_id,
                   pinned};
  });
  return image;
}

class PersistentStoreTest : public ::testing::Test {
 protected:
  std::string TempDir(const std::string& name) {
    const std::string dir = ::testing::TempDir() + "/store_" + name;
    RemoveTree(dir);
    dirs_.push_back(dir);
    return dir;
  }

  void TearDown() override {
    for (const auto& d : dirs_) RemoveTree(d);
  }

  /// Test stores run without the background thread: Sync()/Checkpoint() are
  /// driven by hand so every test is deterministic.
  static PersistentStore::Options StoreOptions() {
    PersistentStore::Options o;
    o.sync_interval = 0;
    return o;
  }

  /// One "process": a store and the instance it durably backs.
  struct Process {
    std::unique_ptr<PersistentStore> store;
    std::unique_ptr<CacheInstance> instance;
  };

  Process Boot(const std::string& dir, InstanceId id = 1) {
    Process p;
    p.store = std::make_unique<PersistentStore>(dir, StoreOptions());
    CacheInstance::Options opts;
    opts.persistence = p.store.get();
    p.instance = std::make_unique<CacheInstance>(id, &clock_, opts);
    EXPECT_TRUE(p.store->Open(*p.instance).ok());
    return p;
  }

  /// SIGKILL: drop the process without checkpointing. The store destructor
  /// closes the fd, but everything already reached the page cache through
  /// write() — exactly what a same-OS kill -9 leaves behind.
  static void Kill(Process& p) {
    p.store.reset();
    p.instance.reset();
  }

  VirtualClock clock_;
  std::vector<std::string> dirs_;
};

TEST_F(PersistentStoreTest, EmptyDirBootsEmptyAndCheckpointed) {
  const std::string dir = TempDir("empty");
  Process p = Boot(dir);
  EXPECT_EQ(p.instance->stats().entry_count, 0u);
  EXPECT_EQ(p.store->stats().restored_entries, 0u);
  EXPECT_TRUE(p.store->error().ok());
  // Open leaves a checkpoint + a live segment + the preallocated (empty)
  // next segment behind.
  DirListing listing;
  CheckpointManager manager(dir);
  ASSERT_TRUE(manager.List(listing).ok());
  EXPECT_EQ(listing.checkpoint_seqs.size(), 1u);
  EXPECT_EQ(listing.wal_seqs.size(), 2u);
}

TEST_F(PersistentStoreTest, OpenIsOneShot) {
  const std::string dir = TempDir("oneshot");
  Process p = Boot(dir);
  CacheInstance other(2, &clock_);
  EXPECT_EQ(p.store->Open(other).code(), Code::kInvalidArgument);
}

TEST_F(PersistentStoreTest, KillRestartRestoresByteExactEntriesAndConfigId) {
  const std::string dir = TempDir("roundtrip");
  Process p = Boot(dir);
  CacheInstance& a = *p.instance;

  // A mix of every upsert path. Fragment 3's lease stamps config id 9 on
  // entries written under it; the instance-wide latest id advances to 11.
  a.GrantFragmentLease(3, 9, clock_.Now() + Seconds(60), 9);
  const OpContext fctx{9, 3};
  ASSERT_TRUE(a.Set(fctx, "stamped", CacheValue::OfData("sv", 5)).ok());
  ASSERT_TRUE(a.Set(kCtx, "plain", CacheValue::OfData("pv", 2)).ok());
  ASSERT_TRUE(a.Append(kCtx, "list", "head;").ok());
  ASSERT_TRUE(a.Append(kCtx, "list", "tail;").ok());
  ASSERT_TRUE(a.Cas(kCtx, "plain", 2, CacheValue::OfData("pv2", 3)).ok());
  auto iq = a.IqGet(kCtx, "filled");
  ASSERT_TRUE(iq.ok());
  ASSERT_FALSE(iq->value.has_value());
  ASSERT_TRUE(a.IqSet(kCtx, "filled", CacheValue::OfData("fv", 7),
                      iq->i_token).ok());
  ASSERT_TRUE(a.Set(kCtx, "gone", CacheValue::OfData("x")).ok());
  ASSERT_TRUE(a.Delete(kCtx, "gone").ok());
  // Odd payload bytes and a charge above the data size must both survive.
  CacheValue odd;
  odd.data = std::string("\x00\xff\x7f", 3);
  odd.charged_bytes = 4096;
  odd.version = 99;
  ASSERT_TRUE(a.Set(kCtx, "odd", odd).ok());
  a.ObserveConfigId(11);

  const auto before = ImageOf(a);
  ASSERT_TRUE(before.count("stamped"));
  EXPECT_EQ(before.at("stamped").config_id, 9u);
  const ConfigId config_before = a.latest_config_id();
  EXPECT_EQ(config_before, 11u);
  Kill(p);

  Process q = Boot(dir);
  EXPECT_EQ(ImageOf(*q.instance), before);
  EXPECT_EQ(q.instance->latest_config_id(), config_before);
  EXPECT_FALSE(q.instance->ContainsRaw("gone"));
  EXPECT_GT(q.store->stats().replayed_records, 0u);
}

TEST_F(PersistentStoreTest, CrashSpanningQuarantineRuleDropsInFlightWrites) {
  const std::string dir = TempDir("qrule");
  Process p = Boot(dir);
  CacheInstance& a = *p.instance;

  ASSERT_TRUE(a.Set(kCtx, "committed", CacheValue::OfData("v1", 1)).ok());
  ASSERT_TRUE(a.Set(kCtx, "deleted", CacheValue::OfData("v1", 1)).ok());
  ASSERT_TRUE(a.Set(kCtx, "inflight", CacheValue::OfData("v1", 1)).ok());

  // Completed write-through cycle: the new value is durable and clean.
  auto t1 = a.Qareg(kCtx, "committed");
  ASSERT_TRUE(t1.ok());
  ASSERT_TRUE(a.Rar(kCtx, "committed", CacheValue::OfData("v2", 2), *t1).ok());
  // Completed write-around cycle: the entry is durably gone.
  auto t2 = a.Qareg(kCtx, "deleted");
  ASSERT_TRUE(t2.ok());
  ASSERT_TRUE(a.Dar(kCtx, "deleted", *t2).ok());
  // In-flight cycle: the writer holds the Q lease at the crash. Its data
  // store write may or may not have landed — the cached "v1" may be stale.
  auto t3 = a.Qareg(kCtx, "inflight");
  ASSERT_TRUE(t3.ok());
  ASSERT_TRUE(a.ContainsRaw("inflight"));
  Kill(p);

  Process q = Boot(dir);
  CacheInstance& b = *q.instance;
  auto committed = b.Get(kCtx, "committed");
  ASSERT_TRUE(committed.ok());
  EXPECT_EQ(committed->data, "v2");
  EXPECT_FALSE(b.ContainsRaw("deleted"));
  // The Q rule fails toward a miss, never a stale hit.
  EXPECT_FALSE(b.ContainsRaw("inflight"));
  EXPECT_GE(q.store->stats().quarantine_drops, 1u);
}

TEST_F(PersistentStoreTest, WriteBackPinsAndFlushQueueSurviveRestart) {
  const std::string dir = TempDir("writeback");
  Process p = Boot(dir);
  CacheInstance& a = *p.instance;

  // Two buffered writes on one key (the second supersedes the first) plus
  // one on another key.
  for (Version v = 1; v <= 2; ++v) {
    auto t = a.Qareg(kCtx, "hot");
    ASSERT_TRUE(t.ok());
    ASSERT_TRUE(a.WriteBackInstall(kCtx, "hot",
                                   CacheValue::OfData("h" + std::to_string(v),
                                                      v),
                                   *t).ok());
  }
  auto t = a.Qareg(kCtx, "cold");
  ASSERT_TRUE(t.ok());
  ASSERT_TRUE(
      a.WriteBackInstall(kCtx, "cold", CacheValue::OfData("c1", 10), *t).ok());
  Kill(p);

  Process q = Boot(dir);
  CacheInstance& b = *q.instance;
  const auto image = ImageOf(b);
  ASSERT_TRUE(image.count("hot"));
  EXPECT_TRUE(image.at("hot").pinned);
  EXPECT_EQ(image.at("hot").data, "h2");
  ASSERT_TRUE(image.count("cold"));
  EXPECT_TRUE(image.at("cold").pinned);

  // The flush queue was rebuilt from the final pinned entries: exactly one
  // flush per key, carrying the latest buffered value — never the
  // superseded "h1".
  auto flushes = b.TakePendingFlushes(10);
  ASSERT_EQ(flushes.size(), 2u);
  std::map<std::string, Version> versions;
  for (const auto& f : flushes) versions[f.key] = f.value.version;
  EXPECT_EQ(versions.at("hot"), 2u);
  EXPECT_EQ(versions.at("cold"), 10u);
  b.Unpin("hot", 2);
  b.Unpin("cold", 10);
  EXPECT_EQ(b.pending_flush_count(), 0u);
}

TEST_F(PersistentStoreTest, CheckpointTruncatesLogAndRestartStaysExact) {
  const std::string dir = TempDir("checkpoint");
  Process p = Boot(dir);
  CacheInstance& a = *p.instance;
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(a.Set(kCtx, "k" + std::to_string(i),
                      CacheValue::OfData(
                          std::string(64, static_cast<char>('a' + i % 26)),
                                         static_cast<Version>(i)))
                    .ok());
  }
  const uint64_t seq_before = p.store->wal_seq();
  ASSERT_TRUE(p.store->Checkpoint().ok());
  EXPECT_GT(p.store->wal_seq(), seq_before);

  // Covered segments and superseded checkpoints are gone.
  DirListing listing;
  CheckpointManager manager(dir);
  ASSERT_TRUE(manager.List(listing).ok());
  ASSERT_EQ(listing.checkpoint_seqs.size(), 1u);
  EXPECT_EQ(listing.checkpoint_seqs[0], p.store->wal_seq());
  for (uint64_t seq : listing.wal_seqs) EXPECT_GE(seq, p.store->wal_seq());

  // Mutations after the checkpoint land in the fresh segment and replay on
  // top of it.
  ASSERT_TRUE(a.Set(kCtx, "post", CacheValue::OfData("pv", 1)).ok());
  ASSERT_TRUE(a.Delete(kCtx, "k5").ok());
  const auto before = ImageOf(a);
  Kill(p);

  Process q = Boot(dir);
  EXPECT_EQ(ImageOf(*q.instance), before);
  EXPECT_FALSE(q.instance->ContainsRaw("k5"));
  EXPECT_EQ(q.instance->stats().entry_count, 100u);  // 100 - k5 + post
}

TEST_F(PersistentStoreTest, ConfigIdSurvivesThroughCheckpointHeadRecord) {
  const std::string dir = TempDir("confighead");
  Process p = Boot(dir);
  p.instance->ObserveConfigId(42);
  // A checkpoint garbage-collects the segment holding the kConfigId record;
  // the replacement segment's head record must carry it forward even though
  // no entry is stamped with it.
  ASSERT_TRUE(p.store->Checkpoint().ok());
  Kill(p);

  Process q = Boot(dir);
  EXPECT_EQ(q.instance->latest_config_id(), 42u);
}

TEST_F(PersistentStoreTest, CheckpointSchedulingIsDrivenByWalByteGrowth) {
  const std::string dir = TempDir("lag_schedule");
  PersistentStore::Options o = StoreOptions();
  o.checkpoint_lag_bytes = 4096;
  PersistentStore store(dir, o);
  CacheInstance::Options opts;
  opts.persistence = &store;
  CacheInstance instance(1, &clock_, opts);
  ASSERT_TRUE(store.Open(instance).ok());
  const uint64_t boot_checkpoints = store.stats().checkpoints;

  // Below the threshold, MaybeCheckpoint declines.
  auto ran = store.MaybeCheckpoint();
  ASSERT_TRUE(ran.ok());
  EXPECT_FALSE(*ran);
  EXPECT_EQ(store.stats().checkpoints, boot_checkpoints);

  // ~8 KiB of upserts crosses the 4 KiB lag threshold. Sync() first so the
  // writer thread has drained and the lag the scheduler sees is the lag the
  // appends produced.
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(instance.Set(kCtx, "k" + std::to_string(i),
                             CacheValue::OfData(std::string(512, 'v')))
                    .ok());
  }
  ASSERT_TRUE(store.Sync().ok());
  EXPECT_GT(store.stats().checkpoint_lag_bytes, o.checkpoint_lag_bytes);

  ran = store.MaybeCheckpoint();
  ASSERT_TRUE(ran.ok());
  EXPECT_TRUE(*ran);
  EXPECT_EQ(store.stats().checkpoints, boot_checkpoints + 1);
  // The checkpoint collapsed the lag to the fresh segment's head record,
  // so the scheduler is quiescent again until the log regrows.
  EXPECT_LT(store.stats().checkpoint_lag_bytes, o.checkpoint_lag_bytes);
  ran = store.MaybeCheckpoint();
  ASSERT_TRUE(ran.ok());
  EXPECT_FALSE(*ran);
  EXPECT_EQ(store.stats().checkpoints, boot_checkpoints + 1);
}

TEST_F(PersistentStoreTest, CorruptLogFailsClosed) {
  const std::string dir = TempDir("corrupt");
  Process p = Boot(dir);
  ASSERT_TRUE(p.instance->Set(kCtx, "k", CacheValue::OfData("v")).ok());
  const uint64_t seq = p.store->wal_seq();
  Kill(p);

  // Flip a byte in the middle of the live segment (past the head record).
  const std::string path = Wal::SegmentPath(dir, seq);
  WalScanResult scan = Wal::ScanFile(path);
  ASSERT_GE(scan.records.size(), 2u);
  FILE* f = std::fopen(path.c_str(), "r+b");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, static_cast<long>(scan.record_ends[0] + 9), SEEK_SET),
            0);
  char b = 0;
  ASSERT_EQ(std::fread(&b, 1, 1, f), 1u);
  std::fseek(f, -1, SEEK_CUR);
  b ^= 0x40;
  ASSERT_EQ(std::fwrite(&b, 1, 1, f), 1u);
  std::fclose(f);

  PersistentStore store(dir, StoreOptions());
  CacheInstance::Options opts;
  opts.persistence = &store;
  CacheInstance instance(1, &clock_, opts);
  EXPECT_EQ(store.Open(instance).code(), Code::kInternal);
}

TEST_F(PersistentStoreTest, SegmentGapFailsClosed) {
  const std::string dir = TempDir("gap");
  RemoveTree(dir);
  ASSERT_EQ(::mkdir(dir.c_str(), 0755), 0);
  // Segments 0 and 2 with no 1: history is missing, recovery must refuse.
  for (uint64_t seq : {0ull, 2ull}) {
    Wal wal;
    ASSERT_TRUE(wal.Open(dir, seq, {}).ok());
    WalRecord rec;
    rec.type = WalRecordType::kConfigId;
    ASSERT_TRUE(wal.Append(rec, true).ok());
    wal.Close();
  }
  PersistentStore store(dir, StoreOptions());
  CacheInstance::Options opts;
  opts.persistence = &store;
  CacheInstance instance(1, &clock_, opts);
  EXPECT_EQ(store.Open(instance).code(), Code::kInternal);
}

TEST_F(PersistentStoreTest, TornTailInMiddleSegmentFailsClosed) {
  const std::string dir = TempDir("midtorn");
  Process p = Boot(dir);
  ASSERT_TRUE(p.instance->Set(kCtx, "a", CacheValue::OfData("1")).ok());
  const uint64_t first = p.store->wal_seq();
  // Rotate without checkpointing so two segments must both replay.
  {
    Wal wal;  // new handle appends nothing; rotate via a second segment
    ASSERT_TRUE(wal.Open(dir, first + 1, {}).ok());
    WalRecord rec;
    rec.type = WalRecordType::kConfigId;
    ASSERT_TRUE(wal.Append(rec, true).ok());
    wal.Close();
  }
  Kill(p);

  // Tear the *first* segment's tail: that is lost history, not a crash.
  const std::string path = Wal::SegmentPath(dir, first);
  WalScanResult scan = Wal::ScanFile(path);
  ASSERT_TRUE(scan.error.ok());
  ASSERT_EQ(::truncate(path.c_str(),
                       static_cast<off_t>(scan.valid_bytes - 3)), 0);

  PersistentStore store(dir, StoreOptions());
  CacheInstance::Options opts;
  opts.persistence = &store;
  CacheInstance instance(1, &clock_, opts);
  EXPECT_EQ(store.Open(instance).code(), Code::kInternal);
}

// The acceptance-criteria integration test: a SIGKILL'd primary rejoins
// through the normal failover -> transient -> recovery cycle. The restarted
// process replays its data dir into a cold CacheInstance, comes back warm
// (clean keys are cache hits immediately), serves the post-failure value
// for dirty keys, and the StaleReadChecker observes zero stale reads across
// the whole episode.
TEST_F(PersistentStoreTest, KilledPrimaryRejoinsWarmThroughRecoveryCycle) {
  constexpr size_t kInstances = 4;
  constexpr size_t kFragments = 8;
  const std::string dir = TempDir("lifecycle");

  auto store0 = std::make_unique<PersistentStore>(dir, StoreOptions());
  std::vector<std::unique_ptr<CacheInstance>> instances;
  std::vector<CacheInstance*> raw;
  for (size_t i = 0; i < kInstances; ++i) {
    CacheInstance::Options opts;
    if (i == 0) opts.persistence = store0.get();
    instances.push_back(std::make_unique<CacheInstance>(
        static_cast<InstanceId>(i), &clock_, opts));
    raw.push_back(instances.back().get());
  }
  ASSERT_TRUE(store0->Open(*instances[0]).ok());

  DataStore data_store;
  Coordinator::Options copts;
  copts.policy = RecoveryPolicy::GeminiO();
  Coordinator coordinator(&clock_, raw, kFragments, copts);
  GeminiClient client(&clock_, &coordinator, raw, &data_store, {});
  RecoveryState recovery_state(kFragments);
  client.BindRecoveryState(&recovery_state);
  RecoveryWorker worker(&clock_, &coordinator, raw, {});
  StaleReadChecker checker(&data_store);
  Session session;

  for (int i = 0; i < 200; ++i) {
    data_store.Put("user" + std::to_string(i), "v0");
  }
  auto audit = [&](const std::string& key) {
    auto r = client.Read(session, key);
    ASSERT_TRUE(r.ok()) << key;
    EXPECT_FALSE(checker.OnRead(clock_.Now(), key, r->value.version)) << key;
  };

  // Warm every cache, then write a few keys through the Q path so the log
  // holds completed quarantine cycles too.
  std::vector<std::string> on_zero;
  auto cfg = coordinator.GetConfiguration();
  for (int i = 0; i < 200; ++i) {
    std::string key = "user" + std::to_string(i);
    audit(key);
    if (cfg->fragment(cfg->FragmentOf(key)).primary == 0 &&
        on_zero.size() < 12) {
      on_zero.push_back(std::move(key));
    }
  }
  ASSERT_GE(on_zero.size(), 4u);
  ASSERT_TRUE(client.Write(session, on_zero[0]).ok());
  audit(on_zero[0]);

  const auto image_before = ImageOf(*instances[0]);
  const ConfigId config_before = instances[0]->latest_config_id();
  ASSERT_FALSE(image_before.empty());

  // SIGKILL the primary: the process (store + in-memory state) dies; only
  // the data dir survives. The instance *object* stays (the coordinator
  // holds pointers), so model the dead process by detaching the store and
  // wiping all volatile state.
  instances[0]->Fail();
  store0.reset();
  instances[0]->SetPersistenceSink(nullptr);

  // Failover: writes while the primary is down dirty half the keys.
  clock_.Advance(Seconds(1));
  coordinator.OnInstanceFailed(0);
  for (size_t i = 0; i < on_zero.size(); i += 2) {
    ASSERT_TRUE(client.Write(session, on_zero[i]).ok());
  }
  for (const auto& k : on_zero) audit(k);

  // Restart: a fresh store replays the data dir into the (cold, wiped)
  // instance. Content and config id come back from disk alone.
  instances[0]->RecoverVolatile();
  ASSERT_EQ(instances[0]->stats().entry_count, 0u);
  auto store1 = std::make_unique<PersistentStore>(dir, StoreOptions());
  instances[0]->SetPersistenceSink(store1.get());
  ASSERT_TRUE(store1->Open(*instances[0]).ok());

  EXPECT_EQ(ImageOf(*instances[0]), image_before);
  EXPECT_EQ(instances[0]->latest_config_id(), config_before);

  // Rejoin: the coordinator runs the standard recovery-mode cycle.
  clock_.Advance(Seconds(1));
  coordinator.OnInstanceRecovered(0);

  // A clean key (not written while down) must be a warm cache hit on the
  // recovered primary immediately — the whole point of the durable medium.
  std::string clean_key;
  for (size_t i = 1; i < on_zero.size(); i += 2) {
    clean_key = on_zero[i];
    break;
  }
  ASSERT_FALSE(clean_key.empty());
  auto clean = client.Read(session, clean_key);
  ASSERT_TRUE(clean.ok());
  EXPECT_TRUE(clean->cache_hit);
  EXPECT_FALSE(checker.OnRead(clock_.Now(), clean_key, clean->value.version));

  // Dirty keys serve the post-failure value; drain recovery back to normal.
  for (const auto& k : on_zero) audit(k);
  Session worker_session;
  for (int guard = 0; guard < 20000; ++guard) {
    if (!worker.has_work() &&
        !worker.TryAdoptFragment(worker_session).has_value()) {
      break;
    }
    (void)worker.Step(worker_session);
  }
  EXPECT_TRUE(coordinator.FragmentsInMode(FragmentMode::kRecovery).empty());
  for (const auto& k : on_zero) audit(k);
  EXPECT_EQ(checker.total_stale(), 0u);

  // And the recovered process is itself durable: kill it again and the
  // post-recovery state comes back.
  const auto image_after = ImageOf(*instances[0]);
  store1.reset();
  instances[0]->SetPersistenceSink(nullptr);

  PersistentStore store2(dir, StoreOptions());
  CacheInstance::Options opts;
  opts.persistence = &store2;
  CacheInstance fresh(0, &clock_, opts);
  ASSERT_TRUE(store2.Open(fresh).ok());
  EXPECT_EQ(ImageOf(fresh), image_after);
}

}  // namespace
}  // namespace gemini
