// Striped CacheInstance tests: the lock-striped key table introduced for
// multi-core geminid (Options::num_stripes > 1). Covers stripe-count
// resolution, basic operation across stripes, the per-stripe byte budget,
// exact client-observed stats accounting under a multi-threaded hammer, a
// full-op-mix hammer whose byte/entry accounting must still reconcile, a
// snapshot taken while writers run (ForEachEntry's all-stripes lock makes
// the cut coherent), and persistent recovery sweeping Q-quarantined keys
// across stripes.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/cache/cache_instance.h"
#include "src/cache/snapshot.h"
#include "src/common/clock.h"
#include "src/common/rng.h"

namespace gemini {
namespace {

constexpr OpContext kLooseCtx{1, kInvalidFragment};

TEST(CacheStriped, StripeCountRoundsUpToPowerOfTwoAndClamps) {
  SystemClock clock;
  struct Case {
    uint32_t requested;
    uint32_t effective;
  };
  for (const Case c : {Case{0, 1}, Case{1, 1}, Case{3, 4}, Case{16, 16},
                       Case{100, 128}, Case{300, 256}}) {
    CacheInstance::Options opts;
    opts.num_stripes = c.requested;
    CacheInstance inst(0, &clock, opts);
    EXPECT_EQ(inst.stripe_count(), c.effective) << "requested " << c.requested;
  }
}

TEST(CacheStriped, BasicOpsSpanStripes) {
  SystemClock clock;
  CacheInstance::Options opts;
  opts.num_stripes = 8;
  CacheInstance inst(0, &clock, opts);

  for (int i = 0; i < 200; ++i) {
    const std::string key = "key" + std::to_string(i);
    ASSERT_TRUE(inst.Set(kLooseCtx, key, CacheValue::OfData("v" + key)).ok());
  }
  EXPECT_EQ(inst.stats().entry_count, 200u);
  for (int i = 0; i < 200; ++i) {
    const std::string key = "key" + std::to_string(i);
    auto r = inst.Get(kLooseCtx, key);
    ASSERT_TRUE(r.ok()) << key;
    EXPECT_EQ(r->data, "v" + key);
  }
  EXPECT_EQ(inst.Get(kLooseCtx, "absent").status().code(), Code::kNotFound);

  for (int i = 0; i < 200; i += 2) {
    ASSERT_TRUE(inst.Delete(kLooseCtx, "key" + std::to_string(i)).ok());
  }
  const auto s = inst.stats();
  EXPECT_EQ(s.entry_count, 100u);
  EXPECT_EQ(s.deletes, 100u);
  EXPECT_TRUE(inst.ContainsRaw("key1"));
  EXPECT_FALSE(inst.ContainsRaw("key0"));
}

TEST(CacheStriped, EvictionRespectsPerStripeBudget) {
  SystemClock clock;
  CacheInstance::Options opts;
  opts.capacity_bytes = 64 * 1024;
  opts.per_entry_overhead = 0;
  opts.num_stripes = 8;
  CacheInstance inst(0, &clock, opts);

  for (int i = 0; i < 2000; ++i) {
    ASSERT_TRUE(inst.Set(kLooseCtx, "e" + std::to_string(i),
                         CacheValue::OfSize(256))
                    .ok());
  }
  const auto s = inst.stats();
  // The budget is capacity/8 per stripe; each stripe may overshoot by at
  // most its MRU entry, so the global bound is capacity + 8 entries' worth.
  EXPECT_LE(s.used_bytes, 64 * 1024u + 8 * (256 + 16));
  EXPECT_GT(s.evictions, 0u);
  EXPECT_GT(s.entry_count, 0u);
}

// Every counter movement in this op mix is observable from the caller's
// return codes: Get ok = hit, Get kNotFound = miss, Set ok = insert,
// Cas ok = insert, Cas kNotFound = miss (Cas's version-mismatch
// kLeaseInvalid moves nothing). With no capacity there are no evictions, so
// the instance's stats must match the clients' tallies *exactly* — the
// striped counters may not lose or double-count a single op under
// contention.
TEST(CacheStriped, HammerExactClientObservedAccounting) {
  SystemClock clock;
  CacheInstance::Options opts;
  opts.num_stripes = 16;
  CacheInstance inst(0, &clock, opts);

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 4000;
  std::atomic<uint64_t> hits{0}, misses{0}, inserts{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) * 7919 + 1);
      uint64_t my_hits = 0, my_misses = 0, my_inserts = 0;
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string key = "k" + std::to_string(rng.NextBounded(512));
        switch (rng.NextBounded(6)) {
          case 0:
          case 1:
          case 2: {
            auto r = inst.Get(kLooseCtx, key);
            if (r.ok()) {
              ++my_hits;
            } else {
              ASSERT_EQ(r.status().code(), Code::kNotFound);
              ++my_misses;
            }
            break;
          }
          case 3:
          case 4: {
            // Versions 0/1 let some Cas calls below hit the version-
            // mismatch path, which must move no counter.
            ASSERT_TRUE(
                inst.Set(kLooseCtx, key,
                         CacheValue::OfData("v", rng.NextBounded(2)))
                    .ok());
            ++my_inserts;
            break;
          }
          default: {
            const Status s =
                inst.Cas(kLooseCtx, key, 0, CacheValue::OfData("c"));
            if (s.ok()) {
              ++my_inserts;
            } else if (s.code() == Code::kNotFound) {
              ++my_misses;
            } else {
              ASSERT_EQ(s.code(), Code::kLeaseInvalid);
            }
            break;
          }
        }
      }
      hits += my_hits;
      misses += my_misses;
      inserts += my_inserts;
    });
  }
  for (auto& t : threads) t.join();

  const auto s = inst.stats();
  EXPECT_EQ(s.hits, hits.load());
  EXPECT_EQ(s.misses, misses.load());
  EXPECT_EQ(s.inserts, inserts.load());
  EXPECT_EQ(s.deletes, 0u);
  EXPECT_EQ(s.evictions, 0u);
  EXPECT_EQ(s.config_discards, 0u);
}

// The full op mix — leases, write-back pins, appends, recovery primitives —
// hammered across stripes. Afterwards the byte/entry accounting must
// reconcile against a fresh walk of the table: a single lost lock-ordering
// edge or double-charged entry shows up here (and as a TSan report).
TEST(CacheStriped, HammerMixedLeaseOpsStaysCoherent) {
  SystemClock clock;
  CacheInstance::Options opts;
  opts.num_stripes = 8;
  CacheInstance inst(0, &clock, opts);
  inst.GrantFragmentLease(0, 1, clock.Now() + Seconds(3600), 1);

  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 3000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      OpContext ctx{1, 0};
      Rng rng(static_cast<uint64_t>(t) + 42);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string key = "m" + std::to_string(rng.NextBounded(128));
        switch (rng.NextBounded(8)) {
          case 0: {
            auto r = inst.IqGet(ctx, key);
            if (r.ok() && !r->value.has_value()) {
              (void)inst.IqSet(ctx, key, CacheValue::OfSize(32), r->i_token);
            }
            break;
          }
          case 1: {
            auto q = inst.Qareg(ctx, key);
            if (q.ok()) (void)inst.Dar(ctx, key, *q);
            break;
          }
          case 2: {
            auto q = inst.Qareg(ctx, key);
            if (q.ok()) {
              (void)inst.WriteBackInstall(
                  ctx, key, CacheValue::OfSize(24, static_cast<Version>(i)),
                  *q);
            }
            break;
          }
          case 3: {
            for (auto& flush : inst.TakePendingFlushes(8)) {
              inst.Unpin(flush.key, flush.value.version);
            }
            break;
          }
          case 4:
            (void)inst.Append(ctx, key, "x");
            break;
          case 5:
            (void)inst.Set(ctx, key, CacheValue::OfSize(16));
            break;
          case 6: {
            auto s = inst.ISet(ctx, key);
            if (s.ok()) (void)inst.IDelete(ctx, key, *s);
            break;
          }
          default:
            (void)inst.Get(ctx, key);
            break;
        }
      }
    });
  }
  for (auto& t : threads) t.join();

  uint64_t walked_bytes = 0, walked_entries = 0;
  inst.ForEachEntry([&](std::string_view key, const CacheValue& value,
                        ConfigId, bool) {
    walked_bytes += key.size() + value.charged_bytes +
                    inst.options().per_entry_overhead;
    ++walked_entries;
  });
  const auto s = inst.stats();
  EXPECT_EQ(s.used_bytes, walked_bytes);
  EXPECT_EQ(s.entry_count, walked_entries);

  // Still fully operational.
  ASSERT_TRUE(inst.Set(OpContext{1, 0}, "final", CacheValue::OfSize(8)).ok());
  EXPECT_TRUE(inst.Get(OpContext{1, 0}, "final").ok());
}

// Snapshots taken while writers mutate the table: ForEachEntry holds every
// stripe lock for the whole walk, so WriteToFile serializes against all
// writers at one point — each snapshot must be internally valid (checksum
// passes on load) and every entry self-consistent (its payload embeds its
// key, so a torn read would be visible). The restore target deliberately
// uses a different stripe count: the on-disk format is striping-agnostic.
TEST(CacheStriped, SnapshotWhileWritingSeesCoherentCut) {
  SystemClock clock;
  CacheInstance::Options opts;
  opts.num_stripes = 16;
  CacheInstance inst(0, &clock, opts);
  const std::string path = ::testing::TempDir() + "/striped_snap.bin";
  std::remove(path.c_str());

  std::atomic<bool> stop{false};
  constexpr int kWriters = 4;
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&, t] {
      Rng rng(static_cast<uint64_t>(t) + 101);
      for (uint64_t i = 0; !stop.load(std::memory_order_relaxed); ++i) {
        const std::string key = "s" + std::to_string(rng.NextBounded(128));
        if (rng.NextBounded(8) == 0) {
          (void)inst.Delete(kLooseCtx, key);
        } else {
          (void)inst.Set(kLooseCtx, key,
                         CacheValue::OfData(key + "#" + std::to_string(i)));
        }
      }
    });
  }

  for (int round = 0; round < 6; ++round) {
    ASSERT_TRUE(Snapshot::WriteToFile(inst, path).ok()) << "round " << round;
  }
  stop.store(true, std::memory_order_relaxed);
  for (auto& w : writers) w.join();

  CacheInstance::Options restore_opts;
  restore_opts.num_stripes = 4;
  CacheInstance restored(0, &clock, restore_opts);
  ASSERT_TRUE(Snapshot::LoadFromFile(restored, path).ok());
  size_t checked = 0;
  restored.ForEachEntry([&](std::string_view key, const CacheValue& value,
                            ConfigId, bool) {
    // Self-consistency: the payload names the key it was written under.
    const std::string prefix = std::string(key) + "#";
    EXPECT_EQ(value.data.substr(0, prefix.size()), prefix)
        << "torn entry for " << key;
    ++checked;
  });
  EXPECT_GT(checked, 0u);
  std::remove(path.c_str());
}

TEST(CacheStriped, PersistentRecoverySweepsQuarantineAcrossStripes) {
  SystemClock clock;
  CacheInstance::Options opts;
  opts.num_stripes = 8;
  CacheInstance inst(0, &clock, opts);
  inst.GrantFragmentLease(0, 1, clock.Now() + Seconds(3600), 1);

  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(inst.Set(kLooseCtx, "r" + std::to_string(i),
                         CacheValue::OfData("v"))
                    .ok());
  }
  // Outstanding Q leases on keys that land in different stripes: their
  // writers may have updated the store without completing the delete, so a
  // persistent recovery must drop the entries — wherever they live.
  std::vector<std::string> quarantined;
  for (int i = 0; i < 100 && quarantined.size() < 5; i += 7) {
    const std::string key = "r" + std::to_string(i);
    auto q = inst.Qareg(kLooseCtx, key);
    ASSERT_TRUE(q.ok());
    quarantined.push_back(key);
  }
  // One buffered write-back value survives pinned in the persistent payload.
  auto q = inst.Qareg(kLooseCtx, "pinned");
  ASSERT_TRUE(q.ok());
  ASSERT_TRUE(
      inst.WriteBackInstall(kLooseCtx, "pinned", CacheValue::OfData("buf"), *q)
          .ok());
  (void)inst.TakePendingFlushes(100);  // the flusher took it, crash pre-flush

  inst.Fail();
  EXPECT_EQ(inst.Get(kLooseCtx, "r1").status().code(), Code::kUnavailable);
  inst.RecoverPersistent();

  EXPECT_TRUE(inst.available());
  for (const auto& key : quarantined) {
    EXPECT_FALSE(inst.ContainsRaw(key)) << key << " not swept";
  }
  EXPECT_TRUE(inst.ContainsRaw("r1"));  // non-quarantined content intact
  // Fragment leases are volatile process state.
  EXPECT_FALSE(inst.HoldsFragmentLease(0));
  // The flush queue was rebuilt from pinned entries.
  EXPECT_GE(inst.pending_flush_count(), 1u);
  EXPECT_TRUE(inst.ContainsRaw("pinned"));
}

}  // namespace
}  // namespace gemini
