// Drives the geminid binary end to end: fork/exec with real flags, talk to
// it over TCP, then SIGTERM it and assert the graceful-shutdown contract —
// exit 0 and a final snapshot holding everything that was written. Also
// pins the CLI's fail-closed flag validation (a typo'd number must exit 2,
// not silently become 0).
#include <gtest/gtest.h>

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include <dirent.h>
#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include "src/cache/cache_instance.h"
#include "src/cache/snapshot.h"
#include "src/common/clock.h"
#include "src/transport/tcp_backend.h"
#include "src/transport/wire.h"

#ifndef GEMINID_PATH
#error "GEMINID_PATH must point at the geminid binary"
#endif

namespace gemini {
namespace {

constexpr OpContext kInternalCtx{kInternalConfigId, kInvalidFragment};

struct Child {
  pid_t pid = -1;
  int stdout_fd = -1;
};

/// fork/execs geminid with `args`; the child's stdout arrives on stdout_fd.
Child SpawnGeminid(const std::vector<std::string>& args) {
  int pipefd[2];
  EXPECT_EQ(::pipe(pipefd), 0);
  const pid_t pid = ::fork();
  if (pid == 0) {
    ::dup2(pipefd[1], STDOUT_FILENO);
    ::close(pipefd[0]);
    ::close(pipefd[1]);
    std::vector<char*> argv;
    std::string bin = GEMINID_PATH;
    argv.push_back(bin.data());
    std::vector<std::string> owned = args;
    for (auto& a : owned) argv.push_back(a.data());
    argv.push_back(nullptr);
    ::execv(GEMINID_PATH, argv.data());
    std::perror("execv geminid");
    ::_exit(127);
  }
  ::close(pipefd[1]);
  return {pid, pipefd[0]};
}

/// Reads the child's stdout until `needle` shows up (or ~10 s pass);
/// returns everything read so far.
std::string ReadUntil(int fd, const std::string& needle) {
  std::string out;
  char buf[512];
  const Timestamp start = SystemClock::Global().Now();
  // The pipe stays blocking; geminid prints its startup lines eagerly, so
  // each read returns quickly unless the server failed to launch.
  while (out.find(needle) == std::string::npos) {
    if (SystemClock::Global().Now() - start > Seconds(10)) break;
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n <= 0) break;
    out.append(buf, static_cast<size_t>(n));
  }
  return out;
}

/// Parses "serving on 127.0.0.1:PORT" out of geminid's startup banner.
uint16_t PortFromBanner(const std::string& banner) {
  const std::string marker = "serving on 127.0.0.1:";
  const size_t at = banner.find(marker);
  if (at == std::string::npos) return 0;
  return static_cast<uint16_t>(
      std::atoi(banner.c_str() + at + marker.size()));
}

int WaitForExit(pid_t pid) {
  int wstatus = 0;
  EXPECT_EQ(::waitpid(pid, &wstatus, 0), pid);
  return WIFEXITED(wstatus) ? WEXITSTATUS(wstatus) : -WTERMSIG(wstatus);
}

TEST(GeminidCli, SigtermDrainsAndWritesFinalSnapshot) {
  const std::string snap = ::testing::TempDir() + "/geminid_cli_snap.bin";
  std::remove(snap.c_str());

  Child child = SpawnGeminid({"--port", "0", "--id", "7", "--snapshot", snap,
                              "--threads", "1", "--drain-timeout-ms", "2000",
                              "--idle-timeout-ms", "5000"});
  ASSERT_GT(child.pid, 0);
  const std::string banner = ReadUntil(child.stdout_fd, "serving on");
  const uint16_t port = PortFromBanner(banner);
  ASSERT_NE(port, 0) << "no banner; geminid said:\n" << banner;

  {
    TcpCacheBackend backend("127.0.0.1", port);
    ASSERT_TRUE(backend.Connect().ok());
    EXPECT_EQ(backend.id(), 7u);
    ASSERT_TRUE(
        backend.Set(kInternalCtx, "durable", CacheValue::OfData("yes")).ok());
    ASSERT_TRUE(
        backend.Set(kInternalCtx, "also", CacheValue::OfData("this")).ok());
    backend.Disconnect();
  }

  ASSERT_EQ(::kill(child.pid, SIGTERM), 0);
  const std::string tail = ReadUntil(child.stdout_fd, "entries to");
  EXPECT_NE(tail.find("geminid: wrote"), std::string::npos) << tail;
  EXPECT_EQ(WaitForExit(child.pid), 0);
  ::close(child.stdout_fd);

  // The final snapshot is authoritative: a fresh instance restored from it
  // holds what the client wrote.
  VirtualClock clock;
  CacheInstance restored(7, &clock);
  ASSERT_TRUE(Snapshot::LoadFromFile(restored, snap).ok());
  EXPECT_TRUE(restored.ContainsRaw("durable"));
  EXPECT_TRUE(restored.ContainsRaw("also"));
  std::remove(snap.c_str());
}

TEST(GeminidCli, InvalidTimeoutFlagsExitTwo) {
  for (const char* flag : {"--drain-timeout-ms", "--idle-timeout-ms"}) {
    Child child = SpawnGeminid({flag, "bogus"});
    ASSERT_GT(child.pid, 0);
    EXPECT_EQ(WaitForExit(child.pid), 2) << flag;
    ::close(child.stdout_fd);
  }
}

TEST(GeminidCli, DataDirConflictsWithSnapshotFlagsExitTwo) {
  const std::string dir = ::testing::TempDir() + "/geminid_cli_conflict";
  const std::vector<std::vector<std::string>> bad = {
      {"--data-dir", dir, "--snapshot", dir + "/s.bin"},
      {"--data-dir", dir, "--instance", "3:" + dir + "/s.bin"},
      {"--data-dir", dir, "--snapshot-interval-s", "5"},
  };
  for (const auto& args : bad) {
    Child child = SpawnGeminid(args);
    ASSERT_GT(child.pid, 0);
    EXPECT_EQ(WaitForExit(child.pid), 2) << args[2];
    ::close(child.stdout_fd);
  }
}

/// The acceptance test for the durable engine at the process level: kill -9
/// (never SIGTERM — no snapshot sweep, no checkpoint, no fsync courtesy)
/// and a restart on the same --data-dir must come back warm with exact
/// data, config-id metadata, and the crash-spanning quarantine rule applied.
TEST(GeminidCli, SigkillRestartRestoresWarmStateFromDataDir) {
  const std::string dir = ::testing::TempDir() + "/geminid_cli_data";
  // Fresh directory per run; leftover state would mask a restore bug.
  for (const char* sub : {"/instance_7", ""}) {
    const std::string d = dir + sub;
    DIR* dp = ::opendir(d.c_str());
    if (dp != nullptr) {
      while (struct dirent* e = ::readdir(dp)) {
        std::string name = e->d_name;
        if (name != "." && name != "..") std::remove((d + "/" + name).c_str());
      }
      ::closedir(dp);
      ::rmdir(d.c_str());
    }
  }

  LeaseToken inflight_token = kNoLease;
  {
    Child child = SpawnGeminid({"--port", "0", "--id", "7", "--data-dir", dir,
                                "--threads", "1", "--idle-timeout-ms",
                                "5000"});
    ASSERT_GT(child.pid, 0);
    const std::string banner = ReadUntil(child.stdout_fd, "serving on");
    EXPECT_NE(banner.find("restored 0 entries"), std::string::npos) << banner;
    const uint16_t port = PortFromBanner(banner);
    ASSERT_NE(port, 0) << "no banner; geminid said:\n" << banner;

    TcpCacheBackend backend("127.0.0.1", port);
    ASSERT_TRUE(backend.Connect().ok());
    ASSERT_TRUE(backend.Set(kInternalCtx, "warm",
                            CacheValue::OfData("survives", 3)).ok());
    ASSERT_TRUE(backend.Set(kInternalCtx, "victim",
                            CacheValue::OfData("maybe-stale", 1)).ok());
    ASSERT_TRUE(backend.Set(kInternalCtx, "gone",
                            CacheValue::OfData("deleted")).ok());
    ASSERT_TRUE(backend.Delete(kInternalCtx, "gone").ok());
    // A completed write-through cycle: durable, clean.
    auto qt = backend.Qareg(kInternalCtx, "warm");
    ASSERT_TRUE(qt.ok());
    ASSERT_TRUE(backend.Rar(kInternalCtx, "warm",
                            CacheValue::OfData("survives-v4", 4), *qt).ok());
    // An *unreleased* Q lease over "victim": its writer is mid-flight at the
    // kill, so the cached value must not be served after restart.
    auto in_flight = backend.Qareg(kInternalCtx, "victim");
    ASSERT_TRUE(in_flight.ok());
    inflight_token = *in_flight;
    // Config-id metadata (byte-exact restore is part of the contract).
    ASSERT_TRUE(backend.BumpConfigId(29).ok());
    backend.Disconnect();

    ASSERT_EQ(::kill(child.pid, SIGKILL), 0);
    EXPECT_EQ(WaitForExit(child.pid), -SIGKILL);
    ::close(child.stdout_fd);
  }

  {
    Child child = SpawnGeminid({"--port", "0", "--id", "7", "--data-dir", dir,
                                "--threads", "1", "--idle-timeout-ms",
                                "5000"});
    ASSERT_GT(child.pid, 0);
    const std::string banner = ReadUntil(child.stdout_fd, "serving on");
    const uint16_t port = PortFromBanner(banner);
    ASSERT_NE(port, 0) << "no banner; geminid said:\n" << banner;
    // The boot line proves this came from WAL replay, not a lucky cache.
    EXPECT_NE(banner.find("restored 1 entries"), std::string::npos) << banner;
    EXPECT_NE(banner.find("1 quarantine drops"), std::string::npos) << banner;

    TcpCacheBackend backend("127.0.0.1", port);
    ASSERT_TRUE(backend.Connect().ok());
    // Warm restore, byte-exact including the version.
    auto warm = backend.Get(kInternalCtx, "warm");
    ASSERT_TRUE(warm.ok());
    EXPECT_EQ(warm->data, "survives-v4");
    EXPECT_EQ(warm->version, 4u);
    // The deleted key stayed deleted; the quarantined key failed to a miss.
    EXPECT_EQ(backend.Get(kInternalCtx, "gone").code(), Code::kNotFound);
    EXPECT_EQ(backend.Get(kInternalCtx, "victim").code(), Code::kNotFound);
    // The pre-crash Q lease token is dead process state: it must not be
    // honored by the restarted server.
    EXPECT_FALSE(backend.Rar(kInternalCtx, "victim",
                             CacheValue::OfData("zombie", 9),
                             inflight_token).ok());
    EXPECT_EQ(backend.Get(kInternalCtx, "victim").code(), Code::kNotFound);
    // Config-id metadata restored exactly.
    auto remote_config = backend.RemoteConfigId();
    ASSERT_TRUE(remote_config.ok());
    EXPECT_EQ(*remote_config, 29u);
    backend.Disconnect();

    // SIGTERM now: the graceful path checkpoints the data dir.
    ASSERT_EQ(::kill(child.pid, SIGTERM), 0);
    const std::string tail = ReadUntil(child.stdout_fd, "checkpointed");
    EXPECT_NE(tail.find("geminid: checkpointed"), std::string::npos) << tail;
    EXPECT_EQ(WaitForExit(child.pid), 0);
    ::close(child.stdout_fd);
  }

  // Third boot: restart after the graceful checkpoint still restores the
  // same state (now from the checkpoint instead of log replay).
  {
    Child child = SpawnGeminid({"--port", "0", "--id", "7", "--data-dir", dir,
                                "--threads", "1"});
    ASSERT_GT(child.pid, 0);
    const std::string banner = ReadUntil(child.stdout_fd, "serving on");
    EXPECT_NE(banner.find("restored 1 entries"), std::string::npos) << banner;
    const uint16_t port = PortFromBanner(banner);
    ASSERT_NE(port, 0);
    TcpCacheBackend backend("127.0.0.1", port);
    ASSERT_TRUE(backend.Connect().ok());
    auto warm = backend.Get(kInternalCtx, "warm");
    ASSERT_TRUE(warm.ok());
    EXPECT_EQ(warm->data, "survives-v4");
    ASSERT_EQ(::kill(child.pid, SIGTERM), 0);
    EXPECT_EQ(WaitForExit(child.pid), 0);
    ::close(child.stdout_fd);
  }
}

}  // namespace
}  // namespace gemini
