// Edge coverage for the metric plumbing the benches rely on, plus
// parameterized lease-lifetime sweeps (the paper: IQ leases live for
// milliseconds, fragment leases for seconds to minutes — behaviour must be
// lifetime-independent).
#include <gtest/gtest.h>

#include "src/common/histogram.h"
#include "src/lease/lease_table.h"
#include "src/sim/metrics.h"
#include "src/store/data_store.h"

namespace gemini {
namespace {

// ---- SimMetrics ---------------------------------------------------------------

TEST(SimMetricsEdges, SecondsUntilHitRatioSkipsEmptyBucketsAndMisses) {
  DataStore store;
  SimMetrics m(2, &store);
  // Seconds 0-1: below target; second 2: empty; second 3: reaches target.
  m.instance_hit[0].AddDenominator(Seconds(0), 10);
  m.instance_hit[0].AddNumerator(Seconds(0), 2);
  m.instance_hit[0].AddDenominator(Seconds(1), 10);
  m.instance_hit[0].AddNumerator(Seconds(1), 5);
  m.instance_hit[0].AddDenominator(Seconds(3), 10);
  m.instance_hit[0].AddNumerator(Seconds(3), 9);
  EXPECT_EQ(m.SecondsUntilHitRatio(0, 0, 0.9), 3.0);
  EXPECT_EQ(m.SecondsUntilHitRatio(0, 1, 0.5), 0.0);
  EXPECT_EQ(m.SecondsUntilHitRatio(0, 0, 0.99), -1.0);  // never reached
  EXPECT_EQ(m.SecondsUntilHitRatio(99, 0, 0.5), -1.0);  // bad instance
}

TEST(SimMetricsEdges, InstanceHitBetweenOutOfRange) {
  DataStore store;
  SimMetrics m(1, &store);
  EXPECT_EQ(m.InstanceHitBetween(5, 0, 10), 0.0);
  EXPECT_EQ(m.InstanceHitBetween(0, 0, 10), 0.0);  // no data
}

TEST(LatencySeriesEdges, BucketAccessor) {
  LatencySeries l(kSecond);
  l.Record(Seconds(2), 100);
  EXPECT_EQ(l.NumBuckets(), 3u);
  ASSERT_NE(l.Bucket(2), nullptr);
  EXPECT_EQ(l.Bucket(2)->count(), 1u);
  ASSERT_NE(l.Bucket(0), nullptr);
  EXPECT_EQ(l.Bucket(0)->count(), 0u);
  EXPECT_EQ(l.Bucket(99), nullptr);
}

TEST(HistogramEdges, MergeSpillsOversizedTail) {
  Histogram small(/*max_value=*/100);
  Histogram big(/*max_value=*/1'000'000'000);
  big.Record(500'000'000);
  small.Merge(big);
  EXPECT_EQ(small.count(), 1u);
  EXPECT_EQ(small.Max(), 500'000'000);
  EXPECT_GT(small.Percentile(0.99), 0.0);
}

// ---- Lease lifetimes -------------------------------------------------------------

class LeaseLifetimeTest : public ::testing::TestWithParam<int64_t> {};

TEST_P(LeaseLifetimeTest, ExpirySemanticsScaleWithLifetime) {
  const Duration lifetime = Millis(GetParam());
  VirtualClock clock;
  LeaseTable::Options opts;
  opts.i_lease_lifetime = lifetime;
  opts.q_lease_lifetime = lifetime;
  opts.red_lease_lifetime = lifetime;
  LeaseTable table(&clock, opts);

  auto i = table.AcquireI("k");
  ASSERT_TRUE(i.ok());
  clock.Advance(lifetime - 1);
  EXPECT_TRUE(table.CheckI("k", *i));
  clock.Advance(2);
  EXPECT_FALSE(table.CheckI("k", *i));
  EXPECT_TRUE(table.AcquireI("k").ok());

  const LeaseToken q = table.AcquireQ("q-key");
  clock.Advance(lifetime + 1);
  EXPECT_FALSE(table.CheckQ("q-key", q));
  EXPECT_TRUE(table.ExpireKey("q-key").delete_entry);

  auto red = table.AcquireRed("list");
  clock.Advance(lifetime - 1);
  EXPECT_TRUE(table.RenewRed("list", *red));
  clock.Advance(lifetime - 1);
  EXPECT_TRUE(table.CheckRed("list", *red));
  clock.Advance(2);
  EXPECT_FALSE(table.CheckRed("list", *red));
}

// Milliseconds (the paper's IQ leases) up to minutes (fragment-lease scale).
INSTANTIATE_TEST_SUITE_P(Lifetimes, LeaseLifetimeTest,
                         ::testing::Values(1, 10, 100, 1000, 60'000));

}  // namespace
}  // namespace gemini
