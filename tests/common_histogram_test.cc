#include "src/common/histogram.h"

#include <gtest/gtest.h>

#include <vector>

namespace gemini {
namespace {

TEST(Histogram, EmptyReportsZeros) {
  Histogram h;
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
  EXPECT_EQ(h.Percentile(0.5), 0.0);
  EXPECT_EQ(h.Min(), 0);
  EXPECT_EQ(h.Max(), 0);
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.Record(100);
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.Mean(), 100.0);
  EXPECT_EQ(h.Min(), 100);
  EXPECT_EQ(h.Max(), 100);
  EXPECT_NEAR(h.Percentile(0.5), 100.0, 7.0);  // within bucket resolution
}

TEST(Histogram, MeanIsExact) {
  Histogram h;
  for (int v : {10, 20, 30, 40}) h.Record(v);
  EXPECT_DOUBLE_EQ(h.Mean(), 25.0);
}

TEST(Histogram, PercentilesOrdered) {
  Histogram h;
  for (int64_t v = 1; v <= 10000; ++v) h.Record(v);
  const double p50 = h.Percentile(0.50);
  const double p90 = h.Percentile(0.90);
  const double p99 = h.Percentile(0.99);
  EXPECT_LT(p50, p90);
  EXPECT_LT(p90, p99);
  EXPECT_NEAR(p50, 5000, 5000 * 0.08);
  EXPECT_NEAR(p90, 9000, 9000 * 0.08);
  EXPECT_NEAR(p99, 9900, 9900 * 0.08);
}

TEST(Histogram, BoundedRelativeError) {
  Histogram h;
  const int64_t value = 123456;
  for (int i = 0; i < 100; ++i) h.Record(value);
  EXPECT_NEAR(h.Percentile(0.5), double(value), value * 0.07);
}

TEST(Histogram, MergeCombinesCounts) {
  Histogram a, b;
  a.Record(10);
  a.Record(20);
  b.Record(1000);
  a.Merge(b);
  EXPECT_EQ(a.count(), 3u);
  EXPECT_EQ(a.Min(), 10);
  EXPECT_EQ(a.Max(), 1000);
  EXPECT_NEAR(a.Mean(), (10 + 20 + 1000) / 3.0, 1e-9);
}

TEST(Histogram, MergeIntoEmpty) {
  Histogram a, b;
  b.Record(50);
  a.Merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_EQ(a.Min(), 50);
}

TEST(Histogram, ResetClears) {
  Histogram h;
  h.Record(5);
  h.Reset();
  EXPECT_EQ(h.count(), 0u);
  EXPECT_EQ(h.Mean(), 0.0);
}

TEST(Histogram, ValuesAboveMaxClampToLastBucket) {
  Histogram h(/*max_value=*/1000);
  h.Record(100000000);  // far above configured max
  EXPECT_EQ(h.count(), 1u);
  EXPECT_EQ(h.Max(), 100000000);
  EXPECT_GT(h.Percentile(0.99), 0.0);
}

TEST(Histogram, PercentileClampedToObservedRange) {
  Histogram h;
  h.Record(77);
  EXPECT_GE(h.Percentile(1.0), 77.0 * 0.93);
  EXPECT_LE(h.Percentile(1.0), 77.0 * 1.07);
  EXPECT_GE(h.Percentile(0.0), h.Min());
}

TEST(Histogram, SummaryMentionsCount) {
  Histogram h;
  h.Record(10);
  EXPECT_NE(h.Summary().find("n=1"), std::string::npos);
}

}  // namespace
}  // namespace gemini
