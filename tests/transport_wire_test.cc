// Wire codec tests: primitive round trips, frame encode/decode for every
// opcode's body shape, boundary sizes (zero-length values, max-length keys),
// and rejection of truncated or hostile frames without over-reading.
#include "src/transport/wire.h"

#include <gtest/gtest.h>

#include <string>

namespace gemini {
namespace wire {
namespace {

TEST(WireReaderTest, PrimitiveRoundTrip) {
  std::string buf;
  PutU8(buf, 0xAB);
  PutU16(buf, 0xBEEF);
  PutU32(buf, 0xDEADBEEF);
  PutU64(buf, 0x0123456789ABCDEFull);
  Reader r(buf);
  uint8_t u8 = 0;
  uint16_t u16 = 0;
  uint32_t u32 = 0;
  uint64_t u64 = 0;
  ASSERT_TRUE(r.GetU8(&u8));
  ASSERT_TRUE(r.GetU16(&u16));
  ASSERT_TRUE(r.GetU32(&u32));
  ASSERT_TRUE(r.GetU64(&u64));
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u16, 0xBEEF);
  EXPECT_EQ(u32, 0xDEADBEEF);
  EXPECT_EQ(u64, 0x0123456789ABCDEFull);
  EXPECT_TRUE(r.Done());
}

TEST(WireReaderTest, LittleEndianOnTheWire) {
  std::string buf;
  PutU32(buf, 0x01020304);
  ASSERT_EQ(buf.size(), 4u);
  EXPECT_EQ(static_cast<uint8_t>(buf[0]), 0x04);
  EXPECT_EQ(static_cast<uint8_t>(buf[3]), 0x01);
}

TEST(WireReaderTest, KeyAndBlobRoundTrip) {
  std::string buf;
  PutKey(buf, "user42");
  PutBlob(buf, std::string("\x00\x01payload", 9));
  Reader r(buf);
  std::string_view key, blob;
  ASSERT_TRUE(r.GetKey(&key));
  ASSERT_TRUE(r.GetBlob(&blob));
  EXPECT_EQ(key, "user42");
  EXPECT_EQ(blob, std::string_view("\x00\x01payload", 9));
  EXPECT_TRUE(r.Done());
}

TEST(WireReaderTest, MaxLengthKey) {
  const std::string big(kMaxKeyLen, 'k');
  std::string buf;
  PutKey(buf, big);
  Reader r(buf);
  std::string_view key;
  ASSERT_TRUE(r.GetKey(&key));
  EXPECT_EQ(key.size(), kMaxKeyLen);
  EXPECT_TRUE(r.Done());
}

TEST(WireReaderTest, ZeroLengthValue) {
  // A size-only CacheValue (charged bytes, no payload) is a first-class
  // citizen of the simulator and must survive the wire unchanged.
  CacheValue in = CacheValue::OfSize(329, /*v=*/7);
  std::string buf;
  PutValue(buf, in);
  Reader r(buf);
  CacheValue out;
  ASSERT_TRUE(r.GetValue(&out));
  EXPECT_TRUE(out.data.empty());
  EXPECT_EQ(out.charged_bytes, 329u);
  EXPECT_EQ(out.version, 7u);
  EXPECT_TRUE(r.Done());
}

TEST(WireReaderTest, ValueAndContextRoundTrip) {
  CacheValue in = CacheValue::OfData("hello world", 99);
  in.charged_bytes = 4096;  // charged > data.size() is legal
  OpContext ctx{0x1122334455667788ull, 13};
  std::string buf;
  PutValue(buf, in);
  PutContext(buf, ctx);
  Reader r(buf);
  CacheValue out;
  OpContext out_ctx;
  ASSERT_TRUE(r.GetValue(&out));
  ASSERT_TRUE(r.GetContext(&out_ctx));
  EXPECT_EQ(out.data, "hello world");
  EXPECT_EQ(out.charged_bytes, 4096u);
  EXPECT_EQ(out.version, 99u);
  EXPECT_EQ(out_ctx.config_id, ctx.config_id);
  EXPECT_EQ(out_ctx.fragment, ctx.fragment);
}

TEST(WireReaderTest, TruncatedReadsFailWithoutConsuming) {
  std::string buf;
  PutU32(buf, 1000);  // blob claims 1000 bytes...
  buf += "short";     // ...but only 5 follow
  Reader r(buf);
  std::string_view blob;
  EXPECT_FALSE(r.GetBlob(&blob));
  // The reader did not over-read: the length prefix was consumed but the
  // 5 remaining bytes were not handed out as a blob.
  EXPECT_EQ(r.remaining(), 5u);

  Reader r2(std::string_view("ab"));
  uint32_t v = 0;
  EXPECT_FALSE(r2.GetU32(&v));
  EXPECT_EQ(r2.remaining(), 2u);  // nothing consumed on failure
}

// ---- Frames -----------------------------------------------------------------

TEST(WireFrameTest, EncodeDecodeRoundTrip) {
  std::string out;
  AppendRequest(out, Op::kGet, "BODY");
  ASSERT_EQ(out.size(), kFrameHeaderLen + 4);

  size_t consumed = 0;
  uint8_t tag = 0;
  std::string_view body;
  ASSERT_EQ(DecodeFrame(out, &consumed, &tag, &body), DecodeResult::kFrame);
  EXPECT_EQ(consumed, out.size());
  EXPECT_EQ(tag, static_cast<uint8_t>(Op::kGet));
  EXPECT_EQ(body, "BODY");
}

TEST(WireFrameTest, EmptyBodyFrame) {
  std::string out;
  AppendResponse(out, Code::kOk, {});
  size_t consumed = 0;
  uint8_t tag = 0;
  std::string_view body;
  ASSERT_EQ(DecodeFrame(out, &consumed, &tag, &body), DecodeResult::kFrame);
  EXPECT_EQ(tag, static_cast<uint8_t>(Code::kOk));
  EXPECT_TRUE(body.empty());
}

TEST(WireFrameTest, EveryTruncationPrefixNeedsMore) {
  // A frame cut at every possible byte boundary must yield kNeedMore —
  // never a bogus frame, never an over-read.
  std::string full;
  std::string body;
  PutContext(body, OpContext{42, 3});
  PutKey(body, "k");
  AppendRequest(full, Op::kIqGet, body);
  for (size_t cut = 0; cut < full.size(); ++cut) {
    size_t consumed = 0;
    uint8_t tag = 0;
    std::string_view decoded;
    EXPECT_EQ(DecodeFrame(std::string_view(full).substr(0, cut), &consumed,
                          &tag, &decoded),
              DecodeResult::kNeedMore)
        << "cut at " << cut;
  }
}

TEST(WireFrameTest, TruncatedWorkingSetScanFramesNeedMore) {
  // The §13 request and response shapes, cut at every byte boundary: a
  // half-received scan page must never decode as a (shorter) valid frame.
  std::string req_body;
  PutContext(req_body, OpContext{42, 3});
  PutU32(req_body, 8);                 // num_fragments
  PutU64(req_body, (2ull << 32) | 1);  // cursor
  PutU32(req_body, 128);               // max_keys
  std::string resp_body;
  PutU64(resp_body, (2ull << 32) | 4);  // next_cursor
  PutU32(resp_body, 2);                 // count
  for (const char* key : {"hot-a", "hot-b"}) {
    PutKey(resp_body, key);
    PutU32(resp_body, 64);  // charged_bytes
  }
  for (const auto& [tag_byte, body_bytes] :
       {std::pair<uint8_t, std::string*>(
            static_cast<uint8_t>(Op::kWorkingSetScan), &req_body),
        std::pair<uint8_t, std::string*>(static_cast<uint8_t>(Code::kOk),
                                         &resp_body)}) {
    std::string full;
    AppendFrame(full, tag_byte, *body_bytes);
    for (size_t cut = 0; cut < full.size(); ++cut) {
      size_t consumed = 0;
      uint8_t tag = 0;
      std::string_view decoded;
      EXPECT_EQ(DecodeFrame(std::string_view(full).substr(0, cut), &consumed,
                            &tag, &decoded),
                DecodeResult::kNeedMore)
          << "tag 0x" << std::hex << static_cast<int>(tag_byte) << " cut at "
          << std::dec << cut;
    }
    size_t consumed = 0;
    uint8_t tag = 0;
    std::string_view decoded;
    ASSERT_EQ(DecodeFrame(full, &consumed, &tag, &decoded),
              DecodeResult::kFrame);
    EXPECT_EQ(tag, tag_byte);
    EXPECT_EQ(decoded, *body_bytes);
  }
}

TEST(WireFrameTest, BackToBackFramesDecodeIndividually) {
  std::string out;
  AppendRequest(out, Op::kPing, {});
  AppendRequest(out, Op::kConfigIdGet, {});
  size_t consumed = 0;
  uint8_t tag = 0;
  std::string_view body;
  ASSERT_EQ(DecodeFrame(out, &consumed, &tag, &body), DecodeResult::kFrame);
  EXPECT_EQ(tag, static_cast<uint8_t>(Op::kPing));
  const std::string_view rest = std::string_view(out).substr(consumed);
  ASSERT_EQ(DecodeFrame(rest, &consumed, &tag, &body), DecodeResult::kFrame);
  EXPECT_EQ(tag, static_cast<uint8_t>(Op::kConfigIdGet));
  EXPECT_EQ(rest.size(), consumed);
}

TEST(WireFrameTest, OversizedAndUndersizedFramesAreMalformed) {
  std::string huge;
  PutU32(huge, kMaxFrameLen + 1);
  huge.push_back('\x01');
  size_t consumed = 0;
  uint8_t tag = 0;
  std::string_view body;
  EXPECT_EQ(DecodeFrame(huge, &consumed, &tag, &body),
            DecodeResult::kMalformed);

  std::string zero;
  PutU32(zero, 0);  // a frame must at least carry its tag byte
  EXPECT_EQ(DecodeFrame(zero, &consumed, &tag, &body),
            DecodeResult::kMalformed);
}

TEST(WireOpTest, KnownAndUnknownOpcodes) {
  EXPECT_TRUE(IsKnownOp(static_cast<uint8_t>(Op::kHello)));
  EXPECT_TRUE(IsKnownOp(static_cast<uint8_t>(Op::kSnapshot)));
  EXPECT_TRUE(IsKnownOp(static_cast<uint8_t>(Op::kWriteBackInstall)));
  EXPECT_TRUE(IsKnownOp(static_cast<uint8_t>(Op::kStats)));
  EXPECT_TRUE(IsKnownOp(static_cast<uint8_t>(Op::kLeaseGrant)));
  EXPECT_TRUE(IsKnownOp(static_cast<uint8_t>(Op::kCoordRegister)));
  EXPECT_TRUE(IsKnownOp(static_cast<uint8_t>(Op::kCoordDirtyQuery)));
  EXPECT_TRUE(IsKnownOp(static_cast<uint8_t>(Op::kCoordShadowSync)));
  EXPECT_TRUE(IsKnownOp(static_cast<uint8_t>(Op::kMultiSet)));
  EXPECT_TRUE(IsKnownOp(static_cast<uint8_t>(Op::kMultiDelete)));
  EXPECT_TRUE(IsKnownOp(static_cast<uint8_t>(Op::kWorkingSetScan)));
  EXPECT_FALSE(IsKnownOp(0x00));
  EXPECT_FALSE(IsKnownOp(0xFF));
  EXPECT_FALSE(IsKnownOp(0x3F));
  EXPECT_FALSE(IsKnownOp(0x77));          // one past the coordinator range
  EXPECT_FALSE(IsKnownOp(kPushConfigTag));  // pushes are not requests
}

TEST(WireOpTest, RetrySafetyClassification) {
  // Reads and level-triggered control ops retry; edge-triggered mutations
  // must not (docs/PROTOCOL.md §11, §12).
  EXPECT_TRUE(IsIdempotentOp(Op::kStats));
  EXPECT_TRUE(IsIdempotentOp(Op::kLeaseGrant));
  EXPECT_TRUE(IsIdempotentOp(Op::kLeaseRevoke));
  EXPECT_TRUE(IsIdempotentOp(Op::kCoordRegister));
  EXPECT_TRUE(IsIdempotentOp(Op::kCoordHeartbeat));
  EXPECT_TRUE(IsIdempotentOp(Op::kCoordConfigGet));
  EXPECT_TRUE(IsIdempotentOp(Op::kCoordConfigWatch));
  EXPECT_TRUE(IsIdempotentOp(Op::kCoordDirtyQuery));
  // The scan mutates nothing and any returned cursor is replay-safe
  // (docs/PROTOCOL.md §13): the client may auto-retry a lost page.
  EXPECT_TRUE(IsIdempotentOp(Op::kWorkingSetScan));
  // Re-applying a full-state shadow sync is a no-op (docs/PROTOCOL.md §12.7).
  EXPECT_TRUE(IsIdempotentOp(Op::kCoordShadowSync));
  EXPECT_FALSE(IsIdempotentOp(Op::kCoordReport));
  EXPECT_FALSE(IsIdempotentOp(Op::kSet));
  EXPECT_FALSE(IsIdempotentOp(Op::kIqSet));
  // Bulk writes are edge-triggered N times over: a retry could re-apply a
  // whole batch. They fail fast instead (docs/PROTOCOL.md §11).
  EXPECT_FALSE(IsIdempotentOp(Op::kMultiSet));
  EXPECT_FALSE(IsIdempotentOp(Op::kMultiDelete));
}

TEST(WireOpTest, PushTagsAreDisjointFromStatusCodes) {
  EXPECT_TRUE(IsPushTag(kPushConfigTag));
  EXPECT_TRUE(IsPushTag(0xFF));
  EXPECT_FALSE(IsPushTag(static_cast<uint8_t>(Code::kInternal)));
  EXPECT_FALSE(IsPushTag(static_cast<uint8_t>(Code::kOk)));
  // Every frozen status code sits below the push range.
  EXPECT_LT(static_cast<uint8_t>(Code::kInternal), kMinPushTag);
}

TEST(WireOpTest, StatusCodeMapping) {
  // The Code enum's numeric values are frozen by the wire protocol.
  EXPECT_EQ(CodeFromWire(static_cast<uint8_t>(Code::kBackoff)),
            Code::kBackoff);
  EXPECT_EQ(CodeFromWire(static_cast<uint8_t>(Code::kStaleConfig)),
            Code::kStaleConfig);
  EXPECT_EQ(CodeFromWire(0xEE), Code::kInternal);  // future/unknown codes
}

// Encode/decode every opcode's request-body shape, as the normative grammar
// test: if this breaks, docs/PROTOCOL.md §10 must be revised too.
// ---- Bulk op bodies (PROTOCOL.md §10.3: kMultiSet / kMultiDelete) ----------

TEST(WireBulkTest, MultiSetBodyRoundTrips) {
  const OpContext ctx{42, 7};
  std::string body;
  PutU32(body, 3);
  for (size_t i = 0; i < 3; ++i) {
    PutContext(body, ctx);
    PutKey(body, "key" + std::to_string(i));
    CacheValue v = CacheValue::OfData("value" + std::to_string(i), 10 + i);
    v.charged_bytes = static_cast<uint32_t>(100 + i);
    PutValue(body, v);
  }

  // Decode exactly as the server parses the frame: count first, then
  // count x (ctx | key | value), with nothing left over.
  Reader r(body);
  uint32_t count = 0;
  ASSERT_TRUE(r.GetU32(&count));
  ASSERT_EQ(count, 3u);
  for (size_t i = 0; i < 3; ++i) {
    OpContext got_ctx;
    std::string_view key;
    CacheValue v;
    ASSERT_TRUE(r.GetContext(&got_ctx));
    ASSERT_TRUE(r.GetKey(&key));
    ASSERT_TRUE(r.GetValue(&v));
    EXPECT_EQ(got_ctx.config_id, ctx.config_id);
    EXPECT_EQ(got_ctx.fragment, ctx.fragment);
    EXPECT_EQ(key, "key" + std::to_string(i));
    EXPECT_EQ(v.data, "value" + std::to_string(i));
    EXPECT_EQ(v.charged_bytes, 100 + i);
    EXPECT_EQ(v.version, 10 + i);
  }
  EXPECT_TRUE(r.Done());
}

TEST(WireBulkTest, MultiDeleteBodyRoundTrips) {
  const OpContext ctx{9, 1};
  std::string body;
  PutU32(body, 2);
  for (const char* key : {"gone-1", "gone-2"}) {
    PutContext(body, ctx);
    PutKey(body, key);
  }
  Reader r(body);
  uint32_t count = 0;
  ASSERT_TRUE(r.GetU32(&count));
  ASSERT_EQ(count, 2u);
  for (const char* want : {"gone-1", "gone-2"}) {
    OpContext got_ctx;
    std::string_view key;
    ASSERT_TRUE(r.GetContext(&got_ctx));
    ASSERT_TRUE(r.GetKey(&key));
    EXPECT_EQ(key, want);
  }
  EXPECT_TRUE(r.Done());
}

TEST(WireBulkTest, TruncatedBulkEntriesFailParsingWithoutOverreading) {
  const OpContext ctx{1, 0};
  std::string body;
  PutU32(body, 2);
  PutContext(body, ctx);
  PutKey(body, "only-one");
  PutValue(body, CacheValue::OfData("v", 1));
  // Count claims two entries but only one is present: the second entry's
  // parse must fail cleanly rather than read past the buffer.
  Reader r(body);
  uint32_t count = 0;
  ASSERT_TRUE(r.GetU32(&count));
  ASSERT_EQ(count, 2u);
  OpContext got_ctx;
  std::string_view key;
  CacheValue v;
  ASSERT_TRUE(r.GetContext(&got_ctx));
  ASSERT_TRUE(r.GetKey(&key));
  ASSERT_TRUE(r.GetValue(&v));
  EXPECT_FALSE(r.GetContext(&got_ctx));
  EXPECT_TRUE(r.Done());
}

TEST(WireBulkTest, OverclaimedCountIsCheaplyDetectable) {
  // The server's bounds guard: count entries need >= count * min-entry-size
  // wire bytes (30 for a set entry, 14 for a delete entry), so a hostile
  // count is rejected before any allocation sized by it.
  std::string body;
  PutU32(body, 0x40000000u);  // ~1 billion entries in a tiny frame
  Reader r(body);
  uint32_t count = 0;
  ASSERT_TRUE(r.GetU32(&count));
  EXPECT_GT(static_cast<uint64_t>(count) * 30, r.remaining());
  EXPECT_GT(static_cast<uint64_t>(count) * 14, r.remaining());
}

TEST(WireGrammarTest, EveryOpcodeBodyRoundTrips) {
  const OpContext ctx{7, 2};
  const CacheValue value = CacheValue::OfData("v", 3);

  struct Case {
    Op op;
    std::string body;
  };
  std::vector<Case> cases;
  {
    std::string b;
    PutU32(b, kProtocolVersion);
    cases.push_back({Op::kHello, b});
  }
  cases.push_back({Op::kPing, {}});
  for (Op op : {Op::kGet, Op::kDelete, Op::kIqGet, Op::kQareg, Op::kISet}) {
    std::string b;
    PutContext(b, ctx);
    PutKey(b, "key");
    cases.push_back({op, b});
  }
  {
    std::string b;
    PutContext(b, ctx);
    PutKey(b, "key");
    PutValue(b, value);
    cases.push_back({Op::kSet, b});
  }
  {
    std::string b;
    PutContext(b, ctx);
    PutKey(b, "key");
    PutU64(b, 5);
    PutValue(b, value);
    cases.push_back({Op::kCas, b});
    cases.push_back({Op::kIqSet, b});
    cases.push_back({Op::kRar, b});
    cases.push_back({Op::kWriteBackInstall, b});
  }
  {
    std::string b;
    PutContext(b, ctx);
    PutKey(b, "key");
    PutBlob(b, "record");
    cases.push_back({Op::kAppend, b});
  }
  {
    std::string b;
    PutU32(b, 2);  // count
    for (const char* key : {"bulk-a", "bulk-b"}) {
      PutContext(b, ctx);
      PutKey(b, key);
      PutValue(b, value);
    }
    cases.push_back({Op::kMultiSet, b});
  }
  {
    std::string b;
    PutU32(b, 2);  // count
    for (const char* key : {"bulk-a", "bulk-b"}) {
      PutContext(b, ctx);
      PutKey(b, key);
    }
    cases.push_back({Op::kMultiDelete, b});
  }
  for (Op op : {Op::kDar, Op::kIDelete}) {
    std::string b;
    PutContext(b, ctx);
    PutKey(b, "key");
    PutU64(b, 9);
    cases.push_back({op, b});
  }
  {
    std::string b;
    PutKey(b, "key");
    cases.push_back({Op::kRedAcquire, b});
  }
  for (Op op : {Op::kRedRelease, Op::kRedRenew}) {
    std::string b;
    PutKey(b, "key");
    PutU64(b, 11);
    cases.push_back({op, b});
  }
  {
    std::string b;
    PutU64(b, 7);
    PutU32(b, 2);
    cases.push_back({Op::kDirtyListGet, b});
    PutBlob(b, "rec");
    cases.push_back({Op::kDirtyListAppend, b});
  }
  {
    std::string b;
    PutContext(b, ctx);
    PutU32(b, 8);                   // num_fragments
    PutU64(b, (3ull << 32) | 5);    // cursor: band 3, stripe 5
    PutU32(b, 256);                 // max_keys
    cases.push_back({Op::kWorkingSetScan, b});
  }
  cases.push_back({Op::kConfigIdGet, {}});
  {
    std::string b;
    PutU64(b, 99);
    cases.push_back({Op::kConfigIdBump, b});
  }
  {
    std::string b;
    PutBlob(b, "/tmp/snap");
    cases.push_back({Op::kSnapshot, b});
  }
  cases.push_back({Op::kStats, {}});
  {
    std::string b;
    PutU32(b, 2);    // fragment
    PutU64(b, 7);    // min_valid_config
    PutU64(b, 500);  // ttl_us
    PutU64(b, 9);    // latest_config
    cases.push_back({Op::kLeaseGrant, b});
  }
  {
    std::string b;
    PutU32(b, 2);  // fragment
    PutU64(b, 9);  // latest_config
    cases.push_back({Op::kLeaseRevoke, b});
  }
  {
    std::string b;
    PutU32(b, 1);  // instance
    PutBlob(b, "127.0.0.1");
    PutU16(b, 7411);
    cases.push_back({Op::kCoordRegister, b});
  }
  {
    std::string b;
    PutU32(b, 2);  // count
    PutU32(b, 0);
    PutU32(b, 1);
    cases.push_back({Op::kCoordHeartbeat, b});
  }
  cases.push_back({Op::kCoordConfigGet, {}});
  {
    std::string b;
    PutU64(b, 4);  // known config id
    cases.push_back({Op::kCoordConfigWatch, b});
  }
  {
    std::string b;
    PutU8(b, static_cast<uint8_t>(CoordEvent::kDirtyListProcessed));
    PutU32(b, 3);  // fragment
    cases.push_back({Op::kCoordReport, b});
  }
  {
    std::string b;
    PutU32(b, 3);  // fragment
    cases.push_back({Op::kCoordDirtyQuery, b});
  }

  for (const Case& c : cases) {
    std::string out;
    AppendRequest(out, c.op, c.body);
    size_t consumed = 0;
    uint8_t tag = 0;
    std::string_view body;
    ASSERT_EQ(DecodeFrame(out, &consumed, &tag, &body), DecodeResult::kFrame)
        << "op 0x" << std::hex << static_cast<int>(c.op);
    EXPECT_EQ(consumed, out.size());
    EXPECT_TRUE(IsKnownOp(tag));
    EXPECT_EQ(tag, static_cast<uint8_t>(c.op));
    EXPECT_EQ(body, c.body);
  }
}

}  // namespace
}  // namespace wire
}  // namespace gemini
