// Sharded TransportServer tests, parameterized over {epoll, poll(2)} x
// {1 loop, 4 loops}: the poll fallback must behave identically to epoll
// with multiple event-loop shards, and num_loops = 1 must behave like the
// historical single-threaded server. Distinct sockets (TcpConnection built
// directly, bypassing the backend's connection pool) land on different
// shards round-robin; each test asserts the properties sharding must not
// weaken — per-connection FIFO, instance routing, aggregated stats — plus
// clean shutdown and restart.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "src/cache/cache_instance.h"
#include "src/common/clock.h"
#include "src/transport/instance_registry.h"
#include "src/transport/server.h"
#include "src/transport/tcp_connection.h"
#include "src/transport/wire.h"

namespace gemini {
namespace {

constexpr OpContext kCtx{kInternalConfigId, kInvalidFragment};

std::string SetBody(const std::string& key, const std::string& data) {
  std::string body;
  wire::PutContext(body, kCtx);
  wire::PutKey(body, key);
  wire::PutValue(body, CacheValue::OfData(data));
  return body;
}

std::string GetBody(const std::string& key) {
  std::string body;
  wire::PutContext(body, kCtx);
  wire::PutKey(body, key);
  return body;
}

std::string DecodeValue(const std::string& resp_body) {
  wire::Reader r(resp_body);
  CacheValue value;
  if (!r.GetValue(&value)) return "<undecodable>";
  return value.data;
}

/// (use_poll_fallback, num_loops).
class ShardedServerTest
    : public ::testing::TestWithParam<std::tuple<bool, uint32_t>> {
 protected:
  void StartServer(size_t n_instances = 1) {
    InstanceRegistry registry;
    for (size_t i = 0; i < n_instances; ++i) {
      instances_.push_back(std::make_unique<CacheInstance>(
          static_cast<InstanceId>(i + 1), &clock_));
      ASSERT_TRUE(registry.Add(instances_.back().get()).ok());
    }
    TransportServer::Options opts;
    opts.use_poll_fallback = std::get<0>(GetParam());
    opts.num_loops = std::get<1>(GetParam());
    server_ = std::make_unique<TransportServer>(std::move(registry), opts);
    ASSERT_TRUE(server_->Start().ok());
  }

  /// A fresh, un-pooled socket of its own (TcpCacheBackend would share one
  /// per endpoint+instance, defeating the round-robin shard assignment this
  /// suite exists to exercise).
  std::unique_ptr<TcpConnection> Dial(InstanceId id = 1) {
    return std::make_unique<TcpConnection>("127.0.0.1", server_->port(), id,
                                           TcpConnection::Options{});
  }

  void TearDown() override {
    connections_.clear();
    if (server_ != nullptr) server_->Stop();
  }

  SystemClock clock_;
  std::vector<std::unique_ptr<CacheInstance>> instances_;
  std::unique_ptr<TransportServer> server_;
  std::vector<std::unique_ptr<TcpConnection>> connections_;
};

TEST_P(ShardedServerTest, LoopCountMatchesOption) {
  StartServer();
  EXPECT_EQ(server_->loop_count(), std::get<1>(GetParam()));
}

TEST_P(ShardedServerTest, DistinctConnectionsServeAcrossShards) {
  StartServer();
  constexpr size_t kConns = 8;
  for (size_t i = 0; i < kConns; ++i) connections_.push_back(Dial());

  // Every connection (round-robin across shards) serves reads and writes.
  for (size_t i = 0; i < kConns; ++i) {
    const std::string key = "conn" + std::to_string(i);
    std::string resp;
    ASSERT_TRUE(
        connections_[i]->Transact(wire::Op::kSet, SetBody(key, "v" + key),
                                  &resp)
            .ok());
    ASSERT_TRUE(connections_[i]->Transact(wire::Op::kGet, GetBody(key), &resp)
                    .ok());
    EXPECT_EQ(DecodeValue(resp), "v" + key);
  }
  // All shards serve the same instance: a write through one connection is
  // visible through every other.
  std::string resp;
  ASSERT_TRUE(connections_[0]
                  ->Transact(wire::Op::kSet, SetBody("shared", "everyone"),
                             &resp)
                  .ok());
  for (size_t i = 0; i < kConns; ++i) {
    ASSERT_TRUE(
        connections_[i]->Transact(wire::Op::kGet, GetBody("shared"), &resp)
            .ok());
    EXPECT_EQ(DecodeValue(resp), "everyone");
  }

  const auto stats = server_->stats();
  EXPECT_EQ(stats.connections_accepted, kConns);
  // Each connection did a HELLO plus its request traffic.
  EXPECT_GE(stats.frames_handled, kConns * 3);
  EXPECT_EQ(stats.protocol_errors, 0u);
}

TEST_P(ShardedServerTest, PipelinedBatchKeepsPerConnectionFifo) {
  StartServer();
  connections_.push_back(Dial());

  // Alternating writes and reads of ONE key, submitted as a single
  // pipelined burst: response i must reflect exactly the writes before it
  // (docs/PROTOCOL.md §10.6 — FIFO per connection per shard). Any
  // reordering inside the server shows up as a stale or future value.
  constexpr int kRounds = 24;
  std::vector<TcpConnection::BatchRequest> reqs;
  for (int i = 0; i < kRounds; ++i) {
    reqs.push_back({wire::Op::kSet, SetBody("fifo", "v" + std::to_string(i))});
    reqs.push_back({wire::Op::kGet, GetBody("fifo")});
  }
  const auto resps = connections_[0]->TransactBatch(reqs);
  ASSERT_EQ(resps.size(), reqs.size());
  for (int i = 0; i < kRounds; ++i) {
    ASSERT_TRUE(resps[2 * i].status.ok()) << "set " << i;
    ASSERT_TRUE(resps[2 * i + 1].status.ok()) << "get " << i;
    EXPECT_EQ(DecodeValue(resps[2 * i + 1].body), "v" + std::to_string(i));
  }
}

TEST_P(ShardedServerTest, ConcurrentClientsHammerWithoutCrossTalk) {
  StartServer();
  constexpr int kClients = 6;
  constexpr int kRounds = 150;
  std::atomic<uint64_t> errors{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kClients; ++t) {
    threads.emplace_back([&, t] {
      TcpConnection conn("127.0.0.1", server_->port(), 1,
                         TcpConnection::Options{});
      for (int i = 0; i < kRounds; ++i) {
        const std::string key = "c" + std::to_string(t);
        const std::string want = "v" + std::to_string(t) + ":" +
                                 std::to_string(i);
        std::string resp;
        if (!conn.Transact(wire::Op::kSet, SetBody(key, want), &resp).ok() ||
            !conn.Transact(wire::Op::kGet, GetBody(key), &resp).ok() ||
            DecodeValue(resp) != want) {
          ++errors;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0u);

  const auto stats = server_->stats();
  EXPECT_EQ(stats.connections_accepted, static_cast<uint64_t>(kClients));
  EXPECT_GE(stats.frames_handled,
            static_cast<uint64_t>(kClients) * kRounds * 2);
  ASSERT_EQ(stats.per_instance.count(1), 1u);
  EXPECT_GE(stats.per_instance.at(1).frames_handled,
            static_cast<uint64_t>(kClients) * kRounds * 2);
}

TEST_P(ShardedServerTest, RoutesInstancesIndependentlyOfShard) {
  StartServer(/*n_instances=*/2);
  // Four sockets, alternating target instances, so shard assignment and
  // instance binding cross: the bound instance must follow the HELLO, not
  // the shard.
  for (int i = 0; i < 4; ++i) {
    connections_.push_back(Dial(static_cast<InstanceId>(1 + i % 2)));
  }
  std::string resp;
  for (int i = 0; i < 4; ++i) {
    const std::string key = "route" + std::to_string(i);
    ASSERT_TRUE(
        connections_[i]->Transact(wire::Op::kSet, SetBody(key, "x"), &resp)
            .ok());
  }
  EXPECT_TRUE(instances_[0]->ContainsRaw("route0"));
  EXPECT_TRUE(instances_[0]->ContainsRaw("route2"));
  EXPECT_FALSE(instances_[0]->ContainsRaw("route1"));
  EXPECT_TRUE(instances_[1]->ContainsRaw("route1"));
  EXPECT_TRUE(instances_[1]->ContainsRaw("route3"));
  EXPECT_FALSE(instances_[1]->ContainsRaw("route2"));

  const auto stats = server_->stats();
  ASSERT_EQ(stats.per_instance.count(1), 1u);
  ASSERT_EQ(stats.per_instance.count(2), 1u);
  EXPECT_GE(stats.per_instance.at(1).frames_handled, 2u);
  EXPECT_GE(stats.per_instance.at(2).frames_handled, 2u);
}

TEST_P(ShardedServerTest, StopDrainsAndRestartServes) {
  StartServer();
  connections_.push_back(Dial());
  std::string resp;
  ASSERT_TRUE(
      connections_[0]->Transact(wire::Op::kPing, "", &resp).ok());

  server_->Stop();
  EXPECT_FALSE(server_->running());
  // The dropped connection fails promptly instead of hanging.
  EXPECT_FALSE(
      connections_[0]->Transact(wire::Op::kPing, "", &resp).ok());
  connections_.clear();

  // The same server object restarts with a fresh set of shards (new
  // ephemeral port) and serves again.
  ASSERT_TRUE(server_->Start().ok());
  EXPECT_EQ(server_->loop_count(), std::get<1>(GetParam()));
  TcpConnection again("127.0.0.1", server_->port(), 1,
                      TcpConnection::Options{});
  EXPECT_TRUE(again.Transact(wire::Op::kPing, "", &resp).ok());
  // Counters are cumulative across Stop()/Start(): the pre-restart accept
  // plus this one (see ServerStatsAccumulateAcrossRestart for the full
  // contract).
  EXPECT_EQ(server_->stats().connections_accepted, 2u);
}

INSTANTIATE_TEST_SUITE_P(
    Pollers, ShardedServerTest,
    ::testing::Combine(::testing::Bool(), ::testing::Values(1u, 4u)),
    [](const ::testing::TestParamInfo<ShardedServerTest::ParamType>& info) {
      return std::string(std::get<0>(info.param) ? "Poll" : "Native") +
             std::to_string(std::get<1>(info.param)) + "Loops";
    });

}  // namespace
}  // namespace gemini
