#include "src/common/status.h"

#include <gtest/gtest.h>

namespace gemini {
namespace {

TEST(Status, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), Code::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(Status, CarriesCodeAndMessage) {
  Status s(Code::kBackoff, "lease held");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Code::kBackoff);
  EXPECT_EQ(s.message(), "lease held");
  EXPECT_EQ(s.ToString(), "BACKOFF: lease held");
}

TEST(Status, EqualityComparesCodeOnly) {
  EXPECT_EQ(Status(Code::kNotFound, "a"), Status(Code::kNotFound, "b"));
  EXPECT_FALSE(Status(Code::kNotFound) == Status(Code::kBackoff));
}

TEST(Status, EveryCodeHasAName) {
  for (uint8_t c = 0; c <= static_cast<uint8_t>(Code::kInternal); ++c) {
    EXPECT_NE(CodeName(static_cast<Code>(c)), "UNKNOWN");
  }
}

TEST(Result, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.code(), Code::kOk);
}

TEST(Result, HoldsError) {
  Result<int> r(Status(Code::kNotFound, "missing"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.code(), Code::kNotFound);
  EXPECT_EQ(r.status().message(), "missing");
}

TEST(Result, ConstructsFromBareCode) {
  Result<std::string> r(Code::kUnavailable);
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.code(), Code::kUnavailable);
}

TEST(Result, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "payload");
}

TEST(Result, ArrowOperator) {
  Result<std::string> r(std::string("abc"));
  EXPECT_EQ(r->size(), 3u);
}

}  // namespace
}  // namespace gemini
