// Unit tests for IQ leases and Redleases (Section 2.3, Table 2).
#include "src/lease/lease_table.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "src/common/clock.h"

namespace gemini {
namespace {

class LeaseTableTest : public ::testing::Test {
 protected:
  LeaseTableTest() : table_(&clock_) {}
  VirtualClock clock_;
  LeaseTable table_;
};

TEST_F(LeaseTableTest, GrantsILease) {
  auto t = table_.AcquireI("k");
  ASSERT_TRUE(t.ok());
  EXPECT_NE(*t, kNoLease);
  EXPECT_TRUE(table_.CheckI("k", *t));
}

TEST_F(LeaseTableTest, IIncompatibleWithI) {
  // Table 2: requested I vs existing I -> back off (thundering herd guard).
  auto t1 = table_.AcquireI("k");
  ASSERT_TRUE(t1.ok());
  auto t2 = table_.AcquireI("k");
  EXPECT_EQ(t2.code(), Code::kBackoff);
}

TEST_F(LeaseTableTest, IIncompatibleWithExistingQ) {
  // Table 2: requested I vs existing Q -> back off.
  (void)table_.AcquireQ("k");
  auto t = table_.AcquireI("k");
  EXPECT_EQ(t.code(), Code::kBackoff);
}

TEST_F(LeaseTableTest, QVoidsExistingI) {
  // Table 2: requested Q vs existing I -> void I & grant Q. The reader's
  // later insert must fail (its token is gone).
  auto i = table_.AcquireI("k");
  ASSERT_TRUE(i.ok());
  const LeaseToken q = table_.AcquireQ("k");
  EXPECT_NE(q, kNoLease);
  EXPECT_FALSE(table_.CheckI("k", *i));
  EXPECT_TRUE(table_.CheckQ("k", q));
}

TEST_F(LeaseTableTest, QCompatibleWithQ) {
  // Write-around deletes commute, so concurrent Q leases are granted.
  const LeaseToken q1 = table_.AcquireQ("k");
  const LeaseToken q2 = table_.AcquireQ("k");
  EXPECT_NE(q1, q2);
  EXPECT_TRUE(table_.CheckQ("k", q1));
  EXPECT_TRUE(table_.CheckQ("k", q2));
}

TEST_F(LeaseTableTest, DifferentKeysIndependent) {
  auto t1 = table_.AcquireI("a");
  auto t2 = table_.AcquireI("b");
  EXPECT_TRUE(t1.ok());
  EXPECT_TRUE(t2.ok());
}

TEST_F(LeaseTableTest, ReleaseIAllowsNewI) {
  auto t = table_.AcquireI("k");
  table_.ReleaseI("k", *t);
  EXPECT_FALSE(table_.CheckI("k", *t));
  EXPECT_TRUE(table_.AcquireI("k").ok());
}

TEST_F(LeaseTableTest, ReleaseIsIdempotent) {
  auto t = table_.AcquireI("k");
  table_.ReleaseI("k", *t);
  table_.ReleaseI("k", *t);  // no effect
  const LeaseToken q = table_.AcquireQ("k");
  table_.ReleaseQ("k", q);
  table_.ReleaseQ("k", q);
  EXPECT_EQ(table_.LiveKeyCount(), 0u);
}

TEST_F(LeaseTableTest, ILeaseExpires) {
  auto t = table_.AcquireI("k");
  clock_.Advance(table_.options().i_lease_lifetime + 1);
  EXPECT_FALSE(table_.CheckI("k", *t));
  // A new I lease can now be granted (old holder's insert will be ignored).
  EXPECT_TRUE(table_.AcquireI("k").ok());
}

TEST_F(LeaseTableTest, ExpiredQTriggersEntryDelete) {
  // Section 2.3: "When a Q lease times out, the instance deletes its
  // associated cache entry."
  (void)table_.AcquireQ("k");
  clock_.Advance(table_.options().q_lease_lifetime + 1);
  ExpiryAction a = table_.ExpireKey("k");
  EXPECT_TRUE(a.delete_entry);
  // Consumed: a second expiry check does not re-delete.
  EXPECT_FALSE(table_.ExpireKey("k").delete_entry);
}

TEST_F(LeaseTableTest, ReleasedQDoesNotTriggerDelete) {
  const LeaseToken q = table_.AcquireQ("k");
  table_.ReleaseQ("k", q);
  clock_.Advance(table_.options().q_lease_lifetime + 1);
  EXPECT_FALSE(table_.ExpireKey("k").delete_entry);
}

TEST_F(LeaseTableTest, KeysWithQLeasesListsOutstanding) {
  (void)table_.AcquireQ("a");
  const LeaseToken qb = table_.AcquireQ("b");
  table_.ReleaseQ("b", qb);
  auto keys = table_.KeysWithQLeases();
  ASSERT_EQ(keys.size(), 1u);
  EXPECT_EQ(keys[0], "a");
}

TEST_F(LeaseTableTest, RedleaseMutualExclusion) {
  auto r1 = table_.AcquireRed("dirty");
  ASSERT_TRUE(r1.ok());
  auto r2 = table_.AcquireRed("dirty");
  EXPECT_EQ(r2.code(), Code::kBackoff);
}

TEST_F(LeaseTableTest, RedleaseIndependentOfIQ) {
  // The paper: Redleases can never collide with I or Q leases.
  auto i = table_.AcquireI("x");
  ASSERT_TRUE(i.ok());
  auto r = table_.AcquireRed("x");
  EXPECT_TRUE(r.ok());
  const LeaseToken q = table_.AcquireQ("x");
  EXPECT_NE(q, kNoLease);
  EXPECT_TRUE(table_.CheckRed("x", *r));
}

TEST_F(LeaseTableTest, RedleaseExpiryAllowsTakeover) {
  auto r1 = table_.AcquireRed("dirty");
  clock_.Advance(table_.options().red_lease_lifetime + 1);
  EXPECT_FALSE(table_.CheckRed("dirty", *r1));
  auto r2 = table_.AcquireRed("dirty");
  EXPECT_TRUE(r2.ok());
}

TEST_F(LeaseTableTest, RedleaseRenewExtends) {
  auto r = table_.AcquireRed("dirty");
  clock_.Advance(table_.options().red_lease_lifetime - 1);
  EXPECT_TRUE(table_.RenewRed("dirty", *r));
  clock_.Advance(table_.options().red_lease_lifetime - 1);
  EXPECT_TRUE(table_.CheckRed("dirty", *r));
}

TEST_F(LeaseTableTest, RenewFailsAfterExpiry) {
  auto r = table_.AcquireRed("dirty");
  clock_.Advance(table_.options().red_lease_lifetime + 1);
  EXPECT_FALSE(table_.RenewRed("dirty", *r));
}

TEST_F(LeaseTableTest, RenewFailsAfterTakeover) {
  auto r1 = table_.AcquireRed("dirty");
  clock_.Advance(table_.options().red_lease_lifetime + 1);
  auto r2 = table_.AcquireRed("dirty");
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(table_.RenewRed("dirty", *r1));
  EXPECT_TRUE(table_.RenewRed("dirty", *r2));
}

TEST_F(LeaseTableTest, ReleaseRedFreesKey) {
  auto r = table_.AcquireRed("dirty");
  table_.ReleaseRed("dirty", *r);
  EXPECT_TRUE(table_.AcquireRed("dirty").ok());
}

TEST_F(LeaseTableTest, ClearDropsEverything) {
  (void)table_.AcquireI("a");
  (void)table_.AcquireQ("b");
  (void)table_.AcquireRed("c");
  table_.Clear();
  EXPECT_EQ(table_.LiveKeyCount(), 0u);
  EXPECT_TRUE(table_.AcquireI("a").ok());
  EXPECT_TRUE(table_.AcquireRed("c").ok());
}

TEST_F(LeaseTableTest, LiveKeyCountTracksKeys) {
  (void)table_.AcquireI("a");
  (void)table_.AcquireQ("b");
  EXPECT_EQ(table_.LiveKeyCount(), 2u);
}

TEST_F(LeaseTableTest, ConcurrentIAcquisitionGrantsExactlyOne) {
  // Thundering-herd guard under real threads: many concurrent misses on the
  // same key; exactly one session wins the I lease per round.
  SystemClock sys;
  LeaseTable table(&sys);
  constexpr int kThreads = 8;
  std::atomic<int> granted{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      auto r = table.AcquireI("hot");
      if (r.ok()) granted.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(granted.load(), 1);
}

TEST_F(LeaseTableTest, ConcurrentRedleaseGrantsExactlyOne) {
  SystemClock sys;
  LeaseTable table(&sys);
  constexpr int kThreads = 8;
  std::atomic<int> granted{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      if (table.AcquireRed("dirty").ok()) granted.fetch_add(1);
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(granted.load(), 1);
}

}  // namespace
}  // namespace gemini
