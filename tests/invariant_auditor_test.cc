// InvariantAuditor tests: each invariant fires on a hand-built violation
// and stays silent on healthy clusters driven through full lifecycles.
#include "src/consistency/invariant_auditor.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/client/gemini_client.h"
#include "src/coordinator/coordinator.h"
#include "src/recovery/recovery_worker.h"

namespace gemini {
namespace {

class InvariantAuditorTest : public ::testing::Test {
 protected:
  static constexpr size_t kInstances = 3;
  static constexpr size_t kFragments = 6;

  void Build() {
    for (size_t i = 0; i < kInstances; ++i) {
      instances_.push_back(std::make_unique<CacheInstance>(
          static_cast<InstanceId>(i), &clock_));
      raw_.push_back(instances_.back().get());
    }
    coordinator_ =
        std::make_unique<Coordinator>(&clock_, raw_, kFragments);
    auditor_ = std::make_unique<InvariantAuditor>(raw_, true);
    client_ = std::make_unique<GeminiClient>(&clock_, coordinator_.get(),
                                             raw_, &store_);
    for (int i = 0; i < 200; ++i) {
      store_.Put("user" + std::to_string(i), "v");
    }
  }

  std::vector<std::string> Universe() {
    std::vector<std::string> keys;
    for (int i = 0; i < 200; ++i) keys.push_back("user" + std::to_string(i));
    return keys;
  }

  Configuration Config() { return *coordinator_->GetConfiguration(); }

  VirtualClock clock_;
  DataStore store_;
  std::vector<std::unique_ptr<CacheInstance>> instances_;
  std::vector<CacheInstance*> raw_;
  std::unique_ptr<Coordinator> coordinator_;
  std::unique_ptr<InvariantAuditor> auditor_;
  std::unique_ptr<GeminiClient> client_;
  Session session_;
};

TEST_F(InvariantAuditorTest, FreshClusterIsClean) {
  Build();
  EXPECT_TRUE(auditor_->Clean(Config(), Universe()));
}

TEST_F(InvariantAuditorTest, CleanThroughFullLifecycle) {
  Build();
  for (int i = 0; i < 50; ++i) {
    (void)client_->Read(session_, "user" + std::to_string(i));
  }
  EXPECT_TRUE(auditor_->Clean(Config(), Universe()));

  coordinator_->OnInstanceFailed(0);
  for (int i = 0; i < 50; ++i) {
    (void)client_->Write(session_, "user" + std::to_string(i));
  }
  EXPECT_TRUE(auditor_->Clean(Config(), Universe()));

  coordinator_->OnInstanceRecovered(0);
  EXPECT_TRUE(auditor_->Clean(Config(), Universe()));

  RecoveryWorker worker(&clock_, coordinator_.get(), raw_);
  Session s;
  for (int guard = 0; guard < 10000; ++guard) {
    if (!worker.has_work() && !worker.TryAdoptFragment(s).has_value()) break;
    (void)worker.Step(s);
  }
  EXPECT_TRUE(auditor_->Clean(Config(), Universe()));
}

TEST_F(InvariantAuditorTest, I1FlagsMalformedAssignments) {
  Build();
  // Hand-build a configuration with a normal-mode secondary.
  std::vector<FragmentAssignment> frags(1);
  frags[0] = {0, 1, 1, FragmentMode::kNormal};
  auto v = auditor_->Audit(Configuration(1, std::move(frags)));
  ASSERT_FALSE(v.empty());
  EXPECT_EQ(v[0].invariant, "I1");

  std::vector<FragmentAssignment> frags2(1);
  frags2[0] = {0, kInvalidInstance, 1, FragmentMode::kTransient};
  v = auditor_->Audit(Configuration(1, std::move(frags2)));
  ASSERT_FALSE(v.empty());
  EXPECT_EQ(v[0].invariant, "I1");

  std::vector<FragmentAssignment> frags3(1);
  frags3[0] = {2, 2, 1, FragmentMode::kRecovery};
  v = auditor_->Audit(Configuration(1, std::move(frags3)));
  ASSERT_FALSE(v.empty());
  EXPECT_EQ(v[0].invariant, "I1");
}

TEST_F(InvariantAuditorTest, I2FlagsStragglerLeases) {
  Build();
  // Instance 2 illegitimately acquires a lease on fragment 0 (primary 0).
  raw_[2]->GrantFragmentLease(0, 1, clock_.Now() + Seconds(3600), 1);
  auto v = auditor_->Audit(Config());
  ASSERT_FALSE(v.empty());
  EXPECT_EQ(v[0].invariant, "I2");
  EXPECT_NE(v[0].detail.find("instance 2"), std::string::npos);
}

TEST_F(InvariantAuditorTest, I4FlagsFutureConfigIds) {
  Build();
  std::vector<FragmentAssignment> frags(1);
  frags[0] = {0, kInvalidInstance, 99, FragmentMode::kNormal};
  auto v = auditor_->Audit(Configuration(5, std::move(frags)));
  ASSERT_FALSE(v.empty());
  EXPECT_EQ(v[0].invariant, "I4");
}

TEST_F(InvariantAuditorTest, I5FlagsUnderScopedLeases) {
  Build();
  // Write an entry under config 1, then hand the instance a lease whose
  // min-valid is BELOW the fragment's published id: the entry would be
  // served even though the configuration considers it discarded.
  const std::string key = [&] {
    auto cfg = coordinator_->GetConfiguration();
    for (int i = 0; i < 200; ++i) {
      std::string k = "user" + std::to_string(i);
      if (cfg->fragment(cfg->FragmentOf(k)).primary == 0) return k;
    }
    return std::string();
  }();
  ASSERT_FALSE(key.empty());
  (void)client_->Read(session_, key);  // entry stamped with id 1

  const FragmentId f = Config().FragmentOf(key);
  std::vector<FragmentAssignment> frags(kFragments);
  for (FragmentId i = 0; i < kFragments; ++i) {
    frags[i] = Config().fragment(i);
  }
  frags[f].config_id = 7;  // the configuration says: discard old entries
  Configuration doctored(7, std::move(frags));
  // But the instance's lease still allows id >= 1.
  auto v = auditor_->Audit(doctored, {key});
  ASSERT_FALSE(v.empty());
  for (const auto& violation : v) {
    EXPECT_EQ(violation.invariant, "I5");
  }
}

TEST_F(InvariantAuditorTest, CleanAcrossCascadedFailures) {
  Build();
  for (int i = 0; i < 100; ++i) {
    (void)client_->Read(session_, "user" + std::to_string(i));
  }
  coordinator_->OnInstanceFailed(0);
  EXPECT_TRUE(auditor_->Clean(Config(), Universe()));
  // Fail the secondary host of fragment 0 too.
  const InstanceId sec = Config().fragment(0).secondary;
  coordinator_->OnInstanceFailed(sec);
  EXPECT_TRUE(auditor_->Clean(Config(), Universe()));
  coordinator_->OnInstanceRecovered(0);
  coordinator_->OnInstanceRecovered(sec);
  EXPECT_TRUE(auditor_->Clean(Config(), Universe()));
}

}  // namespace
}  // namespace gemini
