// End-to-end discrete-event simulations: small-scale versions of the
// paper's experiments, asserting the qualitative results each figure makes.
#include "src/sim/cluster_sim.h"

#include <gtest/gtest.h>

#include <memory>

#include "src/workload/ycsb.h"

namespace gemini {
namespace {

SimOptions SmallCluster(RecoveryPolicy policy) {
  SimOptions o;
  o.num_instances = 4;
  o.num_fragments = 64;
  o.num_client_objects = 2;
  o.closed_loop_threads = 8;
  o.num_recovery_workers = 2;
  o.policy = policy;
  o.seed = 7;
  return o;
}

std::shared_ptr<Workload> SmallYcsb(double update_fraction = 0.05) {
  YcsbWorkload::Options o;
  o.num_records = 2000;
  o.update_fraction = update_fraction;
  return std::make_shared<YcsbWorkload>(o);
}

TEST(SimIntegration, SteadyStateReachesHighHitRatio) {
  ClusterSim sim(SmallCluster(RecoveryPolicy::GeminiOW()), SmallYcsb());
  sim.Run(Seconds(20));
  const double hit = sim.metrics().overall_hit.RatioBetween(15, 20);
  EXPECT_GT(hit, 0.9);
  EXPECT_EQ(sim.metrics().stale.total_stale(), 0u);
  EXPECT_GT(sim.metrics().ops.Total(), 10000u);
}

TEST(SimIntegration, GeminiRecoversWithZeroStaleReads) {
  ClusterSim sim(SmallCluster(RecoveryPolicy::GeminiOW()), SmallYcsb(0.10));
  sim.ScheduleFailure(0, Seconds(10), Seconds(5));
  sim.Run(Seconds(40));
  EXPECT_EQ(sim.metrics().stale.total_stale(), 0u);
  // Recovery completed: all fragments back to normal.
  EXPECT_GE(sim.RecoveryDurationSeconds(0), 0.0);
  EXPECT_TRUE(
      sim.coordinator().FragmentsInMode(FragmentMode::kRecovery).empty());
  EXPECT_TRUE(
      sim.coordinator().FragmentsInMode(FragmentMode::kTransient).empty());
}

TEST(SimIntegration, StaleCacheServesStaleReads) {
  // Figure 1: reusing content verbatim violates read-after-write.
  ClusterSim sim(SmallCluster(RecoveryPolicy::StaleCache()), SmallYcsb(0.10));
  sim.ScheduleFailure(0, Seconds(10), Seconds(5));
  sim.Run(Seconds(30));
  EXPECT_GT(sim.metrics().stale.total_stale(), 0u);
}

TEST(SimIntegration, VolatileCacheConsistentButSlowerToWarm) {
  ClusterSim gemini_sim(SmallCluster(RecoveryPolicy::GeminiO()),
                        SmallYcsb(0.05));
  ClusterSim volatile_sim(SmallCluster(RecoveryPolicy::VolatileCache()),
                          SmallYcsb(0.05));
  for (auto* sim : {&gemini_sim, &volatile_sim}) {
    sim->ScheduleFailure(0, Seconds(10), Seconds(5));
    sim->Run(Seconds(60));
    EXPECT_EQ(sim->metrics().stale.total_stale(), 0u);
  }
  // Gemini restores the instance's hit ratio faster than VolatileCache
  // (the paper's headline: two orders of magnitude at scale).
  const double g = gemini_sim.SecondsToRestoreHitRatio(0);
  const double v = volatile_sim.SecondsToRestoreHitRatio(0);
  ASSERT_GE(g, 0.0);
  // VolatileCache either took longer or never restored within the run.
  if (v >= 0.0) {
    EXPECT_LE(g, v);
  }
  // Immediately after recovery Gemini's instance serves hits from its
  // persistent content while VolatileCache starts cold.
  const double g_hit = gemini_sim.metrics().InstanceHitBetween(0, 15, 18);
  const double v_hit = volatile_sim.metrics().InstanceHitBetween(0, 15, 18);
  EXPECT_GT(g_hit, v_hit);
}

TEST(SimIntegration, TransientModeRoutesToSecondaries) {
  ClusterSim sim(SmallCluster(RecoveryPolicy::GeminiO()), SmallYcsb());
  sim.ScheduleFailure(0, Seconds(10), Seconds(10));
  sim.Run(Seconds(15));
  // Mid-failure: the failed instance serves nothing.
  const auto& hit = sim.metrics().instance_hit[0];
  const auto& den = hit.denominator().buckets();
  for (size_t s = 12; s < 15 && s < den.size(); ++s) {
    EXPECT_EQ(den[s], 0u) << "second " << s;
  }
  // Ops keep completing against the secondaries.
  EXPECT_GT(sim.metrics().ops.At(Seconds(13)), 100u);
  sim.Run(Seconds(40));
  EXPECT_EQ(sim.metrics().stale.total_stale(), 0u);
}

TEST(SimIntegration, SuspendedWritesResumeAfterPublication) {
  // Crash failures with a detection delay exercise the failover window.
  SimOptions o = SmallCluster(RecoveryPolicy::GeminiO());
  o.crash_failures = true;
  o.failure_detection_delay = Millis(500);
  ClusterSim sim(o, SmallYcsb(0.5));  // write-heavy: hits the window often
  sim.ScheduleFailure(0, Seconds(10), Seconds(5));
  sim.Run(Seconds(30));
  EXPECT_GT(sim.metrics().suspended_writes.Total(), 0u);
  EXPECT_EQ(sim.metrics().stale.total_stale(), 0u);
  EXPECT_TRUE(
      sim.coordinator().FragmentsInMode(FragmentMode::kTransient).empty());
}

TEST(SimIntegration, EvolvingPatternWstImprovesHitRatio) {
  // Section 5.4.4: with a 100% pattern change, Gemini-I+W restores hit
  // ratio faster than Gemini-I because the new working set lives in the
  // secondaries.
  auto make = [](RecoveryPolicy policy) {
    YcsbWorkload::Options wo;
    // A working set large relative to the data store's refill bandwidth:
    // the transfer's advantage is fetching the new working set from the
    // fast secondaries instead of the slow store.
    wo.num_records = 20000;
    wo.update_fraction = 0.05;
    wo.evolution = YcsbWorkload::Evolution::kSwitch100;
    SimOptions so = SmallCluster(policy);
    so.closed_loop_threads = 16;
    so.net.store_servers = 4;
    return std::make_unique<ClusterSim>(so,
                                        std::make_shared<YcsbWorkload>(wo));
  };
  auto with_wst = make(RecoveryPolicy::GeminiIW());
  auto without = make(RecoveryPolicy::GeminiI());
  for (auto* sim : {with_wst.get(), without.get()}) {
    sim->ScheduleFailure(0, Seconds(12), Seconds(10));
    sim->SchedulePhaseChange(Seconds(12), 1);
    sim->Run(Seconds(30));
  }
  // In the seconds right after recovery (t=22..27) the WST variant serves a
  // higher hit ratio on the recovering instance.
  const double w = with_wst->metrics().InstanceHitBetween(0, 22, 27);
  const double wo_hit = without->metrics().InstanceHitBetween(0, 22, 27);
  EXPECT_GT(w, wo_hit);
  uint64_t copies = 0;
  for (size_t c = 0; c < with_wst->num_clients(); ++c) {
    copies += with_wst->client(c).stats().wst_copies;
  }
  EXPECT_GT(copies, 0u);
  EXPECT_EQ(with_wst->metrics().stale.total_stale(), 0u);
  EXPECT_EQ(without->metrics().stale.total_stale(), 0u);
}

TEST(SimIntegration, OpenLoopFacebookStyleDrive) {
  // Open-loop arrivals (the Figure 1/6 drive mode) with a YCSB universe.
  class OpenLoopYcsb : public YcsbWorkload {
   public:
    using YcsbWorkload::YcsbWorkload;
    Duration NextInterarrival(Rng& rng) override {
      return std::max<Duration>(
          1, static_cast<Duration>(rng.NextExponential(200.0)));
    }
  };
  YcsbWorkload::Options wo;
  wo.num_records = 2000;
  SimOptions so = SmallCluster(RecoveryPolicy::GeminiOW());
  so.closed_loop_threads = 0;  // open loop
  ClusterSim sim(so, std::make_shared<OpenLoopYcsb>(wo));
  sim.Run(Seconds(10));
  // ~5000 arrivals/sec.
  EXPECT_GT(sim.metrics().ops.At(Seconds(8)), 3000u);
  EXPECT_LT(sim.metrics().ops.At(Seconds(8)), 8000u);
}

TEST(SimIntegration, HighLoadRaisesLatency) {
  SimOptions low = SmallCluster(RecoveryPolicy::GeminiO());
  low.closed_loop_threads = 4;
  SimOptions high = SmallCluster(RecoveryPolicy::GeminiO());
  high.closed_loop_threads = 64;
  ClusterSim low_sim(low, SmallYcsb());
  ClusterSim high_sim(high, SmallYcsb());
  low_sim.Run(Seconds(10));
  high_sim.Run(Seconds(10));
  const double low_p90 = low_sim.metrics().read_latency.Percentiles(0.9).back();
  const double high_p90 =
      high_sim.metrics().read_latency.Percentiles(0.9).back();
  EXPECT_GT(high_p90, low_p90);
  // Throughput scales with threads until capacity.
  EXPECT_GT(high_sim.metrics().ops.At(Seconds(9)),
            low_sim.metrics().ops.At(Seconds(9)));
}

TEST(SimIntegration, CoordinatorFailoverMidInstanceFailure) {
  // The coordinator master dies while an instance failure is in flight; a
  // shadow promotion restores progress with zero stale reads (Section 2.1).
  SimOptions o = SmallCluster(RecoveryPolicy::GeminiO());
  o.coordinator_shadows = 2;
  ClusterSim sim(o, SmallYcsb(0.10));
  sim.ScheduleFailure(0, Seconds(10), Seconds(8));
  sim.ScheduleCoordinatorFailure(Seconds(12), Seconds(4));
  sim.Run(Seconds(40));
  EXPECT_EQ(sim.metrics().stale.total_stale(), 0u);
  EXPECT_TRUE(sim.coordinator().master_available());
  EXPECT_TRUE(
      sim.coordinator().FragmentsInMode(FragmentMode::kRecovery).empty());
  EXPECT_TRUE(
      sim.coordinator().FragmentsInMode(FragmentMode::kTransient).empty());
  EXPECT_GT(sim.metrics().ops.At(Seconds(38)), 1000u);
}

TEST(SimIntegration, DeterministicForSameSeed) {
  auto run = [] {
    ClusterSim sim(SmallCluster(RecoveryPolicy::GeminiOW()), SmallYcsb());
    sim.ScheduleFailure(0, Seconds(5), Seconds(3));
    sim.Run(Seconds(15));
    return sim.metrics().ops.Total();
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace gemini
