// Fault-injection tests for the TCP transport: a FaultProxy between
// TcpCacheBackend and TransportServer executes seeded, deterministic fault
// schedules — delays, mid-frame stalls, cuts, truncation, resets at accept,
// hold/release bursts, throttling — and the client side must hold up its end
// of docs/PROTOCOL.md §11: retry idempotent ops transparently within the
// policy budget, fail non-idempotent ops fast, trip the circuit breaker on a
// dead endpoint so GeminiClient degrades to data-store reads, and never hang
// past the configured timeouts. The capstone runs the full
// failover → transient → recovery → normal cycle from
// transport_multi_instance_test through an adversarial schedule (seeded via
// GEMINI_FAULT_SEED, echoed so a failure replays) with zero stale reads.
#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "src/cache/cache_instance.h"
#include "src/client/gemini_client.h"
#include "src/common/clock.h"
#include "src/coordinator/coordinator.h"
#include "src/recovery/recovery_worker.h"
#include "src/store/data_store.h"
#include "src/transport/fault_proxy.h"
#include "src/transport/instance_registry.h"
#include "src/transport/server.h"
#include "src/transport/tcp_backend.h"
#include "src/transport/wire.h"

namespace gemini {
namespace {

constexpr OpContext kInternalCtx{kInternalConfigId, kInvalidFragment};

Timestamp Mono() { return SystemClock::Global().Now(); }

void SleepFor(Duration d) {
  std::this_thread::sleep_for(std::chrono::microseconds(d));
}

/// Chaos seed: from GEMINI_FAULT_SEED when set (the CI chaos-smoke job
/// exports a random one per run), default 1. Echoed so a red run can be
/// replayed bit-identically.
uint64_t ChaosSeed() {
  uint64_t seed = 1;
  if (const char* env = std::getenv("GEMINI_FAULT_SEED");
      env != nullptr && *env != '\0') {
    seed = std::strtoull(env, nullptr, 10);
  }
  std::printf("[ chaos    ] GEMINI_FAULT_SEED=%llu\n",
              static_cast<unsigned long long>(seed));
  return seed;
}

/// Polls `cond` (a cheap lambda) until true or `budget` elapses.
template <typename F>
bool WaitFor(F cond, Duration budget = Seconds(5)) {
  const Timestamp start = Mono();
  while (!cond()) {
    if (Mono() - start > budget) return false;
    SleepFor(Millis(2));
  }
  return true;
}

// ---- Raw-socket helpers (v1 client, slowloris) ------------------------------

int RawConnect(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  ::inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  timeval tv{5, 0};
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  return fd;
}

bool SendAll(int fd, const std::string& bytes) {
  return ::send(fd, bytes.data(), bytes.size(), MSG_NOSIGNAL) ==
         static_cast<ssize_t>(bytes.size());
}

/// Reads one frame (blocking, 5 s cap); false on EOF/timeout/garbage.
bool ReadFrame(int fd, uint8_t* tag, std::string* body) {
  std::string buf;
  char chunk[512];
  for (;;) {
    size_t consumed = 0;
    std::string_view body_view;
    switch (wire::DecodeFrame(buf, &consumed, tag, &body_view)) {
      case wire::DecodeResult::kFrame:
        body->assign(body_view);
        return true;
      case wire::DecodeResult::kMalformed:
        return false;
      case wire::DecodeResult::kNeedMore:
        break;
    }
    const ssize_t n = ::recv(fd, chunk, sizeof(chunk), 0);
    if (n < 0 && errno == EINTR) continue;  // in-process io_uring kicks
    if (n <= 0) return false;
    buf.append(chunk, static_cast<size_t>(n));
  }
}

// ---- Schedule determinism ---------------------------------------------------

FaultProxy::Options BusyOptions(uint64_t seed) {
  FaultProxy::Options o;
  o.seed = seed;
  o.reset_on_accept_prob = 0.3;
  for (FaultProxy::DirectionProfile* p :
       {&o.client_to_server, &o.server_to_client}) {
    p->skip_frames = 1;
    p->delay_prob = 0.3;
    p->delay_min = Millis(1);
    p->delay_max = Millis(4);
    p->stall_prob = 0.2;
    p->cut_prob = 0.1;
    p->truncate_prob = 0.1;
    p->hold_every = 7;
    p->hold_count = 2;
  }
  return o;
}

TEST(FaultSchedule, SameSeedSameScheduleDifferentSeedDiffers) {
  // PlanFor is a pure function of (seed, conn, direction, frame): two
  // proxies built from identical options must agree on every decision, and
  // a different seed must disagree somewhere.
  FaultProxy a("127.0.0.1", 1, BusyOptions(42));
  FaultProxy b("127.0.0.1", 1, BusyOptions(42));
  FaultProxy c("127.0.0.1", 1, BusyOptions(43));
  bool any_fault = false, any_difference = false;
  for (uint64_t conn = 0; conn < 6; ++conn) {
    EXPECT_EQ(a.ResetOnAccept(conn), b.ResetOnAccept(conn));
    for (auto dir : {FaultProxy::Direction::kClientToServer,
                     FaultProxy::Direction::kServerToClient}) {
      for (uint64_t frame = 0; frame < 100; ++frame) {
        const auto pa = a.PlanFor(conn, dir, frame);
        const auto pb = b.PlanFor(conn, dir, frame);
        const auto pc = c.PlanFor(conn, dir, frame);
        EXPECT_EQ(pa.kind, pb.kind);
        EXPECT_EQ(pa.delay, pb.delay);
        EXPECT_EQ(pa.split, pb.split);
        if (frame < 1) {
          // skip_frames: the handshake frame is never faulted.
          EXPECT_EQ(pa.kind, FaultProxy::FaultKind::kNone);
        }
        if (pa.kind != FaultProxy::FaultKind::kNone) any_fault = true;
        if (pa.kind != pc.kind || pa.delay != pc.delay) any_difference = true;
      }
    }
  }
  EXPECT_TRUE(any_fault);
  EXPECT_TRUE(any_difference);
}

// ---- One instance behind a proxy --------------------------------------------

class FaultProxyTest : public ::testing::Test {
 protected:
  void Start(FaultProxy::Options popts,
             TransportServer::Options sopts = TransportServer::Options{}) {
    instance_ = std::make_unique<CacheInstance>(0, &clock_);
    server_ = std::make_unique<TransportServer>(instance_.get(), sopts);
    ASSERT_TRUE(server_->Start().ok());
    proxy_ = std::make_unique<FaultProxy>("127.0.0.1", server_->port(),
                                          popts);
    ASSERT_TRUE(proxy_->Start().ok());
  }

  /// A backend dialing the proxy (not the server). One per test: the
  /// connection pool shares by (host, port, instance), so a second backend
  /// with different options would silently reuse the first one's.
  std::unique_ptr<TcpCacheBackend> Backend(
      TcpCacheBackend::Options copts = TcpCacheBackend::Options{}) {
    return std::make_unique<TcpCacheBackend>(
        "127.0.0.1", proxy_->port(), wire::kAnyInstance, copts);
  }

  void TearDown() override {
    if (proxy_ != nullptr) proxy_->Stop();
    if (server_ != nullptr) server_->Stop();
  }

  VirtualClock clock_;
  std::unique_ptr<CacheInstance> instance_;
  std::unique_ptr<TransportServer> server_;
  std::unique_ptr<FaultProxy> proxy_;
};

TEST_F(FaultProxyTest, CleanPassThrough) {
  Start(FaultProxy::Options{});  // no faults configured
  auto backend = Backend();
  ASSERT_TRUE(backend->Connect().ok());
  ASSERT_TRUE(backend->Ping().ok());
  ASSERT_TRUE(
      backend->Set(kInternalCtx, "k", CacheValue::OfData("v")).ok());
  auto got = backend->Get(kInternalCtx, "k");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->data, "v");
  EXPECT_TRUE(instance_->ContainsRaw("k"));

  // The relay counts a frame after forwarding it, so the last response can
  // reach the client a beat before the counter moves — poll briefly.
  EXPECT_TRUE(
      WaitFor([&] { return proxy_->stats().frames_forwarded >= 8; }));
  const FaultProxy::Stats stats = proxy_->stats();
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_GT(stats.bytes_forwarded, 0u);
  EXPECT_EQ(stats.delays + stats.stalls + stats.cuts + stats.truncations +
                stats.holds,
            0u);
}

TEST_F(FaultProxyTest, DelaysSlowTrafficButEverythingCompletes) {
  FaultProxy::Options popts;
  popts.seed = 7;
  for (auto* p : {&popts.client_to_server, &popts.server_to_client}) {
    p->delay_prob = 1.0;
    p->delay_min = 0;
    p->delay_max = Millis(2);
  }
  Start(popts);
  auto backend = Backend();
  ASSERT_TRUE(backend->Connect().ok());
  for (int i = 0; i < 20; ++i) ASSERT_TRUE(backend->Ping().ok());
  ASSERT_TRUE(
      backend->Set(kInternalCtx, "slow", CacheValue::OfData("x")).ok());
  auto got = backend->Get(kInternalCtx, "slow");
  ASSERT_TRUE(got.ok());
  EXPECT_GT(proxy_->stats().delays, 0u);
}

TEST_F(FaultProxyTest, HoldBurstsAndThrottleStillDeliver) {
  FaultProxy::Options popts;
  popts.seed = 11;
  popts.server_to_client.skip_frames = 1;
  popts.server_to_client.hold_every = 3;
  popts.server_to_client.hold_count = 1;
  popts.server_to_client.throttle_bytes_per_sec = 64 * 1024;
  Start(popts);
  auto backend = Backend();
  ASSERT_TRUE(backend->Connect().ok());
  ASSERT_TRUE(
      backend->Set(kInternalCtx, "h", CacheValue::OfData("held")).ok());
  for (int i = 0; i < 10; ++i) ASSERT_TRUE(backend->Ping().ok());
  auto got = backend->Get(kInternalCtx, "h");
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(got->data, "held");
  EXPECT_GE(proxy_->stats().holds, 1u);
}

TEST_F(FaultProxyTest, MidFrameCutOnIdempotentOpIsRetriedTransparently) {
  // Response frames: 0 = HELLO (passes: skip 2), 1 = Set (passes),
  // 2 = Get → cut mid-frame. The retry redials; on the new connection the
  // Get response is frame 1, which passes. The caller never sees the fault.
  FaultProxy::Options popts;
  popts.seed = 3;
  popts.server_to_client.skip_frames = 2;
  popts.server_to_client.cut_prob = 1.0;
  Start(popts);

  TcpCacheBackend::Options copts;
  copts.retry.max_attempts = 3;
  copts.retry.initial_backoff = Millis(1);
  copts.retry.max_backoff = Millis(5);
  auto backend = Backend(copts);
  ASSERT_TRUE(backend->Connect().ok());
  ASSERT_TRUE(
      backend->Set(kInternalCtx, "k", CacheValue::OfData("v")).ok());

  auto got = backend->Get(kInternalCtx, "k");
  ASSERT_TRUE(got.ok()) << got.status().ToString();
  EXPECT_EQ(got->data, "v");

  EXPECT_TRUE(WaitFor([&] { return proxy_->stats().cuts >= 1; }));
  EXPECT_EQ(proxy_->stats().connections_accepted, 2u);  // original + redial
}

TEST_F(FaultProxyTest, MultiGetRebatchesOnlyTheUnavailableSlots) {
  // skip 3 lets HELLO + two frames through per connection, then cuts.
  // Connection 0 carries HELLO + 2 Sets; the 4-key MultiGet burst then dies
  // on its first response. Retry connection 1 delivers 2 of the 4 before
  // the cut; the final rebatch of the 2 failed slots fits under the skip
  // window and completes. All four slots must come back ok.
  FaultProxy::Options popts;
  popts.seed = 5;
  popts.server_to_client.skip_frames = 3;
  popts.server_to_client.cut_prob = 1.0;
  Start(popts);

  TcpCacheBackend::Options copts;
  copts.retry.max_attempts = 3;
  copts.retry.initial_backoff = Millis(1);
  copts.retry.max_backoff = Millis(5);
  auto backend = Backend(copts);
  ASSERT_TRUE(backend->Connect().ok());
  ASSERT_TRUE(
      backend->Set(kInternalCtx, "m0", CacheValue::OfData("v0")).ok());
  ASSERT_TRUE(
      backend->Set(kInternalCtx, "m1", CacheValue::OfData("v1")).ok());

  std::vector<GetRequest> reqs;
  for (int i = 0; i < 4; ++i) {
    reqs.push_back({kInternalCtx, "m" + std::to_string(i % 2)});
  }
  auto out = backend->MultiGet(reqs);
  ASSERT_EQ(out.size(), 4u);
  for (size_t i = 0; i < out.size(); ++i) {
    ASSERT_TRUE(out[i].ok()) << "slot " << i << ": "
                             << out[i].status().ToString();
    EXPECT_EQ(out[i]->data, "v" + std::to_string(i % 2));
  }
  EXPECT_TRUE(WaitFor([&] { return proxy_->stats().cuts >= 2; }));
}

TEST_F(FaultProxyTest, TruncationWithoutRetryFailsWithUnavailable) {
  FaultProxy::Options popts;
  popts.seed = 9;
  popts.server_to_client.skip_frames = 1;
  popts.server_to_client.truncate_prob = 1.0;
  Start(popts);
  auto backend = Backend();  // default options: retry disabled
  ASSERT_TRUE(backend->Connect().ok());
  auto got = backend->Get(kInternalCtx, "whatever");
  EXPECT_EQ(got.status().code(), Code::kUnavailable);
  EXPECT_FALSE(backend->connected());
  EXPECT_TRUE(WaitFor([&] { return proxy_->stats().truncations >= 1; }));
}

TEST_F(FaultProxyTest, NonIdempotentOpsFailFastEvenWithRetryEnabled) {
  // Every post-handshake response is cut, so each attempt costs exactly one
  // connection and one cut. A Set (lease-bearing, not idempotent) must stop
  // after 1 attempt; a Get under the same policy burns all 3.
  FaultProxy::Options popts;
  popts.seed = 13;
  popts.server_to_client.skip_frames = 1;
  popts.server_to_client.cut_prob = 1.0;
  Start(popts);

  TcpCacheBackend::Options copts;
  copts.retry.max_attempts = 3;
  copts.retry.initial_backoff = Millis(1);
  copts.retry.max_backoff = Millis(5);
  auto backend = Backend(copts);
  ASSERT_TRUE(backend->Connect().ok());

  Status set = backend->Set(kInternalCtx, "k", CacheValue::OfData("v"));
  EXPECT_EQ(set.code(), Code::kUnavailable);
  ASSERT_TRUE(WaitFor([&] { return proxy_->stats().cuts >= 1; }));
  EXPECT_EQ(proxy_->stats().cuts, 1u);
  EXPECT_EQ(proxy_->stats().connections_accepted, 1u);

  auto got = backend->Get(kInternalCtx, "k");
  EXPECT_EQ(got.status().code(), Code::kUnavailable);
  ASSERT_TRUE(WaitFor([&] { return proxy_->stats().cuts >= 4; }));
  EXPECT_EQ(proxy_->stats().cuts, 4u);  // 3 Get attempts + the Set
  EXPECT_EQ(proxy_->stats().connections_accepted, 4u);
}

TEST_F(FaultProxyTest, MidBulkRequestCutFailsEverySlotWithNothingApplied) {
  // A kMultiSet request frame severed mid-flight: the server never sees a
  // complete frame, so it applies NOTHING, and the client fails every slot
  // kUnavailable. Bulk writes are non-idempotent (PROTOCOL.md §11) and never
  // retried, so the batch costs exactly one connection and one cut.
  FaultProxy::Options popts;
  popts.seed = 21;
  popts.client_to_server.skip_frames = 1;  // HELLO passes untouched
  popts.client_to_server.cut_prob = 1.0;
  Start(popts);

  TcpCacheBackend::Options copts;
  copts.retry.max_attempts = 3;  // enabled — must not apply to bulk writes
  copts.retry.initial_backoff = Millis(1);
  copts.retry.max_backoff = Millis(5);
  auto backend = Backend(copts);
  ASSERT_TRUE(backend->Connect().ok());

  std::vector<SetRequest> reqs;
  for (int i = 0; i < 8; ++i) {
    reqs.push_back({kInternalCtx, "bulk" + std::to_string(i),
                    CacheValue::OfData("v" + std::to_string(i))});
  }
  auto out = backend->MultiSet(std::move(reqs));
  ASSERT_EQ(out.size(), 8u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].code(), Code::kUnavailable) << "slot " << i;
  }
  // Zero partial application: the cut frame was discarded whole.
  for (int i = 0; i < 8; ++i) {
    EXPECT_FALSE(instance_->ContainsRaw("bulk" + std::to_string(i)));
  }
  EXPECT_TRUE(WaitFor([&] { return proxy_->stats().cuts >= 1; }));
  EXPECT_EQ(proxy_->stats().cuts, 1u);
  EXPECT_EQ(proxy_->stats().connections_accepted, 1u);
}

TEST_F(FaultProxyTest, MidBulkResponseCutFailsEverySlotWithoutRetry) {
  // The batch reaches the server — the deletes apply — but the single bulk
  // response dies mid-frame. Every slot reports kUnavailable (never a mix
  // of ok and failed statuses), and with the writes possibly applied the
  // client must NOT retry: a fail-fast kUnavailable on all N slots is the
  // whole §10.3 contract.
  FaultProxy::Options popts;
  popts.seed = 23;
  popts.server_to_client.skip_frames = 1;  // HELLO response passes
  popts.server_to_client.cut_prob = 1.0;
  Start(popts);

  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(instance_
                    ->Set(kInternalCtx, "drop" + std::to_string(i),
                          CacheValue::OfData("x"))
                    .ok());
  }

  TcpCacheBackend::Options copts;
  copts.retry.max_attempts = 3;
  copts.retry.initial_backoff = Millis(1);
  copts.retry.max_backoff = Millis(5);
  auto backend = Backend(copts);
  ASSERT_TRUE(backend->Connect().ok());

  std::vector<DeleteRequest> reqs;
  for (int i = 0; i < 6; ++i) {
    reqs.push_back({kInternalCtx, "drop" + std::to_string(i)});
  }
  auto out = backend->MultiDelete(std::move(reqs));
  ASSERT_EQ(out.size(), 6u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(out[i].code(), Code::kUnavailable) << "slot " << i;
  }
  // The server-side state DID change — which is exactly why the client must
  // fail fast instead of re-applying the batch on a fresh connection.
  for (int i = 0; i < 6; ++i) {
    EXPECT_FALSE(instance_->ContainsRaw("drop" + std::to_string(i)));
  }
  EXPECT_TRUE(WaitFor([&] { return proxy_->stats().cuts >= 1; }));
  EXPECT_EQ(proxy_->stats().cuts, 1u);
  EXPECT_EQ(proxy_->stats().connections_accepted, 1u);
}

// ---- SO_RCVTIMEO mid-frame (the reader's slow-peer path) --------------------

TEST_F(FaultProxyTest, RecvTimeoutMidFrameIsConnectionFatal) {
  // The proxy forwards a prefix of the Get response, then stalls far past
  // the client's io_timeout. The reader cannot tell a stalled peer from a
  // dead one and must not resume a half-read stream later (it would desync
  // the FIFO), so the timeout kills the connection: prompt kUnavailable,
  // disconnected, clean redial after.
  FaultProxy::Options popts;
  popts.seed = 17;
  popts.server_to_client.skip_frames = 1;
  popts.server_to_client.stall_prob = 1.0;
  popts.server_to_client.stall = Seconds(2);
  Start(popts);

  TcpCacheBackend::Options copts;
  copts.io_timeout = Millis(200);
  auto backend = Backend(copts);
  ASSERT_TRUE(backend->Connect().ok());

  const Timestamp start = Mono();
  auto got = backend->Get(kInternalCtx, "k");
  const Duration elapsed = Mono() - start;
  EXPECT_EQ(got.status().code(), Code::kUnavailable);
  EXPECT_NE(got.status().message().find("timed out"), std::string::npos)
      << got.status().ToString();
  EXPECT_LT(elapsed, Millis(1500));  // ~io_timeout, nowhere near the stall
  EXPECT_FALSE(backend->connected());
  EXPECT_GE(proxy_->stats().stalls, 1u);

  // The drop is recoverable: a fresh connection's handshake frame is inside
  // the skip window and passes.
  EXPECT_TRUE(backend->Connect().ok());
  EXPECT_TRUE(backend->connected());
}

// ---- Handshake interruption -------------------------------------------------

TEST_F(FaultProxyTest, HandshakeCutMidHelloFailsPromptlyV2) {
  FaultProxy::Options popts;
  popts.seed = 19;
  popts.server_to_client.cut_prob = 1.0;  // skip 0: the HELLO response dies
  Start(popts);

  TcpCacheBackend::Options copts;
  copts.io_timeout = Seconds(10);  // must NOT take this long to notice
  auto backend = Backend(copts);

  const Timestamp start = Mono();
  Status s = backend->Connect();
  const Duration elapsed = Mono() - start;
  EXPECT_EQ(s.code(), Code::kUnavailable);
  EXPECT_LT(elapsed, Seconds(2));
  EXPECT_FALSE(backend->connected());
}

TEST_F(FaultProxyTest, ResetOnAcceptFailsPromptly) {
  FaultProxy::Options popts;
  popts.seed = 23;
  popts.reset_on_accept_prob = 1.0;
  Start(popts);

  auto backend = Backend();
  const Timestamp start = Mono();
  Status s = backend->Connect();
  const Duration elapsed = Mono() - start;
  EXPECT_EQ(s.code(), Code::kUnavailable);
  EXPECT_LT(elapsed, Seconds(2));
  EXPECT_TRUE(
      WaitFor([&] { return proxy_->stats().connections_reset_on_accept >= 1; }));
}

TEST_F(FaultProxyTest, HandshakeCutMidHelloFailsPromptlyV1) {
  // A v1 client (raw socket, bare `u32 version` HELLO) through the same
  // killer proxy: it must see EOF promptly, not hang awaiting the frame.
  FaultProxy::Options popts;
  popts.seed = 29;
  popts.server_to_client.cut_prob = 1.0;
  Start(popts);

  int fd = RawConnect(proxy_->port());
  ASSERT_GE(fd, 0);
  std::string hello_body;
  wire::PutU32(hello_body, 1);
  std::string out;
  wire::AppendRequest(out, wire::Op::kHello, hello_body);
  ASSERT_TRUE(SendAll(fd, out));

  const Timestamp start = Mono();
  uint8_t tag = 0xFF;
  std::string body;
  EXPECT_FALSE(ReadFrame(fd, &tag, &body));  // EOF mid-frame
  EXPECT_LT(Mono() - start, Seconds(3));
  ::close(fd);
}

// ---- Retry budget against a dead endpoint -----------------------------------

/// Binds and immediately frees an ephemeral port: nothing listens there, so
/// dials fail fast with ECONNREFUSED (loopback), and the port is very
/// unlikely to be reused within the test.
uint16_t FreePort() {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  EXPECT_GE(fd, 0);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  EXPECT_EQ(::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)), 0);
  socklen_t len = sizeof(addr);
  EXPECT_EQ(::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len), 0);
  ::close(fd);
  return ntohs(addr.sin_port);
}

TEST(RetryBudget, DeadlineCapsTheRetryLoop) {
  TcpCacheBackend::Options copts;
  copts.connect_timeout = Millis(100);
  copts.breaker_failure_threshold = 0;  // isolate the retry loop
  copts.retry.max_attempts = 50;
  copts.retry.initial_backoff = Millis(4);
  copts.retry.max_backoff = Millis(16);
  copts.retry.deadline = Millis(300);
  TcpCacheBackend backend("127.0.0.1", FreePort(), wire::kAnyInstance, copts);

  const Timestamp start = Mono();
  auto got = backend.Get(kInternalCtx, "k");
  const Duration elapsed = Mono() - start;
  EXPECT_EQ(got.status().code(), Code::kUnavailable);
  // The budget is a hard cap: no new attempt starts past the deadline, and
  // refused loopback dials are ~instant, so the op ends near it.
  EXPECT_LT(elapsed, Millis(900));
}

TEST(RetryBudget, BackoffSleepIsJitteredAndDeadlineAware) {
  RetryPolicy policy;
  policy.max_attempts = 10;
  policy.initial_backoff = Millis(4);
  policy.max_backoff = Millis(32);
  policy.jitter_seed = 99;
  // Full jitter: uniform in [0, cap], cap doubling 4, 8, 16, 32, 32...
  Duration caps[] = {Millis(4), Millis(8), Millis(16), Millis(32), Millis(32)};
  for (int attempt = 2; attempt <= 6; ++attempt) {
    const Duration sleep =
        TcpConnection::BackoffBeforeAttempt(policy, attempt, 0, 1);
    EXPECT_GE(sleep, 0) << "attempt " << attempt;
    EXPECT_LE(sleep, caps[attempt - 2]) << "attempt " << attempt;
    // Deterministic for a given (policy, attempt, salt).
    EXPECT_EQ(sleep, TcpConnection::BackoffBeforeAttempt(policy, attempt, 0, 1));
  }
  // A spent deadline refuses the next attempt outright.
  policy.deadline = Millis(100);
  EXPECT_LT(TcpConnection::BackoffBeforeAttempt(policy, 2, Millis(100), 1), 0);
  EXPECT_LT(TcpConnection::BackoffBeforeAttempt(policy, 2, Millis(500), 1), 0);
}

// ---- Circuit breaker --------------------------------------------------------

TEST(CircuitBreaker, OpensAfterConsecutiveDialFailuresThenRecovers) {
  // Carve out a port with no listener, fail enough dials to open the
  // breaker, then start a real server on that exact port and watch the
  // half-open probe close it again.
  VirtualClock clock;
  CacheInstance instance(0, &clock);
  uint16_t port = 0;
  {
    TransportServer placeholder(&instance, TransportServer::Options{});
    ASSERT_TRUE(placeholder.Start().ok());
    port = placeholder.port();
    placeholder.Stop();
  }

  TcpCacheBackend::Options copts;
  copts.connect_timeout = Millis(250);
  copts.breaker_failure_threshold = 3;
  copts.breaker_cooldown = Millis(400);
  TcpCacheBackend backend("127.0.0.1", port, wire::kAnyInstance, copts);

  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(backend.Connect().code(), Code::kUnavailable);
  }
  EXPECT_EQ(backend.breaker_state(), TcpConnection::BreakerState::kOpen);

  // While open: fail fast, no dial, no connect_timeout.
  const Timestamp start = Mono();
  Status s = backend.Ping();
  const Duration elapsed = Mono() - start;
  EXPECT_EQ(s.code(), Code::kUnavailable);
  EXPECT_NE(s.message().find("circuit breaker"), std::string::npos)
      << s.ToString();
  EXPECT_LT(elapsed, Millis(100));

  // The endpoint comes back; after the cooldown the next call is the
  // half-open probe, and its success closes the breaker.
  TransportServer::Options sopts;
  sopts.port = port;
  TransportServer server(&instance, sopts);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_TRUE(WaitFor([&] {
    return backend.breaker_state() == TcpConnection::BreakerState::kHalfOpen;
  }));
  EXPECT_TRUE(backend.Connect().ok());
  EXPECT_EQ(backend.breaker_state(), TcpConnection::BreakerState::kClosed);
  EXPECT_TRUE(backend.Ping().ok());
  backend.Disconnect();
  server.Stop();
}

TEST(CircuitBreaker, GeminiClientDegradesToStoreReadsWhileOpen) {
  // One instance behind a real server; the coordinator still believes in it
  // (its failure detection is out of band), so when the server dies the
  // client sees kUnavailable with an unchanged configuration: reads fall
  // through to the data store, writes suspend. The breaker makes that
  // fallthrough cheap — after it opens, reads stop paying dial attempts.
  VirtualClock clock;
  CacheInstance instance(0, &clock);
  auto server = std::make_unique<TransportServer>(&instance,
                                                  TransportServer::Options{});
  ASSERT_TRUE(server->Start().ok());

  TcpCacheBackend::Options copts;
  copts.connect_timeout = Millis(200);
  copts.breaker_failure_threshold = 2;
  copts.breaker_cooldown = Seconds(30);  // stays open for the whole test
  TcpCacheBackend backend("127.0.0.1", server->port(), wire::kAnyInstance,
                          copts);
  ASSERT_TRUE(backend.Connect().ok());

  DataStore store;
  for (int i = 0; i < 30; ++i) {
    store.Put("key" + std::to_string(i), "v" + std::to_string(i));
  }
  Coordinator coordinator(&clock, {&instance}, 4, Coordinator::Options{});
  GeminiClient client(&clock, &coordinator, {&backend}, &store);
  Session session;

  auto r = client.Read(session, "key0");
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->cache_hit);  // miss-filled over the wire

  server->Stop();
  server.reset();
  backend.Disconnect();

  // Every read keeps succeeding from the store; after
  // breaker_failure_threshold dials the breaker opens and they get cheap.
  for (int i = 0; i < 10; ++i) {
    auto fallback = client.Read(session, "key" + std::to_string(i));
    ASSERT_TRUE(fallback.ok()) << fallback.status().ToString();
    EXPECT_EQ(fallback->value.data, "v" + std::to_string(i));
    EXPECT_EQ(fallback->instance, kInvalidInstance);  // store, not cache
  }
  EXPECT_EQ(backend.breaker_state(), TcpConnection::BreakerState::kOpen);

  const Timestamp start = Mono();
  for (int i = 10; i < 30; ++i) {
    auto fallback = client.Read(session, "key" + std::to_string(i));
    ASSERT_TRUE(fallback.ok());
    EXPECT_EQ(fallback->value.data, "v" + std::to_string(i));
  }
  EXPECT_LT(Mono() - start, Seconds(2));  // fail-fast, not 20 dial timeouts

  EXPECT_EQ(client.Write(session, "key0", std::string("new")).code(),
            Code::kSuspended);
  EXPECT_GE(client.stats().store_reads, 30u);
}

// ---- Server hardening: slowloris reaping ------------------------------------

TEST(ServerHardening, SlowlorisConnectionsAreReapedEstablishedOnesAreNot) {
  VirtualClock clock;
  CacheInstance instance(0, &clock);
  TransportServer::Options sopts;
  sopts.num_loops = 1;
  sopts.idle_timeout_ms = 100;
  TransportServer server(&instance, sopts);
  ASSERT_TRUE(server.Start().ok());

  // A healthy pipelined client, established (HELLO done, no partial frame).
  TcpCacheBackend backend("127.0.0.1", server.port());
  ASSERT_TRUE(backend.Connect().ok());
  ASSERT_TRUE(backend.Ping().ok());

  // A slowloris: 3 bytes of a frame header, then silence.
  int fd = RawConnect(server.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(SendAll(fd, std::string("\x10\x00\x00", 3)));

  // The server reaps it (EOF on our side) well inside a few timeouts...
  // EINTR is retried: an in-process io_uring backend's deferred ring
  // teardown can kick unrelated threads out of blocking syscalls.
  const Timestamp start = Mono();
  char byte;
  ssize_t n;
  do {
    n = ::recv(fd, &byte, 1, 0);  // 5 s SO_RCVTIMEO cap
  } while (n < 0 && errno == EINTR);
  EXPECT_EQ(n, 0) << "expected EOF, got n=" << n << " errno=" << errno;
  EXPECT_LT(Mono() - start, Seconds(3));
  ::close(fd);
  EXPECT_TRUE(WaitFor([&] { return server.stats().connections_reaped >= 1; }));
  EXPECT_EQ(server.stats().connections_reaped, 1u);

  // ...while the established connection, idle far longer than
  // idle_timeout_ms between complete requests, is untouched.
  SleepFor(Millis(300));
  EXPECT_TRUE(backend.Ping().ok());
  EXPECT_EQ(server.stats().connections_reaped, 1u);
  backend.Disconnect();
  server.Stop();
}

// ---- The capstone: failover cycle through an adversarial schedule -----------

class ChaosClusterTest : public ::testing::Test {
 protected:
  static constexpr size_t kInstances = 2;
  static constexpr size_t kFragments = 4;

  void SetUp() override {
    seed_ = ChaosSeed();
    InstanceRegistry registry;
    for (size_t i = 0; i < kInstances; ++i) {
      instances_.push_back(std::make_unique<CacheInstance>(
          static_cast<InstanceId>(i), &clock_));
      raw_.push_back(instances_.back().get());
      ASSERT_TRUE(registry.Add(instances_.back().get()).ok());
    }
    TransportServer::Options sopts;
    sopts.num_loops = 1;
    server_ = std::make_unique<TransportServer>(std::move(registry), sopts);
    ASSERT_TRUE(server_->Start().ok());

    // The adversarial-but-survivable schedule: heavy reordering pressure
    // (delays, sub-timeout stalls, hold bursts) on every frame, plus a thin
    // tail of real connection loss. The client's retry policy must absorb
    // the losses on idempotent traffic; lease-bearing ops surface them and
    // the harness retries at the application level, exactly as a real
    // application would.
    FaultProxy::Options popts;
    popts.seed = seed_;
    for (auto* p : {&popts.client_to_server, &popts.server_to_client}) {
      p->skip_frames = 1;
      p->delay_prob = 0.35;
      p->delay_min = 0;
      p->delay_max = Millis(3);
      p->stall_prob = 0.08;
      p->stall = Millis(15);
      p->hold_every = 6;
      p->hold_count = 2;
    }
    popts.client_to_server.cut_prob = 0.03;
    popts.server_to_client.cut_prob = 0.04;
    popts.server_to_client.truncate_prob = 0.01;
    proxy_ = std::make_unique<FaultProxy>("127.0.0.1", server_->port(),
                                          popts);
    ASSERT_TRUE(proxy_->Start().ok());

    TcpCacheBackend::Options copts;
    copts.io_timeout = Seconds(2);
    copts.retry.max_attempts = 4;
    copts.retry.initial_backoff = Millis(1);
    copts.retry.max_backoff = Millis(10);
    copts.retry.deadline = Seconds(2);
    copts.retry.jitter_seed = seed_;
    for (size_t i = 0; i < kInstances; ++i) {
      backends_.push_back(std::make_unique<TcpCacheBackend>(
          "127.0.0.1", proxy_->port(), static_cast<InstanceId>(i), copts));
      remote_.push_back(backends_.back().get());
    }

    Coordinator::Options copts2;
    copts2.policy = RecoveryPolicy::GeminiO();
    coordinator_ = std::make_unique<Coordinator>(&clock_, raw_, kFragments,
                                                 copts2);
    client_ = std::make_unique<GeminiClient>(&clock_, coordinator_.get(),
                                             remote_, &store_);
    for (int i = 0; i < 50; ++i) {
      store_.Put("user" + std::to_string(i), "v" + std::to_string(i));
    }
  }

  void TearDown() override {
    for (auto& b : backends_) b->Disconnect();
    if (proxy_ != nullptr) proxy_->Stop();
    if (server_ != nullptr) server_->Stop();
  }

  std::string KeyOnPrimary(InstanceId id) {
    auto cfg = coordinator_->GetConfiguration();
    for (int i = 0; i < 50; ++i) {
      std::string key = "user" + std::to_string(i);
      if (cfg->fragment(cfg->FragmentOf(key)).primary == id) return key;
    }
    ADD_FAILURE() << "no key with primary " << id;
    return "user0";
  }

  /// A read that must eventually succeed and must NEVER return a stale
  /// value. Individual attempts may fail when a chaos cut lands on a
  /// lease-bearing frame; the virtual clock advances between attempts so
  /// leases orphaned by a cut expire instead of wedging the key.
  GeminiClient::ReadResult MustRead(const std::string& key) {
    for (int attempt = 0; attempt < 100; ++attempt) {
      const Timestamp start = Mono();
      auto r = client_->Read(session_, key);
      EXPECT_LT(Mono() - start, Seconds(10)) << "hung read of " << key;
      if (r.ok()) {
        EXPECT_EQ(r->value.version, store_.VersionOf(key))
            << "STALE read of " << key;
        return *r;
      }
      clock_.Advance(Millis(5));
    }
    ADD_FAILURE() << "read of " << key << " never succeeded";
    return {};
  }

  void MustWrite(const std::string& key, const std::string& value) {
    for (int attempt = 0; attempt < 300; ++attempt) {
      const Timestamp start = Mono();
      Status s = client_->Write(session_, key, value);
      EXPECT_LT(Mono() - start, Seconds(10)) << "hung write of " << key;
      if (s.ok()) return;
      clock_.Advance(Millis(5));
    }
    FAIL() << "write of " << key << " never succeeded";
  }

  VirtualClock clock_;
  DataStore store_;
  uint64_t seed_ = 1;
  std::vector<std::unique_ptr<CacheInstance>> instances_;
  std::vector<CacheInstance*> raw_;
  std::unique_ptr<TransportServer> server_;
  std::unique_ptr<FaultProxy> proxy_;
  std::vector<std::unique_ptr<TcpCacheBackend>> backends_;
  std::vector<CacheBackend*> remote_;
  std::unique_ptr<Coordinator> coordinator_;
  std::unique_ptr<GeminiClient> client_;
  Session session_;
};

TEST_F(ChaosClusterTest, FullFailoverAndRecoveryCycleSurvivesChaos) {
  const std::string key = KeyOnPrimary(0);
  const FragmentId f = coordinator_->GetConfiguration()->FragmentOf(key);

  // Warm the primary through the hostile wire.
  (void)MustRead(key);

  // Primary fails; the coordinator publishes the transient configuration.
  instances_[0]->Fail();
  coordinator_->OnInstanceFailed(0);
  ASSERT_EQ(coordinator_->ModeOf(f), FragmentMode::kTransient);
  const InstanceId secondary =
      coordinator_->GetConfiguration()->fragment(f).secondary;
  ASSERT_NE(secondary, kInvalidInstance);

  // Transient traffic rides the secondary; the write must land on the
  // fragment's dirty list there, observable through the same chaos proxy
  // (DirtyListGet is idempotent, so the transport retries it for us).
  (void)MustRead(key);
  MustWrite(key, "fresh");
  Result<CacheValue> dl = Status(Code::kUnavailable, "unfetched");
  for (int i = 0; i < 50 && !dl.ok(); ++i) {
    dl = backends_[secondary]->DirtyListGet(
        coordinator_->GetConfiguration()->id(), f);
  }
  ASSERT_TRUE(dl.ok()) << dl.status().ToString();
  EXPECT_NE(dl->data.find(key), std::string::npos);
  (void)MustRead(key);  // refill the secondary for the recovery transfer

  // The primary restarts persistent; recovery mode begins.
  instances_[0]->RecoverPersistent();
  coordinator_->OnInstanceRecovered(0);
  ASSERT_EQ(coordinator_->ModeOf(f), FragmentMode::kRecovery);

  // A recovery worker drains the dirty lists through the same proxied
  // backends. A chaos cut can make it abandon a fragment mid-drain; the
  // adoption loop picks it right back up, and the advancing virtual clock
  // expires any red lease a cut orphaned.
  RecoveryWorker::Options wopts;
  wopts.overwrite_dirty = true;
  RecoveryWorker worker(&clock_, coordinator_.get(), remote_, wopts);
  Session wsession;
  int idle_rounds = 0;
  for (int guard = 0; guard < 20000 && idle_rounds < 200; ++guard) {
    if (!worker.has_work() &&
        !worker.TryAdoptFragment(wsession).has_value()) {
      // Nothing adoptable right now — but a red lease orphaned by a cut
      // blocks adoption only until it expires (500 ms of virtual time), so
      // advance well past the lifetime and retry rather than concluding
      // recovery is done.
      ++idle_rounds;
      clock_.Advance(Millis(25));
      continue;
    }
    idle_rounds = 0;
    (void)worker.Step(wsession);
    clock_.Advance(Millis(1));
  }
  EXPECT_TRUE(coordinator_->FragmentsInMode(FragmentMode::kRecovery).empty());
  EXPECT_TRUE(coordinator_->FragmentsInMode(FragmentMode::kTransient).empty());
  EXPECT_GT(worker.stats().fragments_recovered, 0u);

  // Back to normal mode: the value must come back fresh and non-stale, and
  // (within a few attempts, since a cut can force a store fallthrough) as a
  // cache hit from the recovered primary.
  GeminiClient::ReadResult r;
  for (int i = 0; i < 50; ++i) {
    r = MustRead(key);
    if (r.cache_hit) break;
  }
  EXPECT_TRUE(r.cache_hit);
  EXPECT_EQ(r.value.data, "fresh");
  EXPECT_EQ(r.value.version, store_.VersionOf(key));

  // The proxy really was hostile, and deterministically so: the schedule
  // replays from the seed alone.
  const FaultProxy::Stats stats = proxy_->stats();
  EXPECT_GT(stats.frames_forwarded, 0u);
  EXPECT_GT(stats.delays + stats.stalls + stats.holds + stats.cuts +
                stats.truncations,
            0u);
  std::printf("[ chaos    ] seed=%llu frames=%llu delays=%llu stalls=%llu "
              "cuts=%llu truncations=%llu holds=%llu\n",
              static_cast<unsigned long long>(seed_),
              static_cast<unsigned long long>(stats.frames_forwarded),
              static_cast<unsigned long long>(stats.delays),
              static_cast<unsigned long long>(stats.stalls),
              static_cast<unsigned long long>(stats.cuts),
              static_cast<unsigned long long>(stats.truncations),
              static_cast<unsigned long long>(stats.holds));
}

}  // namespace
}  // namespace gemini
