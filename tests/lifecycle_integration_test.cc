// Cross-module lifecycle integration tests: multi-episode failover churn,
// crash-mode recovery through the whole stack, dirty-list budgets, client
// bootstrap mid-failure, and a policy-parameterized scenario matrix.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "src/cache/dirty_list.h"
#include "src/client/gemini_client.h"
#include "src/consistency/stale_read_checker.h"
#include "src/coordinator/coordinator.h"
#include "src/recovery/recovery_worker.h"

namespace gemini {
namespace {

class LifecycleTest : public ::testing::Test {
 protected:
  static constexpr size_t kInstances = 4;
  static constexpr size_t kFragments = 8;

  void Build(RecoveryPolicy policy, Coordinator::Options extra = {}) {
    policy_ = policy;
    extra.policy = policy;
    for (size_t i = 0; i < kInstances; ++i) {
      instances_.push_back(std::make_unique<CacheInstance>(
          static_cast<InstanceId>(i), &clock_));
      raw_.push_back(instances_.back().get());
    }
    coordinator_ =
        std::make_unique<Coordinator>(&clock_, raw_, kFragments, extra);
    GeminiClient::Options copts;
    copts.working_set_transfer = policy.working_set_transfer;
    copts.maintain_dirty_lists = policy.maintain_dirty_lists;
    client_ = std::make_unique<GeminiClient>(&clock_, coordinator_.get(),
                                             raw_, &store_, copts);
    recovery_state_ = std::make_unique<RecoveryState>(kFragments);
    client_->BindRecoveryState(recovery_state_.get());
    RecoveryWorker::Options wopts;
    wopts.overwrite_dirty = policy.overwrite_dirty;
    worker_ = std::make_unique<RecoveryWorker>(&clock_, coordinator_.get(),
                                               raw_, wopts);
    checker_ = std::make_unique<StaleReadChecker>(&store_);
    for (int i = 0; i < 400; ++i) {
      store_.Put("user" + std::to_string(i), "v0");
    }
  }

  std::vector<std::string> KeysOnInstance(InstanceId instance, int want) {
    std::vector<std::string> keys;
    auto cfg = coordinator_->GetConfiguration();
    for (int i = 0; i < 400 && static_cast<int>(keys.size()) < want; ++i) {
      std::string key = "user" + std::to_string(i);
      if (cfg->fragment(cfg->FragmentOf(key)).primary == instance) {
        keys.push_back(std::move(key));
      }
    }
    return keys;
  }

  void DrainWorker() {
    Session s;
    for (int guard = 0; guard < 20000; ++guard) {
      if (!worker_->has_work() &&
          !worker_->TryAdoptFragment(s).has_value()) {
        return;
      }
      (void)worker_->Step(s);
    }
    FAIL() << "worker did not drain";
  }

  void FinishWst(InstanceId instance) {
    if (!policy_.working_set_transfer) return;
    for (FragmentId f : coordinator_->FragmentsWithPrimary(instance)) {
      if (coordinator_->ModeOf(f) == FragmentMode::kRecovery) {
        recovery_state_->TerminateWst(f);
        coordinator_->OnWorkingSetTransferTerminated(f);
      }
    }
  }

  bool AuditRead(const std::string& key) {
    auto r = client_->Read(session_, key);
    if (!r.ok()) return false;
    return checker_->OnRead(clock_.Now(), key, r->value.version);
  }

  RecoveryPolicy policy_;
  VirtualClock clock_;
  DataStore store_;
  std::vector<std::unique_ptr<CacheInstance>> instances_;
  std::vector<CacheInstance*> raw_;
  std::unique_ptr<Coordinator> coordinator_;
  std::unique_ptr<GeminiClient> client_;
  std::unique_ptr<RecoveryState> recovery_state_;
  std::unique_ptr<RecoveryWorker> worker_;
  std::unique_ptr<StaleReadChecker> checker_;
  Session session_;
};

TEST_F(LifecycleTest, FiveFailureEpisodesStayConsistentAndConverge) {
  Build(RecoveryPolicy::GeminiO());
  auto keys = KeysOnInstance(0, 12);
  ASSERT_GE(keys.size(), 4u);
  for (const auto& k : keys) EXPECT_FALSE(AuditRead(k));

  for (int episode = 0; episode < 5; ++episode) {
    clock_.Advance(Seconds(1));
    coordinator_->OnInstanceFailed(0);
    // Writes and reads while down.
    for (size_t i = 0; i < keys.size(); i += 2) {
      ASSERT_TRUE(client_->Write(session_, keys[i]).ok());
    }
    for (const auto& k : keys) EXPECT_FALSE(AuditRead(k));
    clock_.Advance(Seconds(1));
    coordinator_->OnInstanceRecovered(0);
    for (const auto& k : keys) EXPECT_FALSE(AuditRead(k));
    DrainWorker();
    EXPECT_TRUE(
        coordinator_->FragmentsInMode(FragmentMode::kRecovery).empty())
        << "episode " << episode;
    for (const auto& k : keys) EXPECT_FALSE(AuditRead(k));
  }
  EXPECT_EQ(checker_->total_stale(), 0u);
}

TEST_F(LifecycleTest, CrashModeFullCycleThroughTheStack) {
  Build(RecoveryPolicy::GeminiO());
  auto keys = KeysOnInstance(0, 6);
  ASSERT_GE(keys.size(), 2u);
  for (const auto& k : keys) (void)client_->Read(session_, k);

  // Real crash: process state (leases) lost, content persistent.
  raw_[0]->Fail();
  // Before detection, reads fall back to the store and writes suspend.
  EXPECT_FALSE(AuditRead(keys[0]));
  EXPECT_EQ(client_->Write(session_, keys[0]).code(), Code::kSuspended);

  coordinator_->OnInstanceFailed(0);
  ASSERT_TRUE(client_->Write(session_, keys[0]).ok());
  EXPECT_FALSE(AuditRead(keys[0]));

  raw_[0]->RecoverPersistent();
  coordinator_->OnInstanceRecovered(0);
  // Clean persistent entry survives the crash and serves immediately.
  auto clean = client_->Read(session_, keys[1]);
  ASSERT_TRUE(clean.ok());
  EXPECT_TRUE(clean->cache_hit);
  EXPECT_FALSE(checker_->OnRead(clock_.Now(), keys[1], clean->value.version));
  // Dirty key serves the post-failure value.
  EXPECT_FALSE(AuditRead(keys[0]));
  DrainWorker();
  EXPECT_EQ(checker_->total_stale(), 0u);
}

TEST_F(LifecycleTest, DirtyListBudgetPromotesSecondary) {
  Coordinator::Options opts;
  opts.dirty_list_byte_budget = 200;
  Build(RecoveryPolicy::GeminiO(), opts);
  auto keys = KeysOnInstance(0, 8);
  ASSERT_GE(keys.size(), 4u);
  const FragmentId f = coordinator_->GetConfiguration()->FragmentOf(keys[0]);

  coordinator_->OnInstanceFailed(0);
  // Push the fragment's dirty list over budget with distinct keys of the
  // same fragment.
  std::vector<std::string> same_fragment;
  auto cfg = coordinator_->GetConfiguration();
  for (int i = 0; i < 400; ++i) {
    std::string key = "user" + std::to_string(i);
    if (cfg->FragmentOf(key) == f) same_fragment.push_back(std::move(key));
  }
  for (const auto& k : same_fragment) {
    ASSERT_TRUE(client_->Write(session_, k).ok());
    if (coordinator_->EnforceDirtyListBudget(f)) break;
  }
  // Transition (4): the fragment is in normal mode on the promoted
  // secondary; everything keeps being served consistently.
  EXPECT_EQ(coordinator_->ModeOf(f), FragmentMode::kNormal);
  EXPECT_GE(coordinator_->discarded_fragment_count(), 1u);
  for (const auto& k : same_fragment) EXPECT_FALSE(AuditRead(k));
  // The old primary's content for f is unrecoverable by construction; when
  // the instance returns it simply no longer owns the fragment.
  coordinator_->OnInstanceRecovered(0);
  for (const auto& k : same_fragment) EXPECT_FALSE(AuditRead(k));
  EXPECT_EQ(checker_->total_stale(), 0u);
}

TEST_F(LifecycleTest, FreshClientBootstrapsDuringFailure) {
  Build(RecoveryPolicy::GeminiO());
  auto keys = KeysOnInstance(0, 2);
  ASSERT_GE(keys.size(), 1u);
  (void)client_->Read(session_, keys[0]);
  coordinator_->OnInstanceFailed(0);

  // A freshly restarted client bootstraps from an instance's config entry
  // (Section 3.3) and observes the transient-mode routing.
  GeminiClient fresh(&clock_, coordinator_.get(), raw_, &store_);
  Session s;
  const ConfigId id = fresh.Bootstrap(s, /*via_instance=*/1);
  EXPECT_EQ(id, coordinator_->latest_id());
  auto r = fresh.Read(s, keys[0]);
  ASSERT_TRUE(r.ok());
  EXPECT_NE(r->routed, 0u);  // not the failed instance
}

TEST_F(LifecycleTest, WorkerAndClientContendOnSameDirtyKey) {
  Build(RecoveryPolicy::GeminiO());
  auto keys = KeysOnInstance(0, 2);
  ASSERT_GE(keys.size(), 1u);
  const std::string& key = keys[0];
  (void)client_->Read(session_, key);
  coordinator_->OnInstanceFailed(0);
  ASSERT_TRUE(client_->Write(session_, key).ok());
  (void)client_->Read(session_, key);  // fresh value in the secondary
  coordinator_->OnInstanceRecovered(0);

  // Client gets there first (holds the I lease via its dirty-key read).
  const FragmentId f = coordinator_->GetConfiguration()->FragmentOf(key);
  OpContext ctx{coordinator_->latest_id(), f};
  auto held = raw_[0]->ISet(ctx, key);  // simulate the in-flight client
  ASSERT_TRUE(held.ok());

  // Worker adoption + stepping must back off on that key, not corrupt it.
  ASSERT_TRUE(worker_->TryAdoptFragment(session_).has_value() ||
              worker_->has_work());
  // Find the adopted fragment; if it is a different one, drain until ours.
  for (int guard = 0; guard < 1000; ++guard) {
    if (worker_->has_work() &&
        worker_->current_fragment() == std::optional<FragmentId>(f)) {
      break;
    }
    if (!worker_->has_work() &&
        !worker_->TryAdoptFragment(session_).has_value()) {
      break;
    }
    (void)worker_->Step(session_);
  }
  if (worker_->has_work() &&
      worker_->current_fragment() == std::optional<FragmentId>(f)) {
    EXPECT_FALSE(worker_->Step(session_));  // backs off on the held key
  }
  // Release the lease; everything drains and stays consistent.
  (void)raw_[0]->IDelete(ctx, key, *held);
  DrainWorker();
  EXPECT_FALSE(AuditRead(key));
  EXPECT_EQ(checker_->total_stale(), 0u);
}

// ---- Policy matrix -------------------------------------------------------------

class PolicyMatrixTest : public ::testing::TestWithParam<int> {};

TEST_P(PolicyMatrixTest, FailureEpisodeMeetsPolicyContract) {
  RecoveryPolicy policy;
  switch (GetParam()) {
    case 0: policy = RecoveryPolicy::VolatileCache(); break;
    case 1: policy = RecoveryPolicy::StaleCache(); break;
    case 2: policy = RecoveryPolicy::GeminiI(); break;
    case 3: policy = RecoveryPolicy::GeminiO(); break;
    case 4: policy = RecoveryPolicy::GeminiIW(); break;
    default: policy = RecoveryPolicy::GeminiOW(); break;
  }

  VirtualClock clock;
  DataStore store;
  std::vector<std::unique_ptr<CacheInstance>> owned;
  std::vector<CacheInstance*> raw;
  for (InstanceId i = 0; i < 3; ++i) {
    owned.push_back(std::make_unique<CacheInstance>(i, &clock));
    raw.push_back(owned.back().get());
  }
  Coordinator::Options copts;
  copts.policy = policy;
  Coordinator coordinator(&clock, raw, 6, copts);
  GeminiClient::Options cl;
  cl.working_set_transfer = policy.working_set_transfer;
  cl.maintain_dirty_lists = policy.maintain_dirty_lists;
  GeminiClient client(&clock, &coordinator, raw, &store);
  RecoveryState rs(6);
  client.BindRecoveryState(&rs);
  StaleReadChecker checker(&store);
  Session session;
  for (int i = 0; i < 200; ++i) store.Put("user" + std::to_string(i), "v");

  // Warm keys of instance 0, fail it, write them, recover it.
  std::vector<std::string> keys;
  auto cfg = coordinator.GetConfiguration();
  for (int i = 0; i < 200 && keys.size() < 6; ++i) {
    std::string key = "user" + std::to_string(i);
    if (cfg->fragment(cfg->FragmentOf(key)).primary == 0) {
      keys.push_back(std::move(key));
    }
  }
  for (const auto& k : keys) (void)client.Read(session, k);
  coordinator.OnInstanceFailed(0);
  for (const auto& k : keys) ASSERT_TRUE(client.Write(session, k).ok());
  if (!policy.persistent) raw[0]->RecoverVolatile();
  coordinator.OnInstanceRecovered(0);

  uint64_t stale = 0;
  for (const auto& k : keys) {
    auto r = client.Read(session, k);
    ASSERT_TRUE(r.ok());
    if (checker.OnRead(clock.Now(), k, r->value.version)) ++stale;
  }
  if (policy.consistent_recovery || !policy.persistent) {
    // All Gemini variants and VolatileCache: zero stale reads.
    EXPECT_EQ(stale, 0u) << policy.Name();
  } else {
    // StaleCache: every warmed-and-overwritten key is served stale.
    EXPECT_GT(stale, 0u);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPolicies, PolicyMatrixTest,
                         ::testing::Range(0, 6));

}  // namespace
}  // namespace gemini
