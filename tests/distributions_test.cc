#include "src/workload/distributions.h"

#include <gtest/gtest.h>

#include <vector>

namespace gemini {
namespace {

TEST(UniformKeys, CoversRangeEvenly) {
  UniformKeys u(10);
  Rng rng(1);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[u.Next(rng)];
  for (int c : counts) EXPECT_NEAR(c, n / 10, n / 10 * 0.1);
}

TEST(HotspotKeys, HotSetGetsHotFraction) {
  HotspotKeys h(1000, /*hot_set_fraction=*/0.2, /*hot_fraction=*/0.8);
  EXPECT_EQ(h.hot_keys(), 200u);
  Rng rng(2);
  int hot = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (h.Next(rng) < 200) ++hot;
  }
  EXPECT_NEAR(double(hot) / n, 0.8, 0.01);
}

TEST(HotspotKeys, ColdKeysStillReachable) {
  HotspotKeys h(100, 0.1, 0.9);
  Rng rng(3);
  bool saw_cold = false;
  for (int i = 0; i < 10000 && !saw_cold; ++i) {
    saw_cold = h.Next(rng) >= 10;
  }
  EXPECT_TRUE(saw_cold);
}

TEST(HotspotKeys, DegenerateAllHot) {
  HotspotKeys h(10, 1.0, 0.5);
  Rng rng(4);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(h.Next(rng), 10u);
}

TEST(LatestKeys, BiasedTowardFrontier) {
  LatestKeys l(10000);
  Rng rng(5);
  int near_frontier = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (l.Next(rng) >= 9000) ++near_frontier;  // last 10% of records
  }
  // Zipf-toward-latest concentrates far more than 10% there.
  EXPECT_GT(double(near_frontier) / n, 0.5);
}

TEST(LatestKeys, AdvanceShiftsTheBias) {
  LatestKeys l(1000);
  Rng rng(6);
  l.Advance(1000);  // frontier now 2000
  EXPECT_EQ(l.frontier(), 2000u);
  int new_half = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const uint64_t r = l.Next(rng);
    EXPECT_LT(r, 2000u);
    if (r >= 1000) ++new_half;
  }
  EXPECT_GT(double(new_half) / n, 0.8);
}

}  // namespace
}  // namespace gemini
