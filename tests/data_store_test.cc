#include "src/store/data_store.h"

#include <gtest/gtest.h>

namespace gemini {
namespace {

TEST(DataStore, QueryMissingIsNotFound) {
  DataStore store;
  EXPECT_EQ(store.Query("k").code(), Code::kNotFound);
  EXPECT_EQ(store.VersionOf("k"), 0u);
}

TEST(DataStore, PutThenQuery) {
  DataStore store;
  store.Put("k", "value");
  auto r = store.Query("k");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->data, "value");
  EXPECT_EQ(r->size_bytes, 5u);
  EXPECT_EQ(r->version, 1u);
}

TEST(DataStore, UpdateBumpsVersion) {
  DataStore store;
  store.Put("k", "v1");
  EXPECT_EQ(store.Update("k"), 2u);
  EXPECT_EQ(store.Update("k", "v3"), 3u);
  auto r = store.Query("k");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->data, "v3");
  EXPECT_EQ(r->version, 3u);
  EXPECT_EQ(store.VersionOf("k"), 3u);
}

TEST(DataStore, VersionOnlyUpdateKeepsPayload) {
  DataStore store;
  store.Put("k", "payload");
  store.Update("k");  // synthetic write: only the version moves
  auto r = store.Query("k");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->data, "payload");
  EXPECT_EQ(r->version, 2u);
}

TEST(DataStore, UpdateOnMissingKeyCreatesRecord) {
  DataStore store;
  EXPECT_EQ(store.Update("new"), 1u);
  EXPECT_TRUE(store.Query("new").ok());
}

TEST(DataStore, LoadSyntheticBulkLoads) {
  DataStore store;
  store.LoadSynthetic(100, 512,
                      [](uint64_t i) { return "r" + std::to_string(i); });
  EXPECT_EQ(store.size(), 100u);
  auto r = store.Query("r42");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r->size_bytes, 512u);
  EXPECT_EQ(r->version, 1u);
  EXPECT_TRUE(r->data.empty());  // payload not materialized
}

TEST(DataStore, LoadSyntheticSizedUsesPerRecordSizes) {
  DataStore store;
  store.LoadSyntheticSized(
      10, [](uint64_t i) { return "r" + std::to_string(i); },
      [](uint64_t i) { return 100 + i; });
  EXPECT_EQ(store.Query("r7")->size_bytes, 107u);
}

TEST(DataStore, StatsCountOperations) {
  DataStore store;
  store.Put("k", "v");
  (void)store.Query("k");
  (void)store.Query("missing");
  store.Update("k");
  auto s = store.stats();
  EXPECT_EQ(s.queries, 2u);
  EXPECT_EQ(s.updates, 1u);
  store.ResetCounters();
  EXPECT_EQ(store.stats().queries, 0u);
}

}  // namespace
}  // namespace gemini
