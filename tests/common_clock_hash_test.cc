#include <gtest/gtest.h>

#include <set>
#include <thread>

#include "src/common/clock.h"
#include "src/common/hash.h"
#include "src/common/types.h"

namespace gemini {
namespace {

TEST(VirtualClock, StartsAtGivenTime) {
  VirtualClock c(100);
  EXPECT_EQ(c.Now(), 100);
}

TEST(VirtualClock, AdvanceMoves) {
  VirtualClock c;
  c.Advance(Seconds(2));
  EXPECT_EQ(c.Now(), Seconds(2));
  c.AdvanceTo(Seconds(10));
  EXPECT_EQ(c.Now(), Seconds(10));
}

TEST(SystemClock, Monotonic) {
  SystemClock& c = SystemClock::Global();
  const Timestamp a = c.Now();
  const Timestamp b = c.Now();
  EXPECT_LE(a, b);
}

TEST(DurationHelpers, UnitsCompose) {
  EXPECT_EQ(Millis(1), 1000);
  EXPECT_EQ(Seconds(1), 1000000);
  EXPECT_EQ(Seconds(0.5), 500000);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(2.5)), 2.5);
}

TEST(Fnv1a, StableKnownValue) {
  // FNV-1a of empty input is the offset basis; of "a" a fixed constant.
  EXPECT_EQ(Fnv1a64(""), kFnvOffsetBasis);
  EXPECT_EQ(Fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
}

TEST(Fnv1a, DistinctKeysDistinctHashes) {
  std::set<uint64_t> hashes;
  for (int i = 0; i < 10000; ++i) {
    hashes.insert(Fnv1a64("user" + std::to_string(i)));
  }
  EXPECT_EQ(hashes.size(), 10000u);
}

TEST(Fnv1a, FragmentMappingIsBalanced) {
  // Keys spread across fragments within ~3x of the mean.
  const int F = 50;
  std::vector<int> counts(F, 0);
  for (int i = 0; i < 50000; ++i) {
    ++counts[Fnv1a64("user" + std::to_string(i)) % F];
  }
  for (int c : counts) {
    EXPECT_GT(c, 50000 / F / 3);
    EXPECT_LT(c, 50000 / F * 3);
  }
}

TEST(InternalKeys, PrefixedAndDistinct) {
  EXPECT_NE(DirtyListKey(1), DirtyListKey(2));
  EXPECT_EQ(DirtyListKey(7).find(kInternalKeyPrefix), 0u);
  EXPECT_EQ(ConfigKey().find(kInternalKeyPrefix), 0u);
  EXPECT_NE(DirtyListKey(0), ConfigKey());
}

}  // namespace
}  // namespace gemini
