// Coordinator high availability (docs/PROTOCOL.md §12.7): the replicated
// geminicoordd group in one process. Covers the CoordinatorState wire codec,
// shadow refusal (kNotMaster over real TCP), epoch fencing on
// kCoordShadowSync (a stale mastership claim is rejected; a newer claim
// demotes a serving master), promotion from *stale* replicated state (the
// master died mid-replication — the config-id floor keeps every new id
// above everything the dead master could have published), rank-staggered
// election with client and link failover across the endpoint list, and
// double failover (the promoted master dies too).
#include <gtest/gtest.h>

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include "src/cache/cache_instance.h"
#include "src/cluster/coordinator_link.h"
#include "src/cluster/coordinator_replica.h"
#include "src/cluster/remote_coordinator.h"
#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/coordinator/configuration.h"
#include "src/coordinator/coordinator.h"
#include "src/transport/instance_registry.h"
#include "src/transport/server.h"
#include "src/transport/tcp_connection.h"
#include "src/transport/wire.h"

namespace gemini {
namespace {

constexpr Duration kBeat = Millis(20);
constexpr Duration kSync = Millis(20);
constexpr Duration kElection = Millis(100);

bool WaitFor(const std::function<bool()>& pred,
             Duration timeout = Seconds(10)) {
  const Timestamp deadline = SystemClock::Global().Now() + timeout;
  while (SystemClock::Global().Now() < deadline) {
    if (pred()) return true;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  return pred();
}

/// Binds an ephemeral loopback port and releases it. Replica groups need
/// their ports before any member exists (each member's peer list names the
/// others); the close-to-bind race is acceptable in a test.
uint16_t PickFreePort() {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return 0;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = 0;
  uint16_t port = 0;
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) == 0) {
    socklen_t len = sizeof(addr);
    if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0) {
      port = ntohs(addr.sin_port);
    }
  }
  ::close(fd);
  return port;
}

/// One geminicoordd-shaped process slice: a CoordinatorReplica behind its
/// own coordinator-only TransportServer on a pre-picked port.
struct ReplicaNode {
  ReplicaNode(uint16_t port,
              std::vector<CoordinatorReplica::PeerEndpoint> peers,
              uint32_t rank, size_t instances, size_t fragments,
              Duration election_timeout = kElection) {
    CoordinatorReplica::Options ropts;
    ropts.control.num_instances = instances;
    ropts.control.num_fragments = fragments;
    ropts.control.heartbeat.interval = kBeat;
    ropts.control.heartbeat.miss_threshold = 3;
    ropts.peers = std::move(peers);
    ropts.rank = rank;
    ropts.sync_interval = kSync;
    ropts.election_timeout = election_timeout;
    replica = std::make_unique<CoordinatorReplica>(&SystemClock::Global(),
                                                   ropts);
    TransportServer::Options sopts;
    sopts.port = port;
    sopts.control = replica.get();
    server = std::make_unique<TransportServer>(InstanceRegistry{}, sopts);
    EXPECT_TRUE(server->Start().ok());
    replica->Start(server.get());
  }

  /// Graceful crash stand-in: the sync beat stops, so from the peers' point
  /// of view this member is dead.
  void Kill() {
    if (dead) return;
    dead = true;
    replica->Stop();
    server->Stop();
  }

  ~ReplicaNode() { Kill(); }

  std::unique_ptr<CoordinatorReplica> replica;
  std::unique_ptr<TransportServer> server;
  bool dead = false;
};

/// Pre-picks a port per member and builds each member's peer list (everyone
/// but itself), mirroring how geminicoordd --peers deployments are wired.
std::vector<std::unique_ptr<ReplicaNode>> StartGroup(size_t members,
                                                     size_t instances,
                                                     size_t fragments) {
  std::vector<uint16_t> ports(members);
  for (auto& p : ports) {
    p = PickFreePort();
    EXPECT_NE(p, 0);
  }
  std::vector<std::unique_ptr<ReplicaNode>> group;
  for (size_t i = 0; i < members; ++i) {
    std::vector<CoordinatorReplica::PeerEndpoint> peers;
    for (size_t j = 0; j < members; ++j) {
      if (j != i) peers.push_back({"127.0.0.1", ports[j]});
    }
    group.push_back(std::make_unique<ReplicaNode>(
        ports[i], std::move(peers), static_cast<uint32_t>(i), instances,
        fragments));
  }
  return group;
}

CoordinatorState SampleState() {
  CoordinatorState state;
  state.next_config_id = 42;
  state.round_robin_cursor = 3;
  state.discarded_fragments = 7;
  state.master_epoch = 5;
  state.believed_up = {true, false, true};
  CoordinatorState::FragmentEntry e0;
  e0.assignment = {0, 2, 17, FragmentMode::kTransient, 4};
  e0.prefailure_config_id = 11;
  e0.secondary_created_id = 12;
  e0.dirty_processed = true;
  CoordinatorState::FragmentEntry e1;
  e1.assignment = {2, kInvalidInstance, 9, FragmentMode::kNormal, 1};
  e1.wst_terminated = true;
  state.fragments = {e0, e1};
  return state;
}

TEST(CoordinatorStateCodecTest, RoundTripsAllFields) {
  const CoordinatorState in = SampleState();
  std::string bytes;
  EncodeCoordinatorState(bytes, in);

  CoordinatorState out;
  ASSERT_TRUE(DecodeCoordinatorState(bytes, &out));
  EXPECT_EQ(out.next_config_id, in.next_config_id);
  EXPECT_EQ(out.round_robin_cursor, in.round_robin_cursor);
  EXPECT_EQ(out.discarded_fragments, in.discarded_fragments);
  EXPECT_EQ(out.master_epoch, in.master_epoch);
  EXPECT_EQ(out.believed_up, in.believed_up);
  ASSERT_EQ(out.fragments.size(), in.fragments.size());
  for (size_t f = 0; f < in.fragments.size(); ++f) {
    EXPECT_EQ(out.fragments[f].assignment, in.fragments[f].assignment);
    EXPECT_EQ(out.fragments[f].prefailure_config_id,
              in.fragments[f].prefailure_config_id);
    EXPECT_EQ(out.fragments[f].secondary_created_id,
              in.fragments[f].secondary_created_id);
    EXPECT_EQ(out.fragments[f].dirty_processed,
              in.fragments[f].dirty_processed);
    EXPECT_EQ(out.fragments[f].wst_terminated,
              in.fragments[f].wst_terminated);
  }
}

TEST(CoordinatorStateCodecTest, RejectsMalformedInput) {
  std::string bytes;
  EncodeCoordinatorState(bytes, SampleState());
  CoordinatorState out;

  EXPECT_FALSE(DecodeCoordinatorState("", &out));
  // Truncated at every prefix length: no read past the end, no acceptance.
  for (size_t len = 0; len < bytes.size(); ++len) {
    EXPECT_FALSE(
        DecodeCoordinatorState(std::string_view(bytes.data(), len), &out))
        << "accepted a " << len << "-byte prefix";
  }
  // Trailing garbage is not "just extra" — a sync frame is exact.
  EXPECT_FALSE(DecodeCoordinatorState(bytes + "x", &out));
  // Unknown future version: refuse rather than misparse.
  std::string reversioned = bytes;
  reversioned[0] = static_cast<char>(0xEE);
  EXPECT_FALSE(DecodeCoordinatorState(reversioned, &out));
}

TEST(CoordinatorReplicaTest, SoloReplicaPromotesImmediately) {
  ReplicaNode node(PickFreePort(), /*peers=*/{}, /*rank=*/0,
                   /*instances=*/2, /*fragments=*/2);
  EXPECT_TRUE(node.replica->is_master());
  EXPECT_EQ(node.replica->epoch(), 1u);
  EXPECT_EQ(node.replica->promotions(), 1u);

  TcpConnection conn("127.0.0.1", node.server->port(), wire::kAnyInstance,
                     TcpConnection::Options{});
  ASSERT_TRUE(conn.Connect().ok());
  std::string resp;
  EXPECT_TRUE(conn.Transact(wire::Op::kCoordConfigGet, "", &resp).ok());
}

TEST(CoordinatorReplicaTest, ShadowAnswersNotMasterOverTheWire) {
  // One (never-reachable) peer plus a long election timeout pins the
  // replica in its boot-time shadow role for the whole test.
  ReplicaNode node(PickFreePort(), {{"127.0.0.1", PickFreePort()}},
                   /*rank=*/1, /*instances=*/2, /*fragments=*/2,
                   /*election_timeout=*/Seconds(30));
  EXPECT_FALSE(node.replica->is_master());

  // kNotMaster must survive the status wire encoding round trip — it is
  // what tells clients "redial the next endpoint" (§12.7).
  TcpConnection conn("127.0.0.1", node.server->port(), wire::kAnyInstance,
                     TcpConnection::Options{});
  ASSERT_TRUE(conn.Connect().ok());
  std::string resp;
  EXPECT_EQ(conn.Transact(wire::Op::kCoordConfigGet, "", &resp).code(),
            Code::kNotMaster);
  std::string beat;
  wire::PutU32(beat, 1);
  wire::PutU32(beat, 0);
  EXPECT_EQ(conn.Transact(wire::Op::kCoordHeartbeat, beat, &resp).code(),
            Code::kNotMaster);
  // Introspection is role-independent: a shadow reports its own counters.
  EXPECT_TRUE(conn.Transact(wire::Op::kStats, "", &resp).ok());
}

/// Builds a kCoordShadowSync request body claiming mastership at
/// (epoch, rank) with the given replicated state.
std::string SyncBody(uint64_t epoch, uint32_t rank,
                     const CoordinatorState& state) {
  std::string blob;
  EncodeCoordinatorState(blob, state);
  std::string body;
  wire::PutU64(body, epoch);
  wire::PutU32(body, rank);
  wire::PutBlob(body, blob);
  return body;
}

TEST(CoordinatorReplicaTest, SyncFencingRejectsStaleClaimAndDemotesOnNewer) {
  // Solo replica: promoted at epoch 1, rank 0.
  ReplicaNode node(PickFreePort(), /*peers=*/{}, /*rank=*/0,
                   /*instances=*/2, /*fragments=*/2);
  ASSERT_TRUE(node.replica->is_master());

  CoordinatorState state;
  state.believed_up = {true, true};
  state.fragments.resize(2);

  // A fenced ex-master replays its old claim (same epoch, higher rank):
  // reject with kNotMaster so the sender demotes itself.
  state.master_epoch = 1;
  ControlPlane::Reply stale = node.replica->HandleControl(
      wire::Op::kCoordShadowSync, SyncBody(/*epoch=*/1, /*rank=*/7, state));
  EXPECT_EQ(stale.status.code(), Code::kNotMaster);
  EXPECT_TRUE(node.replica->is_master());

  // Garbage payloads are an error, never a role change.
  ControlPlane::Reply malformed =
      node.replica->HandleControl(wire::Op::kCoordShadowSync, "junk");
  EXPECT_EQ(malformed.status.code(), Code::kInvalidArgument);
  EXPECT_TRUE(node.replica->is_master());

  // A strictly newer claim wins: the serving master steps down and starts
  // answering kNotMaster itself.
  state.master_epoch = 3;
  state.next_config_id = (3ull << 32) + 9;
  ControlPlane::Reply newer = node.replica->HandleControl(
      wire::Op::kCoordShadowSync, SyncBody(/*epoch=*/3, /*rank=*/2, state));
  ASSERT_TRUE(newer.status.ok());
  wire::Reader r(newer.body);
  uint64_t acked_epoch = 0;
  ASSERT_TRUE(r.GetU64(&acked_epoch) && r.Done());
  EXPECT_EQ(acked_epoch, 3u);
  EXPECT_FALSE(node.replica->is_master());
  EXPECT_EQ(node.replica->epoch(), 3u);
  EXPECT_EQ(node.replica->demotions(), 1u);
  ControlPlane::Reply after =
      node.replica->HandleControl(wire::Op::kCoordConfigGet, "");
  EXPECT_EQ(after.status.code(), Code::kNotMaster);
}

TEST(CoordinatorReplicaTest, IgnoresItsOwnEchoedClaim) {
  // Operators may hand every member the identical full group list, so a
  // master's sync beat can reach its own server. The echoed claim carries
  // the replica's own rank and must be acked without applying — treating
  // it as foreign made a boot master demote itself forever (the claim
  // ordering accepts epoch == mine && rank <= master_rank).
  ReplicaNode node(PickFreePort(), /*peers=*/{}, /*rank=*/0,
                   /*instances=*/2, /*fragments=*/2);
  ASSERT_TRUE(node.replica->is_master());
  ASSERT_EQ(node.replica->epoch(), 1u);

  CoordinatorState state;
  state.master_epoch = 1;
  state.believed_up = {true, true};
  state.fragments.resize(2);
  ControlPlane::Reply echo = node.replica->HandleControl(
      wire::Op::kCoordShadowSync, SyncBody(/*epoch=*/1, /*rank=*/0, state));
  ASSERT_TRUE(echo.status.ok());
  wire::Reader r(echo.body);
  uint64_t acked_epoch = 0;
  ASSERT_TRUE(r.GetU64(&acked_epoch) && r.Done());
  EXPECT_EQ(acked_epoch, 1u);
  EXPECT_TRUE(node.replica->is_master());
  EXPECT_EQ(node.replica->demotions(), 0u);
  // Still serving: the control plane answers, not kNotMaster.
  ControlPlane::Reply get =
      node.replica->HandleControl(wire::Op::kCoordConfigGet, "");
  EXPECT_TRUE(get.status.ok());
}

TEST(CoordinatorReplicaTest, PromotesFromStaleStateAboveConfigIdFloor) {
  // The master dies mid-replication: the shadow's last sync is *stale*
  // (small config ids), and later configs the dead master published never
  // arrived. The promotion floor must put every id the new master mints
  // above anything the old one could have handed out in its epoch.
  ReplicaNode node(PickFreePort(), {{"127.0.0.1", PickFreePort()}},
                   /*rank=*/0, /*instances=*/2, /*fragments=*/2);
  ASSERT_FALSE(node.replica->is_master());

  CoordinatorState state;
  state.master_epoch = 1;
  state.next_config_id = 5;  // stale: the master got to id 5, then kept going
  state.believed_up = {true, true};
  state.fragments.resize(2);
  state.fragments[0].assignment = {0, 1, 4, FragmentMode::kNormal, 0};
  state.fragments[1].assignment = {1, 0, 4, FragmentMode::kNormal, 0};
  ControlPlane::Reply ack = node.replica->HandleControl(
      wire::Op::kCoordShadowSync, SyncBody(/*epoch=*/1, /*rank=*/1, state));
  ASSERT_TRUE(ack.status.ok());
  EXPECT_FALSE(node.replica->is_master());
  EXPECT_EQ(node.replica->epoch(), 1u);

  // The claimed master never syncs again; rank 0's staggered deadline fires
  // and the shadow promotes itself with the replicated snapshot.
  ASSERT_TRUE(WaitFor([&] { return node.replica->is_master(); }));
  EXPECT_EQ(node.replica->epoch(), 2u);
  ASSERT_NE(node.replica->control(), nullptr);
  // The promotion re-publish carries (2 << 32) — the floor minus the mint
  // step — and every id minted afterwards exceeds it. Either way, strictly
  // above anything the epoch-1 master could have published.
  EXPECT_GE(node.replica->control()->coordinator().latest_id(),
            uint64_t{2} << 32);
  EXPECT_GT(node.replica->control()->coordinator().latest_id(),
            uint64_t{1} << 32);
}

/// One in-process geminid: CacheInstance + server + a CoordinatorLink that
/// carries the whole coordinator endpoint list.
struct InstanceNode {
  InstanceNode(InstanceId id,
               std::vector<CoordinatorLink::Endpoint> coordinators) {
    instance = std::make_unique<CacheInstance>(id, &SystemClock::Global());
    InstanceRegistry registry;
    EXPECT_TRUE(registry.Add(instance.get(), InstanceOptions{}).ok());
    server = std::make_unique<TransportServer>(std::move(registry),
                                               TransportServer::Options{});
    EXPECT_TRUE(server->Start().ok());
    CoordinatorLink::Options lopts;
    lopts.coordinators = std::move(coordinators);
    lopts.instance = id;
    lopts.advertise_host = "127.0.0.1";
    lopts.advertise_port = server->port();
    lopts.heartbeat_interval = kBeat;
    lopts.on_config_id = [this](ConfigId latest) {
      instance->ObserveConfigId(latest);
    };
    link = std::make_unique<CoordinatorLink>(std::move(lopts));
    link->Start();
  }

  ~InstanceNode() {
    link->Stop();
    server->Stop();
  }

  std::unique_ptr<CacheInstance> instance;
  std::unique_ptr<TransportServer> server;
  std::unique_ptr<CoordinatorLink> link;
};

TEST(CoordinatorReplicaTest, ElectionFailoverAndDoubleFailover) {
  auto group = StartGroup(/*members=*/3, /*instances=*/2, /*fragments=*/2);

  // Rank 0 has the shortest staggered election delay: it must win the boot
  // election, and its sync beats must keep ranks 1 and 2 shadows.
  ASSERT_TRUE(WaitFor([&] { return group[0]->replica->is_master(); }));
  EXPECT_EQ(group[0]->replica->epoch(), 1u);
  EXPECT_FALSE(group[1]->replica->is_master());
  EXPECT_FALSE(group[2]->replica->is_master());

  std::vector<CoordinatorLink::Endpoint> link_eps;
  std::vector<RemoteCoordinator::Endpoint> client_eps;
  for (const auto& node : group) {
    link_eps.push_back({"127.0.0.1", node->server->port()});
    client_eps.push_back({"127.0.0.1", node->server->port()});
  }
  InstanceNode i0(0, link_eps), i1(1, link_eps);
  ASSERT_TRUE(WaitFor([&] {
    return i0.link->registered() && i1.link->registered();
  }));

  RemoteCoordinator::Options ropts;
  ropts.rewatch_interval = 0;
  RemoteCoordinator remote(client_eps, ropts);
  ASSERT_TRUE(WaitFor([&] { return remote.Refresh().ok(); }));
  const ConfigId epoch1_id = remote.latest_id();
  EXPECT_LT(epoch1_id, uint64_t{1} << 32);  // first master: unfenced ids

  // ---- Failover 1: the master dies; rank 1 must promote. ----
  group[0]->Kill();
  ASSERT_TRUE(WaitFor([&] { return group[1]->replica->is_master(); }));
  EXPECT_GE(group[1]->replica->epoch(), 2u);
  EXPECT_FALSE(group[2]->replica->is_master());

  // Clients redial through the endpoint list and land on the new master;
  // everything it publishes is fenced above the old master's ids.
  ASSERT_TRUE(WaitFor([&] {
    return remote.Refresh().ok() && remote.latest_id() > (uint64_t{1} << 32);
  }));
  EXPECT_GE(remote.stats().endpoint_switches, 1u);

  // Geminid links re-register with the promoted master (its registration
  // grace window expects exactly that).
  ASSERT_TRUE(WaitFor([&] {
    return i0.link->registered() && i1.link->registered() &&
           i0.link->endpoint_switches() >= 1;
  }));

  // ---- Failover 2: the promoted master dies too. ----
  group[1]->Kill();
  ASSERT_TRUE(WaitFor([&] { return group[2]->replica->is_master(); }));
  EXPECT_GE(group[2]->replica->epoch(), 3u);
  ASSERT_TRUE(WaitFor([&] {
    return remote.Refresh().ok() && remote.latest_id() > (uint64_t{2} << 32);
  }));
  ASSERT_TRUE(WaitFor([&] {
    return i0.link->registered() && i1.link->registered();
  }));
}

TEST(CoordinatorReplicaTest, RemoteCoordinatorSkipsDeadEndpoint) {
  ReplicaNode solo(PickFreePort(), /*peers=*/{}, /*rank=*/0,
                   /*instances=*/1, /*fragments=*/1);
  RemoteCoordinator::Options ropts;
  ropts.rewatch_interval = 0;
  // First endpoint is dead; the client must rotate and succeed anyway.
  RemoteCoordinator remote({{"127.0.0.1", PickFreePort()},
                            {"127.0.0.1", solo.server->port()}},
                           ropts);
  ASSERT_TRUE(WaitFor([&] { return remote.Refresh().ok(); }));
  EXPECT_EQ(remote.active_endpoint(), 1u);
  EXPECT_GE(remote.stats().endpoint_switches, 1u);
}

}  // namespace
}  // namespace gemini
