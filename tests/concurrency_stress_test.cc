// Real-thread stress tests: the protocol objects are thread-safe (the DES is
// single-threaded, but production deployments are not). These tests hammer
// the instance, lease table, and full client stack from multiple threads on
// the system clock and assert freedom from crashes, lost protocol
// invariants, and stale reads.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/client/gemini_client.h"
#include "src/common/rng.h"
#include "src/coordinator/coordinator.h"
#include "src/recovery/recovery_worker.h"
#include "src/store/data_store.h"

namespace gemini {
namespace {

TEST(ConcurrencyStress, InstanceDataPathUnderContention) {
  SystemClock clock;
  CacheInstance inst(0, &clock);
  inst.GrantFragmentLease(0, 1, clock.Now() + Seconds(3600), 1);
  constexpr int kThreads = 8;
  constexpr int kOpsPerThread = 5000;
  std::atomic<uint64_t> errors{0};

  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      OpContext ctx{1, 0};
      Rng rng(static_cast<uint64_t>(t) + 1);
      for (int i = 0; i < kOpsPerThread; ++i) {
        const std::string key = "k" + std::to_string(rng.NextBounded(64));
        switch (rng.NextBounded(5)) {
          case 0: {
            auto r = inst.IqGet(ctx, key);
            if (r.ok() && !r->value.has_value()) {
              (void)inst.IqSet(ctx, key, CacheValue::OfSize(32), r->i_token);
            }
            break;
          }
          case 1: {
            auto q = inst.Qareg(ctx, key);
            if (q.ok()) (void)inst.Dar(ctx, key, *q);
            break;
          }
          case 2:
            (void)inst.Get(ctx, key);
            break;
          case 3:
            (void)inst.Set(ctx, key, CacheValue::OfSize(16));
            break;
          default: {
            auto s = inst.ISet(ctx, key);
            if (s.ok()) (void)inst.IDelete(ctx, key, *s);
            break;
          }
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(errors.load(), 0u);
  // The instance is still coherent: a simple round trip works.
  ASSERT_TRUE(inst.Set(OpContext{1, 0}, "final", CacheValue::OfSize(8)).ok());
  EXPECT_TRUE(inst.Get(OpContext{1, 0}, "final").ok());
}

TEST(ConcurrencyStress, EvictionUnderContentionKeepsAccounting) {
  SystemClock clock;
  CacheInstance::Options opts;
  opts.capacity_bytes = 4096;
  opts.per_entry_overhead = 0;
  CacheInstance inst(0, &clock, opts);
  inst.GrantFragmentLease(0, 1, clock.Now() + Seconds(3600), 1);

  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&, t] {
      OpContext ctx{1, 0};
      for (int i = 0; i < 20000; ++i) {
        (void)inst.Set(ctx, "k" + std::to_string((t * 20000 + i) % 997),
                       CacheValue::OfSize(64));
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto s = inst.stats();
  EXPECT_LE(s.used_bytes, 4096u + 64 + 16);  // capacity + one MRU overshoot
  EXPECT_GT(s.evictions, 0u);
}

TEST(ConcurrencyStress, FullStackReadersWritersAndFailover) {
  SystemClock clock;
  DataStore store;
  std::vector<std::unique_ptr<CacheInstance>> owned;
  std::vector<CacheInstance*> raw;
  for (InstanceId i = 0; i < 3; ++i) {
    owned.push_back(std::make_unique<CacheInstance>(i, &clock));
    raw.push_back(owned.back().get());
  }
  Coordinator coordinator(&clock, raw, 12);
  for (int i = 0; i < 64; ++i) {
    store.Put("user" + std::to_string(i), "v");
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> stale{0}, ops{0};
  // Threaded read-after-write oracle. The store's version rises at the
  // store update, which happens *before* the write is acknowledged, so the
  // raw store version over-approximates the acked floor for racing reads.
  // Track acknowledged versions explicitly and serialize writers per key so
  // the post-ack sample is exact.
  std::array<std::mutex, 64> write_mu;
  std::array<std::atomic<Version>, 64> acked{};

  auto worker_fn = [&](uint64_t seed) {
    GeminiClient client(&clock, &coordinator, raw, &store);
    Session session;
    Rng rng(seed);
    while (!stop.load(std::memory_order_relaxed)) {
      const uint64_t idx = rng.NextBounded(64);
      const std::string key = "user" + std::to_string(idx);
      if (rng.NextBounded(10) < 7) {
        // A read must observe every write acknowledged before it began.
        const Version floor = acked[idx].load(std::memory_order_acquire);
        auto r = client.Read(session, key);
        if (r.ok() && r->value.version < floor) {
          stale.fetch_add(1);
        }
      } else {
        std::lock_guard<std::mutex> lock(write_mu[idx]);
        Status s = client.Write(session, key);
        if (s.ok()) {
          const Version v = store.VersionOf(key);
          Version expected = acked[idx].load(std::memory_order_relaxed);
          while (expected < v && !acked[idx].compare_exchange_weak(
                                     expected, v, std::memory_order_release)) {
          }
        }
      }
      ops.fetch_add(1);
    }
  };

  std::vector<std::thread> threads;
  for (int t = 0; t < 6; ++t) {
    threads.emplace_back(worker_fn, static_cast<uint64_t>(t) + 100);
  }
  // Failure churn in parallel with the load.
  std::thread churn([&] {
    for (int round = 0; round < 5; ++round) {
      coordinator.OnInstanceFailed(0);
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      coordinator.OnInstanceRecovered(0);
      RecoveryWorker worker(&clock, &coordinator, raw);
      Session s;
      for (int guard = 0; guard < 5000; ++guard) {
        if (!worker.has_work() &&
            !worker.TryAdoptFragment(s).has_value()) {
          break;
        }
        (void)worker.Step(s);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(20));
    }
    stop.store(true);
  });
  churn.join();
  for (auto& t : threads) t.join();

  EXPECT_GT(ops.load(), 1000u);
  EXPECT_EQ(stale.load(), 0u);
}

}  // namespace
}  // namespace gemini
