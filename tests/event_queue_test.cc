#include "src/sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace gemini {
namespace {

TEST(EventQueue, RunsEventsInTimeOrder) {
  VirtualClock clock;
  EventQueue q(&clock);
  std::vector<int> order;
  q.At(30, [&](Timestamp) { order.push_back(3); });
  q.At(10, [&](Timestamp) { order.push_back(1); });
  q.At(20, [&](Timestamp) { order.push_back(2); });
  q.RunUntil(100);
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(clock.Now(), 100);
}

TEST(EventQueue, TiesBreakByInsertionOrder) {
  VirtualClock clock;
  EventQueue q(&clock);
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    q.At(10, [&order, i](Timestamp) { order.push_back(i); });
  }
  q.RunUntil(10);
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventQueue, ClockAdvancesToEventTime) {
  VirtualClock clock;
  EventQueue q(&clock);
  Timestamp seen = -1;
  q.At(Seconds(5), [&](Timestamp t) {
    seen = t;
    EXPECT_EQ(clock.Now(), Seconds(5));
  });
  q.RunUntil(Seconds(10));
  EXPECT_EQ(seen, Seconds(5));
}

TEST(EventQueue, EventsPastUntilStayQueued) {
  VirtualClock clock;
  EventQueue q(&clock);
  int ran = 0;
  q.At(Seconds(5), [&](Timestamp) { ++ran; });
  q.At(Seconds(50), [&](Timestamp) { ++ran; });
  q.RunUntil(Seconds(10));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(q.size(), 1u);
  q.RunUntil(Seconds(60));
  EXPECT_EQ(ran, 2);
}

TEST(EventQueue, EventsMayScheduleEvents) {
  VirtualClock clock;
  EventQueue q(&clock);
  int count = 0;
  std::function<void(Timestamp)> tick = [&](Timestamp t) {
    if (++count < 10) q.At(t + Millis(1), tick);
  };
  q.At(0, tick);
  q.RunUntil(Seconds(1));
  EXPECT_EQ(count, 10);
  EXPECT_EQ(q.executed(), 10u);
}

TEST(EventQueue, PastTimestampsClampToNow) {
  VirtualClock clock;
  EventQueue q(&clock);
  Timestamp ran_at = -1;
  q.At(Seconds(1), [&](Timestamp t) {
    q.At(t - Seconds(10), [&](Timestamp t2) { ran_at = t2; });
  });
  q.RunUntil(Seconds(2));
  EXPECT_EQ(ran_at, Seconds(1));  // not in the past
}

TEST(EventQueue, AfterSchedulesRelative) {
  VirtualClock clock(Seconds(3));
  EventQueue q(&clock);
  Timestamp ran_at = -1;
  q.After(Millis(500), [&](Timestamp t) { ran_at = t; });
  q.RunUntil(Seconds(4));
  EXPECT_EQ(ran_at, Seconds(3) + Millis(500));
}

TEST(EventQueue, EventExactlyAtUntilRuns) {
  VirtualClock clock;
  EventQueue q(&clock);
  bool ran = false;
  q.At(Seconds(10), [&](Timestamp) { ran = true; });
  q.RunUntil(Seconds(10));
  EXPECT_TRUE(ran);
}

}  // namespace
}  // namespace gemini
