// Parser robustness: the three wire formats (configuration entries, dirty
// lists, snapshots) are parsed from cache-resident or on-disk bytes that an
// operator, an eviction, or a torn write can mangle. Deterministic
// fuzz-like sweeps assert "never crash, fail closed".
#include <gtest/gtest.h>

#include <string>

#include "src/cache/dirty_list.h"
#include "src/cache/snapshot.h"
#include "src/common/rng.h"
#include "src/coordinator/configuration.h"

namespace gemini {
namespace {

std::string RandomBytes(Rng& rng, size_t n) {
  std::string out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    out.push_back(static_cast<char>(rng.NextBounded(256)));
  }
  return out;
}

TEST(ParserRobustness, ConfigurationRandomBytes) {
  Rng rng(1);
  for (int i = 0; i < 2000; ++i) {
    const size_t len = rng.NextBounded(200);
    (void)Configuration::Deserialize(RandomBytes(rng, len));
  }
  SUCCEED();
}

TEST(ParserRobustness, ConfigurationMutatedValidPayload) {
  std::vector<FragmentAssignment> frags(4);
  for (FragmentId f = 0; f < 4; ++f) {
    frags[f] = {f, kInvalidInstance, 3, FragmentMode::kNormal, 1};
  }
  const std::string valid = Configuration(9, std::move(frags)).Serialize();
  Rng rng(2);
  for (int i = 0; i < 2000; ++i) {
    std::string mutated = valid;
    const size_t pos = rng.NextBounded(mutated.size());
    mutated[pos] = static_cast<char>(rng.NextBounded(256));
    auto parsed = Configuration::Deserialize(mutated);
    if (parsed.has_value()) {
      // If it still parses, it must be structurally sane.
      EXPECT_LE(parsed->num_fragments(), 1u << 31);
      for (const auto& a : parsed->fragments()) {
        EXPECT_LE(static_cast<uint8_t>(a.mode),
                  static_cast<uint8_t>(FragmentMode::kRecovery));
      }
    }
  }
}

TEST(ParserRobustness, DirtyListRandomBytes) {
  Rng rng(3);
  for (int i = 0; i < 2000; ++i) {
    const size_t len = rng.NextBounded(300);
    auto parsed = DirtyList::Parse(RandomBytes(rng, len));
    // Random bytes virtually never begin with the marker; when they do the
    // parse must still terminate with sane contents.
    if (parsed.has_value()) {
      EXPECT_LE(parsed->size(), len);
    }
  }
  SUCCEED();
}

TEST(ParserRobustness, DirtyListTruncations) {
  std::string payload = DirtyList::InitialPayload();
  for (int i = 0; i < 50; ++i) {
    payload += DirtyList::EncodeRecord("user" + std::to_string(i));
  }
  for (size_t cut = 0; cut <= payload.size(); ++cut) {
    auto parsed = DirtyList::Parse(std::string_view(payload).substr(0, cut));
    if (parsed.has_value()) {
      EXPECT_LE(parsed->size(), 50u);
    }
  }
}

TEST(ParserRobustness, SnapshotRandomBytes) {
  VirtualClock clock;
  Rng rng(4);
  for (int i = 0; i < 500; ++i) {
    CacheInstance scratch(0, &clock);
    const size_t len = rng.NextBounded(400);
    Status s = Snapshot::Load(scratch, RandomBytes(rng, len));
    EXPECT_FALSE(s.ok());  // random bytes never form a valid snapshot
    EXPECT_EQ(scratch.stats().entry_count, 0u);  // fail closed
  }
}

TEST(ParserRobustness, SnapshotEveryByteFlipped) {
  VirtualClock clock;
  CacheInstance inst(0, &clock);
  inst.GrantFragmentLease(0, 1, clock.Now() + Seconds(3600), 1);
  OpContext ctx{1, 0};
  for (int i = 0; i < 5; ++i) {
    (void)inst.Set(ctx, "k" + std::to_string(i), CacheValue::OfData("v"));
  }
  const std::string valid = Snapshot::Serialize(inst);
  for (size_t pos = 0; pos < valid.size(); ++pos) {
    std::string mutated = valid;
    mutated[pos] ^= 0x40;
    CacheInstance scratch(1, &clock);
    Status s = Snapshot::Load(scratch, mutated);
    // The checksum covers everything, so any single flip fails closed.
    EXPECT_FALSE(s.ok()) << "flip at " << pos;
    EXPECT_EQ(scratch.stats().entry_count, 0u);
  }
}

}  // namespace
}  // namespace gemini
