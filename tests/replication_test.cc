// Replicated-fragment tests (the paper's Section 7 future work): both
// eviction-synchronization schemes must keep all replicas holding exactly
// the same key set through arbitrary insert/read/delete/eviction sequences.
#include "src/replication/replicated_fragment.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <tuple>
#include <vector>

#include "src/common/rng.h"

namespace gemini {
namespace {

class ReplicationFixture {
 public:
  // capacity_entries = 0 means unbounded.
  ReplicationFixture(ReplicationScheme scheme, size_t replicas,
                     uint64_t capacity_entries) {
    CacheInstance::Options opts;
    opts.per_entry_overhead = 0;
    // Keys are "k<i>" (<= 8 bytes) and values are charged 10 bytes.
    opts.capacity_bytes = capacity_entries * 18;
    for (size_t i = 0; i < replicas; ++i) {
      CacheInstance::Options o = opts;
      if (scheme == ReplicationScheme::kEvictionBroadcast && i > 0) {
        // Broadcast scheme: slaves follow the master's decisions, so they
        // must not evict on their own.
        o.capacity_bytes = 0;
      }
      instances_.push_back(std::make_unique<CacheInstance>(
          static_cast<InstanceId>(i), &clock_, o));
      instances_.back()->GrantFragmentLease(0, 1, clock_.Now() + Seconds(3600),
                                            1);
      raw_.push_back(instances_.back().get());
    }
    fragment_ = std::make_unique<ReplicatedFragment>(0, 1, raw_, scheme);
  }

  ReplicatedFragment& fragment() { return *fragment_; }

  static std::string Key(int i) { return "k" + std::to_string(i); }

  std::vector<std::string> Universe(int n) {
    std::vector<std::string> keys;
    keys.reserve(n);
    for (int i = 0; i < n; ++i) keys.push_back(Key(i));
    return keys;
  }

 private:
  VirtualClock clock_;
  std::vector<std::unique_ptr<CacheInstance>> instances_;
  std::vector<CacheInstance*> raw_;
  std::unique_ptr<ReplicatedFragment> fragment_;
};

class ReplicationSchemeTest
    : public ::testing::TestWithParam<ReplicationScheme> {};

TEST_P(ReplicationSchemeTest, InsertReplicatesToAllReplicas) {
  ReplicationFixture fx(GetParam(), 3, 0);
  Session s;
  ASSERT_TRUE(fx.fragment().Insert(s, "k1", CacheValue::OfSize(10)).ok());
  EXPECT_TRUE(fx.fragment().ReplicasIdentical(fx.Universe(4)));
  auto v = fx.fragment().Get(s, "k1");
  EXPECT_TRUE(v.ok());
}

TEST_P(ReplicationSchemeTest, DeleteRemovesEverywhere) {
  ReplicationFixture fx(GetParam(), 3, 0);
  Session s;
  ASSERT_TRUE(fx.fragment().Insert(s, "k1", CacheValue::OfSize(10)).ok());
  ASSERT_TRUE(fx.fragment().Delete(s, "k1").ok());
  EXPECT_TRUE(fx.fragment().ReplicasIdentical(fx.Universe(4)));
  EXPECT_EQ(fx.fragment().Get(s, "k1").code(), Code::kNotFound);
}

TEST_P(ReplicationSchemeTest, EvictionsStayIdentical) {
  // Capacity of 4 entries; insert 10 keys: evictions must apply to every
  // replica identically.
  ReplicationFixture fx(GetParam(), 3, 4);
  Session s;
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(fx.fragment().Insert(s, ReplicationFixture::Key(i),
                                     CacheValue::OfSize(10))
                    .ok());
    EXPECT_TRUE(fx.fragment().ReplicasIdentical(fx.Universe(10)))
        << "after insert " << i;
  }
  // Only ~4 keys survive, and it's the most recent ones on every replica.
  EXPECT_TRUE(fx.fragment().Get(s, ReplicationFixture::Key(9)).ok());
  EXPECT_EQ(fx.fragment().Get(s, ReplicationFixture::Key(0)).code(),
            Code::kNotFound);
}

TEST_P(ReplicationSchemeTest, RandomizedSequencesKeepReplicasIdentical) {
  ReplicationFixture fx(GetParam(), 3, 16);
  Session s;
  Rng rng(GetParam() == ReplicationScheme::kEvictionBroadcast ? 1 : 2);
  const int kKeys = 64;
  for (int step = 0; step < 2000; ++step) {
    const std::string key =
        ReplicationFixture::Key(static_cast<int>(rng.NextBounded(kKeys)));
    const uint64_t dice = rng.NextBounded(10);
    if (dice < 5) {
      auto v = fx.fragment().Get(s, key);
      if (!v.ok()) {
        ASSERT_TRUE(fx.fragment().Insert(s, key, CacheValue::OfSize(10)).ok());
      }
    } else if (dice < 8) {
      ASSERT_TRUE(fx.fragment().Insert(s, key, CacheValue::OfSize(10)).ok());
    } else {
      ASSERT_TRUE(fx.fragment().Delete(s, key).ok());
    }
    if (step % 100 == 0) {
      ASSERT_TRUE(fx.fragment().ReplicasIdentical(fx.Universe(kKeys)))
          << "step " << step;
    }
  }
  EXPECT_TRUE(fx.fragment().ReplicasIdentical(fx.Universe(kKeys)));
}

INSTANTIATE_TEST_SUITE_P(Schemes, ReplicationSchemeTest,
                         ::testing::Values(
                             ReplicationScheme::kEvictionBroadcast,
                             ReplicationScheme::kRequestForwarding));

TEST(ReplicationCosts, ForwardingSendsMoreMessagesOnReadHeavyLoad) {
  // The trade-off the paper's Section 7 asks about: request forwarding
  // replicates every reference; eviction broadcast only inserts/evictions.
  ReplicationFixture bc(ReplicationScheme::kEvictionBroadcast, 3, 0);
  ReplicationFixture fw(ReplicationScheme::kRequestForwarding, 3, 0);
  Session s;
  for (int i = 0; i < 10; ++i) {
    (void)bc.fragment().Insert(s, ReplicationFixture::Key(i),
                               CacheValue::OfSize(10));
    (void)fw.fragment().Insert(s, ReplicationFixture::Key(i),
                               CacheValue::OfSize(10));
  }
  for (int r = 0; r < 500; ++r) {
    (void)bc.fragment().Get(s, ReplicationFixture::Key(r % 10));
    (void)fw.fragment().Get(s, ReplicationFixture::Key(r % 10));
  }
  EXPECT_GT(fw.fragment().stats().replication_messages,
            bc.fragment().stats().replication_messages * 5);
}

TEST(ReplicationCosts, SingleReplicaDegeneratesToPlainCache) {
  ReplicationFixture fx(ReplicationScheme::kEvictionBroadcast, 1, 0);
  Session s;
  ASSERT_TRUE(fx.fragment().Insert(s, "k1", CacheValue::OfSize(10)).ok());
  EXPECT_TRUE(fx.fragment().Get(s, "k1").ok());
  EXPECT_EQ(fx.fragment().stats().replication_messages, 0u);
}

}  // namespace
}  // namespace gemini
