// DataStore: the backing data store behind the caching layer (the paper's
// MongoDB document store).
//
// Under the write-around policy the cache layer only ever issues two
// operations against the store: Query(k) — compute the value a cache entry
// would hold — and Update(k) — apply an application write. The store is the
// system of record, so it versions every key: a write increments the key's
// version, and a read returns the payload together with the version it
// observed. Versions are the ground truth the consistency checker compares
// cache results against; the Gemini protocol itself never reads them.
//
// Payload handling mirrors CacheValue: a record may carry real bytes or just
// a declared size (the simulator models Facebook's 329-byte values without
// materializing them).
//
// Thread-safe.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/common/types.h"

namespace gemini {

struct StoreRecord {
  std::string data;
  uint32_t size_bytes = 0;
  Version version = 0;
  /// Highest version handed out by ReserveVersion (>= version). The gap
  /// between `reserved` and `version` is the write-back flush backlog.
  Version reserved = 0;
};

class DataStore {
 public:
  DataStore() = default;

  /// Bulk-load `n` synthetic records of `record_bytes` each, keyed by the
  /// provided key-maker. Used by the workload generators to set up the
  /// paper's "10 million record" databases without materializing payloads.
  template <typename KeyFn>
  void LoadSynthetic(uint64_t n, uint32_t record_bytes, KeyFn&& key_of) {
    LoadSyntheticSized(n, std::forward<KeyFn>(key_of),
                       [record_bytes](uint64_t) { return record_bytes; });
  }

  /// As LoadSynthetic, but with a per-record size function (the Facebook
  /// workload draws value sizes from a Generalized Pareto model).
  template <typename KeyFn, typename SizeFn>
  void LoadSyntheticSized(uint64_t n, KeyFn&& key_of, SizeFn&& size_of) {
    std::lock_guard<std::mutex> lock(mu_);
    records_.reserve(records_.size() + n);
    for (uint64_t i = 0; i < n; ++i) {
      StoreRecord rec;
      rec.size_bytes = static_cast<uint32_t>(size_of(i));
      rec.version = 1;
      records_.emplace(key_of(i), std::move(rec));
    }
  }

  /// Models the store's per-operation round trip: the system of record is a
  /// database across a network hop, not an in-process map, and the cost
  /// asymmetry between a cache hit and a store fetch is what makes cache
  /// warmth worth preserving. When nonzero, Query/Update/ReserveVersion/
  /// CommitReserved each sleep this long (outside the lock — concurrent
  /// callers overlap, as requests to a real store would) before touching
  /// the records. Off by default; process-level harnesses and benches
  /// opt in. Bulk loads (Put, LoadSynthetic*) are never delayed.
  void set_synthetic_latency(Duration latency) {
    synthetic_latency_us_.store(latency, std::memory_order_relaxed);
  }

  /// Inserts or replaces a record with real bytes (examples / tests).
  void Put(std::string_view key, std::string data);

  /// Reads a record; kNotFound if the key was never written.
  Result<StoreRecord> Query(std::string_view key) const;

  /// Applies an application write: bumps the version; if `data` is provided
  /// the payload is replaced, otherwise only the version moves (synthetic
  /// workloads care about versions, not bytes). Returns the new version.
  Version Update(std::string_view key,
                 std::optional<std::string> data = std::nullopt);

  /// Update-returning: applies the write and returns the post-update record
  /// (the write-through client installs it in the cache).
  StoreRecord UpdateAndGet(std::string_view key,
                           std::optional<std::string> data = std::nullopt);

  /// Write-back support: reserves the next version for `key` without
  /// touching the payload (the metadata op a write-back write performs
  /// synchronously; the data follows via CommitReserved).
  Version ReserveVersion(std::string_view key);

  /// Applies a previously reserved write. Out-of-order commits are handled:
  /// the payload lands only if `version` is newer than what is committed.
  void CommitReserved(std::string_view key, Version version,
                      std::optional<std::string> data);

  /// Latest *acknowledged* version (committed or reserved): the version a
  /// read-after-write-consistent read must observe.
  [[nodiscard]] Version VersionOf(std::string_view key) const;

  /// Latest *committed* version (flushed to the store's own media).
  [[nodiscard]] Version CommittedVersionOf(std::string_view key) const;

  [[nodiscard]] uint64_t size() const;

  struct Stats {
    uint64_t queries = 0;
    uint64_t updates = 0;
  };
  [[nodiscard]] Stats stats() const;
  void ResetCounters();

 private:
  /// Sleeps for the configured synthetic round trip; called by every
  /// store operation before it takes mu_.
  void SimulateLatency() const;

  mutable std::mutex mu_;
  std::unordered_map<std::string, StoreRecord> records_;
  mutable Stats counters_;
  std::atomic<Duration> synthetic_latency_us_{0};
};

}  // namespace gemini
