#include "src/store/data_store.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace gemini {

void DataStore::SimulateLatency() const {
  const Duration us = synthetic_latency_us_.load(std::memory_order_relaxed);
  if (us > 0) std::this_thread::sleep_for(std::chrono::microseconds(us));
}

void DataStore::Put(std::string_view key, std::string data) {
  std::lock_guard<std::mutex> lock(mu_);
  auto& rec = records_[std::string(key)];
  rec.size_bytes = static_cast<uint32_t>(data.size());
  rec.data = std::move(data);
  ++rec.version;
}

Result<StoreRecord> DataStore::Query(std::string_view key) const {
  SimulateLatency();
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.queries;
  auto it = records_.find(std::string(key));
  if (it == records_.end()) {
    return Status(Code::kNotFound);
  }
  return it->second;
}

Version DataStore::Update(std::string_view key,
                          std::optional<std::string> data) {
  SimulateLatency();
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.updates;
  auto& rec = records_[std::string(key)];
  if (data.has_value()) {
    rec.size_bytes = static_cast<uint32_t>(data->size());
    rec.data = std::move(*data);
  }
  rec.version = std::max(rec.version, rec.reserved) + 1;
  rec.reserved = rec.version;
  return rec.version;
}

Version DataStore::ReserveVersion(std::string_view key) {
  SimulateLatency();
  std::lock_guard<std::mutex> lock(mu_);
  auto& rec = records_[std::string(key)];
  rec.reserved = std::max(rec.reserved, rec.version) + 1;
  return rec.reserved;
}

void DataStore::CommitReserved(std::string_view key, Version version,
                               std::optional<std::string> data) {
  SimulateLatency();
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.updates;
  auto& rec = records_[std::string(key)];
  if (version > rec.version) {
    rec.version = version;
    if (data.has_value()) {
      rec.size_bytes = static_cast<uint32_t>(data->size());
      rec.data = std::move(*data);
    }
  }
}

Version DataStore::CommittedVersionOf(std::string_view key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = records_.find(std::string(key));
  return it == records_.end() ? 0 : it->second.version;
}

StoreRecord DataStore::UpdateAndGet(std::string_view key,
                                    std::optional<std::string> data) {
  SimulateLatency();
  std::lock_guard<std::mutex> lock(mu_);
  ++counters_.updates;
  auto& rec = records_[std::string(key)];
  if (data.has_value()) {
    rec.size_bytes = static_cast<uint32_t>(data->size());
    rec.data = std::move(*data);
  }
  rec.version = std::max(rec.version, rec.reserved) + 1;
  rec.reserved = rec.version;
  return rec;
}

Version DataStore::VersionOf(std::string_view key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = records_.find(std::string(key));
  if (it == records_.end()) return 0;
  return std::max(it->second.version, it->second.reserved);
}

uint64_t DataStore::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return records_.size();
}

DataStore::Stats DataStore::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return counters_;
}

void DataStore::ResetCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_ = Stats{};
}

}  // namespace gemini
