// Inhibit (I), Quarantine (Q), and Red leases (Section 2.3).
//
// Gemini builds read-after-write consistency out of three lease kinds, all
// granted by a cache instance on individual keys:
//
//  - An *I lease* is granted to a read that observes a cache miss. It inhibits
//    other concurrent misses on the same key (they back off — this also
//    prevents the thundering-herd of identical data store queries) and it must
//    still be valid when the reader inserts the computed value; otherwise the
//    insert is ignored.
//  - A *Q lease* is acquired by a write before deleting a cache entry
//    (write-around). Acquiring Q voids any existing I lease on the key, which
//    kills the race where a slow reader would insert a stale value after the
//    write completes. Q leases are mutually compatible under write-around
//    because deletes commute. If a Q lease expires without being released
//    (writer crashed between updating the data store and deleting the entry),
//    the instance deletes the associated entry — the conservative action.
//  - A *Redlease* provides mutual exclusion among recovery workers on one
//    dirty list. Redleases live in a separate namespace: the paper notes they
//    can never collide with I/Q leases because they protect dirty-list
//    entries, which clients never iqget/qareg.
//
// Compatibility (Table 2):           existing I      existing Q
//          requested I               back off        back off
//          requested Q               void I, grant   grant
//
// Lifetimes are caller-supplied; the paper uses milliseconds for IQ/Red
// leases and seconds-to-minutes for fragment leases (which live in the
// coordinator, not here).
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/common/types.h"

namespace gemini {

/// Outcome of expiring leases on a key: the instance must delete the cache
/// entry if a Q lease lapsed (writer died mid-session).
struct ExpiryAction {
  bool delete_entry = false;
};

class LeaseTable {
 public:
  struct Options {
    Duration i_lease_lifetime = Millis(100);
    Duration q_lease_lifetime = Millis(100);
    Duration red_lease_lifetime = Millis(500);
  };

  explicit LeaseTable(const Clock* clock) : LeaseTable(clock, Options()) {}
  LeaseTable(const Clock* clock, Options options);

  /// Grants an I lease on `key`, or kBackoff if any I or Q lease is live.
  Result<LeaseToken> AcquireI(std::string_view key);

  /// True iff `token` is a live I lease on `key`. (Used by iqset to decide
  /// whether an insert is still permitted.)
  bool CheckI(std::string_view key, LeaseToken token);

  /// Releases an I lease if it is still the live one; idempotent.
  void ReleaseI(std::string_view key, LeaseToken token);

  /// Grants a Q lease, voiding any live I lease on the key.
  LeaseToken AcquireQ(std::string_view key);

  /// True iff `token` is a live Q lease on `key`.
  bool CheckQ(std::string_view key, LeaseToken token);

  /// Releases a Q lease; idempotent.
  void ReleaseQ(std::string_view key, LeaseToken token);

  /// Grants a Redlease, or kBackoff while another worker holds one.
  Result<LeaseToken> AcquireRed(std::string_view key);
  bool CheckRed(std::string_view key, LeaseToken token);
  void ReleaseRed(std::string_view key, LeaseToken token);

  /// Extends a held Redlease's lifetime; false if it already expired or was
  /// taken over (the worker must abandon the fragment).
  bool RenewRed(std::string_view key, LeaseToken token);

  /// Drops expired leases on `key` and reports whether the instance must
  /// delete the key's entry (expired Q). Called by the instance before any
  /// operation that touches `key`.
  ExpiryAction ExpireKey(std::string_view key);

  /// Drops all leases (instance restarted as a fresh process: leases are
  /// volatile state even when the cache payload is persistent).
  void Clear();

  /// Keys with an outstanding Q lease (live or expired-unreleased). A
  /// persistent cache recovering from a crash deletes these entries: the
  /// writer may have updated the data store without completing its
  /// delete-and-release, so the entries are potentially stale. This is the
  /// crash-spanning analogue of the Q-expiry rule in Section 2.3.
  std::vector<std::string> KeysWithQLeases();

  /// Number of keys with any live lease (diagnostics / tests).
  size_t LiveKeyCount();

  const Options& options() const { return options_; }

 private:
  struct QLease {
    LeaseToken token;
    Timestamp expiry;
  };
  struct KeyLeases {
    LeaseToken i_token = kNoLease;
    Timestamp i_expiry = 0;
    std::vector<QLease> qs;
    // Set when a Q lease expired un-released; consumed by ExpireKey.
    bool pending_delete = false;
  };
  struct RedLease {
    LeaseToken token;
    Timestamp expiry;
  };

  // Drops expired leases in-place; records pending_delete on Q expiry.
  void ExpireLocked(KeyLeases& kl, Timestamp now);
  // Erases the map slot if no lease remains.
  void MaybeEraseLocked(const std::string& key, KeyLeases& kl);

  const Clock* clock_;
  Options options_;
  std::mutex mu_;
  LeaseToken next_token_ = 1;
  std::unordered_map<std::string, KeyLeases> keys_;
  std::unordered_map<std::string, RedLease> red_;
};

}  // namespace gemini
