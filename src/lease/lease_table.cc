#include "src/lease/lease_table.h"

#include <algorithm>

namespace gemini {

LeaseTable::LeaseTable(const Clock* clock, Options options)
    : clock_(clock), options_(options) {}

void LeaseTable::ExpireLocked(KeyLeases& kl, Timestamp now) {
  if (kl.i_token != kNoLease && kl.i_expiry <= now) {
    kl.i_token = kNoLease;
  }
  auto expired = [now](const QLease& q) { return q.expiry <= now; };
  if (std::any_of(kl.qs.begin(), kl.qs.end(), expired)) {
    // A writer died between updating the data store and deleting the entry;
    // the entry may be stale, so the instance must delete it (Section 2.3).
    kl.pending_delete = true;
    kl.qs.erase(std::remove_if(kl.qs.begin(), kl.qs.end(), expired),
                kl.qs.end());
  }
}

void LeaseTable::MaybeEraseLocked(const std::string& key, KeyLeases& kl) {
  if (kl.i_token == kNoLease && kl.qs.empty() && !kl.pending_delete) {
    keys_.erase(key);
  }
}

Result<LeaseToken> LeaseTable::AcquireI(std::string_view key) {
  const Timestamp now = clock_->Now();
  std::lock_guard<std::mutex> lock(mu_);
  auto& kl = keys_[std::string(key)];
  ExpireLocked(kl, now);
  if (kl.i_token != kNoLease || !kl.qs.empty()) {
    return Status(Code::kBackoff, "I/Q lease held");
  }
  kl.i_token = next_token_++;
  kl.i_expiry = now + options_.i_lease_lifetime;
  return kl.i_token;
}

bool LeaseTable::CheckI(std::string_view key, LeaseToken token) {
  if (token == kNoLease) return false;
  const Timestamp now = clock_->Now();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = keys_.find(std::string(key));
  if (it == keys_.end()) return false;
  ExpireLocked(it->second, now);
  return it->second.i_token == token;
}

void LeaseTable::ReleaseI(std::string_view key, LeaseToken token) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = keys_.find(std::string(key));
  if (it == keys_.end()) return;
  if (it->second.i_token == token) {
    it->second.i_token = kNoLease;
    MaybeEraseLocked(it->first, it->second);
  }
}

LeaseToken LeaseTable::AcquireQ(std::string_view key) {
  const Timestamp now = clock_->Now();
  std::lock_guard<std::mutex> lock(mu_);
  auto& kl = keys_[std::string(key)];
  ExpireLocked(kl, now);
  // Q voids an existing I lease (Table 2): the inhibited reader's eventual
  // insert will find its token gone and be ignored.
  kl.i_token = kNoLease;
  const LeaseToken token = next_token_++;
  kl.qs.push_back({token, now + options_.q_lease_lifetime});
  return token;
}

bool LeaseTable::CheckQ(std::string_view key, LeaseToken token) {
  if (token == kNoLease) return false;
  const Timestamp now = clock_->Now();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = keys_.find(std::string(key));
  if (it == keys_.end()) return false;
  ExpireLocked(it->second, now);
  const auto& qs = it->second.qs;
  return std::any_of(qs.begin(), qs.end(),
                     [token](const QLease& q) { return q.token == token; });
}

void LeaseTable::ReleaseQ(std::string_view key, LeaseToken token) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = keys_.find(std::string(key));
  if (it == keys_.end()) return;
  auto& qs = it->second.qs;
  qs.erase(std::remove_if(qs.begin(), qs.end(),
                          [token](const QLease& q) { return q.token == token; }),
           qs.end());
  MaybeEraseLocked(it->first, it->second);
}

Result<LeaseToken> LeaseTable::AcquireRed(std::string_view key) {
  const Timestamp now = clock_->Now();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = red_.find(std::string(key));
  if (it != red_.end() && it->second.expiry > now) {
    return Status(Code::kBackoff, "Redlease held");
  }
  const LeaseToken token = next_token_++;
  red_[std::string(key)] = {token, now + options_.red_lease_lifetime};
  return token;
}

bool LeaseTable::CheckRed(std::string_view key, LeaseToken token) {
  if (token == kNoLease) return false;
  const Timestamp now = clock_->Now();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = red_.find(std::string(key));
  return it != red_.end() && it->second.token == token &&
         it->second.expiry > now;
}

bool LeaseTable::RenewRed(std::string_view key, LeaseToken token) {
  const Timestamp now = clock_->Now();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = red_.find(std::string(key));
  if (it == red_.end() || it->second.token != token ||
      it->second.expiry <= now) {
    return false;
  }
  it->second.expiry = now + options_.red_lease_lifetime;
  return true;
}

void LeaseTable::ReleaseRed(std::string_view key, LeaseToken token) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = red_.find(std::string(key));
  if (it != red_.end() && it->second.token == token) {
    red_.erase(it);
  }
}

ExpiryAction LeaseTable::ExpireKey(std::string_view key) {
  const Timestamp now = clock_->Now();
  std::lock_guard<std::mutex> lock(mu_);
  auto it = keys_.find(std::string(key));
  if (it == keys_.end()) return {};
  ExpireLocked(it->second, now);
  ExpiryAction action;
  if (it->second.pending_delete) {
    action.delete_entry = true;
    it->second.pending_delete = false;
  }
  MaybeEraseLocked(it->first, it->second);
  return action;
}

std::vector<std::string> LeaseTable::KeysWithQLeases() {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::string> out;
  for (const auto& [key, kl] : keys_) {
    if (!kl.qs.empty() || kl.pending_delete) out.push_back(key);
  }
  return out;
}

void LeaseTable::Clear() {
  std::lock_guard<std::mutex> lock(mu_);
  keys_.clear();
  red_.clear();
}

size_t LeaseTable::LiveKeyCount() {
  const Timestamp now = clock_->Now();
  std::lock_guard<std::mutex> lock(mu_);
  size_t count = 0;
  for (auto& [key, kl] : keys_) {
    ExpireLocked(kl, now);
    if (kl.i_token != kNoLease || !kl.qs.empty()) ++count;
  }
  return count;
}

}  // namespace gemini
