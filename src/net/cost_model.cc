#include "src/net/cost_model.h"

#include <algorithm>

namespace gemini {

Timestamp QueueingResource::Submit(Timestamp now, Duration service) {
  // Drain committed work at rate k. Out-of-order submissions (a session
  // step booked in the future, then an earlier arrival processed later)
  // simply skip the drain; the job itself always starts from its own
  // arrival time and pays the currently committed backlog.
  if (now > last_update_) {
    const Duration drained =
        (now - last_update_) * static_cast<Duration>(servers_);
    backlog_ = std::max<Duration>(0, backlog_ - drained);
    last_update_ = now;
  }
  const Duration wait = backlog_ / static_cast<Duration>(servers_);
  backlog_ += service;
  return now + wait + service;
}

void QueueingResource::Reset() {
  last_update_ = 0;
  backlog_ = 0;
}

CostModel::CostModel(const NetParams& params, size_t num_instances)
    : params_(params), store_(params.store_servers) {
  instances_.reserve(num_instances);
  for (size_t i = 0; i < num_instances; ++i) {
    instances_.emplace_back(params.instance_servers);
  }
}

void CostModel::Reset() {
  for (auto& r : instances_) r.Reset();
  store_.Reset();
}

void Session::BillCacheOp(InstanceId id) {
  ++counts_.cache_ops;
  if (model_ == nullptr) return;
  const auto& p = model_->params();
  const Timestamp arrival = cursor_ + p.client_instance_rtt / 2;
  const Timestamp done = model_->instance(id).Submit(arrival, p.instance_service);
  cursor_ = done + p.client_instance_rtt / 2;
}

void Session::BillStoreQuery() {
  ++counts_.store_queries;
  if (model_ == nullptr) return;
  const auto& p = model_->params();
  const Timestamp arrival = cursor_ + p.client_store_rtt / 2;
  const Timestamp done = model_->store().Submit(arrival, p.store_query_service);
  cursor_ = done + p.client_store_rtt / 2;
}

void Session::BillStoreUpdate() {
  ++counts_.store_updates;
  if (model_ == nullptr) return;
  const auto& p = model_->params();
  const Timestamp arrival = cursor_ + p.client_store_rtt / 2;
  const Timestamp done =
      model_->store().Submit(arrival, p.store_update_service);
  cursor_ = done + p.client_store_rtt / 2;
}

void Session::BillStoreRoundTrip() {
  ++counts_.store_queries;
  if (model_ == nullptr) return;
  cursor_ += model_->params().client_store_rtt;
}

void Session::BillCoordinatorOp() {
  ++counts_.coordinator_ops;
  if (model_ == nullptr) return;
  cursor_ += model_->params().client_coordinator_rtt;
}

void Session::BillBackoff(Duration d) {
  ++counts_.backoffs;
  if (model_ == nullptr) return;
  cursor_ += d;
}

}  // namespace gemini
