// Network & service-time model.
//
// The paper's testbed is an 11-node Emulab cluster on 1 Gbps Ethernet
// (Section 5.2). This module replaces the physical network with an explicit
// cost model so that the discrete-event harness can replay multi-hundred-
// second experiments deterministically:
//
//  - Every remote touch (client->instance, client->store, client->coordinator)
//    costs a round-trip time.
//  - Every server (cache instance, data store) is a k-server queue with a
//    per-operation service time; waiting in that queue is what separates the
//    paper's low-load (40 YCSB threads) and high-load (200 threads) regimes
//    and what bounds how fast VolatileCache can re-materialize a cold
//    instance from the store.
//
// A Session accumulates the virtual-time cost of one application operation
// (the paper's "session": one cache entry + one data store transaction).
// Protocol code (client, recovery worker) bills each step as it performs it;
// in real-time deployments the session is simply null and wall-clock time
// elapses instead.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/clock.h"
#include "src/common/types.h"

namespace gemini {

/// A k-server queue modelled as a fluid backlog: Submit() adds one job of
/// length `service`, charges it the backlog already committed (divided over
/// the k servers), and returns its completion time. Committed work drains at
/// rate k. The fluid form is deliberately insensitive to submission order:
/// a session that books a step far in the future (e.g. the cache insert
/// after a slow store trip) must not block an earlier arrival that the
/// event loop merely processes later.
/// Not thread-safe (the DES is single-threaded); reset between runs.
class QueueingResource {
 public:
  explicit QueueingResource(int servers = 1) : servers_(servers) {}

  Timestamp Submit(Timestamp now, Duration service);

  void Reset();
  [[nodiscard]] int servers() const { return servers_; }
  /// Committed-but-undrained work at the last submission (diagnostics).
  [[nodiscard]] Duration backlog() const { return backlog_; }

 private:
  int servers_;
  Timestamp last_update_ = 0;
  Duration backlog_ = 0;
};

/// Calibration constants. Defaults approximate the paper's testbed: ~100 us
/// client<->memcached round trips on 1 Gbps, ~1-2 ms MongoDB operations on a
/// 1 KB document, per-instance service bound ~33k ops/s (1 Gbps of 1 KB
/// values plus CPU), store concurrency bounded by its connection pool.
struct NetParams {
  Duration client_instance_rtt = Micros(100);
  /// Per-operation client-side cost (YCSB client logic, JDBC layer, request
  /// marshalling). Applied by the closed-loop harness *between* operations,
  /// so per-op throughput matches the paper's YCSB clients (~1 ms/op, i.e.
  /// 40 threads ~ 40k ops/s) without inflating reported read latencies.
  Duration client_op_overhead = Micros(850);
  Duration client_store_rtt = Micros(300);
  Duration client_coordinator_rtt = Micros(500);

  Duration instance_service = Micros(30);
  int instance_servers = 1;

  Duration store_query_service = Micros(1500);
  Duration store_update_service = Micros(2000);
  int store_servers = 16;
};

/// Shared queueing state for one simulated cluster.
class CostModel {
 public:
  CostModel(const NetParams& params, size_t num_instances);

  [[nodiscard]] const NetParams& params() const { return params_; }

  QueueingResource& instance(InstanceId id) { return instances_.at(id); }
  QueueingResource& store() { return store_; }

  void Reset();

 private:
  NetParams params_;
  std::vector<QueueingResource> instances_;
  QueueingResource store_;
};

/// Accumulates the virtual cost of one session. `cursor` starts at the
/// session's start time and advances through each billed step; after the
/// protocol code returns, (cursor - start) is the session latency.
class Session {
 public:
  Session(CostModel* model, Timestamp start)
      : model_(model), start_(start), cursor_(start) {}

  /// Null session: billing is a no-op (real-time mode).
  Session() : model_(nullptr), start_(0), cursor_(0) {}

  void BillCacheOp(InstanceId id);
  void BillStoreQuery();
  void BillStoreUpdate();
  /// A metadata-only store round trip (e.g. a write-back version
  /// reservation): pays the network RTT but no data-path service time.
  void BillStoreRoundTrip();
  void BillCoordinatorOp();
  /// Client-side back-off before retrying a lease collision.
  void BillBackoff(Duration d);

  [[nodiscard]] Timestamp start() const { return start_; }
  [[nodiscard]] Timestamp cursor() const { return cursor_; }
  [[nodiscard]] Duration Elapsed() const { return cursor_ - start_; }

  // Step counters (observability; EXPERIMENTS.md worst-case overheads).
  struct Counts {
    uint32_t cache_ops = 0;
    uint32_t store_queries = 0;
    uint32_t store_updates = 0;
    uint32_t coordinator_ops = 0;
    uint32_t backoffs = 0;
  };
  [[nodiscard]] const Counts& counts() const { return counts_; }

 private:
  CostModel* model_;
  Timestamp start_;
  Timestamp cursor_;
  Counts counts_;
};

}  // namespace gemini
