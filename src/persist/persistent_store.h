// PersistentStore: the durability engine behind CacheInstance.
//
// Wires a write-ahead log (wal.h) and log-truncating checkpoints
// (checkpoint.h) into the PersistenceSink interface the cache calls on every
// durable state change. One store owns one data directory and backs one
// instance:
//
//   CacheInstance::Options opts;
//   PersistentStore store(dir);
//   opts.persistence = &store;
//   CacheInstance instance(id, clock, opts);
//   Status s = store.Open(instance);   // replay checkpoint + WAL tail
//
// Open() replays the highest checkpoint plus all WAL segments at or above
// its sequence, applies the crash-spanning Q rule (keys whose QBegin count
// exceeds their QEnd count are dropped — their writers may have raced the
// data store), restores the latest observed config id, then starts
// recording: a fresh segment is opened, a post-recovery checkpoint truncates
// the replayed log, and every subsequent sink callback appends a record.
//
// Fsync policy: appends are batched (sync_batch_bytes / background
// sync_interval) except the records whose loss could cause a *stale read*
// rather than a mere cache miss, which sync eagerly before the triggering
// operation returns:
//   - kQBegin        (a Qareg token escapes to a writer; a crash must
//                     quarantine the key)
//   - kConfigId      (serving under an older config would resurrect entries
//                     Rejig already discarded)
//   - write-back upserts (the ack'd value exists nowhere but this cache)
//   - ISet/IDelete deletes (recovery-mode invalidations)
// Losing a batched record is always conservative: a lost upsert is a miss, a
// lost QEnd re-quarantines (over-deletes), a lost plain delete cannot
// resurface because the preceding QBegin (if any) was synced first.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "src/cache/cache_instance.h"
#include "src/cache/persistence_sink.h"
#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/persist/checkpoint.h"
#include "src/persist/wal.h"

namespace gemini {

class PersistentStore final : public PersistenceSink {
 public:
  struct Options {
    /// fsync the log once this many unsynced bytes accumulate. With the
    /// background thread enabled this is a *nudge*, not an inline sync: the
    /// serving thread signals the background thread and keeps appending, so
    /// the write path never waits on the disk for batched-class records
    /// (whose loss is a cache miss, never a stale read). Bytes appended
    /// while one fsync is in flight ride to the next one; sync_interval is
    /// the backstop bound on the loss window. With sync_interval == 0 the
    /// trigger syncs inline on the appending thread as there is nobody
    /// else to hand the work to. The default is sized so a write burst
    /// triggers few journal commits (each one steals CPU from serving);
    /// the batched-record loss window is bounded by sync_interval either
    /// way, and batched loss is a cache miss, never a stale read.
    size_t sync_batch_bytes = 1024 * 1024;
    /// Background fsync cadence. 0 disables the background thread (tests
    /// drive Sync()/Checkpoint() by hand).
    Duration sync_interval = Millis(50);
    /// Rotate + checkpoint once the checkpoint lag — WAL bytes not yet
    /// covered by a checkpoint, summed across segments — exceeds this many
    /// bytes. Checked by the background thread after every sync; stores
    /// running without one call MaybeCheckpoint() to apply the same
    /// byte-growth-driven schedule by hand. Lag, not live-segment size, is
    /// the trigger so a failed checkpoint's uncovered rotated segments keep
    /// counting toward the next attempt (the replay debt a crash would pay
    /// never silently resets). 0 disables size-triggered checkpoints.
    uint64_t checkpoint_lag_bytes = 8ull << 20;
    /// Reserve this many bytes for the next WAL segment ahead of rotation
    /// (fallocate, best effort — see Wal::Options::preallocate_bytes). The
    /// default matches the rotation threshold, so a rotated-into segment is
    /// fully reserved up front. 0 disables.
    size_t wal_preallocate_bytes = 8ull << 20;
  };

  explicit PersistentStore(std::string dir) : PersistentStore(dir, Options()) {}
  PersistentStore(std::string dir, Options options);
  ~PersistentStore() override;
  PersistentStore(const PersistentStore&) = delete;
  PersistentStore& operator=(const PersistentStore&) = delete;

  /// Creates the data dir if needed, replays existing state into `instance`
  /// (construct it with Options::persistence == this), and starts recording.
  /// Fails closed (kInternal) on corruption: a damaged checkpoint, a
  /// mid-log CRC mismatch, a torn tail anywhere but the newest segment, or
  /// a gap in the segment sequence. One-shot per store.
  Status Open(CacheInstance& instance);

  /// Rotates the log, snapshots the instance, and garbage-collects covered
  /// segments and older checkpoints.
  Status Checkpoint();

  /// Checkpoints iff the checkpoint lag exceeds Options::checkpoint_lag_bytes
  /// (see the option for the schedule's rationale). Returns whether a
  /// checkpoint ran. The background thread calls this after every sync;
  /// deterministic deployments (sync_interval == 0) call it by hand.
  Result<bool> MaybeCheckpoint();

  /// fsyncs any unsynced log tail.
  Status Sync();

  /// Stops the background thread and syncs. Idempotent; the destructor
  /// calls it. Does NOT checkpoint — callers wanting a compact shutdown
  /// state call Checkpoint() first.
  void Close();

  /// First WAL I/O error since Open, if any. Once set, the store stops
  /// recording (a log with a hole must not pretend to be complete) and the
  /// owner should treat the instance as no longer durably backed.
  [[nodiscard]] Status error() const;

  struct Stats {
    uint64_t appended_records = 0;
    uint64_t appended_bytes = 0;  // framed WAL bytes accepted since Open
    uint64_t fsyncs = 0;          // journal commits (group fsyncs)
    uint64_t checkpoints = 0;
    uint64_t replayed_segments = 0;
    uint64_t replayed_records = 0;
    uint64_t replay_micros = 0;  // wall time Open spent replaying history
    uint64_t restored_entries = 0;
    uint64_t quarantine_drops = 0;  // keys dropped by the crash-spanning Q rule
    uint64_t torn_tail_bytes = 0;   // bytes discarded from a torn final segment
    /// WAL bytes not yet covered by a checkpoint, across segments: the
    /// truncation lag — how much log the next boot would replay if the
    /// process died right now, and the driver of size-triggered checkpoint
    /// scheduling (Options::checkpoint_lag_bytes).
    uint64_t checkpoint_lag_bytes = 0;
  };
  [[nodiscard]] Stats stats() const;
  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] uint64_t wal_seq() const;

  // ---- PersistenceSink (called by CacheInstance under its locks) ----------
  void OnUpsert(PersistOp op, std::string_view key, const CacheValue& value,
                ConfigId config_id, bool pinned) override;
  void OnDelete(PersistOp op, std::string_view key) override;
  void OnQuarantineBegin(std::string_view key) override;
  void OnQuarantineEnd(std::string_view key) override;
  void OnConfigObserved(ConfigId latest) override;
  void OnQuarantineClear() override;
  void OnVolatileWipe() override;

 private:
  /// Loads the highest checkpoint + replays segments >= its seq into
  /// `instance`; `next_seq` receives the sequence for the fresh segment.
  Status Replay(CacheInstance& instance, uint64_t& next_seq);
  /// Frames the record into pending_ for the writer thread. The serving
  /// thread's only WAL cost is this encode-under-lock; with `sync_now` it
  /// then blocks until the writer's group fsync has passed the record
  /// (everything enqueued before it is durable too, so an eager record is a
  /// durability barrier). On writer failure error_ latches and recording
  /// stops.
  void Append(const WalRecord& record, bool sync_now);
  /// Zero-copy overload for the upsert hot path: frames straight from the
  /// cache's buffers (the views must stay valid for the duration of the
  /// call, which is all the queue needs — framing copies them).
  void Append(const WalUpsertRef& record, bool sync_now);
  template <typename Record>
  void AppendImpl(const Record& record, bool sync_now);
  /// Two-phase batched sync: snapshots the tail under mu_, fsyncs with mu_
  /// released so appends keep flowing. Holds sync_mu_ throughout so
  /// Rotate/Close cannot invalidate the fd mid-fsync.
  Status SyncOffThread();
  /// Drains queue_ in batches: one write(2) per batch, one fsync when the
  /// batch contains any eager record (group commit).
  void WriterLoop();
  void BackgroundLoop();

  const std::string dir_;
  const Options options_;
  CheckpointManager checkpoints_;

  /// Serializes fsync against Rotate/Close (fd lifetime). Lock order:
  /// sync_mu_ before mu_, never the reverse.
  mutable std::mutex sync_mu_;
  mutable std::mutex mu_;  // guards wal_, error_ and uncovered_bytes_
  Wal wal_;
  Status error_;
  /// Bytes in closed (rotated-away) segments no checkpoint covers yet —
  /// nonzero only while a checkpoint is in flight or after one failed. The
  /// total checkpoint lag is this plus the live segment's bytes.
  uint64_t uncovered_bytes_ = 0;

  CacheInstance* instance_ = nullptr;
  std::atomic<bool> recording_{false};
  /// Max config id ever observed; read after rotation to head each new
  /// segment with a kConfigId record (checkpoints do not store it).
  std::atomic<uint64_t> max_config_{0};

  std::atomic<uint64_t> appended_records_{0};
  std::atomic<uint64_t> appended_bytes_{0};
  uint64_t replay_micros_ = 0;
  uint64_t replayed_segments_ = 0;
  uint64_t replayed_records_ = 0;
  uint64_t restored_entries_ = 0;
  uint64_t quarantine_drops_ = 0;
  uint64_t torn_tail_bytes_ = 0;

  // ---- WAL writer thread (group commit) -----------------------------------
  // Producers frame records straight into pending_ (Wal::EncodeFrame) under
  // q_mu_; the writer swaps the buffer out and hands it to one write(2).
  // The two buffers recycle their capacity between the threads, so a
  // steady-state append allocates nothing.
  std::mutex q_mu_;
  std::condition_variable q_cv_;        // producers -> writer: work available
  std::condition_variable q_space_cv_;  // writer -> producers: backpressure
  std::condition_variable q_done_cv_;   // writer -> waiters: progress
  std::string pending_;                 // framed bytes not yet written
  size_t pending_records_ = 0;
  bool pending_eager_ = false;
  uint64_t enqueued_ = 0;  // records ever queued
  uint64_t written_ = 0;   // records handed to write(2)
  uint64_t durable_ = 0;   // records covered by an fsync
  bool writer_stop_ = false;
  std::thread writer_thread_;

  std::mutex bg_mu_;
  std::condition_variable bg_cv_;
  bool stop_ = false;
  /// Set by the writer when the unsynced tail crosses sync_batch_bytes;
  /// wakes the background thread for an early (off-thread) fsync.
  std::atomic<bool> sync_requested_{false};
  std::thread bg_thread_;
};

}  // namespace gemini
