// Log-truncating checkpoints.
//
// A checkpoint `checkpoint-<seq>.snap` is a Snapshot (snapshot.h format) of
// the full cache state that covers every WAL segment with sequence < seq:
// after it lands (atomic temp+rename+dir-fsync via Snapshot::WriteToFile),
// those segments and any older checkpoints are garbage. Recovery loads the
// highest checkpoint, then replays segments >= its seq in order.
//
// The seq is the WAL segment that was *current when serialization started*
// (i.e. rotation happens first, then the snapshot is cut). Records appended
// to segment seq before the cut are therefore both in the checkpoint and in
// the replayed log; that overlap is safe because records carry exact values
// and replay re-applies them in original order — the result converges on the
// same state.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/cache/cache_instance.h"
#include "src/common/status.h"

namespace gemini {

/// Sorted sequence numbers of the persistence files present in a data dir.
/// Unrelated names are ignored (temp files, user droppings).
struct DirListing {
  std::vector<uint64_t> wal_seqs;
  std::vector<uint64_t> checkpoint_seqs;
};

class CheckpointManager {
 public:
  explicit CheckpointManager(std::string dir) : dir_(std::move(dir)) {}

  /// Serializes `instance` into checkpoint-<seq>.snap atomically.
  Status Write(CacheInstance& instance, uint64_t seq);

  /// Loads checkpoint-<seq>.snap into `instance`. Fails closed (kInternal)
  /// on corruption: a checkpoint is written atomically, so a damaged one is
  /// disk rot, not a crash artifact.
  Status Load(CacheInstance& instance, uint64_t seq);

  /// Deletes WAL segments and checkpoints with sequence < keep_seq. Returns
  /// the first unlink failure but attempts every file.
  Status GarbageCollect(uint64_t keep_seq);

  /// Scans the data dir for wal-*.log / checkpoint-*.snap names.
  Status List(DirListing& out) const;

  std::string CheckpointPath(uint64_t seq) const;
  /// Parses "checkpoint-<seq>.snap" (basename). False for any other name.
  static bool ParseCheckpointName(std::string_view name, uint64_t& seq);

  [[nodiscard]] const std::string& dir() const { return dir_; }
  [[nodiscard]] uint64_t checkpoints_written() const { return written_; }

 private:
  std::string dir_;
  uint64_t written_ = 0;
};

}  // namespace gemini
