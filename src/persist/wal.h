// Write-ahead log for CacheInstance mutations.
//
// The paper emulates its persistent cache in DRAM (Section 4); this module is
// the real medium. Every durable state change — upserts, deletes, quarantine
// begin/end, config-id advances — is appended as one framed record:
//
//   frame:   u32 payload_len | u32 crc32c(payload) | payload
//   payload: u8 type | type-specific fields        (little-endian throughout)
//
// Appends go through a buffered write() immediately (so the record is visible
// to a same-OS reader and survives a process crash) and are fsync-batched for
// power-loss durability: a record is synced either eagerly (`sync_now`, used
// for lease-critical records whose loss could cause a stale read) or when the
// unsynced tail exceeds `sync_batch_bytes` / the owner's periodic Sync().
//
// The log is a sequence of segments `wal-<seq>.log`. Rotation fsyncs and
// closes the old segment and opens `seq+1`; checkpoints (checkpoint.h) cover
// all segments below their seq, making rotation the truncation point.
//
// Recovery semantics (ScanFile): a prefix of valid frames followed by an
// incomplete frame — header shorter than 8 bytes, or a claimed payload that
// runs past end-of-file — is a *torn tail*: the expected shape of a crash
// mid-append, recoverable by ignoring the tail (legal only in the newest
// segment). A fully present frame whose CRC mismatches is *corruption*, not a
// crash shape, and recovery must fail closed rather than risk serving a
// silently wrong lease or value.
#pragma once

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"

namespace gemini {

enum class WalRecordType : uint8_t {
  kUpsert = 1,    // key now maps to (data, charged, version) at config_id
  kDelete = 2,    // key no longer maps to anything
  kQBegin = 3,    // a Q lease was granted on key (crash => quarantined)
  kQEnd = 4,      // one Q lease on key resolved
  kConfigId = 5,  // instance-wide latest config id advanced
  kQClear = 6,    // all outstanding quarantines resolved (recovery sweep)
  kWipe = 7,      // instance was volatile-wiped; discard all prior state
};

/// One decoded log record. Unused fields are zero/empty for types that do not
/// carry them (e.g. kQBegin has only `key`; kConfigId only `config_id`).
struct WalRecord {
  WalRecordType type = WalRecordType::kUpsert;
  uint8_t origin = 0;  // PersistOp that caused the mutation (log legibility)
  bool pinned = false;
  std::string key;
  std::string data;
  uint32_t charged_bytes = 0;
  Version version = 0;
  ConfigId config_id = 0;

  /// Serializes the payload (no frame header) onto `out`.
  void EncodeTo(std::string& out) const;

  /// Parses a payload. False on malformed input (unknown type, short or
  /// over-long fields) — the caller treats that as corruption.
  static bool Decode(std::string_view payload, WalRecord& out);
};

/// View-based kUpsert payload for the append hot path: encodes the same wire
/// bytes as an owning WalRecord{kUpsert,...} but straight from the cache's
/// buffers, skipping the two string copies a WalRecord would cost per Set.
struct WalUpsertRef {
  uint8_t origin = 0;
  bool pinned = false;
  std::string_view key;
  std::string_view data;
  uint32_t charged_bytes = 0;
  Version version = 0;
  ConfigId config_id = 0;

  void EncodeTo(std::string& out) const;
};

/// Result of scanning one segment file front to back.
struct WalScanResult {
  std::vector<WalRecord> records;
  /// End offset of each valid record's frame, in order. records.size()
  /// entries; record_ends.back() == valid_bytes when any record parsed.
  std::vector<uint64_t> record_ends;
  /// Offset of the first byte past the last valid frame.
  uint64_t valid_bytes = 0;
  /// Total bytes in the file (file_bytes - valid_bytes = discarded tail).
  uint64_t file_bytes = 0;
  /// True when bytes past valid_bytes form an incomplete frame (crash shape).
  bool torn_tail = false;
  /// Non-ok when bytes past valid_bytes are a complete-but-corrupt frame or
  /// an undecodable payload — fail closed, never a legal crash outcome.
  Status error;
};

/// Append handle over a directory of segments. Not thread-safe, with one
/// deliberate exception: the owner (PersistentStore) serializes Append /
/// Rotate / Close / PrepareSync against each other, but may run
/// CompleteSync — the fsync itself — concurrently with Append so the write
/// path never stalls behind the disk. The byte accounting is atomic to
/// support exactly that overlap.
class Wal {
 public:
  struct Options {
    /// fsync once this many bytes accumulate since the last sync. Records
    /// appended with sync_now bypass the batch. SIZE_MAX disables the
    /// inline trigger (the owner syncs on its own schedule).
    size_t sync_batch_bytes = 256 * 1024;
    /// Reserve this many bytes for the *next* segment whenever a segment
    /// opens (fallocate with KEEP_SIZE), so rotation's first appends land on
    /// already-reserved extents instead of paying block allocation inline.
    /// The pre-created file stays zero-length, which replay already accepts
    /// as the crash-after-rotation shape. 0 disables; filesystems without
    /// fallocate support silently skip the reservation.
    size_t preallocate_bytes = 0;
  };

  /// Snapshot of the sync work outstanding at PrepareSync time. fsyncing
  /// `fd` makes (at least) `pending` bytes durable.
  struct SyncToken {
    int fd = -1;
    size_t pending = 0;
  };

  Wal() = default;
  ~Wal();
  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// Creates (O_APPEND) segment `dir/wal-<seq>.log` and fsyncs `dir` so the
  /// new name is durable.
  Status Open(const std::string& dir, uint64_t seq, const Options& options);

  /// Frames and appends one record. With `sync_now`, fsyncs before returning.
  Status Append(const WalRecord& record, bool sync_now);

  /// Appends pre-framed bytes (one or more EncodeFrame outputs) in a single
  /// write(2) — the group-commit path. With `sync_now`, fsyncs after.
  Status AppendRaw(std::string_view frames, bool sync_now);

  /// Appends one `len | crc32c | payload` frame for `record` to `out`.
  static void EncodeFrame(std::string& out, const WalRecord& record);
  static void EncodeFrame(std::string& out, const WalUpsertRef& record);

  /// fsyncs any unsynced tail.
  Status Sync();

  /// Two-phase sync for owners that fsync off their append lock: call
  /// PrepareSync under the same serialization as Append, then CompleteSync
  /// anywhere — appends may proceed concurrently, but the owner must keep
  /// Rotate()/Close() from invalidating the token's fd in between.
  SyncToken PrepareSync() const;
  Status CompleteSync(const SyncToken& token);

  /// Syncs and closes the current segment, then opens `seq()+1`.
  Status Rotate();

  /// Syncs and closes. Idempotent.
  void Close();

  [[nodiscard]] bool is_open() const { return fd_ >= 0; }
  [[nodiscard]] uint64_t seq() const { return seq_; }
  [[nodiscard]] uint64_t appended_bytes() const { return appended_bytes_; }
  [[nodiscard]] uint64_t segment_bytes() const { return segment_bytes_; }
  [[nodiscard]] size_t unsynced_bytes() const {
    return unsynced_bytes_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t fsync_count() const {
    return fsync_count_.load(std::memory_order_relaxed);
  }

  static std::string SegmentPath(const std::string& dir, uint64_t seq);
  /// Parses "wal-<seq>.log" (basename). False for any other name.
  static bool ParseSegmentName(std::string_view name, uint64_t& seq);

  /// Reads `path` front to back, validating every frame. See WalScanResult
  /// for the torn-tail vs corruption distinction.
  static WalScanResult ScanFile(const std::string& path);

 private:
  Status SyncLocked();
  /// Best-effort fallocate of segment seq_ + 1 (see Options::preallocate_bytes).
  void PreallocateNext();

  std::string dir_;
  uint64_t seq_ = 0;
  int fd_ = -1;
  /// Atomic so a CompleteSync in flight on another thread and concurrent
  /// appends keep a consistent (never under-counting) tally.
  std::atomic<size_t> unsynced_bytes_{0};
  uint64_t appended_bytes_ = 0;  // lifetime, across rotations
  uint64_t segment_bytes_ = 0;   // current segment only
  std::atomic<uint64_t> fsync_count_{0};
  Options options_;
};

}  // namespace gemini
