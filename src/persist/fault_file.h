// FaultFile: deterministic crash-point mutations for persistence files.
//
// ALICE-style testing: a crash (or torn sector) leaves the write-ahead log
// in some byte-level state the code never wrote atomically. This module
// produces those states deterministically — pick a seed, derive a plan,
// apply it to a copy of the file — so every failure is replayable from the
// seed alone (echoed by CI, same idiom as FaultProxy's seeded schedules).
//
// Three mutation kinds model the interesting states:
//   kCut            truncate at a uniformly random *byte* offset — the tail
//                   record is torn mid-frame (or mid-header).
//   kTruncateRecord truncate at a *record boundary* — the clean crash, a
//                   whole suffix of records lost.
//   kTornWrite      truncate at a random byte offset, then append seeded
//                   garbage — a sector half-filled with stale disk content.
//
// Recovery must handle every plan by either restoring a consistent prefix
// of history or failing closed; silently wrong state is the only failure.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace gemini {

struct FaultPlan {
  enum class Kind : uint8_t { kCut = 0, kTruncateRecord = 1, kTornWrite = 2 };

  Kind kind = Kind::kCut;
  /// File size after the truncate step.
  uint64_t truncate_to = 0;
  /// kTornWrite: garbage bytes appended after the truncate (0 otherwise).
  uint32_t garbage_len = 0;
  /// kTornWrite: seed for the garbage byte stream.
  uint64_t garbage_seed = 0;
};

class FaultFile {
 public:
  /// Derives the mutation plan for (`seed`, `index`) — a pure function, so
  /// a failing case replays from the two integers. `file_size` bounds the
  /// truncation offset; `record_ends` (record-boundary offsets from
  /// Wal::ScanFile, may be empty) anchors kTruncateRecord plans.
  static FaultPlan PlanFor(uint64_t seed, uint32_t index, FaultPlan::Kind kind,
                           uint64_t file_size,
                           const std::vector<uint64_t>& record_ends);

  /// Applies `plan` to `path` in place (callers mutate a copy of the data
  /// dir, never the live one).
  static Status Apply(const std::string& path, const FaultPlan& plan);
};

}  // namespace gemini
