#include "src/persist/wal.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include "src/common/hash.h"

namespace gemini {
namespace {

// Payload fields are raw little-endian scalars. Frames cap the payload at
// 64 MiB: far above any cache entry this code base produces, low enough that
// a garbage length field from a torn write cannot drive a giant allocation.
constexpr uint32_t kMaxPayloadLen = 64u << 20;
constexpr size_t kFrameHeaderLen = 8;  // u32 len | u32 crc

void PutU8(std::string& out, uint8_t v) {
  out.push_back(static_cast<char>(v));
}

void PutU32(std::string& out, uint32_t v) {
  char b[4];
  for (int i = 0; i < 4; ++i) {
    b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
  out.append(b, 4);  // one capacity check instead of four
}

void PutU64(std::string& out, uint64_t v) {
  char b[8];
  for (int i = 0; i < 8; ++i) {
    b[i] = static_cast<char>((v >> (8 * i)) & 0xFF);
  }
  out.append(b, 8);
}

void PutString(std::string& out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out.append(s);
}

/// Cursor over a payload; every Take* fails (returns false) on underrun so
/// Decode rejects truncated payloads instead of reading garbage.
struct Reader {
  std::string_view rest;

  bool TakeU8(uint8_t& v) {
    if (rest.size() < 1) return false;
    v = static_cast<uint8_t>(rest[0]);
    rest.remove_prefix(1);
    return true;
  }
  bool TakeU32(uint32_t& v) {
    if (rest.size() < 4) return false;
    v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<uint32_t>(static_cast<uint8_t>(rest[i])) << (8 * i);
    }
    rest.remove_prefix(4);
    return true;
  }
  bool TakeU64(uint64_t& v) {
    if (rest.size() < 8) return false;
    v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<uint64_t>(static_cast<uint8_t>(rest[i])) << (8 * i);
    }
    rest.remove_prefix(8);
    return true;
  }
  bool TakeString(std::string& s) {
    uint32_t len = 0;
    if (!TakeU32(len) || rest.size() < len) return false;
    s.assign(rest.data(), len);
    rest.remove_prefix(len);
    return true;
  }
};

Status Errno(const char* what, const std::string& path) {
  return Status(Code::kInternal, std::string(what) + " " + path + ": " +
                                     std::strerror(errno));
}

/// fsync the directory containing `path` so a created/renamed name is
/// durable (same policy as Snapshot::WriteToFile).
Status SyncParentDir(const std::string& path) {
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos ? std::string(".")
                                                     : path.substr(0, slash);
  const int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd < 0) return Errno("cannot open directory", dir);
  const int rc = ::fsync(dir_fd);
  ::close(dir_fd);
  if (rc != 0) return Errno("cannot fsync directory", dir);
  return Status::Ok();
}

}  // namespace

void WalRecord::EncodeTo(std::string& out) const {
  PutU8(out, static_cast<uint8_t>(type));
  switch (type) {
    case WalRecordType::kUpsert:
      PutU8(out, origin);
      PutU8(out, pinned ? 1 : 0);
      PutU64(out, config_id);
      PutU64(out, version);
      PutU32(out, charged_bytes);
      PutString(out, key);
      PutString(out, data);
      break;
    case WalRecordType::kDelete:
      PutU8(out, origin);
      PutString(out, key);
      break;
    case WalRecordType::kQBegin:
    case WalRecordType::kQEnd:
      PutString(out, key);
      break;
    case WalRecordType::kConfigId:
      PutU64(out, config_id);
      break;
    case WalRecordType::kQClear:
    case WalRecordType::kWipe:
      break;
  }
}

void WalUpsertRef::EncodeTo(std::string& out) const {
  // Must stay byte-identical to the WalRecord kUpsert branch above: replay
  // decodes both through WalRecord::Decode.
  PutU8(out, static_cast<uint8_t>(WalRecordType::kUpsert));
  PutU8(out, origin);
  PutU8(out, pinned ? 1 : 0);
  PutU64(out, config_id);
  PutU64(out, version);
  PutU32(out, charged_bytes);
  PutString(out, key);
  PutString(out, data);
}

bool WalRecord::Decode(std::string_view payload, WalRecord& out) {
  Reader r{payload};
  uint8_t type = 0;
  if (!r.TakeU8(type)) return false;
  out = WalRecord{};
  out.type = static_cast<WalRecordType>(type);
  switch (out.type) {
    case WalRecordType::kUpsert: {
      uint8_t pinned = 0;
      if (!r.TakeU8(out.origin) || !r.TakeU8(pinned) ||
          !r.TakeU64(out.config_id) || !r.TakeU64(out.version) ||
          !r.TakeU32(out.charged_bytes) || !r.TakeString(out.key) ||
          !r.TakeString(out.data)) {
        return false;
      }
      out.pinned = pinned != 0;
      break;
    }
    case WalRecordType::kDelete:
      if (!r.TakeU8(out.origin) || !r.TakeString(out.key)) return false;
      break;
    case WalRecordType::kQBegin:
    case WalRecordType::kQEnd:
      if (!r.TakeString(out.key)) return false;
      break;
    case WalRecordType::kConfigId:
      if (!r.TakeU64(out.config_id)) return false;
      break;
    case WalRecordType::kQClear:
    case WalRecordType::kWipe:
      break;
    default:
      return false;
  }
  // Trailing bytes mean the length field disagrees with the payload: corrupt.
  return r.rest.empty();
}

Wal::~Wal() { Close(); }

std::string Wal::SegmentPath(const std::string& dir, uint64_t seq) {
  char name[32];
  std::snprintf(name, sizeof(name), "wal-%016llx.log",
                static_cast<unsigned long long>(seq));
  return dir + "/" + name;
}

bool Wal::ParseSegmentName(std::string_view name, uint64_t& seq) {
  constexpr std::string_view kPrefix = "wal-";
  constexpr std::string_view kSuffix = ".log";
  if (name.size() != kPrefix.size() + 16 + kSuffix.size()) return false;
  if (name.substr(0, kPrefix.size()) != kPrefix) return false;
  if (name.substr(name.size() - kSuffix.size()) != kSuffix) return false;
  uint64_t v = 0;
  for (char c : name.substr(kPrefix.size(), 16)) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    v = (v << 4) | static_cast<uint64_t>(digit);
  }
  seq = v;
  return true;
}

Status Wal::Open(const std::string& dir, uint64_t seq,
                 const Options& options) {
  Close();
  const std::string path = SegmentPath(dir, seq);
  const int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) return Errno("cannot open wal segment", path);
  struct stat st {};
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return Errno("cannot stat wal segment", path);
  }
  if (Status s = SyncParentDir(path); !s.ok()) {
    ::close(fd);
    return s;
  }
  dir_ = dir;
  seq_ = seq;
  fd_ = fd;
  unsynced_bytes_ = 0;
  segment_bytes_ = static_cast<uint64_t>(st.st_size);
  options_ = options;
  if (options_.preallocate_bytes > 0) PreallocateNext();
  return Status::Ok();
}

void Wal::PreallocateNext() {
  const std::string next = SegmentPath(dir_, seq_ + 1);
  const int fd = ::open(next.c_str(), O_WRONLY | O_CREAT, 0644);
  if (fd < 0) return;
  // KEEP_SIZE: reserve extents without growing st_size, so the file scans
  // as an empty segment if a crash lands before rotation reaches it. A
  // filesystem that cannot reserve (EOPNOTSUPP) just skips — this is an
  // optimization, never a correctness requirement.
  (void)::fallocate(fd, FALLOC_FL_KEEP_SIZE, 0,
                    static_cast<off_t>(options_.preallocate_bytes));
  ::close(fd);
}

namespace {

// Encode the payload in place after a header placeholder, then patch the
// header — no temporary buffer, so the hot path does not allocate beyond
// out's amortized growth. Works for any payload type with EncodeTo.
template <typename Record>
void EncodeFrameImpl(std::string& out, const Record& record) {
  const size_t header_pos = out.size();
  out.append(kFrameHeaderLen, '\0');
  const size_t payload_pos = out.size();
  record.EncodeTo(out);
  const std::string_view payload =
      std::string_view(out).substr(payload_pos);
  const uint32_t len = static_cast<uint32_t>(payload.size());
  const uint32_t crc = Crc32c(payload);
  char header[kFrameHeaderLen];
  for (int i = 0; i < 4; ++i) {
    header[i] = static_cast<char>((len >> (8 * i)) & 0xFF);
    header[4 + i] = static_cast<char>((crc >> (8 * i)) & 0xFF);
  }
  out.replace(header_pos, kFrameHeaderLen, header, kFrameHeaderLen);
}

}  // namespace

void Wal::EncodeFrame(std::string& out, const WalRecord& record) {
  EncodeFrameImpl(out, record);
}

void Wal::EncodeFrame(std::string& out, const WalUpsertRef& record) {
  EncodeFrameImpl(out, record);
}

Status Wal::Append(const WalRecord& record, bool sync_now) {
  std::string frame;
  EncodeFrame(frame, record);
  return AppendRaw(frame, sync_now);
}

Status Wal::AppendRaw(std::string_view frames, bool sync_now) {
  if (fd_ < 0) return Status(Code::kInternal, "wal: append on closed log");
  size_t off = 0;
  while (off < frames.size()) {
    const ssize_t n = ::write(fd_, frames.data() + off, frames.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("wal write failed", SegmentPath(dir_, seq_));
    }
    off += static_cast<size_t>(n);
  }
  appended_bytes_ += frames.size();
  segment_bytes_ += frames.size();
  unsynced_bytes_.fetch_add(frames.size(), std::memory_order_relaxed);
  if (sync_now ||
      unsynced_bytes_.load(std::memory_order_relaxed) >=
          options_.sync_batch_bytes) {
    return SyncLocked();
  }
  return Status::Ok();
}

Status Wal::Sync() {
  if (fd_ < 0) return Status::Ok();
  return SyncLocked();
}

Wal::SyncToken Wal::PrepareSync() const {
  SyncToken token;
  token.fd = fd_;
  token.pending = unsynced_bytes_.load(std::memory_order_relaxed);
  return token;
}

Status Wal::CompleteSync(const SyncToken& token) {
  if (token.fd < 0 || token.pending == 0) return Status::Ok();
  if (::fsync(token.fd) != 0) {
    return Errno("wal fsync failed", SegmentPath(dir_, seq_));
  }
  fsync_count_.fetch_add(1, std::memory_order_relaxed);
  // Subtract what this sync is known to have covered, floored at zero: a
  // concurrent sync of an overlapping range may already have claimed some
  // of it. Over-counting leftovers only costs an extra fsync later; it can
  // never mark un-fsynced bytes as durable.
  size_t cur = unsynced_bytes_.load(std::memory_order_relaxed);
  size_t take = std::min(cur, token.pending);
  while (!unsynced_bytes_.compare_exchange_weak(cur, cur - take,
                                                std::memory_order_relaxed)) {
    take = std::min(cur, token.pending);
  }
  return Status::Ok();
}

Status Wal::SyncLocked() { return CompleteSync(PrepareSync()); }

Status Wal::Rotate() {
  if (fd_ < 0) return Status(Code::kInternal, "wal: rotate on closed log");
  if (Status s = SyncLocked(); !s.ok()) return s;
  ::close(fd_);
  fd_ = -1;
  const std::string dir = dir_;
  const uint64_t next = seq_ + 1;
  return Open(dir, next, options_);
}

void Wal::Close() {
  if (fd_ < 0) return;
  (void)SyncLocked();
  ::close(fd_);
  fd_ = -1;
}

WalScanResult Wal::ScanFile(const std::string& path) {
  WalScanResult result;
  FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    result.error = Errno("cannot open wal segment", path);
    return result;
  }
  std::string contents;
  char buf[1 << 16];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    contents.append(buf, n);
  }
  const bool read_error = std::ferror(f) != 0;
  std::fclose(f);
  if (read_error) {
    result.error = Status(Code::kInternal, "cannot read wal segment " + path);
    return result;
  }

  uint64_t off = 0;
  const uint64_t size = contents.size();
  result.file_bytes = size;
  while (off < size) {
    if (size - off < kFrameHeaderLen) {
      result.torn_tail = true;  // partial frame header: crash mid-append
      break;
    }
    Reader header{std::string_view(contents).substr(off, kFrameHeaderLen)};
    uint32_t len = 0;
    uint32_t crc = 0;
    header.TakeU32(len);
    header.TakeU32(crc);
    if (len > kMaxPayloadLen) {
      // A length this large was never written by Append; the header bytes
      // themselves are damaged. A torn append cannot damage already-written
      // bytes, so this is corruption — unless the oversized length also runs
      // past EOF, which is indistinguishable from a torn header and must be
      // treated as the benign case only when nothing follows that could have
      // been a real frame. Be conservative: past-EOF => torn, in-file =>
      // corrupt.
      if (off + kFrameHeaderLen + len > size) {
        result.torn_tail = true;
        break;
      }
      result.error = Status(
          Code::kInternal,
          "wal segment " + path + ": oversized frame at offset " +
              std::to_string(off));
      break;
    }
    if (off + kFrameHeaderLen + len > size) {
      result.torn_tail = true;  // payload ran past EOF: crash mid-append
      break;
    }
    const std::string_view payload =
        std::string_view(contents).substr(off + kFrameHeaderLen, len);
    if (Crc32c(payload) != crc) {
      result.error = Status(
          Code::kInternal, "wal segment " + path +
                               ": crc mismatch at offset " +
                               std::to_string(off));
      break;
    }
    WalRecord record;
    if (!WalRecord::Decode(payload, record)) {
      result.error = Status(
          Code::kInternal, "wal segment " + path +
                               ": undecodable record at offset " +
                               std::to_string(off));
      break;
    }
    off += kFrameHeaderLen + len;
    result.records.push_back(std::move(record));
    result.record_ends.push_back(off);
  }
  result.valid_bytes = result.record_ends.empty() ? 0 : result.record_ends.back();
  return result;
}

}  // namespace gemini
