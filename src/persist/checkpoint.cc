#include "src/persist/checkpoint.h"

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <dirent.h>

#include "src/cache/snapshot.h"
#include "src/persist/wal.h"

namespace gemini {
namespace {

bool ParseHex16(std::string_view digits, uint64_t& out) {
  if (digits.size() != 16) return false;
  uint64_t v = 0;
  for (char c : digits) {
    int digit;
    if (c >= '0' && c <= '9') {
      digit = c - '0';
    } else if (c >= 'a' && c <= 'f') {
      digit = c - 'a' + 10;
    } else {
      return false;
    }
    v = (v << 4) | static_cast<uint64_t>(digit);
  }
  out = v;
  return true;
}

}  // namespace

std::string CheckpointManager::CheckpointPath(uint64_t seq) const {
  char name[40];
  std::snprintf(name, sizeof(name), "checkpoint-%016llx.snap",
                static_cast<unsigned long long>(seq));
  return dir_ + "/" + name;
}

bool CheckpointManager::ParseCheckpointName(std::string_view name,
                                            uint64_t& seq) {
  constexpr std::string_view kPrefix = "checkpoint-";
  constexpr std::string_view kSuffix = ".snap";
  if (name.size() != kPrefix.size() + 16 + kSuffix.size()) return false;
  if (name.substr(0, kPrefix.size()) != kPrefix) return false;
  if (name.substr(name.size() - kSuffix.size()) != kSuffix) return false;
  return ParseHex16(name.substr(kPrefix.size(), 16), seq);
}

Status CheckpointManager::Write(CacheInstance& instance, uint64_t seq) {
  Status s = Snapshot::WriteToFile(instance, CheckpointPath(seq));
  if (s.ok()) ++written_;
  return s;
}

Status CheckpointManager::Load(CacheInstance& instance, uint64_t seq) {
  return Snapshot::LoadFromFile(instance, CheckpointPath(seq));
}

Status CheckpointManager::List(DirListing& out) const {
  out = DirListing{};
  DIR* d = ::opendir(dir_.c_str());
  if (d == nullptr) {
    return Status(Code::kInternal, "cannot open data dir " + dir_ + ": " +
                                       std::strerror(errno));
  }
  while (struct dirent* e = ::readdir(d)) {
    uint64_t seq = 0;
    const std::string_view name = e->d_name;
    if (Wal::ParseSegmentName(name, seq)) {
      out.wal_seqs.push_back(seq);
    } else if (ParseCheckpointName(name, seq)) {
      out.checkpoint_seqs.push_back(seq);
    }
  }
  ::closedir(d);
  std::sort(out.wal_seqs.begin(), out.wal_seqs.end());
  std::sort(out.checkpoint_seqs.begin(), out.checkpoint_seqs.end());
  return Status::Ok();
}

Status CheckpointManager::GarbageCollect(uint64_t keep_seq) {
  DirListing listing;
  if (Status s = List(listing); !s.ok()) return s;
  Status first_failure = Status::Ok();
  auto unlink_or_note = [&first_failure](const std::string& path) {
    if (::unlink(path.c_str()) != 0 && first_failure.ok()) {
      first_failure = Status(Code::kInternal, "cannot unlink " + path + ": " +
                                                  std::strerror(errno));
    }
  };
  for (uint64_t seq : listing.wal_seqs) {
    if (seq < keep_seq) unlink_or_note(Wal::SegmentPath(dir_, seq));
  }
  for (uint64_t seq : listing.checkpoint_seqs) {
    if (seq < keep_seq) unlink_or_note(CheckpointPath(seq));
  }
  return first_failure;
}

}  // namespace gemini
