#include "src/persist/fault_file.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <unistd.h>

#include "src/common/hash.h"
#include "src/common/rng.h"

namespace gemini {

FaultPlan FaultFile::PlanFor(uint64_t seed, uint32_t index,
                             FaultPlan::Kind kind, uint64_t file_size,
                             const std::vector<uint64_t>& record_ends) {
  // One independent stream per (seed, index, kind): the same mixing idiom as
  // FaultProxy::PlanFor, so a CI seed pins the whole matrix.
  Rng rng(Mix64(seed ^ Mix64(index) ^
                Mix64(static_cast<uint64_t>(kind) + 0x517CC1B727220A95ULL)));
  FaultPlan plan;
  plan.kind = kind;
  switch (kind) {
    case FaultPlan::Kind::kCut:
      plan.truncate_to = file_size == 0 ? 0 : rng.NextBounded(file_size);
      break;
    case FaultPlan::Kind::kTruncateRecord:
      // Cut at a record boundary (including 0 = everything lost). With no
      // boundaries known, degenerate to an empty file.
      plan.truncate_to =
          record_ends.empty()
              ? 0
              : (rng.NextBounded(record_ends.size() + 1) == 0
                     ? 0
                     : record_ends[rng.NextBounded(record_ends.size())]);
      break;
    case FaultPlan::Kind::kTornWrite:
      plan.truncate_to = file_size == 0 ? 0 : rng.NextBounded(file_size);
      plan.garbage_len = 1 + static_cast<uint32_t>(rng.NextBounded(64));
      plan.garbage_seed = rng.Next();
      break;
  }
  return plan;
}

Status FaultFile::Apply(const std::string& path, const FaultPlan& plan) {
  if (::truncate(path.c_str(), static_cast<off_t>(plan.truncate_to)) != 0) {
    return Status(Code::kInternal, "faultfile: cannot truncate " + path +
                                       ": " + std::strerror(errno));
  }
  if (plan.garbage_len == 0) return Status::Ok();
  std::string garbage;
  garbage.reserve(plan.garbage_len);
  Rng rng(plan.garbage_seed);
  for (uint32_t i = 0; i < plan.garbage_len; ++i) {
    garbage.push_back(static_cast<char>(rng.NextBounded(256)));
  }
  const int fd = ::open(path.c_str(), O_WRONLY | O_APPEND);
  if (fd < 0) {
    return Status(Code::kInternal, "faultfile: cannot open " + path + ": " +
                                       std::strerror(errno));
  }
  size_t off = 0;
  while (off < garbage.size()) {
    const ssize_t n = ::write(fd, garbage.data() + off, garbage.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return Status(Code::kInternal, "faultfile: cannot write " + path + ": " +
                                         std::strerror(errno));
    }
    off += static_cast<size_t>(n);
  }
  ::close(fd);
  return Status::Ok();
}

}  // namespace gemini
