#include "src/persist/persistent_store.h"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <unordered_map>
#include <vector>

#include <sys/stat.h>

namespace gemini {
namespace {

/// mkdir -p: creates every missing component of `dir`.
Status EnsureDir(const std::string& dir) {
  std::string partial;
  size_t pos = 0;
  while (pos <= dir.size()) {
    const size_t slash = dir.find('/', pos);
    partial = slash == std::string::npos ? dir : dir.substr(0, slash);
    pos = slash == std::string::npos ? dir.size() + 1 : slash + 1;
    if (partial.empty()) continue;  // leading '/'
    if (::mkdir(partial.c_str(), 0755) != 0 && errno != EEXIST) {
      return Status(Code::kInternal, "cannot create data dir " + partial +
                                         ": " + std::strerror(errno));
    }
  }
  return Status::Ok();
}

}  // namespace

PersistentStore::PersistentStore(std::string dir, Options options)
    : dir_(std::move(dir)), options_(options), checkpoints_(dir_) {}

PersistentStore::~PersistentStore() { Close(); }

Status PersistentStore::Open(CacheInstance& instance) {
  if (instance_ != nullptr) {
    return Status(Code::kInvalidArgument, "persistent store already open");
  }
  if (Status s = EnsureDir(dir_); !s.ok()) return s;

  uint64_t next_seq = 0;
  const Timestamp replay_start = SystemClock::Global().Now();
  if (Status s = Replay(instance, next_seq); !s.ok()) return s;
  replay_micros_ = SystemClock::Global().Now() - replay_start;

  {
    std::lock_guard<std::mutex> lock(mu_);
    Wal::Options wal_options;
    // With a background thread the batch trigger hands the fsync off to it
    // (Append nudges bg_cv_); without one the Wal syncs inline at the
    // threshold as before.
    wal_options.sync_batch_bytes = options_.sync_interval > 0
                                       ? SIZE_MAX
                                       : options_.sync_batch_bytes;
    wal_options.preallocate_bytes = options_.wal_preallocate_bytes;
    if (Status s = wal_.Open(dir_, next_seq, wal_options); !s.ok()) return s;
    // Head every segment with the latest observed config id: checkpoints
    // (Snapshot format) do not store it, and the segments that did are about
    // to be garbage-collected.
    WalRecord head;
    head.type = WalRecordType::kConfigId;
    head.config_id = max_config_.load(std::memory_order_relaxed);
    if (Status s = wal_.Append(head, /*sync_now=*/true); !s.ok()) return s;
    appended_records_.fetch_add(1, std::memory_order_relaxed);
  }
  instance_ = &instance;
  writer_thread_ = std::thread([this] { WriterLoop(); });
  recording_.store(true, std::memory_order_release);

  // A post-recovery checkpoint makes the replayed state durable in one file
  // and truncates the replayed log — including any torn final segment.
  if (Status s = checkpoints_.Write(instance, next_seq); !s.ok()) return s;
  if (Status s = checkpoints_.GarbageCollect(next_seq); !s.ok()) return s;

  if (options_.sync_interval > 0) {
    bg_thread_ = std::thread([this] { BackgroundLoop(); });
  }
  return Status::Ok();
}

Status PersistentStore::Replay(CacheInstance& instance, uint64_t& next_seq) {
  DirListing listing;
  if (Status s = checkpoints_.List(listing); !s.ok()) return s;

  uint64_t cp_seq = 0;
  if (!listing.checkpoint_seqs.empty()) {
    cp_seq = listing.checkpoint_seqs.back();
    // A checkpoint lands atomically (temp + rename + dir fsync), so damage
    // here is disk rot, not a crash artifact: fail closed rather than fall
    // back to an older checkpoint whose covering log was truncated away.
    if (Status s = checkpoints_.Load(instance, cp_seq); !s.ok()) {
      return Status(Code::kInternal,
                    "checkpoint " + checkpoints_.CheckpointPath(cp_seq) +
                        " failed to load, refusing to serve possibly stale "
                        "state: " + s.ToString());
    }
  }

  std::vector<uint64_t> replay;
  for (uint64_t seq : listing.wal_seqs) {
    if (seq >= cp_seq) replay.push_back(seq);
  }
  for (size_t i = 1; i < replay.size(); ++i) {
    if (replay[i] != replay[i - 1] + 1) {
      return Status(Code::kInternal,
                    "wal segment gap: " + std::to_string(replay[i - 1]) +
                        " -> " + std::to_string(replay[i]));
    }
  }

  // QBegin/QEnd counting. The count can only over-estimate outstanding
  // quarantines (every QEnd is logged after its resolving mutation), so a
  // positive final count is always safe to act on — and a key the
  // checkpoint itself saw as quarantined was already skipped by
  // Snapshot::Load.
  std::unordered_map<std::string, int64_t> qcount;
  ConfigId max_config = 0;

  uint64_t torn_seq = 0;
  bool saw_torn = false;
  for (size_t i = 0; i < replay.size(); ++i) {
    const uint64_t seq = replay[i];
    WalScanResult scan = Wal::ScanFile(Wal::SegmentPath(dir_, seq));
    if (!scan.error.ok()) return scan.error;
    if (saw_torn && scan.file_bytes > 0) {
      // A crash tears only the segment being appended to — the newest one
      // with any content. Data after a torn segment means lost history:
      // fail closed. (Empty segments past the torn one are fine: segment
      // preallocation creates the next file ahead of rotation, so a torn
      // live segment followed by an empty reserved one is a normal crash
      // shape.)
      return Status(Code::kInternal,
                    "torn tail in non-final wal segment " +
                        Wal::SegmentPath(dir_, torn_seq));
    }
    if (scan.torn_tail) {
      saw_torn = true;
      torn_seq = seq;
      torn_tail_bytes_ += scan.file_bytes - scan.valid_bytes;
    }
    ++replayed_segments_;
    for (const WalRecord& rec : scan.records) {
      ++replayed_records_;
      switch (rec.type) {
        case WalRecordType::kUpsert: {
          CacheValue value;
          value.data = rec.data;
          value.charged_bytes = rec.charged_bytes;
          value.version = rec.version;
          // Rejected only when larger than the cache budget — then it was
          // never accepted live either.
          (void)instance.RestoreEntry(rec.key, std::move(value),
                                      rec.config_id, rec.pinned);
          break;
        }
        case WalRecordType::kDelete:
          instance.RestoreErase(rec.key);
          break;
        case WalRecordType::kQBegin:
          ++qcount[rec.key];
          break;
        case WalRecordType::kQEnd: {
          auto it = qcount.find(rec.key);
          if (it != qcount.end() && it->second > 0) --it->second;
          break;
        }
        case WalRecordType::kConfigId:
          max_config = std::max(max_config, rec.config_id);
          break;
        case WalRecordType::kQClear:
          qcount.clear();
          break;
        case WalRecordType::kWipe:
          instance.RecoverVolatile();
          qcount.clear();
          break;
      }
    }
  }

  // Crash-spanning Q rule (Section 2.3): a key with more QBegins than QEnds
  // had a writer in flight between its data-store update and its
  // delete/replace-and-release — drop it rather than risk a stale read.
  for (const auto& [key, count] : qcount) {
    if (count > 0) {
      instance.RestoreErase(key);
      ++quarantine_drops_;
    }
  }

  // Replay re-enqueued a flush per pinned upsert record; rebuild the queue
  // from the *final* pinned entries so superseded buffered writes are not
  // re-flushed over newer data-store state.
  instance.RebuildFlushQueue();

  instance.ForEachEntry([&max_config](std::string_view, const CacheValue&,
                                      ConfigId config_id, bool) {
    max_config = std::max(max_config, config_id);
  });
  if (max_config > 0) instance.ObserveConfigId(max_config);
  max_config_.store(max_config, std::memory_order_relaxed);

  restored_entries_ = instance.stats().entry_count;
  next_seq = 0;
  if (!listing.wal_seqs.empty()) {
    next_seq = listing.wal_seqs.back() + 1;
  }
  if (!listing.checkpoint_seqs.empty()) {
    next_seq = std::max(next_seq, cp_seq + 1);
  }
  return Status::Ok();
}

Status PersistentStore::Checkpoint() {
  if (instance_ == nullptr) {
    return Status(Code::kInvalidArgument, "persistent store not open");
  }
  uint64_t new_seq = 0;
  {
    // sync_mu_ first: Rotate closes the old segment's fd, which must not
    // happen while an off-thread fsync is in flight on it.
    std::lock_guard<std::mutex> sync_lock(sync_mu_);
    std::lock_guard<std::mutex> lock(mu_);
    if (!error_.ok()) return error_;
    const uint64_t closing_bytes = wal_.segment_bytes();
    if (Status s = wal_.Rotate(); !s.ok()) {
      error_ = s;
      recording_.store(false, std::memory_order_release);
      return s;
    }
    // The closed segment stays replay debt until the snapshot below lands;
    // if it fails, these bytes keep counting toward the next lag-triggered
    // attempt instead of vanishing with the rotation.
    uncovered_bytes_ += closing_bytes;
    new_seq = wal_.seq();
    WalRecord head;
    head.type = WalRecordType::kConfigId;
    head.config_id = max_config_.load(std::memory_order_relaxed);
    if (Status s = wal_.Append(head, /*sync_now=*/true); !s.ok()) {
      error_ = s;
      recording_.store(false, std::memory_order_release);
      return s;
    }
    appended_records_.fetch_add(1, std::memory_order_relaxed);
  }
  // Serialize outside mu_: ForEachEntry holds every stripe lock, and writers
  // blocked on stripes must not be deadlocked against the log mutex. Records
  // racing into segment new_seq before the cut are replayed on top of the
  // checkpoint — idempotent, they carry exact values in original order.
  if (Status s = checkpoints_.Write(*instance_, new_seq); !s.ok()) return s;
  if (Status s = checkpoints_.GarbageCollect(new_seq); !s.ok()) return s;
  {
    // The checkpoint covers every segment below new_seq; only the live
    // segment's bytes (records that raced in since the cut) remain as lag.
    std::lock_guard<std::mutex> lock(mu_);
    uncovered_bytes_ = 0;
  }
  return Status::Ok();
}

Result<bool> PersistentStore::MaybeCheckpoint() {
  if (instance_ == nullptr) {
    return Status(Code::kInvalidArgument, "persistent store not open");
  }
  bool want = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    want = options_.checkpoint_lag_bytes > 0 && wal_.is_open() &&
           uncovered_bytes_ + wal_.segment_bytes() >
               options_.checkpoint_lag_bytes;
  }
  if (!want) return false;
  if (Status s = Checkpoint(); !s.ok()) return s;
  return true;
}

Status PersistentStore::Sync() {
  // Wait for the writer to drain everything enqueued so far, then fsync.
  {
    std::unique_lock<std::mutex> lock(q_mu_);
    const uint64_t target = enqueued_;
    q_done_cv_.wait(lock, [this, target] {
      return written_ >= target ||
             !recording_.load(std::memory_order_acquire);
    });
  }
  return SyncOffThread();
}

Status PersistentStore::SyncOffThread() {
  std::lock_guard<std::mutex> sync_lock(sync_mu_);
  Wal::SyncToken token;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!error_.ok()) return error_;
    if (!wal_.is_open()) return Status::Ok();
    token = wal_.PrepareSync();
  }
  // The fsync runs with mu_ released: appends land in the page cache and
  // ride to the next sync. sync_mu_ keeps the fd alive under us.
  Status s = wal_.CompleteSync(token);
  if (!s.ok()) {
    std::lock_guard<std::mutex> lock(mu_);
    error_ = s;
    recording_.store(false, std::memory_order_release);
  }
  return s;
}

void PersistentStore::Close() {
  // Stop the writer first: it drains the queue fully before exiting, so
  // every record accepted by Append reaches write(2); wal_.Close() below
  // then makes the tail durable.
  {
    std::lock_guard<std::mutex> lock(q_mu_);
    writer_stop_ = true;
  }
  q_cv_.notify_all();
  q_space_cv_.notify_all();
  if (writer_thread_.joinable()) writer_thread_.join();
  {
    std::lock_guard<std::mutex> lock(bg_mu_);
    stop_ = true;
  }
  bg_cv_.notify_all();
  if (bg_thread_.joinable()) bg_thread_.join();
  recording_.store(false, std::memory_order_release);
  std::lock_guard<std::mutex> sync_lock(sync_mu_);
  std::lock_guard<std::mutex> lock(mu_);
  wal_.Close();
}

Status PersistentStore::error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return error_;
}

PersistentStore::Stats PersistentStore::stats() const {
  Stats s;
  s.appended_records = appended_records_.load(std::memory_order_relaxed);
  s.appended_bytes = appended_bytes_.load(std::memory_order_relaxed);
  {
    std::lock_guard<std::mutex> lock(mu_);
    s.fsyncs = wal_.fsync_count();
    // Live-segment bytes plus closed-but-uncovered segments = log the next
    // boot would replay; a successful checkpoint resets this to (nearly)
    // zero, so it doubles as distance-to-next-size-triggered-checkpoint.
    s.checkpoint_lag_bytes = uncovered_bytes_;
    if (wal_.is_open()) s.checkpoint_lag_bytes += wal_.segment_bytes();
  }
  s.checkpoints = checkpoints_.checkpoints_written();
  s.replayed_segments = replayed_segments_;
  s.replay_micros = replay_micros_;
  s.replayed_records = replayed_records_;
  s.restored_entries = restored_entries_;
  s.quarantine_drops = quarantine_drops_;
  s.torn_tail_bytes = torn_tail_bytes_;
  return s;
}

uint64_t PersistentStore::wal_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return wal_.seq();
}

namespace {
/// Backpressure bound on the writer queue: when the disk cannot keep up,
/// producers wait rather than buffering framed bytes without limit.
constexpr size_t kMaxPendingBytes = 8 << 20;
/// Enough pending bytes to skip the writer's accumulation window and write
/// immediately — a burst this large no longer benefits from waiting.
constexpr size_t kGroupCommitBytes = 512 << 10;
}  // namespace

template <typename Record>
void PersistentStore::AppendImpl(const Record& record, bool sync_now) {
  if (!recording_.load(std::memory_order_acquire)) return;
  uint64_t my_seq = 0;
  bool wake = false;
  {
    std::unique_lock<std::mutex> lock(q_mu_);
    q_space_cv_.wait(lock, [this] {
      return pending_.size() < kMaxPendingBytes || writer_stop_;
    });
    if (writer_stop_ || !recording_.load(std::memory_order_acquire)) return;
    // Notify only on the empty -> non-empty transition: while the writer is
    // busy with a previous batch its wait predicate re-checks the buffer,
    // so the wakeup cannot be lost — and the common case (writer already
    // draining) skips the futex wake entirely.
    wake = pending_.empty() || sync_now;
    const size_t before = pending_.size();
    Wal::EncodeFrame(pending_, record);
    ++pending_records_;
    pending_eager_ |= sync_now;
    my_seq = ++enqueued_;
    appended_records_.fetch_add(1, std::memory_order_relaxed);
    appended_bytes_.fetch_add(pending_.size() - before,
                              std::memory_order_relaxed);
  }
  if (wake) q_cv_.notify_one();
  if (sync_now) {
    // An eager record must be durable before the triggering operation
    // returns (e.g. before a Qareg token escapes). FIFO order means the
    // group fsync that covers it covers everything enqueued before it.
    std::unique_lock<std::mutex> lock(q_mu_);
    q_done_cv_.wait(lock, [this, my_seq] {
      return durable_ >= my_seq ||
             !recording_.load(std::memory_order_acquire);
    });
  }
}

void PersistentStore::Append(const WalRecord& record, bool sync_now) {
  AppendImpl(record, sync_now);
}

void PersistentStore::Append(const WalUpsertRef& record, bool sync_now) {
  AppendImpl(record, sync_now);
}

void PersistentStore::WriterLoop() {
  std::string batch;
  for (;;) {
    size_t count = 0;
    bool has_eager = false;
    batch.clear();
    {
      std::unique_lock<std::mutex> lock(q_mu_);
      q_cv_.wait(lock, [this] { return !pending_.empty() || writer_stop_; });
      if (pending_.empty() && writer_stop_) return;
      if (!writer_stop_ && !pending_eager_ &&
          pending_.size() < kGroupCommitBytes) {
        // Group commit: let a burst of batched-class records accumulate
        // before paying for the write. Crucially this also keeps the writer
        // from preempting the serving thread once per record on small
        // machines — producers only signal on empty->non-empty or eager, and
        // by the time this timer fires the whole burst drains in one
        // write(2). Batched-class records already tolerate the sync_interval
        // loss window (a lost record is a cache miss, never a stale read),
        // so a few milliseconds of page-cache delay changes nothing; eager
        // records skip the wait via the predicate below.
        q_cv_.wait_for(lock, std::chrono::milliseconds(4), [this] {
          return writer_stop_ || pending_eager_ ||
                 pending_.size() >= kGroupCommitBytes;
        });
      }
      batch.swap(pending_);  // pending_ inherits batch's grown capacity
      count = pending_records_;
      pending_records_ = 0;
      has_eager = pending_eager_;
      pending_eager_ = false;
    }
    q_space_cv_.notify_all();

    Status s;
    bool nudge = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (!error_.ok()) {
        s = error_;
      } else {
        // One write(2) for the whole batch; fsync only when a record in it
        // demands durability-before-return (group commit).
        s = wal_.AppendRaw(batch, has_eager);
        if (!s.ok()) {
          // A log with a hole must not pretend to be complete: stop
          // recording so the owner (error()) can fail the instance over
          // rather than let a future recovery miss a delete and serve a
          // stale value.
          error_ = s;
          recording_.store(false, std::memory_order_release);
        } else {
          nudge = !has_eager &&
                  wal_.unsynced_bytes() >= options_.sync_batch_bytes &&
                  options_.sync_interval > 0 &&
                  !sync_requested_.exchange(true, std::memory_order_relaxed);
        }
      }
    }
    {
      std::lock_guard<std::mutex> lock(q_mu_);
      if (s.ok()) {
        written_ += count;
        if (has_eager) durable_ = written_;
      }
    }
    // On failure eager waiters are released by the recording_ flip above;
    // notify unconditionally so none of them sleeps through it.
    q_done_cv_.notify_all();
    if (nudge) bg_cv_.notify_one();
  }
}

void PersistentStore::BackgroundLoop() {
  std::unique_lock<std::mutex> lock(bg_mu_);
  while (!stop_) {
    bg_cv_.wait_for(
        lock, std::chrono::microseconds(options_.sync_interval), [this] {
          return stop_ || sync_requested_.load(std::memory_order_relaxed);
        });
    if (stop_) break;
    sync_requested_.store(false, std::memory_order_relaxed);
    lock.unlock();
    (void)SyncOffThread();
    (void)MaybeCheckpoint();
    lock.lock();
  }
}

// ---- PersistenceSink --------------------------------------------------------

void PersistentStore::OnUpsert(PersistOp op, std::string_view key,
                               const CacheValue& value, ConfigId config_id,
                               bool pinned) {
  if (!recording_.load(std::memory_order_acquire)) return;
  WalUpsertRef rec;  // view: framed under q_mu_ before the sink returns
  rec.origin = static_cast<uint8_t>(op);
  rec.pinned = pinned;
  rec.key = key;
  rec.data = value.data;
  rec.charged_bytes = value.charged_bytes;
  rec.version = value.version;
  rec.config_id = config_id;
  // A write-back install is ack'd to the client while the value exists
  // nowhere but this cache: it must survive a crash, so it skips the batch.
  Append(rec, /*sync_now=*/op == PersistOp::kWriteBack);
}

void PersistentStore::OnDelete(PersistOp op, std::string_view key) {
  if (!recording_.load(std::memory_order_acquire)) return;
  WalRecord rec;
  rec.type = WalRecordType::kDelete;
  rec.origin = static_cast<uint8_t>(op);
  rec.key = std::string(key);
  // Recovery-mode invalidations (iset/idelete) erase entries the protocol
  // has proven unrecoverable; losing one to the batch would resurrect it.
  const bool eager =
      op == PersistOp::kISet || op == PersistOp::kIDelete;
  Append(std::move(rec), eager);
}

void PersistentStore::OnQuarantineBegin(std::string_view key) {
  if (!recording_.load(std::memory_order_acquire)) return;
  WalRecord rec;
  rec.type = WalRecordType::kQBegin;
  rec.key = std::string(key);
  // Must be durable before the Qareg token escapes to the writer: once the
  // writer may have touched the data store, a crash must quarantine the key.
  Append(std::move(rec), /*sync_now=*/true);
}

void PersistentStore::OnQuarantineEnd(std::string_view key) {
  if (!recording_.load(std::memory_order_acquire)) return;
  WalRecord rec;
  rec.type = WalRecordType::kQEnd;
  rec.key = std::string(key);
  // Batched: a lost QEnd merely re-quarantines (over-deletes) after a crash.
  Append(std::move(rec), /*sync_now=*/false);
}

void PersistentStore::OnConfigObserved(ConfigId latest) {
  // Track the max even before recording starts (Open's head record uses it).
  uint64_t seen = max_config_.load(std::memory_order_relaxed);
  while (latest > seen &&
         !max_config_.compare_exchange_weak(seen, latest,
                                            std::memory_order_relaxed)) {
  }
  if (!recording_.load(std::memory_order_acquire)) return;
  WalRecord rec;
  rec.type = WalRecordType::kConfigId;
  rec.config_id = latest;
  // Serving under an older config after a crash would resurrect entries the
  // Rejig rule already discarded in O(1): sync before the grant is usable.
  Append(std::move(rec), /*sync_now=*/true);
}

void PersistentStore::OnQuarantineClear() {
  if (!recording_.load(std::memory_order_acquire)) return;
  WalRecord rec;
  rec.type = WalRecordType::kQClear;
  Append(std::move(rec), /*sync_now=*/false);
}

void PersistentStore::OnVolatileWipe() {
  if (!recording_.load(std::memory_order_acquire)) return;
  WalRecord rec;
  rec.type = WalRecordType::kWipe;
  Append(std::move(rec), /*sync_now=*/true);
}

}  // namespace gemini
