// CoordinatorControl: the Gemini coordinator hosted behind a TransportServer.
//
// This is the glue that puts the control plane on the wire (docs/PROTOCOL.md
// §12). It owns:
//   - one ClusterEndpoint per instance slot (the coordinator's view of the
//     cluster: remote geminids reached over TCP),
//   - the Coordinator itself, unchanged from the in-process build,
//   - a HeartbeatMonitor fed by kCoordRegister / kCoordHeartbeat frames,
//   - a ticker thread that advances failure detection, runs recovery cycles,
//     and renews fragment leases,
// and implements TransportServer::ControlPlane so the server's event-loop
// shards can hand it kCoord* frames.
//
// Detection flow: geminids register and then beat every heartbeat interval.
// The ticker calls HeartbeatMonitor::Tick; a missed-beat verdict gates the
// instance's endpoint *down* first (so the coordinator never publishes into
// a dead instance) and then runs Coordinator::OnInstancesFailed — fragments
// move normal -> transient exactly as in-process. A re-registration gates
// the endpoint up and runs OnInstanceRecovered (transient -> recovery when
// the dirty list survived). Every publish fires the coordinator's config
// listener, which pushes the serialized configuration to all subscribed
// connections via TransportServer::PushConfigToSubscribers — clients learn
// of a Rejig without polling.
//
// Lease discipline: networked fragment leases are short (seconds, not the
// in-process hour) so that a partitioned coordinator fails safe — instances
// stop serving when grants lapse. The ticker re-grants at ~1/3 of the
// lifetime.
//
// Threading: kCoord* handlers run on server shard threads; they only touch
// the monitor under mu_ and reply from coordinator accessors — recovery
// cycles (which fan out RPCs to instances) always run on the ticker thread.
// Shutdown order matters: Stop() this control (halts the ticker and config
// pushes) BEFORE stopping the server, per PushConfigToSubscribers's contract.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <utility>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "src/cluster/cluster_endpoint.h"
#include "src/common/clock.h"
#include "src/coordinator/coordinator.h"
#include "src/coordinator/heartbeat.h"
#include "src/transport/server.h"

namespace gemini {

class CoordinatorControl final : public ControlPlane {
 public:
  struct Options {
    size_t num_instances = 0;
    size_t num_fragments = 0;
    Coordinator::Options coordinator;
    HeartbeatMonitor::Options heartbeat;
    ClusterEndpoint::Options endpoint;
    /// Ticker period; 0 = the heartbeat interval.
    Duration tick_interval = 0;
    /// Invoked after every event that mutated the replicable
    /// CoordinatorState: a registration, a failure/recovery edge (and the
    /// Rejig it published), or a dirty-list/WST report. This is the
    /// replication trigger — CoordinatorReplica uses it to schedule a
    /// kCoordShadowSync to every shadow. Runs on shard threads and the
    /// ticker; must be thread-safe and cheap (a cv notify, not an RPC).
    std::function<void()> on_state_mutation;
  };

  CoordinatorControl(const Clock* clock, Options options);
  ~CoordinatorControl() override;

  CoordinatorControl(const CoordinatorControl&) = delete;
  CoordinatorControl& operator=(const CoordinatorControl&) = delete;

  /// Attaches the server whose subscribed connections receive config pushes
  /// and starts the ticker. Call after server->Start().
  void Start(TransportServer* server);

  /// Halts the ticker and detaches the server (no further pushes). Call
  /// BEFORE server->Stop().
  void Stop();

  // ControlPlane (runs on server shard threads).
  Reply HandleControl(wire::Op op, std::string_view body) override;

  /// `cluster.*` counters for this coordinator's kStats response
  /// (docs/PROTOCOL.md §12.6), mirroring the persist.* pattern.
  std::vector<std::pair<std::string, uint64_t>> ExtraStats() override;

  /// Seeds heartbeat expectation from previously exported coordinator state
  /// (a restarted/promoted coordinator): every instance believed up gets a
  /// registration grace window instead of being failed on the first tick.
  /// Call before Start().
  void ImportState(const CoordinatorState& state);

  [[nodiscard]] Coordinator& coordinator() { return *coordinator_; }
  [[nodiscard]] ClusterEndpoint& endpoint(InstanceId id) {
    return *endpoints_[id];
  }

 private:
  void TickerLoop();
  Reply HandleRegister(std::string_view body);
  Reply HandleHeartbeat(std::string_view body);
  Reply HandleConfig(std::string_view body, bool subscribe);
  Reply HandleReport(std::string_view body);
  Reply HandleDirtyQuery(std::string_view body);

  const Clock* clock_;
  Options options_;
  std::vector<std::unique_ptr<ClusterEndpoint>> endpoints_;
  std::unique_ptr<Coordinator> coordinator_;

  std::mutex mu_;  // guards monitor_ and stop_; never held across RPCs
  HeartbeatMonitor monitor_;
  /// Push target; atomic so the config listener (running under the
  /// coordinator's lock) never takes mu_ — no lock-order edge with threads
  /// that hold mu_ and then call into the coordinator.
  std::atomic<TransportServer*> server_{nullptr};
  bool stop_ = false;
  std::condition_variable ticker_cv_;
  std::thread ticker_;

  // cluster.* counters (kStats; shard threads + ticker, hence atomics).
  std::atomic<uint64_t> registrations_{0};
  std::atomic<uint64_t> heartbeats_received_{0};
  std::atomic<uint64_t> failures_detected_{0};
  std::atomic<uint64_t> recoveries_detected_{0};
};

}  // namespace gemini
