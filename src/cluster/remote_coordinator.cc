#include "src/cluster/remote_coordinator.h"

#include <chrono>
#include <utility>

#include "src/common/logging.h"

namespace gemini {

namespace {

TcpConnection::Options ConnOptions(const RemoteCoordinator::Options& o) {
  TcpConnection::Options c;
  c.io_timeout = o.io_timeout;
  c.connect_timeout = o.connect_timeout;
  return c;
}

/// Decodes `blob serialized_configuration` into a Configuration.
ConfigurationPtr ParseConfigBody(std::string_view body) {
  wire::Reader r(body);
  std::string_view blob;
  if (!r.GetBlob(&blob) || !r.Done()) return nullptr;
  auto config = Configuration::Deserialize(blob);
  if (!config.has_value()) return nullptr;
  return std::make_shared<const Configuration>(std::move(*config));
}

}  // namespace

void RemoteCoordinator::State::Adopt(ConfigurationPtr fresh) {
  if (!fresh) return;
  std::lock_guard<std::mutex> lock(mu);
  if (config && config->id() >= fresh->id()) return;  // ids only move forward
  latest.store(fresh->id(), std::memory_order_release);
  config = std::move(fresh);
}

RemoteCoordinator::RemoteCoordinator(std::vector<Endpoint> endpoints,
                                     Options options)
    : state_(std::make_shared<State>()), options_(options) {
  conns_.reserve(endpoints.size());
  std::weak_ptr<State> weak = state_;
  for (const auto& ep : endpoints) {
    auto conn = TcpConnection::Acquire(ep.host, ep.port, wire::kAnyInstance,
                                       ConnOptions(options));
    // Every endpoint keeps a push handler: after a failover the new master
    // pushes on whichever connection re-subscribed, and a straggler push
    // from a fenced ex-master is inert (ids adopt only forward).
    conn->AddPushHandler([weak](uint8_t tag, const std::string& body) {
      if (tag != wire::kPushConfigTag) return;
      if (auto state = weak.lock()) state->Adopt(ParseConfigBody(body));
    });
    conns_.push_back(std::move(conn));
  }
  if (options_.rewatch_interval > 0) {
    rewatcher_ = std::thread([this] { RewatchLoop(); });
  }
}

RemoteCoordinator::~RemoteCoordinator() {
  {
    std::lock_guard<std::mutex> lock(stop_mu_);
    stop_ = true;
  }
  stop_cv_.notify_all();
  if (rewatcher_.joinable()) rewatcher_.join();
}

Status RemoteCoordinator::TransactFailover(wire::Op op, std::string_view body,
                                           std::string* resp,
                                           bool rotate_on_unavailable) const {
  const size_t n = conns_.size();
  const size_t start = active_.load(std::memory_order_acquire);
  Status last = Status(Code::kUnavailable, "no coordinator endpoints");
  for (size_t i = 0; i < n; ++i) {
    const size_t idx = (start + i) % n;
    resp->clear();
    last = conns_[idx]->Transact(op, body, resp);
    if (last.ok()) {
      if (idx != start) {
        active_.store(idx, std::memory_order_release);
        endpoint_switches_.fetch_add(1, std::memory_order_relaxed);
      }
      return last;
    }
    if (last.code() == Code::kNotMaster) {
      // A shadow (or a fenced ex-master) definitively did not serve this;
      // the master is elsewhere in the list.
      not_master_bounces_.fetch_add(1, std::memory_order_relaxed);
      continue;
    }
    if (last.code() == Code::kUnavailable && rotate_on_unavailable) continue;
    return last;  // a definitive answer (or an ambiguous loss, fail-fast op)
  }
  return last;
}

Status RemoteCoordinator::Refresh() {
  std::string body;
  wire::PutU64(body, state_->latest.load(std::memory_order_acquire));
  std::string resp;
  const Status s = TransactFailover(wire::Op::kCoordConfigWatch, body, &resp,
                                    /*rotate_on_unavailable=*/true);
  if (!s.ok()) return s;
  ConfigurationPtr config = ParseConfigBody(resp);
  if (!config) return Status(Code::kInternal, "malformed configuration body");
  state_->Adopt(std::move(config));
  return Status::Ok();
}

void RemoteCoordinator::RewatchLoop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(stop_mu_);
      stop_cv_.wait_for(lock,
                        std::chrono::microseconds(options_.rewatch_interval),
                        [&] { return stop_; });
      if (stop_) return;
    }
    (void)Refresh();  // unreachable coordinator: keep the cached snapshot
  }
}

ConfigurationPtr RemoteCoordinator::GetConfiguration() const {
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->config;
}

ConfigId RemoteCoordinator::latest_id() const {
  return state_->latest.load(std::memory_order_acquire);
}

RemoteCoordinator::Stats RemoteCoordinator::stats() const {
  Stats out;
  out.endpoint_switches = endpoint_switches_.load(std::memory_order_relaxed);
  out.not_master_bounces = not_master_bounces_.load(std::memory_order_relaxed);
  return out;
}

void RemoteCoordinator::Report(wire::CoordEvent event, FragmentId fragment) {
  std::string body;
  wire::PutU8(body, static_cast<uint8_t>(event));
  wire::PutU32(body, fragment);
  std::string resp;
  // Rotate past shadows (a kNotMaster answer means the report was not
  // applied), but stay fail-fast on kUnavailable: a replayed report after
  // an ambiguous loss could land twice across a mode transition.
  const Status s = TransactFailover(wire::Op::kCoordReport, body, &resp,
                                    /*rotate_on_unavailable=*/false);
  if (!s.ok()) {
    // Fail-fast by design: the reporter's next pass re-derives the fact.
    LOG_WARN << "coordinator report (event " << static_cast<int>(event)
             << ", fragment " << fragment << ") lost: " << s.ToString();
  }
}

void RemoteCoordinator::OnDirtyListProcessed(FragmentId fragment) {
  Report(wire::CoordEvent::kDirtyListProcessed, fragment);
}

void RemoteCoordinator::OnWorkingSetTransferTerminated(FragmentId fragment) {
  Report(wire::CoordEvent::kWorkingSetTransferTerminated, fragment);
}

void RemoteCoordinator::OnDirtyListUnavailable(FragmentId fragment) {
  Report(wire::CoordEvent::kDirtyListUnavailable, fragment);
}

bool RemoteCoordinator::DirtyProcessed(FragmentId fragment) const {
  std::string body;
  wire::PutU32(body, fragment);
  std::string resp;
  const Status s = TransactFailover(wire::Op::kCoordDirtyQuery, body, &resp,
                                    /*rotate_on_unavailable=*/true);
  if (!s.ok()) return false;
  wire::Reader r(resp);
  uint8_t processed = 0;
  if (!r.GetU8(&processed) || !r.Done()) return false;
  return processed != 0;
}

}  // namespace gemini
