// ClusterEndpoint: a remote geminid instance as seen by the coordinator.
//
// Implements InstanceEndpoint over a TcpConnection, so the unchanged
// Coordinator drives real processes: lease grants become kLeaseGrant frames
// (TTL on the wire — the instance computes the expiry on its own clock,
// docs/PROTOCOL.md §12.3), and config-entry / dirty-list accesses become
// internal-context kGet/kSet/kDelete.
//
// The endpoint is *gated*: available() reflects what the control plane
// believes (heartbeat state), not the socket. CoordinatorControl gates an
// endpoint down before telling the coordinator it failed and up when it
// re-registers, so the coordinator never tries to publish into an instance
// the failure detector has written off. Until the first registration
// attaches a host:port, every operation is a cheap no-op / kUnavailable.
//
// Calls carry short timeouts and a circuit breaker: the coordinator's
// ticker must never hang on a half-dead instance longer than one beat or
// two.
//
// Thread-safe.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>

#include "src/common/status.h"
#include "src/common/types.h"
#include "src/coordinator/instance_endpoint.h"
#include "src/transport/tcp_connection.h"

namespace gemini {

class ClusterEndpoint final : public InstanceEndpoint {
 public:
  struct Options {
    /// Per-call socket timeout. Control traffic is tiny; anything slower
    /// than this is as good as down for the coordinator's purposes.
    Duration io_timeout = Seconds(1);
    Duration connect_timeout = Millis(500);
  };

  ClusterEndpoint(InstanceId id, Options options)
      : id_(id), options_(options) {}

  /// Binds (or re-binds, after a restart on a new port) the endpoint to the
  /// instance's advertised address. Resets the connection when the address
  /// changed. Does not dial — the first operation does.
  void Attach(const std::string& host, uint16_t port);

  /// Control-plane gate (heartbeat verdict). A gated-down endpoint drops
  /// every operation without touching the socket.
  void SetUp(bool up);

  [[nodiscard]] bool available() const override;

  void GrantLease(FragmentId fragment, ConfigId min_valid_config, Duration ttl,
                  ConfigId latest_config) override;
  void RevokeLease(FragmentId fragment, ConfigId latest_config) override;
  Result<CacheValue> Get(std::string_view key) override;
  Status Set(std::string_view key, CacheValue value) override;
  Status Delete(std::string_view key) override;

  [[nodiscard]] InstanceId id() const { return id_; }

 private:
  /// Connection snapshot, or nullptr when unattached or gated down.
  std::shared_ptr<TcpConnection> Conn() const;
  Status Transact(wire::Op op, std::string_view body, std::string* resp);

  const InstanceId id_;
  const Options options_;

  mutable std::mutex mu_;
  std::string host_;
  uint16_t port_ = 0;
  bool up_ = false;
  std::shared_ptr<TcpConnection> conn_;
};

}  // namespace gemini
