// CoordinatorReplica: one member of a replicated geminicoordd group —
// master + shadow coordinator processes with election and epoch fencing
// (Section 2.1; docs/PROTOCOL.md §12.7).
//
// The paper backs the coordinator with one master and shadow coordinators
// behind ZooKeeper. CoordinatorGroup models that in-process; this class is
// the multi-process form: every geminicoordd hosts a CoordinatorReplica,
// which owns at most one CoordinatorControl (the actual coordinator) and
// decides, via a small replication protocol, whether this process is the
// master running it or a shadow holding a replica of its state.
//
// Replication: after every state-mutating event (a registration, a
// failure/recovery edge and its Rejig, a dirty-list/WST report — the
// CoordinatorControl on_state_mutation hook) and on a periodic beat, the
// master pushes its full serialized CoordinatorState to every peer as a
// kCoordShadowSync frame carrying (master epoch, rank). The state is small —
// one entry per fragment — so full-state replication beats a delta protocol
// on simplicity and is self-healing: one received sync makes any shadow
// current.
//
// Election: deterministic and rank-staggered, no quorum. All replicas boot
// as shadows; a shadow that has heard no master sync for
// election_timeout * (rank + 1) promotes itself. Staggering means the
// lowest-ranked live shadow claims mastership first and its syncs reset
// everyone else's timers before their own deadlines fire. Promotion bumps
// the master epoch past every epoch this replica has seen, imports the
// replicated state into a fresh CoordinatorControl (Coordinator::ImportState
// re-publishes and re-grants fragment leases; the heartbeat monitor opens
// the registration grace window so surviving geminids re-attach without
// reading as a cluster outage), and starts serving kCoord* ops.
//
// Fencing: two replicas can transiently both believe they are master (the
// old one was partitioned, not dead). Syncs resolve it: a receiver that has
// seen a strictly newer claim — higher epoch, or same epoch and lower rank —
// answers kNotMaster, and a master whose sync is rejected demotes itself
// back to shadow. Clients are protected even before the loser hears a
// rejection: a promoted master at epoch E >= 2 mints configuration ids
// above (E << 32) (see CoordinatorState::master_epoch), so everything the
// stale ex-master publishes is older by id and clients — which adopt
// configurations only forward — ignore it.
//
// Threading: kCoord* handlers run on server shard threads and only copy the
// active control pointer under mu_; the replication loop runs on its own
// thread and is the only sender of syncs. The loop's wakeup cv uses a
// separate mutex from mu_ so the control's threads can nudge it while a
// shard thread holds mu_.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <thread>
#include <utility>
#include <vector>

#include "src/cluster/coordinator_control.h"
#include "src/common/clock.h"
#include "src/coordinator/coordinator.h"
#include "src/transport/server.h"
#include "src/transport/tcp_connection.h"

namespace gemini {

/// CoordinatorState <-> bytes, the payload of kCoordShadowSync. Versioned
/// and length-checked; Decode returns false on any malformed input.
void EncodeCoordinatorState(std::string& out, const CoordinatorState& state);
bool DecodeCoordinatorState(std::string_view in, CoordinatorState* state);

class CoordinatorReplica final : public ControlPlane {
 public:
  struct PeerEndpoint {
    std::string host;
    uint16_t port = 0;
  };

  struct Options {
    /// Options for the CoordinatorControl this replica runs while master.
    /// Its on_state_mutation hook is chained: the replica installs its own
    /// replication nudge and still calls any hook supplied here.
    CoordinatorControl::Options control;
    /// The other members of the coordinator group. Listing this process
    /// itself is harmless (its own echoed claim is acked and ignored — ranks
    /// are unique), so every member may be handed the identical full list.
    /// Empty = single-coordinator deployment: the replica promotes itself
    /// immediately on Start(), preserving the pre-HA geminicoordd behavior.
    std::vector<PeerEndpoint> peers;
    /// This replica's election rank (its index in the deployment's ordered
    /// coordinator list). Must be unique across the group: ties in epoch
    /// are broken lowest-rank-wins, and the election delay is staggered by
    /// rank so the lowest live rank claims mastership first.
    uint32_t rank = 0;
    /// Master -> shadow sync beat; a sync is also sent immediately after
    /// every state mutation. 0 = the control heartbeat interval.
    Duration sync_interval = 0;
    /// Base election delay: a shadow promotes after hearing no master sync
    /// for election_timeout * (rank + 1). Must comfortably exceed
    /// sync_interval plus the worst-case stall of one sync round (a dead
    /// peer costs up to peer_connect_timeout until its breaker opens).
    /// 0 = 6 * sync_interval.
    Duration election_timeout = 0;
    /// Dial/IO budget per peer sync. Short on purpose: a dead shadow must
    /// not stall the master's beat to the live ones past their deadlines.
    Duration peer_connect_timeout = Millis(200);
    Duration peer_io_timeout = Millis(400);
  };

  CoordinatorReplica(const Clock* clock, Options options);
  ~CoordinatorReplica() override;

  CoordinatorReplica(const CoordinatorReplica&) = delete;
  CoordinatorReplica& operator=(const CoordinatorReplica&) = delete;

  /// Attaches the server (config-push target for the control while master)
  /// and starts the replication/election loop. Call after server->Start().
  void Start(TransportServer* server);

  /// Halts the loop and the active control, if any. Call BEFORE
  /// server->Stop().
  void Stop();

  // ControlPlane (server shard threads). kCoordShadowSync is handled here
  // in both roles; every other kCoord* op is delegated to the active
  // control while master and answered kNotMaster while shadow.
  Reply HandleControl(wire::Op op, std::string_view body) override;

  /// cluster.* counters: the active control's (while master) plus the
  /// replica's own role/election/replication counters.
  std::vector<std::pair<std::string, uint64_t>> ExtraStats() override;

  [[nodiscard]] bool is_master() const;
  /// Highest master epoch this replica has seen (its own while master).
  [[nodiscard]] uint64_t epoch() const;
  [[nodiscard]] uint32_t rank() const { return options_.rank; }
  [[nodiscard]] uint64_t promotions() const {
    return promotions_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] uint64_t demotions() const {
    return demotions_.load(std::memory_order_relaxed);
  }
  /// The active control (nullptr while shadow). The pointer stays valid
  /// while the caller can exclude a concurrent demotion (tests).
  [[nodiscard]] CoordinatorControl* control();

 private:
  enum class Role : uint8_t { kShadow, kMaster };

  void ReplicaLoop();
  /// Wakes the loop now (state mutated -> replicate promptly).
  void Nudge();
  /// Builds + starts a CoordinatorControl from the replicated state (or
  /// fresh when none was ever received), under mu_.
  void PromoteLocked();
  /// Stops and drops the active control; epoch_ has already been raised to
  /// the newer claim. Requires mu_.
  void StepDownLocked();
  /// Sends one full-state sync to every peer; demotes on a kNotMaster
  /// rejection. Runs on the loop thread, without mu_ held across RPCs.
  void ReplicateOnce();
  Reply HandleShadowSync(std::string_view body);

  const Clock* clock_;
  Options options_;
  std::vector<std::shared_ptr<TcpConnection>> peer_conns_;

  mutable std::mutex mu_;  // role state; never held across peer RPCs
  Role role_ = Role::kShadow;
  /// Highest master epoch seen; our own epoch while master.
  uint64_t epoch_ = 0;
  /// Rank of the replica whose mastership claim we currently accept
  /// (UINT32_MAX until the first sync or promotion).
  uint32_t master_rank_ = UINT32_MAX;
  Timestamp last_master_contact_ = 0;
  std::optional<CoordinatorState> replicated_state_;
  /// shared_ptr so a shard thread mid-delegation keeps the control alive
  /// across a concurrent step-down.
  std::shared_ptr<CoordinatorControl> control_;
  /// Demoted controls parked for the loop thread to Stop(): joining a
  /// control's ticker must never happen on a server shard thread.
  std::vector<std::shared_ptr<CoordinatorControl>> retired_;
  TransportServer* server_ = nullptr;

  /// Loop wakeup; separate mutex from mu_ (see header comment).
  std::mutex wake_mu_;
  std::condition_variable wake_cv_;
  bool wake_ = false;
  bool stop_ = false;
  std::thread loop_;

  // cluster.* counters.
  std::atomic<uint64_t> promotions_{0};
  std::atomic<uint64_t> demotions_{0};
  std::atomic<uint64_t> syncs_sent_{0};
  std::atomic<uint64_t> syncs_received_{0};
  std::atomic<uint64_t> sync_send_failures_{0};
  std::atomic<uint64_t> sync_rejections_rx_{0};  // peers rejected our sync
  std::atomic<uint64_t> syncs_rejected_{0};      // we rejected a stale sync
  std::atomic<uint64_t> replication_bytes_{0};
  /// Timestamp of the last sync round in which every peer acked (replication
  /// lag = now - this while master; 0 before the first complete round).
  std::atomic<Timestamp> last_full_ack_{0};
};

}  // namespace gemini
