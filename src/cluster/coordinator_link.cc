#include "src/cluster/coordinator_link.h"

#include <chrono>
#include <utility>

#include "src/common/logging.h"
#include "src/transport/wire.h"

namespace gemini {

CoordinatorLink::CoordinatorLink(Options options)
    : options_(std::move(options)) {
  TcpConnection::Options conn_opts;
  conn_opts.io_timeout = options_.io_timeout;
  conn_opts.connect_timeout = options_.connect_timeout;
  std::vector<Endpoint> endpoints = options_.coordinators;
  if (endpoints.empty()) {
    endpoints.push_back({options_.coordinator_host, options_.coordinator_port});
  }
  conns_.reserve(endpoints.size());
  for (const auto& ep : endpoints) {
    conns_.push_back(
        TcpConnection::Acquire(ep.host, ep.port, wire::kAnyInstance,
                               conn_opts));
  }
}

CoordinatorLink::~CoordinatorLink() { Stop(); }

void CoordinatorLink::Start() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (thread_.joinable()) return;
    stop_ = false;
  }
  thread_ = std::thread([this] { Loop(); });
}

void CoordinatorLink::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void CoordinatorLink::Rotate() {
  if (conns_.size() < 2) return;
  active_ = (active_ + 1) % conns_.size();
  endpoint_switches_.fetch_add(1, std::memory_order_relaxed);
  LOG_INFO << "instance " << options_.instance
           << ": rotating to coordinator endpoint " << active_;
}

bool CoordinatorLink::TryRegister() {
  std::string body;
  wire::PutU32(body, options_.instance);
  wire::PutBlob(body, options_.advertise_host);
  wire::PutU16(body, options_.advertise_port);
  std::string resp;
  const Status s = conn().Transact(wire::Op::kCoordRegister, body, &resp);
  if (!s.ok()) {
    // Dead (kUnavailable) or shadow (kNotMaster) coordinator: try the next
    // endpoint on the following round. Registration is idempotent, so
    // landing on the real master twice is harmless.
    Rotate();
    return false;
  }
  wire::Reader r(resp);
  uint64_t latest = 0;
  if (!r.GetU64(&latest) || !r.Done()) return false;
  if (options_.on_config_id) options_.on_config_id(latest);
  LOG_INFO << "instance " << options_.instance
           << ": registered with coordinator (config id " << latest << ")";
  return true;
}

bool CoordinatorLink::TryHeartbeat() {
  std::string body;
  wire::PutU32(body, 1);
  wire::PutU32(body, options_.instance);
  std::string resp;
  const Status s = conn().Transact(wire::Op::kCoordHeartbeat, body, &resp);
  if (!s.ok()) {
    // The master died or was demoted under us; re-register with the next
    // endpoint (the promoted master's grace window expects exactly that).
    Rotate();
    return false;
  }
  wire::Reader r(resp);
  uint64_t latest = 0;
  uint8_t still_registered = 0;
  if (!r.GetU64(&latest) || !r.GetU8(&still_registered) || !r.Done()) {
    return false;
  }
  if (options_.on_config_id) options_.on_config_id(latest);
  // registered=0 means the coordinator failed this instance (missed beats,
  // or a restarted coordinator that never saw it): fall back to
  // registration, the explicit recovery edge.
  return still_registered != 0;
}

void CoordinatorLink::Loop() {
  for (;;) {
    {
      std::unique_lock<std::mutex> lock(mu_);
      cv_.wait_for(lock,
                   std::chrono::microseconds(options_.heartbeat_interval),
                   [&] { return stop_; });
      if (stop_) return;
    }
    if (!registered_.load(std::memory_order_acquire)) {
      registered_.store(TryRegister(), std::memory_order_release);
      continue;
    }
    if (!TryHeartbeat()) {
      // The coordinator may have restarted (and forgotten this instance's
      // address) — fall back to registration next round.
      registered_.store(false, std::memory_order_release);
    }
  }
}

}  // namespace gemini
