#include "src/cluster/coordinator_replica.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "src/common/logging.h"
#include "src/transport/wire.h"

namespace gemini {

namespace {

constexpr uint32_t kStateCodecVersion = 1;

}  // namespace

void EncodeCoordinatorState(std::string& out, const CoordinatorState& state) {
  wire::PutU32(out, kStateCodecVersion);
  wire::PutU64(out, state.master_epoch);
  wire::PutU64(out, state.next_config_id);
  wire::PutU64(out, state.discarded_fragments);
  wire::PutU64(out, static_cast<uint64_t>(state.round_robin_cursor));
  wire::PutU32(out, static_cast<uint32_t>(state.believed_up.size()));
  for (const bool up : state.believed_up) wire::PutU8(out, up ? 1 : 0);
  wire::PutU32(out, static_cast<uint32_t>(state.fragments.size()));
  for (const auto& fe : state.fragments) {
    wire::PutU32(out, fe.assignment.primary);
    wire::PutU32(out, fe.assignment.secondary);
    wire::PutU64(out, fe.assignment.config_id);
    wire::PutU8(out, static_cast<uint8_t>(fe.assignment.mode));
    wire::PutU32(out, fe.assignment.epoch);
    wire::PutU64(out, fe.prefailure_config_id);
    wire::PutU64(out, fe.secondary_created_id);
    wire::PutU8(out, fe.dirty_processed ? 1 : 0);
    wire::PutU8(out, fe.wst_terminated ? 1 : 0);
  }
}

bool DecodeCoordinatorState(std::string_view in, CoordinatorState* state) {
  wire::Reader r(in);
  uint32_t version = 0;
  if (!r.GetU32(&version) || version != kStateCodecVersion) return false;
  uint64_t cursor = 0;
  if (!r.GetU64(&state->master_epoch) || !r.GetU64(&state->next_config_id) ||
      !r.GetU64(&state->discarded_fragments) || !r.GetU64(&cursor)) {
    return false;
  }
  state->round_robin_cursor = static_cast<size_t>(cursor);
  uint32_t n = 0;
  if (!r.GetU32(&n)) return false;
  state->believed_up.clear();
  state->believed_up.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    uint8_t up = 0;
    if (!r.GetU8(&up)) return false;
    state->believed_up.push_back(up != 0);
  }
  if (!r.GetU32(&n)) return false;
  state->fragments.clear();
  state->fragments.reserve(n);
  for (uint32_t i = 0; i < n; ++i) {
    CoordinatorState::FragmentEntry fe;
    uint8_t mode = 0;
    uint8_t dirty = 0;
    uint8_t wst = 0;
    if (!r.GetU32(&fe.assignment.primary) ||
        !r.GetU32(&fe.assignment.secondary) ||
        !r.GetU64(&fe.assignment.config_id) || !r.GetU8(&mode) ||
        !r.GetU32(&fe.assignment.epoch) || !r.GetU64(&fe.prefailure_config_id) ||
        !r.GetU64(&fe.secondary_created_id) || !r.GetU8(&dirty) ||
        !r.GetU8(&wst) ||
        mode > static_cast<uint8_t>(FragmentMode::kRecovery)) {
      return false;
    }
    fe.assignment.mode = static_cast<FragmentMode>(mode);
    fe.dirty_processed = dirty != 0;
    fe.wst_terminated = wst != 0;
    state->fragments.push_back(fe);
  }
  return r.Done();
}

CoordinatorReplica::CoordinatorReplica(const Clock* clock, Options options)
    : clock_(clock), options_(std::move(options)) {
  if (options_.sync_interval == 0) {
    options_.sync_interval = options_.control.heartbeat.interval;
  }
  if (options_.sync_interval == 0) options_.sync_interval = Millis(100);
  if (options_.election_timeout == 0) {
    options_.election_timeout = 6 * options_.sync_interval;
  }
  // Chain the mutation hook: the control nudges replication, and any hook
  // the deployment supplied still fires.
  auto user_hook = options_.control.on_state_mutation;
  options_.control.on_state_mutation = [this, user_hook] {
    if (user_hook) user_hook();
    Nudge();
  };
  peer_conns_.reserve(options_.peers.size());
  for (const auto& peer : options_.peers) {
    TcpConnection::Options c;
    c.connect_timeout = options_.peer_connect_timeout;
    c.io_timeout = options_.peer_io_timeout;
    // A dead shadow must cost the sync round as little as possible: trip
    // the breaker quickly, probe again within a few beats.
    c.breaker_failure_threshold = 3;
    c.breaker_cooldown = std::max<Duration>(Millis(250), options_.sync_interval);
    peer_conns_.push_back(
        TcpConnection::Acquire(peer.host, peer.port, wire::kAnyInstance, c));
  }
}

CoordinatorReplica::~CoordinatorReplica() { Stop(); }

void CoordinatorReplica::Start(TransportServer* server) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    server_ = server;
    last_master_contact_ = clock_->Now();
    // Single-coordinator deployment: no one to elect against, become the
    // master right away (pre-HA geminicoordd behavior).
    if (options_.peers.empty()) PromoteLocked();
  }
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    stop_ = false;
    wake_ = false;
  }
  loop_ = std::thread([this] { ReplicaLoop(); });
}

void CoordinatorReplica::Stop() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    if (stop_ && !loop_.joinable()) return;
    stop_ = true;
  }
  wake_cv_.notify_all();
  if (loop_.joinable()) loop_.join();
  std::shared_ptr<CoordinatorControl> control;
  {
    std::lock_guard<std::mutex> lock(mu_);
    control = std::move(control_);
    role_ = Role::kShadow;
    server_ = nullptr;
  }
  if (control) control->Stop();
}

void CoordinatorReplica::Nudge() {
  {
    std::lock_guard<std::mutex> lock(wake_mu_);
    wake_ = true;
  }
  wake_cv_.notify_all();
}

void CoordinatorReplica::ReplicaLoop() {
  for (;;) {
    std::vector<std::shared_ptr<CoordinatorControl>> retired;
    {
      std::unique_lock<std::mutex> lock(wake_mu_);
      wake_cv_.wait_for(lock,
                        std::chrono::microseconds(options_.sync_interval),
                        [&] { return stop_ || wake_; });
      if (stop_) return;
      wake_ = false;
    }
    bool master = false;
    {
      std::lock_guard<std::mutex> lock(mu_);
      retired.swap(retired_);
      if (role_ == Role::kMaster) {
        master = true;
      } else {
        // Rank-staggered election: the lowest live rank's deadline fires
        // first, and its first sync resets every later rank's timer.
        const Duration deadline =
            options_.election_timeout *
            (static_cast<Duration>(options_.rank) + 1);
        if (clock_->Now() - last_master_contact_ >= deadline) {
          PromoteLocked();
          master = true;
        }
      }
    }
    // Joining a demoted control's ticker happens here, never on a shard
    // thread and never under mu_.
    for (auto& c : retired) c->Stop();
    retired.clear();
    if (master) ReplicateOnce();
  }
}

void CoordinatorReplica::PromoteLocked() {
  epoch_ += 1;
  auto control = std::make_shared<CoordinatorControl>(clock_, options_.control);
  // Promotion = ImportState + registration grace window: adopt the dead
  // master's replicated state (or this control's own fresh table on a cold
  // boot), stamped with the new epoch so the config-id floor fences any
  // still-live ex-master, then let believed-up instances re-register
  // without reading as a cluster-wide outage.
  CoordinatorState state = replicated_state_.has_value()
                               ? *replicated_state_
                               : control->coordinator().ExportState();
  state.master_epoch = epoch_;
  control->ImportState(state);
  control->Start(server_);
  control_ = std::move(control);
  role_ = Role::kMaster;
  master_rank_ = options_.rank;
  promotions_.fetch_add(1, std::memory_order_relaxed);
  LOG_INFO << "coordinator replica rank " << options_.rank
           << ": promoted to master (epoch " << epoch_ << ")";
}

void CoordinatorReplica::StepDownLocked() {
  if (control_) retired_.push_back(std::move(control_));
  control_.reset();
  role_ = Role::kShadow;
  master_rank_ = UINT32_MAX;
  // Full election delay before this replica may claim mastership again; by
  // then the real master's syncs will have reset the timer.
  last_master_contact_ = clock_->Now();
  demotions_.fetch_add(1, std::memory_order_relaxed);
  LOG_WARN << "coordinator replica rank " << options_.rank
           << ": demoted to shadow (saw epoch " << epoch_ << ")";
}

void CoordinatorReplica::ReplicateOnce() {
  uint64_t epoch = 0;
  std::shared_ptr<CoordinatorControl> control;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (role_ != Role::kMaster) return;
    epoch = epoch_;
    control = control_;
  }
  CoordinatorState state = control->coordinator().ExportState();
  state.master_epoch = epoch;
  std::string blob;
  EncodeCoordinatorState(blob, state);
  std::string body;
  wire::PutU64(body, epoch);
  wire::PutU32(body, options_.rank);
  wire::PutBlob(body, blob);
  bool all_acked = true;
  for (auto& conn : peer_conns_) {
    std::string resp;
    const Status s = conn->Transact(wire::Op::kCoordShadowSync, body, &resp);
    if (s.ok()) {
      syncs_sent_.fetch_add(1, std::memory_order_relaxed);
      replication_bytes_.fetch_add(body.size(), std::memory_order_relaxed);
      continue;
    }
    if (s.code() == Code::kNotMaster) {
      // A peer has seen a strictly newer mastership claim: fence ourselves.
      sync_rejections_rx_.fetch_add(1, std::memory_order_relaxed);
      std::lock_guard<std::mutex> lock(mu_);
      if (role_ == Role::kMaster && epoch_ == epoch) StepDownLocked();
      return;
    }
    // Unreachable shadow: it will be caught up by a later beat (full-state
    // sync is self-healing); the breaker keeps a dead peer cheap.
    sync_send_failures_.fetch_add(1, std::memory_order_relaxed);
    all_acked = false;
  }
  if (all_acked) {
    last_full_ack_.store(clock_->Now(), std::memory_order_relaxed);
  }
}

ControlPlane::Reply CoordinatorReplica::HandleShadowSync(
    std::string_view body) {
  wire::Reader r(body);
  uint64_t epoch = 0;
  uint32_t rank = 0;
  std::string_view blob;
  if (!r.GetU64(&epoch) || !r.GetU32(&rank) || !r.GetBlob(&blob) ||
      !r.Done()) {
    return {Status(Code::kInvalidArgument, "malformed kCoordShadowSync"), {},
            false};
  }
  CoordinatorState state;
  if (!DecodeCoordinatorState(blob, &state)) {
    return {Status(Code::kInvalidArgument, "malformed coordinator state"), {},
            false};
  }
  std::lock_guard<std::mutex> lock(mu_);
  // A claim carrying our own rank is our own sync echoed back: ranks are
  // unique within a group, so this only happens when the operator listed
  // this replica in its own --peers. Ack without applying — treating the
  // echo as a foreign claim would make a boot master demote itself.
  if (rank == options_.rank) {
    Reply reply;
    wire::PutU64(reply.body, epoch_);
    return reply;
  }
  // Mastership claims are ordered by (epoch, rank): higher epoch wins, and
  // within one epoch the lower rank wins (two shadows that promoted off the
  // same dead master both bumped to the same epoch).
  const bool current =
      epoch > epoch_ || (epoch == epoch_ && rank <= master_rank_);
  if (!current) {
    syncs_rejected_.fetch_add(1, std::memory_order_relaxed);
    return {Status(Code::kNotMaster, "stale mastership claim"), {}, false};
  }
  epoch_ = epoch;  // raise first so a step-down logs the epoch that won
  if (role_ == Role::kMaster) StepDownLocked();
  master_rank_ = rank;
  last_master_contact_ = clock_->Now();
  replicated_state_ = std::move(state);
  syncs_received_.fetch_add(1, std::memory_order_relaxed);
  Reply reply;
  wire::PutU64(reply.body, epoch_);
  // A step-down queued a retired control; make sure the loop drains it.
  if (!retired_.empty()) Nudge();
  return reply;
}

ControlPlane::Reply CoordinatorReplica::HandleControl(wire::Op op,
                                                      std::string_view body) {
  if (op == wire::Op::kCoordShadowSync) return HandleShadowSync(body);
  std::shared_ptr<CoordinatorControl> control;
  {
    std::lock_guard<std::mutex> lock(mu_);
    control = control_;
  }
  if (!control) {
    return {Status(Code::kNotMaster, "shadow coordinator; redial the master"),
            {},
            false};
  }
  return control->HandleControl(op, body);
}

std::vector<std::pair<std::string, uint64_t>> CoordinatorReplica::ExtraStats() {
  std::shared_ptr<CoordinatorControl> control;
  uint64_t epoch = 0;
  bool master = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    control = control_;
    epoch = epoch_;
    master = role_ == Role::kMaster;
  }
  std::vector<std::pair<std::string, uint64_t>> kv;
  if (control) kv = control->ExtraStats();
  kv.emplace_back("cluster.is_master", master ? 1 : 0);
  kv.emplace_back("cluster.epoch", epoch);
  kv.emplace_back("cluster.rank", options_.rank);
  kv.emplace_back("cluster.promotions",
                  promotions_.load(std::memory_order_relaxed));
  kv.emplace_back("cluster.demotions",
                  demotions_.load(std::memory_order_relaxed));
  kv.emplace_back("cluster.syncs_sent",
                  syncs_sent_.load(std::memory_order_relaxed));
  kv.emplace_back("cluster.syncs_received",
                  syncs_received_.load(std::memory_order_relaxed));
  kv.emplace_back("cluster.sync_send_failures",
                  sync_send_failures_.load(std::memory_order_relaxed));
  kv.emplace_back("cluster.sync_rejections",
                  sync_rejections_rx_.load(std::memory_order_relaxed));
  kv.emplace_back("cluster.syncs_rejected",
                  syncs_rejected_.load(std::memory_order_relaxed));
  kv.emplace_back("cluster.replication_bytes",
                  replication_bytes_.load(std::memory_order_relaxed));
  const Timestamp last = last_full_ack_.load(std::memory_order_relaxed);
  kv.emplace_back("cluster.replication_lag_us",
                  master && last != 0 && !peer_conns_.empty()
                      ? static_cast<uint64_t>(
                            std::max<Timestamp>(0, clock_->Now() - last))
                      : 0);
  return kv;
}

bool CoordinatorReplica::is_master() const {
  std::lock_guard<std::mutex> lock(mu_);
  return role_ == Role::kMaster;
}

uint64_t CoordinatorReplica::epoch() const {
  std::lock_guard<std::mutex> lock(mu_);
  return epoch_;
}

CoordinatorControl* CoordinatorReplica::control() {
  std::lock_guard<std::mutex> lock(mu_);
  return control_.get();
}

}  // namespace gemini
