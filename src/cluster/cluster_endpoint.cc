#include "src/cluster/cluster_endpoint.h"

#include <utility>

#include "src/common/logging.h"

namespace gemini {

namespace {

OpContext InternalContext() {
  return OpContext{kInternalConfigId, kInvalidFragment};
}

}  // namespace

void ClusterEndpoint::Attach(const std::string& host, uint16_t port) {
  std::lock_guard<std::mutex> lock(mu_);
  if (conn_ && host == host_ && port == port_) return;  // same address: keep
  host_ = host;
  port_ = port;
  TcpConnection::Options opts;
  opts.io_timeout = options_.io_timeout;
  opts.connect_timeout = options_.connect_timeout;
  conn_ = TcpConnection::Acquire(host_, port_, id_, opts);
}

void ClusterEndpoint::SetUp(bool up) {
  std::lock_guard<std::mutex> lock(mu_);
  up_ = up;
}

bool ClusterEndpoint::available() const {
  std::lock_guard<std::mutex> lock(mu_);
  return up_ && conn_ != nullptr;
}

std::shared_ptr<TcpConnection> ClusterEndpoint::Conn() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (!up_) return nullptr;
  return conn_;
}

Status ClusterEndpoint::Transact(wire::Op op, std::string_view body,
                                 std::string* resp) {
  auto conn = Conn();
  if (!conn) return Status(Code::kUnavailable, "instance endpoint down");
  return conn->Transact(op, body, resp);
}

void ClusterEndpoint::GrantLease(FragmentId fragment, ConfigId min_valid_config,
                                 Duration ttl, ConfigId latest_config) {
  std::string body;
  wire::PutU32(body, fragment);
  wire::PutU64(body, min_valid_config);
  wire::PutU64(body, static_cast<uint64_t>(ttl));
  wire::PutU64(body, latest_config);
  std::string resp;
  const Status s = Transact(wire::Op::kLeaseGrant, body, &resp);
  if (!s.ok()) {
    LOG_WARN << "instance " << id_ << ": lease grant for fragment " << fragment
             << " failed: " << s.ToString();
  }
}

void ClusterEndpoint::RevokeLease(FragmentId fragment, ConfigId latest_config) {
  std::string body;
  wire::PutU32(body, fragment);
  wire::PutU64(body, latest_config);
  std::string resp;
  const Status s = Transact(wire::Op::kLeaseRevoke, body, &resp);
  if (!s.ok()) {
    LOG_WARN << "instance " << id_ << ": lease revoke for fragment "
             << fragment << " failed: " << s.ToString();
  }
}

Result<CacheValue> ClusterEndpoint::Get(std::string_view key) {
  if (key.size() > wire::kMaxKeyLen) {
    return Status(Code::kInvalidArgument, "key too long");
  }
  std::string body;
  wire::PutContext(body, InternalContext());
  wire::PutKey(body, key);
  std::string resp;
  const Status s = Transact(wire::Op::kGet, body, &resp);
  if (!s.ok()) return s;
  wire::Reader r(resp);
  CacheValue value;
  if (!r.GetValue(&value) || !r.Done()) {
    return Status(Code::kInternal, "malformed kGet response");
  }
  return value;
}

Status ClusterEndpoint::Set(std::string_view key, CacheValue value) {
  if (key.size() > wire::kMaxKeyLen) {
    return Status(Code::kInvalidArgument, "key too long");
  }
  std::string body;
  wire::PutContext(body, InternalContext());
  wire::PutKey(body, key);
  wire::PutValue(body, value);
  std::string resp;
  return Transact(wire::Op::kSet, body, &resp);
}

Status ClusterEndpoint::Delete(std::string_view key) {
  if (key.size() > wire::kMaxKeyLen) {
    return Status(Code::kInvalidArgument, "key too long");
  }
  std::string body;
  wire::PutContext(body, InternalContext());
  wire::PutKey(body, key);
  std::string resp;
  return Transact(wire::Op::kDelete, body, &resp);
}

}  // namespace gemini
