// CoordinatorLink: a geminid's lifeline to the coordinator.
//
// One background thread registers the instance (kCoordRegister with its
// advertised data-plane address) and then streams kCoordHeartbeat frames at
// the configured interval. Both replies carry the coordinator's latest
// configuration id, forwarded to `on_config_id` — so a geminid partitioned
// from config pushes still observes Rejig advances at heartbeat granularity
// and discards stale entries (CacheInstance::ObserveConfigId is a
// max-merge).
//
// Failure handling mirrors the protocol's retry classification
// (docs/PROTOCOL.md §11-12): registration and heartbeats are idempotent, so
// the loop simply tries again next interval; a failed beat flips the link
// to unregistered and the next round re-registers — exactly what a
// restarted or repartitioned coordinator needs, since registration is how
// it (re)learns the instance's address and how HeartbeatMonitor
// distinguishes a restarted process (recovery edge) from a delayed beat.
//
// With a replicated coordinator group (docs/PROTOCOL.md §12.7), the link
// holds the full endpoint list and rotates to the next endpoint whenever a
// round fails — the coordinator died (kUnavailable) or answered kNotMaster
// (a shadow). Rotation re-registers, which is exactly the promoted master's
// grace-window expectation.
//
// Start() never blocks on the coordinator being reachable: the first
// registration attempt happens on the link thread.
//
// Thread-safe.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/types.h"
#include "src/transport/tcp_connection.h"

namespace gemini {

class CoordinatorLink {
 public:
  struct Endpoint {
    std::string host;
    uint16_t port = 0;
  };

  struct Options {
    /// The single-coordinator form; ignored when `coordinators` is set.
    std::string coordinator_host;
    uint16_t coordinator_port = 0;
    /// The replicated form: the deployment's ordered coordinator endpoint
    /// list (master and shadows). Empty = use coordinator_host/port.
    std::vector<Endpoint> coordinators;
    /// The instance this link speaks for.
    InstanceId instance = 0;
    /// The data-plane address the coordinator should dial back (the
    /// *advertised* address: behind a fault proxy this is the real server
    /// port, not the proxy's — control traffic must not inherit the data
    /// plane's chaos).
    std::string advertise_host;
    uint16_t advertise_port = 0;
    Duration heartbeat_interval = Millis(100);
    Duration io_timeout = Seconds(1);
    Duration connect_timeout = Millis(500);
    /// Latest configuration id from each register/heartbeat reply; called
    /// on the link thread. Typically CacheInstance::ObserveConfigId.
    std::function<void(ConfigId)> on_config_id;
  };

  explicit CoordinatorLink(Options options);
  ~CoordinatorLink();

  CoordinatorLink(const CoordinatorLink&) = delete;
  CoordinatorLink& operator=(const CoordinatorLink&) = delete;

  void Start();
  void Stop();

  /// True while the last register/heartbeat round trip succeeded.
  [[nodiscard]] bool registered() const {
    return registered_.load(std::memory_order_acquire);
  }

  /// Times the link rotated to another coordinator endpoint.
  [[nodiscard]] uint64_t endpoint_switches() const {
    return endpoint_switches_.load(std::memory_order_relaxed);
  }

 private:
  void Loop();
  bool TryRegister();
  bool TryHeartbeat();
  TcpConnection& conn() { return *conns_[active_]; }
  /// Next endpoint; called after a failed round (link thread only).
  void Rotate();

  const Options options_;
  std::vector<std::shared_ptr<TcpConnection>> conns_;
  /// Index into conns_; touched only by the link thread.
  size_t active_ = 0;
  std::atomic<uint64_t> endpoint_switches_{0};

  std::atomic<bool> registered_{false};
  std::mutex mu_;
  bool stop_ = false;
  std::condition_variable cv_;
  std::thread thread_;
};

}  // namespace gemini
