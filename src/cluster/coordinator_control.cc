#include "src/cluster/coordinator_control.h"

#include <chrono>
#include <utility>

#include "src/common/logging.h"

namespace gemini {

CoordinatorControl::CoordinatorControl(const Clock* clock, Options options)
    : clock_(clock),
      options_(std::move(options)),
      monitor_(clock, options_.num_instances, options_.heartbeat) {
  if (options_.tick_interval == 0) {
    options_.tick_interval = options_.heartbeat.interval;
  }
  endpoints_.reserve(options_.num_instances);
  std::vector<InstanceEndpoint*> eps;
  eps.reserve(options_.num_instances);
  for (InstanceId i = 0; i < options_.num_instances; ++i) {
    endpoints_.push_back(std::make_unique<ClusterEndpoint>(i, options_.endpoint));
    eps.push_back(endpoints_.back().get());
  }
  coordinator_ = std::make_unique<Coordinator>(
      clock_, std::move(eps), options_.num_fragments, options_.coordinator);
  // Called with the coordinator's lock held on whichever thread published
  // (ticker or a shard handling kCoordReport). PushConfigToSubscribers only
  // takes shard inbox locks and writes a wake byte — cheap, no re-entry.
  coordinator_->SetConfigListener([this](const ConfigurationPtr& config) {
    TransportServer* server = server_.load(std::memory_order_acquire);
    if (server != nullptr && config != nullptr) {
      server->PushConfigToSubscribers(config->Serialize());
    }
  });
}

CoordinatorControl::~CoordinatorControl() { Stop(); }

void CoordinatorControl::Start(TransportServer* server) {
  server_.store(server, std::memory_order_release);
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = false;
  }
  ticker_ = std::thread([this] { TickerLoop(); });
}

void CoordinatorControl::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stop_ && !ticker_.joinable()) return;
    stop_ = true;
  }
  ticker_cv_.notify_all();
  if (ticker_.joinable()) ticker_.join();
  server_.store(nullptr, std::memory_order_release);
}

void CoordinatorControl::ImportState(const CoordinatorState& state) {
  coordinator_->ImportState(state);
  // Instances the previous master believed up get a grace window to check
  // in before the monitor fails them: a coordinator restart must not look
  // like a cluster-wide outage. A surviving geminid's link re-registers as
  // soon as its connection to the new master comes up (registration is how
  // the endpoint learns the instance's address again); a mere heartbeat
  // within grace also suffices to keep the instance alive.
  std::lock_guard<std::mutex> lock(mu_);
  for (InstanceId i = 0; i < state.believed_up.size(); ++i) {
    if (i < options_.num_instances && state.believed_up[i]) {
      monitor_.ExpectRegistration(i);
    }
  }
}

void CoordinatorControl::TickerLoop() {
  const Duration renew_period =
      std::max<Duration>(options_.coordinator.fragment_lease_lifetime / 3,
                         options_.tick_interval);
  Timestamp last_renew = clock_->Now();
  for (;;) {
    HeartbeatMonitor::Transitions t;
    {
      std::unique_lock<std::mutex> lock(mu_);
      ticker_cv_.wait_for(lock,
                          std::chrono::microseconds(options_.tick_interval),
                          [&] { return stop_; });
      if (stop_) return;
      t = monitor_.Tick(clock_->Now());
    }
    // Recovery edges first, failures second: when a tick carries both for
    // one instance (it re-registered and immediately went silent again),
    // this order leaves the coordinator agreeing with the monitor's final
    // verdict (failed). Gate order within each: the endpoint comes up
    // before the recovery cycle needs it, and goes down before the failure
    // cycle would otherwise publish into a dead instance.
    for (InstanceId id : t.recovered) {
      endpoints_[id]->SetUp(true);
      LOG_INFO << "coordinator: instance " << id << " registered; recovering";
      coordinator_->OnInstanceRecovered(id);
    }
    recoveries_detected_.fetch_add(t.recovered.size(),
                                   std::memory_order_relaxed);
    if (!t.failed.empty()) {
      for (InstanceId id : t.failed) {
        endpoints_[id]->SetUp(false);
        LOG_WARN << "coordinator: instance " << id
                 << " missed its heartbeat deadline; failing over";
      }
      coordinator_->OnInstancesFailed(t.failed);
      failures_detected_.fetch_add(t.failed.size(), std::memory_order_relaxed);
    }
    if ((!t.recovered.empty() || !t.failed.empty()) &&
        options_.on_state_mutation) {
      options_.on_state_mutation();
    }
    const Timestamp now = clock_->Now();
    if (now - last_renew >= renew_period) {
      coordinator_->RenewLeases();
      last_renew = now;
    }
  }
}

ControlPlane::Reply CoordinatorControl::HandleControl(wire::Op op,
                                                      std::string_view body) {
  switch (op) {
    case wire::Op::kCoordRegister:
      return HandleRegister(body);
    case wire::Op::kCoordHeartbeat:
      return HandleHeartbeat(body);
    case wire::Op::kCoordConfigGet:
      return HandleConfig(body, /*subscribe=*/false);
    case wire::Op::kCoordConfigWatch:
      return HandleConfig(body, /*subscribe=*/true);
    case wire::Op::kCoordReport:
      return HandleReport(body);
    case wire::Op::kCoordDirtyQuery:
      return HandleDirtyQuery(body);
    default:
      return {Status(Code::kInvalidArgument, "not a coordinator op"), {}, false};
  }
}

ControlPlane::Reply CoordinatorControl::HandleRegister(std::string_view body) {
  wire::Reader r(body);
  uint32_t instance = 0;
  std::string_view host;
  uint16_t port = 0;
  if (!r.GetU32(&instance) || !r.GetBlob(&host) || !r.GetU16(&port) ||
      !r.Done()) {
    return {Status(Code::kInvalidArgument, "malformed kCoordRegister"), {},
            false};
  }
  if (instance >= options_.num_instances) {
    return {Status(Code::kInvalidArgument, "instance id out of range"), {},
            false};
  }
  endpoints_[instance]->Attach(std::string(host), port);
  {
    std::lock_guard<std::mutex> lock(mu_);
    monitor_.Register(instance);
  }
  registrations_.fetch_add(1, std::memory_order_relaxed);
  if (options_.on_state_mutation) options_.on_state_mutation();
  // The recovery cycle itself runs on the ticker (next tick drains the
  // registration edge); the shard thread only records the beat and replies.
  Reply reply;
  wire::PutU64(reply.body, coordinator_->latest_id());
  return reply;
}

ControlPlane::Reply CoordinatorControl::HandleHeartbeat(std::string_view body) {
  wire::Reader r(body);
  uint32_t count = 0;
  if (!r.GetU32(&count) || count > options_.num_instances) {
    return {Status(Code::kInvalidArgument, "malformed kCoordHeartbeat"), {},
            false};
  }
  std::vector<uint32_t> ids(count);
  for (uint32_t i = 0; i < count; ++i) {
    if (!r.GetU32(&ids[i])) {
      return {Status(Code::kInvalidArgument, "malformed kCoordHeartbeat"), {},
              false};
    }
  }
  if (!r.Done()) {
    return {Status(Code::kInvalidArgument, "malformed kCoordHeartbeat"), {},
            false};
  }
  bool all_registered = true;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (uint32_t id : ids) {
      monitor_.OnHeartbeat(id);
      // A beat does not revive a failed instance (the process may have
      // restarted and lost its leases) — the reply tells the sender to
      // re-register, which is the explicit recovery edge.
      all_registered &= monitor_.alive(id);
    }
  }
  heartbeats_received_.fetch_add(1, std::memory_order_relaxed);
  Reply reply;
  wire::PutU64(reply.body, coordinator_->latest_id());
  wire::PutU8(reply.body, all_registered ? 1 : 0);
  return reply;
}

ControlPlane::Reply CoordinatorControl::HandleConfig(std::string_view body,
                                                     bool subscribe) {
  if (subscribe) {
    wire::Reader r(body);
    uint64_t known = 0;
    if (!r.GetU64(&known) || !r.Done()) {
      return {Status(Code::kInvalidArgument, "malformed kCoordConfigWatch"),
              {}, false};
    }
  } else if (!body.empty()) {
    return {Status(Code::kInvalidArgument, "malformed kCoordConfigGet"), {},
            false};
  }
  ConfigurationPtr config = coordinator_->GetConfiguration();
  if (!config) {
    return {Status(Code::kUnavailable, "no configuration published"), {},
            false};
  }
  Reply reply;
  wire::PutBlob(reply.body, config->Serialize());
  reply.subscribe = subscribe;
  return reply;
}

ControlPlane::Reply CoordinatorControl::HandleReport(std::string_view body) {
  wire::Reader r(body);
  uint8_t event = 0;
  uint32_t fragment = 0;
  if (!r.GetU8(&event) || !r.GetU32(&fragment) || !r.Done() ||
      !wire::IsKnownCoordEvent(event)) {
    return {Status(Code::kInvalidArgument, "malformed kCoordReport"), {},
            false};
  }
  switch (static_cast<wire::CoordEvent>(event)) {
    case wire::CoordEvent::kDirtyListProcessed:
      coordinator_->OnDirtyListProcessed(fragment);
      break;
    case wire::CoordEvent::kWorkingSetTransferTerminated:
      coordinator_->OnWorkingSetTransferTerminated(fragment);
      break;
    case wire::CoordEvent::kDirtyListUnavailable:
      coordinator_->OnDirtyListUnavailable(fragment);
      break;
  }
  if (options_.on_state_mutation) options_.on_state_mutation();
  return {};
}

ControlPlane::Reply CoordinatorControl::HandleDirtyQuery(
    std::string_view body) {
  wire::Reader r(body);
  uint32_t fragment = 0;
  if (!r.GetU32(&fragment) || !r.Done()) {
    return {Status(Code::kInvalidArgument, "malformed kCoordDirtyQuery"), {},
            false};
  }
  Reply reply;
  wire::PutU8(reply.body, coordinator_->DirtyProcessed(fragment) ? 1 : 0);
  return reply;
}

std::vector<std::pair<std::string, uint64_t>> CoordinatorControl::ExtraStats() {
  return {
      {"cluster.registrations",
       registrations_.load(std::memory_order_relaxed)},
      {"cluster.heartbeats_received",
       heartbeats_received_.load(std::memory_order_relaxed)},
      {"cluster.failures_detected",
       failures_detected_.load(std::memory_order_relaxed)},
      {"cluster.recoveries_detected",
       recoveries_detected_.load(std::memory_order_relaxed)},
      {"cluster.config_id", coordinator_->latest_id()},
      {"cluster.discarded_fragments",
       coordinator_->discarded_fragment_count()},
  };
}

}  // namespace gemini
