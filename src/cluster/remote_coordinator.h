// RemoteCoordinator: a CoordinatorService backed by a replicated group of
// geminicoordds over TCP.
//
// Clients and recovery workers keep programming against CoordinatorService;
// this implementation caches the latest configuration locally and keeps it
// fresh two ways:
//   - push: the connection subscribes via kCoordConfigWatch, and every
//     coordinator publish arrives as an unsolicited kPushConfig frame on the
//     reader thread — a Rejig reaches clients without polling;
//   - re-watch: the watch is re-issued periodically, because a redial (the
//     coordinator restarted, the connection dropped) silently sheds the
//     server-side subscription. The re-watch both refreshes the snapshot and
//     re-subscribes, bounding how long a client can miss pushes.
// Configuration ids only move forward: a stale push or response never
// regresses the cache.
//
// Recovery notifications map to kCoordReport (fail-fast, never retried:
// docs/PROTOCOL.md §11) and DirtyProcessed to kCoordDirtyQuery. A report
// lost to a connection drop is safe — recovery-side callers re-derive and
// re-report on their next pass.
//
// Failover (docs/PROTOCOL.md §12.7): constructed with the deployment's full
// coordinator endpoint list, the client talks to one endpoint at a time and
// rotates to the next on kUnavailable (endpoint dead — its breaker makes
// repeat failures cheap) or kNotMaster (endpoint is a shadow or a fenced
// ex-master). Reports rotate only on kNotMaster: a shadow definitively did
// not apply the report, while kUnavailable is ambiguous and stays
// fail-fast. All endpoints' push handlers stay attached; configuration ids
// adopt only forward, so a straggler push from an ex-master is inert.
//
// Thread-safe.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/coordinator/coordinator_service.h"
#include "src/transport/tcp_connection.h"

namespace gemini {

class RemoteCoordinator final : public CoordinatorService {
 public:
  struct Options {
    Duration io_timeout = Seconds(2);
    Duration connect_timeout = Seconds(1);
    /// Period of the background re-watch; 0 disables the thread (callers
    /// drive Refresh() themselves — tests, single-shot tools).
    Duration rewatch_interval = Millis(500);
  };

  /// One member of the coordinator group.
  struct Endpoint {
    std::string host;
    uint16_t port = 0;
  };

  /// Failover counters (cumulative).
  struct Stats {
    /// Times the active endpoint changed (a successful call landed on a
    /// different endpoint than the previous one) — "client redials".
    uint64_t endpoint_switches = 0;
    /// kNotMaster answers that bounced a call to the next endpoint.
    uint64_t not_master_bounces = 0;
  };

  /// `endpoints` is the deployment's ordered coordinator list (masters and
  /// shadows alike); must be non-empty.
  RemoteCoordinator(std::vector<Endpoint> endpoints, Options options);
  RemoteCoordinator(std::string host, uint16_t port, Options options)
      : RemoteCoordinator(std::vector<Endpoint>{{std::move(host), port}},
                          options) {}
  ~RemoteCoordinator() override;

  RemoteCoordinator(const RemoteCoordinator&) = delete;
  RemoteCoordinator& operator=(const RemoteCoordinator&) = delete;

  /// One watch round trip now: fetches the coordinator's configuration,
  /// adopts it if newer, (re-)subscribes to pushes, failing over across the
  /// endpoint list. kUnavailable/kNotMaster when no endpoint answered as
  /// master — the cached snapshot stays.
  Status Refresh();

  [[nodiscard]] Stats stats() const;
  /// Index (into the constructor's endpoint list) of the endpoint the last
  /// successful call landed on.
  [[nodiscard]] size_t active_endpoint() const {
    return active_.load(std::memory_order_acquire);
  }

  // CoordinatorService.
  [[nodiscard]] ConfigurationPtr GetConfiguration() const override;
  [[nodiscard]] ConfigId latest_id() const override;
  void OnDirtyListProcessed(FragmentId fragment) override;
  void OnWorkingSetTransferTerminated(FragmentId fragment) override;
  void OnDirtyListUnavailable(FragmentId fragment) override;
  [[nodiscard]] bool DirtyProcessed(FragmentId fragment) const override;

 private:
  /// The push handler outlives `this` only via this shared state: the
  /// connection may be shared (Acquire) and keeps handlers for its own
  /// lifetime, so the handler captures a weak_ptr.
  struct State {
    mutable std::mutex mu;
    ConfigurationPtr config;
    std::atomic<ConfigId> latest{0};

    void Adopt(ConfigurationPtr fresh);
  };

  void Report(wire::CoordEvent event, FragmentId fragment);
  void RewatchLoop();
  /// Transacts against the active endpoint, rotating through the list on
  /// kNotMaster (always) and kUnavailable (unless the op is ambiguous when
  /// replayed — kCoordReport). Returns the first success or the last error.
  Status TransactFailover(wire::Op op, std::string_view body,
                          std::string* resp,
                          bool rotate_on_unavailable) const;

  const std::shared_ptr<State> state_;
  std::vector<std::shared_ptr<TcpConnection>> conns_;
  const Options options_;
  mutable std::atomic<size_t> active_{0};
  mutable std::atomic<uint64_t> endpoint_switches_{0};
  mutable std::atomic<uint64_t> not_master_bounces_{0};

  std::mutex stop_mu_;
  bool stop_ = false;
  std::condition_variable stop_cv_;
  std::thread rewatcher_;
};

}  // namespace gemini
