// RemoteCoordinator: a CoordinatorService backed by a geminicoordd over TCP.
//
// Clients and recovery workers keep programming against CoordinatorService;
// this implementation caches the latest configuration locally and keeps it
// fresh two ways:
//   - push: the connection subscribes via kCoordConfigWatch, and every
//     coordinator publish arrives as an unsolicited kPushConfig frame on the
//     reader thread — a Rejig reaches clients without polling;
//   - re-watch: the watch is re-issued periodically, because a redial (the
//     coordinator restarted, the connection dropped) silently sheds the
//     server-side subscription. The re-watch both refreshes the snapshot and
//     re-subscribes, bounding how long a client can miss pushes.
// Configuration ids only move forward: a stale push or response never
// regresses the cache.
//
// Recovery notifications map to kCoordReport (fail-fast, never retried:
// docs/PROTOCOL.md §11) and DirtyProcessed to kCoordDirtyQuery. A report
// lost to a connection drop is safe — recovery-side callers re-derive and
// re-report on their next pass.
//
// Thread-safe.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/coordinator/coordinator_service.h"
#include "src/transport/tcp_connection.h"

namespace gemini {

class RemoteCoordinator final : public CoordinatorService {
 public:
  struct Options {
    Duration io_timeout = Seconds(2);
    Duration connect_timeout = Seconds(1);
    /// Period of the background re-watch; 0 disables the thread (callers
    /// drive Refresh() themselves — tests, single-shot tools).
    Duration rewatch_interval = Millis(500);
  };

  RemoteCoordinator(std::string host, uint16_t port, Options options);
  ~RemoteCoordinator() override;

  RemoteCoordinator(const RemoteCoordinator&) = delete;
  RemoteCoordinator& operator=(const RemoteCoordinator&) = delete;

  /// One watch round trip now: fetches the coordinator's configuration,
  /// adopts it if newer, (re-)subscribes to pushes. kUnavailable when the
  /// coordinator cannot be reached — the cached snapshot stays.
  Status Refresh();

  // CoordinatorService.
  [[nodiscard]] ConfigurationPtr GetConfiguration() const override;
  [[nodiscard]] ConfigId latest_id() const override;
  void OnDirtyListProcessed(FragmentId fragment) override;
  void OnWorkingSetTransferTerminated(FragmentId fragment) override;
  void OnDirtyListUnavailable(FragmentId fragment) override;
  [[nodiscard]] bool DirtyProcessed(FragmentId fragment) const override;

 private:
  /// The push handler outlives `this` only via this shared state: the
  /// connection may be shared (Acquire) and keeps handlers for its own
  /// lifetime, so the handler captures a weak_ptr.
  struct State {
    mutable std::mutex mu;
    ConfigurationPtr config;
    std::atomic<ConfigId> latest{0};

    void Adopt(ConfigurationPtr fresh);
  };

  void Report(wire::CoordEvent event, FragmentId fragment);
  void RewatchLoop();

  const std::shared_ptr<State> state_;
  const std::shared_ptr<TcpConnection> conn_;
  const Options options_;

  std::mutex stop_mu_;
  bool stop_ = false;
  std::condition_variable stop_cv_;
  std::thread rewatcher_;
};

}  // namespace gemini
