// RecoveryWorker: stateless workers that drain dirty lists (Section 3.2.3,
// Algorithm 3).
//
// A worker adopts one fragment in recovery mode at a time by acquiring the
// Redlease on its dirty list in the secondary replica — this is the mutual
// exclusion that keeps one worker per fragment. It then either
//
//   - overwrites each dirty key in the primary replica with the latest value
//     from the secondary (Gemini-O): ISet (delete + I lease) in the primary,
//     Get in the secondary, IqSet or IDelete in the primary; or
//   - deletes each dirty key from the primary (Gemini-I) — appropriate when
//     the working set evolved and the transferred values would be dead
//     weight (Section 3.2.3).
//
// Both are idempotent, so a worker crash mid-fragment is harmless: when its
// Redlease expires, another worker redoes the fragment (Section 3.3).
//
// Processing is incremental (Step() handles a bounded batch of keys) so the
// discrete-event harness can interleave worker progress with foreground
// load; a worker renews its Redlease on every step.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/cache/cache_instance.h"
#include "src/cache/dirty_list.h"
#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/coordinator/coordinator_service.h"
#include "src/net/cost_model.h"

namespace gemini {

class RecoveryWorker {
 public:
  struct Options {
    /// Overwrite dirty keys from the secondary (Gemini-O) instead of
    /// deleting them (Gemini-I).
    bool overwrite_dirty = true;
    /// Keys processed per Step() call (harness interleaving granularity).
    size_t keys_per_step = 64;
    Duration backoff = Millis(1);
  };

  /// Workers program against CacheBackend, so `instances` may be the
  /// in-process CacheInstances (DES/tests) or TcpCacheBackends reaching a
  /// remote cluster — dirty lists then drain over real sockets.
  RecoveryWorker(const Clock* clock, CoordinatorService* coordinator,
                 std::vector<CacheBackend*> instances)
      : RecoveryWorker(clock, coordinator, std::move(instances), Options()) {}
  RecoveryWorker(const Clock* clock, CoordinatorService* coordinator,
                 std::vector<CacheBackend*> instances, Options options);
  /// Convenience for the in-process deployments.
  RecoveryWorker(const Clock* clock, CoordinatorService* coordinator,
                 const std::vector<CacheInstance*>& instances)
      : RecoveryWorker(clock, coordinator, instances, Options()) {}
  RecoveryWorker(const Clock* clock, CoordinatorService* coordinator,
                 const std::vector<CacheInstance*>& instances, Options options)
      : RecoveryWorker(
            clock, coordinator,
            std::vector<CacheBackend*>(instances.begin(), instances.end()),
            options) {}

  /// Scans the latest configuration for fragments in recovery mode and
  /// adopts the first whose Redlease it can win. Returns the adopted
  /// fragment, or nullopt if there is nothing to adopt.
  std::optional<FragmentId> TryAdoptFragment(Session& session);

  /// Processes up to keys_per_step dirty keys of the adopted fragment.
  /// Returns true when the fragment is finished (dirty list deleted,
  /// Redlease released, coordinator notified) or abandoned; the worker is
  /// then free to adopt another fragment.
  bool Step(Session& session);

  [[nodiscard]] bool has_work() const { return task_.has_value(); }
  [[nodiscard]] std::optional<FragmentId> current_fragment() const {
    return task_.has_value() ? std::optional<FragmentId>(task_->fragment)
                             : std::nullopt;
  }

  struct Stats {
    uint64_t fragments_recovered = 0;
    uint64_t fragments_abandoned = 0;
    uint64_t keys_overwritten = 0;
    uint64_t keys_deleted = 0;
    uint64_t redlease_conflicts = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  struct Task {
    FragmentId fragment = kInvalidFragment;
    InstanceId primary = kInvalidInstance;
    InstanceId secondary = kInvalidInstance;
    /// Workers operate with the internal config id (infrastructure role);
    /// fragment leases and Rejig entry validation still apply to their ops.
    ConfigId config_id = kInternalConfigId;
    LeaseToken red_token = kNoLease;
    DirtyList list;
    size_t next_key = 0;
  };

  // Finishes the fragment: delete the dirty list, release the Redlease,
  // notify the coordinator (Algorithm 3 line 22).
  void FinishTask(Session& session);
  void AbandonTask(Session& session, bool release_red);

  const Clock* clock_;
  CoordinatorService* coordinator_;
  std::vector<CacheBackend*> instances_;
  Options options_;
  std::optional<Task> task_;
  size_t scan_cursor_ = 0;
  Stats stats_;
};

}  // namespace gemini
