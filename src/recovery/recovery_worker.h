// RecoveryWorker: stateless workers that drain dirty lists (Section 3.2.3,
// Algorithm 3) and, under a ±W policy, stream the secondary's working set
// back into the recovered primary (Section 3.2.2).
//
// A worker adopts one fragment in recovery mode at a time by acquiring the
// Redlease on its dirty list in the secondary replica — this is the mutual
// exclusion that keeps one worker per fragment. It then either
//
//   - overwrites each dirty key in the primary replica with the latest value
//     from the secondary (Gemini-O): ISet (delete + I lease) in the primary,
//     Get in the secondary, IqSet or IDelete in the primary; or
//   - deletes each dirty key from the primary (Gemini-I) — appropriate when
//     the working set evolved and the transferred values would be dead
//     weight (Section 3.2.3).
//
// Both are idempotent, so a worker crash mid-fragment is harmless: when its
// Redlease expires, another worker redoes the fragment (Section 3.3).
//
// With Options::working_set_transfer on, a drained fragment does not end the
// task: the worker keeps the Redlease and enters the working-set phase,
// pulling priority-ordered hot-key pages off the secondary
// (CacheBackend::WorkingSetScan) and installing them into the primary
// hottest-first — the online warm-up that restores the hit ratio orders of
// magnitude faster than cold refill (Figure 10, here on the real TCP stack).
// The install path is race-safe without any new coordination: per key the
// worker IqGets the primary (a hit means the pre-failure entry survived —
// never clobbered), holds the miss's I token, MultiGets the values from the
// secondary in one pipelined frame, and IqSets under the token. A client
// write racing the copy Qaregs the key, which voids the I token (the IqSet
// becomes a no-op) and deletes the secondary's copy — exactly the Lemma 4
// argument Algorithm 1's client-driven copy relies on. The whole phase is
// abortable and resumable: the scan cursor is server-side-stable, and a
// worker that dies mid-stream is replaced via Redlease expiry, restarting
// the scan from the hottest band (re-installs are idempotent skips).
//
// Processing is incremental (Step() handles a bounded batch of keys) so the
// discrete-event harness can interleave worker progress with foreground
// load; a worker renews its Redlease on every step.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "src/cache/cache_instance.h"
#include "src/cache/dirty_list.h"
#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/coordinator/coordinator_service.h"
#include "src/net/cost_model.h"

namespace gemini {

class RecoveryWorker {
 public:
  struct Options {
    /// Overwrite dirty keys from the secondary (Gemini-O) instead of
    /// deleting them (Gemini-I).
    bool overwrite_dirty = true;
    /// Keys processed per Step() call during the drain (harness
    /// interleaving granularity), and the arm -> fetch -> fill chunk size of
    /// the working-set install path — the chunk bounds how long an armed I
    /// token waits before its IqSet, so large scan pages never outlive the
    /// token lifetime.
    size_t keys_per_step = 64;
    Duration backoff = Millis(1);
    /// Run the working-set phase after the drain (Gemini±W, Section 3.2.2).
    /// Off by default: the simulator keeps its client-driven transfer with
    /// hit-ratio termination; the real cluster (tools/gemini_cluster,
    /// bench/bench_recovery) turns this on so workers stream the transfer
    /// and report OnWorkingSetTransferTerminated themselves.
    bool working_set_transfer = false;
    /// Hot keys requested per working-set scan page.
    uint32_t wst_page_keys = 256;
    /// Byte-rate throttle on the working-set copy (charged bytes installed
    /// per second); bounds the transfer's interference with foreground
    /// reads. 0 = unthrottled. Real wall-clock pacing — leave 0 under a
    /// virtual clock.
    uint64_t wst_bytes_per_sec = 0;
  };

  /// Workers program against CacheBackend, so `instances` may be the
  /// in-process CacheInstances (DES/tests) or TcpCacheBackends reaching a
  /// remote cluster — dirty lists then drain over real sockets.
  RecoveryWorker(const Clock* clock, CoordinatorService* coordinator,
                 std::vector<CacheBackend*> instances)
      : RecoveryWorker(clock, coordinator, std::move(instances), Options()) {}
  RecoveryWorker(const Clock* clock, CoordinatorService* coordinator,
                 std::vector<CacheBackend*> instances, Options options);
  /// Convenience for the in-process deployments.
  RecoveryWorker(const Clock* clock, CoordinatorService* coordinator,
                 const std::vector<CacheInstance*>& instances)
      : RecoveryWorker(clock, coordinator, instances, Options()) {}
  RecoveryWorker(const Clock* clock, CoordinatorService* coordinator,
                 const std::vector<CacheInstance*>& instances, Options options)
      : RecoveryWorker(
            clock, coordinator,
            std::vector<CacheBackend*>(instances.begin(), instances.end()),
            options) {}

  /// Scans the latest configuration for fragments in recovery mode and
  /// adopts the first whose Redlease it can win. Returns the adopted
  /// fragment, or nullopt if there is nothing to adopt.
  std::optional<FragmentId> TryAdoptFragment(Session& session);

  /// Processes up to keys_per_step dirty keys of the adopted fragment.
  /// Returns true when the fragment is finished (dirty list deleted,
  /// Redlease released, coordinator notified) or abandoned; the worker is
  /// then free to adopt another fragment.
  bool Step(Session& session);

  [[nodiscard]] bool has_work() const { return task_.has_value(); }
  [[nodiscard]] std::optional<FragmentId> current_fragment() const {
    return task_.has_value() ? std::optional<FragmentId>(task_->fragment)
                             : std::nullopt;
  }

  struct Stats {
    uint64_t fragments_recovered = 0;
    uint64_t fragments_abandoned = 0;
    uint64_t keys_overwritten = 0;
    uint64_t keys_deleted = 0;
    uint64_t redlease_conflicts = 0;
    // Working-set phase (Gemini±W): hot keys copied into the primary, keys
    // skipped (already warm there, client-owned, or vanished from the
    // secondary), charged bytes installed, scan pages pulled, transfers run
    // to termination, and transfers aborted mid-stream (peer death /
    // Redlease loss — another worker resumes via lease expiry).
    uint64_t wst_keys_copied = 0;
    uint64_t wst_keys_skipped = 0;
    uint64_t wst_bytes_copied = 0;
    uint64_t wst_pages = 0;
    uint64_t wst_completed = 0;
    uint64_t wst_aborts = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  /// kDrain replays the dirty list (Algorithm 3); kWorkingSet streams hot
  /// pages off the secondary (Section 3.2.2) once the drain is done.
  enum class Phase : uint8_t { kDrain, kWorkingSet };

  struct Task {
    FragmentId fragment = kInvalidFragment;
    InstanceId primary = kInvalidInstance;
    InstanceId secondary = kInvalidInstance;
    /// Workers operate with the internal config id (infrastructure role);
    /// fragment leases and Rejig entry validation still apply to their ops.
    ConfigId config_id = kInternalConfigId;
    LeaseToken red_token = kNoLease;
    DirtyList list;
    size_t next_key = 0;
    Phase phase = Phase::kDrain;
    /// Working-set phase state: the cluster's fragment count (scan routing)
    /// and the resumable scan cursor (0 = hottest band).
    uint32_t num_fragments = 0;
    uint64_t wst_cursor = 0;
  };

  // Finishes the drain: reset the dirty list to its marker, notify the
  // coordinator (Algorithm 3 line 22), then either release the fragment or
  // roll into the working-set phase.
  void FinishDrain(Session& session);
  // One working-set page: scan the secondary, install misses into the
  // primary under I tokens, throttle. Returns true when the task ended
  // (transfer terminated or abandoned).
  bool StepWorkingSet(Session& session);
  // Ends a completed transfer: release the Redlease, report termination.
  void FinishWorkingSet(Session& session);
  void AbandonTask(Session& session, bool release_red);

  const Clock* clock_;
  CoordinatorService* coordinator_;
  std::vector<CacheBackend*> instances_;
  Options options_;
  std::optional<Task> task_;
  size_t scan_cursor_ = 0;
  Stats stats_;
};

}  // namespace gemini
