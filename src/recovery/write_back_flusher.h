// WriteBackFlusher: applies buffered write-back writes to the data store
// (extension; Section 2 lists write-back as a write policy the paper does
// not evaluate).
//
// A write-back write reserves a version at the store, installs the value in
// the (persistent, pinned) cache entry, and acknowledges. The flusher
// drains each instance's pending-flush queue: it commits the reserved
// version to the store and releases the entry's pin, making it evictable
// again. Commits are idempotent and ordered by version at the store, so a
// flusher crash, a duplicate flush after an instance recovery (the queue is
// rebuilt from pinned entries), or out-of-order flushes across flushers are
// all safe.
#pragma once

#include <vector>

#include "src/cache/cache_instance.h"
#include "src/common/clock.h"
#include "src/net/cost_model.h"
#include "src/store/data_store.h"

namespace gemini {

class WriteBackFlusher {
 public:
  struct Options {
    /// Buffered writes flushed per instance per FlushOnce call.
    size_t batch = 64;
  };

  WriteBackFlusher(const Clock* clock, std::vector<CacheInstance*> instances,
                   DataStore* store)
      : WriteBackFlusher(clock, std::move(instances), store, Options()) {}
  WriteBackFlusher(const Clock* clock, std::vector<CacheInstance*> instances,
                   DataStore* store, Options options);

  /// Drains up to `batch` buffered writes from every reachable instance.
  /// Returns the number of writes committed.
  size_t FlushOnce(Session& session);

  struct Stats {
    uint64_t flushed = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  const Clock* clock_;
  std::vector<CacheInstance*> instances_;
  DataStore* store_;
  Options options_;
  Stats stats_;
};

}  // namespace gemini
