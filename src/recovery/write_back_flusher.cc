#include "src/recovery/write_back_flusher.h"

namespace gemini {

WriteBackFlusher::WriteBackFlusher(const Clock* clock,
                                   std::vector<CacheInstance*> instances,
                                   DataStore* store, Options options)
    : clock_(clock),
      instances_(std::move(instances)),
      store_(store),
      options_(options) {}

size_t WriteBackFlusher::FlushOnce(Session& session) {
  size_t committed = 0;
  for (auto* instance : instances_) {
    if (!instance->available()) continue;
    auto batch = instance->TakePendingFlushes(options_.batch);
    for (auto& pending : batch) {
      session.BillStoreUpdate();
      store_->CommitReserved(
          pending.key, pending.value.version,
          pending.value.data.empty()
              ? std::nullopt
              : std::optional<std::string>(std::move(pending.value.data)));
      session.BillCacheOp(instance->id());
      instance->Unpin(pending.key, pending.value.version);
      ++committed;
      ++stats_.flushed;
    }
  }
  return committed;
}

}  // namespace gemini
