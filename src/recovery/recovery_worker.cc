#include "src/recovery/recovery_worker.h"

#include <cassert>

#include "src/common/logging.h"

namespace gemini {

RecoveryWorker::RecoveryWorker(const Clock* clock,
                               CoordinatorService* coordinator,
                               std::vector<CacheBackend*> instances,
                               Options options)
    : clock_(clock),
      coordinator_(coordinator),
      instances_(std::move(instances)),
      options_(options) {
  assert(coordinator_ != nullptr);
}

std::optional<FragmentId> RecoveryWorker::TryAdoptFragment(Session& session) {
  if (task_.has_value()) return task_->fragment;
  session.BillCoordinatorOp();
  ConfigurationPtr cfg = coordinator_->GetConfiguration();
  if (cfg == nullptr) return std::nullopt;
  const size_t n = cfg->num_fragments();
  // Rotate the scan start so concurrent workers spread across fragments
  // instead of all hammering the same Redlease.
  for (size_t step = 0; step < n; ++step) {
    const auto f = static_cast<FragmentId>((scan_cursor_ + step) % n);
    const FragmentAssignment& a = cfg->fragment(f);
    if (a.mode != FragmentMode::kRecovery) continue;
    if (a.secondary == kInvalidInstance || a.primary == kInvalidInstance) {
      continue;  // Nothing to fetch the dirty list from.
    }
    if (coordinator_->DirtyProcessed(f)) {
      continue;  // Drained already; waiting on the working set transfer.
    }
    CacheBackend& sr = *instances_.at(a.secondary);
    const std::string list_key = DirtyListKey(f);

    session.BillCacheOp(a.secondary);
    auto red = sr.AcquireRed(list_key);
    if (!red.ok()) {
      if (red.code() == Code::kBackoff) ++stats_.redlease_conflicts;
      continue;  // Another worker owns this fragment (Section 2.3).
    }

    // Workers are trusted infrastructure (like the coordinator): they are
    // exempt from the client-config staleness check, which would otherwise
    // reject them spuriously while a burst of recovery publishes is in
    // flight. Fragment-scoped entry validation still applies to their data
    // ops, and the Redlease plus per-op fragment leases guard misrouting.
    session.BillCacheOp(a.secondary);
    const OpContext ctx{kInternalConfigId, kInvalidFragment};
    auto payload = sr.Get(ctx, list_key);
    std::optional<DirtyList> parsed;
    if (payload.ok()) parsed = DirtyList::Parse(payload->data);
    if (!parsed.has_value()) {
      (void)sr.ReleaseRed(list_key, *red);
      if (payload.ok() || payload.code() == Code::kNotFound) {
        // Missing or partial (evicted): the primary is unrecoverable.
        session.BillCoordinatorOp();
        coordinator_->OnDirtyListUnavailable(f);
      }
      // Transient errors (instance just failed): leave the fragment alone;
      // the coordinator's failure handling owns it.
      continue;
    }

    Task task;
    task.fragment = f;
    task.primary = a.primary;
    task.secondary = a.secondary;
    task.config_id = kInternalConfigId;
    task.red_token = *red;
    task.list = std::move(*parsed);
    task_ = std::move(task);
    scan_cursor_ = f + 1;
    return f;
  }
  return std::nullopt;
}

void RecoveryWorker::FinishTask(Session& session) {
  Task& t = *task_;
  const std::string list_key = DirtyListKey(t.fragment);
  CacheBackend& sr = *instances_.at(t.secondary);
  // Algorithm 3 line 22 deletes the drained dirty list; we instead reset it
  // to the empty (marker-only) payload. If the working set transfer is
  // still running, the fragment stays in recovery mode and clients keep
  // consulting the list — deleting it outright would be indistinguishable
  // from an eviction and would make them discard the freshly recovered
  // primary. The coordinator deletes the entry when the fragment returns to
  // normal mode (Figure 4 transition (3)).
  session.BillCacheOp(t.secondary);
  const OpContext ctx{t.config_id, kInvalidFragment};
  (void)sr.Set(ctx, list_key, CacheValue::OfData(DirtyList::InitialPayload()));
  (void)sr.ReleaseRed(list_key, t.red_token);
  session.BillCoordinatorOp();
  coordinator_->OnDirtyListProcessed(t.fragment);
  ++stats_.fragments_recovered;
  task_.reset();
}

void RecoveryWorker::AbandonTask(Session& session, bool release_red) {
  Task& t = *task_;
  if (release_red && t.secondary < instances_.size()) {
    (void)instances_[t.secondary]->ReleaseRed(DirtyListKey(t.fragment),
                                              t.red_token);
    session.BillCacheOp(t.secondary);
  }
  ++stats_.fragments_abandoned;
  task_.reset();
}

bool RecoveryWorker::Step(Session& session) {
  if (!task_.has_value()) return true;
  Task& t = *task_;
  CacheBackend& pr = *instances_.at(t.primary);
  const OpContext ctx{t.config_id, t.fragment};

  // Keep exclusive ownership for the duration of this batch. Losing the
  // Redlease means another worker may already be replaying this fragment;
  // back out (replay is idempotent either way, Section 3.3).
  session.BillCacheOp(t.secondary);
  if (!instances_.at(t.secondary)->RenewRed(DirtyListKey(t.fragment),
                                            t.red_token).ok()) {
    AbandonTask(session, /*release_red=*/false);
    return true;
  }

  const std::vector<std::string>& keys = t.list.keys();
  size_t processed = 0;
  if (options_.overwrite_dirty) {
    // Algorithm 3 lines 10-17 (Gemini-O), drained as a phased batch so the
    // secondary lookups ride one pipelined MultiGet over TCP instead of one
    // round trip per key. Per key the order ISet_k < Get_k < IqSet_k still
    // holds — the phases only reorder operations *across* keys, which
    // Algorithm 3 never sequences — so a client write racing key k after
    // its ISet voids our I token exactly as in the one-key-at-a-time loop.
    //
    // Phase 1: arm every key in the batch with an ISet on the primary.
    struct Armed {
      const std::string* key;
      LeaseToken token;
    };
    std::vector<Armed> armed;
    bool backoff = false, abandoned = false;
    while (t.next_key < keys.size() && processed < options_.keys_per_step) {
      const std::string& key = keys[t.next_key];
      // A client may have handled this key already (its writes delete dirty
      // keys); replaying it anyway is idempotent, so no coordination needed.
      session.BillCacheOp(t.primary);
      auto iset = pr.ISet(ctx, key);
      if (!iset.ok()) {
        if (iset.code() == Code::kBackoff) {
          // A client session holds a lease on this key — it is taking care
          // of it (Algorithm 1 also deletes + refills dirty keys). Retry the
          // key on the next step; the keys already armed drain below.
          backoff = true;
        } else {
          // kUnavailable (primary failed again, transition (5)) or a config
          // change: abandon; the coordinator has re-arranged the fragment.
          abandoned = true;
        }
        break;
      }
      armed.push_back({&key, *iset});
      ++t.next_key;
      ++processed;
    }

    // Phase 2: fetch every armed key's fresh value from the secondary in
    // one batch.
    std::vector<GetRequest> gets;
    gets.reserve(armed.size());
    for (const Armed& a : armed) {
      session.BillCacheOp(t.secondary);
      gets.push_back({ctx, *a.key});
    }
    auto values = instances_.at(t.secondary)->MultiGet(gets);

    // Phase 3: overwrite (value found) or invalidate (miss / error) on the
    // primary under the I token from phase 1.
    for (size_t i = 0; i < armed.size(); ++i) {
      session.BillCacheOp(t.primary);
      if (values[i].ok()) {
        (void)pr.IqSet(ctx, *armed[i].key, std::move(*values[i]),
                       armed[i].token);
        ++stats_.keys_overwritten;
      } else {
        (void)pr.IDelete(ctx, *armed[i].key, armed[i].token);
        ++stats_.keys_deleted;
      }
    }

    if (backoff) {
      session.BillBackoff(options_.backoff);
      return false;
    }
    if (abandoned) {
      AbandonTask(session, /*release_red=*/true);
      return true;
    }
  } else {
    // Algorithm 3 line 20 (Gemini-I): just delete the dirty keys. Deletes
    // carry no lease token, so the whole step rides one pipelined
    // kMultiDelete frame instead of keys_per_step round-trips.
    std::vector<DeleteRequest> deletes;
    deletes.reserve(options_.keys_per_step);
    while (t.next_key + deletes.size() < keys.size() &&
           deletes.size() < options_.keys_per_step) {
      session.BillCacheOp(t.primary);
      deletes.push_back({ctx, keys[t.next_key + deletes.size()]});
    }
    if (!deletes.empty()) {
      auto results = pr.MultiDelete(deletes);
      for (const Status& s : results) {
        if (!s.ok() && s.code() != Code::kNotFound) {
          AbandonTask(session, /*release_red=*/true);
          return true;
        }
        ++stats_.keys_deleted;
        ++t.next_key;
        ++processed;
      }
    }
  }

  if (t.next_key >= keys.size()) {
    FinishTask(session);
    return true;
  }
  return false;
}

}  // namespace gemini
