#include "src/recovery/recovery_worker.h"

#include <algorithm>
#include <cassert>
#include <chrono>
#include <thread>

#include "src/common/logging.h"

namespace gemini {

RecoveryWorker::RecoveryWorker(const Clock* clock,
                               CoordinatorService* coordinator,
                               std::vector<CacheBackend*> instances,
                               Options options)
    : clock_(clock),
      coordinator_(coordinator),
      instances_(std::move(instances)),
      options_(options) {
  assert(coordinator_ != nullptr);
}

std::optional<FragmentId> RecoveryWorker::TryAdoptFragment(Session& session) {
  if (task_.has_value()) return task_->fragment;
  session.BillCoordinatorOp();
  ConfigurationPtr cfg = coordinator_->GetConfiguration();
  if (cfg == nullptr) return std::nullopt;
  const size_t n = cfg->num_fragments();
  // Rotate the scan start so concurrent workers spread across fragments
  // instead of all hammering the same Redlease.
  for (size_t step = 0; step < n; ++step) {
    const auto f = static_cast<FragmentId>((scan_cursor_ + step) % n);
    const FragmentAssignment& a = cfg->fragment(f);
    if (a.mode != FragmentMode::kRecovery) continue;
    if (a.secondary == kInvalidInstance || a.primary == kInvalidInstance) {
      continue;  // Nothing to fetch the dirty list from.
    }
    const bool drained = coordinator_->DirtyProcessed(f);
    if (drained && !options_.working_set_transfer) {
      // Drained already, and this worker does not run transfers: the
      // client-driven working set transfer (simulator) owns the rest.
      continue;
    }
    CacheBackend& sr = *instances_.at(a.secondary);
    const std::string list_key = DirtyListKey(f);

    session.BillCacheOp(a.secondary);
    auto red = sr.AcquireRed(list_key);
    if (!red.ok()) {
      if (red.code() == Code::kBackoff) ++stats_.redlease_conflicts;
      continue;  // Another worker owns this fragment (Section 2.3).
    }

    if (drained) {
      // The previous owner drained the list but died (or lost its lease)
      // mid-transfer. Adopt straight into the working-set phase, restarting
      // the scan from the hottest band — keys it already copied are
      // idempotent skips (the primary IqGet hits).
      Task task;
      task.fragment = f;
      task.primary = a.primary;
      task.secondary = a.secondary;
      task.red_token = *red;
      task.phase = Phase::kWorkingSet;
      task.num_fragments = static_cast<uint32_t>(n);
      task_ = std::move(task);
      scan_cursor_ = f + 1;
      return f;
    }

    // Workers are trusted infrastructure (like the coordinator): they are
    // exempt from the client-config staleness check, which would otherwise
    // reject them spuriously while a burst of recovery publishes is in
    // flight. Fragment-scoped entry validation still applies to their data
    // ops, and the Redlease plus per-op fragment leases guard misrouting.
    session.BillCacheOp(a.secondary);
    const OpContext ctx{kInternalConfigId, kInvalidFragment};
    auto payload = sr.Get(ctx, list_key);
    std::optional<DirtyList> parsed;
    if (payload.ok()) parsed = DirtyList::Parse(payload->data);
    if (!parsed.has_value()) {
      (void)sr.ReleaseRed(list_key, *red);
      if (payload.ok() || payload.code() == Code::kNotFound) {
        // Missing or partial (evicted): the primary is unrecoverable.
        session.BillCoordinatorOp();
        coordinator_->OnDirtyListUnavailable(f);
      }
      // Transient errors (instance just failed): leave the fragment alone;
      // the coordinator's failure handling owns it.
      continue;
    }

    Task task;
    task.fragment = f;
    task.primary = a.primary;
    task.secondary = a.secondary;
    task.config_id = kInternalConfigId;
    task.red_token = *red;
    task.list = std::move(*parsed);
    task.num_fragments = static_cast<uint32_t>(n);
    task_ = std::move(task);
    scan_cursor_ = f + 1;
    return f;
  }
  return std::nullopt;
}

void RecoveryWorker::FinishDrain(Session& session) {
  Task& t = *task_;
  const std::string list_key = DirtyListKey(t.fragment);
  CacheBackend& sr = *instances_.at(t.secondary);
  // Algorithm 3 line 22 deletes the drained dirty list; we instead reset it
  // to the empty (marker-only) payload. If the working set transfer is
  // still running, the fragment stays in recovery mode and clients keep
  // consulting the list — deleting it outright would be indistinguishable
  // from an eviction and would make them discard the freshly recovered
  // primary. The coordinator deletes the entry when the fragment returns to
  // normal mode (Figure 4 transition (3)).
  session.BillCacheOp(t.secondary);
  const OpContext ctx{t.config_id, kInvalidFragment};
  (void)sr.Set(ctx, list_key, CacheValue::OfData(DirtyList::InitialPayload()));
  if (options_.working_set_transfer) {
    // Keep the Redlease and roll into the working-set phase before telling
    // the coordinator: under a -W policy OnDirtyListProcessed completes
    // recovery immediately, and the next StepWorkingSet notices the
    // fragment left recovery mode and stops quietly.
    t.phase = Phase::kWorkingSet;
    t.wst_cursor = 0;
    session.BillCoordinatorOp();
    coordinator_->OnDirtyListProcessed(t.fragment);
    ++stats_.fragments_recovered;
    return;
  }
  (void)sr.ReleaseRed(list_key, t.red_token);
  session.BillCoordinatorOp();
  coordinator_->OnDirtyListProcessed(t.fragment);
  ++stats_.fragments_recovered;
  task_.reset();
}

void RecoveryWorker::FinishWorkingSet(Session& session) {
  Task& t = *task_;
  session.BillCacheOp(t.secondary);
  (void)instances_.at(t.secondary)
      ->ReleaseRed(DirtyListKey(t.fragment), t.red_token);
  session.BillCoordinatorOp();
  coordinator_->OnWorkingSetTransferTerminated(t.fragment);
  ++stats_.wst_completed;
  task_.reset();
}

void RecoveryWorker::AbandonTask(Session& session, bool release_red) {
  Task& t = *task_;
  if (t.phase == Phase::kWorkingSet) ++stats_.wst_aborts;
  if (release_red && t.secondary < instances_.size()) {
    // Best effort: with the secondary dead this fails and the Redlease
    // simply expires — either way no fragment stays stuck behind a lease
    // held by an abandoned task.
    (void)instances_[t.secondary]->ReleaseRed(DirtyListKey(t.fragment),
                                              t.red_token);
    session.BillCacheOp(t.secondary);
  }
  ++stats_.fragments_abandoned;
  task_.reset();
}

bool RecoveryWorker::StepWorkingSet(Session& session) {
  Task& t = *task_;
  const std::string list_key = DirtyListKey(t.fragment);
  CacheBackend& sr = *instances_.at(t.secondary);
  CacheBackend& pr = *instances_.at(t.primary);

  // Same exclusive-ownership discipline as the drain phase.
  session.BillCacheOp(t.secondary);
  if (!sr.RenewRed(list_key, t.red_token).ok()) {
    AbandonTask(session, /*release_red=*/false);
    return true;
  }

  // The transfer is moot the moment the fragment leaves recovery mode or
  // changes peers: the coordinator completed it (a -W policy, or a client
  // reported termination) or tore it down (another failure). Stop without
  // reporting — the coordinator's own transitions settled the fragment.
  session.BillCoordinatorOp();
  ConfigurationPtr cfg = coordinator_->GetConfiguration();
  const FragmentAssignment* a =
      (cfg != nullptr && t.fragment < cfg->num_fragments())
          ? &cfg->fragment(t.fragment)
          : nullptr;
  if (a == nullptr || a->mode != FragmentMode::kRecovery ||
      a->primary != t.primary || a->secondary != t.secondary) {
    session.BillCacheOp(t.secondary);
    (void)sr.ReleaseRed(list_key, t.red_token);
    task_.reset();
    return true;
  }

  // Pull the next priority page of hot keys off the secondary. The scan is
  // fragment-scoped, so this also verifies the secondary still serves the
  // fragment (it holds its lease for the duration of recovery mode).
  const OpContext ctx{t.config_id, t.fragment};
  session.BillCacheOp(t.secondary);
  auto page = sr.WorkingSetScan(ctx, t.num_fragments, t.wst_cursor,
                                options_.wst_page_keys);
  if (!page.ok()) {
    // Secondary died (or dropped the fragment) mid-stream: abort cleanly.
    // The coordinator's failure handling terminates the transfer; if the
    // fragment survives in recovery mode, Redlease expiry lets another
    // worker restart from the hottest band.
    AbandonTask(session, /*release_red=*/true);
    return true;
  }
  ++stats_.wst_pages;
  t.wst_cursor = page->next_cursor;

  // Install the page hottest-first, in arm -> fetch -> fill chunks of
  // keys_per_step. The chunk bounds how long an armed I token sits idle:
  // arming rides one round trip per key, so arming a whole page up front
  // would let the tokens armed first expire (i_lease_lifetime) before their
  // IqSet lands, silently dropping the tail of every large page. Within a
  // chunk, IqGet-before-copy keeps every entry that survived the failure in
  // place (a hit means the restored primary already has it — never clobber)
  // and arms an I token on each miss; a client write racing the copy Qaregs
  // the key, voiding the token, so the stale secondary value can never
  // overwrite a fresher one (Lemma 4).
  struct Pending {
    const WorkingSetItem* item;
    LeaseToken token;
  };
  std::vector<Pending> pending;
  std::vector<GetRequest> gets;
  for (size_t base = 0; base < page->items.size();
       base += options_.keys_per_step) {
    const size_t end =
        std::min(page->items.size(), base + options_.keys_per_step);
    if (base > 0) {
      // A throttled multi-chunk page can outlast the Redlease; keep it live
      // so the next Step (and the next chunk) still own the fragment.
      session.BillCacheOp(t.secondary);
      if (!sr.RenewRed(list_key, t.red_token).ok()) {
        AbandonTask(session, /*release_red=*/false);
        return true;
      }
    }

    pending.clear();
    pending.reserve(end - base);
    for (size_t j = base; j < end; ++j) {
      const WorkingSetItem& item = page->items[j];
      session.BillCacheOp(t.primary);
      auto got = pr.IqGet(ctx, item.key);
      if (!got.ok()) {
        if (got.code() == Code::kBackoff) {
          // A client session holds a lease on this key — it is being
          // handled.
          ++stats_.wst_keys_skipped;
          continue;
        }
        // Primary failed again or the config moved under us. Armed I tokens
        // expire on their own; abandon the task.
        AbandonTask(session, /*release_red=*/true);
        return true;
      }
      if (got->value.has_value() || got->i_token == kNoLease) {
        ++stats_.wst_keys_skipped;  // already warm in the primary
        continue;
      }
      pending.push_back({&item, got->i_token});
    }

    // One pipelined MultiGet for the chunk's misses.
    gets.clear();
    gets.reserve(pending.size());
    for (const Pending& p : pending) {
      session.BillCacheOp(t.secondary);
      gets.push_back({ctx, p.item->key});
    }
    auto values = sr.MultiGet(gets);

    uint64_t installed_bytes = 0;
    bool secondary_lost = false;
    for (size_t i = 0; i < pending.size(); ++i) {
      session.BillCacheOp(t.primary);
      if (values[i].ok()) {
        const uint64_t charged = values[i]->charged_bytes;
        if (pr.IqSet(ctx, pending[i].item->key, std::move(*values[i]),
                     pending[i].token)
                .ok()) {
          ++stats_.wst_keys_copied;
          stats_.wst_bytes_copied += charged;
          installed_bytes += charged;
        } else {
          ++stats_.wst_keys_skipped;  // token voided by a racing client write
        }
      } else if (values[i].code() == Code::kNotFound) {
        // Evicted or deleted from the secondary since the scan; release the
        // token (IDelete on a missing entry is a no-op delete).
        (void)pr.IDelete(ctx, pending[i].item->key, pending[i].token);
        ++stats_.wst_keys_skipped;
      } else {
        ++stats_.wst_keys_skipped;
        secondary_lost = true;
      }
    }
    if (secondary_lost) {
      AbandonTask(session, /*release_red=*/true);
      return true;
    }

    // Byte-rate throttle: pace the copy so its pull on the primary (and the
    // network) stays bounded while foreground reads are being served.
    // Applied per chunk, so the pacing stays smooth even when the scan
    // returns page-per-fragment sized pages. Real wall-clock pacing, so DES
    // deployments leave wst_bytes_per_sec at 0.
    if (options_.wst_bytes_per_sec > 0 && installed_bytes > 0) {
      const double secs = static_cast<double>(installed_bytes) /
                          static_cast<double>(options_.wst_bytes_per_sec);
      session.BillBackoff(Seconds(secs));
      std::this_thread::sleep_for(std::chrono::duration<double>(secs));
    }
  }

  if (t.wst_cursor == 0) {
    FinishWorkingSet(session);
    return true;
  }
  return false;
}

bool RecoveryWorker::Step(Session& session) {
  if (!task_.has_value()) return true;
  if (task_->phase == Phase::kWorkingSet) return StepWorkingSet(session);
  Task& t = *task_;
  CacheBackend& pr = *instances_.at(t.primary);
  const OpContext ctx{t.config_id, t.fragment};

  // Keep exclusive ownership for the duration of this batch. Losing the
  // Redlease means another worker may already be replaying this fragment;
  // back out (replay is idempotent either way, Section 3.3).
  session.BillCacheOp(t.secondary);
  if (!instances_.at(t.secondary)->RenewRed(DirtyListKey(t.fragment),
                                            t.red_token).ok()) {
    AbandonTask(session, /*release_red=*/false);
    return true;
  }

  const std::vector<std::string>& keys = t.list.keys();
  size_t processed = 0;
  if (options_.overwrite_dirty) {
    // Algorithm 3 lines 10-17 (Gemini-O), drained as a phased batch so the
    // secondary lookups ride one pipelined MultiGet over TCP instead of one
    // round trip per key. Per key the order ISet_k < Get_k < IqSet_k still
    // holds — the phases only reorder operations *across* keys, which
    // Algorithm 3 never sequences — so a client write racing key k after
    // its ISet voids our I token exactly as in the one-key-at-a-time loop.
    //
    // Phase 1: arm every key in the batch with an ISet on the primary.
    struct Armed {
      const std::string* key;
      LeaseToken token;
    };
    std::vector<Armed> armed;
    bool backoff = false, abandoned = false;
    while (t.next_key < keys.size() && processed < options_.keys_per_step) {
      const std::string& key = keys[t.next_key];
      // A client may have handled this key already (its writes delete dirty
      // keys); replaying it anyway is idempotent, so no coordination needed.
      session.BillCacheOp(t.primary);
      auto iset = pr.ISet(ctx, key);
      if (!iset.ok()) {
        if (iset.code() == Code::kBackoff) {
          // A client session holds a lease on this key — it is taking care
          // of it (Algorithm 1 also deletes + refills dirty keys). Retry the
          // key on the next step; the keys already armed drain below.
          backoff = true;
        } else {
          // kUnavailable (primary failed again, transition (5)) or a config
          // change: abandon; the coordinator has re-arranged the fragment.
          abandoned = true;
        }
        break;
      }
      armed.push_back({&key, *iset});
      ++t.next_key;
      ++processed;
    }

    // Phase 2: fetch every armed key's fresh value from the secondary in
    // one batch.
    std::vector<GetRequest> gets;
    gets.reserve(armed.size());
    for (const Armed& a : armed) {
      session.BillCacheOp(t.secondary);
      gets.push_back({ctx, *a.key});
    }
    auto values = instances_.at(t.secondary)->MultiGet(gets);

    // Phase 3: overwrite (value found) or invalidate (miss / error) on the
    // primary under the I token from phase 1.
    for (size_t i = 0; i < armed.size(); ++i) {
      session.BillCacheOp(t.primary);
      if (values[i].ok()) {
        (void)pr.IqSet(ctx, *armed[i].key, std::move(*values[i]),
                       armed[i].token);
        ++stats_.keys_overwritten;
      } else {
        (void)pr.IDelete(ctx, *armed[i].key, armed[i].token);
        ++stats_.keys_deleted;
      }
    }

    if (backoff) {
      session.BillBackoff(options_.backoff);
      return false;
    }
    if (abandoned) {
      AbandonTask(session, /*release_red=*/true);
      return true;
    }
  } else {
    // Algorithm 3 line 20 (Gemini-I): just delete the dirty keys. Deletes
    // carry no lease token, so the whole step rides one pipelined
    // kMultiDelete frame instead of keys_per_step round-trips.
    std::vector<DeleteRequest> deletes;
    deletes.reserve(options_.keys_per_step);
    while (t.next_key + deletes.size() < keys.size() &&
           deletes.size() < options_.keys_per_step) {
      session.BillCacheOp(t.primary);
      deletes.push_back({ctx, keys[t.next_key + deletes.size()]});
    }
    if (!deletes.empty()) {
      auto results = pr.MultiDelete(deletes);
      for (const Status& s : results) {
        if (!s.ok() && s.code() != Code::kNotFound) {
          AbandonTask(session, /*release_red=*/true);
          return true;
        }
        ++stats_.keys_deleted;
        ++t.next_key;
        ++processed;
      }
    }
  }

  if (t.next_key >= keys.size()) {
    FinishDrain(session);
    // Under ±W the task rolls into the working-set phase instead of ending.
    return !task_.has_value();
  }
  return false;
}

}  // namespace gemini
