// Synthetic Facebook-like workload (Section 5.1).
//
// The paper generates a trace from the statistical models of Facebook's USR
// pool (Atikoglu et al., SIGMETRICS'12): mean key size 36 bytes, mean value
// size 329 bytes, mean inter-arrival time 19 microseconds, 95% reads, a
// highly skewed Zipfian access pattern over 10M records, and a cache memory
// budget equal to 50% of the database size.
//
// Per-record key lengths are drawn from the Generalized Extreme Value model
// and value sizes from the Generalized Pareto model, deterministically from
// the record id, so every component observes the same universe.
#pragma once

#include <cstdint>

#include "src/workload/workload.h"

namespace gemini {

class FacebookWorkload final : public Workload {
 public:
  struct Options {
    uint64_t num_records = 1'000'000;
    double read_fraction = 0.95;
    double zipf_theta = 0.99;
    /// Mean inter-arrival time of the open-loop trace. The paper's 19 us is
    /// calibrated against its 10M-record database; harnesses scale it with
    /// the database so load-per-record matches (see EXPERIMENTS.md).
    Duration mean_interarrival = Micros(19);
    uint64_t seed = 0x9e3779b9;

    // Atikoglu et al. model parameters.
    double key_gev_mu = 30.7984;
    double key_gev_sigma = 8.20449;
    double key_gev_xi = 0.078688;
    double value_gpd_mu = 0.0;
    double value_gpd_sigma = 214.476;
    double value_gpd_xi = 0.348238;
  };

  explicit FacebookWorkload(Options options);

  Operation Next(Rng& rng) override;
  Duration NextInterarrival(Rng& rng) override;

  [[nodiscard]] uint64_t num_records() const override {
    return options_.num_records;
  }
  [[nodiscard]] std::string KeyOfRecord(uint64_t record) const override;
  [[nodiscard]] uint32_t ValueSizeOfRecord(uint64_t record) const override;

  /// Database size in bytes (sum of record value sizes) — the denominator of
  /// the paper's "cache memory = 50% of the database size".
  [[nodiscard]] uint64_t ApproxDatabaseBytes() const;

 private:
  [[nodiscard]] uint32_t KeyLengthOfRecord(uint64_t record) const;

  Options options_;
  ScrambledZipfian zipf_;
  GeneralizedExtremeValue key_model_;
  GeneralizedPareto value_model_;
};

}  // namespace gemini
