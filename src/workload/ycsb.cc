#include "src/workload/ycsb.h"

#include <cassert>
#include <cstdio>

namespace gemini {

YcsbWorkload::YcsbWorkload(Options options)
    : options_(options),
      full_zipf_(options.num_records, options.zipf_theta),
      half_zipf_(std::max<uint64_t>(1, options.num_records / 2),
                 options.zipf_theta),
      half_(options.num_records / 2),
      hot_window_(options.num_records / 2 / 5) {
  assert(options_.num_records >= 2);
}

std::string YcsbWorkload::KeyOfRecord(uint64_t record) const {
  // YCSB-style "user<###>" keys, fixed width so key sizes are uniform.
  char buf[28];
  std::snprintf(buf, sizeof(buf), "user%016llu",
                static_cast<unsigned long long>(record));
  return buf;
}

uint64_t YcsbWorkload::DrawRecord(Rng& rng) {
  if (options_.evolution == Evolution::kStatic) {
    return full_zipf_.Next(rng);
  }
  // Evolving: ranks are drawn over half the database; record ids preserve
  // rank so the "hottest 20%" is the rank prefix (Section 5.4.4).
  const uint64_t r = half_zipf_.Next(rng);
  if (phase_ == 0) return r;  // set A
  if (options_.evolution == Evolution::kSwitch100) {
    return half_ + r;  // set B entirely
  }
  // 20% change: hottest ranks move to set B, the rest stay in A.
  return r < hot_window_ ? half_ + r : r;
}

Operation YcsbWorkload::Next(Rng& rng) {
  Operation op;
  op.is_read = rng.NextDouble() >= options_.update_fraction;
  op.record = DrawRecord(rng);
  op.key = KeyOfRecord(op.record);
  return op;
}

}  // namespace gemini
