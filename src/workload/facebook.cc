#include "src/workload/facebook.h"

#include <algorithm>
#include <cstdio>

#include "src/common/hash.h"

namespace gemini {

FacebookWorkload::FacebookWorkload(Options options)
    : options_(options),
      zipf_(options.num_records, options.zipf_theta),
      key_model_(options.key_gev_mu, options.key_gev_sigma, options.key_gev_xi),
      value_model_(options.value_gpd_mu, options.value_gpd_sigma,
                   options.value_gpd_xi) {}

uint32_t FacebookWorkload::KeyLengthOfRecord(uint64_t record) const {
  Rng rng(Mix64(record ^ options_.seed));
  const double len = key_model_.Next(rng);
  // memcached keys are 1..250 bytes; our encoding needs >= 20.
  return static_cast<uint32_t>(std::clamp(len, 20.0, 250.0));
}

std::string FacebookWorkload::KeyOfRecord(uint64_t record) const {
  char buf[24];
  std::snprintf(buf, sizeof(buf), "fb%018llu",
                static_cast<unsigned long long>(record));
  std::string key(buf);
  key.resize(KeyLengthOfRecord(record), 'x');
  return key;
}

uint32_t FacebookWorkload::ValueSizeOfRecord(uint64_t record) const {
  Rng rng(Mix64(record * 0xD1B54A32D192ED03ULL ^ options_.seed));
  const double size = value_model_.Next(rng);
  // The USR pool serves small values; cap the Pareto tail at 8 KiB.
  return static_cast<uint32_t>(std::clamp(size, 1.0, 8192.0));
}

uint64_t FacebookWorkload::ApproxDatabaseBytes() const {
  // Sample-based estimate (exact summation over 10M records is wasteful and
  // the result feeds a cache-capacity knob, not an invariant).
  const uint64_t n = options_.num_records;
  const uint64_t samples = std::min<uint64_t>(n, 100'000);
  uint64_t total = 0;
  for (uint64_t i = 0; i < samples; ++i) {
    const uint64_t record = (i * n) / samples;
    total += ValueSizeOfRecord(record) + KeyLengthOfRecord(record);
  }
  return total * n / samples;
}

Operation FacebookWorkload::Next(Rng& rng) {
  Operation op;
  op.is_read = rng.NextDouble() < options_.read_fraction;
  op.record = zipf_.Next(rng);
  op.key = KeyOfRecord(op.record);
  return op;
}

Duration FacebookWorkload::NextInterarrival(Rng& rng) {
  const double gap = rng.NextExponential(
      static_cast<double>(options_.mean_interarrival));
  return std::max<Duration>(1, static_cast<Duration>(gap));
}

}  // namespace gemini
