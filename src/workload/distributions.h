// Additional access-pattern generators (beyond the paper's Zipfian), in the
// YCSB family: uniform, hotspot, and latest. Used by the ablation benches
// and available to downstream users of the workload library.
#pragma once

#include <algorithm>
#include <cstdint>

#include "src/common/rng.h"

namespace gemini {

/// Uniform over {0, ..., n-1}.
class UniformKeys {
 public:
  explicit UniformKeys(uint64_t n) : n_(n) {}
  uint64_t Next(Rng& rng) const { return rng.NextBounded(n_); }
  [[nodiscard]] uint64_t n() const { return n_; }

 private:
  uint64_t n_;
};

/// Hotspot: `hot_fraction` of accesses hit the first `hot_set_fraction` of
/// the key space (YCSB's hotspot distribution).
class HotspotKeys {
 public:
  HotspotKeys(uint64_t n, double hot_set_fraction = 0.2,
              double hot_fraction = 0.8)
      : n_(n),
        hot_keys_(std::max<uint64_t>(
            1, static_cast<uint64_t>(static_cast<double>(n) *
                                     hot_set_fraction))),
        hot_fraction_(hot_fraction) {}

  uint64_t Next(Rng& rng) const {
    if (rng.NextDouble() < hot_fraction_) {
      return rng.NextBounded(hot_keys_);
    }
    const uint64_t cold = n_ - hot_keys_;
    return cold == 0 ? rng.NextBounded(n_)
                     : hot_keys_ + rng.NextBounded(cold);
  }

  [[nodiscard]] uint64_t hot_keys() const { return hot_keys_; }

 private:
  uint64_t n_;
  uint64_t hot_keys_;
  double hot_fraction_;
};

/// Latest: skewed toward recently inserted records (YCSB's latest
/// distribution). The caller advances the frontier as records are created;
/// draws are Zipfian distances behind the frontier.
class LatestKeys {
 public:
  explicit LatestKeys(uint64_t initial_records, double theta = 0.99)
      : frontier_(initial_records), zipf_(initial_records, theta) {}

  /// Record id, biased toward the most recent.
  uint64_t Next(Rng& rng) const {
    const uint64_t back = zipf_.Next(rng) % frontier_;
    return frontier_ - 1 - back;
  }

  /// Registers newly inserted records (keeps the Zipfian over the original
  /// cardinality: YCSB does the same modulo-fold).
  void Advance(uint64_t new_records) { frontier_ += new_records; }

  [[nodiscard]] uint64_t frontier() const { return frontier_; }

 private:
  uint64_t frontier_;
  Zipfian zipf_;
};

}  // namespace gemini
