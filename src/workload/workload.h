// Workload abstraction shared by the experiment harness.
//
// A Workload owns the key universe (record id -> key string, record id ->
// value size) and generates a stream of operations. Two families reproduce
// the paper's Section 5:
//
//   YcsbWorkload      — YCSB-style: fixed-size records, Zipfian popularity,
//                       parameterized update fraction (A = 50%, B = 5%,
//                       sweeps of 1%..10%), static or evolving access
//                       patterns (the 20% / 100% switches of Section 5.4.4).
//   FacebookWorkload  — the synthetic Facebook-like trace of Section 5.1:
//                       key/value size models from Atikoglu et al., 95%
//                       reads, exponential inter-arrivals.
//
// Workloads are deterministic given a seed; the per-record attributes (key
// length, value size) are pure functions of the record id so that every
// component (store loader, harness, checkers) sees a consistent universe.
#pragma once

#include <cstdint>
#include <string>

#include "src/common/clock.h"
#include "src/common/rng.h"
#include "src/store/data_store.h"

namespace gemini {

struct Operation {
  bool is_read = true;
  uint64_t record = 0;
  std::string key;
};

class Workload {
 public:
  virtual ~Workload() = default;

  /// Draws the next operation.
  virtual Operation Next(Rng& rng) = 0;

  /// Switches the access-pattern phase (evolving workloads). Phase 0 is the
  /// pre-failure pattern; phase 1 the post-failure one. Default: no-op.
  virtual void SetPhase(int phase) { (void)phase; }

  /// Open-loop inter-arrival time; 0 means the workload is closed-loop.
  virtual Duration NextInterarrival(Rng& rng) {
    (void)rng;
    return 0;
  }

  [[nodiscard]] virtual uint64_t num_records() const = 0;
  [[nodiscard]] virtual std::string KeyOfRecord(uint64_t record) const = 0;
  [[nodiscard]] virtual uint32_t ValueSizeOfRecord(uint64_t record) const = 0;

  /// Bulk-loads every record into the data store.
  void LoadStore(DataStore& store) const;
};

}  // namespace gemini
