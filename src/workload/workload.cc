#include "src/workload/workload.h"

namespace gemini {

void Workload::LoadStore(DataStore& store) const {
  store.LoadSyntheticSized(
      num_records(), [this](uint64_t i) { return KeyOfRecord(i); },
      [this](uint64_t i) { return ValueSizeOfRecord(i); });
}

}  // namespace gemini
