// YCSB-style workload (Sections 5.2, 5.4).
//
// The paper's YCSB setup: a 10M-record database of 1 KB records, a highly
// skewed Zipfian popularity distribution, Workload A (50% reads / 50%
// updates), Workload B (95% reads / 5% updates), and sweeps that vary the
// update percentage from 1% to 10%.
//
// Evolving access patterns (Section 5.4.4): records are partitioned into two
// halves A and B. Phase 0 references only A. Phase 1 references B with the
// same distribution (a 100% change), or — for a 20% change — swaps the most
// frequently accessed 20% of A's records with their counterparts in B.
#pragma once

#include <cstdint>

#include "src/workload/workload.h"

namespace gemini {

class YcsbWorkload : public Workload {
 public:
  enum class Evolution : uint8_t {
    kStatic = 0,
    kSwitch20 = 20,   // swap the hottest 20% of set A with set B
    kSwitch100 = 100  // move every reference from set A to set B
  };

  struct Options {
    uint64_t num_records = 100'000;
    double update_fraction = 0.05;  // Workload B
    double zipf_theta = 0.99;       // YCSB "highly skewed"
    uint32_t record_bytes = 1024;
    Evolution evolution = Evolution::kStatic;

    static Options WorkloadA() {
      Options o;
      o.update_fraction = 0.5;
      return o;
    }
    static Options WorkloadB() {
      Options o;
      o.update_fraction = 0.05;
      return o;
    }
  };

  explicit YcsbWorkload(Options options);

  Operation Next(Rng& rng) override;
  void SetPhase(int phase) override { phase_ = phase; }

  [[nodiscard]] uint64_t num_records() const override {
    return options_.num_records;
  }
  [[nodiscard]] std::string KeyOfRecord(uint64_t record) const override;
  [[nodiscard]] uint32_t ValueSizeOfRecord(uint64_t) const override {
    return options_.record_bytes;
  }

  [[nodiscard]] int phase() const { return phase_; }

 private:
  [[nodiscard]] uint64_t DrawRecord(Rng& rng);

  Options options_;
  int phase_ = 0;
  // Static pattern: scrambled Zipfian over the full database.
  ScrambledZipfian full_zipf_;
  // Evolving patterns: rank-preserving Zipfian over half the database
  // (rank r -> record r of the active set), so "the most frequently
  // accessed" records are identifiable by rank.
  Zipfian half_zipf_;
  uint64_t half_;
  uint64_t hot_window_;
};

}  // namespace gemini
