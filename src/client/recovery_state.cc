#include "src/client/recovery_state.h"

namespace gemini {

RecoveryState::RecoveryState(size_t num_fragments)
    : wst_terminated_(num_fragments) {
  for (auto& f : wst_terminated_) f.store(0, std::memory_order_relaxed);
}

bool RecoveryState::WstTerminated(FragmentId fragment) const {
  if (fragment >= wst_terminated_.size()) return true;
  return wst_terminated_[fragment].load(std::memory_order_relaxed) != 0;
}

void RecoveryState::TerminateWst(FragmentId fragment) {
  if (fragment >= wst_terminated_.size()) return;
  wst_terminated_[fragment].store(1, std::memory_order_relaxed);
}

void RecoveryState::ResetWst(FragmentId fragment) {
  if (fragment >= wst_terminated_.size()) return;
  wst_terminated_[fragment].store(0, std::memory_order_relaxed);
}

}  // namespace gemini
