// GeminiClient: the client library applications link against (Sections 2, 3).
//
// The client caches a configuration, routes each request to a fragment with
// hash(key) % F (Figure 3), and runs the per-mode request protocols:
//
//  - normal:     IQ sessions against the fragment's primary replica.
//  - transient:  the same against the secondary replica, plus appending the
//                key of every write to the fragment's dirty list.
//  - recovery:   Algorithm 1 (reads) and Algorithm 2 (writes) against both
//                replicas, including the optional working set transfer.
//
// Failure handling (Sections 2.2, 3.3):
//  - kStaleConfig / kWrongInstance from an instance: refresh the
//    configuration and retry the whole operation.
//  - kUnavailable with an unchanged configuration (the coordinator has not
//    yet published the secondary): reads fall through to the data store,
//    writes return kSuspended — callers retry after the new configuration
//    appears, preserving read-after-write consistency. Over TCP the
//    transport layer may already have retried idempotent ops (and a tripped
//    circuit breaker fails instantly without dialing) before kUnavailable
//    reaches this client — see docs/PROTOCOL.md §11; either way the meaning
//    here is identical: treat the instance as failed, degrade, never guess
//    about lease or write outcome.
//  - Lease back-off (kBackoff): bounded retry with a configurable pause;
//    reads exhausted of retries fall through to the data store *without*
//    populating the cache.
//
// Every remote touch is billed to the caller's Session so the discrete-event
// harness can account virtual time; pass a default-constructed Session for
// real-time use.
#pragma once

#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/cache/cache_instance.h"
#include "src/cache/dirty_list.h"
#include "src/client/recovery_state.h"
#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/coordinator/coordinator_service.h"
#include "src/net/cost_model.h"
#include "src/store/data_store.h"

namespace gemini {

/// Section 2: policies for processing writes. The paper evaluates Gemini
/// with write-around ("due to lack of space"); write-through is implemented
/// as an extension — the write installs the new value in the cache under
/// the same Q lease instead of deleting the entry, so dirty keys recovered
/// by Gemini-O carry real values rather than invalidations.
enum class WritePolicy : uint8_t {
  kWriteAround,
  kWriteThrough,
  /// Extension: acknowledge after installing the value in the (persistent)
  /// cache; a WriteBackFlusher applies it to the data store asynchronously.
  /// Read-after-write holds while the primary is reachable; an unflushed
  /// write is invisible to other replicas until flushed — the failure-window
  /// hole bench/ablation_write_policy quantifies (and the reason the paper
  /// evaluates write-around). Outside normal mode the client falls back to
  /// write-through.
  kWriteBack,
};

class GeminiClient {
 public:
  struct Options {
    /// Pause before retrying a lease collision (paper: leases live for
    /// milliseconds, so collisions resolve quickly).
    Duration backoff = Millis(1);
    int max_backoff_retries = 25;
    /// Bound on refresh-and-retry loops for configuration changes.
    int max_config_retries = 8;
    /// Working set transfer enabled (policy +W variants).
    bool working_set_transfer = false;
    /// Write processing policy (Section 2). Write-back is out of scope.
    WritePolicy write_policy = WritePolicy::kWriteAround;
    /// Record written keys on the fragment's dirty list in transient mode.
    /// True for Gemini; the VolatileCache/StaleCache baselines do not
    /// maintain dirty lists (Section 5).
    bool maintain_dirty_lists = true;
    /// Delete the key in the secondary replica on a recovery-mode write.
    /// Algorithm 2 guards this with "working set transfer enabled", but the
    /// consistency proof (Lemma 4, Case II) relies on the delete whenever a
    /// secondary-to-primary copy can occur — which includes Gemini-O's
    /// overwriting recovery workers — so it defaults to on. Disable only to
    /// reproduce the narrower pseudo-code (exercised by tests).
    bool delete_secondary_on_recovery_write = true;
    /// Adopt coordinator configuration advances eagerly: before each
    /// operation, compare the coordinator's latest_id() against the cached
    /// configuration and refresh when it moved. Against a RemoteCoordinator
    /// the compare is a local atomic load that kPushConfig frames keep
    /// fresh, so a Rejig reaches the very next operation instead of waiting
    /// for a kStaleConfig bounce off an instance. Off by default: the
    /// historical (poll-on-error) behavior, which the DES harness bills
    /// explicitly and the in-process builds rely on.
    bool follow_config_pushes = false;
  };

  GeminiClient(const Clock* clock, CoordinatorService* coordinator,
               std::vector<CacheBackend*> instances, DataStore* store)
      : GeminiClient(clock, coordinator, std::move(instances), store,
                     Options()) {}
  GeminiClient(const Clock* clock, CoordinatorService* coordinator,
               std::vector<CacheBackend*> instances, DataStore* store,
               Options options);
  /// Convenience overloads for in-process clusters (tests, the DES harness):
  /// a CacheInstance* vector upcasts element-wise to the backend interface.
  GeminiClient(const Clock* clock, CoordinatorService* coordinator,
               const std::vector<CacheInstance*>& instances, DataStore* store)
      : GeminiClient(clock, coordinator, instances, store, Options()) {}
  GeminiClient(const Clock* clock, CoordinatorService* coordinator,
               const std::vector<CacheInstance*>& instances, DataStore* store,
               Options options)
      : GeminiClient(clock, coordinator,
                     std::vector<CacheBackend*>(instances.begin(),
                                                instances.end()),
                     store, options) {}

  /// Binds the shared WST-termination flags (required when
  /// working_set_transfer is on).
  void BindRecoveryState(RecoveryState* state) { recovery_state_ = state; }

  struct ReadResult {
    CacheValue value;
    /// Value came from the cache layer (either replica).
    bool cache_hit = false;
    /// Value was copied from the secondary during working set transfer.
    bool from_secondary = false;
    /// Replica instance that processed the cache lookup (kInvalidInstance
    /// when the read was served by the data store during the failover
    /// window). On a miss this is the replica that observed the miss.
    InstanceId instance = kInvalidInstance;
    /// Replica the configuration routed this read to (the primary in normal
    /// and recovery modes, the secondary in transient mode). Differs from
    /// `instance` when the working set transfer served the value from the
    /// secondary; per-instance hit-ratio accounting attributes the lookup to
    /// the routed replica.
    InstanceId routed = kInvalidInstance;
    /// The working set transfer probed the secondary replica on a primary
    /// miss; `from_secondary` tells whether that probe hit. Feeds the
    /// secondary-miss-ratio termination condition (Section 3.2.2).
    bool secondary_probed = false;
  };

  /// Application read. On a cache miss the client queries the data store,
  /// computes the cache entry, and inserts it for future references.
  Result<ReadResult> Read(Session& session, std::string_view key);

  /// Primes the cache for `keys` (e.g. after a client restart, or ahead of
  /// an anticipated hot set). Probes the cluster with one batched MultiGet
  /// per routed replica — over TCP each burst pipelines through the
  /// connection's in-flight window instead of paying one round trip per
  /// key — then runs the full Read() path only for the keys the probes did
  /// not find. Returns how many keys were already cached. Probe lookups do
  /// not count toward stats(); the fill-in Reads bill and count as usual.
  size_t WarmUp(Session& session, const std::vector<std::string>& keys);

  /// Drops the cache entries for `keys` (e.g. after a bulk store-side
  /// mutation that bypassed Write()). Groups keys per routed replica and
  /// ships one pipelined MultiDelete frame per replica — no lease, no store
  /// write, kNotFound is a success. Keys on recovery-mode fragments are
  /// skipped (their invalidation must go through Write(), which maintains
  /// the dirty list); the skip count is keys.size() minus the return value
  /// minus the not-found entries. Returns how many entries were dropped.
  size_t InvalidateKeys(Session& session, const std::vector<std::string>& keys);

  /// Application write, write-around policy: updates the data store and
  /// invalidates the impacted cache entry under a Q lease. `data` optionally
  /// replaces the record payload (synthetic workloads pass nullopt; only the
  /// version moves). Returns kSuspended while the fragment has no reachable
  /// replica and no new configuration exists yet.
  Status Write(Session& session, std::string_view key,
               std::optional<std::string> data = std::nullopt);

  /// Fetches the latest configuration from the coordinator.
  void RefreshConfig(Session& session);

  /// Client crash-recovery path (Section 3.3): fetch the configuration from
  /// an instance's cache entry; falls back to the coordinator when the entry
  /// was evicted. Returns the id of the adopted configuration.
  ConfigId Bootstrap(Session& session, InstanceId via_instance);

  [[nodiscard]] ConfigurationPtr config() const;

  /// Drops all client-local state (configuration and fetched dirty lists),
  /// as a freshly restarted client process would have.
  void ForgetState();

  struct Stats {
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t cache_hits = 0;
    uint64_t store_reads = 0;
    uint64_t suspended_writes = 0;
    uint64_t wst_copies = 0;
    uint64_t dirty_hits = 0;  // reads that found their key on a dirty list
  };
  [[nodiscard]] Stats stats() const;

 private:
  struct CachedDirtyList {
    DirtyList list;
    /// The fragment's epoch when the list was fetched; a different epoch in
    /// the current configuration invalidates the cache (the fragment went
    /// through another transient episode this client never observed).
    uint32_t epoch = 0;
  };

  // Marks `key` clean for `fragment` from this client's perspective
  // (Algorithm 1 line 8 / Algorithm 2's deletes): removes it from the
  // fetched list, or remembers the removal for a list fetched later within
  // the same epoch.
  void MarkKeyClean(FragmentId fragment, uint32_t epoch,
                    std::string_view key);

  // Returns the cached configuration, fetching it on first use.
  ConfigurationPtr EnsureConfig(Session& session);

  // Normal/transient read processing against one replica.
  Result<ReadResult> ReadViaReplica(Session& session, std::string_view key,
                                    FragmentId fragment, InstanceId target,
                                    ConfigId config_id);

  // Recovery-mode read (Algorithm 1).
  Result<ReadResult> ReadRecovery(Session& session, std::string_view key,
                                  FragmentId fragment,
                                  const FragmentAssignment& a,
                                  ConfigId config_id);

  // Shared miss path: query the store, insert into `target` under `i_token`.
  Result<ReadResult> FillFromStore(Session& session, std::string_view key,
                                   FragmentId fragment, InstanceId target,
                                   ConfigId config_id, LeaseToken i_token,
                                   bool secondary_probed = false);

  // Applies the data-store update and the cache-side completion of a write
  // session per the configured write policy: delete-and-release
  // (write-around) or replace-and-release (write-through).
  Status CommitWrite(Session& session, CacheBackend& inst,
                     InstanceId instance, const OpContext& ctx,
                     std::string_view key, LeaseToken q_token,
                     std::optional<std::string>& data, bool allow_write_back);

  // Fetches (or reuses) the dirty list of a fragment in recovery mode.
  // Returns nullptr if the list is unavailable (primary being discarded).
  CachedDirtyList* EnsureDirtyList(Session& session, FragmentId fragment,
                                   const FragmentAssignment& a,
                                   ConfigId config_id);

  // True if the working set transfer is currently active for the fragment.
  bool WstActive(FragmentId fragment, const FragmentAssignment& a) const;

  void DropStaleDirtyLists(const Configuration& config);

  const Clock* clock_;
  CoordinatorService* coordinator_;
  std::vector<CacheBackend*> instances_;
  DataStore* store_;
  Options options_;
  RecoveryState* recovery_state_ = nullptr;

  mutable std::mutex mu_;
  ConfigurationPtr config_;
  std::unordered_map<FragmentId, CachedDirtyList> dirty_lists_;
  // Keys this client already handled for fragments whose dirty list it has
  // not fetched yet (epoch-scoped); applied at fetch time.
  struct PendingClean {
    uint32_t epoch = 0;
    std::vector<std::string> keys;
  };
  std::unordered_map<FragmentId, PendingClean> pending_clean_;
  Stats stats_;
};

}  // namespace gemini
