// Shared working-set-transfer control flags (Section 3.2.2).
//
// Gemini terminates the working set transfer of a recovering fragment when
// (a) the primary's cache hit ratio exceeds a threshold h, or (b) the
// secondary's miss ratio exceeds a threshold m. The ratios are measured over
// the live request stream — in our harness by the per-instance monitor that
// samples hit ratios once per virtual second (the paper monitors at the same
// granularity, Section 5.4.1).
//
// RecoveryState is the process-wide flag array the monitor flips and every
// client consults before looking up a secondary replica. It is keyed by
// fragment; flags are reset when a fragment re-enters transient mode.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "src/common/types.h"

namespace gemini {

class RecoveryState {
 public:
  explicit RecoveryState(size_t num_fragments);

  [[nodiscard]] bool WstTerminated(FragmentId fragment) const;
  void TerminateWst(FragmentId fragment);
  void ResetWst(FragmentId fragment);

 private:
  std::vector<std::atomic<uint8_t>> wst_terminated_;
};

/// Termination thresholds (Section 3.2.2): h defaults to the primary's
/// pre-failure hit ratio minus epsilon, m to 1 - h + epsilon.
struct WstThresholds {
  double h = 0.0;
  double m = 1.0;

  static WstThresholds FromPrefailureHitRatio(double hit_ratio,
                                              double epsilon = 0.02) {
    WstThresholds t;
    t.h = hit_ratio - epsilon;
    t.m = 1.0 - t.h + epsilon;
    return t;
  }
};

}  // namespace gemini
