#include "src/client/gemini_client.h"

#include <cassert>

#include "src/common/logging.h"

namespace gemini {

namespace {

CacheValue ValueFromRecord(const StoreRecord& rec) {
  return rec.data.empty()
             ? CacheValue::OfSize(rec.size_bytes, rec.version)
             : CacheValue::OfData(rec.data, rec.version);
}

}  // namespace

GeminiClient::GeminiClient(const Clock* clock, CoordinatorService* coordinator,
                           std::vector<CacheBackend*> instances,
                           DataStore* store, Options options)
    : clock_(clock),
      coordinator_(coordinator),
      instances_(std::move(instances)),
      store_(store),
      options_(options) {
  assert(coordinator_ != nullptr);
  assert(store_ != nullptr);
}

ConfigurationPtr GeminiClient::config() const {
  std::lock_guard<std::mutex> lock(mu_);
  return config_;
}

GeminiClient::Stats GeminiClient::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void GeminiClient::ForgetState() {
  std::lock_guard<std::mutex> lock(mu_);
  config_.reset();
  dirty_lists_.clear();
  pending_clean_.clear();
}

void GeminiClient::RefreshConfig(Session& session) {
  session.BillCoordinatorOp();
  ConfigurationPtr fresh = coordinator_->GetConfiguration();
  if (fresh == nullptr) {
    // Coordinator (or the whole coordinator group) unreachable: keep the
    // cached configuration, if any - Section 3.3's client story degrades to
    // store reads / suspended writes only for clients with no cache at all.
    return;
  }
  std::lock_guard<std::mutex> lock(mu_);
  if (config_ == nullptr || fresh->id() >= config_->id()) {
    config_ = std::move(fresh);
    DropStaleDirtyLists(*config_);
  }
}

ConfigId GeminiClient::Bootstrap(Session& session, InstanceId via_instance) {
  // Section 3.3: a recovering client fetches the configuration from an
  // instance's cache entry; only if the entry was evicted does it fall back
  // to the coordinator.
  if (via_instance < instances_.size()) {
    session.BillCacheOp(via_instance);
    OpContext internal{kInternalConfigId, kInvalidFragment};
    auto payload = instances_[via_instance]->Get(internal, ConfigKey());
    if (payload.ok()) {
      auto parsed = Configuration::Deserialize(payload->data);
      if (parsed.has_value()) {
        std::lock_guard<std::mutex> lock(mu_);
        if (config_ == nullptr || parsed->id() >= config_->id()) {
          config_ = std::make_shared<Configuration>(std::move(*parsed));
          DropStaleDirtyLists(*config_);
        }
        return config_->id();
      }
    }
  }
  RefreshConfig(session);
  auto cfg = config();
  return cfg == nullptr ? 0 : cfg->id();
}

void GeminiClient::MarkKeyClean(FragmentId fragment, uint32_t epoch,
                                std::string_view key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = dirty_lists_.find(fragment);
  if (it != dirty_lists_.end() && it->second.epoch == epoch) {
    it->second.list.Remove(key);
    return;
  }
  auto& pending = pending_clean_[fragment];
  if (pending.epoch != epoch) {
    pending.epoch = epoch;
    pending.keys.clear();
  }
  pending.keys.emplace_back(key);
}

void GeminiClient::DropStaleDirtyLists(const Configuration& config) {
  // Requires mu_ held. Once a fragment leaves recovery mode, its dirty list
  // is obsolete: "clients stop looking up keys in the dirty list of this
  // fragment and discard this dirty list" (Section 3.2.3).
  auto stale = [&config](FragmentId f) {
    return f >= config.num_fragments() ||
           config.fragment(f).mode != FragmentMode::kRecovery;
  };
  for (auto it = dirty_lists_.begin(); it != dirty_lists_.end();) {
    it = stale(it->first) ? dirty_lists_.erase(it) : std::next(it);
  }
  for (auto it = pending_clean_.begin(); it != pending_clean_.end();) {
    it = stale(it->first) ? pending_clean_.erase(it) : std::next(it);
  }
}

ConfigurationPtr GeminiClient::EnsureConfig(Session& session) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (config_ != nullptr &&
        (!options_.follow_config_pushes ||
         coordinator_->latest_id() <= config_->id())) {
      return config_;
    }
  }
  RefreshConfig(session);
  return config();
}

bool GeminiClient::WstActive(FragmentId fragment,
                             const FragmentAssignment& a) const {
  if (!options_.working_set_transfer) return false;
  if (a.secondary == kInvalidInstance) return false;
  if (recovery_state_ != nullptr && recovery_state_->WstTerminated(fragment)) {
    return false;
  }
  return true;
}

// ---- Read -------------------------------------------------------------------

size_t GeminiClient::WarmUp(Session& session,
                            const std::vector<std::string>& keys) {
  ConfigurationPtr cfg = EnsureConfig(session);
  if (cfg == nullptr) return 0;

  // Group probes by the replica the configuration routes each key to; every
  // group becomes one MultiGet burst. Recovery-mode fragments are skipped —
  // their reads must consult the dirty list (Algorithm 1), which the full
  // Read() below does.
  std::unordered_map<InstanceId, std::vector<size_t>> by_target;
  for (size_t i = 0; i < keys.size(); ++i) {
    const FragmentAssignment& a = cfg->fragment(cfg->FragmentOf(keys[i]));
    InstanceId target = kInvalidInstance;
    switch (a.mode) {
      case FragmentMode::kNormal:
        target = a.primary;
        break;
      case FragmentMode::kTransient:
        target = a.secondary;
        break;
      case FragmentMode::kRecovery:
        break;
    }
    if (target == kInvalidInstance || target >= instances_.size()) continue;
    by_target[target].push_back(i);
  }

  size_t already_cached = 0;
  std::vector<bool> cached(keys.size(), false);
  for (auto& [target, idxs] : by_target) {
    std::vector<GetRequest> reqs;
    reqs.reserve(idxs.size());
    for (const size_t i : idxs) {
      session.BillCacheOp(target);
      reqs.push_back({OpContext{cfg->id(), cfg->FragmentOf(keys[i])},
                      keys[i]});
    }
    auto results = instances_[target]->MultiGet(reqs);
    for (size_t j = 0; j < idxs.size(); ++j) {
      if (results[j].ok()) {
        cached[idxs[j]] = true;
        ++already_cached;
      }
    }
  }

  // Any key the probe missed — including probes bounced by a configuration
  // change — takes the full read path, which refreshes the configuration,
  // fills from the store under an I lease, and falls back as usual.
  for (size_t i = 0; i < keys.size(); ++i) {
    if (!cached[i]) (void)Read(session, keys[i]);
  }
  return already_cached;
}

size_t GeminiClient::InvalidateKeys(Session& session,
                                    const std::vector<std::string>& keys) {
  ConfigurationPtr cfg = EnsureConfig(session);
  if (cfg == nullptr) return 0;

  // Group by the replica the configuration routes each key to; every group
  // becomes one pipelined MultiDelete frame. Recovery-mode fragments are
  // skipped — their invalidations must arm the dirty list via the leased
  // Write() path, which a token-less bulk delete cannot do.
  std::unordered_map<InstanceId, std::vector<size_t>> by_target;
  for (size_t i = 0; i < keys.size(); ++i) {
    const FragmentAssignment& a = cfg->fragment(cfg->FragmentOf(keys[i]));
    InstanceId target = kInvalidInstance;
    switch (a.mode) {
      case FragmentMode::kNormal:
        target = a.primary;
        break;
      case FragmentMode::kTransient:
        target = a.secondary;
        break;
      case FragmentMode::kRecovery:
        break;
    }
    if (target == kInvalidInstance || target >= instances_.size()) continue;
    by_target[target].push_back(i);
  }

  size_t dropped = 0;
  for (auto& [target, idxs] : by_target) {
    std::vector<DeleteRequest> reqs;
    reqs.reserve(idxs.size());
    for (const size_t i : idxs) {
      session.BillCacheOp(target);
      reqs.push_back({OpContext{cfg->id(), cfg->FragmentOf(keys[i])},
                      keys[i]});
    }
    auto results = instances_[target]->MultiDelete(reqs);
    for (const Status& s : results) {
      if (s.ok()) ++dropped;
    }
  }
  return dropped;
}

Result<GeminiClient::ReadResult> GeminiClient::Read(Session& session,
                                                    std::string_view key) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.reads;
  }
  for (int attempt = 0; attempt < options_.max_config_retries; ++attempt) {
    ConfigurationPtr cfg = EnsureConfig(session);
    if (cfg == nullptr) return Status(Code::kUnavailable, "no configuration");
    const FragmentId f = cfg->FragmentOf(key);
    const FragmentAssignment& a = cfg->fragment(f);

    Result<ReadResult> r = Status(Code::kInternal);
    switch (a.mode) {
      case FragmentMode::kNormal:
        r = a.primary == kInvalidInstance
                ? Result<ReadResult>(Status(Code::kUnavailable))
                : ReadViaReplica(session, key, f, a.primary, cfg->id());
        break;
      case FragmentMode::kTransient:
        r = a.secondary == kInvalidInstance
                ? Result<ReadResult>(Status(Code::kUnavailable))
                : ReadViaReplica(session, key, f, a.secondary, cfg->id());
        break;
      case FragmentMode::kRecovery:
        r = ReadRecovery(session, key, f, a, cfg->id());
        break;
    }
    if (r.ok() || r.code() == Code::kNotFound) return r;

    switch (r.code()) {
      case Code::kStaleConfig:
      case Code::kWrongInstance:
      case Code::kUnavailable: {
        const ConfigId before = cfg->id();
        RefreshConfig(session);
        ConfigurationPtr fresh = config();
        if (fresh != nullptr && fresh->id() != before) continue;
        // No newer configuration exists (failover window, Section 2.2, or
        // the coordinator itself is unreachable and the serving replica's
        // fragment lease lapsed): process the read using the data store.
        session.BillStoreQuery();
        {
          std::lock_guard<std::mutex> lock(mu_);
          ++stats_.store_reads;
        }
        auto rec = store_->Query(key);
        if (!rec.ok()) return rec.status();
        ReadResult out;
        out.value = ValueFromRecord(*rec);
        return out;
      }
      default:
        return r.status();
    }
  }
  return Status(Code::kUnavailable, "configuration retries exhausted");
}

Result<GeminiClient::ReadResult> GeminiClient::ReadViaReplica(
    Session& session, std::string_view key, FragmentId fragment,
    InstanceId target, ConfigId config_id) {
  CacheBackend& inst = *instances_.at(target);
  const OpContext ctx{config_id, fragment};
  for (int i = 0; i <= options_.max_backoff_retries; ++i) {
    session.BillCacheOp(target);
    auto rg = inst.IqGet(ctx, key);
    if (!rg.ok()) {
      if (rg.code() == Code::kBackoff) {
        // Another session holds an I or Q lease on this key; back off and
        // look the cache up again (Section 2.3).
        session.BillBackoff(options_.backoff);
        continue;
      }
      return rg.status();
    }
    if (rg->value.has_value()) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.cache_hits;
      ReadResult out;
      out.value = *rg->value;
      out.cache_hit = true;
      out.instance = target;
      out.routed = target;
      return out;
    }
    return FillFromStore(session, key, fragment, target, config_id,
                         rg->i_token);
  }
  // Lease collisions persisted past the retry budget: serve the read from
  // the data store without populating the cache.
  session.BillStoreQuery();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.store_reads;
  }
  auto rec = store_->Query(key);
  if (!rec.ok()) return rec.status();
  ReadResult out;
  out.value = ValueFromRecord(*rec);
  return out;
}

Result<GeminiClient::ReadResult> GeminiClient::FillFromStore(
    Session& session, std::string_view key, FragmentId fragment,
    InstanceId target, ConfigId config_id, LeaseToken i_token,
    bool secondary_probed) {
  session.BillStoreQuery();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.store_reads;
  }
  auto rec = store_->Query(key);
  CacheBackend& inst = *instances_.at(target);
  const OpContext ctx{config_id, fragment};
  if (!rec.ok()) {
    // No backing record: release the I lease so other sessions proceed.
    session.BillCacheOp(target);
    (void)inst.IDelete(ctx, key, i_token);
    return rec.status();
  }
  CacheValue value = ValueFromRecord(*rec);
  session.BillCacheOp(target);
  // kLeaseInvalid here means a concurrent write voided our I lease; the
  // insert is ignored but the value we computed is still consistent to
  // return (Lemma 2, Case II).
  (void)inst.IqSet(ctx, key, value, i_token);
  ReadResult out;
  out.value = std::move(value);
  out.instance = target;
  out.routed = target;
  out.secondary_probed = secondary_probed;
  return out;
}

GeminiClient::CachedDirtyList* GeminiClient::EnsureDirtyList(
    Session& session, FragmentId fragment, const FragmentAssignment& a,
    ConfigId config_id) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = dirty_lists_.find(fragment);
    if (it != dirty_lists_.end()) {
      if (it->second.epoch == a.epoch) return &it->second;
      // A newer recovery episode: the cached list is obsolete.
      dirty_lists_.erase(it);
    }
  }
  if (a.secondary == kInvalidInstance) return nullptr;
  session.BillCacheOp(a.secondary);
  const OpContext ctx{config_id, kInvalidFragment};
  auto payload = instances_.at(a.secondary)->Get(ctx, DirtyListKey(fragment));
  if (!payload.ok()) {
    if (payload.code() == Code::kNotFound) {
      // Either a recovery worker already drained and deleted the list (a
      // normal-mode configuration is imminent) or the list was evicted. The
      // two are indistinguishable here; report it and let the coordinator
      // decide — it discards the primary only if the fragment is still in
      // recovery mode.
      session.BillCoordinatorOp();
      coordinator_->OnDirtyListUnavailable(fragment);
    }
    return nullptr;
  }
  auto parsed = DirtyList::Parse(payload->data);
  if (!parsed.has_value()) {
    // Partial list (marker lost to eviction + append re-creation).
    session.BillCoordinatorOp();
    coordinator_->OnDirtyListUnavailable(fragment);
    return nullptr;
  }
  std::lock_guard<std::mutex> lock(mu_);
  auto [it, inserted] = dirty_lists_.try_emplace(fragment);
  if (inserted || it->second.epoch != a.epoch) {
    it->second.list = std::move(*parsed);
    it->second.epoch = a.epoch;
    // Keys this client already handled (this epoch) before the fetch.
    auto pending = pending_clean_.find(fragment);
    if (pending != pending_clean_.end()) {
      if (pending->second.epoch == a.epoch) {
        for (const auto& k : pending->second.keys) {
          it->second.list.Remove(k);
        }
      }
      pending_clean_.erase(pending);
    }
  }
  return &it->second;
}

Result<GeminiClient::ReadResult> GeminiClient::ReadRecovery(
    Session& session, std::string_view key, FragmentId fragment,
    const FragmentAssignment& a, ConfigId config_id) {
  if (a.primary == kInvalidInstance) return Status(Code::kUnavailable);
  CacheBackend& pr = *instances_.at(a.primary);
  const OpContext ctx{config_id, fragment};

  CachedDirtyList* dl = EnsureDirtyList(session, fragment, a, config_id);
  if (dl == nullptr) {
    // No usable dirty list: we cannot tell valid primary entries from dirty
    // ones. Force a configuration refresh (the coordinator has been told);
    // until it lands, serve from the store.
    return Status(Code::kStaleConfig, "dirty list unavailable");
  }

  for (int i = 0; i <= options_.max_backoff_retries; ++i) {
    LeaseToken token = kNoLease;
    if (dl->list.Contains(key)) {
      // Algorithm 1 lines 6-9: the key is dirty — delete it in the primary
      // and take an I lease there.
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.dirty_hits;
      }
      session.BillCacheOp(a.primary);
      auto r = pr.ISet(ctx, key);
      if (!r.ok()) {
        if (r.code() == Code::kBackoff) {
          session.BillBackoff(options_.backoff);
          continue;
        }
        return r.status();
      }
      dl->list.Remove(key);
      token = *r;
    } else {
      // Algorithm 1 lines 1-5: normal lookup in the primary.
      session.BillCacheOp(a.primary);
      auto rg = pr.IqGet(ctx, key);
      if (!rg.ok()) {
        if (rg.code() == Code::kBackoff) {
          session.BillBackoff(options_.backoff);
          continue;
        }
        return rg.status();
      }
      if (rg->value.has_value()) {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.cache_hits;
        ReadResult out;
        out.value = *rg->value;
        out.cache_hit = true;
        out.instance = a.primary;
        out.routed = a.primary;
        return out;
      }
      token = rg->i_token;
    }

    // Cache miss in the primary. Working set transfer (Algorithm 1 lines
    // 10-16): look the key up in the secondary and copy it over.
    if (WstActive(fragment, a)) {
      session.BillCacheOp(a.secondary);
      auto sv = instances_.at(a.secondary)->Get(ctx, key);
      if (sv.ok()) {
        session.BillCacheOp(a.primary);
        (void)pr.IqSet(ctx, key, *sv, token);
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.cache_hits;
        ++stats_.wst_copies;
        ReadResult out;
        out.value = *sv;
        out.cache_hit = true;
        out.from_secondary = true;
        out.instance = a.secondary;
        out.routed = a.primary;
        out.secondary_probed = true;
        return out;
      }
      // A non-NotFound error on the secondary (e.g. it just failed) is
      // treated as a miss; the store path below is always safe.
      return FillFromStore(session, key, fragment, a.primary, config_id,
                           token, /*secondary_probed=*/true);
    }

    // Cache miss in both replicas: compute from the data store.
    return FillFromStore(session, key, fragment, a.primary, config_id, token);
  }

  session.BillStoreQuery();
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.store_reads;
  }
  auto rec = store_->Query(key);
  if (!rec.ok()) return rec.status();
  ReadResult out;
  out.value = ValueFromRecord(*rec);
  return out;
}

// ---- Write ------------------------------------------------------------------

Status GeminiClient::CommitWrite(Session& session, CacheBackend& inst,
                                 InstanceId instance, const OpContext& ctx,
                                 std::string_view key, LeaseToken q_token,
                                 std::optional<std::string>& data,
                                 bool allow_write_back) {
  if (options_.write_policy == WritePolicy::kWriteBack && allow_write_back) {
    // Write-back: reserve the version (cheap metadata round trip), install
    // the buffered value under the Q lease, acknowledge. The flusher
    // applies the payload to the store later.
    session.BillStoreRoundTrip();  // version reservation, not a full update
    const Version version = store_->ReserveVersion(key);
    CacheValue value = data.has_value()
                           ? CacheValue::OfData(std::move(*data), version)
                           : CacheValue::OfSize(0, version);
    data.reset();
    session.BillCacheOp(instance);
    Status s = inst.WriteBackInstall(ctx, key, std::move(value), q_token);
    if (s.ok() || s.code() == Code::kLeaseInvalid) {
      // kLeaseInvalid: Q expired mid-session; the entry is deleted by the
      // expiry rule and the reservation commits vacuously later.
      return Status::Ok();
    }
    // Could not buffer (e.g. value larger than the cache): fall through to
    // a synchronous write so the reservation is committed immediately.
    store_->CommitReserved(key, version, std::nullopt);
    session.BillStoreUpdate();
    session.BillCacheOp(instance);
    return inst.Dar(ctx, key, q_token);
  }
  session.BillStoreUpdate();
  if (options_.write_policy == WritePolicy::kWriteThrough ||
      (options_.write_policy == WritePolicy::kWriteBack &&
       !allow_write_back)) {
    // Write-through: install the post-update record under the same Q lease
    // (replace-and-release) instead of deleting the entry.
    StoreRecord rec = store_->UpdateAndGet(key, std::move(data));
    data.reset();
    session.BillCacheOp(instance);
    Status s = inst.Rar(ctx, key, ValueFromRecord(rec), q_token);
    // kLeaseInvalid: the Q lease expired mid-session; the expiry rule
    // deletes the entry, which is consistent (the write reached the store).
    return s.code() == Code::kLeaseInvalid ? Status::Ok() : s;
  }
  store_->Update(key, std::move(data));
  data.reset();
  session.BillCacheOp(instance);
  return inst.Dar(ctx, key, q_token);
}

Status GeminiClient::Write(Session& session, std::string_view key,
                           std::optional<std::string> data) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.writes;
  }
  for (int attempt = 0; attempt < options_.max_config_retries; ++attempt) {
    ConfigurationPtr cfg = EnsureConfig(session);
    if (cfg == nullptr) return Status(Code::kUnavailable, "no configuration");
    const FragmentId f = cfg->FragmentOf(key);
    const FragmentAssignment& a = cfg->fragment(f);
    const ConfigId id = cfg->id();

    Status s(Code::kInternal);
    switch (a.mode) {
      case FragmentMode::kNormal: {
        if (a.primary == kInvalidInstance) {
          s = Status(Code::kUnavailable);
          break;
        }
        // Write-around in normal mode: Q lease, store update, delete-and-
        // release (Section 2.3).
        CacheBackend& inst = *instances_.at(a.primary);
        const OpContext ctx{id, f};
        session.BillCacheOp(a.primary);
        auto q = inst.Qareg(ctx, key);
        if (!q.ok()) {
          s = q.status();
          break;
        }
        s = CommitWrite(session, inst, a.primary, ctx, key, *q, data,
                        /*allow_write_back=*/true);
        break;
      }
      case FragmentMode::kTransient: {
        if (a.secondary == kInvalidInstance) {
          s = Status(Code::kUnavailable);
          break;
        }
        // Section 3.1: invalidate in the secondary and record the key on the
        // fragment's dirty list. The append precedes the store update so a
        // confirmed write is always covered by the list.
        CacheBackend& inst = *instances_.at(a.secondary);
        const OpContext ctx{id, f};
        session.BillCacheOp(a.secondary);
        auto q = inst.Qareg(ctx, key);
        if (!q.ok()) {
          s = q.status();
          break;
        }
        if (options_.maintain_dirty_lists) {
          session.BillCacheOp(a.secondary);
          const OpContext list_ctx{id, kInvalidFragment};
          Status append = inst.Append(list_ctx, DirtyListKey(f),
                                      DirtyList::EncodeRecord(key));
          if (!append.ok()) {
            s = append;
            break;
          }
        }
        s = CommitWrite(session, inst, a.secondary, ctx, key, *q, data,
                        /*allow_write_back=*/false);
        break;
      }
      case FragmentMode::kRecovery: {
        if (a.primary == kInvalidInstance) {
          s = Status(Code::kUnavailable);
          break;
        }
        // Algorithm 2.
        CacheBackend& pr = *instances_.at(a.primary);
        const OpContext ctx{id, f};
        session.BillCacheOp(a.primary);
        auto q = pr.Qareg(ctx, key);
        if (!q.ok()) {
          s = q.status();
          break;
        }
        const bool touch_secondary =
            a.secondary != kInvalidInstance &&
            (options_.delete_secondary_on_recovery_write ||
             WstActive(f, a));
        if (touch_secondary) {
          session.BillCacheOp(a.secondary);
          // Ignore failures: if the secondary just died the coordinator is
          // about to terminate the transfer anyway (Section 3.3).
          (void)instances_.at(a.secondary)->Delete(ctx, key);
        }
        s = CommitWrite(session, pr, a.primary, ctx, key, *q, data,
                        /*allow_write_back=*/false);
        if (s.ok()) MarkKeyClean(f, a.epoch, key);
        break;
      }
    }
    if (s.ok()) return s;

    switch (s.code()) {
      case Code::kStaleConfig:
      case Code::kWrongInstance:
      case Code::kUnavailable: {
        const ConfigId before = id;
        RefreshConfig(session);
        ConfigurationPtr fresh = config();
        if (fresh != nullptr && fresh->id() != before) continue;
        // No newer configuration (failover window, Section 2.2, or the
        // coordinator is unreachable with lapsed fragment leases): suspend
        // the write until one appears.
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.suspended_writes;
        return Status(Code::kSuspended);
      }
      default:
        return s;
    }
  }
  return Status(Code::kUnavailable, "configuration retries exhausted");
}

}  // namespace gemini
