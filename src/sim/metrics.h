// Per-run metric collection for the experiment harness.
//
// Everything the paper's figures plot is derived from these series:
// throughput and latency percentiles per second (Figure 7), per-instance and
// overall cache hit ratios per second (Figures 6, 7a, 10), stale reads per
// second (Figure 1), and working-set-transfer probe outcomes (the Section
// 3.2.2 termination conditions).
#pragma once

#include <cstdint>
#include <vector>

#include "src/common/clock.h"
#include "src/common/time_series.h"
#include "src/consistency/stale_read_checker.h"

namespace gemini {

struct SimMetrics {
  SimMetrics(size_t num_instances, const DataStore* store);

  // Completions per second.
  CounterSeries ops;
  CounterSeries reads;
  CounterSeries writes;
  CounterSeries errors;
  CounterSeries suspended_writes;

  LatencySeries read_latency;
  LatencySeries write_latency;

  /// Client-perceived cache hit ratio per routed instance: numerator = any
  /// cache hit for a key routed to it (including working-set-transfer hits
  /// served from the secondary), denominator = lookups routed to it. This
  /// is what Figures 6/7a/10 plot.
  std::vector<RatioSeries> instance_hit;
  /// Hit ratio from the instance's *own* content only (working-set-transfer
  /// hits excluded): the "cache hit ratio of the primary replica" that the
  /// Section 3.2.2 h-threshold monitors.
  std::vector<RatioSeries> instance_self_hit;
  RatioSeries overall_hit;

  /// Working-set-transfer probes per *recovering* instance: numerator =
  /// probes that missed in the secondary, denominator = probes issued.
  std::vector<RatioSeries> wst_probe_miss;

  StaleReadChecker stale;

  /// Convenience: hit ratio of an instance across [from, to) seconds.
  [[nodiscard]] double InstanceHitBetween(size_t instance, size_t from_sec,
                                          size_t to_sec) const;

  /// First second >= from_sec where the instance's per-second hit ratio
  /// reaches `target` (with a non-empty denominator); -1 if never.
  [[nodiscard]] double SecondsUntilHitRatio(size_t instance, size_t from_sec,
                                            double target) const;
};

}  // namespace gemini
