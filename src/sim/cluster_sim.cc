#include "src/sim/cluster_sim.h"

#include <algorithm>
#include <cassert>

#include "src/common/logging.h"

namespace gemini {

ClusterSim::ClusterSim(SimOptions options, std::shared_ptr<Workload> workload)
    : options_(options),
      workload_(std::move(workload)),
      clock_(0),
      events_(&clock_),
      cost_model_(options.net, options.num_instances),
      recovery_state_(options.num_fragments),
      rng_(options.seed) {
  assert(workload_ != nullptr);
  workload_->LoadStore(store_);

  CacheInstance::Options iopts;
  iopts.capacity_bytes = options_.instance_capacity_bytes;
  instances_.reserve(options_.num_instances);
  std::vector<CacheInstance*> raw;
  for (size_t i = 0; i < options_.num_instances; ++i) {
    instances_.push_back(std::make_unique<CacheInstance>(
        static_cast<InstanceId>(i), &clock_, iopts));
    raw.push_back(instances_.back().get());
  }

  Coordinator::Options copts;
  copts.policy = options_.policy;
  copts.fragment_lease_lifetime = options_.fragment_lease_lifetime;
  coordinator_ = std::make_unique<CoordinatorGroup>(
      &clock_, raw, options_.num_fragments, options_.coordinator_shadows,
      copts);

  GeminiClient::Options cl_opts;
  cl_opts.working_set_transfer = options_.policy.working_set_transfer;
  cl_opts.maintain_dirty_lists = options_.policy.maintain_dirty_lists;
  for (size_t c = 0; c < options_.num_client_objects; ++c) {
    clients_.push_back(std::make_unique<GeminiClient>(
        &clock_, coordinator_.get(), raw, &store_, cl_opts));
    clients_.back()->BindRecoveryState(&recovery_state_);
  }

  if (options_.policy.consistent_recovery) {
    RecoveryWorker::Options w_opts;
    w_opts.overwrite_dirty = options_.policy.overwrite_dirty;
    w_opts.keys_per_step = options_.worker_keys_per_step;
    for (size_t w = 0; w < options_.num_recovery_workers; ++w) {
      workers_.push_back(std::make_unique<RecoveryWorker>(
          &clock_, coordinator_.get(), raw, w_opts));
    }
  }

  metrics_ = std::make_unique<SimMetrics>(options_.num_instances, &store_);
  wst_h_target_.assign(options_.num_instances, -1.0);
  if (options_.audit_invariants) {
    auditor_ = std::make_unique<InvariantAuditor>(
        raw, options_.policy.maintain_dirty_lists);
  }
  monitor_config_ = coordinator_->GetConfiguration();
}

ClusterSim::~ClusterSim() = default;

void ClusterSim::StartLoad() {
  if (load_started_) return;
  load_started_ = true;
  if (options_.closed_loop_threads > 0) {
    // Stagger thread starts across the first millisecond so the queueing
    // model does not see one synchronized burst.
    const Duration stagger =
        std::max<Duration>(1, Millis(1) / options_.closed_loop_threads);
    for (size_t t = 0; t < options_.closed_loop_threads; ++t) {
      events_.At(clock_.Now() + static_cast<Duration>(t) * stagger,
                 [this, t](Timestamp now) { ClientOp(t, now); });
    }
  } else {
    events_.At(clock_.Now() + workload_->NextInterarrival(rng_),
               [this](Timestamp now) { OpenLoopArrival(now); });
  }
  events_.At(clock_.Now() + options_.monitor_interval,
             [this](Timestamp now) { MonitorTick(now); });
  for (size_t w = 0; w < workers_.size(); ++w) {
    events_.At(clock_.Now() + static_cast<Duration>(w + 1) * Millis(1),
               [this, w](Timestamp now) { WorkerStep(w, now); });
  }
}

void ClusterSim::Run(Timestamp until) {
  StartLoad();
  events_.RunUntil(until);
}

void ClusterSim::ClientOp(size_t thread, Timestamp now) {
  Operation op = workload_->Next(rng_);
  ExecuteOp(thread % clients_.size(), op, now, now);
  // ExecuteOp schedules the thread's next operation (or a retry) itself via
  // the chaining below.
  (void)thread;
}

void ClusterSim::OpenLoopArrival(Timestamp now) {
  events_.At(now + workload_->NextInterarrival(rng_),
             [this](Timestamp t) { OpenLoopArrival(t); });
  Operation op = workload_->Next(rng_);
  ExecuteOp(arrival_count_++ % clients_.size(), op, now, now);
}

void ClusterSim::ExecuteOp(size_t client_idx, const Operation& op,
                           Timestamp start, Timestamp first_attempt) {
  // Identify the issuing closed-loop thread (if any) by reverse-mapping is
  // unnecessary: chaining is handled by the caller for closed-loop threads.
  Session session(&cost_model_, start);
  GeminiClient& client = *clients_[client_idx];

  Timestamp end;
  bool reschedule_thread = options_.closed_loop_threads > 0;
  size_t thread = client_idx;  // representative; see ClientOp chaining note

  if (op.is_read) {
    auto r = client.Read(session, op.key);
    end = session.cursor();
    RecordRead(op, first_attempt, end, r);
  } else {
    Status s = client.Write(session, op.key);
    end = session.cursor();
    if (s.code() == Code::kSuspended) {
      metrics_->suspended_writes.Add(end);
      Operation retry = op;
      events_.At(end + options_.suspended_write_retry,
                 [this, client_idx, retry, first_attempt](Timestamp t) {
                   ExecuteOp(client_idx, retry, t, first_attempt);
                 });
      return;
    }
    metrics_->ops.Add(end);
    metrics_->writes.Add(end);
    if (!s.ok()) metrics_->errors.Add(end);
    metrics_->write_latency.Record(end, end - first_attempt);
  }

  if (reschedule_thread) {
    // Client-side per-op overhead, jittered so closed-loop threads do not
    // march in lockstep (which would create synthetic arrival bursts).
    const Duration overhead = options_.net.client_op_overhead;
    const Duration jitter =
        overhead > 0 ? static_cast<Duration>(
                           rng_.NextBounded(static_cast<uint64_t>(
                               overhead / 4 + 1)))
                     : 0;
    events_.At(end + overhead + jitter,
               [this, thread](Timestamp t) { ClientOp(thread, t); });
  }
}

void ClusterSim::RecordRead(const Operation& op, Timestamp start,
                            Timestamp end,
                            const Result<GeminiClient::ReadResult>& r) {
  metrics_->ops.Add(end);
  metrics_->reads.Add(end);
  if (!r.ok()) {
    if (r.code() != Code::kNotFound) metrics_->errors.Add(end);
    return;
  }
  metrics_->read_latency.Record(end, end - start);
  const auto& rr = *r;
  if (rr.routed != kInvalidInstance &&
      rr.routed < metrics_->instance_hit.size()) {
    // Client-perceived hit ratio of the routed instance. A working-set-
    // transfer hit (value copied from the secondary) counts: the client saw
    // a cache hit for a key routed to the recovering instance - exactly the
    // quantity Figures 7a/10 plot.
    metrics_->instance_hit[rr.routed].AddDenominator(end);
    if (rr.cache_hit) {
      metrics_->instance_hit[rr.routed].AddNumerator(end);
    }
    metrics_->instance_self_hit[rr.routed].AddDenominator(end);
    if (rr.cache_hit && rr.instance == rr.routed) {
      metrics_->instance_self_hit[rr.routed].AddNumerator(end);
    }
  }
  metrics_->overall_hit.AddDenominator(end);
  if (rr.cache_hit) metrics_->overall_hit.AddNumerator(end);
  metrics_->stale.OnRead(end, op.key, rr.value.version);

  if (rr.secondary_probed && rr.routed != kInvalidInstance &&
      rr.routed < metrics_->wst_probe_miss.size()) {
    metrics_->wst_probe_miss[rr.routed].AddDenominator(end);
    if (!rr.from_secondary) {
      metrics_->wst_probe_miss[rr.routed].AddNumerator(end);
    }
  }
}

void ClusterSim::WorkerStep(size_t worker, Timestamp now) {
  Session session(&cost_model_, now);
  RecoveryWorker& w = *workers_[worker];
  bool idle = false;
  if (!w.has_work()) {
    idle = !w.TryAdoptFragment(session).has_value();
  }
  if (!idle) {
    (void)w.Step(session);
  }
  const Timestamp next = idle ? now + options_.worker_idle_poll
                              : std::max(session.cursor(), now + 1);
  events_.At(next, [this, worker](Timestamp t) { WorkerStep(worker, t); });
}

ClusterSim::RecoveryRecord* ClusterSim::ActiveRecord(InstanceId instance) {
  for (auto it = recoveries_.rbegin(); it != recoveries_.rend(); ++it) {
    if (it->instance == instance) return &*it;
  }
  return nullptr;
}

void ClusterSim::ScheduleFailure(InstanceId instance, Timestamp at,
                                 Duration down_for) {
  events_.At(at, [this, instance](Timestamp now) { FailNow(instance, now); });
  events_.At(at + down_for,
             [this, instance](Timestamp now) { RecoverNow(instance, now); });
}

void ClusterSim::ScheduleGroupFailure(std::vector<InstanceId> instances,
                                      Timestamp at, Duration down_for) {
  events_.At(at, [this, instances](Timestamp now) {
    FailGroupNow(instances, now);
  });
  for (InstanceId i : instances) {
    events_.At(at + down_for,
               [this, i](Timestamp now) { RecoverNow(i, now); });
  }
}

void ClusterSim::SchedulePhaseChange(Timestamp at, int phase) {
  events_.At(at, [this, phase](Timestamp) { workload_->SetPhase(phase); });
}

void ClusterSim::ScheduleCoordinatorFailure(Timestamp at,
                                            Duration failover_delay) {
  events_.At(at, [this](Timestamp) { coordinator_->FailMaster(); });
  events_.At(at + failover_delay, [this](Timestamp) {
    coordinator_->PromoteShadow();
    monitor_config_ = coordinator_->GetConfiguration();
  });
}

void ClusterSim::RecordFailure(InstanceId instance, Timestamp now) {
  RecoveryRecord rec;
  rec.instance = instance;
  rec.failed_at = now;
  const auto sec = static_cast<size_t>(now / kSecond);
  const size_t from = sec > 10 ? sec - 10 : 0;
  rec.prefailure_hit_ratio = metrics_->InstanceHitBetween(instance, from, sec);
  recoveries_.push_back(rec);
}

void ClusterSim::FailGroupNow(const std::vector<InstanceId>& group,
                              Timestamp now) {
  for (InstanceId i : group) RecordFailure(i, now);
  if (options_.crash_failures) {
    for (InstanceId i : group) instances_[i]->Fail();
    events_.At(now + options_.failure_detection_delay,
               [this, group](Timestamp) {
                 coordinator_->OnInstancesFailed(group);
                 monitor_config_ = coordinator_->GetConfiguration();
               });
  } else {
    coordinator_->OnInstancesFailed(group);
    monitor_config_ = coordinator_->GetConfiguration();
  }
}

void ClusterSim::FailNow(InstanceId instance, Timestamp now) {
  RecordFailure(instance, now);

  if (options_.crash_failures) {
    instances_[instance]->Fail();
    events_.At(now + options_.failure_detection_delay,
               [this, instance](Timestamp) {
                 coordinator_->OnInstanceFailed(instance);
                 monitor_config_ = coordinator_->GetConfiguration();
               });
  } else {
    // Emulated failure (Section 5.2): the coordinator removes the instance
    // from the configuration; the process keeps running, content intact.
    coordinator_->OnInstanceFailed(instance);
    monitor_config_ = coordinator_->GetConfiguration();
  }
}

void ClusterSim::RecoverNow(InstanceId instance, Timestamp now) {
  if (options_.crash_failures) {
    if (options_.policy.persistent) {
      instances_[instance]->RecoverPersistent();
    } else {
      instances_[instance]->RecoverVolatile();
    }
  } else if (!options_.policy.persistent) {
    // Emulated failure of a volatile cache: the baseline discards content.
    instances_[instance]->RecoverVolatile();
  }

  for (FragmentId f : coordinator_->FragmentsWithPrimary(instance)) {
    recovery_state_.ResetWst(f);
  }
  coordinator_->OnInstanceRecovered(instance);
  monitor_config_ = coordinator_->GetConfiguration();

  RecoveryRecord* rec = ActiveRecord(instance);
  if (rec != nullptr) {
    rec->recovered_at = now;
    wst_h_target_[instance] =
        options_.wst.h > 0.0
            ? options_.wst.h
            : std::max(0.0, rec->prefailure_hit_ratio - options_.wst_epsilon);
  }
  events_.At(now + options_.recovery_check_interval,
             [this, instance](Timestamp t) { RecoveryCheck(instance, t); });
}

void ClusterSim::RecoveryCheck(InstanceId instance, Timestamp now) {
  RecoveryRecord* rec = ActiveRecord(instance);
  if (rec == nullptr || rec->fragments_normal_at >= 0) return;
  bool all_normal = true;
  for (FragmentId f : coordinator_->FragmentsWithPrimary(instance)) {
    if (coordinator_->ModeOf(f) != FragmentMode::kNormal) {
      all_normal = false;
      break;
    }
  }
  if (all_normal) {
    rec->fragments_normal_at = now;
    return;
  }
  events_.At(now + options_.recovery_check_interval,
             [this, instance](Timestamp t) { RecoveryCheck(instance, t); });
}

void ClusterSim::MonitorTick(Timestamp now) {
  coordinator_->RenewLeases();
  monitor_config_ = coordinator_->GetConfiguration();
  if (auditor_ != nullptr && monitor_config_ != nullptr) {
    auto violations = auditor_->Audit(*monitor_config_);
    for (auto& v : violations) {
      invariant_violations_.push_back(std::move(v));
    }
  }
  if (options_.policy.working_set_transfer) {
    const auto sec = static_cast<size_t>(now / kSecond);
    for (auto& rec : recoveries_) {
      if (rec.recovered_at < 0 || rec.fragments_normal_at >= 0) continue;
      const InstanceId i = rec.instance;
      if (sec == 0) continue;
      // Section 3.2.2's h-condition watches the primary's own content
      // (transfer-served hits excluded), so the transfer does not satisfy
      // its own termination condition.
      const auto& hit_series = metrics_->instance_self_hit[i];
      const auto& hit_den = hit_series.denominator().buckets();
      const size_t last = sec - 1;
      const bool have_lookups = last < hit_den.size() && hit_den[last] > 0;
      const double hit = hit_series.RatioBetween(last, sec);

      const auto& probe = metrics_->wst_probe_miss[i];
      const auto& probe_den = probe.denominator().buckets();
      const bool have_probes = last < probe_den.size() && probe_den[last] > 0;
      const double probe_miss = probe.RatioBetween(last, sec);

      const bool h_reached = have_lookups && hit >= wst_h_target_[i];
      const bool m_exceeded = have_probes && probe_miss > options_.wst.m;
      if (!h_reached && !m_exceeded) continue;

      for (FragmentId f : coordinator_->FragmentsWithPrimary(i)) {
        if (coordinator_->ModeOf(f) != FragmentMode::kRecovery) continue;
        if (recovery_state_.WstTerminated(f)) continue;
        recovery_state_.TerminateWst(f);
        coordinator_->OnWorkingSetTransferTerminated(f);
      }
    }
  }
  events_.At(now + options_.monitor_interval,
             [this](Timestamp t) { MonitorTick(t); });
}

double ClusterSim::SecondsToRestoreHitRatio(InstanceId instance) const {
  const RecoveryRecord* rec = nullptr;
  for (auto it = recoveries_.rbegin(); it != recoveries_.rend(); ++it) {
    if (it->instance == instance) {
      rec = &*it;
      break;
    }
  }
  if (rec == nullptr || rec->recovered_at < 0) return -1.0;
  const double target =
      std::max(0.0, rec->prefailure_hit_ratio - options_.wst_epsilon);
  const auto from = static_cast<size_t>(rec->recovered_at / kSecond);
  return metrics_->SecondsUntilHitRatio(instance, from, target);
}

double ClusterSim::RecoveryDurationSeconds(InstanceId instance) const {
  const RecoveryRecord* rec = nullptr;
  for (auto it = recoveries_.rbegin(); it != recoveries_.rend(); ++it) {
    if (it->instance == instance) {
      rec = &*it;
      break;
    }
  }
  if (rec == nullptr || rec->recovered_at < 0 ||
      rec->fragments_normal_at < 0) {
    return -1.0;
  }
  return ToSeconds(rec->fragments_normal_at - rec->recovered_at);
}

}  // namespace gemini
