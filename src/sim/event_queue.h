// Discrete-event engine.
//
// The experiment harness replays multi-hundred-second experiments on a
// virtual clock: each scheduled event runs at its virtual timestamp, may
// schedule further events, and the engine advances the bound VirtualClock so
// every protocol component (lease expirations, fragment leases, metrics)
// observes consistent time. Ties break by insertion order, which makes runs
// bit-deterministic.
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "src/common/clock.h"

namespace gemini {

class EventQueue {
 public:
  using Fn = std::function<void(Timestamp)>;

  explicit EventQueue(VirtualClock* clock) : clock_(clock) {}

  /// Schedules `fn` at absolute virtual time `t` (clamped to now).
  void At(Timestamp t, Fn fn);

  /// Schedules `fn` `d` after the current virtual time.
  void After(Duration d, Fn fn) { At(clock_->Now() + d, std::move(fn)); }

  /// Runs events until the queue empties or virtual time would pass `until`.
  /// The clock ends at min(until, last event time); events at exactly
  /// `until` still run.
  void RunUntil(Timestamp until);

  [[nodiscard]] bool empty() const { return heap_.empty(); }
  [[nodiscard]] size_t size() const { return heap_.size(); }
  [[nodiscard]] uint64_t executed() const { return executed_; }

 private:
  struct Ev {
    Timestamp t;
    uint64_t seq;
    Fn fn;
  };
  struct Later {
    bool operator()(const Ev& a, const Ev& b) const {
      return a.t != b.t ? a.t > b.t : a.seq > b.seq;
    }
  };

  VirtualClock* clock_;
  std::priority_queue<Ev, std::vector<Ev>, Later> heap_;
  uint64_t next_seq_ = 0;
  uint64_t executed_ = 0;
};

}  // namespace gemini
