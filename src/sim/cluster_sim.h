// ClusterSim: the discrete-event experiment harness.
//
// Assembles a full Gemini deployment — M cache instances, a coordinator, N
// client library objects driven by closed-loop "YCSB threads" or an
// open-loop trace, stateless recovery workers, and the backing data store —
// on a virtual clock, and replays failure/recovery scenarios while
// collecting the metric series the paper's figures plot.
//
// Fidelity notes (see DESIGN.md for the full substitution table):
//  - Failures default to the paper's emulation (Section 5.2): the
//    coordinator removes the instance from the configuration; the instance
//    process keeps running with content intact. `crash_failures` instead
//    fails the process (leases lost; content persistent or wiped per
//    policy).
//  - Load: `closed_loop_threads` > 0 reproduces YCSB's closed loop (each
//    thread issues its next request when the previous completes — the
//    paper's low load is 40 threads, high load 200). With 0 threads, the
//    workload's inter-arrival model drives an open loop (the Facebook
//    trace).
//  - Working-set-transfer termination (Section 3.2.2): a monitor samples
//    each recovering instance's hit ratio once per virtual second and
//    terminates the transfer when it reaches h (default: the instance's own
//    pre-failure hit ratio minus epsilon) or when the secondary's probe miss
//    ratio exceeds m.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/client/gemini_client.h"
#include "src/client/recovery_state.h"
#include "src/coordinator/coordinator_group.h"
#include "src/net/cost_model.h"
#include "src/recovery/recovery_worker.h"
#include "src/sim/event_queue.h"
#include "src/consistency/invariant_auditor.h"
#include "src/sim/metrics.h"
#include "src/store/data_store.h"
#include "src/workload/workload.h"

namespace gemini {

struct SimOptions {
  size_t num_instances = 5;
  size_t num_fragments = 5000;
  size_t num_client_objects = 5;
  /// Total closed-loop threads across all clients; 0 = open loop driven by
  /// the workload's inter-arrival model.
  size_t closed_loop_threads = 40;
  size_t num_recovery_workers = 4;
  size_t worker_keys_per_step = 256;
  RecoveryPolicy policy = RecoveryPolicy::GeminiOW();
  NetParams net;
  /// Per-instance cache budget in bytes; 0 = unbounded (the paper's YCSB
  /// setup gives instances enough memory for all their entries).
  uint64_t instance_capacity_bytes = 0;
  /// Crash (true) vs emulated (false) failures.
  bool crash_failures = false;
  /// Crash-failure detection delay before the coordinator reacts.
  Duration failure_detection_delay = Millis(200);
  Duration suspended_write_retry = Millis(10);
  /// WST thresholds; h <= 0 auto-calibrates to the instance's measured
  /// pre-failure hit ratio minus `wst_epsilon`.
  WstThresholds wst{0.0, 1.0};
  double wst_epsilon = 0.02;
  Duration monitor_interval = Seconds(1);
  Duration worker_idle_poll = Millis(50);
  /// Poll interval for detecting that all fragments of a recovering instance
  /// returned to normal mode (the paper's "recovery time" endpoint).
  Duration recovery_check_interval = Millis(100);
  /// Shadow coordinators standing by for failover (Section 2.1).
  size_t coordinator_shadows = 1;
  /// Fragment lease lifetime granted by the coordinator (paper: seconds to
  /// minutes). The monitor tick renews them; leases lapse while the
  /// coordinator group is down.
  Duration fragment_lease_lifetime = Seconds(30);
  /// Audit structural invariants (InvariantAuditor) every monitor tick.
  /// Off by default: O(F x M) per tick. Tests turn it on.
  bool audit_invariants = false;
  uint64_t seed = 42;
};

class ClusterSim {
 public:
  ClusterSim(SimOptions options, std::shared_ptr<Workload> workload);
  ~ClusterSim();

  ClusterSim(const ClusterSim&) = delete;
  ClusterSim& operator=(const ClusterSim&) = delete;

  /// Fails `instance` at virtual time `at` for `down_for`; recovery events
  /// are scheduled automatically.
  void ScheduleFailure(InstanceId instance, Timestamp at, Duration down_for);

  /// Fails a group of instances simultaneously in one configuration
  /// transition (the paper fails 20 of 100 instances at once); recoveries
  /// are scheduled per instance.
  void ScheduleGroupFailure(std::vector<InstanceId> instances, Timestamp at,
                            Duration down_for);

  /// Switches the workload's access-pattern phase at `at` (Section 5.4.4
  /// ties the switch to the failure).
  void SchedulePhaseChange(Timestamp at, int phase);

  /// Kills the coordinator master at `at`; a shadow is promoted after
  /// `failover_delay` (the ZooKeeper-election stand-in).
  void ScheduleCoordinatorFailure(Timestamp at, Duration failover_delay);

  /// Runs the simulation until virtual time `until` (absolute; call
  /// repeatedly to run in stages).
  void Run(Timestamp until);

  // ---- Accessors -------------------------------------------------------------

  [[nodiscard]] const SimMetrics& metrics() const { return *metrics_; }
  VirtualClock& clock() { return clock_; }
  CoordinatorGroup& coordinator() { return *coordinator_; }
  CacheInstance& instance(InstanceId i) { return *instances_[i]; }
  DataStore& store() { return store_; }
  Workload& workload() { return *workload_; }
  const SimOptions& options() const { return options_; }
  GeminiClient& client(size_t i) { return *clients_[i]; }
  size_t num_clients() const { return clients_.size(); }
  const RecoveryWorker& worker(size_t i) const { return *workers_[i]; }
  size_t num_workers() const { return workers_.size(); }

  struct RecoveryRecord {
    InstanceId instance = kInvalidInstance;
    Timestamp failed_at = -1;
    Timestamp recovered_at = -1;
    /// When every fragment whose primary is this instance returned to
    /// normal mode — the paper's "recovery time" endpoint (Figure 8.b-c).
    Timestamp fragments_normal_at = -1;
    /// Hit ratio of the instance over the 10 seconds before the failure.
    double prefailure_hit_ratio = 0.0;
  };
  [[nodiscard]] const std::vector<RecoveryRecord>& recoveries() const {
    return recoveries_;
  }

  /// Virtual seconds from an instance's recovery until its per-second hit
  /// ratio first reaches its pre-failure level minus epsilon; -1 if never.
  [[nodiscard]] double SecondsToRestoreHitRatio(InstanceId instance) const;

  /// Virtual seconds from recovery until all of the instance's fragments
  /// were back in normal mode; -1 if that never happened.
  [[nodiscard]] double RecoveryDurationSeconds(InstanceId instance) const;

  /// Structural-invariant violations observed so far (audit_invariants).
  [[nodiscard]] const std::vector<InvariantViolation>& invariant_violations()
      const {
    return invariant_violations_;
  }

 private:
  void StartLoad();
  void ClientOp(size_t thread, Timestamp now);
  void OpenLoopArrival(Timestamp now);
  void ExecuteOp(size_t client_idx, const Operation& op, Timestamp start,
                 Timestamp first_attempt);
  void RecordRead(const Operation& op, Timestamp start, Timestamp end,
                  const Result<GeminiClient::ReadResult>& r);
  void WorkerStep(size_t worker, Timestamp now);
  void MonitorTick(Timestamp now);
  void RecoveryCheck(InstanceId instance, Timestamp now);
  void FailNow(InstanceId instance, Timestamp now);
  void FailGroupNow(const std::vector<InstanceId>& group, Timestamp now);
  void RecordFailure(InstanceId instance, Timestamp now);
  void RecoverNow(InstanceId instance, Timestamp now);
  RecoveryRecord* ActiveRecord(InstanceId instance);

  SimOptions options_;
  std::shared_ptr<Workload> workload_;
  VirtualClock clock_;
  EventQueue events_;
  DataStore store_;
  std::vector<std::unique_ptr<CacheInstance>> instances_;
  std::unique_ptr<CoordinatorGroup> coordinator_;
  CostModel cost_model_;
  RecoveryState recovery_state_;
  std::vector<std::unique_ptr<GeminiClient>> clients_;
  std::vector<std::unique_ptr<RecoveryWorker>> workers_;
  std::unique_ptr<SimMetrics> metrics_;
  Rng rng_;
  ConfigurationPtr monitor_config_;
  std::vector<RecoveryRecord> recoveries_;
  std::vector<double> wst_h_target_;  // per instance; <0 = not recovering
  std::unique_ptr<InvariantAuditor> auditor_;
  std::vector<InvariantViolation> invariant_violations_;
  size_t arrival_count_ = 0;
  bool load_started_ = false;
};

}  // namespace gemini
