#include "src/sim/metrics.h"

namespace gemini {

SimMetrics::SimMetrics(size_t num_instances, const DataStore* store)
    : instance_hit(num_instances),
      instance_self_hit(num_instances),
      wst_probe_miss(num_instances),
      stale(store) {}

double SimMetrics::InstanceHitBetween(size_t instance, size_t from_sec,
                                      size_t to_sec) const {
  if (instance >= instance_hit.size()) return 0.0;
  return instance_hit[instance].RatioBetween(from_sec, to_sec);
}

double SimMetrics::SecondsUntilHitRatio(size_t instance, size_t from_sec,
                                        double target) const {
  if (instance >= instance_hit.size()) return -1.0;
  const auto& series = instance_hit[instance];
  const auto& num = series.numerator().buckets();
  const auto& den = series.denominator().buckets();
  for (size_t s = from_sec; s < den.size(); ++s) {
    if (den[s] == 0) continue;
    const double hit =
        static_cast<double>(s < num.size() ? num[s] : 0) /
        static_cast<double>(den[s]);
    if (hit >= target) return static_cast<double>(s - from_sec);
  }
  return -1.0;
}

}  // namespace gemini
