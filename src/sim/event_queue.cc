#include "src/sim/event_queue.h"

#include <algorithm>
#include <utility>

namespace gemini {

void EventQueue::At(Timestamp t, Fn fn) {
  t = std::max(t, clock_->Now());
  heap_.push(Ev{t, next_seq_++, std::move(fn)});
}

void EventQueue::RunUntil(Timestamp until) {
  while (!heap_.empty() && heap_.top().t <= until) {
    // priority_queue::top is const; move via const_cast is the standard
    // idiom for pop-with-move on a binary heap.
    Ev ev = std::move(const_cast<Ev&>(heap_.top()));
    heap_.pop();
    clock_->AdvanceTo(ev.t);
    ++executed_;
    ev.fn(ev.t);
  }
  if (clock_->Now() < until) clock_->AdvanceTo(until);
}

}  // namespace gemini
