#include "src/replication/replicated_fragment.h"

#include <algorithm>
#include <cassert>

namespace gemini {

ReplicatedFragment::ReplicatedFragment(FragmentId fragment, ConfigId config_id,
                                       std::vector<CacheInstance*> replicas,
                                       ReplicationScheme scheme)
    : fragment_(fragment),
      ctx_{config_id, fragment},
      replicas_(std::move(replicas)),
      scheme_(scheme) {
  assert(!replicas_.empty());
}

Result<CacheValue> ReplicatedFragment::Get(Session& session,
                                           std::string_view key) {
  ++stats_.reads;
  session.BillCacheOp(replicas_[0]->id());
  auto v = replicas_[0]->Get(ctx_, key);
  if (scheme_ == ReplicationScheme::kRequestForwarding) {
    // Replay the reference on every slave so its LRU state tracks the
    // master's (hits touch; misses are no-ops on both sides).
    for (size_t r = 1; r < replicas_.size(); ++r) {
      session.BillCacheOp(replicas_[r]->id());
      (void)replicas_[r]->Get(ctx_, key);
      ++stats_.replication_messages;
    }
  }
  if (v.ok()) ++stats_.read_hits;
  return v;
}

Status ReplicatedFragment::Insert(Session& session, std::string_view key,
                                  CacheValue value) {
  ++stats_.inserts;
  session.BillCacheOp(replicas_[0]->id());
  Status s = replicas_[0]->Set(ctx_, key, value);
  if (!s.ok()) return s;
  tracked_keys_.emplace_back(key);
  for (size_t r = 1; r < replicas_.size(); ++r) {
    session.BillCacheOp(replicas_[r]->id());
    (void)replicas_[r]->Set(ctx_, key, value);
    ++stats_.replication_messages;
  }
  if (scheme_ == ReplicationScheme::kEvictionBroadcast) {
    SyncEvictionsLocked(session);
  }
  return Status::Ok();
}

Status ReplicatedFragment::Delete(Session& session, std::string_view key) {
  ++stats_.deletes;
  for (size_t r = 0; r < replicas_.size(); ++r) {
    session.BillCacheOp(replicas_[r]->id());
    (void)replicas_[r]->Delete(ctx_, key);
    if (r > 0) ++stats_.replication_messages;
  }
  return Status::Ok();
}

void ReplicatedFragment::SyncEvictionsLocked(Session& session) {
  // Prototype eviction broadcast: detect keys the master evicted since the
  // last sync by probing the tracked key set, and delete them from the
  // slaves. A production design would hook the master's eviction callback;
  // the *message count* — what the ablation measures — is identical.
  std::vector<std::string> survivors;
  survivors.reserve(tracked_keys_.size());
  for (auto& key : tracked_keys_) {
    if (replicas_[0]->ContainsRaw(key)) {
      survivors.push_back(std::move(key));
      continue;
    }
    for (size_t r = 1; r < replicas_.size(); ++r) {
      session.BillCacheOp(replicas_[r]->id());
      (void)replicas_[r]->Delete(ctx_, key);
      ++stats_.replication_messages;
    }
  }
  tracked_keys_ = std::move(survivors);
}

bool ReplicatedFragment::ReplicasIdentical(
    const std::vector<std::string>& universe) const {
  for (const auto& key : universe) {
    const bool in_master = replicas_[0]->ContainsRaw(key);
    for (size_t r = 1; r < replicas_.size(); ++r) {
      if (replicas_[r]->ContainsRaw(key) != in_master) return false;
    }
  }
  return true;
}

}  // namespace gemini
