// Replicated fragments — a prototype of the paper's future work (Section 7).
//
// The paper closes by asking how Gemini extends to multiple replicas per
// fragment, and sketches two designs for keeping replicas identical while
// performing cache evictions:
//
//   (a) *eviction broadcast*: a master replica broadcasts its eviction
//       decisions to the slave replicas;
//   (b) *request forwarding*: the sequence of requests referencing the
//       master is forwarded to the slaves; with identical replacement
//       policies, their eviction decisions coincide.
//
// This module implements both so their trade-offs can be measured (see
// bench/ablation_replication). A ReplicatedFragment owns one master and
// k-1 slave replicas of a fragment's key range across distinct instances:
//
//   - reads are served by the master (or, for read scaling, any replica in
//     kAnyReplica placement — slaves are only guaranteed identical under
//     request forwarding);
//   - writes (write-around deletes) apply to every replica;
//   - inserts apply to the master and are replicated per the chosen scheme;
//   - with kEvictionBroadcast, slave caches are given effectively unbounded
//     budgets and evict exactly what the master evicts;
//   - with kRequestForwarding, every reference is replayed against slaves so
//     their LRU state mirrors the master's.
//
// The invariant both schemes maintain — checked by ReplicasIdentical() and
// the property tests — is the paper's question made precise: after any
// sequence of operations, all replicas hold the same key set.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "src/cache/cache_instance.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/net/cost_model.h"

namespace gemini {

enum class ReplicationScheme : uint8_t {
  /// Master broadcasts its eviction decisions to slaves.
  kEvictionBroadcast,
  /// The full reference sequence is forwarded to slaves; identical
  /// replacement policies then make identical decisions.
  kRequestForwarding,
};

class ReplicatedFragment {
 public:
  /// `replicas[0]` is the master. All replicas must live on distinct
  /// instances and hold fragment leases for `fragment`.
  ReplicatedFragment(FragmentId fragment, ConfigId config_id,
                     std::vector<CacheInstance*> replicas,
                     ReplicationScheme scheme);

  /// Read through the replica set: master lookup; miss returns kNotFound
  /// (the caller fills via Insert after computing the value).
  Result<CacheValue> Get(Session& session, std::string_view key);

  /// Insert a computed value into the master and replicate it.
  Status Insert(Session& session, std::string_view key, CacheValue value);

  /// Write-around delete on every replica (a write's invalidation).
  Status Delete(Session& session, std::string_view key);

  /// True iff every replica holds exactly the same set of keys from
  /// `universe` (the checkable slice of the paper's "are replicas
  /// identical" question).
  [[nodiscard]] bool ReplicasIdentical(
      const std::vector<std::string>& universe) const;

  [[nodiscard]] ReplicationScheme scheme() const { return scheme_; }
  [[nodiscard]] size_t num_replicas() const { return replicas_.size(); }
  [[nodiscard]] CacheInstance& master() { return *replicas_[0]; }

  struct Stats {
    uint64_t reads = 0;
    uint64_t read_hits = 0;
    uint64_t inserts = 0;
    uint64_t deletes = 0;
    /// Replication messages sent to slaves (the cost the two schemes trade
    /// off: broadcast sends evictions + inserts; forwarding sends every
    /// reference).
    uint64_t replication_messages = 0;
  };
  [[nodiscard]] const Stats& stats() const { return stats_; }

 private:
  // Propagates the master's latest eviction decisions to the slaves.
  void SyncEvictionsLocked(Session& session);

  FragmentId fragment_;
  OpContext ctx_;
  std::vector<CacheInstance*> replicas_;
  ReplicationScheme scheme_;
  // Keys inserted since the last eviction sync, in insertion order, used to
  // detect master evictions cheaply (eviction broadcast).
  std::vector<std::string> tracked_keys_;
  Stats stats_;
};

}  // namespace gemini
