// CacheBackend: the per-key cache surface GeminiClient (and the recovery
// machinery) program against.
//
// Two implementations exist:
//  - CacheInstance (src/cache/cache_instance.h): the in-process cache used by
//    the discrete-event harness and the unit tests.
//  - TcpCacheBackend (src/transport/tcp_backend.h): a socket client that
//    speaks the geminid wire protocol (docs/PROTOCOL.md §10) to a remote
//    cache process.
//
// The split keeps the protocol library deployment-agnostic: the client
// routes, leases, retries, and bills sessions identically whether the
// "instance" is a pointer or a TCP connection. Methods mirror the IQ /
// Redlease vocabulary of Sections 2.3 and 3 of the paper; see
// cache_instance.h for per-operation semantics.
#pragma once

#include <cstdint>
#include <limits>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "src/common/status.h"
#include "src/common/types.h"

namespace gemini {

/// A cached value. `data` carries the payload; `charged_bytes` is the size
/// the entry is billed at for memory accounting, which lets the simulator
/// model, e.g., 329-byte Facebook values without materializing them
/// (charged_bytes >= data.size() always holds for real payloads).
/// `version` is the data store version the value was computed from — consumed
/// only by the consistency checker, never by the protocol itself.
struct CacheValue {
  std::string data;
  uint32_t charged_bytes = 0;
  Version version = 0;

  static CacheValue OfData(std::string d, Version v = 0) {
    CacheValue value;
    value.charged_bytes = static_cast<uint32_t>(d.size());
    value.data = std::move(d);
    value.version = v;
    return value;
  }
  static CacheValue OfSize(uint32_t bytes, Version v = 0) {
    CacheValue value;
    value.charged_bytes = bytes;
    value.version = v;
    return value;
  }
};

/// Per-operation context. `config_id` is the caller's configuration id
/// (kInternalConfigId for coordinator/recovery-internal operations, which
/// bypass the staleness check); `fragment` scopes entry validation, or
/// kInvalidFragment for Gemini-internal keys (dirty lists, the configuration
/// entry) which are not fragment-scoped.
struct OpContext {
  ConfigId config_id = 0;
  FragmentId fragment = kInvalidFragment;
};

inline constexpr ConfigId kInternalConfigId =
    std::numeric_limits<ConfigId>::max();

/// One request of a MultiGet batch. The context travels per key because a
/// batch may span fragments, and each key validates against its own
/// fragment's lease and Rejig stamp.
struct GetRequest {
  OpContext ctx;
  std::string key;
};

/// One write of a MultiSet batch (same per-key context rationale as
/// GetRequest).
struct SetRequest {
  OpContext ctx;
  std::string key;
  CacheValue value;
};

/// One delete of a MultiDelete batch.
struct DeleteRequest {
  OpContext ctx;
  std::string key;
};

/// One hot key surfaced by a working-set scan page (Section 3.2.2). Only
/// metadata travels: the recovery worker fetches the value separately with
/// MultiGet, so a scan page stays small no matter how large the values are.
struct WorkingSetItem {
  std::string key;
  /// The entry's accounting size on the scanned instance — lets the worker
  /// throttle the transfer by bytes before fetching a single value.
  uint32_t charged_bytes = 0;
};

/// One page of a working-set scan. Items within a page — and pages within a
/// scan — come hottest-first (approximate: priority bands over per-stripe
/// LRU order). `next_cursor` resumes the scan; 0 means the scan is done.
struct WorkingSetPage {
  std::vector<WorkingSetItem> items;
  uint64_t next_cursor = 0;
};

/// Result of iqget: either a hit (value set) or a miss. On a miss the
/// instance attempted to grant an I lease; `i_token` is kNoLease if another
/// session holds an incompatible lease (caller backs off — surfaced as
/// Code::kBackoff instead, so this struct always has a token on miss).
struct IqGetResult {
  std::optional<CacheValue> value;
  LeaseToken i_token = kNoLease;
};

class CacheBackend {
 public:
  virtual ~CacheBackend() = default;

  /// The InstanceId of the cache this backend fronts.
  [[nodiscard]] virtual InstanceId id() const = 0;

  // ---- Data path (Section 2.3 / Algorithms 1-3) ---------------------------

  /// Plain get, no lease on miss.
  virtual Result<CacheValue> Get(const OpContext& ctx,
                                 std::string_view key) = 0;

  /// Batched plain get; results align with `reqs` by index, each the exact
  /// outcome Get() would have produced. The base implementation loops;
  /// transports that can pipeline (TcpCacheBackend) override it to issue
  /// the whole batch as one in-flight burst, turning N round trips into
  /// roughly one.
  virtual std::vector<Result<CacheValue>> MultiGet(
      const std::vector<GetRequest>& reqs) {
    std::vector<Result<CacheValue>> out;
    out.reserve(reqs.size());
    for (const auto& req : reqs) out.push_back(Get(req.ctx, req.key));
    return out;
  }

  /// Get; on miss, atomically acquire an I lease (or kBackoff).
  virtual Result<IqGetResult> IqGet(const OpContext& ctx,
                                    std::string_view key) = 0;

  /// Insert if the I lease `token` is still valid, then release it.
  virtual Status IqSet(const OpContext& ctx, std::string_view key,
                       CacheValue value, LeaseToken token) = 0;

  /// Acquire a Q lease (write path); voids any I lease.
  virtual Result<LeaseToken> Qareg(const OpContext& ctx,
                                   std::string_view key) = 0;

  /// Delete-and-release (write-around commit).
  virtual Status Dar(const OpContext& ctx, std::string_view key,
                     LeaseToken token) = 0;

  /// Replace-and-release (write-through commit).
  virtual Status Rar(const OpContext& ctx, std::string_view key,
                     CacheValue value, LeaseToken token) = 0;

  /// Delete the entry and acquire an I lease in one step.
  virtual Result<LeaseToken> ISet(const OpContext& ctx,
                                  std::string_view key) = 0;

  /// Delete the entry and release the I lease.
  virtual Status IDelete(const OpContext& ctx, std::string_view key,
                         LeaseToken token) = 0;

  /// Unconditional delete with no leases.
  virtual Status Delete(const OpContext& ctx, std::string_view key) = 0;

  /// Unconditional insert with no leases.
  virtual Status Set(const OpContext& ctx, std::string_view key,
                     CacheValue value) = 0;

  /// Batched unconditional insert; statuses align with `reqs` by index, each
  /// the exact outcome Set() would have produced. The base implementation
  /// loops; TcpCacheBackend overrides it to ship the whole batch as ONE
  /// kMultiSet frame with per-key status slots (PROTOCOL.md §10.3). Unlike
  /// MultiGet the batch is NOT retry-safe: on transport loss every slot
  /// fails kUnavailable and the caller decides what to re-run.
  virtual std::vector<Status> MultiSet(std::vector<SetRequest> reqs) {
    std::vector<Status> out;
    out.reserve(reqs.size());
    for (auto& req : reqs) {
      out.push_back(Set(req.ctx, req.key, std::move(req.value)));
    }
    return out;
  }

  /// Batched unconditional delete, mirroring MultiSet (one kMultiDelete
  /// frame over TCP; fail-fast, never retried).
  virtual std::vector<Status> MultiDelete(
      const std::vector<DeleteRequest>& reqs) {
    std::vector<Status> out;
    out.reserve(reqs.size());
    for (const auto& req : reqs) out.push_back(Delete(req.ctx, req.key));
    return out;
  }

  /// Compare-and-swap: replace the entry iff its current version equals
  /// `expected`. kNotFound when absent, kLeaseInvalid on version mismatch.
  virtual Status Cas(const OpContext& ctx, std::string_view key,
                     Version expected, CacheValue value) = 0;

  /// Write-back install: buffer the value under the Q lease, pin the entry.
  virtual Status WriteBackInstall(const OpContext& ctx, std::string_view key,
                                  CacheValue value, LeaseToken token) = 0;

  /// Appends bytes to an entry's payload, creating the entry if absent
  /// (dirty-list append semantics).
  virtual Status Append(const OpContext& ctx, std::string_view key,
                        std::string_view data) = 0;

  // ---- Working-set enumeration (recovery workers, Section 3.2.2) ----------

  /// Enumerates the hot keys this backend holds for fragment `ctx.fragment`,
  /// hottest first, one bounded page per call. `num_fragments` is the
  /// cluster's fragment count (the backend routes keys by
  /// Fnv1a64(key) % num_fragments); `cursor` is 0 to start or the previous
  /// page's next_cursor to resume. Gemini-internal keys (dirty lists, the
  /// configuration entry) are never surfaced. The default refuses: only
  /// CacheInstance (native stripe walk) and TcpCacheBackend (kWorkingSetScan
  /// wire op) enumerate working sets.
  virtual Result<WorkingSetPage> WorkingSetScan(const OpContext& ctx,
                                                uint32_t num_fragments,
                                                uint64_t cursor,
                                                uint32_t max_keys) {
    (void)ctx;
    (void)num_fragments;
    (void)cursor;
    (void)max_keys;
    return Status(Code::kInvalidArgument,
                  "backend does not support working-set scans");
  }

  // ---- Redlease (recovery workers, Section 2.3) ---------------------------

  virtual Result<LeaseToken> AcquireRed(std::string_view key) = 0;
  virtual Status ReleaseRed(std::string_view key, LeaseToken token) = 0;
  /// Extends a held Redlease; kLeaseInvalid if it lapsed.
  virtual Status RenewRed(std::string_view key, LeaseToken token) = 0;
};

}  // namespace gemini
