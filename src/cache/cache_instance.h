// CacheInstance: a persistent, memcached-style cache process with the IQ
// lease extensions (our stand-in for IQ-Twemcached, Section 4).
//
// One instance stores cache entries for the fragments assigned to it by the
// coordinator. It provides:
//
//  - LRU eviction under a byte budget (key + value + fixed per-entry
//    overhead), mirroring memcached's behaviour that matters to Gemini: *any*
//    entry, including a dirty list, can be evicted.
//  - IQ lease operations (iqget / iqset / qareg / dar) plus the recovery-mode
//    primitives iset / idelete of Algorithms 1-3, and Redlease operations for
//    recovery workers.
//  - Rejig configuration-id validation (Section 3.2.4): every entry is
//    stamped with the configuration id under which it was written, every
//    fragment carries a minimum-valid id, and an entry whose stamp is below
//    its fragment's minimum is obsolete — deleted on access. This is how
//    Gemini discards millions of unrecoverable entries in O(1): the
//    coordinator just raises the fragment's id.
//  - Fragment leases: the instance serves a fragment only while it holds a
//    coordinator-granted lease on it (Section 2.1), and tells stale clients
//    to refresh their configuration (kStaleConfig) when their config id lags
//    the latest id this instance has seen.
//  - Persistence emulation: failing an instance makes it unavailable;
//    recovering it restores its content intact (persistent media) but clears
//    leases (volatile process state). A volatile cache additionally wipes
//    content (the VolatileCache baseline).
//
// Thread-safe, with memcached-style lock striping: the key table is
// partitioned into `Options::num_stripes` independent shards (key-hash →
// stripe), each owning its own mutex, hash map, LRU list, and byte budget
// (capacity_bytes / num_stripes). Operations on keys in different stripes
// run concurrently; operations on one key serialize on its stripe. The
// read-mostly fragment-lease / config-id / availability state lives under a
// small shared_mutex taken shared on the data path, op counters are
// atomics, and the lease table keeps its own internal lock. num_stripes = 1
// (the default) reproduces the historical single-mutex behaviour exactly,
// including one global LRU order; with more stripes LRU order and the byte
// budget are per-stripe, which is the memcached trade: a skewed stripe can
// evict earlier than a global LRU would.
//
// Lock order (never take a later lock while holding an earlier one in
// reverse): meta (shared_mutex) → stripe mutex (ascending index when taking
// several) → flush-queue mutex → LeaseTable's internal lock.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "src/cache/cache_backend.h"
#include "src/common/clock.h"
#include "src/common/status.h"
#include "src/common/types.h"
#include "src/lease/lease_table.h"

namespace gemini {

class PersistenceSink;
enum class PersistOp : uint8_t;

class CacheInstance : public CacheBackend {
 public:
  struct Options {
    /// Memory budget for entries (bytes). 0 disables eviction.
    uint64_t capacity_bytes = 0;
    /// Fixed bookkeeping charge per entry, approximating the memcached item
    /// header + hash/LRU pointers.
    uint32_t per_entry_overhead = 56;
    /// Lock stripes for the key table. Rounded up to a power of two and
    /// clamped to [1, 256]. 1 (the default) keeps one global mutex + LRU
    /// list; a multi-core server (geminid --threads N) wants roughly 4x its
    /// event-loop count so concurrent shards stop convoying on one lock.
    uint32_t num_stripes = 1;
    LeaseTable::Options lease_options;
    /// When set, every durable state change is reported through this sink
    /// (see persistence_sink.h for the callback/locking contract). Null (the
    /// default) is the legacy volatile behavior. Not owned; must outlive the
    /// instance or be detached with SetPersistenceSink(nullptr).
    PersistenceSink* persistence = nullptr;
  };

  CacheInstance(InstanceId id, const Clock* clock)
      : CacheInstance(id, clock, Options()) {}
  CacheInstance(InstanceId id, const Clock* clock, Options options);

  CacheInstance(const CacheInstance&) = delete;
  CacheInstance& operator=(const CacheInstance&) = delete;

  [[nodiscard]] InstanceId id() const override { return id_; }

  /// The clock this instance was constructed with (lease expiries are
  /// timestamps in this clock's domain — wire-side TTLs convert against it).
  [[nodiscard]] const Clock& clock() const { return *clock_; }

  // ---- Availability & persistence emulation -------------------------------

  /// Marks the instance failed: all operations return kUnavailable.
  void Fail();

  /// Brings a *persistent* instance back: content intact, leases cleared
  /// (leases are volatile process state even on persistent media).
  void RecoverPersistent();

  /// Brings a *volatile* instance back: content wiped (VolatileCache).
  void RecoverVolatile();

  [[nodiscard]] bool available() const;

  // ---- Coordinator-facing fragment management ------------------------------

  /// Grants/renews this instance's lease on `fragment` with the given
  /// minimum-valid configuration id and expiry. Also advances the memoized
  /// latest configuration id.
  void GrantFragmentLease(FragmentId fragment, ConfigId min_valid_config,
                          Timestamp expiry, ConfigId latest_config);

  /// Revokes the lease (fragment reassigned elsewhere).
  void RevokeFragmentLease(FragmentId fragment, ConfigId latest_config);

  /// The latest configuration id this instance has observed.
  [[nodiscard]] ConfigId latest_config_id() const;

  /// Advances the memoized latest configuration id without touching any
  /// fragment lease (the wire protocol's config-bump op; a coordinator uses
  /// it to make an instance bounce stale clients before leases arrive).
  void ObserveConfigId(ConfigId latest);

  /// True iff this instance currently holds a live lease on `fragment`.
  [[nodiscard]] bool HoldsFragmentLease(FragmentId fragment) const;

  /// The minimum-valid config id of the instance's lease on `fragment`
  /// (nullopt when it holds none). Auditing hook.
  [[nodiscard]] std::optional<ConfigId> FragmentLeaseMinValid(
      FragmentId fragment) const;

  /// Reads the physically present entry for `key` without touching LRU
  /// order, stats, leases, or validity (auditing hook).
  [[nodiscard]] std::optional<CacheValue> RawGet(std::string_view key) const;

  // ---- Data path -----------------------------------------------------------

  /// Plain get (no lease on miss). Used for secondary lookups during working
  /// set transfer and by recovery workers (SR.get(k)).
  Result<CacheValue> Get(const OpContext& ctx, std::string_view key) override;

  /// Get; on miss, atomically acquire an I lease (or kBackoff).
  Result<IqGetResult> IqGet(const OpContext& ctx,
                            std::string_view key) override;

  /// Insert if the I lease `token` is still valid, then release it. Returns
  /// kLeaseInvalid (insert ignored) if the lease was voided or expired.
  Status IqSet(const OpContext& ctx, std::string_view key, CacheValue value,
               LeaseToken token) override;

  /// Acquire a Q lease (write-around write path); voids any I lease.
  Result<LeaseToken> Qareg(const OpContext& ctx,
                           std::string_view key) override;

  /// Delete-and-release: removes the entry and releases the Q lease.
  Status Dar(const OpContext& ctx, std::string_view key,
             LeaseToken token) override;

  /// Replace-and-release (write-through): installs the new value written to
  /// the data store and releases the Q lease. Requires the Q lease to still
  /// be valid — if it expired, the entry was (or will be) deleted by the
  /// expiry rule and the insert must not resurrect a potentially stale
  /// value, so kLeaseInvalid is returned and nothing is installed.
  Status Rar(const OpContext& ctx, std::string_view key, CacheValue value,
             LeaseToken token) override;

  /// Recovery primitive (Algorithm 1 line 7, Algorithm 3 line 11): delete the
  /// entry and acquire an I lease in one step; kBackoff if leases collide.
  Result<LeaseToken> ISet(const OpContext& ctx,
                          std::string_view key) override;

  /// Delete the entry and release the I lease (Algorithm 3 line 16).
  Status IDelete(const OpContext& ctx, std::string_view key,
                 LeaseToken token) override;

  /// Unconditional delete with no leases (Algorithm 2 line 3: delete in the
  /// secondary during working set transfer).
  Status Delete(const OpContext& ctx, std::string_view key) override;

  /// Unconditional insert with no leases. Used by the coordinator to publish
  /// configurations and initialize dirty lists, and by tests.
  Status Set(const OpContext& ctx, std::string_view key,
             CacheValue value) override;

  /// Compare-and-swap: atomically replaces the entry iff its current version
  /// equals `expected`. kNotFound when the key is absent (or invalid under
  /// Rejig), kLeaseInvalid on a version mismatch. No lease interaction — the
  /// wire protocol exposes it for memcached-style cas clients.
  Status Cas(const OpContext& ctx, std::string_view key, Version expected,
             CacheValue value) override;

  /// Write-back install (extension; Section 2 names write-back as a write
  /// policy): installs the buffered value under the Q lease, *pins* the
  /// entry (pinned entries are never evicted — losing a buffered write
  /// before its flush would lose the write), and enqueues it for the
  /// flusher. The entry's version is the store's reserved version.
  Status WriteBackInstall(const OpContext& ctx, std::string_view key,
                          CacheValue value, LeaseToken token) override;

  /// A buffered write awaiting its data-store flush.
  struct PendingFlush {
    std::string key;
    CacheValue value;
  };

  /// Pops up to `max` buffered writes for flushing (pins stay until Unpin).
  std::vector<PendingFlush> TakePendingFlushes(size_t max);

  /// Releases the pin placed by WriteBackInstall once the flush for
  /// `version` committed. A newer buffered write (higher version) keeps the
  /// entry pinned.
  void Unpin(std::string_view key, Version version);

  /// Number of buffered writes not yet handed to a flusher + pinned entries
  /// (diagnostics).
  [[nodiscard]] size_t pending_flush_count() const;

  /// Appends bytes to an entry's payload, creating the entry if absent
  /// (memcached "append" semantics as Gemini needs them: a re-created dirty
  /// list is detectable because it lacks the marker).
  Status Append(const OpContext& ctx, std::string_view key,
                std::string_view data) override;

  // ---- Redlease (recovery workers, Section 2.3) ----------------------------

  Result<LeaseToken> AcquireRed(std::string_view key) override;
  Status ReleaseRed(std::string_view key, LeaseToken token) override;
  /// Extends a held Redlease; kLeaseInvalid if it lapsed.
  Status RenewRed(std::string_view key, LeaseToken token) override;

  // ---- Working-set enumeration (Section 3.2.2) -----------------------------

  /// Paginated, hottest-first enumeration of the keys this instance holds
  /// for fragment `ctx.fragment` (routing = Fnv1a64(key) % num_fragments).
  /// Priority is approximate: the cursor walks *bands* of per-stripe LRU
  /// depth — band b visits every stripe's matches at LRU positions
  /// [b*depth, (b+1)*depth) with depth = max(1, max_keys / stripe_count) —
  /// so earlier pages are globally hotter without any cross-stripe lock or
  /// new hot-path state; each call takes one stripe mutex at a time.
  /// Gemini-internal keys and entries below the fragment's minimum-valid
  /// config id are never surfaced; the scan itself mutates nothing (no LRU
  /// touch, no lazy discard). Under concurrent writes a key may appear
  /// twice or not at all — callers (the recovery worker) install
  /// idempotently, so this only perturbs priority, never correctness.
  Result<WorkingSetPage> WorkingSetScan(const OpContext& ctx,
                                        uint32_t num_fragments,
                                        uint64_t cursor,
                                        uint32_t max_keys) override;

  // ---- Introspection -------------------------------------------------------

  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;
    uint64_t inserts = 0;
    uint64_t deletes = 0;
    uint64_t evictions = 0;
    /// Hits rejected because the entry's config id was below its fragment's
    /// minimum (Rejig discard rule) — the "discarded keys" of Table 3.
    uint64_t config_discards = 0;
    uint64_t used_bytes = 0;
    uint64_t entry_count = 0;
  };
  [[nodiscard]] Stats stats() const;
  void ResetCounters();

  /// True iff `key` currently has a physically present entry, regardless of
  /// config-id validity (tests / Table 3 accounting).
  [[nodiscard]] bool ContainsRaw(std::string_view key) const;

  /// Config id stamped on the physically present entry for `key`, or
  /// nullopt when absent. Used by the Table 3 bench to count entries that
  /// the Rejig rule will discard.
  [[nodiscard]] std::optional<ConfigId> RawConfigIdOf(
      std::string_view key) const;

  /// Iterates all physically present entries, holding *every* stripe lock
  /// (taken in fixed ascending order) for the duration — the callback sees
  /// one coherent cut of the whole table even while writers run on other
  /// threads. Within a stripe, entries come in LRU order (most recent
  /// first); stripes are visited in index order, so the cross-stripe order
  /// is not a global LRU order unless num_stripes == 1. The callback must
  /// not call back into the instance. Used by the snapshot writer.
  void ForEachEntry(
      const std::function<void(std::string_view key, const CacheValue& value,
                               ConfigId config_id, bool pinned)>& fn) const;

  /// Installs an entry with an explicit config-id stamp, bypassing leases
  /// and the config-staleness check. Snapshot restore only: the stamp must
  /// reproduce what the entry carried when it was persisted, or the Rejig
  /// validity rule would mis-classify it. A pinned entry (buffered
  /// write-back value) is re-pinned and re-enqueued for flushing.
  Status RestoreEntry(std::string_view key, CacheValue value,
                      ConfigId config_id, bool pinned = false);

  /// Erases the physically present entry for `key` without touching leases,
  /// op counters, or the persistence sink. Recovery replay only (the
  /// durable log already accounts for the deletion being re-applied).
  void RestoreErase(std::string_view key);

  /// Clears the pending-flush queue and rebuilds it from the entries that
  /// are pinned *now* — the post-replay analogue of RecoverPersistent's
  /// sweep. WAL replay enqueues one flush per pinned upsert record, some of
  /// them superseded; only the final pinned state may be flushed.
  void RebuildFlushQueue();

  /// Swaps the persistence sink (see Options::persistence). Used when a
  /// recovered process re-attaches a fresh store to an existing instance
  /// object. Pass nullptr to detach.
  void SetPersistenceSink(PersistenceSink* sink);

  LeaseTable& leases() { return leases_; }
  const Options& options() const { return options_; }

  /// Effective stripe count after rounding/clamping (diagnostics).
  [[nodiscard]] uint32_t stripe_count() const {
    return static_cast<uint32_t>(stripes_.size());
  }

 private:
  struct Entry {
    std::string key;
    CacheValue value;
    ConfigId config_id = 0;
    /// Pinned entries hold a not-yet-flushed write-back value and are
    /// exempt from eviction.
    bool pinned = false;
  };
  using LruList = std::list<Entry>;
  using Table = std::unordered_map<std::string_view, LruList::iterator>;

  /// One lock-striped shard of the key table: its own mutex, map, LRU list,
  /// and byte budget (capacity_bytes / num_stripes).
  struct Stripe {
    mutable std::mutex mu;
    LruList lru;  // front = most recently used
    Table table;
    uint64_t used_bytes = 0;
  };

  [[nodiscard]] Stripe& StripeOf(std::string_view key) const;

  // All *Locked methods require the owning stripe's mutex held.
  uint64_t ChargeOf(const Entry& e) const;
  void TouchLocked(Stripe& st, LruList::iterator it);
  void EraseLocked(Stripe& st, LruList::iterator it, bool count_as_delete);
  void EvictLocked(Stripe& st);
  // Inserts or replaces; returns false if rejected (entry larger than the
  // stripe's budget).
  bool UpsertLocked(Stripe& st, std::string_view key, CacheValue value,
                    ConfigId cfg);
  // Reports the just-installed entry for `key` to the persistence sink (a
  // no-op when the sink is null or the upsert was rejected). Requires the
  // stripe lock and meta_mu_ (shared) held.
  void LogUpsertLocked(Stripe& st, PersistOp op, std::string_view key);
  // Looks up the key and applies Rejig validity + Q-expiry actions.
  // `min_valid` is the fragment's minimum-valid config id (0 = no check),
  // read from the meta state by the caller. Returns st.table.end() on
  // miss/invalid.
  Table::iterator FindValidLocked(Stripe& st, ConfigId min_valid,
                                  std::string_view key);

  // The following require meta_mu_ held (shared suffices).
  // Validates availability + client config freshness + fragment lease.
  Status CheckRequestMeta(const OpContext& ctx) const;
  // The config id to stamp on an entry written under `ctx`.
  [[nodiscard]] ConfigId StampForMeta(const OpContext& ctx) const;
  // The fragment's minimum-valid config id (0 when not fragment-scoped).
  [[nodiscard]] ConfigId MinValidMeta(const OpContext& ctx) const;

  struct FragmentLease {
    ConfigId min_valid_config = 0;
    Timestamp expiry = 0;
  };

  /// Op counters as atomics so the striped data path never shares a lock
  /// for bookkeeping; folded into Stats on read.
  struct Counters {
    std::atomic<uint64_t> hits{0};
    std::atomic<uint64_t> misses{0};
    std::atomic<uint64_t> inserts{0};
    std::atomic<uint64_t> deletes{0};
    std::atomic<uint64_t> evictions{0};
    std::atomic<uint64_t> config_discards{0};
  };

  const InstanceId id_;
  const Clock* clock_;
  Options options_;
  LeaseTable leases_;

  /// Durability sink, null when persistence is off. Guarded by meta_mu_:
  /// every call site holds it (shared suffices — the sink itself is
  /// thread-safe); SetPersistenceSink takes it exclusively.
  PersistenceSink* sink_ = nullptr;

  // Read-mostly instance-wide state: availability, fragment leases, and the
  // memoized latest config id. Shared-locked on the data path, uniquely
  // locked by the (rare) coordinator-facing mutations.
  mutable std::shared_mutex meta_mu_;
  bool available_ = true;
  ConfigId latest_config_ = 0;
  std::unordered_map<FragmentId, FragmentLease> fragments_;

  std::vector<std::unique_ptr<Stripe>> stripes_;
  uint64_t stripe_mask_ = 0;
  uint64_t stripe_capacity_ = 0;  // capacity_bytes / num_stripes

  mutable std::mutex flush_mu_;
  std::deque<PendingFlush> pending_flush_;

  mutable Counters counters_;
};

}  // namespace gemini
