#include "src/cache/snapshot_writer.h"

#include <chrono>

#include "src/common/logging.h"

namespace gemini {

SnapshotWriter::SnapshotWriter(std::vector<Target> targets, Options options)
    : targets_(std::move(targets)), options_(options) {}

SnapshotWriter::~SnapshotWriter() { Stop(); }

Status SnapshotWriter::Start() {
  std::lock_guard<std::mutex> lock(mu_);
  if (running_) {
    return Status(Code::kInvalidArgument, "snapshot writer already running");
  }
  for (const Target& t : targets_) {
    if (t.instance == nullptr || t.path.empty()) {
      return Status(Code::kInvalidArgument, "snapshot target without an "
                                            "instance or path");
    }
  }
  if (options_.interval <= 0 || targets_.empty()) return Status::Ok();
  stop_ = false;
  running_ = true;
  thread_ = std::thread([this] { Loop(); });
  return Status::Ok();
}

void SnapshotWriter::Stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  std::lock_guard<std::mutex> lock(mu_);
  running_ = false;
}

bool SnapshotWriter::running() const {
  std::lock_guard<std::mutex> lock(mu_);
  return running_;
}

SnapshotWriter::Stats SnapshotWriter::stats() const {
  std::lock_guard<std::mutex> lock(stats_mu_);
  return stats_;
}

Status SnapshotWriter::WriteAll() {
  std::lock_guard<std::mutex> lock(write_mu_);
  return WriteAllInternal();
}

Status SnapshotWriter::WriteAllInternal() {
  Status first_failure = Status::Ok();
  for (const Target& t : targets_) {
    Status s = Snapshot::WriteToFile(*t.instance, t.path);
    std::lock_guard<std::mutex> lock(stats_mu_);
    if (s.ok()) {
      ++stats_.writes_ok;
    } else {
      ++stats_.writes_failed;
      if (first_failure.ok()) first_failure = s;
    }
  }
  {
    std::lock_guard<std::mutex> lock(stats_mu_);
    ++stats_.sweeps;
  }
  return first_failure;
}

void SnapshotWriter::Loop() {
  const auto interval = std::chrono::microseconds(options_.interval);
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    if (cv_.wait_for(lock, interval, [this] { return stop_; })) return;
    // Write without holding mu_ so Stop() can set the flag mid-sweep; the
    // sweep itself still completes every write it starts (write_mu_ plus
    // the per-file rename atomicity guarantee no torn files), and the next
    // loop iteration observes stop_.
    lock.unlock();
    {
      std::lock_guard<std::mutex> write_lock(write_mu_);
      {
        std::lock_guard<std::mutex> check(mu_);
        if (stop_) return;  // skipped whole: shutdown won the race
      }
      Status s = WriteAllInternal();
      if (!s.ok()) {
        LOG_WARN << "periodic snapshot failed: " << s.ToString();
      }
    }
    lock.lock();
    if (stop_) return;
  }
}

}  // namespace gemini
