#include "src/cache/snapshot.h"

#include <errno.h>
#include <fcntl.h>
#include <unistd.h>

#include <atomic>
#include <cstdio>
#include <cstring>
#include <unordered_set>
#include <vector>

#include "src/common/hash.h"

namespace gemini {

namespace {

constexpr char kMagic[8] = {'G', 'E', 'M', 'S', 'N', 'A', 'P', '1'};

void PutU32(std::string& out, uint32_t v) {
  char buf[4];
  std::memcpy(buf, &v, 4);
  out.append(buf, 4);
}

void PutU64(std::string& out, uint64_t v) {
  char buf[8];
  std::memcpy(buf, &v, 8);
  out.append(buf, 8);
}

void PutBytes(std::string& out, std::string_view bytes) {
  PutU32(out, static_cast<uint32_t>(bytes.size()));
  out.append(bytes);
}

class Reader {
 public:
  explicit Reader(std::string_view data) : data_(data) {}

  bool GetU32(uint32_t* v) { return GetRaw(v, 4); }
  bool GetU64(uint64_t* v) { return GetRaw(v, 8); }
  bool GetBytes(std::string* out) {
    uint32_t len = 0;
    if (!GetU32(&len)) return false;
    if (data_.size() < len) return false;
    out->assign(data_.substr(0, len));
    data_.remove_prefix(len);
    return true;
  }
  [[nodiscard]] size_t remaining() const { return data_.size(); }

 private:
  bool GetRaw(void* out, size_t n) {
    if (data_.size() < n) return false;
    std::memcpy(out, data_.data(), n);
    data_.remove_prefix(n);
    return true;
  }
  std::string_view data_;
};

}  // namespace

std::string Snapshot::Serialize(CacheInstance& instance) {
  std::string out;
  out.append(kMagic, sizeof(kMagic));

  // Entries are counted first; reserve the header slots and patch after.
  std::vector<std::string> quarantined = instance.leases().KeysWithQLeases();
  uint64_t entry_count = 0;
  std::string body;
  instance.ForEachEntry([&](std::string_view key, const CacheValue& value,
                            ConfigId config_id, bool pinned) {
    ++entry_count;
    PutBytes(body, key);
    PutBytes(body, value.data);
    PutU32(body, value.charged_bytes);
    PutU64(body, value.version);
    PutU64(body, config_id);
    PutU32(body, pinned ? 1 : 0);
  });
  PutU64(out, entry_count);
  PutU64(out, quarantined.size());
  out += body;
  for (const auto& key : quarantined) {
    PutBytes(out, key);
  }
  PutU64(out, Fnv1a64(out));
  return out;
}

Status Snapshot::Load(CacheInstance& instance, std::string_view payload) {
  if (payload.size() < sizeof(kMagic) + 8 + 8 + 8) {
    return Status(Code::kInternal, "snapshot truncated");
  }
  if (std::memcmp(payload.data(), kMagic, sizeof(kMagic)) != 0) {
    return Status(Code::kInternal, "snapshot magic mismatch");
  }
  // Checksum covers everything before the trailing 8 bytes.
  const std::string_view checked = payload.substr(0, payload.size() - 8);
  uint64_t stored_sum = 0;
  std::memcpy(&stored_sum, payload.data() + payload.size() - 8, 8);
  if (Fnv1a64(checked) != stored_sum) {
    return Status(Code::kInternal, "snapshot checksum mismatch");
  }

  Reader reader(checked.substr(sizeof(kMagic)));
  uint64_t entry_count = 0, quarantined_count = 0;
  if (!reader.GetU64(&entry_count) || !reader.GetU64(&quarantined_count)) {
    return Status(Code::kInternal, "snapshot header corrupt");
  }

  struct Pending {
    std::string key;
    CacheValue value;
    ConfigId config_id;
    bool pinned = false;
  };
  std::vector<Pending> entries;
  entries.reserve(entry_count);
  for (uint64_t i = 0; i < entry_count; ++i) {
    Pending p;
    uint64_t version = 0, config_id = 0;
    uint32_t charged = 0, flags = 0;
    if (!reader.GetBytes(&p.key) || !reader.GetBytes(&p.value.data) ||
        !reader.GetU32(&charged) || !reader.GetU64(&version) ||
        !reader.GetU64(&config_id) || !reader.GetU32(&flags)) {
      return Status(Code::kInternal, "snapshot entry corrupt");
    }
    p.value.charged_bytes = charged;
    p.value.version = version;
    p.config_id = config_id;
    p.pinned = (flags & 1) != 0;
    entries.push_back(std::move(p));
  }
  std::unordered_set<std::string> quarantined;
  for (uint64_t i = 0; i < quarantined_count; ++i) {
    std::string key;
    if (!reader.GetBytes(&key)) {
      return Status(Code::kInternal, "snapshot quarantine list corrupt");
    }
    quarantined.insert(std::move(key));
  }
  if (reader.remaining() != 0) {
    return Status(Code::kInternal, "snapshot has trailing bytes");
  }

  // Install in reverse so LRU order (most-recent-first in the snapshot) is
  // reconstructed; skip quarantined keys (the crash-spanning Q rule).
  for (auto it = entries.rbegin(); it != entries.rend(); ++it) {
    if (quarantined.count(it->key) > 0) continue;
    Status s = instance.RestoreEntry(it->key, std::move(it->value),
                                     it->config_id, it->pinned);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

Status Snapshot::WriteToFile(CacheInstance& instance,
                             const std::string& path) {
  const std::string payload = Serialize(instance);
  // Unique temp name per writer: a periodic snapshot thread, a wire
  // kSnapshot trigger, and a shutdown's final write may all target `path`
  // concurrently. With a shared ".tmp" they could truncate or rename each
  // other's half-written file; with unique temps each rename publishes one
  // complete, checksummed snapshot and the last writer wins.
  static std::atomic<uint64_t> seq{0};
  const std::string tmp =
      path + ".tmp." + std::to_string(::getpid()) + "." +
      std::to_string(seq.fetch_add(1, std::memory_order_relaxed));
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return Status(Code::kInternal, "cannot open " + tmp);
  }
  size_t written = 0;
  while (written < payload.size()) {
    const ssize_t n =
        ::write(fd, payload.data() + written, payload.size() - written);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) break;
    written += static_cast<size_t>(n);
  }
  // fsync before rename: without it the rename can hit disk before the
  // data, and a crash leaves `path` pointing at a torn file — exactly the
  // stale-entry hazard a persistent cache must fail closed on.
  const bool synced = written == payload.size() && ::fsync(fd) == 0;
  ::close(fd);
  if (!synced) {
    std::remove(tmp.c_str());
    return Status(Code::kInternal, "short write to " + tmp);
  }
  if (std::rename(tmp.c_str(), path.c_str()) != 0) {
    std::remove(tmp.c_str());
    return Status(Code::kInternal, "rename to " + path + " failed");
  }
  // fsync the directory so the rename itself survives a crash.
  const size_t slash = path.find_last_of('/');
  const std::string dir = slash == std::string::npos
                              ? std::string(".")
                              : path.substr(0, slash == 0 ? 1 : slash);
  int dir_fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dir_fd < 0) {
    return Status(Code::kInternal, "cannot open directory " + dir);
  }
  const bool dir_synced = ::fsync(dir_fd) == 0;
  ::close(dir_fd);
  if (!dir_synced) {
    return Status(Code::kInternal, "fsync of directory " + dir + " failed");
  }
  return Status::Ok();
}

Status Snapshot::LoadFromFile(CacheInstance& instance,
                              const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) {
    return Status(Code::kNotFound, "no snapshot at " + path);
  }
  std::string payload;
  char buf[1 << 16];
  size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof(buf), f)) > 0) {
    payload.append(buf, n);
  }
  std::fclose(f);
  return Load(instance, payload);
}

}  // namespace gemini
