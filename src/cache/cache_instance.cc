#include "src/cache/cache_instance.h"

#include <algorithm>
#include <cassert>

#include "src/common/logging.h"

namespace gemini {

CacheInstance::CacheInstance(InstanceId id, const Clock* clock,
                             Options options)
    : id_(id),
      clock_(clock),
      options_(options),
      leases_(clock, options.lease_options) {}

// ---- Availability & persistence emulation ----------------------------------

void CacheInstance::Fail() {
  std::lock_guard<std::mutex> lock(mu_);
  available_ = false;
}

void CacheInstance::RecoverPersistent() {
  // A writer may have crashed us between its data store update and its
  // delete-and-release: conservatively delete every entry with an
  // outstanding Q lease, the crash-spanning analogue of the Q-expiry rule
  // (Section 2.3). Gemini assumes the persistent medium retains this much.
  const std::vector<std::string> quarantined = leases_.KeysWithQLeases();
  {
    std::lock_guard<std::mutex> lock(mu_);
    available_ = true;
    for (const auto& key : quarantined) {
      auto it = table_.find(key);
      if (it != table_.end()) {
        EraseLocked(it->second, /*count_as_delete=*/true);
      }
    }
    // Fragment leases did not survive the crash; the coordinator re-grants
    // them as part of publishing the recovery-mode configuration.
    fragments_.clear();
    // Buffered write-back values are pinned in the persistent payload; the
    // in-memory flush queue is rebuilt from them (the durability payoff of
    // write-back on a persistent cache).
    pending_flush_.clear();
    for (const Entry& e : lru_) {
      if (e.pinned) {
        pending_flush_.push_back(PendingFlush{e.key, e.value});
      }
    }
  }
  leases_.Clear();
}

void CacheInstance::RecoverVolatile() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    available_ = true;
    fragments_.clear();
    table_.clear();
    lru_.clear();
    pending_flush_.clear();  // volatile cache: buffered writes are LOST
    used_bytes_ = 0;
  }
  leases_.Clear();
}

bool CacheInstance::available() const {
  std::lock_guard<std::mutex> lock(mu_);
  return available_;
}

// ---- Coordinator-facing fragment management ---------------------------------

void CacheInstance::GrantFragmentLease(FragmentId fragment,
                                       ConfigId min_valid_config,
                                       Timestamp expiry,
                                       ConfigId latest_config) {
  std::lock_guard<std::mutex> lock(mu_);
  fragments_[fragment] = FragmentLease{min_valid_config, expiry};
  latest_config_ = std::max(latest_config_, latest_config);
}

void CacheInstance::RevokeFragmentLease(FragmentId fragment,
                                        ConfigId latest_config) {
  std::lock_guard<std::mutex> lock(mu_);
  fragments_.erase(fragment);
  latest_config_ = std::max(latest_config_, latest_config);
}

ConfigId CacheInstance::latest_config_id() const {
  std::lock_guard<std::mutex> lock(mu_);
  return latest_config_;
}

void CacheInstance::ObserveConfigId(ConfigId latest) {
  std::lock_guard<std::mutex> lock(mu_);
  latest_config_ = std::max(latest_config_, latest);
}

bool CacheInstance::HoldsFragmentLease(FragmentId fragment) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = fragments_.find(fragment);
  return it != fragments_.end() && it->second.expiry > clock_->Now();
}

std::optional<ConfigId> CacheInstance::FragmentLeaseMinValid(
    FragmentId fragment) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = fragments_.find(fragment);
  if (it == fragments_.end() || it->second.expiry <= clock_->Now()) {
    return std::nullopt;
  }
  return it->second.min_valid_config;
}

std::optional<CacheValue> CacheInstance::RawGet(std::string_view key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_.find(key);
  if (it == table_.end()) return std::nullopt;
  return it->second->value;
}

// ---- Internal helpers --------------------------------------------------------

uint64_t CacheInstance::ChargeOf(const Entry& e) const {
  return e.key.size() + e.value.charged_bytes + options_.per_entry_overhead;
}

void CacheInstance::TouchLocked(LruList::iterator it) {
  lru_.splice(lru_.begin(), lru_, it);
}

void CacheInstance::EraseLocked(LruList::iterator it, bool count_as_delete) {
  used_bytes_ -= ChargeOf(*it);
  if (count_as_delete) {
    ++counters_.deletes;
  }
  table_.erase(std::string_view(it->key));
  lru_.erase(it);
}

void CacheInstance::EvictLocked() {
  if (options_.capacity_bytes == 0) return;
  // Never evict the most recently used entry: it is the one the current
  // operation just wrote. A single entry above capacity therefore survives
  // (memcached instead rejects items above its item-size cap; UpsertLocked
  // applies that rejection for values, and dirty lists stay usable).
  // Pinned entries (buffered write-back values) are skipped: evicting one
  // would lose an acknowledged write.
  auto victim = lru_.end();
  while (used_bytes_ > options_.capacity_bytes && victim != lru_.begin()) {
    --victim;
    if (victim == lru_.begin()) break;  // never the MRU entry
    if (victim->pinned) continue;
    auto doomed = victim;
    ++victim;  // keep the cursor valid past the erase
    ++counters_.evictions;
    EraseLocked(doomed, /*count_as_delete=*/false);
  }
}

bool CacheInstance::UpsertLocked(std::string_view key, CacheValue value,
                                 ConfigId cfg) {
  auto it = table_.find(key);
  if (it != table_.end()) {
    Entry& e = *it->second;
    used_bytes_ -= ChargeOf(e);
    e.value = std::move(value);
    e.config_id = cfg;
    used_bytes_ += ChargeOf(e);
    TouchLocked(it->second);
  } else {
    Entry e;
    e.key = std::string(key);
    e.value = std::move(value);
    e.config_id = cfg;
    const uint64_t charge = ChargeOf(e);
    if (options_.capacity_bytes != 0 && charge > options_.capacity_bytes) {
      return false;  // Larger than the whole cache: reject, as memcached does.
    }
    lru_.push_front(std::move(e));
    table_.emplace(std::string_view(lru_.front().key), lru_.begin());
    used_bytes_ += charge;
  }
  ++counters_.inserts;
  EvictLocked();
  return true;
}

Status CacheInstance::CheckRequestLocked(const OpContext& ctx) const {
  if (!available_) {
    return Status(Code::kUnavailable, "instance down");
  }
  if (ctx.config_id != kInternalConfigId && ctx.config_id < latest_config_) {
    // Rejig: the client's cached configuration is older than the latest id
    // this instance has observed — make it refresh before serving it.
    return Status(Code::kStaleConfig);
  }
  if (ctx.fragment != kInvalidFragment) {
    auto it = fragments_.find(ctx.fragment);
    if (it == fragments_.end() || it->second.expiry <= clock_->Now()) {
      return Status(Code::kWrongInstance, "no fragment lease");
    }
  }
  return Status::Ok();
}

std::unordered_map<std::string_view, CacheInstance::LruList::iterator>::iterator
CacheInstance::FindValidLocked(const OpContext& ctx, std::string_view key) {
  // A Q lease that expired un-released forces deletion of the entry
  // (Section 2.3) — apply that before looking the key up.
  if (leases_.ExpireKey(key).delete_entry) {
    auto stale = table_.find(key);
    if (stale != table_.end()) {
      EraseLocked(stale->second, /*count_as_delete=*/true);
    }
  }
  auto it = table_.find(key);
  if (it == table_.end()) return table_.end();
  if (ctx.fragment != kInvalidFragment) {
    auto frag = fragments_.find(ctx.fragment);
    const ConfigId min_valid =
        frag == fragments_.end() ? 0 : frag->second.min_valid_config;
    if (it->second->config_id < min_valid) {
      // Obsolete under the Rejig rule (Section 3.2.4): written before the
      // fragment's current minimum-valid configuration — discard lazily.
      ++counters_.config_discards;
      EraseLocked(it->second, /*count_as_delete=*/false);
      return table_.end();
    }
  }
  return it;
}

// ---- Data path ----------------------------------------------------------------

Result<CacheValue> CacheInstance::Get(const OpContext& ctx,
                                      std::string_view key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Status s = CheckRequestLocked(ctx); !s.ok()) return s;
  auto it = FindValidLocked(ctx, key);
  if (it == table_.end()) {
    ++counters_.misses;
    return Status(Code::kNotFound);
  }
  ++counters_.hits;
  TouchLocked(it->second);
  return it->second->value;
}

Result<IqGetResult> CacheInstance::IqGet(const OpContext& ctx,
                                         std::string_view key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Status s = CheckRequestLocked(ctx); !s.ok()) return s;
  auto it = FindValidLocked(ctx, key);
  if (it != table_.end()) {
    ++counters_.hits;
    TouchLocked(it->second);
    IqGetResult r;
    r.value = it->second->value;
    return r;
  }
  ++counters_.misses;
  Result<LeaseToken> lease = leases_.AcquireI(key);
  if (!lease.ok()) {
    return lease.status();  // kBackoff: another session is filling this key.
  }
  IqGetResult r;
  r.i_token = *lease;
  return r;
}

Status CacheInstance::IqSet(const OpContext& ctx, std::string_view key,
                            CacheValue value, LeaseToken token) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Status s = CheckRequestLocked(ctx); !s.ok()) return s;
  if (!leases_.CheckI(key, token)) {
    // Voided by a Q lease or expired: ignore the insert (Section 2.3).
    return Status(Code::kLeaseInvalid);
  }
  const ConfigId cfg =
      ctx.config_id == kInternalConfigId ? latest_config_ : ctx.config_id;
  UpsertLocked(key, std::move(value), cfg);
  leases_.ReleaseI(key, token);
  return Status::Ok();
}

Result<LeaseToken> CacheInstance::Qareg(const OpContext& ctx,
                                        std::string_view key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Status s = CheckRequestLocked(ctx); !s.ok()) return s;
  return leases_.AcquireQ(key);
}

Status CacheInstance::Dar(const OpContext& ctx, std::string_view key,
                          LeaseToken token) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Status s = CheckRequestLocked(ctx); !s.ok()) return s;
  auto it = table_.find(key);
  if (it != table_.end()) {
    EraseLocked(it->second, /*count_as_delete=*/true);
  }
  leases_.ReleaseQ(key, token);
  return Status::Ok();
}

Status CacheInstance::WriteBackInstall(const OpContext& ctx,
                                       std::string_view key, CacheValue value,
                                       LeaseToken token) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Status s = CheckRequestLocked(ctx); !s.ok()) return s;
  if (!leases_.CheckQ(key, token)) {
    return Status(Code::kLeaseInvalid);
  }
  const ConfigId cfg =
      ctx.config_id == kInternalConfigId ? latest_config_ : ctx.config_id;
  CacheValue copy = value;
  if (!UpsertLocked(key, std::move(value), cfg)) {
    // Larger than the whole cache: the write cannot be buffered; the caller
    // must fall back to a synchronous policy.
    return Status(Code::kInvalidArgument, "value larger than cache capacity");
  }
  auto it = table_.find(key);
  it->second->pinned = true;
  pending_flush_.push_back(PendingFlush{std::string(key), std::move(copy)});
  leases_.ReleaseQ(key, token);
  return Status::Ok();
}

std::vector<CacheInstance::PendingFlush> CacheInstance::TakePendingFlushes(
    size_t max) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<PendingFlush> out;
  while (!pending_flush_.empty() && out.size() < max) {
    out.push_back(std::move(pending_flush_.front()));
    pending_flush_.pop_front();
  }
  return out;
}

void CacheInstance::Unpin(std::string_view key, Version version) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_.find(key);
  if (it == table_.end()) return;
  // A newer buffered write keeps the pin until its own flush lands.
  if (it->second->value.version <= version) {
    it->second->pinned = false;
  }
  EvictLocked();
}

size_t CacheInstance::pending_flush_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  size_t pinned = 0;
  for (const Entry& e : lru_) {
    if (e.pinned) ++pinned;
  }
  return std::max(pinned, pending_flush_.size());
}

Status CacheInstance::Rar(const OpContext& ctx, std::string_view key,
                          CacheValue value, LeaseToken token) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Status s = CheckRequestLocked(ctx); !s.ok()) return s;
  if (!leases_.CheckQ(key, token)) {
    return Status(Code::kLeaseInvalid);
  }
  const ConfigId cfg =
      ctx.config_id == kInternalConfigId ? latest_config_ : ctx.config_id;
  UpsertLocked(key, std::move(value), cfg);
  // A synchronous write supersedes any buffered one for this key: the
  // installed value is already committed, so the pin can go (a late flush
  // of the older buffered version is a no-op at the store).
  auto it = table_.find(key);
  if (it != table_.end()) it->second->pinned = false;
  leases_.ReleaseQ(key, token);
  return Status::Ok();
}

Result<LeaseToken> CacheInstance::ISet(const OpContext& ctx,
                                       std::string_view key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Status s = CheckRequestLocked(ctx); !s.ok()) return s;
  Result<LeaseToken> lease = leases_.AcquireI(key);
  if (!lease.ok()) {
    return lease.status();
  }
  auto it = table_.find(key);
  if (it != table_.end()) {
    EraseLocked(it->second, /*count_as_delete=*/true);
  }
  return *lease;
}

Status CacheInstance::IDelete(const OpContext& ctx, std::string_view key,
                              LeaseToken token) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Status s = CheckRequestLocked(ctx); !s.ok()) return s;
  auto it = table_.find(key);
  if (it != table_.end()) {
    EraseLocked(it->second, /*count_as_delete=*/true);
  }
  leases_.ReleaseI(key, token);
  return Status::Ok();
}

Status CacheInstance::Delete(const OpContext& ctx, std::string_view key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Status s = CheckRequestLocked(ctx); !s.ok()) return s;
  auto it = table_.find(key);
  if (it != table_.end()) {
    EraseLocked(it->second, /*count_as_delete=*/true);
  }
  return Status::Ok();
}

Status CacheInstance::Set(const OpContext& ctx, std::string_view key,
                          CacheValue value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Status s = CheckRequestLocked(ctx); !s.ok()) return s;
  const ConfigId cfg =
      ctx.config_id == kInternalConfigId ? latest_config_ : ctx.config_id;
  if (!UpsertLocked(key, std::move(value), cfg)) {
    return Status(Code::kInvalidArgument, "value larger than cache capacity");
  }
  return Status::Ok();
}

Status CacheInstance::Cas(const OpContext& ctx, std::string_view key,
                          Version expected, CacheValue value) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Status s = CheckRequestLocked(ctx); !s.ok()) return s;
  auto it = FindValidLocked(ctx, key);
  if (it == table_.end()) {
    ++counters_.misses;
    return Status(Code::kNotFound);
  }
  if (it->second->value.version != expected) {
    return Status(Code::kLeaseInvalid, "cas version mismatch");
  }
  const ConfigId cfg =
      ctx.config_id == kInternalConfigId ? latest_config_ : ctx.config_id;
  if (!UpsertLocked(key, std::move(value), cfg)) {
    return Status(Code::kInvalidArgument, "value larger than cache capacity");
  }
  return Status::Ok();
}

Status CacheInstance::Append(const OpContext& ctx, std::string_view key,
                             std::string_view data) {
  std::lock_guard<std::mutex> lock(mu_);
  if (Status s = CheckRequestLocked(ctx); !s.ok()) return s;
  auto it = table_.find(key);
  if (it == table_.end()) {
    // memcached-style append would fail here; Gemini relies on create-on-
    // append so that the *marker* (not entry existence) detects evictions.
    CacheValue value = CacheValue::OfData(std::string(data));
    const ConfigId cfg =
        ctx.config_id == kInternalConfigId ? latest_config_ : ctx.config_id;
    if (!UpsertLocked(key, std::move(value), cfg)) {
      return Status(Code::kInvalidArgument, "append larger than capacity");
    }
    return Status::Ok();
  }
  Entry& e = *it->second;
  used_bytes_ -= ChargeOf(e);
  e.value.data.append(data);
  e.value.charged_bytes = static_cast<uint32_t>(
      std::max<size_t>(e.value.charged_bytes, e.value.data.size()));
  used_bytes_ += ChargeOf(e);
  TouchLocked(it->second);
  EvictLocked();
  return Status::Ok();
}

// ---- Redlease -------------------------------------------------------------------

Result<LeaseToken> CacheInstance::AcquireRed(std::string_view key) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!available_) return Status(Code::kUnavailable);
  }
  return leases_.AcquireRed(key);
}

Status CacheInstance::ReleaseRed(std::string_view key, LeaseToken token) {
  leases_.ReleaseRed(key, token);
  return Status::Ok();
}

Status CacheInstance::RenewRed(std::string_view key, LeaseToken token) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!available_) return Status(Code::kUnavailable);
  }
  return leases_.RenewRed(key, token) ? Status::Ok()
                                      : Status(Code::kLeaseInvalid);
}

// ---- Introspection -----------------------------------------------------------------

CacheInstance::Stats CacheInstance::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  Stats s = counters_;
  s.used_bytes = used_bytes_;
  s.entry_count = lru_.size();
  return s;
}

void CacheInstance::ResetCounters() {
  std::lock_guard<std::mutex> lock(mu_);
  counters_ = Stats{};
}

bool CacheInstance::ContainsRaw(std::string_view key) const {
  std::lock_guard<std::mutex> lock(mu_);
  return table_.find(key) != table_.end();
}

std::optional<ConfigId> CacheInstance::RawConfigIdOf(
    std::string_view key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = table_.find(key);
  if (it == table_.end()) return std::nullopt;
  return it->second->config_id;
}

void CacheInstance::ForEachEntry(
    const std::function<void(std::string_view, const CacheValue&, ConfigId,
                             bool)>& fn) const {
  std::lock_guard<std::mutex> lock(mu_);
  for (const Entry& e : lru_) {
    fn(e.key, e.value, e.config_id, e.pinned);
  }
}

Status CacheInstance::RestoreEntry(std::string_view key, CacheValue value,
                                   ConfigId config_id, bool pinned) {
  std::lock_guard<std::mutex> lock(mu_);
  CacheValue copy = pinned ? value : CacheValue{};
  if (!UpsertLocked(key, std::move(value), config_id)) {
    return Status(Code::kInvalidArgument, "entry larger than cache capacity");
  }
  if (pinned) {
    auto it = table_.find(key);
    it->second->pinned = true;
    pending_flush_.push_back(PendingFlush{std::string(key), std::move(copy)});
  }
  return Status::Ok();
}

}  // namespace gemini
